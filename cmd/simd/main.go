// Command simd serves the deterministic figure pipeline over HTTP: a
// long-running service clients POST scenarios at instead of shelling
// out to rtsim per run.
//
// Usage:
//
//	simd [-addr :8080] [-workers N] [-queue-depth N] [-budget-ms N]
//	     [-figure-workers N] [-cache-dir DIR]
//
// POST /v1/scenarios          submit a scenario: 202 + job JSON, or the
// result bytes directly with ?wait=1
// GET  /v1/jobs/{id}          poll job state
// GET  /v1/jobs/{id}/result   fetch result bytes when done
// GET  /v1/jobs/{id}/events   stream state transitions (SSE)
// GET  /v1/figures            list served scenario ids
// GET  /v1/stats              cache/admission counters
// GET  /healthz               liveness (503 while draining)
//
// A scenario is {"figure": "fig5", "scale": 0.05, "seed": 7} or a
// reference-machine continuation {"figure": "ref-shielded", "seed": 7,
// "run_for_ms": 20}. Results are content-addressed by the FNV-1a hash
// of the scenario's canonical encoding — the same hash family the
// reprocheck goldens pin — so a duplicate request is served from cache
// (response header X-Simd-Cache: hit) with bytes provably identical to
// a fresh run. Identical requests already in flight are coalesced
// (X-Simd-Cache: join) rather than run twice. Continuations warm-start
// from cached post-boot snapshot images; warm and cold runs are
// byte-identical, so warm starts are invisible in results.
//
// Admission is bounded: a full queue refuses with 429 + Retry-After, a
// request whose virtual-millisecond cost exceeds -budget-ms refuses
// with 422, and SIGTERM/SIGINT drains — new work gets 503 while queued
// and in-flight jobs run to completion before exit.
//
// On startup the bound address is printed as "simd listening on
// ADDR" so callers using -addr :0 (the e2e tests) can find the port.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/simd"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port; the bound address is printed on startup)")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = all cores); never affects result bytes, only throughput")
	queueDepth := flag.Int("queue-depth", 0, "admission queue capacity (0 = 4x workers); a full queue refuses with 429 + Retry-After")
	budgetMS := flag.Int64("budget-ms", 0, "per-request cost budget in virtual milliseconds (0 = unlimited); oversized requests refuse with 422")
	figureWorkers := flag.Int("figure-workers", 1, "replication fan-out inside one figure run; never affects result bytes")
	cacheDir := flag.String("cache-dir", "", "write-through cache directory for results and boot images (empty = memory only)")
	flag.Parse()

	srv, err := simd.New(simd.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		BudgetVirtualMS: *budgetMS,
		FigureWorkers:   *figureWorkers,
		CacheDir:        *cacheDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
	fmt.Printf("simd listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Printf("simd: %v: draining\n", s)
		srv.Drain() // refuse new work, finish queued + in-flight jobs
		// Then let handlers flush their responses before the listener
		// goes away — waiters blocked on ?wait=1 see their bytes.
		_ = hs.Shutdown(context.Background())
		<-done
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "simd:", err)
			os.Exit(1)
		}
	}
}
