package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildSimd compiles the simd binary once per test into a temp dir —
// the e2e suite drives the actual shipped binary, not an in-process
// handler.
func buildSimd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "simd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build simd: %v\n%s", err, out)
	}
	return bin
}

// lockedBuffer serialises the stderr copier, the stdout scanner, and
// the test goroutine reading captured output.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) WriteString(s string) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.WriteString(s)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startSimd launches the binary on an ephemeral port and parses the
// bound address from its startup line. The returned stop function
// SIGTERMs it and reports the exit error plus captured output.
func startSimd(t *testing.T, bin string, extraArgs ...string) (baseURL string, stop func() (error, string)) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var output lockedBuffer
	cmd.Stderr = &output
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	lines := bufio.NewScanner(stdout)
	addr := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		for lines.Scan() {
			line := lines.Text()
			output.WriteString(line + "\n")
			if rest, ok := strings.CutPrefix(line, "simd listening on "); ok {
				addr <- strings.TrimSpace(rest)
			}
		}
	}()
	select {
	case a := <-addr:
		baseURL = "http://" + a
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("simd never printed its listen address; output:\n%s", output.String())
	}

	stopped := false
	stop = func() (error, string) {
		stopped = true
		cmd.Process.Signal(syscall.SIGTERM)
		// Wait for the scanner to hit EOF before reaping the process:
		// cmd.Wait closes the stdout pipe, and reaping first would race
		// the scanner out of the final drain lines.
		select {
		case <-scanDone:
		case <-time.After(60 * time.Second):
			cmd.Process.Kill()
			<-scanDone
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			return err, output.String()
		case <-time.After(60 * time.Second):
			cmd.Process.Kill()
			return fmt.Errorf("simd did not exit within 60s of SIGTERM"), output.String()
		}
	}
	t.Cleanup(func() {
		if !stopped {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return baseURL, stop
}

func postScenario(t *testing.T, baseURL, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/scenarios?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestSimdE2ECachedRerequest is the end-user cache pin: against the
// real binary on a random port, the same scenario POSTed twice returns
// byte-identical bytes, the second served from the cache with
// X-Simd-Cache: hit, and SIGTERM drains to a clean exit 0.
func TestSimdE2ECachedRerequest(t *testing.T) {
	if testing.Short() {
		t.Skip("integration (builds binary)")
	}
	bin := buildSimd(t)
	baseURL, stop := startSimd(t, bin)

	const scenario = `{"figure": "ref-shielded", "seed": 7, "run_for_ms": 15}`
	first, firstBody := postScenario(t, baseURL, scenario)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first POST status %d: %s", first.StatusCode, firstBody)
	}
	if c := first.Header.Get("X-Simd-Cache"); c != "miss" {
		t.Fatalf("first POST X-Simd-Cache %q, want miss", c)
	}

	second, secondBody := postScenario(t, baseURL, scenario)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second POST status %d: %s", second.StatusCode, secondBody)
	}
	if c := second.Header.Get("X-Simd-Cache"); c != "hit" {
		t.Fatalf("second POST X-Simd-Cache %q, want hit", c)
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatalf("cached re-request returned different bytes:\nfirst:  %s\nsecond: %s", firstBody, secondBody)
	}
	if first.Header.Get("X-Simd-Result-Hash") != second.Header.Get("X-Simd-Result-Hash") {
		t.Fatal("result hash header changed between runs")
	}

	// A figure scenario through the same pipeline.
	fig, figBody := postScenario(t, baseURL, `{"figure": "fig7", "scale": 0.01, "seed": 7}`)
	if fig.StatusCode != http.StatusOK {
		t.Fatalf("figure POST status %d: %s", fig.StatusCode, figBody)
	}
	if len(figBody) == 0 {
		t.Fatal("figure returned empty body")
	}

	// Stats reflect the traffic.
	sr, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if stats.Hits != 1 || stats.Misses != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 1/2", stats.Hits, stats.Misses)
	}

	err, out := stop()
	if err != nil {
		t.Fatalf("SIGTERM did not produce a clean exit: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "draining") {
		t.Fatalf("no drain notice in output:\n%s", out)
	}
}

// TestSimdE2EDiskCacheSurvivesRestart: with -cache-dir, a second
// process over the same directory serves the first process's scenario
// as a cache hit without re-running it.
func TestSimdE2EDiskCacheSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("integration (builds binary)")
	}
	bin := buildSimd(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	const scenario = `{"figure": "ref-stock", "seed": 3, "run_for_ms": 10}`

	first, stop := startSimd(t, bin, "-cache-dir", cacheDir)
	resp, coldBody := postScenario(t, first, scenario)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold POST status %d: %s", resp.StatusCode, coldBody)
	}
	if err, out := stop(); err != nil {
		t.Fatalf("first process exit: %v\n%s", err, out)
	}

	second, stop2 := startSimd(t, bin, "-cache-dir", cacheDir)
	resp2, warmBody := postScenario(t, second, scenario)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restart POST status %d: %s", resp2.StatusCode, warmBody)
	}
	if c := resp2.Header.Get("X-Simd-Cache"); c != "hit" {
		t.Fatalf("restarted process X-Simd-Cache %q, want hit (disk cache)", c)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("disk-cached bytes differ across processes")
	}
	if err, out := stop2(); err != nil {
		t.Fatalf("second process exit: %v\n%s", err, out)
	}
}

// TestSimdE2EBudgetRefusal: the shipped binary's -budget-ms flag turns
// oversized requests into 422s end to end.
func TestSimdE2EBudgetRefusal(t *testing.T) {
	if testing.Short() {
		t.Skip("integration (builds binary)")
	}
	bin := buildSimd(t)
	baseURL, stop := startSimd(t, bin, "-budget-ms", "100")
	resp, body := postScenario(t, baseURL, `{"figure": "ref-stock", "seed": 1, "run_for_ms": 5000}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "budget") {
		t.Fatalf("422 body does not mention the budget: %s", body)
	}
	if err, out := stop(); err != nil {
		t.Fatalf("exit: %v\n%s", err, out)
	}
}
