// Command reprocheck runs a conformance pass over the paper's
// quantitative claims: scaled-down versions of every experiment, with the
// paper-shape assertions (orderings, bounds, crossovers) evaluated and
// reported PASS/FAIL. Exit status is non-zero if any claim fails.
//
// Usage:
//
//	reprocheck [-scale 1.0] [-seed 1] [-parallel N]
//
// -parallel caps the worker pool the independent experiment runs fan
// out on (0 = all cores); it never changes the verdicts, only the
// wall-clock time of the pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	scale := flag.Float64("scale", 1.0, "sample-count scale factor")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = all cores); never affects results, only wall-clock time")
	flag.Parse()

	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "reprocheck: -parallel must be >= 0 (0 = all cores), got %d\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}
	if !(*scale > 0) { // also rejects NaN
		fmt.Fprintf(os.Stderr, "reprocheck: -scale must be > 0, got %v\n", *scale)
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	results := core.RunChecks(*scale, *seed, *parallel)
	failed := 0
	fmt.Println("reproduction conformance checks (Brosky & Rotolo, IPPS 2003):")
	fmt.Println()
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("[%s] %-13s %s\n", status, r.ID, r.Claim)
		fmt.Printf("       %-13s %s\n", "", r.Detail)
	}
	fmt.Printf("\n%d/%d claims hold (%.1fs)\n", len(results)-failed, len(results), time.Since(start).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}
