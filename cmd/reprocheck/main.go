// Command reprocheck runs a conformance pass over the paper's
// quantitative claims: scaled-down versions of every experiment, with the
// paper-shape assertions (orderings, bounds, crossovers) evaluated and
// reported PASS/FAIL. Exit status is non-zero if any claim fails.
//
// Usage:
//
//	reprocheck [-scale 1.0] [-seed 1] [-parallel N] [-perturb N] [-checkinv]
//	           [-bounds lint/bounds.json] [-bisect]
//	           [-queue ladder|heap] [-engine serial|sharded -shards N]
//
// -parallel caps the worker pool the independent experiment runs fan
// out on (0 = all cores); it never changes the verdicts, only the
// wall-clock time of the pass.
//
// -perturb N additionally re-runs every figure under N seeded
// permutations of same-timestamp event tie-breaks
// (sim.Engine.PerturbTiebreaks) and fails if any figure's data series
// diverges from the FIFO baseline — a tie-break race: a published
// number that depends on the arbitrary dispatch order of simultaneous
// events rather than on the model.
//
// -bounds takes the JSON report from `simlint -bounds` and adds the
// latbound-envelope claims: the dynamic attributor's worst observed
// episode per cause, and the shielded worst response, must fit under
// the static worst-case envelope composed for the same machine.
//
// -bisect additionally demonstrates the time-travel divergence
// bisector: it records replicas with periodic auto-snapshots, rewinds
// to the last agreeing checkpoint on divergence, and replays in
// lockstep to the exact first divergent event. The injected-race
// fixture must be pinpointed at its collision instant, and the clean
// fixture and the shielded reference machine must show no divergence.
//
// -checkinv arms a periodic machine-state invariant sampler
// (kernel.CheckInvariants) on every machine the checks build, so state
// corruption panics at the first sampling instant after it appears
// instead of surfacing as a wrong verdict at the end.
//
// -queue and -engine/-shards select the event-queue implementation and
// the execution engine (serial or sharded), exactly as in rtsim. They
// can never change a verdict — every mode realises the identical
// dispatch order — so running the conformance pass under
// `-engine=sharded -shards=N -perturb K` is itself a differential
// check, and CI's sharded matrix leg does exactly that.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/latency"
	"repro/internal/sim"
)

func main() {
	scale := flag.Float64("scale", 1.0, "sample-count scale factor")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = all cores); never affects results, only wall-clock time")
	perturb := flag.Int("perturb", 0, "re-run every figure under N tie-break perturbations and fail on divergence (0 = off)")
	bisect := flag.Bool("bisect", false, "demonstrate time-travel divergence bisection on the built-in race fixtures and the shielded reference machine")
	checkinv := flag.Bool("checkinv", false, "periodically sample kernel.CheckInvariants on every machine (panic on corruption)")
	bounds := flag.String("bounds", "", "static bounds report from 'simlint -bounds' to cross-check against dynamic attribution (empty = skip)")
	queue := flag.String("queue", "", "event-queue implementation: 'ladder' (default) or 'heap' (reference); never changes verdicts")
	engine := flag.String("engine", "serial", "execution engine: 'serial' (default) or 'sharded' (see -shards); never changes verdicts")
	shards := flag.Int("shards", 4, "shard count for -engine=sharded (must be >= 1)")
	flag.Parse()

	switch sim.QueueKind(*queue) {
	case "", sim.QueueLadder, sim.QueueHeap:
	default:
		fmt.Fprintf(os.Stderr, "reprocheck: -queue must be one of 'ladder', 'heap', got %q\n", *queue)
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "reprocheck: -shards must be >= 1, got %d\n", *shards)
		flag.Usage()
		os.Exit(2)
	}
	switch *engine {
	case "serial":
		if *queue != "" {
			sim.SetDefaultQueueKind(sim.QueueKind(*queue))
		}
	case "sharded":
		if *queue != "" {
			fmt.Fprintf(os.Stderr, "reprocheck: -queue %q conflicts with -engine=sharded (the sharded engine owns its per-shard queues)\n", *queue)
			flag.Usage()
			os.Exit(2)
		}
		sim.SetDefaultShardCount(*shards)
		sim.SetDefaultQueueKind(sim.QueueSharded)
	default:
		fmt.Fprintf(os.Stderr, "reprocheck: -engine must be one of 'serial', 'sharded', got %q\n", *engine)
		flag.Usage()
		os.Exit(2)
	}

	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "reprocheck: -parallel must be >= 0 (0 = all cores), got %d\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}
	if !(*scale > 0) { // also rejects NaN
		fmt.Fprintf(os.Stderr, "reprocheck: -scale must be > 0, got %v\n", *scale)
		flag.Usage()
		os.Exit(2)
	}
	if *perturb < 0 {
		fmt.Fprintf(os.Stderr, "reprocheck: -perturb must be >= 0, got %d\n", *perturb)
		flag.Usage()
		os.Exit(2)
	}

	var opts core.CheckOptions
	if *checkinv {
		// 1 ms of virtual time between samples: dense enough to pin a
		// corruption near its cause, cheap enough to leave run time
		// dominated by the experiments themselves.
		opts.InvariantPeriod = sim.Millisecond
	}
	if *bounds != "" {
		data, err := os.ReadFile(*bounds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reprocheck: -bounds: %v\n", err)
			os.Exit(2)
		}
		var report latency.Report
		if err := json.Unmarshal(data, &report); err != nil {
			fmt.Fprintf(os.Stderr, "reprocheck: -bounds %s: %v\n", *bounds, err)
			os.Exit(2)
		}
		opts.Bounds = &report
	}

	start := time.Now()
	results := core.RunChecksOpts(*scale, *seed, *parallel, opts)
	failed := 0
	fmt.Println("reproduction conformance checks (Brosky & Rotolo, IPPS 2003):")
	fmt.Println()
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("[%s] %-13s %s\n", status, r.ID, r.Claim)
		fmt.Printf("       %-13s %s\n", "", r.Detail)
	}
	fmt.Printf("\n%d/%d claims hold (%.1fs)\n", len(results)-failed, len(results), time.Since(start).Seconds())

	if *perturb > 0 {
		pstart := time.Now()
		fmt.Printf("\ntie-break perturbation sweep (%d salts per figure):\n\n", *perturb)
		for _, fp := range core.RunPerturbFigures(*scale, *seed, *parallel, *perturb) {
			status := "PASS"
			if !fp.Report.OK() {
				status = "FAIL"
				failed++
			}
			fmt.Printf("[%s] %-13s %s\n", status, fp.ID, fp.Report)
		}
		fmt.Printf("\nperturbation sweep done (%.1fs)\n", time.Since(pstart).Seconds())
	}

	if *bisect {
		bstart := time.Now()
		fmt.Println("\ntime-travel divergence bisection:")
		fmt.Println()
		for _, d := range core.RunBisectDemo(*seed) {
			status := "PASS"
			if !d.Pass {
				status = "FAIL"
				failed++
			}
			fmt.Printf("[%s] %-13s %s\n", status, d.Name, d.Detail)
		}
		fmt.Printf("\nbisection demo done (%.1fs)\n", time.Since(bstart).Seconds())
	}

	if failed > 0 {
		os.Exit(1)
	}
}
