package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildReprocheck(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "reprocheck")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build reprocheck: %v\n%s", err, out)
	}
	return bin
}

func runCheck(t *testing.T, bin string, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run %s %v: %v", bin, args, err)
	}
	return out.String(), errBuf.String(), exit
}

// TestReprocheckFlagValidation: unknown -queue/-engine values and
// non-positive -shards exit 2 with an error naming the valid options —
// same contract as rtsim, pinned per binary because each owns its flag
// parsing.
func TestReprocheckFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration (builds binary)")
	}
	bin := buildReprocheck(t)
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown_queue", []string{"-queue", "wheel"}, "'ladder', 'heap'"},
		{"unknown_engine", []string{"-engine", "turbo"}, "'serial', 'sharded'"},
		{"zero_shards", []string{"-engine", "sharded", "-shards", "0"}, "-shards must be >= 1"},
		{"negative_shards", []string{"-shards", "-4"}, "-shards must be >= 1"},
		{"queue_vs_sharded", []string{"-engine", "sharded", "-queue", "ladder"}, "conflicts with -engine=sharded"},
		{"negative_perturb", []string{"-perturb", "-1"}, "-perturb must be >= 0"},
		{"missing_bounds", []string{"-bounds", "no-such-bounds.json"}, "-bounds"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, exit := runCheck(t, bin, tc.args...)
			if exit != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", exit, stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr does not name the problem (want %q):\n%s", tc.wantErr, stderr)
			}
		})
	}
}

// claimLines strips the wall-clock timing from a reprocheck report,
// keeping only the verdict lines, so serial and sharded outputs can be
// compared exactly.
func claimLines(out string) []string {
	var keep []string
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "[PASS]") || strings.HasPrefix(ln, "[FAIL]") {
			keep = append(keep, ln)
		}
	}
	return keep
}

// TestReprocheckBounds runs the shipped binary against the committed
// static bounds report: the three latbound-envelope claims must appear
// and pass. Observed worst episodes only shrink with the sample count,
// so any scale that passes at 1.0 passes here too — a failure means
// either the committed report is stale (`make bounds`) or the static
// envelope no longer covers the dynamic model. Other claims may
// legitimately fail at this tiny scale (their orderings need samples),
// so only the latbound verdicts are asserted.
func TestReprocheckBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("integration (builds binary)")
	}
	bin := buildReprocheck(t)
	stdout, stderr, exit := runCheck(t, bin, "-scale", "0.05", "-bounds", filepath.Join("..", "..", "lint", "bounds.json"))
	if exit != 0 && exit != 1 {
		t.Fatalf("exit %d, want 0 or 1\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	for _, id := range []string{"latbound-stock", "latbound-shield", "latbound-resp"} {
		found := false
		for _, ln := range claimLines(stdout) {
			if strings.Contains(ln, id) {
				found = true
				if !strings.HasPrefix(ln, "[PASS]") {
					t.Errorf("claim %s did not pass: %s", id, ln)
				}
			}
		}
		if !found {
			t.Errorf("claim %s missing from report:\n%s", id, stdout)
		}
	}
}

// TestReprocheckShardedVerdictsIdentical runs the shipped binary's
// conformance pass serial and sharded at a small scale: every claim
// verdict and detail line must match exactly (claim *verdicts* at tiny
// scales may legitimately fail — what matters here is that sharded
// execution reproduces the serial report byte-for-byte).
func TestReprocheckShardedVerdictsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration (builds binary)")
	}
	bin := buildReprocheck(t)
	base := []string{"-scale", "0.02", "-seed", "7"}
	serialOut, _, serialExit := runCheck(t, bin, base...)
	want := claimLines(serialOut)
	if len(want) == 0 {
		t.Fatalf("serial run produced no claim lines:\n%s", serialOut)
	}
	for _, shards := range []string{"1", "2", "4"} {
		out, stderr, exit := runCheck(t, bin, append([]string{"-engine", "sharded", "-shards", shards}, base...)...)
		if exit != serialExit {
			t.Errorf("sharded/%s exit %d != serial exit %d\nstderr:\n%s", shards, exit, serialExit, stderr)
		}
		got := claimLines(out)
		if len(got) != len(want) {
			t.Fatalf("sharded/%s claim count %d != serial %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("sharded/%s claim %d diverged:\n got %s\nwant %s", shards, i, got[i], want[i])
			}
		}
	}
}
