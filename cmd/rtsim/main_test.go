package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildRtsim compiles the rtsim binary once per test into a temp dir.
func buildRtsim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rtsim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build rtsim: %v\n%s", err, out)
	}
	return bin
}

func runBin(t *testing.T, bin string, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run %s %v: %v", bin, args, err)
	}
	return out.String(), errBuf.String(), exit
}

// TestRtsimFlagValidation pins the e2e flag contract: unknown -queue or
// -engine values and non-positive -shards exit 2 with an error that
// names the valid options, and contradictory combinations are refused
// rather than silently resolved.
func TestRtsimFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration (builds binary)")
	}
	bin := buildRtsim(t)
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown_queue", []string{"-queue", "wheel", "-list"}, "'ladder', 'heap'"},
		{"unknown_engine", []string{"-engine", "turbo", "-list"}, "'serial', 'sharded'"},
		{"zero_shards", []string{"-engine", "sharded", "-shards", "0", "-list"}, "-shards must be >= 1"},
		{"negative_shards", []string{"-shards", "-2", "-list"}, "-shards must be >= 1"},
		{"queue_vs_sharded", []string{"-engine", "sharded", "-queue", "heap", "-list"}, "conflicts with -engine=sharded"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, exit := runBin(t, bin, tc.args...)
			if exit != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", exit, stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr does not name the problem (want %q):\n%s", tc.wantErr, stderr)
			}
		})
	}
}

// TestRtsimShardedCSVBitIdentical is the end-user form of the
// serial-vs-sharded oracle: the actual shipped binary regenerating a
// figure's CSV must emit byte-identical output for -engine=serial and
// -engine=sharded at shard counts 1, 2, 4.
func TestRtsimShardedCSVBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration (builds binary)")
	}
	bin := buildRtsim(t)
	base := []string{"-csv", "-exp", "fig2", "-scale", "0.05", "-seed", "7"}
	want, stderr, exit := runBin(t, bin, base...)
	if exit != 0 {
		t.Fatalf("serial run exited %d:\n%s", exit, stderr)
	}
	if !strings.Contains(want, "bin_upper_ms") {
		t.Fatalf("serial run emitted no CSV:\n%s", want)
	}
	for _, shards := range []string{"1", "2", "4"} {
		got, stderr, exit := runBin(t, bin, append([]string{"-engine", "sharded", "-shards", shards}, base...)...)
		if exit != 0 {
			t.Fatalf("sharded/%s run exited %d:\n%s", shards, exit, stderr)
		}
		if got != want {
			t.Errorf("-engine=sharded -shards=%s CSV diverged from serial", shards)
		}
	}
}
