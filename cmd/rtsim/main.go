// Command rtsim regenerates the paper's figures on the simulated systems.
//
// Usage:
//
//	rtsim -list
//	rtsim -exp fig5 [-scale 1.0] [-seed 1] [-parallel N]
//	rtsim -exp all
//	rtsim -trace trace.json
//	rtsim -checkpoint boot.snap [-ref shielded] [-run-for 0.03]
//	rtsim -restore boot.snap [-run-for 0.03] [-warm-salt N]
//
// -checkpoint boots a reference machine under the full load mix, runs
// it -run-for extra virtual seconds and writes its snapshot image.
// -restore boots a fresh machine, restores the image (exactly, or
// warm-started under a tie-break salt with -warm-salt), runs -run-for
// virtual seconds, verifies every machine-state invariant and prints
// the final state hash — the same (image, salt) pair always prints the
// same hash, and salt 0 reproduces the uninterrupted run byte for
// byte, even across processes.
//
// -trace captures a shielded RCIM run with every typed tracepoint armed
// and writes it as a Chrome trace-event file (load it in
// ui.perfetto.dev) or, for non-.json paths, as dmesg-style text.
//
// -scale multiplies the default sample counts; the paper's full-size runs
// (60,000,000 samples, ~8 hours of virtual time) correspond to roughly
// -scale 150 on fig5/fig6/fig7.
//
// -parallel caps the replication worker pool (0 = all cores). Results
// are bit-identical for every worker count — replications are seeded
// independently via splitmix64 and merged in replication-index order —
// so -parallel only changes wall-clock time.
//
// -queue selects the engine's event-queue implementation: 'ladder' (the
// two-level calendar queue, default) or 'heap' (the reference binary
// heap). Like -parallel it can never change results — both realise the
// identical dispatch order — so it exists for A/B performance runs and
// for demonstrating that equivalence on any experiment.
//
// -engine selects the execution engine: 'serial' (default) or
// 'sharded', the conservative-parallel mode in which each simulated
// CPU's events live on their own ladder shard (-shards N), merged at
// dispatch under the identical total order. Results are bit-identical
// to serial for every shard count — the serial-vs-sharded differential
// oracle in internal/sim and internal/core enforces byte-for-byte
// equality of figures and trace streams.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	scale := flag.Float64("scale", 1.0, "sample-count scale factor (1.0 = default, paper-size ≈ 150)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "worker goroutines per experiment (0 = all cores); never affects results, only wall-clock time")
	csv := flag.Bool("csv", false, "emit the figure's plotted data series as CSV (fig1..fig7, attrib-causes)")
	sweep := flag.String("sweep", "", "run a sensitivity sweep by id, or 'list'")
	outdir := flag.String("outdir", "", "write every experiment report (and figure CSVs) into this directory")
	traceOut := flag.String("trace", "", "capture a shielded RCIM trace into this file (.json = Chrome trace-event format for Perfetto, anything else = dmesg-style text)")
	checkpoint := flag.String("checkpoint", "", "boot a reference machine (see -ref), run -run-for extra virtual seconds, and write its snapshot image to this file")
	restore := flag.String("restore", "", "boot a fresh reference machine, restore this snapshot image into it, run -run-for extra virtual seconds, verify invariants, and print the final state hash")
	ref := flag.String("ref", "shielded", "reference machine for -checkpoint/-restore: 'stock' or 'shielded'")
	runFor := flag.Float64("run-for", 0.03, "virtual seconds to run past the checkpoint/restore point for -checkpoint/-restore")
	warmSalt := flag.Uint64("warm-salt", 0, "warm-start tie-break salt for -restore (0 = exact cold resume); same (image, salt) always reproduces the same bytes")
	queue := flag.String("queue", "", "event-queue implementation: 'ladder' (default) or 'heap' (reference); A/B knob — results are bit-identical either way, only speed differs")
	engine := flag.String("engine", "serial", "execution engine: 'serial' (default) or 'sharded' (per-CPU ladder shards merged under the identical dispatch order; see -shards); results are bit-identical either way")
	shards := flag.Int("shards", 4, "shard count for -engine=sharded (must be >= 1; one per simulated CPU is the natural grain)")
	flag.Parse()

	switch sim.QueueKind(*queue) {
	case "", sim.QueueLadder, sim.QueueHeap:
	default:
		fmt.Fprintf(os.Stderr, "rtsim: -queue must be one of 'ladder', 'heap', got %q\n", *queue)
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "rtsim: -shards must be >= 1, got %d\n", *shards)
		flag.Usage()
		os.Exit(2)
	}
	switch *engine {
	case "serial":
		if *queue != "" {
			sim.SetDefaultQueueKind(sim.QueueKind(*queue))
		}
	case "sharded":
		if *queue != "" {
			fmt.Fprintf(os.Stderr, "rtsim: -queue %q conflicts with -engine=sharded (the sharded engine owns its per-shard queues)\n", *queue)
			flag.Usage()
			os.Exit(2)
		}
		sim.SetDefaultShardCount(*shards)
		sim.SetDefaultQueueKind(sim.QueueSharded)
	default:
		fmt.Fprintf(os.Stderr, "rtsim: -engine must be one of 'serial', 'sharded', got %q\n", *engine)
		flag.Usage()
		os.Exit(2)
	}

	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "rtsim: -parallel must be >= 0 (0 = all cores), got %d\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}
	if !(*scale > 0) { // also rejects NaN
		fmt.Fprintf(os.Stderr, "rtsim: -scale must be > 0, got %v\n", *scale)
		flag.Usage()
		os.Exit(2)
	}

	if *checkpoint != "" || *restore != "" {
		if *checkpoint != "" && *restore != "" {
			fmt.Fprintln(os.Stderr, "rtsim: -checkpoint and -restore are mutually exclusive")
			os.Exit(2)
		}
		if !(*runFor >= 0) {
			fmt.Fprintf(os.Stderr, "rtsim: -run-for must be >= 0, got %v\n", *runFor)
			os.Exit(2)
		}
		var err error
		if *checkpoint != "" {
			err = writeCheckpoint(*checkpoint, core.ReferenceMachine(*ref), *seed, *runFor)
		} else {
			err = restoreCheckpoint(*restore, core.ReferenceMachine(*ref), *seed, *runFor, *warmSalt)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtsim:", err)
			os.Exit(1)
		}
		return
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, *scale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "rtsim:", err)
			os.Exit(1)
		}
		return
	}

	if *outdir != "" {
		if err := writeAll(*outdir, *scale, *seed, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "rtsim:", err)
			os.Exit(1)
		}
		return
	}

	if *sweep != "" {
		if *sweep == "list" {
			for _, s := range core.Sweeps() {
				fmt.Printf("  %-20s %s\n", s.ID, s.Title)
			}
			return
		}
		s, ok := core.SweepByID(*sweep)
		if !ok {
			fmt.Fprintf(os.Stderr, "rtsim: unknown sweep %q; try -sweep list\n", *sweep)
			os.Exit(2)
		}
		fmt.Print(core.RunSweep(s, *scale, *seed, *parallel))
		return
	}

	if *csv {
		if *exp == "" || *exp == "all" {
			fmt.Fprintln(os.Stderr, "rtsim: -csv needs a single figure id (fig1..fig7)")
			os.Exit(2)
		}
		out, err := core.FigureCSV(*exp, *scale, *seed, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtsim:", err)
			os.Exit(2)
		}
		fmt.Print(out)
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range core.Experiments() {
			fmt.Printf("  %-24s %s\n", e.ID, e.Title)
			fmt.Printf("  %-24s paper: %s\n", "", e.Paper)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	run := func(e core.Experiment) {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("    paper: %s\n", e.Paper)
		start := time.Now()
		out := e.Run(*scale, *seed, *parallel)
		fmt.Println(out)
		fmt.Printf("    (simulated in %.1fs wall time)\n\n", time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range core.Experiments() {
			run(e)
		}
		return
	}
	e, ok := core.ExperimentByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "rtsim: unknown experiment %q; try -list\n", *exp)
		os.Exit(2)
	}
	run(e)
}

// writeCheckpoint boots a reference machine under the full load mix,
// runs it runFor virtual seconds past the post-boot instant and writes
// its snapshot image. The image is the warm-start seed for -restore,
// the CI two-stage soak, and warm-started placement sweeps.
func writeCheckpoint(path string, ref core.ReferenceMachine, seed uint64, runFor float64) error {
	s, err := core.BootReference(ref, seed, "", 0, 0)
	if err != nil {
		return err
	}
	if runFor > 0 {
		s.K.Eng.Run(s.K.Now().Add(sim.DurationOf(runFor)))
	}
	img, err := s.K.Snapshot()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, img, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, t=%v, hash %s)\n", path, len(img), s.K.Now(), core.ImageHash(img))
	return nil
}

// restoreCheckpoint boots a fresh reference machine, restores the image
// into it (warm-started when salt != 0), runs runFor virtual seconds,
// verifies every machine-state invariant and prints the final state
// hash. Restoring the same (image, salt) always prints the same hash;
// salt 0 continues exactly like the run the image was taken from.
func restoreCheckpoint(path string, ref core.ReferenceMachine, seed uint64, runFor float64, salt uint64) error {
	img, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := core.BootReference(ref, seed, "", 0, 0)
	if err != nil {
		return err
	}
	if salt != 0 {
		err = s.K.RestoreImageWarm(img, salt)
	} else {
		err = s.K.RestoreImage(img)
	}
	if err != nil {
		return fmt.Errorf("restore %s: %w", path, err)
	}
	if runFor > 0 {
		s.K.Eng.Run(s.K.Now().Add(sim.DurationOf(runFor)))
	}
	if err := s.K.CheckInvariants(); err != nil {
		return fmt.Errorf("restored machine failed invariants: %w", err)
	}
	img2, err := s.K.Snapshot()
	if err != nil {
		return err
	}
	fmt.Printf("restored %s, ran to t=%v, final hash %s (invariants ok)\n", path, s.K.Now(), core.ImageHash(img2))
	return nil
}

// writeTrace captures a shielded RCIM run with all tracepoints armed
// and exports it: Chrome trace-event JSON (open in ui.perfetto.dev or
// chrome://tracing) for .json paths, dmesg-style text otherwise.
func writeTrace(path string, scale float64, seed uint64) error {
	buf := core.CaptureTrace(scale, seed)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = buf.WriteChromeTrace(f)
	} else {
		err = buf.WriteText(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d records, %d dropped)\n", path, buf.Len(), buf.Dropped())
	return f.Close()
}

// writeAll regenerates every experiment report, figure CSV series and
// sensitivity sweep into dir, one file each — the full evaluation as an
// artifact directory.
func writeAll(dir string, scale float64, seed uint64, parallel int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
	}
	for _, e := range core.Experiments() {
		fmt.Printf("running %s...\n", e.ID)
		header := fmt.Sprintf("%s\npaper: %s\n\n", e.Title, e.Paper)
		if err := write(e.ID+".txt", header+e.Run(scale, seed, parallel)); err != nil {
			return err
		}
		if csvData, err := core.FigureCSV(e.ID, scale, seed, parallel); err == nil {
			if err := write(e.ID+".csv", csvData); err != nil {
				return err
			}
		}
	}
	for _, s := range core.Sweeps() {
		fmt.Printf("running sweep %s...\n", s.ID)
		if err := write("sweep-"+s.ID+".txt", core.RunSweep(s, scale, seed, parallel)); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s\n", dir)
	return nil
}
