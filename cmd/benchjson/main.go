// Command benchjson records the event-engine performance baseline as a
// machine-readable JSON file (BENCH_engine.json at the repo root).
//
// Usage:
//
//	benchjson [-o BENCH_engine.json] [-quick]
//
// It runs the engine benchmark matrix through testing.Benchmark —
// {ladder, heap} × {pooled, alloc} schedule/dispatch churn at several
// steady-state queue depths, plus full-system serial and parallel
// replication throughput on both queue implementations — and writes one
// JSON document with ns/op, allocs/op and events/sec per benchmark and
// the headline ratios against the reference configuration (binary heap,
// one allocation per event: the engine before the ladder/pool overhaul).
//
// It also records the serial-vs-sharded entry for the conservative
// parallel engine: merge-pop churn on the sharded queue (the hot path
// `rtsim -engine=sharded` adds, which must stay alloc-free) and the
// shard-tick scenario — 8 simulated CPUs with ring IPIs at exactly the
// lookahead — run through runner.RunSharded at 1, 2 and 4 shards with
// one worker per shard. The sharded_acceptance block restates the
// criterion honestly for the machine that produced the file: >=1.5x
// events/sec at 4 shards needs >=4 cores; on a smaller host the window
// protocol cannot speed anything up, so the block records GOMAXPROCS,
// flips multi_core off, and degrades the bar to bounded overhead
// (>=0.5x serial throughput). CI's multi-core runner regenerates the
// artifact with the real speedup.
//
// Since bench-engine/v3 the document also carries a `snapshot` block:
// full-machine checkpoint encode/decode throughput on the post-boot
// shielded reference machine, the image size, and bytes per virtual
// second — the planning numbers for auto-snapshot cadence in the
// divergence bisector and for warm-started sweeps.
//
// Since bench-engine/v4 a `service` block records the simd serving
// layer's end-to-end request latency over an in-process HTTP server:
// cached-hit requests per second (admission + content-addressed store
// lookup, no simulation), the cold-miss cost of a full continuation
// boot + run, the warm-miss cost of a fresh window restored from a
// cached boot image, and the hit-vs-cold ratio — what the cache buys
// per duplicate request.
//
// The file is a recorded baseline, not a gate: regenerate it with
// `make bench-json` when the engine changes, and read the `ratios`
// block to see what the ladder queue and the event pool buy on the
// machine that produced it. The tool always exits 0 unless it cannot
// run the benchmarks or write the file; CI uploads the JSON as an
// artifact and fails only on build errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	shieldsim "repro"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/runner"
	"repro/internal/sim"
)

// benchResult is one benchmark's record in the baseline file.
type benchResult struct {
	Name string `json:"name"`
	// Iters is the iteration count testing.Benchmark settled on.
	Iters int `json:"iters"`
	// NsPerOp is wall-clock nanoseconds per benchmark iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per iteration.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// EventsPerOp is how many engine events one iteration dispatches
	// (1 for the churn microbenchmarks, measured for system runs).
	EventsPerOp float64 `json:"events_per_op"`
	// EventsPerSec = EventsPerOp / (NsPerOp * 1e-9): the throughput
	// headline.
	EventsPerSec float64 `json:"events_per_sec"`
}

// baseline is the whole BENCH_engine.json document.
type baseline struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Benchmarks is the full matrix; Ratios the derived headlines.
	Benchmarks []benchResult      `json:"benchmarks"`
	Ratios     map[string]float64 `json:"ratios"`
	// Acceptance restates the PR's perf criterion against the reference
	// heap+alloc configuration: >=1.5x events/sec OR <=0.5x allocs/op.
	Acceptance struct {
		EventsPerSecRatio float64 `json:"events_per_sec_ratio"`
		AllocsPerOpRatio  float64 `json:"allocs_per_op_ratio"`
		Pass              bool    `json:"pass"`
	} `json:"acceptance"`
	// ShardedAcceptance restates the sharded-engine criterion — >=1.5x
	// events/sec at 4 shards over serial with an alloc-free merge-pop hot
	// path — keyed on the cores of the machine that produced the file:
	// the speedup is physically unobtainable below 4 cores, so on a
	// small host MultiCore is false and the bar degrades to bounded
	// overhead (>=0.5x serial). The JSON stays honest either way; the
	// multi-core CI runner's artifact carries the real ratio.
	ShardedAcceptance struct {
		GOMAXPROCS         int     `json:"gomaxprocs"`
		MultiCore          bool    `json:"multi_core"`
		EventsPerSecRatio  float64 `json:"events_per_sec_ratio"`
		HotPathAllocsPerOp float64 `json:"hot_path_allocs_per_op"`
		Pass               bool    `json:"pass"`
	} `json:"sharded_acceptance"`
	// Service records the simd serving layer's end-to-end request
	// latency (bench-engine/v4): a cache hit (admission + store lookup,
	// no simulation), a cold miss (full continuation boot + run) and a
	// warm miss (fresh window restored from a cached boot image). The
	// hit/miss gap is what content-addressing buys per duplicate
	// request; warm-vs-cold is what image reuse buys per fresh window.
	Service struct {
		HitNsPerOp        float64 `json:"hit_ns_per_op"`
		HitRequestsPerSec float64 `json:"hit_requests_per_sec"`
		ColdMissNsPerOp   float64 `json:"cold_miss_ns_per_op"`
		WarmMissNsPerOp   float64 `json:"warm_miss_ns_per_op"`
		HitVsColdRatio    float64 `json:"hit_vs_cold_ratio"`
		WarmVsColdRatio   float64 `json:"warm_vs_cold_ratio"`
	} `json:"service"`
	// Snapshot records the checkpoint/restore codec's throughput on the
	// shielded reference machine: full-machine encode and decode cost,
	// the image size, and how many image bytes one virtual second of the
	// loaded machine costs to checkpoint (the planning number for
	// auto-snapshot cadence in bisection and for warm-start sweeps).
	Snapshot struct {
		ImageBytes            int     `json:"image_bytes"`
		EncodeNsPerOp         float64 `json:"encode_ns_per_op"`
		DecodeNsPerOp         float64 `json:"decode_ns_per_op"`
		EncodeMBPerSec        float64 `json:"encode_mb_per_sec"`
		DecodeMBPerSec        float64 `json:"decode_mb_per_sec"`
		BytesPerVirtualSecond float64 `json:"bytes_per_virtual_second"`
	} `json:"snapshot"`
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output path for the baseline JSON")
	quick := flag.Bool("quick", false, "smaller system/parallel runs (smoke mode; ratios are noisier)")
	flag.Parse()

	b := baseline{
		Schema:     "bench-engine/v4",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Ratios:     map[string]float64{},
	}

	byName := map[string]benchResult{}
	add := func(r benchResult) {
		b.Benchmarks = append(b.Benchmarks, r)
		byName[r.Name] = r
		fmt.Fprintf(os.Stderr, "%-40s %12.1f ns/op %8.2f allocs/op %14.0f events/sec\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
	}

	// --- churn matrix: per-event engine overhead at fixed depth ---
	for _, kind := range []sim.QueueKind{sim.QueueLadder, sim.QueueHeap} {
		for _, mode := range []struct {
			name   string
			noPool bool
		}{{"pooled", false}, {"alloc", true}} {
			for _, depth := range []int{1024, 16384} {
				name := fmt.Sprintf("churn/%s/%s/depth=%d", kind, mode.name, depth)
				r := testing.Benchmark(churnBench(kind, mode.noPool, depth))
				add(record(name, r, 1))
			}
		}
	}

	// --- full system, serial: one machine under stress load ---
	slices := 400
	machines, horizon := 8, 30
	if *quick {
		slices, machines, horizon = 50, 4, 10
	}
	for _, kind := range []sim.QueueKind{sim.QueueLadder, sim.QueueHeap} {
		var evPerOp float64
		r := testing.Benchmark(systemBench(kind, slices, &evPerOp))
		add(record(fmt.Sprintf("system/serial/%s", kind), r, evPerOp))
	}

	// --- full system, parallel: replication fan-out, per-worker pools ---
	for _, kind := range []sim.QueueKind{sim.QueueLadder, sim.QueueHeap} {
		var evPerOp float64
		r := testing.Benchmark(parallelBench(kind, 0, machines, horizon, &evPerOp))
		add(record(fmt.Sprintf("system/parallel/%s", kind), r, evPerOp))
	}

	// --- sharded engine churn: merge-pop overhead over the raw ladder ---
	for _, depth := range []int{1024, 16384} {
		name := fmt.Sprintf("churn/sharded4/pooled/depth=%d", depth)
		r := testing.Benchmark(shardedChurnBench(4, depth))
		add(record(name, r, 1))
	}

	// --- serial vs sharded: the shard-tick scenario under the window
	// protocol, one worker per shard (1 shard = the serial executor) ---
	sliceMs := 2
	if *quick {
		sliceMs = 1
	}
	for _, shards := range []int{1, 2, 4} {
		name := "system/shardtick/serial"
		if shards > 1 {
			name = fmt.Sprintf("system/shardtick/shards=%d", shards)
		}
		var evPerOp float64
		r := testing.Benchmark(shardTickBench(shards, sliceMs, &evPerOp))
		add(record(name, r, evPerOp))
	}

	ratio := func(name, num, den, metric string) {
		a, b1 := byName[num], byName[den]
		var x float64
		switch metric {
		case "events_per_sec":
			if b1.EventsPerSec > 0 {
				x = a.EventsPerSec / b1.EventsPerSec
			}
		case "allocs_per_op":
			if b1.AllocsPerOp > 0 {
				x = a.AllocsPerOp / b1.AllocsPerOp
			}
		}
		b.Ratios[name] = x
	}
	ratio("churn_new_vs_reference_events_per_sec",
		"churn/ladder/pooled/depth=16384", "churn/heap/alloc/depth=16384", "events_per_sec")
	ratio("churn_new_vs_reference_allocs_per_op",
		"churn/ladder/pooled/depth=16384", "churn/heap/alloc/depth=16384", "allocs_per_op")
	ratio("churn_pooled_vs_alloc_allocs_per_op",
		"churn/ladder/pooled/depth=1024", "churn/ladder/alloc/depth=1024", "allocs_per_op")
	ratio("churn_ladder_vs_heap_events_per_sec",
		"churn/ladder/pooled/depth=16384", "churn/heap/pooled/depth=16384", "events_per_sec")
	ratio("system_serial_ladder_vs_heap_events_per_sec",
		"system/serial/ladder", "system/serial/heap", "events_per_sec")
	ratio("system_parallel_ladder_vs_heap_events_per_sec",
		"system/parallel/ladder", "system/parallel/heap", "events_per_sec")
	ratio("churn_sharded_vs_ladder_events_per_sec",
		"churn/sharded4/pooled/depth=16384", "churn/ladder/pooled/depth=16384", "events_per_sec")
	ratio("system_sharded2_vs_serial_events_per_sec",
		"system/shardtick/shards=2", "system/shardtick/serial", "events_per_sec")
	ratio("system_sharded4_vs_serial_events_per_sec",
		"system/shardtick/shards=4", "system/shardtick/serial", "events_per_sec")

	b.Acceptance.EventsPerSecRatio = b.Ratios["churn_new_vs_reference_events_per_sec"]
	b.Acceptance.AllocsPerOpRatio = b.Ratios["churn_new_vs_reference_allocs_per_op"]
	b.Acceptance.Pass = b.Acceptance.EventsPerSecRatio >= 1.5 || b.Acceptance.AllocsPerOpRatio <= 0.5

	// --- snapshot codec: full-machine encode/decode throughput ---
	var imgBytes int
	encR := testing.Benchmark(snapshotEncodeBench(&imgBytes))
	add(record("snapshot/encode", encR, 1))
	decR := testing.Benchmark(snapshotDecodeBench())
	add(record("snapshot/decode", decR, 1))
	sn := &b.Snapshot
	sn.ImageBytes = imgBytes
	sn.EncodeNsPerOp = float64(encR.T.Nanoseconds()) / float64(encR.N)
	sn.DecodeNsPerOp = float64(decR.T.Nanoseconds()) / float64(decR.N)
	if sn.EncodeNsPerOp > 0 {
		sn.EncodeMBPerSec = float64(imgBytes) / sn.EncodeNsPerOp * 1e9 / 1e6
	}
	if sn.DecodeNsPerOp > 0 {
		sn.DecodeMBPerSec = float64(imgBytes) / sn.DecodeNsPerOp * 1e9 / 1e6
	}
	// The reference image captures refBootHorizon (40 ms) of virtual
	// time; bytes per virtual second is the auto-snapshot budget number.
	sn.BytesPerVirtualSecond = float64(imgBytes) / 0.040

	// --- simd serving layer: request latency by cache disposition ---
	hitR := testing.Benchmark(serviceHitBench())
	add(record("service/cache_hit", hitR, 1))
	coldR := testing.Benchmark(serviceColdMissBench())
	add(record("service/cold_miss", coldR, 1))
	warmR := testing.Benchmark(serviceWarmMissBench())
	add(record("service/warm_miss", warmR, 1))
	sv := &b.Service
	sv.HitNsPerOp = float64(hitR.T.Nanoseconds()) / float64(hitR.N)
	sv.ColdMissNsPerOp = float64(coldR.T.Nanoseconds()) / float64(coldR.N)
	sv.WarmMissNsPerOp = float64(warmR.T.Nanoseconds()) / float64(warmR.N)
	if sv.HitNsPerOp > 0 {
		sv.HitRequestsPerSec = 1e9 / sv.HitNsPerOp
		sv.HitVsColdRatio = sv.ColdMissNsPerOp / sv.HitNsPerOp
	}
	if sv.WarmMissNsPerOp > 0 {
		sv.WarmVsColdRatio = sv.ColdMissNsPerOp / sv.WarmMissNsPerOp
	}

	sa := &b.ShardedAcceptance
	sa.GOMAXPROCS = runtime.GOMAXPROCS(0)
	sa.MultiCore = sa.GOMAXPROCS >= 4
	sa.EventsPerSecRatio = b.Ratios["system_sharded4_vs_serial_events_per_sec"]
	sa.HotPathAllocsPerOp = byName["churn/sharded4/pooled/depth=16384"].AllocsPerOp
	bar := 1.5
	if !sa.MultiCore {
		bar = 0.5
	}
	sa.Pass = sa.EventsPerSecRatio >= bar && sa.HotPathAllocsPerOp < 0.01

	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (acceptance: %.2fx events/sec, %.2fx allocs/op, pass=%v)\n",
		*out, b.Acceptance.EventsPerSecRatio, b.Acceptance.AllocsPerOpRatio, b.Acceptance.Pass)
	fmt.Fprintf(os.Stderr, "  sharded: %.2fx events/sec at 4 shards on %d core(s), %.4f hot-path allocs/op, pass=%v\n",
		sa.EventsPerSecRatio, sa.GOMAXPROCS, sa.HotPathAllocsPerOp, sa.Pass)
	fmt.Fprintf(os.Stderr, "  snapshot: %d-byte image, encode %.1f MB/s, decode %.1f MB/s, %.0f bytes/virtual-second\n",
		sn.ImageBytes, sn.EncodeMBPerSec, sn.DecodeMBPerSec, sn.BytesPerVirtualSecond)
	fmt.Fprintf(os.Stderr, "  service: %.0f cached requests/sec, hit %.0fx and warm start %.1fx cheaper than cold miss (cold %.2f ms, warm %.2f ms)\n",
		sv.HitRequestsPerSec, sv.HitVsColdRatio, sv.WarmVsColdRatio, sv.ColdMissNsPerOp/1e6, sv.WarmMissNsPerOp/1e6)
}

func record(name string, r testing.BenchmarkResult, eventsPerOp float64) benchResult {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	res := benchResult{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     ns,
		AllocsPerOp: float64(r.MemAllocs) / float64(r.N),
		EventsPerOp: eventsPerOp,
	}
	if ns > 0 {
		res.EventsPerSec = eventsPerOp * 1e9 / ns
	}
	return res
}

// churnBench mirrors BenchmarkEngineChurn in the root package: one
// schedule plus one dispatch per iteration at a fixed queue depth.
func churnBench(kind sim.QueueKind, noPool bool, depth int) func(*testing.B) {
	return func(b *testing.B) {
		e := sim.NewEngineOpts(1, sim.EngineOptions{Queue: kind, NoPool: noPool})
		fn := func() {}
		// ~1 µs per pending event, the density the kernel cadence
		// produces; depth controls queue length, not slot occupancy.
		for i := 0; i < depth; i++ {
			e.After(sim.Duration(i%depth)*sim.Microsecond, fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.After(sim.Duration(i%depth)*sim.Microsecond, fn)
			e.Step()
		}
	}
}

// shardedChurnBench is churnBench on the sharded queue with events
// spread round-robin over the shards by hint, so every Step exercises
// the merge-pop (global-min scan plus cached-min maintenance) — the
// exact overhead -engine=sharded adds to every dispatch. It must stay
// alloc-free: the shards are plain ladders and the hint only routes
// storage.
func shardedChurnBench(shards, depth int) func(*testing.B) {
	return func(b *testing.B) {
		e := sim.NewEngineOpts(1, sim.EngineOptions{
			Queue:          sim.QueueSharded,
			Shards:         shards,
			ShardLookahead: 50 * sim.Microsecond,
		})
		fn := func() {}
		for i := 0; i < depth; i++ {
			e.SetShardHint(i % shards)
			e.After(sim.Duration(i%depth)*sim.Microsecond, fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.SetShardHint(i % shards)
			e.After(sim.Duration(i%depth)*sim.Microsecond, fn)
			e.Step()
		}
	}
}

// shardTickBench advances one long-lived shard-tick system (8 simulated
// CPUs, ring IPIs at exactly the lookahead) by sliceMs of virtual time
// per iteration through runner.RunSharded with one worker per shard.
// The set is built and warmed before the timer so the measurement sees
// the steady state of the window protocol, not pool growth; 1 shard
// runs the serial executor and is the ratio denominator.
func shardTickBench(shards, sliceMs int, eventsPerOp *float64) func(*testing.B) {
	return func(b *testing.B) {
		set, collect := sim.NewShardTick(sim.ShardTickConfig{
			CPUs:      8,
			Shards:    shards,
			Lookahead: 50 * sim.Microsecond,
			Period:    2 * sim.Microsecond,
			IPIEvery:  4,
			Seed:      0x7e57,
		})
		slice := sim.Duration(sliceMs) * sim.Millisecond
		now := sim.Time(0).Add(slice)
		runner.RunSharded(set, now, shards)
		warmed := collect().Events
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now = now.Add(slice)
			runner.RunSharded(set, now, shards)
		}
		b.StopTimer()
		*eventsPerOp = float64(collect().Events-warmed) / float64(b.N)
	}
}

// snapshotEncodeBench serialises the post-boot shielded reference
// machine (full load mix, 40 ms of virtual time) once per iteration;
// imgBytes receives the image size.
func snapshotEncodeBench(imgBytes *int) func(*testing.B) {
	return func(b *testing.B) {
		s, err := core.BootReference(core.RefShielded, 1, "", 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		img, err := s.K.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		*imgBytes = len(img)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.K.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// snapshotDecodeBench restores the reference image into a standing
// machine once per iteration — the full decode: drain the queue,
// overwrite every component, re-push every pending event.
func snapshotDecodeBench() func(*testing.B) {
	return func(b *testing.B) {
		src, err := core.BootReference(core.RefShielded, 1, "", 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		img, err := src.K.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		dst, err := core.BootReference(core.RefShielded, 1, "", 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dst.K.RestoreImage(img); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// systemBench runs one stress-loaded machine, advancing virtual time in
// 1 ms slices; eventsPerOp receives the measured events per slice. The
// slice count bounds each iteration so testing.Benchmark converges.
func systemBench(kind sim.QueueKind, slices int, eventsPerOp *float64) func(*testing.B) {
	return func(b *testing.B) {
		cfg := kernel.RedHawk14(2, 1.0)
		cfg.EventQueue = kind
		s := shieldsim.NewSystem(cfg, 1, shieldsim.SystemOptions{
			RTCHz: 2048,
			Loads: []string{shieldsim.LoadStressKernel},
		})
		s.Start()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < slices; j++ {
				s.K.Eng.Run(s.K.Now() + sim.Time(sim.Millisecond))
			}
		}
		*eventsPerOp = float64(s.K.Eng.Fired()) / float64(b.N)
	}
}

// parallelBench fans `machines` independent stress machines out across
// the replication runner with one event pool per worker (the
// MapSeededPooled ownership pattern) and counts total events fired.
func parallelBench(kind sim.QueueKind, workers, machines, horizonMs int, eventsPerOp *float64) func(*testing.B) {
	return func(b *testing.B) {
		var total uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fired := runner.MapSeededPooled(workers, 99, machines,
				func(j int, seed uint64, pool *sim.EventPool) uint64 {
					cfg := kernel.RedHawk14(2, 1.0)
					cfg.EventQueue = kind
					cfg.EventPool = pool
					s := shieldsim.NewSystem(cfg, seed, shieldsim.SystemOptions{
						RTCHz: 2048,
						Loads: []string{shieldsim.LoadStressKernel},
					})
					s.Start()
					s.K.Eng.Run(sim.Time(sim.Duration(horizonMs) * sim.Millisecond))
					return s.K.Eng.Fired()
				})
			for _, f := range fired {
				total += f
			}
		}
		*eventsPerOp = float64(total) / float64(b.N)
	}
}
