// Command benchjson records the event-engine performance baseline as a
// machine-readable JSON file (BENCH_engine.json at the repo root).
//
// Usage:
//
//	benchjson [-o BENCH_engine.json] [-quick]
//
// It runs the engine benchmark matrix through testing.Benchmark —
// {ladder, heap} × {pooled, alloc} schedule/dispatch churn at several
// steady-state queue depths, plus full-system serial and parallel
// replication throughput on both queue implementations — and writes one
// JSON document with ns/op, allocs/op and events/sec per benchmark and
// the headline ratios against the reference configuration (binary heap,
// one allocation per event: the engine before the ladder/pool overhaul).
//
// The file is a recorded baseline, not a gate: regenerate it with
// `make bench-json` when the engine changes, and read the `ratios`
// block to see what the ladder queue and the event pool buy on the
// machine that produced it. The tool always exits 0 unless it cannot
// run the benchmarks or write the file; CI uploads the JSON as an
// artifact and fails only on build errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	shieldsim "repro"
	"repro/internal/kernel"
	"repro/internal/runner"
	"repro/internal/sim"
)

// benchResult is one benchmark's record in the baseline file.
type benchResult struct {
	Name string `json:"name"`
	// Iters is the iteration count testing.Benchmark settled on.
	Iters int `json:"iters"`
	// NsPerOp is wall-clock nanoseconds per benchmark iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per iteration.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// EventsPerOp is how many engine events one iteration dispatches
	// (1 for the churn microbenchmarks, measured for system runs).
	EventsPerOp float64 `json:"events_per_op"`
	// EventsPerSec = EventsPerOp / (NsPerOp * 1e-9): the throughput
	// headline.
	EventsPerSec float64 `json:"events_per_sec"`
}

// baseline is the whole BENCH_engine.json document.
type baseline struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Benchmarks is the full matrix; Ratios the derived headlines.
	Benchmarks []benchResult      `json:"benchmarks"`
	Ratios     map[string]float64 `json:"ratios"`
	// Acceptance restates the PR's perf criterion against the reference
	// heap+alloc configuration: >=1.5x events/sec OR <=0.5x allocs/op.
	Acceptance struct {
		EventsPerSecRatio float64 `json:"events_per_sec_ratio"`
		AllocsPerOpRatio  float64 `json:"allocs_per_op_ratio"`
		Pass              bool    `json:"pass"`
	} `json:"acceptance"`
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output path for the baseline JSON")
	quick := flag.Bool("quick", false, "smaller system/parallel runs (smoke mode; ratios are noisier)")
	flag.Parse()

	b := baseline{
		Schema:     "bench-engine/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Ratios:     map[string]float64{},
	}

	byName := map[string]benchResult{}
	add := func(r benchResult) {
		b.Benchmarks = append(b.Benchmarks, r)
		byName[r.Name] = r
		fmt.Fprintf(os.Stderr, "%-40s %12.1f ns/op %8.2f allocs/op %14.0f events/sec\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
	}

	// --- churn matrix: per-event engine overhead at fixed depth ---
	for _, kind := range []sim.QueueKind{sim.QueueLadder, sim.QueueHeap} {
		for _, mode := range []struct {
			name   string
			noPool bool
		}{{"pooled", false}, {"alloc", true}} {
			for _, depth := range []int{1024, 16384} {
				name := fmt.Sprintf("churn/%s/%s/depth=%d", kind, mode.name, depth)
				r := testing.Benchmark(churnBench(kind, mode.noPool, depth))
				add(record(name, r, 1))
			}
		}
	}

	// --- full system, serial: one machine under stress load ---
	slices := 400
	machines, horizon := 8, 30
	if *quick {
		slices, machines, horizon = 50, 4, 10
	}
	for _, kind := range []sim.QueueKind{sim.QueueLadder, sim.QueueHeap} {
		var evPerOp float64
		r := testing.Benchmark(systemBench(kind, slices, &evPerOp))
		add(record(fmt.Sprintf("system/serial/%s", kind), r, evPerOp))
	}

	// --- full system, parallel: replication fan-out, per-worker pools ---
	for _, kind := range []sim.QueueKind{sim.QueueLadder, sim.QueueHeap} {
		var evPerOp float64
		r := testing.Benchmark(parallelBench(kind, 0, machines, horizon, &evPerOp))
		add(record(fmt.Sprintf("system/parallel/%s", kind), r, evPerOp))
	}

	ratio := func(name, num, den, metric string) {
		a, b1 := byName[num], byName[den]
		var x float64
		switch metric {
		case "events_per_sec":
			if b1.EventsPerSec > 0 {
				x = a.EventsPerSec / b1.EventsPerSec
			}
		case "allocs_per_op":
			if b1.AllocsPerOp > 0 {
				x = a.AllocsPerOp / b1.AllocsPerOp
			}
		}
		b.Ratios[name] = x
	}
	ratio("churn_new_vs_reference_events_per_sec",
		"churn/ladder/pooled/depth=16384", "churn/heap/alloc/depth=16384", "events_per_sec")
	ratio("churn_new_vs_reference_allocs_per_op",
		"churn/ladder/pooled/depth=16384", "churn/heap/alloc/depth=16384", "allocs_per_op")
	ratio("churn_pooled_vs_alloc_allocs_per_op",
		"churn/ladder/pooled/depth=1024", "churn/ladder/alloc/depth=1024", "allocs_per_op")
	ratio("churn_ladder_vs_heap_events_per_sec",
		"churn/ladder/pooled/depth=16384", "churn/heap/pooled/depth=16384", "events_per_sec")
	ratio("system_serial_ladder_vs_heap_events_per_sec",
		"system/serial/ladder", "system/serial/heap", "events_per_sec")
	ratio("system_parallel_ladder_vs_heap_events_per_sec",
		"system/parallel/ladder", "system/parallel/heap", "events_per_sec")

	b.Acceptance.EventsPerSecRatio = b.Ratios["churn_new_vs_reference_events_per_sec"]
	b.Acceptance.AllocsPerOpRatio = b.Ratios["churn_new_vs_reference_allocs_per_op"]
	b.Acceptance.Pass = b.Acceptance.EventsPerSecRatio >= 1.5 || b.Acceptance.AllocsPerOpRatio <= 0.5

	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (acceptance: %.2fx events/sec, %.2fx allocs/op, pass=%v)\n",
		*out, b.Acceptance.EventsPerSecRatio, b.Acceptance.AllocsPerOpRatio, b.Acceptance.Pass)
}

func record(name string, r testing.BenchmarkResult, eventsPerOp float64) benchResult {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	res := benchResult{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     ns,
		AllocsPerOp: float64(r.MemAllocs) / float64(r.N),
		EventsPerOp: eventsPerOp,
	}
	if ns > 0 {
		res.EventsPerSec = eventsPerOp * 1e9 / ns
	}
	return res
}

// churnBench mirrors BenchmarkEngineChurn in the root package: one
// schedule plus one dispatch per iteration at a fixed queue depth.
func churnBench(kind sim.QueueKind, noPool bool, depth int) func(*testing.B) {
	return func(b *testing.B) {
		e := sim.NewEngineOpts(1, sim.EngineOptions{Queue: kind, NoPool: noPool})
		fn := func() {}
		// ~1 µs per pending event, the density the kernel cadence
		// produces; depth controls queue length, not slot occupancy.
		for i := 0; i < depth; i++ {
			e.After(sim.Duration(i%depth)*sim.Microsecond, fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.After(sim.Duration(i%depth)*sim.Microsecond, fn)
			e.Step()
		}
	}
}

// systemBench runs one stress-loaded machine, advancing virtual time in
// 1 ms slices; eventsPerOp receives the measured events per slice. The
// slice count bounds each iteration so testing.Benchmark converges.
func systemBench(kind sim.QueueKind, slices int, eventsPerOp *float64) func(*testing.B) {
	return func(b *testing.B) {
		cfg := kernel.RedHawk14(2, 1.0)
		cfg.EventQueue = kind
		s := shieldsim.NewSystem(cfg, 1, shieldsim.SystemOptions{
			RTCHz: 2048,
			Loads: []string{shieldsim.LoadStressKernel},
		})
		s.Start()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < slices; j++ {
				s.K.Eng.Run(s.K.Now() + sim.Time(sim.Millisecond))
			}
		}
		*eventsPerOp = float64(s.K.Eng.Fired()) / float64(b.N)
	}
}

// parallelBench fans `machines` independent stress machines out across
// the replication runner with one event pool per worker (the
// MapSeededPooled ownership pattern) and counts total events fired.
func parallelBench(kind sim.QueueKind, workers, machines, horizonMs int, eventsPerOp *float64) func(*testing.B) {
	return func(b *testing.B) {
		var total uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fired := runner.MapSeededPooled(workers, 99, machines,
				func(j int, seed uint64, pool *sim.EventPool) uint64 {
					cfg := kernel.RedHawk14(2, 1.0)
					cfg.EventQueue = kind
					cfg.EventPool = pool
					s := shieldsim.NewSystem(cfg, seed, shieldsim.SystemOptions{
						RTCHz: 2048,
						Loads: []string{shieldsim.LoadStressKernel},
					})
					s.Start()
					s.K.Eng.Run(sim.Time(sim.Duration(horizonMs) * sim.Millisecond))
					return s.K.Eng.Fired()
				})
			for _, f := range fired {
				total += f
			}
		}
		*eventsPerOp = float64(total) / float64(b.N)
	}
}
