package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/simd"
)

// Service benchmarks (bench-engine/v4): end-to-end request latency of
// the simd serving layer over an in-process HTTP server — the cache-hit
// fast path (admission + content-addressed store lookup, no simulation),
// the cold-miss path (full continuation boot + run), and the warm-miss
// path (distinct windows warm-started from one cached boot image).
// Hit ns/op is dominated by HTTP + JSON overhead; the hit-vs-miss gap
// is what the content-addressed cache buys per duplicate request.

// servicePost issues one synchronous scenario request and fails the
// benchmark on anything but 200.
func servicePost(b *testing.B, url, body string) {
	resp, err := http.Post(url+"/v1/scenarios?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// newServiceBench builds a fresh in-process server per benchmark so
// cache state never leaks between measurements.
func newServiceBench(b *testing.B) (*simd.Server, *httptest.Server) {
	srv, err := simd.New(simd.Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() { ts.Close(); srv.Drain() })
	return srv, ts
}

// serviceHitBench measures the cache-hit path: the scenario is run once
// before the timer, then every iteration is a duplicate request served
// from the content-addressed store.
func serviceHitBench() func(*testing.B) {
	return func(b *testing.B) {
		_, ts := newServiceBench(b)
		const body = `{"figure": "ref-shielded", "seed": 1, "run_for_ms": 10}`
		servicePost(b, ts.URL, body)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			servicePost(b, ts.URL, body)
		}
	}
}

// serviceColdMissBench measures the cold-miss path: every iteration is
// a continuation over a fresh seed, so each request boots its reference
// machine from scratch — no result or image reuse.
func serviceColdMissBench() func(*testing.B) {
	return func(b *testing.B) {
		_, ts := newServiceBench(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			servicePost(b, ts.URL, fmt.Sprintf(`{"figure": "ref-stock", "seed": %d, "run_for_ms": 5}`, 1000+i))
		}
	}
}

// serviceWarmMissBench measures the warm-start path at the same virtual
// work as the cold-miss benchmark: the setup loop boots one image per
// seed (untimed), then every timed iteration requests a different
// window over an already-imaged boot — a result-cache miss that
// restores the snapshot instead of replaying the 40 ms boot. The
// warm-vs-cold gap is therefore exactly the boot replay the image
// saves.
func serviceWarmMissBench() func(*testing.B) {
	return func(b *testing.B) {
		_, ts := newServiceBench(b)
		for i := 0; i < b.N; i++ {
			servicePost(b, ts.URL, fmt.Sprintf(`{"figure": "ref-stock", "seed": %d, "run_for_ms": 1}`, 1000+i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			servicePost(b, ts.URL, fmt.Sprintf(`{"figure": "ref-stock", "seed": %d, "run_for_ms": 5}`, 1000+i))
		}
	}
}
