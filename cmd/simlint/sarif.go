package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/analysis/framework"
)

// Minimal SARIF 2.1.0 object model — just the subset GitHub code
// scanning consumes (static-analysis-results-format v2.1.0 §3).
// Everything is value types so the zero configuration marshals to a
// valid, stable document.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	Fixes     []sarifFix      `json:"fixes,omitempty"`
}

// sarifFix carries a machine-applicable rewrite (§3.55): a description
// plus per-file replacement lists. Code-scanning UIs render these as
// one-click suggested changes.
type sarifFix struct {
	Description     sarifMessage          `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Replacements     []sarifReplacement    `json:"replacements"`
}

// sarifReplacement deletes deletedRegion and inserts insertedContent in
// its place; a zero-length region (endColumn == startColumn on one
// line) is a pure insertion.
type sarifReplacement struct {
	DeletedRegion   sarifRegion           `json:"deletedRegion"`
	InsertedContent *sarifArtifactContent `json:"insertedContent,omitempty"`
}

type sarifArtifactContent struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// writeSARIF renders an analysis as one SARIF run. Rule order follows
// the (normalized, hence sorted) analyzer list; result order follows
// the analysis's position-sorted diagnostics, so the document is
// byte-stable for a given tree.
func writeSARIF(w io.Writer, a *framework.Analysis, analyzers []*framework.Analyzer) error {
	ruleIndex := make(map[string]int, len(analyzers))
	rules := make([]sarifRule, 0, len(analyzers))
	for i, an := range analyzers {
		ruleIndex[an.Name] = i
		rules = append(rules, sarifRule{
			ID:               an.Name,
			ShortDescription: sarifMessage{Text: strings.SplitN(an.Doc, "\n", 2)[0]},
			FullDescription:  sarifMessage{Text: an.Doc},
		})
	}
	relURI := func(name string) string {
		if rel, err := filepath.Rel(a.Dir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		return filepath.ToSlash(name)
	}
	results := make([]sarifResult, 0, len(a.Diags))
	for _, d := range a.Diags {
		pos := a.Fset.Position(d.Pos)
		uri := relURI(pos.Filename)
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       uri,
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
			Fixes: sarifFixes(a, d, relURI),
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "simlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifFixes renders a diagnostic's suggested fixes as SARIF fix
// objects, grouping each fix's edits by file (every fix this tool emits
// is single-file today, but the format allows more).
func sarifFixes(a *framework.Analysis, d framework.Diagnostic, relURI func(string) string) []sarifFix {
	if len(d.Fixes) == 0 {
		return nil
	}
	fixes := make([]sarifFix, 0, len(d.Fixes))
	for _, f := range d.Fixes {
		byFile := make(map[string][]sarifReplacement)
		var order []string
		for _, e := range f.Edits {
			start := a.Fset.Position(e.Pos)
			end := a.Fset.Position(e.End)
			uri := relURI(start.Filename)
			if _, seen := byFile[uri]; !seen {
				order = append(order, uri)
			}
			rep := sarifReplacement{
				DeletedRegion: sarifRegion{
					StartLine:   start.Line,
					StartColumn: start.Column,
					EndLine:     end.Line,
					EndColumn:   end.Column,
				},
			}
			if e.NewText != "" {
				rep.InsertedContent = &sarifArtifactContent{Text: e.NewText}
			}
			byFile[uri] = append(byFile[uri], rep)
		}
		changes := make([]sarifArtifactChange, 0, len(order))
		for _, uri := range order {
			changes = append(changes, sarifArtifactChange{
				ArtifactLocation: sarifArtifactLocation{URI: uri, URIBaseID: "%SRCROOT%"},
				Replacements:     byFile[uri],
			})
		}
		fixes = append(fixes, sarifFix{
			Description:     sarifMessage{Text: f.Message},
			ArtifactChanges: changes,
		})
	}
	return fixes
}
