package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/analysis/framework"
)

// Minimal SARIF 2.1.0 object model — just the subset GitHub code
// scanning consumes (static-analysis-results-format v2.1.0 §3).
// Everything is value types so the zero configuration marshals to a
// valid, stable document.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders an analysis as one SARIF run. Rule order follows
// the (normalized, hence sorted) analyzer list; result order follows
// the analysis's position-sorted diagnostics, so the document is
// byte-stable for a given tree.
func writeSARIF(w io.Writer, a *framework.Analysis, analyzers []*framework.Analyzer) error {
	ruleIndex := make(map[string]int, len(analyzers))
	rules := make([]sarifRule, 0, len(analyzers))
	for i, an := range analyzers {
		ruleIndex[an.Name] = i
		rules = append(rules, sarifRule{
			ID:               an.Name,
			ShortDescription: sarifMessage{Text: strings.SplitN(an.Doc, "\n", 2)[0]},
			FullDescription:  sarifMessage{Text: an.Doc},
		})
	}
	results := make([]sarifResult, 0, len(a.Diags))
	for _, d := range a.Diags {
		pos := a.Fset.Position(d.Pos)
		uri := pos.Filename
		if rel, err := filepath.Rel(a.Dir, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "simlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
