// Command simlint is the determinism linter for this repository: a
// multichecker over the custom analyzers in internal/analysis that
// mechanically enforce the simulator's reproducibility contract
// (DESIGN.md, "Determinism rules").
//
// Standalone:
//
//	simlint ./...              # lint packages under the current module
//	simlint -list              # describe the analyzers
//	simlint ./internal/sim     # lint one package
//
// As a go vet tool (per-package, build-cached):
//
//	go build -o /tmp/simlint ./cmd/simlint
//	go vet -vettool=/tmp/simlint ./...
//
// Findings print as "path:line:col: message (analyzer)" and make the
// exit status non-zero, so CI treats a determinism violation like a
// failing test. A finding can be suppressed — visibly and greppably —
// with a trailing or preceding comment:
//
//	//simlint:allow <analyzer> <reason>
//
// The reason is mandatory; a reasonless directive is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/floatmerge"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nondeterminism"
	"repro/internal/analysis/seedderive"
)

var analyzers = []*framework.Analyzer{
	nondeterminism.Analyzer,
	maporder.Analyzer,
	seedderive.Analyzer,
	floatmerge.Analyzer,
}

func main() {
	// `go vet -vettool` protocol: -V=full, -flags, or a unit.cfg file.
	// VetMain exits the process when it recognizes the invocation.
	if framework.VetMain(os.Args[1:], analyzers) {
		return
	}

	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-list] [package patterns]\n\n")
		fmt.Fprintf(os.Stderr, "Lints module packages (default ./...) with the determinism analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	n, err := framework.Run(os.Stdout, cwd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
