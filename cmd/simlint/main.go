// Command simlint is the determinism linter for this repository: a
// multichecker over the custom analyzers in internal/analysis that
// mechanically enforce the simulator's reproducibility contract
// (DESIGN.md, "Determinism rules").
//
// Standalone:
//
//	simlint ./...               # lint packages under the current module
//	simlint -list               # describe the analyzers
//	simlint ./internal/sim      # lint one package
//	simlint -format=sarif ./... # SARIF 2.1.0 on stdout (code scanning)
//
// As a go vet tool (per-package, build-cached):
//
//	go build -o /tmp/simlint ./cmd/simlint
//	go vet -vettool=/tmp/simlint ./...
//
// The vet protocol hands the tool one compilation unit at a time, so
// module-wide analyzers (purity) run only in standalone mode; CI runs
// both.
//
// Findings print as "path:line:col: message (analyzer)" and make the
// exit status non-zero, so CI treats a determinism violation like a
// failing test. A finding can be suppressed — visibly and greppably —
// with a trailing or preceding comment:
//
//	//simlint:allow <analyzer> <reason>
//
// The reason is mandatory; a reasonless directive is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis/floatmerge"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/globalstate"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/latbound"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nondeterminism"
	"repro/internal/analysis/purity"
	"repro/internal/analysis/seedderive"
	"repro/internal/analysis/shardsafe"
	"repro/internal/analysis/tracefmt"
	"repro/internal/analysis/unitsafe"
)

// analyzers is normalized at registration — sorted by name with
// duplicates dropped — so -list, usage, text output and the vet
// protocol all present the same stable set no matter how this list is
// assembled.
var analyzers = framework.Normalize([]*framework.Analyzer{
	nondeterminism.Analyzer,
	maporder.Analyzer,
	seedderive.Analyzer,
	floatmerge.Analyzer,
	purity.Analyzer,
	globalstate.Analyzer,
	tracefmt.Analyzer,
	hotalloc.Analyzer,
	shardsafe.Analyzer,
	latbound.Analyzer,
	unitsafe.Analyzer,
})

func main() {
	// `go vet -vettool` protocol: -V=full, -flags, or a unit.cfg file.
	// VetMain exits the process when it recognizes the invocation.
	if framework.VetMain(os.Args[1:], analyzers) {
		return
	}

	list := flag.Bool("list", false, "describe the analyzers and exit")
	format := flag.String("format", "text", `output format: "text" or "sarif" (SARIF 2.1.0 on stdout, for code-scanning upload)`)
	baseline := flag.String("baseline", "", "file of known findings to ignore: fail only on findings not listed in it")
	writeBaseline := flag.String("writebaseline", "", "record the current findings to this file and exit 0")
	bounds := flag.String("bounds", "", "write latbound's machine-readable static bounds report (JSON) to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-list] [-format=text|sarif] [-baseline file] [-writebaseline file] [package patterns]\n\n")
		fmt.Fprintf(os.Stderr, "Lints module packages (default ./...) with the determinism analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "simlint: unknown -format %q (want text or sarif)\n", *format)
		os.Exit(2)
	}

	a, err := framework.Analyze(cwd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	if *bounds != "" {
		report, _ := latbound.Collect(a.Fset, a.Pkgs, framework.BuildCallGraph(a.Pkgs), cwd)
		if err := writeBounds(*bounds, report); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "simlint: wrote %d region bound(s) to %s\n", len(report.Regions), *bounds)
	}

	if *writeBaseline != "" {
		n, err := writeBaselineFile(*writeBaseline, a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "simlint: wrote %d baseline entr%s to %s\n",
			n, plural(n, "y", "ies"), *writeBaseline)
		return
	}
	if *baseline != "" {
		entries, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		if ignored := applyBaseline(a, entries); ignored > 0 {
			fmt.Fprintf(os.Stderr, "simlint: %d baselined finding(s) ignored\n", ignored)
		}
	}

	switch *format {
	case "text":
		for _, d := range a.Diags {
			pos := a.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
			fmt.Printf("%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
		}
	case "sarif":
		if err := writeSARIF(os.Stdout, a, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	}
	if n := len(a.Diags); n > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
