package main

import (
	"encoding/json"
	"os"

	"repro/internal/latency"
)

// writeBounds serializes the latbound region report as indented JSON —
// the committed lint/bounds.json artifact CI diffs against, and the
// input reprocheck's latbound-envelope claim composes.
func writeBounds(path string, report *latency.Report) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
