package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// buildSimlint compiles the simlint binary once into a temp dir.
func buildSimlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "simlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build simlint: %v\n%s", err, out)
	}
	return bin
}

// scratchModule writes a throwaway module whose internal/sim package
// violates the nondeterminism rule and whose internal/core package
// violates seedderive, with one suppressed site.
func scratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("internal/sim/clock.go", `package sim

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
`)
	write("internal/core/seeds.go", `package core

func Shard(seed uint64, i int) uint64 {
	return seed + uint64(i)
}

func Legacy(seed uint64) uint64 {
	//simlint:allow seedderive scratch fixture exercising the suppression path
	return seed + 7919
}
`)
	// An order-sensitive map iteration in a file that imports sort: the
	// maporder finding carries a machine-applicable collect-then-sort
	// fix, which the SARIF test asserts below.
	write("internal/core/dump.go", `package core

import (
	"fmt"
	"sort"
)

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func Sorted(xs []string) {
	sort.Strings(xs)
}
`)
	return dir
}

func TestStandalone(t *testing.T) {
	bin := buildSimlint(t)
	mod := scratchModule(t)

	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("simlint exited 0 on a tree with violations\nstdout:\n%s", stdout.String())
	}
	out := stdout.String()
	// Each violation must be attributed to the analyzer that owns the rule.
	if !strings.Contains(out, "time.Now") || !strings.Contains(out, "(nondeterminism)") {
		t.Errorf("missing nondeterminism finding for time.Now:\n%s", out)
	}
	if !strings.Contains(out, "arithmetic on a seed") || !strings.Contains(out, "(seedderive)") {
		t.Errorf("missing seedderive finding:\n%s", out)
	}
	if strings.Contains(out, "Legacy") || strings.Count(out, "(seedderive)") != 1 {
		t.Errorf("suppressed site leaked into findings:\n%s", out)
	}
}

// TestReasonlessAllow: an allow directive without a justification
// string is itself a finding, attributed to the "simlint"
// pseudo-analyzer, and never suppresses the diagnostic it annotates —
// the escape hatch stays auditable end to end.
func TestReasonlessAllow(t *testing.T) {
	bin := buildSimlint(t)
	mod := scratchModule(t)
	extra := `package core

func Shift(seed uint64) uint64 {
	//simlint:allow seedderive
	return seed + 13
}

//simlint:allow latbound
func pad() { _ = pad }
`
	if err := os.WriteFile(filepath.Join(mod, "internal", "core", "shift.go"), []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("simlint exited 0 on a tree with reasonless allows:\n%s", out)
	}
	s := string(out)
	for _, want := range []string{
		"simlint:allow seedderive needs a reason",
		"simlint:allow latbound needs a reason",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing bad-directive finding %q:\n%s", want, s)
		}
	}
	if strings.Count(s, "(simlint)") != 2 {
		t.Errorf("bad directives must be attributed to the simlint pseudo-analyzer, twice:\n%s", s)
	}
	// Shard in seeds.go plus the annotated Shift line: the reasonless
	// directive suppresses nothing.
	if strings.Count(s, "(seedderive)") != 2 {
		t.Errorf("reasonless allow changed seedderive findings (want 2):\n%s", s)
	}
}

func TestStandaloneCleanTree(t *testing.T) {
	bin := buildSimlint(t)
	mod := scratchModule(t)
	// Lint only a package with no findings: exit status must be 0.
	cmd := exec.Command(bin, "-list")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("simlint -list: %v\n%s", err, out)
	}
	names := []string{"floatmerge", "globalstate", "hotalloc", "latbound", "maporder", "nondeterminism", "purity", "seedderive", "shardsafe", "tracefmt", "unitsafe"}
	last := -1
	for _, name := range names {
		i := strings.Index(string(out), name+":")
		if i < 0 {
			t.Errorf("-list output missing analyzer %s", name)
			continue
		}
		// The registration list is normalized, so -list is sorted by
		// name regardless of registration order.
		if i < last {
			t.Errorf("-list output not sorted: %s appears before a lexically smaller name", name)
		}
		last = i
	}
	if !sort.StringsAreSorted(names) {
		t.Fatal("test bug: expected names must be given sorted")
	}
}

// TestSARIF runs simlint -format=sarif over the scratch module and
// checks the document shape GitHub code scanning requires: SARIF
// 2.1.0, one run, a rules table naming every analyzer, and results
// with ruleId + physical locations carrying line numbers.
func TestSARIF(t *testing.T) {
	bin := buildSimlint(t)
	mod := scratchModule(t)

	cmd := exec.Command(bin, "-format=sarif", "./...")
	cmd.Dir = mod
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("simlint -format=sarif exited 0 on a tree with violations\n%s", stdout.String())
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Fixes []struct {
					Description struct {
						Text string `json:"text"`
					} `json:"description"`
					ArtifactChanges []struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Replacements []struct {
							DeletedRegion struct {
								StartLine   int `json:"startLine"`
								StartColumn int `json:"startColumn"`
								EndLine     int `json:"endLine"`
								EndColumn   int `json:"endColumn"`
							} `json:"deletedRegion"`
							InsertedContent *struct {
								Text string `json:"text"`
							} `json:"insertedContent"`
						} `json:"replacements"`
					} `json:"artifactChanges"`
				} `json:"fixes"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version = %q, $schema = %q; want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "simlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	var ruleIDs []string
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs = append(ruleIDs, r.ID)
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has empty shortDescription", r.ID)
		}
	}
	for _, name := range []string{"floatmerge", "globalstate", "hotalloc", "latbound", "maporder", "nondeterminism", "purity", "seedderive", "shardsafe", "tracefmt", "unitsafe"} {
		found := false
		for _, id := range ruleIDs {
			found = found || id == name
		}
		if !found {
			t.Errorf("rules table missing %s (got %v)", name, ruleIDs)
		}
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for a module with seeded violations")
	}
	sawNondet := false
	sawFix := false
	for _, r := range run.Results {
		if r.RuleID == "" || r.Level != "error" || r.Message.Text == "" {
			t.Errorf("malformed result: %+v", r)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.Region.StartLine <= 0 {
			t.Errorf("result missing startLine: %+v", r)
		}
		if filepath.IsAbs(loc.ArtifactLocation.URI) || strings.Contains(loc.ArtifactLocation.URI, `\`) {
			t.Errorf("artifact URI %q is not a relative slash path", loc.ArtifactLocation.URI)
		}
		if r.RuleID == "nondeterminism" && strings.Contains(r.Message.Text, "time.Now") {
			sawNondet = true
		}
		// The seeded maporder violation sits in a file importing sort,
		// so its result must carry the collect-then-sort fix: a
		// description, one artifact change on the same file, and
		// replacements whose first entry is a pure insertion (zero-width
		// deleted region) introducing the sorted key slice.
		if r.RuleID == "maporder" && strings.Contains(r.Message.Text, "prints") {
			if len(r.Fixes) != 1 {
				t.Fatalf("maporder result has %d fixes, want 1:\n%+v", len(r.Fixes), r)
			}
			fix := r.Fixes[0]
			if !strings.Contains(fix.Description.Text, "sort") {
				t.Errorf("fix description %q does not mention sorting", fix.Description.Text)
			}
			if len(fix.ArtifactChanges) != 1 {
				t.Fatalf("fix has %d artifactChanges, want 1", len(fix.ArtifactChanges))
			}
			change := fix.ArtifactChanges[0]
			if change.ArtifactLocation.URI != r.Locations[0].PhysicalLocation.ArtifactLocation.URI {
				t.Errorf("fix edits %q but the finding is in %q",
					change.ArtifactLocation.URI, r.Locations[0].PhysicalLocation.ArtifactLocation.URI)
			}
			if len(change.Replacements) != 3 {
				t.Fatalf("fix has %d replacements, want 3 (prelude, range header, value rebind)", len(change.Replacements))
			}
			first := change.Replacements[0]
			if first.DeletedRegion.StartLine != first.DeletedRegion.EndLine ||
				first.DeletedRegion.StartColumn != first.DeletedRegion.EndColumn {
				t.Errorf("prelude replacement is not a pure insertion: %+v", first.DeletedRegion)
			}
			if first.InsertedContent == nil || !strings.Contains(first.InsertedContent.Text, "sort.Slice(") {
				t.Errorf("prelude replacement does not introduce the sorted slice: %+v", first.InsertedContent)
			}
			header := change.Replacements[1]
			if header.DeletedRegion.EndColumn <= header.DeletedRegion.StartColumn {
				t.Errorf("range-header replacement deletes nothing: %+v", header.DeletedRegion)
			}
			if header.InsertedContent == nil || !strings.Contains(header.InsertedContent.Text, ":= range sortedK") {
				t.Errorf("range-header replacement does not retarget the loop: %+v", header.InsertedContent)
			}
			sawFix = true
		}
	}
	if !sawNondet {
		t.Error("no nondeterminism time.Now result in SARIF output")
	}
	if !sawFix {
		t.Error("no maporder result carrying the collect-then-sort fix")
	}
}

// TestVetTool runs simlint under the real `go vet -vettool` protocol:
// -V=full for the build cache, -flags for flag discovery, then one
// .cfg compilation unit per package with compiler export data.
func TestVetTool(t *testing.T) {
	bin := buildSimlint(t)
	mod := scratchModule(t)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on a tree with violations\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "time.Now") || !strings.Contains(s, "(nondeterminism)") {
		t.Errorf("vettool run missing nondeterminism finding:\n%s", s)
	}
	if !strings.Contains(s, "arithmetic on a seed") {
		t.Errorf("vettool run missing seedderive finding:\n%s", s)
	}
}

// TestBaseline exercises the -writebaseline / -baseline round trip on
// the scratch module: recording the current findings makes a
// subsequent gated run exit clean, a new violation still fails, and a
// stale baseline entry is harmless.
func TestBaseline(t *testing.T) {
	bin := buildSimlint(t)
	mod := scratchModule(t)
	baseline := filepath.Join(mod, "simlint.baseline")

	record := exec.Command(bin, "-writebaseline", baseline, "./...")
	record.Dir = mod
	if out, err := record.CombinedOutput(); err != nil {
		t.Fatalf("simlint -writebaseline: %v\n%s", err, out)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "internal/sim/clock.go:nondeterminism:") {
		t.Fatalf("baseline missing the seeded nondeterminism entry:\n%s", data)
	}

	gated := exec.Command(bin, "-baseline", baseline, "./...")
	gated.Dir = mod
	var stdout, stderr bytes.Buffer
	gated.Stdout, gated.Stderr = &stdout, &stderr
	if err := gated.Run(); err != nil {
		t.Fatalf("baselined run still failed: %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "baselined finding(s) ignored") {
		t.Errorf("gated run did not report suppressed findings:\n%s", stderr.String())
	}

	// A brand-new violation must fail even with the baseline applied.
	extra := filepath.Join(mod, "internal", "sim", "extra.go")
	if err := os.WriteFile(extra, []byte("package sim\n\nimport \"time\"\n\nfunc Stamp2() int64 {\n\treturn time.Now().UnixNano()\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := exec.Command(bin, "-baseline", baseline, "./...")
	fresh.Dir = mod
	out, err := fresh.CombinedOutput()
	if err == nil {
		t.Fatalf("baselined run exited 0 with a new violation present:\n%s", out)
	}
	if !strings.Contains(string(out), "extra.go") {
		t.Errorf("new finding not reported:\n%s", out)
	}
	if err := os.Remove(extra); err != nil {
		t.Fatal(err)
	}

	// Baseline matching is a multiset: the entry key deliberately has no
	// line number, so a *duplicate* of a baselined finding — same file,
	// same analyzer, same message — must still fail the gate. One entry
	// buys one suppression, not unlimited ones.
	clock := filepath.Join(mod, "internal", "sim", "clock.go")
	src, err := os.ReadFile(clock)
	if err != nil {
		t.Fatal(err)
	}
	dup := string(src) + "\nfunc StampAgain() int64 {\n\treturn time.Now().UnixNano()\n}\n"
	if err := os.WriteFile(clock, []byte(dup), 0o644); err != nil {
		t.Fatal(err)
	}
	duped := exec.Command(bin, "-baseline", baseline, "./...")
	duped.Dir = mod
	out, err = duped.CombinedOutput()
	if err == nil {
		t.Fatalf("baselined run exited 0 with a duplicated violation present:\n%s", out)
	}
	if strings.Count(string(out), "(nondeterminism)") != 1 {
		t.Errorf("want exactly the one unsuppressed duplicate reported:\n%s", out)
	}

	// Re-recording the baseline captures both occurrences (one line
	// each), after which the gate passes again.
	rerecord := exec.Command(bin, "-writebaseline", baseline, "./...")
	rerecord.Dir = mod
	if out, err := rerecord.CombinedOutput(); err != nil {
		t.Fatalf("simlint -writebaseline (re-record): %v\n%s", err, out)
	}
	data, err = os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "internal/sim/clock.go:nondeterminism:") != 2 {
		t.Fatalf("re-recorded baseline does not list the duplicate twice:\n%s", data)
	}
	regated := exec.Command(bin, "-baseline", baseline, "./...")
	regated.Dir = mod
	if out, err := regated.CombinedOutput(); err != nil {
		t.Fatalf("re-recorded baseline run still failed: %v\n%s", err, out)
	}
}
