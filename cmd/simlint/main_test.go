package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSimlint compiles the simlint binary once into a temp dir.
func buildSimlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "simlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build simlint: %v\n%s", err, out)
	}
	return bin
}

// scratchModule writes a throwaway module whose internal/sim package
// violates the nondeterminism rule and whose internal/core package
// violates seedderive, with one suppressed site.
func scratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("internal/sim/clock.go", `package sim

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
`)
	write("internal/core/seeds.go", `package core

func Shard(seed uint64, i int) uint64 {
	return seed + uint64(i)
}

func Legacy(seed uint64) uint64 {
	//simlint:allow seedderive scratch fixture exercising the suppression path
	return seed + 7919
}
`)
	return dir
}

func TestStandalone(t *testing.T) {
	bin := buildSimlint(t)
	mod := scratchModule(t)

	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("simlint exited 0 on a tree with violations\nstdout:\n%s", stdout.String())
	}
	out := stdout.String()
	// Each violation must be attributed to the analyzer that owns the rule.
	if !strings.Contains(out, "time.Now") || !strings.Contains(out, "(nondeterminism)") {
		t.Errorf("missing nondeterminism finding for time.Now:\n%s", out)
	}
	if !strings.Contains(out, "arithmetic on a seed") || !strings.Contains(out, "(seedderive)") {
		t.Errorf("missing seedderive finding:\n%s", out)
	}
	if strings.Contains(out, "Legacy") || strings.Count(out, "(seedderive)") != 1 {
		t.Errorf("suppressed site leaked into findings:\n%s", out)
	}
}

func TestStandaloneCleanTree(t *testing.T) {
	bin := buildSimlint(t)
	mod := scratchModule(t)
	// Lint only a package with no findings: exit status must be 0.
	cmd := exec.Command(bin, "-list")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("simlint -list: %v\n%s", err, out)
	}
	for _, name := range []string{"nondeterminism", "maporder", "seedderive", "floatmerge"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %s", name)
		}
	}
}

// TestVetTool runs simlint under the real `go vet -vettool` protocol:
// -V=full for the build cache, -flags for flag discovery, then one
// .cfg compilation unit per package with compiler export data.
func TestVetTool(t *testing.T) {
	bin := buildSimlint(t)
	mod := scratchModule(t)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on a tree with violations\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "time.Now") || !strings.Contains(s, "(nondeterminism)") {
		t.Errorf("vettool run missing nondeterminism finding:\n%s", s)
	}
	if !strings.Contains(s, "arithmetic on a seed") {
		t.Errorf("vettool run missing seedderive finding:\n%s", s)
	}
}
