package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// Baseline files let a new analyzer land strict without blocking on
// pre-existing audited findings: `-writebaseline lint/simlint.baseline`
// records the current findings, and subsequent runs with `-baseline
// lint/simlint.baseline` fail only on findings not in the file.
//
// An entry is one line of the form
//
//	path:analyzer: message
//
// deliberately without line/column, so unrelated edits to a file do not
// invalidate its baseline. Lines starting with '#' and blank lines are
// comments. Matching is multiset-based: a finding that occurs N times
// needs N identical lines, so duplicating an already-baselined
// violation still fails the gate. Stale entries (matching nothing) are
// harmless — prune them by re-running -writebaseline.

// baselineKey renders a diagnostic as its baseline entry.
func baselineKey(a *framework.Analysis, d framework.Diagnostic) string {
	pos := a.Fset.Position(d.Pos)
	name := pos.Filename
	if rel, err := filepath.Rel(a.Dir, name); err == nil && !filepath.IsAbs(rel) {
		name = rel
	}
	return fmt.Sprintf("%s:%s: %s", filepath.ToSlash(name), d.Analyzer, d.Message)
}

// readBaseline loads the entry multiset from path: each occurrence of
// a line buys one suppression.
func readBaseline(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	entries := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries[line]++
	}
	return entries, sc.Err()
}

// writeBaselineFile records the analysis' findings as a baseline,
// sorted, one line per occurrence — duplicates are meaningful (see
// readBaseline).
func writeBaselineFile(path string, a *framework.Analysis) (int, error) {
	keys := make([]string, 0, len(a.Diags))
	for _, d := range a.Diags {
		keys = append(keys, baselineKey(a, d))
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# simlint baseline: known findings ignored by -baseline runs.\n")
	b.WriteString("# One `path:analyzer: message` entry per line (no line numbers,\n")
	b.WriteString("# so unrelated edits don't invalidate entries). Regenerate with\n")
	b.WriteString("# `go run ./cmd/simlint -writebaseline <this file> ./...`.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return len(keys), os.WriteFile(path, []byte(b.String()), 0o644)
}

// applyBaseline drops baselined findings from the analysis in place and
// returns how many were suppressed. Each entry occurrence suppresses
// one finding: the count is decremented, so the N+1th identical
// violation is reported even when N are baselined. Diagnostics are
// position-sorted, so which duplicates survive is deterministic (the
// last ones in file order).
func applyBaseline(a *framework.Analysis, entries map[string]int) int {
	kept := a.Diags[:0]
	suppressed := 0
	for _, d := range a.Diags {
		if k := baselineKey(a, d); entries[k] > 0 {
			entries[k]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	a.Diags = kept
	return suppressed
}
