// Command shieldctl demonstrates administering CPU shielding on a live
// (simulated) system, the way the paper's §3 describes: it boots a
// RedHawk machine with a background load and an interrupt source, then
// executes a script of /proc reads and writes while showing how task
// placement and interrupt routing react.
//
// Usage:
//
//	shieldctl                  # run the default demonstration script
//	shieldctl -ls              # just list the /proc control files
//	shieldctl -shield 2        # shield the CPUs in hex mask 2, show effect
package main

import (
	"flag"
	"fmt"
	"os"

	shieldsim "repro"
	"repro/internal/trace"
)

func main() {
	ls := flag.Bool("ls", false, "list the /proc control files and exit")
	showTrace := flag.Bool("trace", false, "dump the kernel trace of shield transitions and migrations")
	shield := flag.String("shield", "", "hex CPU mask to shield fully (e.g. 2)")
	cpus := flag.Int("cpus", 2, "number of physical CPUs")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	cfg := shieldsim.RedHawk14(*cpus, 1.4)
	sys := shieldsim.NewSystem(cfg, *seed, shieldsim.SystemOptions{
		RTCHz: 256,
		Loads: []string{shieldsim.LoadDiskNoise, shieldsim.LoadTTCPNet},
	})
	k := sys.K
	if *showTrace {
		k.Trace = trace.NewBuffer(256)
		k.Trace.SetFilter(trace.KindShield, trace.KindMigrate)
	}
	sys.Start()
	k.Eng.Run(shieldsim.Time(50 * shieldsim.Millisecond))

	if *ls {
		if err := k.FS.Walk("/proc", func(p string) { fmt.Println(p) }); err != nil {
			fmt.Fprintln(os.Stderr, "shieldctl:", err)
			os.Exit(1)
		}
		return
	}

	show := func() {
		fmt.Println("shield masks:")
		for _, f := range []string{"procs", "irqs", "ltmr", "all"} {
			v, _ := k.FS.Read("/proc/shield/" + f)
			fmt.Printf("  /proc/shield/%-6s %s", f, v)
		}
		fmt.Println("interrupts:")
		v, _ := k.FS.Read("/proc/interrupts")
		fmt.Print(v)
		fmt.Println("tasks:")
		for _, t := range k.Tasks() {
			if t.State().String() == "exited" {
				continue
			}
			fmt.Printf("  %-14s %-11s prio %-3d affinity %-4s effective %-4s cpu %d\n",
				t.Name, t.Policy, t.RTPrio, t.Affinity(), t.EffectiveAffinity(), t.CPU())
		}
	}

	fmt.Println("=== before ===")
	show()

	mask := *shield
	if mask == "" {
		mask = shieldsim.MaskOf(cfg.NumCPUs() - 1).String()
	}
	fmt.Printf("\n=== echo %s > /proc/shield/all ===\n", mask)
	if err := k.FS.Write("/proc/shield/all", mask); err != nil {
		fmt.Fprintln(os.Stderr, "shieldctl:", err)
		os.Exit(1)
	}
	k.Eng.Run(k.Now() + shieldsim.Time(100*shieldsim.Millisecond))

	fmt.Println()
	show()

	if *showTrace {
		fmt.Println("\nkernel trace (shield transitions and migrations):")
		fmt.Print(k.Trace.Dump())
	}
}
