// Command realfeel is a clone of Andrew Morton's realfeel benchmark
// running against the simulated systems: it measures response to the RTC
// periodic interrupt under the stress-kernel load and prints the same
// kind of histogram the paper's Figures 5 and 6 summarise.
//
// Usage:
//
//	realfeel -kernel stock|patched|redhawk [-shield] [-hz 2048] [-samples N]
package main

import (
	"flag"
	"fmt"
	"os"

	shieldsim "repro"
)

func main() {
	kern := flag.String("kernel", "stock", "kernel: stock, patched or redhawk")
	shield := flag.Bool("shield", false, "run on a fully shielded CPU (RTC affined)")
	hz := flag.Int("hz", 2048, "RTC periodic rate")
	samples := flag.Int("samples", 200_000, "interrupt responses to measure")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	var cfg shieldsim.Config
	switch *kern {
	case "stock":
		cfg = shieldsim.StandardLinux24(2, 0.933, false)
	case "patched":
		cfg = shieldsim.PatchedLinux24(2, 0.933)
	case "redhawk":
		cfg = shieldsim.RedHawk14(2, 0.933)
	default:
		fmt.Fprintf(os.Stderr, "realfeel: unknown kernel %q\n", *kern)
		os.Exit(2)
	}
	if *shield && !cfg.ShieldSupport {
		fmt.Fprintln(os.Stderr, "realfeel: this kernel has no /proc/shield support")
		os.Exit(2)
	}

	rf := shieldsim.DefaultRealfeel(cfg)
	rf.Hz = *hz
	rf.Samples = *samples
	rf.Shield = *shield
	rf.Seed = *seed

	r := shieldsim.RunRealfeel(rf)
	fmt.Println(r.Name)
	fmt.Printf("%d measured rtc interrupts\n", r.Samples)
	fmt.Printf("min latency: %v\nmax latency: %v\navg latency: %v\n", r.Min, r.Max, r.Mean())

	// realfeel-style cumulative rows.
	var rows []shieldsim.Duration
	for _, us := range []int{100, 200, 300, 400, 500, 600, 800} {
		rows = append(rows, shieldsim.Duration(us)*shieldsim.Microsecond)
	}
	for _, ms := range []int{1, 2, 5, 10, 20, 50, 100} {
		rows = append(rows, shieldsim.Duration(ms)*shieldsim.Millisecond)
	}
	fmt.Print(r.Hist.Legend(rows))
}
