// Quickstart: build a dual-CPU RedHawk machine under heavy load, measure
// interrupt response to a periodic device with and without CPU shielding,
// and print the two latency profiles side by side.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	shieldsim "repro"
)

func measure(shielded bool) shieldsim.ResponseResult {
	cfg := shieldsim.RedHawk14(2, 1.4) // dual 1.4 GHz Xeon, RedHawk 1.4
	rc := shieldsim.DefaultRCIM(cfg)
	rc.Samples = 20000
	rc.Shield = shielded
	rc.Seed = 42
	return shieldsim.RunRCIM(rc)
}

func main() {
	fmt.Println("shieldsim quickstart: RCIM interrupt response under stress-kernel load")
	fmt.Println()

	for _, shielded := range []bool{false, true} {
		r := measure(shielded)
		mode := "unshielded"
		if shielded {
			mode = "shielded CPU 1 (procs+irqs+local timer via /proc/shield)"
		}
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  samples %d   min %v   avg %v   max %v\n",
			r.Samples, r.Min, r.Mean(), r.Max)
		fmt.Printf("  < 30µs: %.3f%%   < 100µs: %.3f%%   < 1ms: %.3f%%\n\n",
			100*r.Hist.FractionBelow(30*shieldsim.Microsecond),
			100*r.Hist.FractionBelow(100*shieldsim.Microsecond),
			100*r.Hist.FractionBelow(shieldsim.Millisecond))
	}

	fmt.Println("The shielded run reproduces the paper's §6.3 result: a hard")
	fmt.Println("sub-30µs worst case on a commodity-kernel API, under heavy")
	fmt.Println("networking, disk and graphics load.")
}
