// Determinism: reproduce the paper's §5.1 experiment at reduced scale —
// time a CPU-bound loop under scp + disknoise load on four system
// configurations and print Figures 1-4 style legends.
//
// Run with: go run ./examples/determinism [-runs 18] [-loop 0.4]
package main

import (
	"flag"
	"fmt"

	shieldsim "repro"
)

func main() {
	runs := flag.Int("runs", 18, "timed loop executions per configuration")
	loop := flag.Float64("loop", 0.4, "loop length in seconds of pure compute")
	flag.Parse()

	type setup struct {
		name   string
		cfg    shieldsim.Config
		shield bool
	}
	setups := []setup{
		{"Figure 1: kernel.org 2.4.18, hyperthreading on", shieldsim.StandardLinux24(2, 1.4, true), false},
		{"Figure 2: RedHawk 1.4, shielded CPU", shieldsim.RedHawk14(2, 1.4), true},
		{"Figure 3: RedHawk 1.4, unshielded", shieldsim.RedHawk14(2, 1.4), false},
		{"Figure 4: kernel.org 2.4.18, no hyperthreading", shieldsim.StandardLinux24(2, 1.4, false), false},
	}

	fmt.Printf("CPU-bound loop (%.2fs of work), SCHED_FIFO, mlocked;\n", *loop)
	fmt.Println("load: scp flood over Ethernet + disknoise script")
	fmt.Println()
	for _, s := range setups {
		d := shieldsim.DefaultDeterminism(s.cfg)
		d.Runs = *runs
		d.LoopWork = shieldsim.Duration(*loop * 1e9)
		d.Shield = s.shield
		d.Seed = 7
		r := shieldsim.RunDeterminism(d)
		fmt.Println(s.name)
		fmt.Print(r.Legend())
		fmt.Println()
	}
}
