// Hwil: hardware-in-the-loop simulation, the classic Concurrent use case
// the RCIM card exists for (§4: it "provides the ability to connect
// external edge-triggered device interrupts to the system").
//
// An external plant (here: a simulated crank-angle encoder with a jittery
// rotation speed) fires edges into an RCIM external input. The controller
// task must respond to EVERY edge within a hard window — compute the next
// actuation and be done before the plant moves on — while the same
// machine also runs the stress-kernel load, x11perf and network traffic.
//
// Run with: go run ./examples/hwil [-edges 20000]
package main

import (
	"flag"
	"fmt"

	shieldsim "repro"
)

// window is the hard response deadline per edge.
const window = 200 * shieldsim.Microsecond

type outcome struct {
	edges  uint64
	hits   int
	misses int
	worst  shieldsim.Duration
}

func run(edges int, shielded bool) outcome {
	cfg := shieldsim.RedHawk14(2, 1.4)
	sys := shieldsim.NewSystem(cfg, 7, shieldsim.SystemOptions{
		WithGPU: true,
		Loads: []string{
			shieldsim.LoadStressKernel,
			shieldsim.LoadX11Perf,
			shieldsim.LoadTTCPNet,
		},
	})
	k := sys.K
	rcim := shieldsim.NewRCIM(k, shieldsim.Millisecond)
	encoder := rcim.NewExternalInput("crank")

	affinity := shieldsim.CPUMask(0)
	if shielded {
		affinity = shieldsim.MaskOf(1)
	}

	var res outcome
	phase := 0
	ctl := k.NewTask("controller", shieldsim.SchedFIFO, 95, affinity,
		shieldsim.BehaviorFunc(func(t *shieldsim.Task) shieldsim.Action {
			if res.hits+res.misses >= edges {
				k.Eng.Stop()
				return shieldsim.Exit()
			}
			phase++
			if phase%2 == 1 {
				return shieldsim.Syscall(encoder.WaitCall())
			}
			// Compute the actuation for this crank position.
			act := shieldsim.Compute(40 * shieldsim.Microsecond)
			act.OnComplete = func(now shieldsim.Time) {
				lat := encoder.SinceEdge(now)
				if lat > res.worst {
					res.worst = lat
				}
				if lat <= window {
					res.hits++
				} else {
					res.misses++
				}
			}
			return act
		}))
	ctl.MemLocked = true

	sys.Start()
	if shielded {
		if err := sys.ShieldCPU(1); err != nil {
			panic(err)
		}
		if err := k.SetIRQAffinity(encoder.IRQ(), shieldsim.MaskOf(1)); err != nil {
			panic(err)
		}
	}

	// The plant: an engine sweeping 600-6000 rpm; one edge per
	// revolution, so the edge interval wanders between 10ms and 1ms.
	rng := k.Eng.RNG().Fork()
	rpm := 1200.0
	var turn func()
	turn = func() {
		encoder.Signal()
		rpm += rng.Normal(0, 150)
		if rpm < 600 {
			rpm = 600
		}
		if rpm > 6000 {
			rpm = 6000
		}
		k.Eng.After(shieldsim.Duration(60e9/rpm), turn)
	}
	k.Eng.After(shieldsim.Millisecond, turn)

	// Horizon: the plant averages ~25ms per revolution across the sweep.
	k.Eng.Run(shieldsim.Time(edges*40) * shieldsim.Time(shieldsim.Millisecond))
	res.edges = encoder.Edges
	return res
}

func main() {
	edges := flag.Int("edges", 4000, "engine revolutions to control")
	flag.Parse()

	fmt.Printf("Hardware-in-the-loop: crank-angle control, %v hard window,\n", window)
	fmt.Println("plant sweeping 600-6000 rpm; machine under stress-kernel +")
	fmt.Println("x11perf + network load.")
	fmt.Println()
	for _, shielded := range []bool{false, true} {
		r := run(*edges, shielded)
		mode := "pinned, unshielded"
		if shielded {
			mode = "shielded CPU 1 + IRQ affined"
		}
		fmt.Printf("%-30s responses %6d   misses %4d   worst %v\n",
			mode, r.hits+r.misses, r.misses, r.worst)
	}
}
