// Procshield: a tour of the paper's §3 — the /proc/shield interface and
// the shielded-CPU affinity semantics, driven exactly the way a system
// administrator would drive the real RedHawk interface: by reading and
// writing /proc files.
//
// Run with: go run ./examples/procshield
package main

import (
	"fmt"

	shieldsim "repro"
)

func main() {
	cfg := shieldsim.RedHawk14(2, 1.4)
	sys := shieldsim.NewSystem(cfg, 3, shieldsim.SystemOptions{
		Loads: []string{shieldsim.LoadDiskNoise},
	})
	k := sys.K

	// An ordinary task free to run anywhere, and an RT task that opts
	// into CPU 1 by setting an affinity of only shielded CPUs.
	floater := k.NewTask("floater", shieldsim.SchedOther, 0, 0,
		shieldsim.BehaviorFunc(func(*shieldsim.Task) shieldsim.Action {
			return shieldsim.Compute(2 * shieldsim.Millisecond)
		}))
	rt := k.NewTask("rt-opted-in", shieldsim.SchedFIFO, 80, shieldsim.MaskOf(1),
		shieldsim.BehaviorFunc(func(*shieldsim.Task) shieldsim.Action {
			return shieldsim.Compute(500 * shieldsim.Microsecond)
		}))
	sys.Start()

	cat := func(path string) {
		v, err := k.FS.Read(path)
		if err != nil {
			fmt.Printf("  cat %s: %v\n", path, err)
			return
		}
		fmt.Printf("  cat %s -> %s", path, v)
	}
	echo := func(val, path string) {
		fmt.Printf("  echo %s > %s\n", val, path)
		if err := k.FS.Write(path, val+"\n"); err != nil {
			fmt.Printf("    error: %v\n", err)
		}
	}
	status := func() {
		fmt.Printf("  floater: state=%v cpu=%d   rt-opted-in: state=%v cpu=%d\n",
			floater.State(), floater.CPU(), rt.State(), rt.CPU())
	}
	advance := func(d shieldsim.Duration) {
		k.Eng.Run(k.Now() + shieldsim.Time(d))
	}

	fmt.Println("1. Before shielding:")
	advance(20 * shieldsim.Millisecond)
	cat("/proc/shield/procs")
	cat("/proc/shield/all")
	status()

	fmt.Println("\n2. Shield CPU 1 from everything (mask 2 = binary 10):")
	echo("2", "/proc/shield/all")
	advance(20 * shieldsim.Millisecond)
	cat("/proc/shield/all")
	status()
	fmt.Println("  -> the floater was migrated off CPU 1; the RT task, whose")
	fmt.Println("     affinity contains only shielded CPUs, stays (opt-in).")

	fmt.Println("\n3. Interrupt affinities react the same way:")
	cat("/proc/irq/1/smp_affinity")
	fmt.Println("  (effective affinity excludes CPU 1 unless the mask is exactly 2)")
	echo("2", "/proc/irq/1/smp_affinity")
	cat("/proc/irq/1/smp_affinity")
	fmt.Println("  -> this interrupt is now opted into the shielded CPU.")

	fmt.Println("\n4. Shielding is dynamic — turn it off again:")
	echo("0", "/proc/shield/all")
	advance(20 * shieldsim.Millisecond)
	cat("/proc/shield/all")
	status()

	fmt.Println("\n5. The local timer obeys its own mask (/proc/shield/ltmr):")
	t0 := k.CPU(1).TicksHandled
	echo("2", "/proc/shield/ltmr")
	advance(200 * shieldsim.Millisecond)
	fmt.Printf("  ticks on CPU 1 during 200ms of ltmr shielding: %d (CPU 0 kept ticking)\n",
		k.CPU(1).TicksHandled-t0)
}
