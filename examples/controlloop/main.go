// Controlloop: the class of application the paper's introduction is
// about — a hard real-time control loop (think servo control or hardware-
// in-the-loop simulation) that must respond to a periodic device
// interrupt, compute, and actuate before a deadline, on a machine that is
// simultaneously doing networking, disk I/O and graphics.
//
// The program runs a 1 kHz control loop with a 250µs deadline on a busy
// RedHawk box three ways: no shielding, shielding without the device
// interrupt affined, and the full recipe. It reports deadline misses.
//
// Run with: go run ./examples/controlloop [-cycles 30000]
package main

import (
	"flag"
	"fmt"

	shieldsim "repro"
)

const deadline = 250 * shieldsim.Microsecond

type result struct {
	cycles    int
	misses    int
	worst     shieldsim.Duration
	worstComp shieldsim.Duration
}

// runLoop executes the control loop on a loaded system.
func runLoop(cycles int, shield bool, affineIRQ bool) result {
	cfg := shieldsim.RedHawk14(2, 1.4)
	sys := shieldsim.NewSystem(cfg, 99, shieldsim.SystemOptions{
		RCIMPeriod: shieldsim.Millisecond, // 1 kHz control interrupt
		WithGPU:    true,
		Loads: []string{
			shieldsim.LoadStressKernel,
			shieldsim.LoadX11Perf,
			shieldsim.LoadTTCPNet,
		},
	})
	k := sys.K

	affinity := shieldsim.CPUMask(0)
	if shield || affineIRQ {
		affinity = shieldsim.MaskOf(1)
	}

	var res result
	var cycleStart shieldsim.Time
	phase := 0
	behavior := shieldsim.BehaviorFunc(func(t *shieldsim.Task) shieldsim.Action {
		if res.cycles >= cycles {
			k.Eng.Stop()
			return shieldsim.Exit()
		}
		phase++
		if phase%2 == 1 {
			// Wait for the next control interrupt.
			act := shieldsim.Syscall(sys.RCIM.WaitCall())
			act.OnComplete = func(now shieldsim.Time) {
				cycleStart = now
			}
			return act
		}
		// Control computation: 80µs of work, then "actuate" (the
		// deadline check happens when the computation finishes).
		act := shieldsim.Compute(80 * shieldsim.Microsecond)
		act.OnComplete = func(now shieldsim.Time) {
			res.cycles++
			elapsed := sys.RCIM.CountElapsed(now)
			if elapsed > res.worst {
				res.worst = elapsed
			}
			if comp := now.Sub(cycleStart); comp > res.worstComp {
				res.worstComp = comp
			}
			if elapsed > deadline {
				res.misses++
			}
		}
		return act
	})
	ct := k.NewTask("control-loop", shieldsim.SchedFIFO, 95, affinity, behavior)
	ct.MemLocked = true

	sys.Start()
	if shield {
		if err := sys.ShieldCPU(1); err != nil {
			panic(err)
		}
	}
	if affineIRQ {
		if err := k.SetIRQAffinity(sys.RCIM.IRQ(), shieldsim.MaskOf(1)); err != nil {
			panic(err)
		}
	}
	k.Eng.Run(shieldsim.Time(cycles+cycles/2) * shieldsim.Time(shieldsim.Millisecond))
	return res
}

func main() {
	cycles := flag.Int("cycles", 30000, "control cycles to run (1 kHz)")
	flag.Parse()

	fmt.Printf("1 kHz control loop, %v deadline from interrupt to actuation,\n", deadline)
	fmt.Println("on a dual-CPU RedHawk box running stress-kernel + x11perf + ttcp")
	fmt.Println()
	fmt.Printf("%-44s %10s %12s %12s\n", "configuration", "misses", "worst irq→act", "worst compute")

	configs := []struct {
		name           string
		shield, affine bool
	}{
		{"pinned to CPU 1, no shielding", false, true},
		{"shielded CPU 1, IRQ not affined", true, false},
		{"shielded CPU 1 + IRQ affined (paper recipe)", true, true},
	}
	for _, c := range configs {
		r := runLoop(*cycles, c.shield, c.affine)
		fmt.Printf("%-44s %6d/%d %12v %12v\n", c.name, r.misses, r.cycles, r.worst, r.worstComp)
	}
	fmt.Println()
	fmt.Println("Pinning alone leaves the loop exposed to interrupts, bottom")
	fmt.Println("halves and kernel residency: it misses deadlines. Shielding")
	fmt.Println("removes those jitter sources; affining the device interrupt")
	fmt.Println("to the shielded CPU tightens the worst case further (no")
	fmt.Println("cross-CPU wakeup).")
}
