// Highfreq: one of the paper's §2 example use cases — "tasks that must
// be run at very high frequencies". A 10 kHz sampler driven by the RCIM
// timer must wake, grab a sample (1 µs of work) and be back asleep before
// the next 100 µs cycle — leaving headroom for the actual signal
// processing. The program reports achieved cycles, overruns (cycles where
// the previous sample was still being handled when the next interrupt
// fired) and worst wake latency, shielded vs unshielded.
//
// Run with: go run ./examples/highfreq [-seconds 5]
package main

import (
	"flag"
	"fmt"

	shieldsim "repro"
)

func run(seconds int, shield bool) (cycles, overruns uint64, worst shieldsim.Duration) {
	cfg := shieldsim.RedHawk14(2, 1.4)
	sys := shieldsim.NewSystem(cfg, 17, shieldsim.SystemOptions{
		RCIMPeriod: 100 * shieldsim.Microsecond, // 10 kHz
		Loads:      []string{shieldsim.LoadStressKernel},
	})
	k := sys.K

	affinity := shieldsim.CPUMask(0)
	if shield {
		affinity = shieldsim.MaskOf(1)
	}
	var lastFires uint64
	phase := 0
	behavior := shieldsim.BehaviorFunc(func(t *shieldsim.Task) shieldsim.Action {
		phase++
		if phase%2 == 1 {
			act := shieldsim.Syscall(sys.RCIM.WaitCall())
			act.OnComplete = func(now shieldsim.Time) {
				lat := sys.RCIM.CountElapsed(now)
				if lat > worst {
					worst = lat
				}
				fires := sys.RCIM.Fires()
				if lastFires != 0 && fires > lastFires+1 {
					overruns += fires - lastFires - 1
				}
				lastFires = fires
				cycles++
			}
			return act
		}
		return shieldsim.Compute(1 * shieldsim.Microsecond) // grab the sample
	})
	st := k.NewTask("sampler", shieldsim.SchedFIFO, 95, affinity, behavior)
	st.MemLocked = true

	sys.Start()
	if shield {
		if err := sys.ShieldCPU(1); err != nil {
			panic(err)
		}
		if err := k.SetIRQAffinity(sys.RCIM.IRQ(), shieldsim.MaskOf(1)); err != nil {
			panic(err)
		}
	}
	k.Eng.Run(shieldsim.Time(seconds) * shieldsim.Time(shieldsim.Second))
	return
}

func main() {
	seconds := flag.Int("seconds", 5, "virtual seconds to sample at 10 kHz")
	flag.Parse()

	fmt.Printf("10 kHz sampler on a loaded dual-CPU RedHawk machine, %d virtual seconds\n\n", *seconds)
	for _, shield := range []bool{false, true} {
		cycles, overruns, worst := run(*seconds, shield)
		mode := "unshielded (floats)"
		if shield {
			mode = "shielded CPU 1"
		}
		fmt.Printf("%-20s cycles %d   missed cycles %d   worst wake latency %v\n",
			mode, cycles, overruns, worst)
	}
	fmt.Println("\nA missed cycle means the sampler was still catching up when the")
	fmt.Println("next 100µs interrupt fired — data loss for a real sampler. On the")
	fmt.Println("shielded CPU the wake latency stays far below the period.")
}
