# Local workflow mirroring .github/workflows/ci.yml: `make lint test`
# runs exactly what CI's lint and test jobs run.

GO ?= go

.PHONY: all build lint fmt vet simlint analyze sarif bounds bounds-check sanitize perturb test race sharded bench bench-json fuzz figures trace snapshot simd soak clean

all: lint test build

build:
	$(GO) build ./...

# lint = the CI lint job: formatting gate, go vet, the full analyzer
# suite (floatmerge, globalstate, hotalloc, latbound, maporder,
# nondeterminism, purity, seedderive, shardsafe, tracefmt, unitsafe)
# gated on the checked-in baseline, and the static bounds report gate.
lint: fmt vet analyze bounds-check

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

simlint:
	$(GO) run ./cmd/simlint ./...

# analyze = the CI analyzer gate: the full suite module-wide (cmd/
# included), failing only on findings not recorded in
# lint/simlint.baseline — so a new shardsafe or hotalloc finding breaks
# the build while audited history stays quiet — then the merged SARIF
# artifact covering every analyzer.
analyze:
	$(GO) run ./cmd/simlint -baseline lint/simlint.baseline ./...
	$(GO) run ./cmd/simlint -format=sarif ./... > simlint.sarif || true

# sarif mirrors the CI code-scanning artifact.
sarif:
	$(GO) run ./cmd/simlint -format=sarif ./... > simlint.sarif || true

# bounds regenerates the committed static worst-case bounds report
# (lint/bounds.json): every irq-off/lock-held/timer region's latbound
# interval, the input to reprocheck's latbound-envelope claims. Run it
# after changing kernel timing code or region annotations; CI diffs the
# committed copy against a fresh regeneration.
bounds:
	$(GO) run ./cmd/simlint -bounds lint/bounds.json ./...

# bounds-check = the CI bounds gate: the committed report must match
# what the tree produces today, so bound changes are always reviewed.
bounds-check:
	$(GO) run ./cmd/simlint -bounds bounds-ci.json ./...
	diff -u lint/bounds.json bounds-ci.json
	rm -f bounds-ci.json

# sanitize = the CI sanitize job: the whole suite with the engine's
# simsan shadow checker armed (clock monotonicity, heap pop order).
sanitize:
	$(GO) test -tags simsan ./...

# perturb re-runs every figure under seeded permutations of
# same-timestamp tie-breaks; any hash divergence is a tie-break race.
# -bounds arms the latbound-envelope claims against the committed
# static bounds report.
perturb:
	$(GO) run ./cmd/reprocheck -scale 0.15 -perturb 4 -checkinv -bounds lint/bounds.json

test:
	$(GO) test ./...

# race = the CI test job (replication engine fans out goroutines; the
# race detector guards against shared state between replications).
race:
	$(GO) test -race ./...

# sharded = the CI sharded matrix leg at one shard count (default 2):
# the whole suite with the process-default engine flipped to sharded via
# ldflags — every golden hash and trace byte now audits the sharded
# engine — then the perturbation sweep on the shipped binary.
SHARDS ?= 2
sharded:
	$(GO) test -race -ldflags "-X repro/internal/sim.defaultEngineMode=sharded:$(SHARDS)" ./...
	$(GO) run ./cmd/reprocheck -scale 0.15 -perturb 4 -engine=sharded -shards=$(SHARDS)

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-json regenerates the engine performance baseline
# (BENCH_engine.json): the {ladder,heap} x {pooled,alloc} churn matrix,
# serial and parallel full-system throughput, and the serial-vs-sharded
# shard-tick entry, as one JSON document. Run it when the engine hot
# path changes; EXPERIMENTS.md explains how to read the ratios.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_engine.json

# fuzz = the CI fuzz-smoke job, shortened for local runs.
fuzz:
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzEngineOps -fuzztime 5s
	$(GO) test ./internal/sim -run '^$$' -fuzz '^FuzzDiffQueue$$' -fuzztime 5s
	$(GO) test ./internal/sim -run '^$$' -fuzz '^FuzzShardedSchedule$$' -fuzztime 5s
	$(GO) test ./internal/sim -run '^$$' -fuzz '^FuzzSnapshotResume$$' -fuzztime 5s
	$(GO) test ./internal/kernel -run '^$$' -fuzz '^FuzzParseMask$$' -fuzztime 5s
	$(GO) test ./internal/kernel -run '^$$' -fuzz '^FuzzEffectiveAffinity$$' -fuzztime 5s

# figures regenerates the full evaluation artifact directory.
figures:
	$(GO) run ./cmd/rtsim -outdir artifacts

# trace captures a shielded RCIM run with all typed tracepoints armed:
# a Perfetto-loadable Chrome trace (ui.perfetto.dev) and a dmesg-style
# text log.
trace:
	mkdir -p artifacts
	$(GO) run ./cmd/rtsim -trace artifacts/rcim-shielded.json -scale 0.1
	$(GO) run ./cmd/rtsim -trace artifacts/rcim-shielded.txt -scale 0.1

# snapshot = the CI snapshot job, locally: the resume-equivalence and
# bisection tests under the race detector, then the two-stage soak —
# checkpoint the shielded reference machine in one process, restore it
# in another, and require the restored continuation's hash to equal the
# uninterrupted run's, byte for byte across the process boundary.
snapshot:
	$(GO) test -race -count=1 -run 'TestSnapshot|TestResumeDivergence|TestBisect' ./internal/core/ ./internal/kernel/ ./internal/sim/
	mkdir -p artifacts
	$(GO) build -o artifacts/rtsim ./cmd/rtsim
	artifacts/rtsim -checkpoint artifacts/boot.snap -run-for 0
	artifacts/rtsim -checkpoint artifacts/final.snap -run-for 0.03 | tee artifacts/final.txt
	artifacts/rtsim -restore artifacts/boot.snap -run-for 0.03 | tee artifacts/restored.txt
	@want=$$(grep -o 'hash [0-9a-f]*' artifacts/final.txt | awk '{print $$2}'); \
	got=$$(grep -o 'hash [0-9a-f]*' artifacts/restored.txt | awk '{print $$2}'); \
	echo "uninterrupted $$want vs restored $$got"; \
	test -n "$$want" && test "$$want" = "$$got"
	$(GO) run ./cmd/reprocheck -scale 0.1 -bisect

# simd builds and runs the simulation service on :8080 (override with
# ADDR). POST scenarios at /v1/scenarios; see README "Serving mode".
ADDR ?= :8080
simd:
	$(GO) run ./cmd/simd -addr $(ADDR)

# soak = the CI soak job, locally: the simd service under the race
# detector — >1000 concurrent scenario requests, every response
# byte-identical to the serial oracle, duplicates served from the
# content-addressed cache, warm starts hash-equal to cold — then the
# e2e suite against the real binary (random port, disk cache across a
# restart, SIGTERM drain).
soak:
	$(GO) test -race -count=1 -timeout 15m ./internal/simd/
	$(GO) test -count=1 -timeout 10m ./cmd/simd/

clean:
	rm -rf artifacts
	rm -f bounds-ci.json simlint.sarif
