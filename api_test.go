package shieldsim

import (
	"strings"
	"testing"
)

// Tests for the public facade: everything a downstream user touches must
// be reachable through the root package.

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := RedHawk14(2, 1.4)
	sys := NewSystem(cfg, 1, SystemOptions{
		RCIMPeriod: Millisecond,
		Loads:      []string{LoadDiskNoise},
	})
	var wakes int
	phase := 0
	rt := sys.K.NewTask("rt", SchedFIFO, 90, MaskOf(1), BehaviorFunc(func(tk *Task) Action {
		phase++
		if phase%2 == 1 {
			act := Syscall(sys.RCIM.WaitCall())
			act.OnComplete = func(Time) { wakes++ }
			return act
		}
		return Compute(10 * Microsecond)
	}))
	rt.MemLocked = true
	sys.Start()
	if err := sys.ShieldCPU(1); err != nil {
		t.Fatal(err)
	}
	sys.K.Eng.Run(Time(200 * Millisecond))
	if wakes < 150 {
		t.Fatalf("rt task woke %d times in 200ms at 1kHz", wakes)
	}
	if got, _ := sys.K.FS.Read("/proc/shield/all"); got != "2\n" {
		t.Fatalf("/proc/shield/all = %q", got)
	}
}

func TestPublicKernelPresets(t *testing.T) {
	stock := StandardLinux24(2, 1.4, true)
	if stock.Preemptible || stock.ShieldSupport || !stock.HyperThreading {
		t.Fatalf("stock preset wrong: %+v", stock)
	}
	rh := RedHawk14(2, 1.4)
	if !rh.Preemptible || !rh.ShieldSupport || rh.HyperThreading {
		t.Fatalf("redhawk preset wrong: %+v", rh)
	}
	patched := PatchedLinux24(2, 0.933)
	if !patched.Preemptible || patched.ShieldSupport {
		t.Fatalf("patched preset wrong: %+v", patched)
	}
}

func TestPublicMaskHelpers(t *testing.T) {
	m := MaskOf(0, 2)
	if m.String() != "5" {
		t.Fatalf("MaskOf(0,2) = %s", m)
	}
	if MaskAll(3) != MaskOf(0, 1, 2) {
		t.Fatal("MaskAll wrong")
	}
	p, err := ParseMask("5")
	if err != nil || p != m {
		t.Fatal("ParseMask wrong")
	}
	eff := EffectiveAffinity(MaskOf(0, 1), MaskOf(1), MaskAll(2))
	if eff != MaskOf(0) {
		t.Fatalf("EffectiveAffinity = %s", eff)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{"fig1", "fig7", "ablate-posix-timers", "future-rtc-api"} {
		if !ids[want] {
			t.Fatalf("registry missing %s", want)
		}
	}
	e, ok := ExperimentByID("ablate-posix-timers")
	if !ok {
		t.Fatal("lookup failed")
	}
	out := e.Run(0.2, 1, 0)
	if !strings.Contains(out, "RedHawk") {
		t.Fatalf("experiment output:\n%s", out)
	}
}

func TestPublicHistogram(t *testing.T) {
	h := NewHistogram(Millisecond, 10)
	h.Add(500 * Microsecond)
	h.Add(5 * Millisecond)
	if h.Count() != 2 || h.FractionBelow(Millisecond) != 0.5 {
		t.Fatal("histogram via facade broken")
	}
}

func TestPublicDeterminismRunner(t *testing.T) {
	d := DefaultDeterminism(RedHawk14(2, 1.4))
	d.Runs = 6
	d.LoopWork = Duration(0.05 * 1e9)
	d.Shield = true
	r := RunDeterminism(d)
	if r.Report.Runs == 0 {
		t.Fatal("no runs recorded")
	}
	if r.Report.JitterPercent() > 5 {
		t.Fatalf("shielded jitter = %.2f%%", r.Report.JitterPercent())
	}
}

func TestPublicDeviceConstructors(t *testing.T) {
	cfg := RedHawk14(2, 1.4)
	k := NewKernel(cfg, 1)
	rtc := NewRTC(k, 1024)
	rcim := NewRCIM(k, Millisecond)
	nic := NewNIC(k, "eth0")
	disk := NewDisk(k, "sda")
	gpu := NewGPU(k, "nv0")
	if rtc.IRQ() == nil || rcim.IRQ() == nil || nic.IRQ() == nil || disk.IRQ() == nil || gpu.IRQ() == nil {
		t.Fatal("device irq lines missing")
	}
	in := rcim.NewExternalInput("probe")
	rtc.Start()
	rcim.Start()
	k.Start()
	k.Eng.Schedule(Time(5*Millisecond), func() { in.Signal() })
	k.Eng.Run(Time(20 * Millisecond))
	if rtc.Fires() == 0 || rcim.Fires() == 0 || in.Edges != 1 {
		t.Fatalf("devices inert: rtc=%d rcim=%d edges=%d", rtc.Fires(), rcim.Fires(), in.Edges)
	}
}
