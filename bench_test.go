// Benchmark harness: one testing.B benchmark per figure in the paper's
// evaluation, plus the ablations from DESIGN.md §4. Each benchmark runs a
// scaled-down version of the experiment per iteration and reports the
// figure's headline metric via b.ReportMetric, so `go test -bench=.`
// regenerates the whole evaluation:
//
//	Fig 1-4:  jitter_pct      (paper: 26.17 / 1.87 / 14.82 / 13.15)
//	Fig 5-6:  max_latency_ms  (paper: 92.3 / 0.565), frac_below_100us
//	Fig 7:    max_latency_us  (paper: 27), avg_latency_us (11.3)
//
// Full-size runs (the paper's 60M samples) go through cmd/rtsim -scale.
package shieldsim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchSeed keeps benchmark iterations deterministic but distinct; the
// salt separates benchmarks that would otherwise replay identical event
// streams (the measured CPU's timeline does not depend on the kernel
// config when the load and seed are equal). Seeds come from the shared
// splitmix64 derivation so iteration streams never collide.
func benchSeed(i int) uint64 { return sim.DeriveSeed(1000, uint64(i)) }

func benchDeterminism(b *testing.B, cfg kernel.Config, shield bool, salt uint64) {
	var worstPct float64
	for i := 0; i < b.N; i++ {
		d := DefaultDeterminism(cfg)
		d.Runs = 12
		d.LoopWork = sim.DurationOf(0.3)
		d.Shield = shield
		d.Seed = benchSeed(i) + salt
		r := RunDeterminism(d)
		if p := r.Report.JitterPercent(); p > worstPct {
			worstPct = p
		}
	}
	b.ReportMetric(worstPct, "jitter_pct")
	b.ReportMetric(0, "allocs/op") // dominated by the simulation; not meaningful
}

func BenchmarkFig1_StandardLinux_Determinism(b *testing.B) {
	benchDeterminism(b, kernel.StandardLinux24(2, 1.4, true), false, 1)
}

func BenchmarkFig2_RedHawkShielded_Determinism(b *testing.B) {
	benchDeterminism(b, kernel.RedHawk14(2, 1.4), true, 2)
}

func BenchmarkFig3_RedHawkUnshielded_Determinism(b *testing.B) {
	benchDeterminism(b, kernel.RedHawk14(2, 1.4), false, 3)
}

func BenchmarkFig4_StandardNoHT_Determinism(b *testing.B) {
	benchDeterminism(b, kernel.StandardLinux24(2, 1.4, false), false, 4)
}

func benchRealfeel(b *testing.B, cfg kernel.Config, shield bool, samples int) {
	var worst sim.Duration
	var below float64
	for i := 0; i < b.N; i++ {
		rf := DefaultRealfeel(cfg)
		rf.Samples = samples
		rf.Shield = shield
		rf.Seed = benchSeed(i)
		r := RunRealfeel(rf)
		if r.Max > worst {
			worst = r.Max
		}
		below = r.Hist.FractionBelow(100 * sim.Microsecond)
	}
	b.ReportMetric(worst.Millis(), "max_latency_ms")
	b.ReportMetric(below*100, "frac_below_100us_pct")
}

func BenchmarkFig5_StandardLinux_Realfeel(b *testing.B) {
	benchRealfeel(b, kernel.StandardLinux24(2, 0.933, false), false, 60_000)
}

func BenchmarkFig6_RedHawkShielded_Realfeel(b *testing.B) {
	benchRealfeel(b, kernel.RedHawk14(2, 0.933), true, 60_000)
}

func BenchmarkFig7_RedHawkShielded_RCIM(b *testing.B) {
	var worst, sum sim.Duration
	var n int
	for i := 0; i < b.N; i++ {
		rc := DefaultRCIM(kernel.RedHawk14(2, 2.0))
		rc.Samples = 40_000
		rc.Seed = benchSeed(i)
		r := RunRCIM(rc)
		if r.Max > worst {
			worst = r.Max
		}
		sum += r.Mean()
		n++
	}
	b.ReportMetric(worst.Micros(), "max_latency_us")
	b.ReportMetric((sum / sim.Duration(n)).Micros(), "avg_latency_us")
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblation_SpinlockBHFix measures the §6.2 fix: with it off,
// bottom halves preempt spinlock holders and stretch the shielded tail.
func BenchmarkAblation_SpinlockBHFix(b *testing.B) {
	var fixedMax, brokenMax sim.Duration
	for i := 0; i < b.N; i++ {
		// The collision is rare; each iteration samples several seeds
		// and keeps the worst case, like the paper's 8-hour runs.
		for s := uint64(0); s < 4; s++ {
			base := DefaultRealfeel(kernel.RedHawk14(2, 0.933))
			base.Samples = 60_000
			base.Shield = true
			base.Seed = benchSeed(i) + s*1000
			// Wire traffic makes interrupt-driven bottom halves frequent
			// enough to collide with lock holders within the sample
			// budget.
			base.ExtraLoads = []string{LoadScpBurst}
			fixed := RunRealfeel(base)

			nofix := base
			nofix.Kernel.FixSpinlockBH = false
			broken := RunRealfeel(nofix)

			// The fix bounds how long a bottom half can stretch a
			// spinlock hold; compare the worst observed fs-lock hold,
			// which is what the RT read path can collide with.
			if fixed.WorstFSHold > fixedMax {
				fixedMax = fixed.WorstFSHold
			}
			if broken.WorstFSHold > brokenMax {
				brokenMax = broken.WorstFSHold
			}
		}
	}
	b.ReportMetric(fixedMax.Micros(), "fix_on_worst_hold_us")
	b.ReportMetric(brokenMax.Micros(), "fix_off_worst_hold_us")
	// The delayed response the paper describes follows from the holds.
}

// BenchmarkAblation_BKLIoctl measures §6.3: forcing the RCIM ioctl
// through the BKL.
func BenchmarkAblation_BKLIoctl(b *testing.B) {
	var goodMax, badMax sim.Duration
	for i := 0; i < b.N; i++ {
		base := DefaultRCIM(kernel.RedHawk14(2, 2.0))
		base.Samples = 30_000
		base.Seed = benchSeed(i)
		good := RunRCIM(base)

		forced := base
		forced.ForceBKL = true
		bad := RunRCIM(forced)

		if good.Max > goodMax {
			goodMax = good.Max
		}
		if bad.Max > badMax {
			badMax = bad.Max
		}
	}
	b.ReportMetric(goodMax.Micros(), "no_bkl_max_us")
	b.ReportMetric(badMax.Micros(), "bkl_max_us")
}

// BenchmarkAblation_ShieldModes sweeps the §3 sub-masks.
func BenchmarkAblation_ShieldModes(b *testing.B) {
	modes := []struct {
		name                string
		procs, irqs, ltimer bool
	}{
		{"none", false, false, false},
		{"procs", true, false, false},
		{"procs_irqs", true, true, false},
		{"full", true, true, true},
	}
	worst := make([]sim.Duration, len(modes))
	for i := 0; i < b.N; i++ {
		for m, mode := range modes {
			cfg := DefaultRealfeel(kernel.RedHawk14(2, 0.933))
			cfg.Samples = 20_000
			cfg.Seed = benchSeed(i)
			r := RunRealfeelModes(cfg, mode.procs, mode.irqs, mode.ltimer, true)
			if r.Max > worst[m] {
				worst[m] = r.Max
			}
		}
	}
	for m, mode := range modes {
		b.ReportMetric(worst[m].Micros(), mode.name+"_max_us")
	}
}

// BenchmarkAblation_PatchesNoShield is the Clark Williams configuration:
// preemption + low-latency patches, no shielding (paper cites ~1.2 ms).
func BenchmarkAblation_PatchesNoShield(b *testing.B) {
	var worst sim.Duration
	for i := 0; i < b.N; i++ {
		rf := DefaultRealfeel(kernel.PatchedLinux24(2, 0.933))
		rf.Samples = 60_000
		rf.Seed = benchSeed(i)
		r := RunRealfeel(rf)
		if r.Max > worst {
			worst = r.Max
		}
	}
	b.ReportMetric(worst.Millis(), "max_latency_ms")
}

// BenchmarkAblation_Hyperthreading isolates §5's HT effect.
func BenchmarkAblation_Hyperthreading(b *testing.B) {
	var ht, noht float64
	for i := 0; i < b.N; i++ {
		d := DefaultDeterminism(kernel.StandardLinux24(2, 1.4, true))
		d.Runs = 12
		d.LoopWork = sim.DurationOf(0.3)
		d.Seed = benchSeed(i)
		if p := RunDeterminism(d).Report.JitterPercent(); p > ht {
			ht = p
		}
		d4 := DefaultDeterminism(kernel.StandardLinux24(2, 1.4, false))
		d4.Runs = 12
		d4.LoopWork = sim.DurationOf(0.3)
		d4.Seed = benchSeed(i)
		if p := RunDeterminism(d4).Report.JitterPercent(); p > noht {
			noht = p
		}
	}
	b.ReportMetric(ht, "ht_jitter_pct")
	b.ReportMetric(noht, "no_ht_jitter_pct")
}

// --- Parallel replication engine (internal/runner) ---

// The serial-vs-parallel benchmarks run the same full-size experiment
// once with the worker pool pinned to 1 and once across all cores,
// assert the two results are bit-identical (the runner's determinism
// contract), and report the wall-clock speedup. On a 4-core machine the
// fan-out (6 placements for Fig 1, 8 replications for Fig 5) yields
// >=2x; on a single core speedup_x hovers around 1 and only the
// identity assertion is meaningful.

func BenchmarkParallel_Fig1Determinism(b *testing.B) {
	cfg := DefaultDeterminism(kernel.StandardLinux24(2, 1.4, true))
	cfg.Seed = benchSeed(0)
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		cfg.Workers = 1
		t0 := time.Now()
		want := RunDeterminism(cfg)
		serial += time.Since(t0)
		cfg.Workers = 0
		t0 = time.Now()
		got := RunDeterminism(cfg)
		parallel += time.Since(t0)
		if !reflect.DeepEqual(want, got) {
			b.Fatal("parallel fig1 diverged from serial — the merge is not deterministic")
		}
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup_x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

func BenchmarkParallel_Fig5Realfeel(b *testing.B) {
	cfg := DefaultRealfeel(kernel.StandardLinux24(2, 0.933, false))
	cfg.Samples = 200_000
	cfg.Replications = 8
	cfg.Seed = benchSeed(0)
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		cfg.Workers = 1
		t0 := time.Now()
		want := RunRealfeel(cfg)
		serial += time.Since(t0)
		cfg.Workers = 0
		t0 = time.Now()
		got := RunRealfeel(cfg)
		parallel += time.Since(t0)
		if !reflect.DeepEqual(want, got) {
			b.Fatal("parallel fig5 diverged from serial — the merge is not deterministic")
		}
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup_x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

// --- Typed tracepoints (internal/trace) ---

// BenchmarkTracingDisabled guards the observability layer's zero-cost
// contract: with no trace buffer attached (the default in every
// figure), a typed tracepoint is a nil check and nothing else — the
// allocs/op column must read 0. TestDisabledTypedEmitZeroAlloc in
// internal/trace enforces the same bound as a hard test failure.
func BenchmarkTracingDisabled(b *testing.B) {
	var buf *trace.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.IRQEnter(sim.Time(i), 0, 5, "rcim")
		buf.Switch(sim.Time(i), 1, 9, "rcim-response", 90)
		buf.Migrate(sim.Time(i), 0, 9, "rcim-response", 0, 1)
		buf.LockRelease(sim.Time(i), 0, "BKL", 100)
	}
}

// BenchmarkTracingEnabled is the armed counterpart: once the rings and
// the intern table are warm, emitting is a fixed-size record copy —
// still 0 allocs/op.
func BenchmarkTracingEnabled(b *testing.B) {
	buf := trace.NewBuffer(1 << 12)
	buf.IRQEnter(0, 0, 5, "rcim") // warm the ring and the name table
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.IRQEnter(sim.Time(i), 0, 5, "rcim")
		buf.IRQExit(sim.Time(i), 0, 5, "rcim")
	}
}

// BenchmarkEngineThroughput measures raw simulator event throughput, the
// cost driver for everything above, on the default (ladder) queue.
func BenchmarkEngineThroughput(b *testing.B) {
	benchSystemThroughput(b, "")
}

// The _Heap/_Ladder pair is the full-system A/B of the event-queue
// implementations: identical machine, identical load, only the queue
// differs (and, by the differential-harness contract, only speed can
// differ). cmd/benchjson runs the same pair to record BENCH_engine.json.
func BenchmarkEngineThroughput_Heap(b *testing.B)   { benchSystemThroughput(b, sim.QueueHeap) }
func BenchmarkEngineThroughput_Ladder(b *testing.B) { benchSystemThroughput(b, sim.QueueLadder) }

func benchSystemThroughput(b *testing.B, kind sim.QueueKind) {
	cfg := kernel.RedHawk14(2, 1.0)
	cfg.EventQueue = kind
	s := NewSystem(cfg, 1, SystemOptions{
		RTCHz: 2048,
		Loads: []string{LoadStressKernel},
	})
	s.Start()
	b.ResetTimer()
	// Advance virtual time in 1ms slices, one per iteration.
	for i := 0; i < b.N; i++ {
		s.K.Eng.Run(s.K.Now() + sim.Time(sim.Millisecond))
	}
	b.ReportMetric(float64(s.K.Eng.Fired())/float64(b.N), "events/op")
}

// BenchmarkEngineChurn is the queue/pool microbenchmark matrix:
// {ladder, heap} × {pooled, alloc} at shallow and deep steady-state
// queue depths. Each iteration schedules one event and dispatches one,
// so the depth stays fixed; ns/op is the per-event engine overhead and
// allocs/op is the pooling contract (0 for pooled modes after warm-up,
// ≥1 for the alloc reference).
func BenchmarkEngineChurn(b *testing.B) {
	for _, kind := range []sim.QueueKind{sim.QueueLadder, sim.QueueHeap} {
		for _, mode := range []struct {
			name   string
			noPool bool
		}{{"pooled", false}, {"alloc", true}} {
			for _, depth := range []int{16, 1024, 16384} {
				kind, mode, depth := kind, mode, depth
				name := fmt.Sprintf("%s/%s/depth=%d", kind, mode.name, depth)
				b.Run(name, func(b *testing.B) {
					benchEngineChurn(b, sim.EngineOptions{Queue: kind, NoPool: mode.noPool}, depth)
				})
			}
		}
	}
}

func benchEngineChurn(b *testing.B, opts sim.EngineOptions, depth int) {
	e := sim.NewEngineOpts(1, opts)
	fn := func() {}
	// Spread the pending set over ~1 µs per event, the density the
	// kernel cadence produces; depth then controls queue length without
	// collapsing the calendar into a handful of over-full slots.
	for i := 0; i < depth; i++ {
		e.After(sim.Duration(i%depth)*sim.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(sim.Duration(i%depth)*sim.Microsecond, fn)
		e.Step()
	}
}
