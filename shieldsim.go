// Package shieldsim is a deterministic discrete-event simulator of
// 2.4-era SMP Linux kernels, built to reproduce "Shielded Processors:
// Guaranteeing Sub-millisecond Response in Standard Linux" (Brosky &
// Rotolo, IPPS 2003).
//
// The simulator models CPUs (including hyperthread sibling contention and
// memory-bus interference), an IO-APIC-style interrupt subsystem with
// per-IRQ affinity and the local timer interrupt, softirq/bottom-half
// processing, spinlocks and the Big Kernel Lock, preemptible and
// non-preemptible kernel configurations, both the O(1) and the legacy 2.4
// schedulers, and device models (RTC, the Concurrent RCIM card, NIC, SCSI
// disk, GPU). On top of that substrate it implements the paper's
// contribution: the /proc/shield interface and the shielded-CPU affinity
// semantics.
//
// # Quick start
//
//	cfg := shieldsim.RedHawk14(2, 1.4)          // dual 1.4 GHz Xeon
//	sys := shieldsim.NewSystem(cfg, 1, shieldsim.SystemOptions{
//		RTCHz: 2048,
//		Loads: []string{shieldsim.LoadStressKernel},
//	})
//	rt := sys.K.NewTask("rt", shieldsim.SchedFIFO, 90,
//		shieldsim.MaskOf(1), myBehavior)
//	sys.Start()
//	sys.ShieldCPU(1)                            // writes /proc/shield/all
//	sys.K.Eng.Run(shieldsim.Time(10 * shieldsim.Second))
//
// Every run with the same seed is bit-reproducible. All times are
// virtual; the simulator is single-threaded by design.
//
// The paper's seven figures and the ablations are packaged as
// experiments; see Experiments, or the rtsim command.
package shieldsim

import (
	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Core simulation types.
type (
	// Time is a virtual-time instant in nanoseconds.
	Time = sim.Time
	// Duration is a virtual-time span in nanoseconds.
	Duration = sim.Duration
	// Engine is the discrete-event engine driving a system.
	Engine = sim.Engine
	// RNG is the deterministic random source.
	RNG = sim.RNG
)

// Re-exported duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Kernel model types.
type (
	// Kernel is one simulated machine running one kernel configuration.
	Kernel = kernel.Kernel
	// Config selects the kernel variant and machine.
	Config = kernel.Config
	// Timing holds the calibration constants.
	Timing = kernel.Timing
	// CPUMask is a bitmask of logical CPUs, /proc-style.
	CPUMask = kernel.CPUMask
	// CPU is one logical processor.
	CPU = kernel.CPU
	// Task is a simulated process or thread.
	Task = kernel.Task
	// Behavior drives a task's actions.
	Behavior = kernel.Behavior
	// BehaviorFunc adapts a function to Behavior.
	BehaviorFunc = kernel.BehaviorFunc
	// Action is one step of a task's life.
	Action = kernel.Action
	// SyscallCall describes a system call's kernel regions.
	SyscallCall = kernel.SyscallCall
	// Segment is one kernel region inside a syscall.
	Segment = kernel.Segment
	// WaitQueue blocks and wakes tasks.
	WaitQueue = kernel.WaitQueue
	// SpinLock is a kernel spinlock.
	SpinLock = kernel.SpinLock
	// IRQLine is one external interrupt line.
	IRQLine = kernel.IRQLine
	// SchedPolicy is the POSIX scheduling policy.
	SchedPolicy = kernel.SchedPolicy
)

// Scheduling policies.
const (
	SchedOther = kernel.SchedOther
	SchedFIFO  = kernel.SchedFIFO
	SchedRR    = kernel.SchedRR
)

// Segment and action kinds.
const (
	SegWork  = kernel.SegWork
	SegBlock = kernel.SegBlock
)

// Kernel presets from the paper's evaluation.
var (
	// StandardLinux24 is stock kernel.org 2.4.18.
	StandardLinux24 = kernel.StandardLinux24
	// RedHawk14 is RedHawk Linux 1.4 (preemption + low-latency + O(1)
	// + shield support + the §6 fixes).
	RedHawk14 = kernel.RedHawk14
	// PatchedLinux24 is 2.4.18 with the open-source preemption and
	// low-latency patches only.
	PatchedLinux24 = kernel.PatchedLinux24
	// DefaultTiming returns the calibrated timing constants.
	DefaultTiming = kernel.DefaultTiming
)

// Mask helpers.
var (
	// MaskOf builds a mask from CPU numbers.
	MaskOf = kernel.MaskOf
	// MaskAll builds a mask of the first n CPUs.
	MaskAll = kernel.MaskAll
	// ParseMask parses the /proc hex representation.
	ParseMask = kernel.ParseMask
	// EffectiveAffinity applies the paper's shielding semantics.
	EffectiveAffinity = kernel.EffectiveAffinity
)

// Behavior action constructors.
var (
	// Compute burns user-mode CPU.
	Compute = kernel.Compute
	// Sleep blocks for a duration.
	Sleep = kernel.Sleep
	// Syscall enters the kernel.
	Syscall = kernel.Syscall
	// Yield returns to the scheduler.
	Yield = kernel.Yield
	// Exit terminates the task.
	Exit = kernel.Exit
	// NewKernel builds a bare machine (no devices); most callers want
	// NewSystem instead.
	NewKernel = kernel.New
	// NewWaitQueue builds a wait queue.
	NewWaitQueue = kernel.NewWaitQueue
)

// Device models.
type (
	// RTC is the Real-Time Clock and its /dev/rtc driver.
	RTC = dev.RTC
	// RCIM is Concurrent's Real-Time Clock and Interrupt Module.
	RCIM = dev.RCIM
	// ExternalInput is an RCIM edge-triggered external input.
	ExternalInput = dev.ExternalInput
	// NIC is the Ethernet controller.
	NIC = dev.NIC
	// Disk is the SCSI drive.
	Disk = dev.Disk
	// GPU is the graphics controller.
	GPU = dev.GPU
)

// Device constructors.
var (
	// NewRTC creates the RTC at the given periodic rate.
	NewRTC = dev.NewRTC
	// NewRCIM creates the RCIM with the given timer period.
	NewRCIM = dev.NewRCIM
	// NewNIC creates an Ethernet controller.
	NewNIC = dev.NewNIC
	// NewDisk creates a SCSI drive.
	NewDisk = dev.NewDisk
	// NewGPU creates a graphics controller.
	NewGPU = dev.NewGPU
)

// System assembly (kernel + devices + workloads).
type (
	// System is an assembled machine.
	System = core.System
	// SystemOptions selects devices and background load.
	SystemOptions = core.SystemOptions
)

// NewSystem assembles a machine.
var NewSystem = core.NewSystem

// Background load names for SystemOptions.Loads.
const (
	LoadScpFlood     = core.LoadScpFlood
	LoadDiskNoise    = core.LoadDiskNoise
	LoadStressKernel = core.LoadStressKernel
	LoadX11Perf      = core.LoadX11Perf
	LoadTTCPNet      = core.LoadTTCPNet
	LoadScpBurst     = core.LoadScpBurst
)

// Experiments: the paper's figures and ablations.
type (
	// Experiment is one reproducible figure.
	Experiment = core.Experiment
	// DeterminismConfig parameterises the §5.1 test.
	DeterminismConfig = core.DeterminismConfig
	// DeterminismResult is a Figures 1–4 style result.
	DeterminismResult = core.DeterminismResult
	// RealfeelConfig parameterises the §6.1 test.
	RealfeelConfig = core.RealfeelConfig
	// RCIMConfig parameterises the §6.3 test.
	RCIMConfig = core.RCIMConfig
	// ResponseResult is a Figures 5–7 style result.
	ResponseResult = core.ResponseResult
	// JitterReport is the determinism summary.
	JitterReport = metrics.JitterReport
	// JitterSummary is the mergeable loaded-run aggregate inside a
	// DeterminismResult.
	JitterSummary = metrics.JitterSummary
	// ResponseSummary is the mergeable latency aggregate inside a
	// ResponseResult.
	ResponseSummary = metrics.ResponseSummary
	// Histogram is a fixed-bucket latency histogram.
	Histogram = metrics.Histogram
)

// DeriveSeed derives a decorrelated child seed from a base seed and a
// replication index via splitmix64 — the derivation every experiment
// uses to seed independent replications.
var DeriveSeed = sim.DeriveSeed

// Experiment runners and registry.
var (
	// Experiments lists every reproducible figure and ablation.
	Experiments = core.Experiments
	// ExperimentByID finds one.
	ExperimentByID = core.ExperimentByID
	// RunDeterminism executes the §5.1 execution determinism test.
	RunDeterminism = core.RunDeterminism
	// DefaultDeterminism fills the paper's parameters.
	DefaultDeterminism = core.DefaultDeterminism
	// RunRealfeel executes the §6.1 realfeel test.
	RunRealfeel = core.RunRealfeel
	// RunRealfeelModes is RunRealfeel with independent shield sub-masks.
	RunRealfeelModes = core.RunRealfeelModes
	// DefaultRealfeel fills the paper's parameters.
	DefaultRealfeel = core.DefaultRealfeel
	// RunRCIM executes the §6.3 RCIM response test.
	RunRCIM = core.RunRCIM
	// DefaultRCIM fills the paper's parameters.
	DefaultRCIM = core.DefaultRCIM
	// NewHistogram builds a latency histogram.
	NewHistogram = metrics.NewHistogram
)
