package shieldsim_test

import (
	"fmt"

	shieldsim "repro"
)

// ExampleNewSystem builds a loaded RedHawk machine, shields CPU 1 through
// /proc/shield, and shows the inverted affinity semantics from §3 of the
// paper.
func ExampleNewSystem() {
	cfg := shieldsim.RedHawk14(2, 1.4)
	sys := shieldsim.NewSystem(cfg, 1, shieldsim.SystemOptions{
		Loads: []string{shieldsim.LoadDiskNoise},
	})
	k := sys.K

	// An RT task opts into CPU 1 by naming only shielded CPUs.
	rt := k.NewTask("rt", shieldsim.SchedFIFO, 90, shieldsim.MaskOf(1),
		shieldsim.BehaviorFunc(func(*shieldsim.Task) shieldsim.Action {
			return shieldsim.Compute(shieldsim.Millisecond)
		}))
	sys.Start()
	if err := sys.ShieldCPU(1); err != nil {
		fmt.Println("shield:", err)
		return
	}
	k.Eng.Run(shieldsim.Time(50 * shieldsim.Millisecond))

	mask, _ := k.FS.Read("/proc/shield/all")
	fmt.Printf("shield mask: %s", mask)
	fmt.Printf("rt task effective affinity: %s (opted in)\n", rt.EffectiveAffinity())
	fmt.Printf("rt running on cpu%d\n", rt.CPU())
	// Output:
	// shield mask: 2
	// rt task effective affinity: 2 (opted in)
	// rt running on cpu1
}

// ExampleEffectiveAffinity demonstrates the paper's affinity inversion:
// shielded CPUs are removed from a mask unless the mask contains only
// shielded CPUs.
func ExampleEffectiveAffinity() {
	online := shieldsim.MaskAll(4)
	shielded := shieldsim.MaskOf(3)

	floater := shieldsim.MaskAll(4) // an ordinary task
	optedIn := shieldsim.MaskOf(3)  // the RT task
	mixed := shieldsim.MaskOf(2, 3) // names shielded and unshielded CPUs

	fmt.Println(shieldsim.EffectiveAffinity(floater, shielded, online))
	fmt.Println(shieldsim.EffectiveAffinity(optedIn, shielded, online))
	fmt.Println(shieldsim.EffectiveAffinity(mixed, shielded, online))
	// Output:
	// 7
	// 8
	// 4
}

// ExampleParseMask shows the /proc-style hex mask format.
func ExampleParseMask() {
	m, _ := shieldsim.ParseMask("0x6\n") // what `echo 6 > /proc/shield/all` sends
	fmt.Println(m.CPUs())
	// Output:
	// [1 2]
}
