package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestSnapshotChecks runs the full snapshot claim set: resume
// equivalence per engine mode, engine-mode-invariant golden image
// hashes, and warm-start reproducibility, for both reference machines.
func TestSnapshotChecks(t *testing.T) {
	results := SnapshotChecks(1)
	if len(results) != 6 {
		t.Fatalf("expected 6 snapshot claims, got %d", len(results))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s FAILED: %s (%s)", r.ID, r.Claim, r.Detail)
		} else {
			t.Logf("%s: %s", r.ID, r.Detail)
		}
	}
}

// TestResumeDivergenceDetected proves the resume-equivalence oracle has
// teeth: restoring the checkpoint into a machine continued with a
// different tie-break salt must NOT reproduce the uninterrupted bytes.
// (RestoreImageWarm with a non-zero salt is exactly that machine.)
func TestResumeDivergenceDetected(t *testing.T) {
	img, err := BootImage(RefStock, 1, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	h0, err := warmContinuationHash(RefStock, 1, img, 0)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := warmContinuationHash(RefStock, 1, img, 0xdeadbeef)
	if err != nil {
		t.Fatal(err)
	}
	if h0 == h1 {
		t.Fatalf("perturbed continuation produced identical bytes (%s); the oracle cannot detect divergence", h0)
	}
}

// TestBisectCleanFixture: offset tick chains never collide, so no salt
// can change the dispatch order and the bisector must find nothing.
func TestBisectCleanFixture(t *testing.T) {
	build := func(salt uint64) (BisectReplica, error) {
		return newFxReplica(false, 42, salt), nil
	}
	res, err := RunBisect(build, 0x5eed, 30*sim.Time(sim.Millisecond), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatalf("clean fixture diverged: %v", res)
	}
	if res.Steps == 0 {
		t.Fatal("clean fixture recorded no dispatches")
	}
}

// TestBisectRaceFixture: the injected tie at 5 ms must be pinpointed —
// first divergent event at exactly the collision instant, with the two
// replicas dispatching opposite chains.
func TestBisectRaceFixture(t *testing.T) {
	build := func(salt uint64) (BisectReplica, error) {
		return newFxReplica(true, 42, salt), nil
	}
	var res BisectResult
	var err error
	found := false
	for i := uint64(1); i <= 16 && !found; i++ {
		res, err = RunBisect(build, sim.DeriveSeed(7, i), 30*sim.Time(sim.Millisecond), 8)
		if err != nil {
			t.Fatal(err)
		}
		found = res.Diverged
	}
	if !found {
		t.Fatal("no salt flipped the injected tie in 16 attempts")
	}
	if res.At != sim.Time(fxTieAt) {
		t.Fatalf("divergence at %v, want the tie instant %v: %v", res.At, sim.Time(fxTieAt), res)
	}
	ab := strings.HasPrefix(res.Baseline, "core.fx-a") && strings.HasPrefix(res.Mutant, "core.fx-b")
	ba := strings.HasPrefix(res.Baseline, "core.fx-b") && strings.HasPrefix(res.Mutant, "core.fx-a")
	if !ab && !ba {
		t.Fatalf("divergence is not the a/b tie flip: %v", res)
	}
	if res.Replayed < 1 || res.CheckpointStep > res.Step {
		t.Fatalf("implausible rewind accounting: %v", res)
	}
	t.Logf("%v", res)
}

// TestBisectMachineReplica drives a full kernel reference machine
// through the record/checkpoint/lockstep path. Identical construction
// on both sides must yield no divergence — this is the kernel-level
// checkpoint path under the bisector's microscope.
func TestBisectMachineReplica(t *testing.T) {
	build := func(salt uint64) (BisectReplica, error) {
		s, err := BootReference(RefShielded, 1, "", 0, salt)
		if err != nil {
			return nil, err
		}
		return MachineReplica(s.K), nil
	}
	res, err := RunBisect(build, 0, sim.Time(refBootHorizon)+10*sim.Time(sim.Millisecond), 128)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatalf("identically built machines diverged: %v", res)
	}
	if res.Steps == 0 {
		t.Fatal("machine replica recorded no dispatches")
	}
}

// TestBisectDemo is the reprocheck -bisect surface.
func TestBisectDemo(t *testing.T) {
	for _, d := range RunBisectDemo(1) {
		if !d.Pass {
			t.Errorf("%s FAILED: %s", d.Name, d.Detail)
		} else {
			t.Logf("%s: %s", d.Name, d.Detail)
		}
	}
}
