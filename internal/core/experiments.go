package core

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Experiment is one reproducible paper figure or ablation.
type Experiment struct {
	ID    string
	Title string
	// Paper summarises the published result for side-by-side output.
	Paper string
	// Run executes the experiment at the given scale factor (1.0 =
	// default sample counts; the paper's full size is much larger) on up
	// to workers goroutines (<= 0 means GOMAXPROCS) and returns a
	// rendered report. The worker count never affects the report's
	// bytes, only wall-clock time — the determinism-regression tests
	// hold every experiment to that.
	Run func(scale float64, seed uint64, workers int) string
}

// scaleSamples applies the scale factor with a sane floor.
func scaleSamples(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1000 {
		n = 1000
	}
	return n
}

func scaleRuns(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 5 {
		n = 5
	}
	return n
}

// Experiments returns the registry of all reproducible results, in paper
// order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:    "fig1",
			Title: "Execution determinism, kernel.org 2.4.18 (hyperthreading on)",
			Paper: "ideal 1.150770s, max 1.451925s, jitter 0.301155s (26.17%)",
			Run: func(scale float64, seed uint64, workers int) string {
				cfg, _ := figDeterminismConfig("fig1", scale, seed, workers)
				return RunDeterminism(cfg).Render()
			},
		},
		{
			ID:    "fig2",
			Title: "Execution determinism, RedHawk 1.4, shielded CPU",
			Paper: "ideal 1.150814s, max 1.172235s, jitter 0.021421s (1.87%)",
			Run: func(scale float64, seed uint64, workers int) string {
				cfg, _ := figDeterminismConfig("fig2", scale, seed, workers)
				return RunDeterminism(cfg).Render()
			},
		},
		{
			ID:    "fig3",
			Title: "Execution determinism, RedHawk 1.4, unshielded CPU",
			Paper: "ideal 1.150785s, max 1.321399s, jitter 0.170614s (14.82%)",
			Run: func(scale float64, seed uint64, workers int) string {
				cfg, _ := figDeterminismConfig("fig3", scale, seed, workers)
				return RunDeterminism(cfg).Render()
			},
		},
		{
			ID:    "fig4",
			Title: "Execution determinism, kernel.org 2.4.18 (no hyperthreading)",
			Paper: "ideal 1.150795s, max 1.302139s, jitter 0.151344s (13.15%)",
			Run: func(scale float64, seed uint64, workers int) string {
				cfg, _ := figDeterminismConfig("fig4", scale, seed, workers)
				return RunDeterminism(cfg).Render()
			},
		},
		{
			ID:    "fig5",
			Title: "Interrupt response (realfeel), kernel.org 2.4.18 + stress-kernel",
			Paper: "max 92.3ms; 99.140% < 0.1ms, 99.843% < 1ms, 100% < 100ms",
			Run: func(scale float64, seed uint64, workers int) string {
				cfg, _ := figRealfeelConfig("fig5", scale, seed, workers)
				r := RunRealfeel(cfg)
				return r.Chart(PaperThresholdsFig5(), sim.Millisecond, "ms")
			},
		},
		{
			ID:    "fig6",
			Title: "Interrupt response (realfeel), RedHawk 1.4, shielded CPU + stress-kernel",
			Paper: "max 0.565ms; 8 samples 0.1–0.2ms, 5, 2, 1, 1 in higher bands (of 60M)",
			Run: func(scale float64, seed uint64, workers int) string {
				cfg, _ := figRealfeelConfig("fig6", scale, seed, workers)
				r := RunRealfeel(cfg)
				return r.Chart(PaperThresholdsFig6(), sim.Microsecond, "µs")
			},
		},
		{
			ID:    "fig7",
			Title: "Interrupt response (RCIM), RedHawk 1.4, shielded CPU + stress-kernel + x11perf + ttcp",
			Paper: "min 11µs, max 27µs, avg 11.3µs — all < 30µs",
			Run: func(scale float64, seed uint64, workers int) string {
				r := RunRCIM(figRCIMConfig(scale, seed, workers))
				return r.Name + "\n" + r.Legend(PaperThresholdsFig7())
			},
		},
		{
			ID:    "attrib-causes",
			Title: "Causes of delay: trace-derived latency attribution, stock vs shielded",
			Paper: "§2: program execution, interrupts, bottom halves and locks each delay response; shielding removes them",
			Run: func(scale float64, seed uint64, workers int) string {
				return RunAttribution(scale, seed, workers).Render()
			},
		},
		{
			ID:    "ablate-spinlock-bh",
			Title: "Ablation §6.2: bottom halves preempting spinlock holders (fix off)",
			Paper: "pre-fix RedHawk showed multi-millisecond delays via contended spinlocks",
			Run: func(scale float64, seed uint64, workers int) string {
				base := DefaultRealfeel(kernel.RedHawk14(2, 0.933))
				base.Samples = scaleSamples(base.Samples, scale)
				base.Shield = true
				base.Seed = sim.DeriveSeed(seed, streamSpinlockBH)
				// Wire-interrupt traffic with rx-ring batching makes the
				// bottom halves big enough to expose the §6.2 window.
				base.ExtraLoads = []string{LoadScpBurst}

				nofix := base
				nofix.Kernel.FixSpinlockBH = false
				nofix.Kernel.Name += "-nofix"

				var fixed, broken ResponseResult
				runner.Do(workers,
					func() { fixed = RunRealfeel(base) },
					func() { broken = RunRealfeel(nofix) },
				)
				return fmt.Sprintf(
					"fix ON  (RedHawk ships this): worst fs-lock hold %v, realfeel max %v\n"+
						"fix OFF (pre-§6.2 kernel):    worst fs-lock hold %v, realfeel max %v\n"+
						"bottom halves preempting spinlock holders stretch critical sections\n"+
						"from the %v cap toward the softirq burst length.\n",
					fixed.WorstFSHold, fixed.Max, broken.WorstFSHold, broken.Max,
					base.Kernel.CritSectionCap)
			},
		},
		{
			ID:    "future-rtc-api",
			Title: "Extension (§7): /dev/rtc reached through a multithreaded driver API",
			Paper: "\"remaining multithreading issues to be solved ... for other standard Linux APIs\"",
			Run: func(scale float64, seed uint64, workers int) string {
				legacy := DefaultRealfeel(kernel.RedHawk14(2, 0.933))
				legacy.Samples = scaleSamples(legacy.Samples, scale)
				legacy.Shield = true
				legacy.Seed = sim.DeriveSeed(seed, streamFutureRTC)

				fixedCfg := legacy
				fixedCfg.FixedAPI = true

				var a, b ResponseResult
				runner.Do(workers,
					func() { a = RunRealfeel(legacy) },
					func() { b = RunRealfeel(fixedCfg) },
				)
				return fmt.Sprintf(
					"read(/dev/rtc) via generic fs layers: min %v avg %v max %v\n"+
						"ioctl wait, multithreaded driver:     min %v avg %v max %v\n"+
						"fixing the driver API removes the residual fs-spinlock tail and\n"+
						"brings the RTC to the RCIM-class guarantee on a shielded CPU.\n",
					a.Min, a.Mean(), a.Max, b.Min, b.Mean(), b.Max)
			},
		},
		{
			ID:    "ablate-bkl-ioctl",
			Title: "Ablation §6.3: RCIM ioctl forced through the BKL",
			Paper: "BKL contention can add several milliseconds of jitter",
			Run: func(scale float64, seed uint64, workers int) string {
				cfg := DefaultRCIM(kernel.RedHawk14(2, 2.0))
				cfg.ForceBKL = true
				cfg.Samples = scaleSamples(cfg.Samples, scale)
				cfg.Seed = sim.DeriveSeed(seed, streamBKL)
				cfg.Replications = figureReplications
				cfg.Workers = workers
				r := RunRCIM(cfg)
				return r.Name + "\n" + r.Legend(PaperThresholdsFig7())
			},
		},
		{
			ID:    "ablate-shield-modes",
			Title: "Ablation §3: shield sub-modes (procs / +irqs / +ltmr)",
			Paper: "each shielding dimension removes one jitter source",
			Run: func(scale float64, seed uint64, workers int) string {
				return runShieldModes(scale, seed, workers)
			},
		},
		{
			ID:    "ablate-patches-noshield",
			Title: "Ablation §6: preemption+low-latency patches, no shielding (Clark Williams)",
			Paper: "~1.2ms worst-case interrupt response [5]",
			Run: func(scale float64, seed uint64, workers int) string {
				cfg := DefaultRealfeel(kernel.PatchedLinux24(2, 0.933))
				cfg.Samples = scaleSamples(cfg.Samples, scale)
				cfg.Seed = sim.DeriveSeed(seed, streamPatches)
				cfg.Replications = figureReplications
				cfg.Workers = workers
				r := RunRealfeel(cfg)
				return r.Name + "\n" + r.Legend(PaperThresholdsFig5())
			},
		},
		{
			ID:    "ablate-posix-timers",
			Title: "Ablation §4: the POSIX timers patch (sleep granularity)",
			Paper: "RedHawk includes the POSIX timers patch [4]; stock 2.4 timers have 10ms jiffy granularity",
			Run: func(scale float64, seed uint64, workers int) string {
				return runPosixTimers(seed)
			},
		},
		{
			ID:    "ablate-hyperthreading",
			Title: "Ablation §5: hyperthreading as a jitter source (fig1 vs fig4 delta)",
			Paper: "26.17% with HT vs 13.15% without",
			Run: func(scale float64, seed uint64, workers int) string {
				ht := DefaultDeterminism(kernel.StandardLinux24(2, 1.4, true))
				ht.Runs = scaleRuns(ht.Runs, scale)
				ht.Seed = sim.DeriveSeed(seed, streamHT)
				ht.Workers = workers
				noht := DefaultDeterminism(kernel.StandardLinux24(2, 1.4, false))
				noht.Runs = scaleRuns(noht.Runs, scale)
				noht.Seed = sim.DeriveSeed(seed, streamHT)
				noht.Workers = workers
				a, b := RunDeterminism(ht), RunDeterminism(noht)
				return fmt.Sprintf("with HT:\n%s\nwithout HT:\n%s", a.Legend(), b.Legend())
			},
		},
	}
}

// ExperimentByID finds one experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ExperimentIDs lists all ids in order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// runShieldModes sweeps the shield sub-masks on the fig6 setup and
// reports max latency per mode. The RTC follows the measurement task in
// every mode. The four modes are independent single-replication runs,
// so they fan out across the worker pool and render in mode order.
func runShieldModes(scale float64, seed uint64, workers int) string {
	type mode struct {
		name                string
		procs, irqs, ltimer bool
	}
	modes := []mode{
		{"no shielding", false, false, false},
		{"procs only", true, false, false},
		{"procs+irqs", true, true, false},
		{"procs+irqs+ltmr (full)", true, true, true},
	}
	results := runner.Map(workers, len(modes), func(i int) ResponseResult {
		m := modes[i]
		cfg := DefaultRealfeel(kernel.RedHawk14(2, 0.933))
		cfg.Samples = scaleSamples(cfg.Samples/4, scale)
		cfg.Seed = sim.DeriveSeed(seed, streamShieldModes)
		return RunRealfeelModes(cfg, m.procs, m.irqs, m.ltimer, true)
	})
	var b strings.Builder
	for i, m := range modes {
		r := results[i]
		fmt.Fprintf(&b, "%-24s max %-10v mean %-10v >0.1ms: %d/%d\n",
			m.name, r.Max, r.Mean(), r.Samples-r.Hist.CumulativeBelow(100*sim.Microsecond), r.Samples)
	}
	return b.String()
}

// runPosixTimers compares a 1 kHz sleep-paced periodic task across
// kernels: jiffy-granular stock timers cannot do better than ~50 Hz.
func runPosixTimers(seed uint64) string {
	measure := func(cfg kernel.Config) (int, sim.Duration) {
		k := kernel.New(cfg, sim.DeriveSeed(seed, streamPosixTimers))
		cycles := 0
		var worstPeriod sim.Duration
		last := sim.NoTime
		k.NewTask("periodic", kernel.SchedFIFO, 90, 0, kernel.BehaviorFunc(func(*kernel.Task) kernel.Action {
			a := kernel.Sleep(sim.Millisecond)
			a.OnComplete = func(now sim.Time) {
				cycles++
				if last >= 0 {
					if p := now.Sub(last); p > worstPeriod {
						worstPeriod = p
					}
				}
				last = now
			}
			return a
		}))
		k.Start()
		k.Eng.Run(sim.Time(2 * sim.Second))
		return cycles / 2, worstPeriod
	}
	stockHz, stockWorst := measure(kernel.StandardLinux24(1, 0.933, false))
	rhHz, rhWorst := measure(kernel.RedHawk14(1, 0.933))
	return fmt.Sprintf(
		"1 kHz sleep-paced loop:\n"+
			"  stock 2.4.18:  achieved %4d Hz, worst period %v (jiffy-granular timers)\n"+
			"  RedHawk 1.4:   achieved %4d Hz, worst period %v (POSIX timers patch)\n",
		stockHz, stockWorst, rhHz, rhWorst)
}
