package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// Figure-level seal on the sharded engine, mirroring queueab_test.go:
// the whole simulated machine — kernel, workloads, RCIM, attribution —
// rerun with the engine forced onto the sharded queue must produce
// byte-for-byte the results of the serial ladder, for every shard
// count. Together with the op-stream oracle (sim.FuzzShardedSchedule)
// and the window-protocol oracle (sim/runner shard tests) this is the
// top of the bit-identity stack: `rtsim -engine=sharded -shards=N` can
// never move a published figure.

// withDefaultEngine runs fn with the process-default engine switched to
// kind/shards, restoring the prior default (which under CI's sharded
// matrix leg is itself sharded) afterwards.
func withDefaultEngine(kind sim.QueueKind, shards int, fn func()) {
	prevKind := sim.DefaultQueueKind()
	prevShards := sim.DefaultShardCount()
	sim.SetDefaultQueueKind(kind)
	if shards > 0 {
		sim.SetDefaultShardCount(shards)
	}
	defer func() {
		sim.SetDefaultQueueKind(prevKind)
		sim.SetDefaultShardCount(prevShards)
	}()
	fn()
}

func TestFigureHashesShardedAB(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	figures := []string{"fig2", "fig7", "attrib-causes"}
	run := func(kind sim.QueueKind, shards int) map[string]string {
		out := map[string]string{}
		withDefaultEngine(kind, shards, func() {
			for _, id := range figures {
				csv, err := FigureCSV(id, goldenScale, goldenSeed, 0)
				if err != nil {
					t.Fatalf("FigureCSV(%s) on %s/%d: %v", id, kind, shards, err)
				}
				out[id] = fnv1a(csv)
			}
		})
		return out
	}
	want := run(sim.QueueLadder, 0)
	for _, shards := range []int{1, 2, 4} {
		got := run(sim.QueueSharded, shards)
		for _, id := range figures {
			if got[id] != want[id] {
				t.Errorf("%s: sharded/%d hash %s != serial hash %s — shard count leaked into results",
					id, shards, got[id], want[id])
			}
		}
	}
}

// TestTraceBytesShardedAB holds the sharded engine to the strongest
// form of the acceptance criterion: not just figure hashes but the full
// rendered trace stream — every tracepoint, timestamp and argument — is
// byte-identical across serial and every shard count.
func TestTraceBytesShardedAB(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	capture := func(kind sim.QueueKind, shards int) string {
		var sb strings.Builder
		withDefaultEngine(kind, shards, func() {
			buf := CaptureTrace(0.02, goldenSeed)
			if err := buf.WriteText(&sb); err != nil {
				t.Fatalf("WriteText on %s/%d: %v", kind, shards, err)
			}
		})
		return sb.String()
	}
	want := capture(sim.QueueLadder, 0)
	if len(want) == 0 {
		t.Fatal("serial capture produced an empty trace")
	}
	for _, shards := range []int{1, 2, 4} {
		got := capture(sim.QueueSharded, shards)
		if got != want {
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			lo, hi := i-40, i+40
			if lo < 0 {
				lo = 0
			}
			ctx := func(s string) string {
				if hi < len(s) {
					return s[lo:hi]
				}
				return s[lo:]
			}
			t.Errorf("sharded/%d trace diverged from serial at byte %d:\nserial:  …%q…\nsharded: …%q…",
				shards, i, ctx(want), ctx(got))
		}
	}
}

// TestPerturbShardedAB runs the schedule-perturbation sweep with the
// engine defaulted to sharded: every figure must stay
// perturbation-invariant, and every fingerprint — baseline and salted —
// must equal the serial sweep's. This is the `reprocheck -perturb`
// claim under `-engine=sharded`, shrunk to golden scale.
func TestPerturbShardedAB(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	sweep := func(kind sim.QueueKind, shards int) []FigurePerturbation {
		var out []FigurePerturbation
		withDefaultEngine(kind, shards, func() {
			out = RunPerturbFigures(goldenScale, goldenSeed, 0, 2)
		})
		return out
	}
	want := sweep(sim.QueueLadder, 0)
	for _, p := range want {
		if !p.Report.OK() {
			t.Fatalf("serial sweep already diverged for %s: %s", p.ID, p.Report)
		}
	}
	got := sweep(sim.QueueSharded, 2)
	if len(got) != len(want) {
		t.Fatalf("sweep sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("sweep order differs at %d: %s vs %s", i, got[i].ID, want[i].ID)
		}
		if !got[i].Report.OK() {
			t.Errorf("%s: sharded sweep diverged under perturbation: %s", got[i].ID, got[i].Report)
		}
		if got[i].Report.Baseline != want[i].Report.Baseline {
			t.Errorf("%s: sharded baseline %s != serial baseline %s",
				got[i].ID, got[i].Report.Baseline, want[i].Report.Baseline)
		}
		for j, run := range want[i].Report.Runs {
			if got[i].Report.Runs[j] != run {
				t.Errorf("%s: salted run %d diverged: %+v vs %+v", got[i].ID, j, got[i].Report.Runs[j], run)
			}
		}
	}
}
