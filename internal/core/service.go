package core

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// This file is the request→figure plumbing behind the simd service: a
// canonical, content-addressable encoding of "one scenario" (machine
// config + workload + seed + figure), and the entry points that run one
// scenario to its deterministic result bytes.
//
// The cache-key soundness argument (DESIGN.md §11) rests on the repo's
// standing determinism claims: a figure's bytes are a pure function of
// (canonical config, seed, figure) — bit-identical across worker
// counts, queue implementations, engine modes, tie-break salts and
// processes, which is exactly what the golden-hash, perturbation,
// sharded-matrix and snapshot CI jobs pin. Every knob that can never
// change results is therefore erased from the canonical encoding, so
// requests that differ only in such a knob share one cache entry.

// CanonicalKernelConfig returns cfg with every non-semantic knob
// cleared: the event-queue implementation, shard count, event pool,
// tie-break salt and invariant sampler can never change simulation
// results (the differential oracles prove it), so they must not change
// a scenario's content address either.
func CanonicalKernelConfig(cfg kernel.Config) kernel.Config {
	cfg.EventQueue = ""
	cfg.EngineShards = 0
	cfg.EventPool = nil
	cfg.TiebreakSalt = 0
	cfg.InvariantPeriod = 0
	return cfg
}

// scenarioEncodingVersion prefixes every canonical scenario string.
// Bump it when the encoding itself (not the model) changes shape, so
// stale on-disk cache entries miss instead of colliding.
const scenarioEncodingVersion = "simd/v1"

// ScenarioKind separates the two request families the service runs.
type ScenarioKind int

const (
	// KindFigure is a paper figure: the result bytes are the figure's
	// canonical CSV data series (FigureCSV), whose FNV-1a hash is the
	// same hash the reprocheck golden oracle pins.
	KindFigure ScenarioKind = iota
	// KindContinuation is a reference-machine continuation: boot (or
	// warm-start from a cached post-boot image), run RunFor further
	// virtual time, and report the final state hash. Cold and warm runs
	// produce byte-identical results — the snap-resume claim shape.
	KindContinuation
)

// Continuation scenario ids (the "figure" namespace the API accepts,
// alongside fig1..fig7 and attrib-causes).
const (
	ScenarioRefStock    = "ref-stock"
	ScenarioRefShielded = "ref-shielded"
)

// defaultContinuationMS is the continuation window when a request
// leaves run_for_ms at 0.
const defaultContinuationMS = 20

// Scenario is one resolved, validated scenario request. Resolve it with
// ResolveScenario; the zero value is not meaningful.
type Scenario struct {
	Kind   ScenarioKind
	Figure string
	Scale  float64
	Seed   uint64
	// Ref and RunFor are set for continuations only.
	Ref    ReferenceMachine
	RunFor sim.Duration

	canonical string
}

// ServedScenarios lists every scenario id the service accepts, figure
// family first, in serving-catalogue order.
func ServedScenarios() []string {
	ids := make([]string, 0, len(goldenFigureIDs)+2)
	ids = append(ids, goldenFigureIDs...)
	return append(ids, ScenarioRefStock, ScenarioRefShielded)
}

// goldenFigureIDs mirrors the golden-hash figure set: the figures with
// a canonical CSV series, i.e. the cacheable figure scenarios.
var goldenFigureIDs = []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "attrib-causes"}

// ResolveScenario validates one request and computes its canonical
// encoding. figure names either a CSV-bearing figure (fig1..fig7,
// attrib-causes; scale > 0 required, runForMS must be 0) or a reference
// continuation (ref-stock/ref-shielded; runForMS in virtual
// milliseconds, 0 = default, scale must be 0). Knobs that cannot
// change results (workers, queue, shards, salts) are deliberately not
// part of a scenario.
func ResolveScenario(figure string, scale float64, seed uint64, runForMS int) (Scenario, error) {
	switch figure {
	case ScenarioRefStock, ScenarioRefShielded:
		if scale != 0 {
			return Scenario{}, fmt.Errorf("core: scenario %s: scale does not apply to continuations (got %v)", figure, scale)
		}
		if runForMS < 0 {
			return Scenario{}, fmt.Errorf("core: scenario %s: run_for_ms must be >= 0, got %d", figure, runForMS)
		}
		if runForMS == 0 {
			runForMS = defaultContinuationMS
		}
		ref := RefStock
		if figure == ScenarioRefShielded {
			ref = RefShielded
		}
		cfg, err := refKernelConfig(ref)
		if err != nil {
			return Scenario{}, err
		}
		s := Scenario{
			Kind:   KindContinuation,
			Figure: figure,
			Seed:   seed,
			Ref:    ref,
			RunFor: sim.Duration(runForMS) * sim.Millisecond,
		}
		s.canonical = fmt.Sprintf("%s|cont|ref=%s|seed=%d|boot=%v|run_for=%v|cfg=%+v",
			scenarioEncodingVersion, ref, seed, refBootHorizon, s.RunFor, CanonicalKernelConfig(cfg))
		return s, nil
	}

	if runForMS != 0 {
		return Scenario{}, fmt.Errorf("core: scenario %s: run_for_ms only applies to ref-* continuations", figure)
	}
	if !(scale > 0) || math.IsInf(scale, 1) || scale > 10_000 {
		return Scenario{}, fmt.Errorf("core: scenario %s: scale must be in (0, 10000], got %v", figure, scale)
	}
	s := Scenario{Kind: KindFigure, Figure: figure, Scale: scale, Seed: seed}
	// The canonical encoding is the *resolved* configuration — derived
	// seed streams, floored sample counts, the full kernel config —
	// rendered with non-semantic knobs erased. Two requests that floor
	// to the same resolved run share one encoding.
	if cfg, ok := figDeterminismConfig(figure, scale, seed, 0); ok {
		cfg.Kernel = CanonicalKernelConfig(cfg.Kernel)
		s.canonical = fmt.Sprintf("%s|det|%s|%+v", scenarioEncodingVersion, figure, cfg)
		return s, nil
	}
	if cfg, ok := figRealfeelConfig(figure, scale, seed, 0); ok {
		cfg.Kernel = CanonicalKernelConfig(cfg.Kernel)
		s.canonical = fmt.Sprintf("%s|rf|%s|%+v", scenarioEncodingVersion, figure, cfg)
		return s, nil
	}
	if figure == "fig7" {
		cfg := figRCIMConfig(scale, seed, 0)
		cfg.Kernel = CanonicalKernelConfig(cfg.Kernel)
		s.canonical = fmt.Sprintf("%s|rcim|%s|%+v", scenarioEncodingVersion, figure, cfg)
		return s, nil
	}
	if figure == "attrib-causes" {
		stock, shielded := figAttribConfigs(scale, seed, 0)
		stock.Kernel = CanonicalKernelConfig(stock.Kernel)
		shielded.Kernel = CanonicalKernelConfig(shielded.Kernel)
		s.canonical = fmt.Sprintf("%s|attrib|%s|stock=%+v|shielded=%+v", scenarioEncodingVersion, figure, stock, shielded)
		return s, nil
	}
	return Scenario{}, fmt.Errorf("core: unknown scenario %q (figures fig1..fig7, attrib-causes, or ref-stock/ref-shielded)", figure)
}

// Canonical returns the scenario's canonical encoding — the preimage of
// its content address.
func (s Scenario) Canonical() string { return s.canonical }

// Key returns the scenario's content address: the FNV-1a hash of the
// canonical encoding, the same hash family the reprocheck golden oracle
// uses for figure bytes.
func (s Scenario) Key() string { return HashBytes([]byte(s.canonical)) }

// ImageKey returns the content address of the post-boot snapshot image
// a continuation warm-starts from. RunFor is deliberately excluded:
// every continuation window over the same (ref config, seed) shares one
// boot image — that sharing is the whole point of warm starts.
func (s Scenario) ImageKey() (string, error) {
	if s.Kind != KindContinuation {
		return "", fmt.Errorf("core: scenario %s has no boot image", s.Figure)
	}
	cfg, err := refKernelConfig(s.Ref)
	if err != nil {
		return "", err
	}
	pre := fmt.Sprintf("%s|img|ref=%s|seed=%d|boot=%v|cfg=%+v",
		scenarioEncodingVersion, s.Ref, s.Seed, refBootHorizon, CanonicalKernelConfig(cfg))
	return HashBytes([]byte(pre)), nil
}

// CostVirtualMS estimates the scenario's cost in virtual milliseconds —
// the admission-budget unit. It is an a-priori estimate from the
// resolved configuration (sample counts × period, runs × loop length),
// not a measurement, so admission can refuse an oversized request with
// a typed budget error before any work starts.
func (s Scenario) CostVirtualMS() int64 {
	switch {
	case s.Kind == KindContinuation:
		return int64((refBootHorizon + s.RunFor) / sim.Millisecond)
	case s.Figure == "fig7":
		cfg := figRCIMConfig(s.Scale, s.Seed, 0)
		return int64(cfg.Samples) * int64(cfg.Period/sim.Millisecond)
	case s.Figure == "attrib-causes":
		stock, shielded := figAttribConfigs(s.Scale, s.Seed, 0)
		return int64(stock.Samples)*int64(stock.Period/sim.Millisecond) +
			int64(shielded.Samples)*int64(shielded.Period/sim.Millisecond)
	default:
		if cfg, ok := figDeterminismConfig(s.Figure, s.Scale, s.Seed, 0); ok {
			// Six placements of max(Runs/6, 3) timed loops plus the
			// three-run unloaded calibration pass (see RunDeterminism).
			per := cfg.Runs / 6
			if per < 3 {
				per = 3
			}
			loops := int64(6*per + 3)
			return loops * int64(cfg.LoopWork/sim.Millisecond)
		}
		if cfg, ok := figRealfeelConfig(s.Figure, s.Scale, s.Seed, 0); ok {
			// One sample per RTC period (1000/Hz ms).
			return int64(cfg.Samples) * 1000 / int64(cfg.Hz)
		}
		return 0
	}
}

// HashBytes is the FNV-1a fingerprint of arbitrary result bytes, in the
// same 16-hex-digit format as ImageHash and the committed figure
// goldens. It is the service's result-integrity hash and the soak
// oracle's comparison unit.
func HashBytes(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// RunScenario executes one scenario cold and returns its deterministic
// result bytes: the figure's CSV series, or the continuation transcript.
// workers caps the replication fan-out of figure scenarios (never the
// bytes). This is the serial oracle the simd soak compares cached and
// concurrent serving against.
func RunScenario(s Scenario, workers int) ([]byte, error) {
	switch s.Kind {
	case KindFigure:
		csv, err := FigureCSV(s.Figure, s.Scale, s.Seed, workers)
		if err != nil {
			return nil, err
		}
		return []byte(csv), nil
	case KindContinuation:
		out, _, err := RunContinuationCold(s, nil)
		return out, err
	default:
		return nil, fmt.Errorf("core: unknown scenario kind %d", s.Kind)
	}
}

// continuationResult renders the continuation transcript. Everything in
// it is virtual-time state, so cold and warm runs must produce the same
// bytes; the wall path taken (boot replay vs image restore) is
// deliberately not part of the result.
func continuationResult(s Scenario, sys *System) ([]byte, error) {
	if err := sys.K.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: continuation %s: %w", s.Figure, err)
	}
	img, err := sys.K.Snapshot()
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "scenario=%s seed=%d run_for=%v\n", s.Figure, s.Seed, s.RunFor)
	fmt.Fprintf(&b, "t=%v hash=%s bytes=%d\n", sys.K.Now(), ImageHash(img), len(img))
	return b.Bytes(), nil
}

// RunContinuationCold boots the reference machine (the full boot-load
// replay), snapshots the post-boot instant, runs the continuation
// window, and returns (result bytes, post-boot image). The image is
// what a warm-start cache stores: every later continuation over the
// same (ref config, seed) can restore it instead of replaying boot.
func RunContinuationCold(s Scenario, pool *sim.EventPool) (result, bootImg []byte, err error) {
	if s.Kind != KindContinuation {
		return nil, nil, fmt.Errorf("core: scenario %s is not a continuation", s.Figure)
	}
	sys, err := buildReference(s.Ref, s.Seed, "", 0, 0, pool, true)
	if err != nil {
		return nil, nil, err
	}
	bootImg, err = sys.K.Snapshot()
	if err != nil {
		return nil, nil, err
	}
	sys.K.Eng.Run(sys.K.Now().Add(s.RunFor))
	result, err = continuationResult(s, sys)
	if err != nil {
		return nil, nil, err
	}
	return result, bootImg, nil
}

// RunContinuationWarm runs the continuation window from a cached
// post-boot image: construct the reference machine, restore the image
// into it (cold, salt 0 — exact resume), and run. The result bytes are
// byte-identical to RunContinuationCold's for the same scenario — the
// snap-resume reprocheck claims pin exactly this equivalence — which is
// what makes warm-starting a pure wall-clock optimisation the cache may
// apply freely.
func RunContinuationWarm(s Scenario, bootImg []byte, pool *sim.EventPool) ([]byte, error) {
	if s.Kind != KindContinuation {
		return nil, fmt.Errorf("core: scenario %s is not a continuation", s.Figure)
	}
	sys, err := BuildReference(s.Ref, s.Seed, pool)
	if err != nil {
		return nil, err
	}
	if err := sys.K.RestoreImage(bootImg); err != nil {
		return nil, fmt.Errorf("core: warm start %s: %w", s.Figure, err)
	}
	sys.K.Eng.Run(sys.K.Now().Add(s.RunFor))
	return continuationResult(s, sys)
}
