package core

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Seed streams. Every experiment derives its working seed from the
// user-visible base seed as sim.DeriveSeed(seed, stream), one stream per
// experiment, so no two experiments ever replay the same event sequence
// and — unlike the old additive salts (seed + k*7919) — no pair of
// nearby base seeds can alias each other's streams.
const (
	streamFig1 uint64 = iota + 1
	streamFig2
	streamFig3
	streamFig4
	streamFig5
	streamFig6
	streamFig7
	streamSpinlockBH
	streamFutureRTC
	streamBKL
	streamShieldModes
	streamPatches
	streamPosixTimers
	streamHT
	streamChecksDet
	streamChecksResp
	streamAttrib
	streamTraceCap
	streamSnapshot
	streamBisect
)

// figureReplications is the fixed replication count the sharded figures
// (fig5–fig7) run with. It is a constant, never derived from the
// machine: the replication count shapes the result (each replication is
// its own seeded system), while the worker count must not.
const figureReplications = 8

// figDeterminismConfig returns the canonical configuration behind
// fig1–fig4 at the given scale, base seed and worker cap. One source of
// truth for the experiment registry, the CSV exporter and the golden
// determinism-regression tests.
func figDeterminismConfig(id string, scale float64, seed uint64, workers int) (DeterminismConfig, bool) {
	var cfg DeterminismConfig
	var stream uint64
	switch id {
	case "fig1":
		cfg = DefaultDeterminism(kernel.StandardLinux24(2, 1.4, true))
		stream = streamFig1
	case "fig2":
		cfg = DefaultDeterminism(kernel.RedHawk14(2, 1.4))
		cfg.Shield = true
		stream = streamFig2
	case "fig3":
		cfg = DefaultDeterminism(kernel.RedHawk14(2, 1.4))
		stream = streamFig3
	case "fig4":
		cfg = DefaultDeterminism(kernel.StandardLinux24(2, 1.4, false))
		stream = streamFig4
	default:
		return DeterminismConfig{}, false
	}
	cfg.Runs = scaleRuns(cfg.Runs, scale)
	cfg.Seed = sim.DeriveSeed(seed, stream)
	cfg.Workers = workers
	return cfg, true
}

// figRealfeelConfig returns the canonical configuration behind fig5 and
// fig6.
func figRealfeelConfig(id string, scale float64, seed uint64, workers int) (RealfeelConfig, bool) {
	var cfg RealfeelConfig
	var stream uint64
	switch id {
	case "fig5":
		cfg = DefaultRealfeel(kernel.StandardLinux24(2, 0.933, false))
		stream = streamFig5
	case "fig6":
		cfg = DefaultRealfeel(kernel.RedHawk14(2, 0.933))
		cfg.Shield = true
		stream = streamFig6
	default:
		return RealfeelConfig{}, false
	}
	cfg.Samples = scaleSamples(cfg.Samples, scale)
	cfg.Seed = sim.DeriveSeed(seed, stream)
	cfg.Replications = figureReplications
	cfg.Workers = workers
	return cfg, true
}

// figRCIMConfig returns the canonical configuration behind fig7.
func figRCIMConfig(scale float64, seed uint64, workers int) RCIMConfig {
	cfg := DefaultRCIM(kernel.RedHawk14(2, 2.0))
	cfg.Samples = scaleSamples(cfg.Samples, scale)
	cfg.Seed = sim.DeriveSeed(seed, streamFig7)
	cfg.Replications = figureReplications
	cfg.Workers = workers
	return cfg
}
