package core

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Sweep is a sensitivity analysis: vary one design parameter across a
// range and report how a headline metric responds. DESIGN.md calls these
// out as the ablation benches for the design choices; they also show how
// robust the reproduction is to the calibration constants.
type Sweep struct {
	ID    string
	Title string
	// Points are the parameter values to evaluate.
	Points []float64
	// Run evaluates the metric at one parameter value.
	Run func(value float64, scale float64, seed uint64) (metric float64, unit string)
}

// Sweeps returns the built-in sensitivity analyses.
func Sweeps() []Sweep {
	return []Sweep{
		{
			ID:     "crit-section-cap",
			Title:  "Shielded worst-case response vs critical-section cap (low-latency work depth)",
			Points: []float64{0.1, 0.2, 0.4, 0.8, 1.6, 3.2}, // ms
			Run: func(v, scale float64, seed uint64) (float64, string) {
				cfg := DefaultRealfeel(kernel.RedHawk14(2, 0.933))
				cfg.Kernel.CritSectionCap = sim.Duration(v * 1e6)
				cfg.Samples = scaleSamples(40_000, scale)
				cfg.Shield = true
				cfg.Seed = seed
				r := RunRealfeel(cfg)
				return r.Max.Millis(), "max_ms"
			},
		},
		{
			ID:     "ht-slowdown",
			Title:  "Standard-kernel loop jitter vs hyperthread contention factor",
			Points: []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5},
			Run: func(v, scale float64, seed uint64) (float64, string) {
				d := DefaultDeterminism(kernel.StandardLinux24(2, 1.4, true))
				d.Kernel.Timing.HTSlowdown = v
				d.Runs = scaleRuns(12, scale)
				d.LoopWork = sim.DurationOf(0.3)
				d.Seed = seed
				return RunDeterminism(d).Report.JitterPercent(), "jitter_pct"
			},
		},
		{
			ID:     "bus-contention",
			Title:  "Shielded loop jitter vs memory-bus contention ceiling",
			Points: []float64{0, 0.02, 0.055, 0.1, 0.2},
			Run: func(v, scale float64, seed uint64) (float64, string) {
				d := DefaultDeterminism(kernel.RedHawk14(2, 1.4))
				d.Kernel.Timing.BusContention = v
				d.Runs = scaleRuns(12, scale)
				d.LoopWork = sim.DurationOf(0.3)
				d.Shield = true
				d.Seed = seed
				return RunDeterminism(d).Report.JitterPercent(), "jitter_pct"
			},
		},
		{
			ID:     "softirq-netcost",
			Title:  "Unshielded loop jitter vs per-KB network bottom-half cost",
			Points: []float64{5, 10, 15, 25, 40}, // µs/KB
			Run: func(v, scale float64, seed uint64) (float64, string) {
				d := DefaultDeterminism(kernel.StandardLinux24(2, 1.4, false))
				d.Kernel.Timing.SoftirqNetPerKB = sim.Duration(v * 1e3)
				d.Runs = scaleRuns(12, scale)
				d.LoopWork = sim.DurationOf(0.3)
				d.Seed = seed
				return RunDeterminism(d).Report.JitterPercent(), "jitter_pct"
			},
		},
		{
			ID:     "residency-cap",
			Title:  "Stock worst-case response vs heaviest kernel residency",
			Points: []float64{10, 30, 60, 90, 150}, // ms
			Run: func(v, scale float64, seed uint64) (float64, string) {
				cfg := DefaultRealfeel(kernel.StandardLinux24(2, 0.933, false))
				cfg.Samples = scaleSamples(40_000, scale)
				cfg.Seed = seed
				cfg.ResidencyCap = sim.Duration(v * 1e6)
				r := RunRealfeel(cfg)
				return r.Max.Millis(), "max_ms"
			},
		},
	}
}

// SweepByID finds one sweep.
func SweepByID(id string) (Sweep, bool) {
	for _, s := range Sweeps() {
		if s.ID == id {
			return s, true
		}
	}
	return Sweep{}, false
}

// RunSweep evaluates the sweep on up to workers goroutines — every
// point is an independent replication — and renders the table in point
// order, so the output is identical for any worker count.
func RunSweep(s Sweep, scale float64, seed uint64, workers int) string {
	type point struct {
		metric float64
		unit   string
	}
	points := runner.Map(workers, len(s.Points), func(i int) point {
		m, u := s.Run(s.Points[i], scale, seed)
		return point{m, u}
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	for i, p := range s.Points {
		fmt.Fprintf(&b, "  %10.3f -> %10.3f %s\n", p, points[i].metric, points[i].unit)
	}
	return b.String()
}
