package core

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
)

// DeterminismConfig parameterises the §5.1 execution determinism test:
// a CPU-bound double-precision sine loop, mlocked and SCHED_FIFO, timed
// with the TSC, while scp traffic and the disknoise script load the
// system.
type DeterminismConfig struct {
	Kernel kernel.Config
	// LoopWork is the pure computation per timed loop (the paper's loop
	// ideals at ~1.15 s).
	LoopWork sim.Duration
	// Runs is the number of timed loop executions under load.
	Runs int
	// Shield runs the loop on a fully shielded CPU (Figure 2).
	Shield bool
	// ShieldCPU is the CPU to shield (default: last CPU).
	ShieldCPU int
	Seed      uint64
	// Workers caps the worker pool the placement replications run on;
	// <= 0 means GOMAXPROCS. Workers never affects results, only
	// wall-clock time: placements are merged in replication-index order,
	// so the result is bit-identical for any worker count.
	Workers int
}

// DefaultDeterminism fills the paper's parameters for a given kernel.
func DefaultDeterminism(cfg kernel.Config) DeterminismConfig {
	return DeterminismConfig{
		Kernel:    cfg,
		LoopWork:  sim.DurationOf(1.15),
		Runs:      60,
		ShieldCPU: cfg.NumCPUs() - 1,
		Seed:      1,
	}
}

// DeterminismResult is one figure's worth of output.
type DeterminismResult struct {
	Name   string
	Report metrics.JitterReport
	// Loaded aggregates the loaded runs only (the Report's ideal also
	// folds in the unloaded calibration pass). It is assembled by
	// merging per-placement summaries in replication-index order.
	Loaded metrics.JitterSummary
	// Hist bins the per-run variance from ideal in 10 ms buckets, the
	// x-axis of Figures 1–4.
	Hist *metrics.Histogram
}

// Legend renders the figure legend exactly as the paper prints it.
func (r DeterminismResult) Legend() string {
	return r.Report.Legend()
}

// Render draws the variance histogram (the paper's Figures 1-4 panels)
// plus the legend.
func (r DeterminismResult) Render() string {
	var b strings.Builder
	b.WriteString(report.Chart{
		Title:    fmt.Sprintf("%s — time difference from ideal", r.Name),
		Width:    40,
		Unit:     sim.Millisecond,
		UnitName: "ms",
		MaxRows:  25,
	}.Render(r.Hist))
	b.WriteString(r.Legend())
	return b.String()
}

// placementShard is one placement replication's worth of loaded runs.
type placementShard struct {
	samples []sim.Duration
	summary metrics.JitterSummary
}

// RunDeterminism executes the test: first a calibration pass on an
// unloaded system to establish the ideal time (the paper's method), then
// the loaded runs.
func RunDeterminism(cfg DeterminismConfig) DeterminismResult {
	if cfg.Runs <= 0 {
		cfg.Runs = 60
	}
	if cfg.LoopWork <= 0 {
		cfg.LoopWork = sim.DurationOf(1.15)
	}

	ideal := determinismPass(cfg, 3, false)

	// The paper reports the worst case over many runs; on a loaded SMP
	// machine the dominant run-to-run variable is where the scheduler
	// happened to park the background tasks (in particular whether one
	// sits on the measured CPU's hyperthread sibling). Sample several
	// independent placements and pool all loop timings.
	//
	// Each placement is an independent replication — its own system,
	// its own splitmix64-derived seed — so the set fans out across the
	// runner's worker pool and merges in index order.
	const placements = 6
	perPlacement := cfg.Runs / placements
	if perPlacement < 3 {
		perPlacement = 3
	}
	shards := runner.MapSeededPooled(cfg.Workers, cfg.Seed, placements, func(i int, seed uint64, pool *sim.EventPool) placementShard {
		sub := cfg
		sub.Seed = seed
		sub.Kernel.EventPool = pool
		samples := determinismPass(sub, perPlacement, true)
		var sum metrics.JitterSummary
		for _, d := range samples {
			sum.Add(d)
		}
		return placementShard{samples: samples, summary: sum}
	})
	var loaded []sim.Duration
	var summary metrics.JitterSummary
	for _, sh := range shards {
		loaded = append(loaded, sh.samples...)
		summary.Merge(sh.summary)
	}

	min := ideal[0]
	for _, d := range ideal {
		if d < min {
			min = d
		}
	}
	report := metrics.NewJitterReportWithIdeal(min, loaded)
	name := fmt.Sprintf("%s determinism", cfg.Kernel.Name)
	if cfg.Shield {
		name += " (shielded CPU)"
	}
	return DeterminismResult{
		Name:   name,
		Report: report,
		Loaded: summary,
		Hist:   report.VarianceHistogram(10*sim.Millisecond, 40),
	}
}

// determinismPass runs `runs` timed loops, with or without load, and
// returns the per-loop elapsed times.
func determinismPass(cfg DeterminismConfig, runs int, loaded bool) []sim.Duration {
	opts := SystemOptions{}
	if loaded {
		opts.Loads = []string{LoadScpFlood, LoadDiskNoise}
	}
	s := NewSystem(cfg.Kernel, cfg.Seed, opts)
	k := s.K

	// Unshielded runs pin the loop to CPU 0: with static 2.4 interrupt
	// routing all device interrupts land there, and the paper reports
	// worst-case jitter — i.e. the runs where the loop shares the
	// interrupt CPU. Shielded runs opt into the shielded CPU instead.
	affinity := kernel.MaskOf(0)
	if cfg.Shield {
		affinity = kernel.MaskOf(cfg.ShieldCPU)
	}

	loop := &detLoop{k: k, work: cfg.LoopWork, runs: runs, elapsed: make([]sim.Duration, 0, runs)}
	mt := k.NewTask("determinism-test", kernel.SchedFIFO, 90, affinity, loop)
	mt.MemLocked = true

	s.Start()
	if cfg.Shield {
		if err := s.ShieldCPU(cfg.ShieldCPU); err != nil {
			panic(err)
		}
	}
	// Generous horizon: runs × loop × worst-case slowdown.
	horizon := sim.Time(cfg.LoopWork) * sim.Time(runs+2) * 2
	k.Eng.Run(horizon)
	return loop.elapsed
}
