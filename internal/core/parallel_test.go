package core

import (
	"reflect"
	"testing"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// equivWorkers covers the serial fast path, even splits, and a worker
// count that neither divides the replication count nor matches a power
// of two.
var equivWorkers = []int{1, 2, 4, 7}

// TestDeterminismBitIdenticalAcrossWorkerCounts is the core guarantee of
// the runner rewiring: the worker count is a throughput knob, never an
// input. Fig 1 exercises the placement fan-out in RunDeterminism.
func TestDeterminismBitIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg, _ := figDeterminismConfig("fig1", 0.1, 11, equivWorkers[0])
	base := RunDeterminism(cfg)
	for _, w := range equivWorkers[1:] {
		cfg.Workers = w
		if got := RunDeterminism(cfg); !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d diverged from workers=1", w)
		}
	}
}

// TestRealfeelBitIdenticalAcrossWorkerCounts covers the replication
// sharding in RunRealfeel, with a replication count that no worker count
// in the set divides evenly.
func TestRealfeelBitIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := DefaultRealfeel(kernel.StandardLinux24(2, 0.933, false))
	cfg.Samples = 10_000
	cfg.Replications = 5
	cfg.Seed = sim.DeriveSeed(11, streamFig5)
	cfg.Workers = equivWorkers[0]
	base := RunRealfeel(cfg)
	legend := base.Legend(PaperThresholdsFig5())
	for _, w := range equivWorkers[1:] {
		cfg.Workers = w
		got := RunRealfeel(cfg)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d diverged from workers=1", w)
		}
		if got.Legend(PaperThresholdsFig5()) != legend {
			t.Fatalf("workers=%d rendered a different legend", w)
		}
	}
}

// TestRCIMBitIdenticalAcrossWorkerCounts covers the replication sharding
// in RunRCIM.
func TestRCIMBitIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := DefaultRCIM(kernel.RedHawk14(2, 2.0))
	cfg.Samples = 10_000
	cfg.Replications = figureReplications
	cfg.Seed = sim.DeriveSeed(11, streamFig7)
	cfg.Workers = equivWorkers[0]
	base := RunRCIM(cfg)
	for _, w := range equivWorkers[1:] {
		cfg.Workers = w
		if got := RunRCIM(cfg); !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d diverged from workers=1", w)
		}
	}
}

// TestFigureCSVBytesIdenticalAcrossWorkerCounts asserts byte identity of
// the exported artifact itself, one figure per experiment family.
func TestFigureCSVBytesIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	for _, id := range []string{"fig1", "fig5", "fig7"} {
		base, err := FigureCSV(id, 0.03, 11, equivWorkers[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range equivWorkers[1:] {
			got, err := FigureCSV(id, 0.03, 11, w)
			if err != nil {
				t.Fatal(err)
			}
			if got != base {
				t.Fatalf("%s: workers=%d produced different CSV bytes", id, w)
			}
		}
	}
}
