package core

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Scaled-down versions of every figure, asserting the paper-shape
// relations rather than absolute values.

func smallDeterminism(t *testing.T, cfg kernel.Config, shield bool) DeterminismResult {
	t.Helper()
	d := DefaultDeterminism(cfg)
	d.Runs = 12
	d.LoopWork = sim.DurationOf(0.3) // shorter loop, same physics
	d.Shield = shield
	d.Seed = 11
	return RunDeterminism(d)
}

func TestDeterminismOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	fig1 := smallDeterminism(t, kernel.StandardLinux24(2, 1.4, true), false)
	fig2 := smallDeterminism(t, kernel.RedHawk14(2, 1.4), true)
	fig3 := smallDeterminism(t, kernel.RedHawk14(2, 1.4), false)
	fig4 := smallDeterminism(t, kernel.StandardLinux24(2, 1.4, false), false)

	j1, j2, j3, j4 := fig1.Report.JitterPercent(), fig2.Report.JitterPercent(),
		fig3.Report.JitterPercent(), fig4.Report.JitterPercent()
	t.Logf("jitter%%: fig1(HT)=%.2f fig2(shield)=%.2f fig3(redhawk)=%.2f fig4(stock)=%.2f", j1, j2, j3, j4)

	// The paper's headline orderings.
	if !(j2 < j3 && j2 < j4 && j2 < j1) {
		t.Errorf("shielded CPU must have the least jitter: %v %v %v %v", j1, j2, j3, j4)
	}
	if j1 <= j4 {
		t.Errorf("hyperthreading must worsen jitter: HT %.2f%% vs no-HT %.2f%%", j1, j4)
	}
	if j2 > 5 {
		t.Errorf("shielded jitter = %.2f%%, want ~2%% (bus contention only)", j2)
	}
	if j4 < 5 {
		t.Errorf("stock unshielded jitter = %.2f%%, want >5%% under interrupt load", j4)
	}
}

func TestRealfeelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	stock := DefaultRealfeel(kernel.StandardLinux24(2, 0.933, false))
	stock.Samples = 40_000
	stock.Seed = 5
	fig5 := RunRealfeel(stock)

	shielded := DefaultRealfeel(kernel.RedHawk14(2, 0.933))
	shielded.Samples = 40_000
	shielded.Shield = true
	shielded.Seed = 5
	fig6 := RunRealfeel(shielded)

	t.Logf("fig5 max=%v fig6 max=%v", fig5.Max, fig6.Max)
	if fig5.Max < 5*sim.Millisecond {
		t.Errorf("stock realfeel max = %v, want multi-ms worst case", fig5.Max)
	}
	if fig6.Max >= sim.Millisecond {
		t.Errorf("shielded realfeel max = %v, want sub-millisecond (the title claim)", fig6.Max)
	}
	if fig6.Max*10 > fig5.Max {
		t.Errorf("shielding should improve worst case by ≫10x: %v vs %v", fig5.Max, fig6.Max)
	}
	// The bulk of samples must be fast in both.
	if f := fig5.Hist.FractionBelow(100 * sim.Microsecond); f < 0.9 {
		t.Errorf("fig5 fraction <0.1ms = %.3f, want >0.9", f)
	}
	if f := fig6.Hist.FractionBelow(100 * sim.Microsecond); f < 0.99 {
		t.Errorf("fig6 fraction <0.1ms = %.3f, want >0.99", f)
	}
}

func TestRCIMUnder30Micros(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := DefaultRCIM(kernel.RedHawk14(2, 2.0))
	cfg.Samples = 40_000
	cfg.Seed = 5
	r := RunRCIM(cfg)
	t.Logf("rcim min=%v avg=%v max=%v", r.Min, r.Mean(), r.Max)
	if r.Max >= 30*sim.Microsecond {
		t.Errorf("RCIM max = %v, the paper's guarantee is <30µs", r.Max)
	}
	if r.Min < 2*sim.Microsecond {
		t.Errorf("RCIM min = %v, implausibly fast", r.Min)
	}
	if r.Samples < 39_000 {
		t.Errorf("only %d samples measured", r.Samples)
	}
}

func TestRCIMBKLAblationHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	base := DefaultRCIM(kernel.RedHawk14(2, 2.0))
	base.Samples = 30_000
	base.Seed = 5
	good := RunRCIM(base)

	forced := base
	forced.ForceBKL = true
	bad := RunRCIM(forced)

	t.Logf("noBKL max=%v, BKL max=%v", good.Max, bad.Max)
	if bad.Max <= good.Max {
		t.Errorf("forcing the BKL must worsen the worst case: %v vs %v", bad.Max, good.Max)
	}
	if bad.Max < 100*sim.Microsecond {
		t.Errorf("BKL-forced max = %v, expected ≫100µs jitter from BKL contention", bad.Max)
	}
}

func TestSpinlockBHFixAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// The collision (a big bottom half landing mid-hold) is a rare
	// event, so sample several seeds and compare the worst case across
	// them, as the paper's 8-hour runs effectively did.
	var fixedWorst, brokenWorst sim.Duration
	for _, seed := range []uint64{1000, 2000, 3000, 4000} {
		cfg := DefaultRealfeel(kernel.RedHawk14(2, 0.933))
		cfg.Samples = 60_000
		cfg.Shield = true
		cfg.Seed = seed
		// Bursty wire traffic makes the bottom halves large enough to
		// expose the §6.2 window within the sample budget.
		cfg.ExtraLoads = []string{LoadScpBurst}
		a := RunRealfeel(cfg)

		broken := cfg
		broken.Kernel.FixSpinlockBH = false
		b := RunRealfeel(broken)
		t.Logf("seed %d: fix on hold=%v max=%v; fix off hold=%v max=%v",
			seed, a.WorstFSHold, a.Max, b.WorstFSHold, b.Max)
		if a.WorstFSHold > fixedWorst {
			fixedWorst = a.WorstFSHold
		}
		if b.WorstFSHold > brokenWorst {
			brokenWorst = b.WorstFSHold
		}
	}
	if brokenWorst < fixedWorst {
		t.Errorf("disabling the §6.2 fix should not shorten worst holds: %v vs %v",
			brokenWorst, fixedWorst)
	}
	if brokenWorst < fixedWorst+fixedWorst/2 {
		t.Errorf("pre-fix holds should stretch well past the cap: %v vs %v",
			brokenWorst, fixedWorst)
	}
}

func TestShieldModesMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := DefaultRealfeel(kernel.RedHawk14(2, 0.933))
	cfg.Samples = 30_000
	cfg.Seed = 9
	none := RunRealfeelModes(cfg, false, false, false, true)
	procs := RunRealfeelModes(cfg, true, false, false, true)
	full := RunRealfeelModes(cfg, true, true, true, true)
	t.Logf("none=%v procs=%v full=%v", none.Max, procs.Max, full.Max)
	// The residual tail (fs lock contention from other CPUs) is common
	// to all modes, so compare with a small tolerance.
	if full.Max > procs.Max+procs.Max/10 {
		t.Errorf("full shielding must not be worse than procs-only: %v vs %v", full.Max, procs.Max)
	}
	if full.Max > none.Max+none.Max/10 {
		t.Errorf("full shielding must not be worse than no shielding: %v vs %v", full.Max, none.Max)
	}
	if full.Mean() > none.Mean() {
		t.Errorf("full shielding must improve the mean: %v vs %v", full.Mean(), none.Mean())
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 11 {
		t.Fatalf("registry has %d experiments, want ≥11", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, ok := ExperimentByID("fig5"); !ok {
		t.Error("ExperimentByID(fig5) failed")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("ExperimentByID(nope) should fail")
	}
	if len(ExperimentIDs()) != len(exps) {
		t.Error("ExperimentIDs length mismatch")
	}
}

func TestSystemBuilder(t *testing.T) {
	s := NewSystem(kernel.RedHawk14(2, 1.0), 1, SystemOptions{
		RTCHz:      1024,
		RCIMPeriod: sim.Millisecond,
		WithGPU:    true,
		Loads:      []string{LoadStressKernel, LoadX11Perf, LoadTTCPNet, LoadScpFlood, LoadDiskNoise},
	})
	if s.RTC == nil || s.RCIM == nil || s.GPU == nil || s.NIC == nil || s.Disk == nil {
		t.Fatal("system missing devices")
	}
	s.Start()
	s.K.Eng.Run(sim.Time(100 * sim.Millisecond))
	if s.RTC.Fires() == 0 || s.RCIM.Fires() == 0 {
		t.Fatal("timers not firing")
	}
}

func TestSystemUnknownLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown load should panic")
		}
	}()
	NewSystem(kernel.RedHawk14(1, 1.0), 1, SystemOptions{Loads: []string{"bogus"}})
}

func TestDeterminismRender(t *testing.T) {
	d := DefaultDeterminism(kernel.RedHawk14(2, 1.4))
	d.Runs = 5
	d.LoopWork = sim.DurationOf(0.05)
	d.Shield = true
	r := RunDeterminism(d)
	out := r.Render()
	for _, want := range []string{"ideal:", "max:", "jitter:", "shielded"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestResponseLegendFormat(t *testing.T) {
	cfg := DefaultRealfeel(kernel.RedHawk14(2, 0.933))
	cfg.Samples = 3000
	cfg.Shield = true
	r := RunRealfeel(cfg)
	legend := r.Legend(PaperThresholdsFig6())
	for _, want := range []string{"measured interrupts", "max latency", "samples <"} {
		if !strings.Contains(legend, want) {
			t.Errorf("legend missing %q:\n%s", want, legend)
		}
	}
}

func TestRunDeterminismReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	run := func() DeterminismResult {
		d := DefaultDeterminism(kernel.RedHawk14(2, 1.4))
		d.Runs = 6
		d.LoopWork = sim.DurationOf(0.1)
		d.Seed = 31
		return RunDeterminism(d)
	}
	a, b := run(), run()
	if a.Report.Ideal != b.Report.Ideal || a.Report.Max != b.Report.Max {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v",
			a.Report.Ideal, a.Report.Max, b.Report.Ideal, b.Report.Max)
	}
}

func TestRunRealfeelReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	run := func() ResponseResult {
		cfg := DefaultRealfeel(kernel.RedHawk14(2, 0.933))
		cfg.Samples = 10_000
		cfg.Shield = true
		cfg.Seed = 31
		return RunRealfeel(cfg)
	}
	a, b := run(), run()
	if a.Max != b.Max || a.Mean() != b.Mean() || a.Samples != b.Samples {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.Max, a.Mean(), b.Max, b.Mean())
	}
}
