package core

import (
	"testing"

	"repro/internal/sim"
)

// TestFigureHashesQueueAB is the figure-level seal on the event-queue
// overhaul: regenerating a figure's CSV with the engine forced onto the
// reference binary heap must produce byte-for-byte the same output as
// the default ladder queue. Combined with the differential fuzz harness
// in internal/sim (op-stream level) and the committed golden hashes
// (cross-session level), this pins that the queue swap moved no result.
//
// It drives the same global knob as `rtsim -queue`, restoring the
// default afterwards; core's tests do not run in parallel within the
// package, so the temporary override cannot leak into another test's
// engine construction.
func TestFigureHashesQueueAB(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// One figure per experiment family: determinism, RCIM, attribution.
	figures := []string{"fig2", "fig7", "attrib-causes"}
	run := func(kind sim.QueueKind) map[string]string {
		// Restore whatever the process default was, not hard-coded
		// ladder: CI's sharded matrix leg runs this suite with the
		// default switched to the sharded engine via ldflags, and the
		// override must not leak past this test.
		prev := sim.DefaultQueueKind()
		sim.SetDefaultQueueKind(kind)
		defer sim.SetDefaultQueueKind(prev)
		out := map[string]string{}
		for _, id := range figures {
			csv, err := FigureCSV(id, goldenScale, goldenSeed, 0)
			if err != nil {
				t.Fatalf("FigureCSV(%s) on %s queue: %v", id, kind, err)
			}
			out[id] = fnv1a(csv)
		}
		return out
	}
	ladder := run(sim.QueueLadder)
	heap := run(sim.QueueHeap)
	for _, id := range figures {
		if ladder[id] != heap[id] {
			t.Errorf("%s: ladder hash %s != heap hash %s — queue implementation leaked into results",
				id, ladder[id], heap[id])
		}
	}
}
