package core

import (
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CaptureTrace runs a short single-replication window of the fig7 setup
// — the RCIM response test on a shielded RedHawk CPU under the full
// load mix — with every tracepoint armed, and returns the trace buffer
// for export (Buffer.WriteChromeTrace for Perfetto, Buffer.WriteText
// for a dmesg-style log). scale multiplies the captured sample count.
func CaptureTrace(scale float64, seed uint64) *trace.Buffer {
	cfg := DefaultRCIM(kernel.RedHawk14(2, 2.0))
	cfg.Samples = scaleSamples(2000, scale)
	cfg.Seed = sim.DeriveSeed(seed, streamTraceCap)

	s := NewSystem(cfg.Kernel, cfg.Seed, SystemOptions{
		RCIMPeriod: cfg.Period,
		WithGPU:    true,
		Loads:      []string{LoadStressKernel, LoadX11Perf, LoadTTCPNet},
	})
	k := s.K
	buf := trace.NewBuffer(1 << 16)
	k.Trace = buf

	samples := 0
	behavior := kernel.BehaviorFunc(func(*kernel.Task) kernel.Action {
		if samples >= cfg.Samples {
			k.Eng.Stop()
			return kernel.Exit()
		}
		act := kernel.Syscall(s.RCIM.WaitCall())
		act.OnComplete = func(sim.Time) { samples++ }
		return act
	})
	mt := k.NewTask("rcim-response", kernel.SchedFIFO, 90, kernel.MaskOf(cfg.ShieldCPU), behavior)
	mt.MemLocked = true

	s.Start()
	if err := s.ShieldCPU(cfg.ShieldCPU); err != nil {
		panic(err)
	}
	if err := k.SetIRQAffinity(s.RCIM.IRQ(), kernel.MaskOf(cfg.ShieldCPU)); err != nil {
		panic(err)
	}
	horizon := sim.Time(cfg.Samples+cfg.Samples/4+1000) * sim.Time(cfg.Period)
	k.Eng.Run(horizon)
	return buf
}
