package core

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// FigureCSV regenerates the plotted data series behind a figure as CSV
// (bin upper edge, count), so the paper's graphs — not just their
// legends — can be rebuilt with any plotting tool. Supported ids:
// fig1..fig7.
func FigureCSV(id string, scale float64, seed uint64) (string, error) {
	switch id {
	case "fig1", "fig2", "fig3", "fig4":
		return determinismCSV(id, scale, seed)
	case "fig5", "fig6":
		return realfeelCSV(id, scale, seed)
	case "fig7":
		return rcimCSV(scale, seed)
	default:
		return "", fmt.Errorf("core: no CSV series for %q (figures only)", id)
	}
}

func histCSV(h *metrics.Histogram, unit string, div float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bin_upper_%s,count\n", unit)
	for _, row := range h.Rows() {
		fmt.Fprintf(&b, "%.3f,%d\n", float64(row.Upper)/div, row.Count)
	}
	return b.String()
}

func determinismCSV(id string, scale float64, seed uint64) (string, error) {
	var cfg DeterminismConfig
	switch id {
	case "fig1":
		cfg = DefaultDeterminism(kernel.StandardLinux24(2, 1.4, true))
	case "fig2":
		cfg = DefaultDeterminism(kernel.RedHawk14(2, 1.4))
		cfg.Shield = true
	case "fig3":
		cfg = DefaultDeterminism(kernel.RedHawk14(2, 1.4))
	case "fig4":
		cfg = DefaultDeterminism(kernel.StandardLinux24(2, 1.4, false))
	}
	cfg.Runs = scaleRuns(cfg.Runs, scale)
	cfg.Seed = seed
	r := RunDeterminism(cfg)
	// The paper plots the variance from ideal in milliseconds.
	return histCSV(r.Hist, "ms", 1e6), nil
}

func realfeelCSV(id string, scale float64, seed uint64) (string, error) {
	var cfg RealfeelConfig
	if id == "fig5" {
		cfg = DefaultRealfeel(kernel.StandardLinux24(2, 0.933, false))
	} else {
		cfg = DefaultRealfeel(kernel.RedHawk14(2, 0.933))
		cfg.Shield = true
	}
	cfg.Samples = scaleSamples(cfg.Samples, scale)
	cfg.Seed = seed
	r := RunRealfeel(cfg)
	return histCSV(r.Hist, "ms", 1e6), nil
}

func rcimCSV(scale float64, seed uint64) (string, error) {
	cfg := DefaultRCIM(kernel.RedHawk14(2, 2.0))
	cfg.Samples = scaleSamples(cfg.Samples, scale)
	cfg.Seed = seed
	r := RunRCIM(cfg)
	// Figure 7 is plotted in microseconds.
	return histCSV(r.Hist, "us", float64(sim.Microsecond)), nil
}
