package core

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// FigureCSV regenerates the plotted data series behind a figure as CSV
// (bin upper edge, count), so the paper's graphs — not just their
// legends — can be rebuilt with any plotting tool. The series comes
// from the same canonical configuration (and seed stream) the
// experiment registry renders, so the CSV always matches the figure.
// Supported ids: fig1..fig7, plus attrib-causes (whose series is the
// per-cause latency decomposition rather than a histogram).
func FigureCSV(id string, scale float64, seed uint64, workers int) (string, error) {
	return FigureCSVSalted(id, scale, seed, workers, 0)
}

// FigureCSVSalted is FigureCSV with a tie-break perturbation salt
// applied to every machine the figure runs
// (kernel.Config.TiebreakSalt). Salt 0 is plain FIFO, i.e. FigureCSV.
// The determinism contract requires the output to be bit-identical for
// every salt; RunPerturbFigures (cmd/reprocheck -perturb) sweeps salts
// and fails on any divergence.
func FigureCSVSalted(id string, scale float64, seed uint64, workers int, salt uint64) (string, error) {
	if cfg, ok := figDeterminismConfig(id, scale, seed, workers); ok {
		cfg.Kernel.TiebreakSalt = salt
		// The paper plots the variance from ideal in milliseconds.
		return histCSV(RunDeterminism(cfg).Hist, "ms", 1e6), nil
	}
	if cfg, ok := figRealfeelConfig(id, scale, seed, workers); ok {
		cfg.Kernel.TiebreakSalt = salt
		return histCSV(RunRealfeel(cfg).Hist, "ms", 1e6), nil
	}
	if id == "fig7" {
		cfg := figRCIMConfig(scale, seed, workers)
		cfg.Kernel.TiebreakSalt = salt
		// Figure 7 is plotted in microseconds.
		return histCSV(RunRCIM(cfg).Hist, "us", float64(sim.Microsecond)), nil
	}
	if id == "attrib-causes" {
		return attribCSV(runAttributionSalted(scale, seed, workers, salt)), nil
	}
	return "", fmt.Errorf("core: no CSV series for %q (figures only)", id)
}

func histCSV(h *metrics.Histogram, unit string, div float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bin_upper_%s,count\n", unit)
	for _, row := range h.Rows() {
		fmt.Fprintf(&b, "%.3f,%d\n", float64(row.Upper)/div, row.Count)
	}
	return b.String()
}
