package core

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Time-travel divergence bisection. Two replicas of one scenario — the
// FIFO baseline and a tie-break-perturbed mutant — are recorded with
// periodic auto-snapshots; when their dispatch streams diverge, the
// bisector binary-searches the checkpointed prefix digests down to the
// last agreeing checkpoint, restores BOTH replicas there, and drives
// them forward in lockstep (sim.Engine.NextEventInfo) to the exact
// first divergent event. A divergence is a tie-break race: a behaviour
// that depends on the arbitrary dispatch order of simultaneous events
// rather than on the model.

// BisectReplica is one snapshotable scenario instance the bisector can
// record, checkpoint and rewind.
type BisectReplica interface {
	// Engine is the replica's event engine (dispatch stream + clock).
	Engine() *sim.Engine
	// Snapshot serialises the replica's full state.
	Snapshot() ([]byte, error)
	// Restore overwrites this replica's state from a snapshot image
	// taken from an identically-constructed replica.
	Restore(img []byte) error
}

// machineReplica adapts a kernel machine to the bisector.
type machineReplica struct{ k *kernel.Kernel }

func (r machineReplica) Engine() *sim.Engine       { return r.k.Eng }
func (r machineReplica) Snapshot() ([]byte, error) { return r.k.Snapshot() }
func (r machineReplica) Restore(img []byte) error  { return r.k.RestoreImage(img) }

// MachineReplica wraps a started kernel machine for RunBisect.
func MachineReplica(k *kernel.Kernel) BisectReplica { return machineReplica{k} }

// stepID identifies one dispatched event: the (At, seq) dispatch
// identity plus its registered kind name.
type stepID struct {
	At   sim.Time
	Seq  uint64
	Kind string
}

func (s stepID) String() string {
	return fmt.Sprintf("%s seq=%d @ %v", s.Kind, s.Seq, s.At)
}

// bisectRecording is one replica's recorded run: the dispatch stream,
// the periodic auto-snapshots, and the rolling prefix digest at every
// checkpoint (digest of all steps before it).
type bisectRecording struct {
	steps   []stepID
	ckpts   map[int][]byte   // step index -> image taken before that step
	ckptAt  map[int]sim.Time // step index -> replica clock at the image
	digests map[int]uint64   // step index -> FNV-1a of steps[0:index]
	marks   []int            // checkpoint step indices, ascending
}

// record drives the replica event by event to the horizon, snapshotting
// every `every` dispatches.
func record(r BisectReplica, horizon sim.Time, every int) (bisectRecording, error) {
	rec := bisectRecording{
		ckpts:   make(map[int][]byte),
		ckptAt:  make(map[int]sim.Time),
		digests: make(map[int]uint64),
	}
	h := fnv.New64a()
	eng := r.Engine()
	for i := 0; ; i++ {
		at, seq, kind, ok := eng.NextEventInfo()
		if !ok || at > horizon {
			break
		}
		if i%every == 0 {
			img, err := r.Snapshot()
			if err != nil {
				return rec, fmt.Errorf("auto-snapshot at step %d (%v): %w", i, eng.Now(), err)
			}
			rec.ckpts[i] = img
			rec.ckptAt[i] = eng.Now()
			rec.digests[i] = h.Sum64()
			rec.marks = append(rec.marks, i)
		}
		rec.steps = append(rec.steps, stepID{at, seq, kind})
		fmt.Fprintf(h, "%d|%d|%s;", at, seq, kind)
		eng.Step()
	}
	return rec, nil
}

// BisectResult is the verdict of one bisection.
type BisectResult struct {
	// Diverged reports whether the two dispatch streams differ at all.
	Diverged bool
	// Steps is the baseline recording's dispatch count.
	Steps int
	// Step is the index of the first divergent dispatch; At its instant.
	Step int
	At   sim.Time
	// Baseline and Mutant describe the competing events at the
	// divergence ("kind seq @ time").
	Baseline, Mutant string
	// CheckpointStep/CheckpointAt locate the auto-snapshot the replay
	// rewound to; Replayed is how many events the lockstep replay
	// re-dispatched from there to reach the divergence.
	CheckpointStep int
	CheckpointAt   sim.Time
	Replayed       int
}

func (r BisectResult) String() string {
	if !r.Diverged {
		return fmt.Sprintf("no divergence across %d dispatches", r.Steps)
	}
	return fmt.Sprintf("first divergent event at step %d, t=%v: baseline [%s] vs mutant [%s] (rewound to checkpoint at step %d t=%v, replayed %d events)",
		r.Step, r.At, r.Baseline, r.Mutant, r.CheckpointStep, r.CheckpointAt, r.Replayed)
}

// RunBisect records build(0) (the FIFO baseline) and build(salt) (the
// perturbed mutant) to the horizon with an auto-snapshot every `every`
// dispatches, and — on divergence — bisects the checkpoint digests,
// restores fresh replicas at the last agreeing checkpoint and replays
// them in lockstep to the first divergent event.
func RunBisect(build func(salt uint64) (BisectReplica, error), salt uint64, horizon sim.Time, every int) (BisectResult, error) {
	if every < 1 {
		every = 64
	}
	base, err := build(0)
	if err != nil {
		return BisectResult{}, err
	}
	mut, err := build(salt)
	if err != nil {
		return BisectResult{}, err
	}
	recA, err := record(base, horizon, every)
	if err != nil {
		return BisectResult{}, fmt.Errorf("baseline: %w", err)
	}
	recB, err := record(mut, horizon, every)
	if err != nil {
		return BisectResult{}, fmt.Errorf("mutant (salt %#x): %w", salt, err)
	}

	// Quick verdict from the recorded streams: any divergence at all?
	n := len(recA.steps)
	if len(recB.steps) < n {
		n = len(recB.steps)
	}
	diverged := len(recA.steps) != len(recB.steps)
	for i := 0; i < n && !diverged; i++ {
		if recA.steps[i] != recB.steps[i] {
			diverged = true
		}
	}
	if !diverged {
		return BisectResult{Diverged: false, Steps: len(recA.steps)}, nil
	}

	// Binary-search the shared checkpoint marks for the last one whose
	// prefix digests agree. Prefix digests are monotone: equal up to the
	// divergence, unequal after, so the boundary is well defined.
	marks := recA.marks
	if len(recB.marks) < len(marks) {
		marks = recB.marks
	}
	lo, hi := 0, len(marks)-1 // invariant: digests agree at marks[lo]
	if recA.digests[marks[0]] != recB.digests[marks[0]] {
		return BisectResult{}, fmt.Errorf("bisect: streams differ before the first checkpoint (step 0) — scenarios are not identically constructed")
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if recA.digests[marks[mid]] == recB.digests[marks[mid]] {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	ckpt := marks[lo]

	// Time-travel: fresh replicas, rewound to the agreeing checkpoint,
	// stepped in lockstep until their next-event identities part ways.
	ra, err := build(0)
	if err != nil {
		return BisectResult{}, err
	}
	if err := ra.Restore(recA.ckpts[ckpt]); err != nil {
		return BisectResult{}, fmt.Errorf("baseline rewind to step %d: %w", ckpt, err)
	}
	rb, err := build(salt)
	if err != nil {
		return BisectResult{}, err
	}
	if err := rb.Restore(recB.ckpts[ckpt]); err != nil {
		return BisectResult{}, fmt.Errorf("mutant rewind to step %d: %w", ckpt, err)
	}
	for i := ckpt; ; i++ {
		atA, seqA, kindA, okA := ra.Engine().NextEventInfo()
		atB, seqB, kindB, okB := rb.Engine().NextEventInfo()
		doneA := !okA || atA > horizon
		doneB := !okB || atB > horizon
		if doneA || doneB {
			if doneA != doneB {
				side, other := stepID{atB, seqB, kindB}, "baseline"
				if doneB {
					side, other = stepID{atA, seqA, kindA}, "mutant"
				}
				return BisectResult{
					Diverged: true, Steps: len(recA.steps), Step: i, At: side.At,
					Baseline: "(end of run)", Mutant: side.String(),
					CheckpointStep: ckpt, CheckpointAt: recA.ckptAt[ckpt], Replayed: i - ckpt,
				}, fmt.Errorf("bisect: %s ran out of events at step %d while the other side still has [%s]", other, i, side)
			}
			return BisectResult{}, fmt.Errorf("bisect: replay from checkpoint %d reached the horizon without re-finding the divergence", ckpt)
		}
		if atA != atB || seqA != seqB || kindA != kindB {
			return BisectResult{
				Diverged:       true,
				Steps:          len(recA.steps),
				Step:           i,
				At:             atA,
				Baseline:       stepID{atA, seqA, kindA}.String(),
				Mutant:         stepID{atB, seqB, kindB}.String(),
				CheckpointStep: ckpt,
				CheckpointAt:   recA.ckptAt[ckpt],
				Replayed:       i - ckpt,
			}, nil
		}
		ra.Engine().Step()
		rb.Engine().Step()
	}
}

// --- the injected tie-break race fixture ---

// The fixture is two independent periodic tick chains, A and B, on a
// bare engine. In the racy variant B's first tick lands at exactly the
// same instant as one of A's ticks — an unpinned tie whose dispatch
// order a perturbation salt can flip; both handlers write a shared
// `last` word, so the race also leaks into state. In the clean variant
// B is offset by one nanosecond and the chains can never collide.
var (
	evFxA = sim.RegisterEventKind("core.fx-a")
	evFxB = sim.RegisterEventKind("core.fx-b")
)

const (
	fxTieAt   = 20 * sim.Millisecond // A ticks every 1ms, so 20ms is A's 20th tick
	fxGapA    = sim.Millisecond
	fxGapB    = 1009 * sim.Microsecond // co-prime with A's gap: no later collisions
	fxSection = "core.fx"
)

type fxReplica struct {
	eng  *sim.Engine
	tie  bool
	last uint64 // id of the most recently dispatched handler
	step uint64
}

func newFxReplica(tie bool, seed, salt uint64) *fxReplica {
	eng := sim.NewEngine(seed)
	if salt != 0 {
		eng.PerturbTiebreaks(salt) // queue still empty: legal
	}
	f := &fxReplica{eng: eng, tie: tie}
	f.arm(1, sim.Time(fxGapA))
	bStart := sim.Time(fxTieAt)
	if !tie {
		bStart++ // one nanosecond off: no tie, ever
	}
	f.arm(2, bStart)
	return f
}

func (f *fxReplica) arm(id uint64, at sim.Time) {
	kind := evFxA
	if id == 2 {
		kind = evFxB
	}
	f.eng.ScheduleTagged(at, kind.Tag(id, 0, 0), func() { f.fire(id) })
}

func (f *fxReplica) fire(id uint64) {
	f.step++
	f.last = id
	gap := fxGapA
	if id == 2 {
		gap = fxGapB
	}
	f.arm(id, f.eng.Now().Add(gap))
}

func (f *fxReplica) Engine() *sim.Engine { return f.eng }

func (f *fxReplica) Snapshot() ([]byte, error) {
	w := snapshot.NewWriter()
	if err := f.eng.SnapshotTo(w); err != nil {
		return nil, err
	}
	w.Begin(fxSection)
	w.Bool(1, f.tie)
	w.U64(2, f.last)
	w.U64(3, f.step)
	w.End()
	return w.Finish(), nil
}

func (f *fxReplica) Restore(img []byte) error {
	r, err := snapshot.OpenReader(img)
	if err != nil {
		return err
	}
	evs, err := f.eng.RestoreState(r)
	if err != nil {
		return err
	}
	r.Section(fxSection)
	tie := r.Bool(1)
	f.last = r.U64(2)
	f.step = r.U64(3)
	r.EndSection()
	if err := r.Err(); err != nil {
		return err
	}
	if !r.Exhausted() {
		return fmt.Errorf("core: fixture image has trailing sections")
	}
	if tie != f.tie {
		return fmt.Errorf("core: fixture image tie=%v restored into tie=%v replica", tie, f.tie)
	}
	for _, ev := range evs {
		var id uint64
		switch ev.Kind {
		case "core.fx-a":
			id = 1
		case "core.fx-b":
			id = 2
		default:
			return fmt.Errorf("core: fixture image has unknown event kind %q", ev.Kind)
		}
		handler := id
		f.eng.RestoreEvent(ev, func() { f.fire(handler) })
	}
	return nil
}

func init() {
	snapshot.RegisterState(fxReplica{}, snapshot.Manifest{
		"eng":  "codec", // the sim.engine section of the fixture image
		"tie":  "codec", // validated construction flag
		"last": "codec",
		"step": "codec",
	})
}

// BisectDemo is one line of the reprocheck -bisect demonstration.
type BisectDemo struct {
	Name   string
	Pass   bool
	Detail string
}

// RunBisectDemo exercises the bisector against the loud-failure
// fixtures: the clean chains must show no divergence under any salt,
// and the injected tie must be pinpointed — first divergent event at
// exactly the collision instant, one side dispatching core.fx-a and the
// other core.fx-b. A third pass records the shielded reference machine
// against itself (same construction, no perturbation) and must find
// nothing, which holds the kernel-level checkpoint/record path to the
// same standard.
func RunBisectDemo(seed uint64) []BisectDemo {
	const horizon = sim.Time(30 * sim.Millisecond)
	const every = 8
	var out []BisectDemo

	fx := func(tie bool) func(salt uint64) (BisectReplica, error) {
		return func(salt uint64) (BisectReplica, error) {
			return newFxReplica(tie, sim.DeriveSeed(seed, streamBisect), salt), nil
		}
	}

	// A salt is only useful if it actually flips the tie; try a few.
	var raceRes BisectResult
	var raceErr error
	var raceSalt uint64
	for i := uint64(1); i <= 16; i++ {
		salt := sim.DeriveSeed(seed, 0xb15ec7+i)
		if salt == 0 {
			continue
		}
		raceRes, raceErr = RunBisect(fx(true), salt, horizon, every)
		raceSalt = salt
		if raceErr != nil || raceRes.Diverged {
			break
		}
	}
	racePinned := raceErr == nil && raceRes.Diverged &&
		raceRes.At == sim.Time(fxTieAt) &&
		((strings.HasPrefix(raceRes.Baseline, "core.fx-a") && strings.HasPrefix(raceRes.Mutant, "core.fx-b")) ||
			(strings.HasPrefix(raceRes.Baseline, "core.fx-b") && strings.HasPrefix(raceRes.Mutant, "core.fx-a")))
	detail := fmt.Sprintf("salt %#x: %v", raceSalt, raceRes)
	if raceErr != nil {
		detail = raceErr.Error()
	}
	out = append(out, BisectDemo{
		Name:   "bisect-race",
		Pass:   racePinned,
		Detail: detail,
	})

	cleanRes, cleanErr := RunBisect(fx(false), sim.DeriveSeed(seed, 0xc1ea4), horizon, every)
	detail = cleanRes.String()
	if cleanErr != nil {
		detail = cleanErr.Error()
	}
	out = append(out, BisectDemo{
		Name:   "bisect-clean",
		Pass:   cleanErr == nil && !cleanRes.Diverged,
		Detail: detail,
	})

	machRes, machErr := RunBisect(func(salt uint64) (BisectReplica, error) {
		s, err := BootReference(RefShielded, seed, "", 0, salt)
		if err != nil {
			return nil, err
		}
		return MachineReplica(s.K), nil
	}, 0, sim.Time(refBootHorizon)+horizon, 256)
	detail = machRes.String()
	if machErr != nil {
		detail = machErr.Error()
	}
	out = append(out, BisectDemo{
		Name:   "bisect-machine",
		Pass:   machErr == nil && !machRes.Diverged,
		Detail: detail,
	})
	return out
}
