package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/runner"
	"repro/internal/sim"
)

// TestCanonicalKernelConfigErasesNonSemanticKnobs: two configs that
// differ only in knobs proven not to affect results (queue kind, shard
// count, tie-break salt, event pool, invariant sampler) must canonicalise
// identically — that is the soundness condition for sharing one cache
// entry — while any semantic field must survive canonicalisation.
func TestCanonicalKernelConfigErasesNonSemanticKnobs(t *testing.T) {
	base := kernel.StandardLinux24(2, 2.0, false)
	perturbed := base
	perturbed.EventQueue = sim.QueueHeap
	perturbed.EngineShards = 4
	perturbed.TiebreakSalt = 0x9e3779b97f4a7c15
	perturbed.EventPool = sim.NewEventPool()
	perturbed.InvariantPeriod = sim.Millisecond

	sprint := func(cfg kernel.Config) string { return fmt.Sprintf("%+v", cfg) }
	a, b := CanonicalKernelConfig(base), CanonicalKernelConfig(perturbed)
	if as, bs := sprint(a), sprint(b); as != bs {
		t.Fatalf("non-semantic knobs leaked into canonical config:\n a=%s\n b=%s", as, bs)
	}

	semantic := base
	semantic.LocalTimerHz = 1000
	if sprint(CanonicalKernelConfig(semantic)) == sprint(CanonicalKernelConfig(base)) {
		t.Fatal("semantic field (LocalTimerHz) erased by canonicalisation")
	}
}

// TestScenarioKeys pins the content-address algebra: same request →
// same key; any semantic change (figure, scale, seed, window) → a new
// key; the continuation image key shares across windows but splits on
// seed and machine.
func TestScenarioKeys(t *testing.T) {
	mk := func(fig string, scale float64, seed uint64, runFor int) Scenario {
		s, err := ResolveScenario(fig, scale, seed, runFor)
		if err != nil {
			t.Fatalf("ResolveScenario(%s, %v, %d, %d): %v", fig, scale, seed, runFor, err)
		}
		return s
	}

	a := mk("fig2", 0.05, 7, 0)
	if again := mk("fig2", 0.05, 7, 0); again.Key() != a.Key() {
		t.Fatal("same request produced different keys")
	}
	// The key addresses the *resolved* computation, not the raw request:
	// two scales that floor to the same run/sample counts are the same
	// computation and deliberately share one cache entry.
	if mk("fig2", 0.051, 7, 0).Key() != a.Key() {
		t.Fatal("scales resolving to the same configuration should share a key")
	}
	seen := map[string]string{a.Key(): a.Canonical()}
	for _, s := range []Scenario{
		mk("fig1", 0.05, 7, 0),
		mk("fig2", 2.0, 7, 0),
		mk("fig2", 0.05, 8, 0),
		mk("fig5", 0.02, 7, 0),
		mk("fig7", 0.02, 7, 0),
		mk("attrib-causes", 0.02, 7, 0),
		mk(ScenarioRefStock, 0, 7, 10),
		mk(ScenarioRefStock, 0, 7, 20),
		mk(ScenarioRefStock, 0, 8, 10),
		mk(ScenarioRefShielded, 0, 7, 10),
	} {
		if prev, dup := seen[s.Key()]; dup {
			t.Fatalf("key collision between scenarios:\n %s\n %s", prev, s.Canonical())
		}
		seen[s.Key()] = s.Canonical()
	}

	// run_for_ms=0 resolves to the default window — same key as asking
	// for the default explicitly.
	if mk(ScenarioRefStock, 0, 7, 0).Key() != mk(ScenarioRefStock, 0, 7, defaultContinuationMS).Key() {
		t.Fatal("default continuation window keys differently from explicit default")
	}

	// Boot images shard by (machine, seed) but are shared across windows.
	img := func(s Scenario) string {
		k, err := s.ImageKey()
		if err != nil {
			t.Fatalf("ImageKey: %v", err)
		}
		return k
	}
	i10, i20 := img(mk(ScenarioRefStock, 0, 7, 10)), img(mk(ScenarioRefStock, 0, 7, 20))
	if i10 != i20 {
		t.Fatal("continuation windows over the same boot got different image keys")
	}
	if img(mk(ScenarioRefStock, 0, 8, 10)) == i10 {
		t.Fatal("different seeds share a boot image key")
	}
	if img(mk(ScenarioRefShielded, 0, 7, 10)) == i10 {
		t.Fatal("stock and shielded machines share a boot image key")
	}
	if _, err := a.ImageKey(); err == nil {
		t.Fatal("figure scenario handed out a boot image key")
	}
}

// TestResolveScenarioValidation: malformed requests are refused with
// errors, never silently normalised into a runnable scenario.
func TestResolveScenarioValidation(t *testing.T) {
	for _, tc := range []struct {
		fig    string
		scale  float64
		runFor int
	}{
		{"fig99", 0.05, 0},          // unknown figure
		{"fig2", 0, 0},              // scale required for figures
		{"fig2", -1, 0},             // negative scale
		{"fig2", 20_000, 0},         // absurd scale
		{"fig2", 0.05, 10},          // run_for on a figure
		{ScenarioRefStock, 0.5, 10}, // scale on a continuation
		{ScenarioRefStock, 0, -1},   // negative window
	} {
		if _, err := ResolveScenario(tc.fig, tc.scale, 7, tc.runFor); err == nil {
			t.Errorf("ResolveScenario(%q, %v, 7, %d) accepted a malformed request", tc.fig, tc.scale, tc.runFor)
		}
	}
}

// TestRunScenarioMatchesFigureCSV: the service entry point returns
// exactly the figure's canonical CSV bytes — the bytes whose FNV-1a
// hash the reprocheck goldens pin — for any worker count.
func TestRunScenarioMatchesFigureCSV(t *testing.T) {
	s, err := ResolveScenario("fig1", 0.02, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FigureCSV("fig1", 0.02, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := RunScenario(s, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if string(got) != want {
			t.Fatalf("workers=%d: RunScenario diverged from FigureCSV", workers)
		}
	}
}

// TestContinuationColdWarmIdentical is the warm-start soundness pin:
// restoring the post-boot image and running the window must yield bytes
// identical to the cold boot-and-run, for both reference machines, and
// the shared event pool must not perturb either path.
func TestContinuationColdWarmIdentical(t *testing.T) {
	pool := sim.NewEventPool()
	for _, fig := range []string{ScenarioRefStock, ScenarioRefShielded} {
		s, err := ResolveScenario(fig, 0, 7, 15)
		if err != nil {
			t.Fatal(err)
		}
		cold, img, err := RunContinuationCold(s, nil)
		if err != nil {
			t.Fatalf("%s cold: %v", fig, err)
		}
		warm, err := RunContinuationWarm(s, img, pool)
		if err != nil {
			t.Fatalf("%s warm: %v", fig, err)
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("%s: warm-started bytes diverge from cold run:\ncold: %s\nwarm: %s", fig, cold, warm)
		}
		// The transcript must also match RunScenario's cold path.
		again, err := RunScenario(s, 1)
		if err != nil {
			t.Fatalf("%s RunScenario: %v", fig, err)
		}
		if !bytes.Equal(cold, again) {
			t.Fatalf("%s: RunScenario diverges from RunContinuationCold", fig)
		}
	}
}

// TestCostVirtualMS: the admission cost model is positive for every
// served scenario, scales with the request, and composes with the
// runner budget check into the typed refusal.
func TestCostVirtualMS(t *testing.T) {
	for _, fig := range ServedScenarios() {
		scale, runFor := 0.05, 0
		if fig == ScenarioRefStock || fig == ScenarioRefShielded {
			scale, runFor = 0, 10
		}
		s, err := ResolveScenario(fig, scale, 7, runFor)
		if err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		if c := s.CostVirtualMS(); c <= 0 {
			t.Errorf("%s: non-positive cost %d", fig, c)
		}
	}

	small, _ := ResolveScenario(ScenarioRefStock, 0, 7, 10)
	big, _ := ResolveScenario(ScenarioRefStock, 0, 7, 500)
	if small.CostVirtualMS() >= big.CostVirtualMS() {
		t.Fatal("cost model does not grow with the continuation window")
	}
	if got := small.CostVirtualMS(); got != int64((refBootHorizon+10*sim.Millisecond)/sim.Millisecond) {
		t.Fatalf("continuation cost = %d, want boot+window", got)
	}

	err := runner.CheckBudget(big.CostVirtualMS(), small.CostVirtualMS(), "virtual-ms")
	var be *runner.BudgetError
	if !errors.As(err, &be) || be.Unit != "virtual-ms" {
		t.Fatalf("over-budget scenario did not yield typed *BudgetError (got %v)", err)
	}
}
