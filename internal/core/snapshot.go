package core

import (
	"bytes"
	"fmt"
	"hash/fnv"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// evDrip identifies the background broadcast-frame drip's events; A0 is
// the drip component's id.
var evDrip = sim.RegisterEventKind("core.drip")

// broadcastDrip delivers the light background broadcast traffic
// (SystemOptions.BroadcastTraffic) as a registered, snapshot-restorable
// component instead of a self-rescheduling closure.
type broadcastDrip struct {
	s   *System
	rng *sim.RNG
	id  uint64
}

func newBroadcastDrip(s *System) *broadcastDrip {
	k := s.K
	d := &broadcastDrip{s: s, rng: k.Eng.RNG().Fork()}
	d.id = k.RegisterComponent(d)
	k.Eng.AfterTagged(d.rng.Uniform(0, 50*sim.Millisecond), evDrip.Tag(d.id, 0, 0), d.fire)
	return d
}

func (d *broadcastDrip) fire() {
	d.s.NIC.Receive(200 + d.rng.Intn(400))
	d.s.K.Eng.AfterTagged(d.rng.Uniform(20*sim.Millisecond, 120*sim.Millisecond),
		evDrip.Tag(d.id, 0, 0), d.fire)
}

// SnapName implements kernel.SnapComponent.
func (d *broadcastDrip) SnapName() string { return "core.drip" }

// Snapshot implements kernel.SnapComponent.
func (d *broadcastDrip) Snapshot(w *snapshot.Writer) error {
	w.Begin(d.SnapName())
	w.U64(1, d.rng.State())
	w.End()
	return nil
}

// Restore implements kernel.SnapComponent.
func (d *broadcastDrip) Restore(r *snapshot.Reader, rc *kernel.RestoreContext) error {
	r.Section(d.SnapName())
	d.rng.SetState(r.U64(1))
	r.EndSection()
	return r.Err()
}

// detLoop is the §5.1 determinism measurement behavior: the mlocked
// SCHED_FIFO sine loop timed with the TSC. All measurement state crosses
// snapshots in the behavior words, so a determinism pass can checkpoint
// mid-run and resume to the identical elapsed-time series.
type detLoop struct {
	k    *kernel.Kernel
	work sim.Duration
	runs int

	started sim.Time
	done    int
	elapsed []sim.Duration
}

func (b *detLoop) Next(t *kernel.Task) kernel.Action {
	if b.done >= b.runs {
		return kernel.Exit()
	}
	b.started = b.k.Now() // first TSC read
	return kernel.Compute(b.work)
}

// ActionDone is the second TSC read, at the same completion instant the
// former OnComplete closure ran.
func (b *detLoop) ActionDone(t *kernel.Task, kind kernel.ActionKind, now sim.Time) {
	if kind != kernel.ActCompute {
		return
	}
	b.elapsed = append(b.elapsed, now.Sub(b.started))
	b.done++
}

func (b *detLoop) BehaviorName() string { return "core.det-loop" }

func (b *detLoop) BehaviorState() []uint64 {
	words := make([]uint64, 0, 2+len(b.elapsed))
	words = append(words, uint64(b.done), uint64(b.started))
	for _, d := range b.elapsed {
		words = append(words, uint64(d))
	}
	return words
}

func (b *detLoop) SetBehaviorState(words []uint64) {
	b.done = int(words[0])
	b.started = sim.Time(words[1])
	b.elapsed = b.elapsed[:0]
	for _, w := range words[2:] {
		b.elapsed = append(b.elapsed, sim.Duration(w))
	}
}

func init() {
	kernel.RegisterEventRebuild("core.drip", func(rc *kernel.RestoreContext, a0, a1, a2 uint64) (func(), error) {
		comp := rc.K.Component(a0)
		d, ok := comp.(*broadcastDrip)
		if !ok {
			return nil, fmt.Errorf("core: event core.drip names component %d, which is a %T", a0, comp)
		}
		return d.fire, nil
	})
	snapshot.RegisterState(broadcastDrip{}, snapshot.Manifest{
		"s":   "skip: construction back-pointer",
		"rng": "codec",
		"id":  "skip: registration-order identity",
	})
	snapshot.RegisterState(detLoop{}, snapshot.Manifest{
		"k":       "skip: construction back-pointer",
		"work":    "skip: construction-fixed measurement parameter",
		"runs":    "skip: construction-fixed measurement parameter",
		"started": "codec", // behavior word 1
		"done":    "codec", // behavior word 0
		"elapsed": "codec", // behavior words 2..n
	})
}

// ReferenceMachine selects one of the snapshot reference machines:
// "stock" (kernel.org 2.4.18) or "shielded" (RedHawk 1.4 with the last
// CPU fully shielded). Both boot under the full load mix.
type ReferenceMachine string

// The snapshot reference machines.
const (
	RefStock    ReferenceMachine = "stock"
	RefShielded ReferenceMachine = "shielded"
)

// refBootHorizon is how much virtual time the reference machines run
// before the post-boot snapshot: long enough for every load to be in
// flight (transfers, writeback, timer cascades), short enough for the
// claim to be cheap.
const refBootHorizon = 40 * sim.Millisecond

// refKernelConfig returns the kernel configuration behind a reference
// machine — the canonical-config unit the simd service hashes snapshot
// image keys from.
func refKernelConfig(ref ReferenceMachine) (kernel.Config, error) {
	switch ref {
	case RefStock:
		return kernel.StandardLinux24(2, 2.0, false), nil
	case RefShielded:
		return kernel.RedHawk14(2, 2.0), nil
	default:
		return kernel.Config{}, fmt.Errorf("core: unknown reference machine %q", ref)
	}
}

// BootReference builds a reference machine under the full load mix and
// runs it to the post-boot instant. queue/shards pick the engine
// implementation ("" = process default); salt installs a tie-break
// perturbation at construction.
func BootReference(ref ReferenceMachine, seed uint64, queue sim.QueueKind, shards int, salt uint64) (*System, error) {
	return buildReference(ref, seed, queue, shards, salt, nil, true)
}

// BuildReference is BootReference without the boot run: the machine is
// constructed, started and shielded exactly like BootReference's, but
// its clock still sits at 0 — the shape the restore protocol's
// reconstruct-then-overwrite contract needs. Warm starts restore a
// post-boot image into it instead of replaying the boot horizon.
func BuildReference(ref ReferenceMachine, seed uint64, pool *sim.EventPool) (*System, error) {
	return buildReference(ref, seed, "", 0, 0, pool, false)
}

// buildReference constructs (and optionally boots) a reference machine.
// pool, when non-nil, supplies the engine's event-node free list — the
// per-worker pool discipline of runner.MapSeededPooled carried into the
// simd service's long-lived workers.
func buildReference(ref ReferenceMachine, seed uint64, queue sim.QueueKind, shards int, salt uint64, pool *sim.EventPool, boot bool) (*System, error) {
	cfg, err := refKernelConfig(ref)
	if err != nil {
		return nil, err
	}
	cfg.EventQueue = queue
	cfg.EngineShards = shards
	cfg.TiebreakSalt = salt
	cfg.EventPool = pool
	s := NewSystem(cfg, sim.DeriveSeed(seed, streamSnapshot), SystemOptions{
		RTCHz:            2048,
		RCIMPeriod:       sim.Millisecond,
		WithGPU:          true,
		Loads:            []string{LoadStressKernel, LoadScpFlood, LoadDiskNoise, LoadX11Perf, LoadTTCPNet},
		BroadcastTraffic: true,
	})
	s.Start()
	if ref == RefShielded {
		if err := s.ShieldCPU(cfg.NumCPUs() - 1); err != nil {
			return nil, err
		}
	}
	if boot {
		s.K.Eng.Run(sim.Time(refBootHorizon))
	}
	return s, nil
}

// BootImage is BootReference plus the snapshot: the post-boot image of
// the reference machine. This is the shared image warm-started sweeps
// and the two-stage CI soak restore from.
func BootImage(ref ReferenceMachine, seed uint64, queue sim.QueueKind, shards int) ([]byte, error) {
	s, err := BootReference(ref, seed, queue, shards, 0)
	if err != nil {
		return nil, err
	}
	return s.K.Snapshot()
}

// ImageHash is the FNV-1a fingerprint of a snapshot image, the unit the
// golden snapshot claims compare.
func ImageHash(img []byte) string {
	h := fnv.New64a()
	h.Write(img)
	return fmt.Sprintf("%016x", h.Sum64())
}

// resumeHorizon is how far past the checkpoint the resume-equivalence
// probes run both sides.
const resumeHorizon = 30 * sim.Millisecond

// resumeEquivalent checks the tentpole oracle on a reference machine
// under one engine mode: run to T, snapshot, continue to T2 and snapshot
// again (the uninterrupted result); then rebuild a fresh machine,
// restore the T image into it, continue it to T2 and snapshot. The two
// T2 images must be byte-identical.
func resumeEquivalent(ref ReferenceMachine, seed uint64, queue sim.QueueKind, shards int) (string, error) {
	a, err := BootReference(ref, seed, queue, shards, 0)
	if err != nil {
		return "", err
	}
	imgT, err := a.K.Snapshot()
	if err != nil {
		return "", fmt.Errorf("snapshot at T: %w", err)
	}
	a.K.Eng.Run(a.K.Now().Add(resumeHorizon))
	imgA, err := a.K.Snapshot()
	if err != nil {
		return "", fmt.Errorf("snapshot at T2: %w", err)
	}

	b, err := BootReference(ref, seed, queue, shards, 0)
	if err != nil {
		return "", err
	}
	if err := b.K.RestoreImage(imgT); err != nil {
		return "", fmt.Errorf("restore: %w", err)
	}
	b.K.Eng.Run(b.K.Now().Add(resumeHorizon))
	imgB, err := b.K.Snapshot()
	if err != nil {
		return "", fmt.Errorf("snapshot after resume: %w", err)
	}
	if !bytes.Equal(imgA, imgB) {
		return "", fmt.Errorf("resumed run diverged: uninterrupted %s vs resumed %s",
			ImageHash(imgA), ImageHash(imgB))
	}
	return ImageHash(imgA), nil
}

// warmContinuationHash restores the shared post-boot image with a warm
// tie-break salt and runs the continuation window; the returned hash
// fingerprints the continued machine. The same (image, salt) pair always
// continues to the identical bytes — that is the warm-start
// reproducibility contract — while distinct salts explore different
// same-instant dispatch orders (the point of warm-started placement
// sweeps). The continued machine must pass every state invariant.
func warmContinuationHash(ref ReferenceMachine, seed uint64, img []byte, salt uint64) (string, error) {
	s, err := BootReference(ref, seed, "", 0, 0)
	if err != nil {
		return "", err
	}
	if err := s.K.RestoreImageWarm(img, salt); err != nil {
		return "", fmt.Errorf("warm restore (salt %#x): %w", salt, err)
	}
	s.K.Eng.Run(s.K.Now().Add(resumeHorizon))
	if err := s.K.CheckInvariants(); err != nil {
		return "", fmt.Errorf("warm continuation (salt %#x): %w", salt, err)
	}
	img2, err := s.K.Snapshot()
	if err != nil {
		return "", err
	}
	return ImageHash(img2), nil
}

// SnapshotChecks runs the snapshot claim set: resume equivalence per
// engine mode, golden image-hash stability across engine modes, and
// warm-start salt invariance. Appended to the reprocheck claim list.
func SnapshotChecks(seed uint64) []CheckResult {
	var out []CheckResult
	add := func(id, claim string, pass bool, detail string, args ...interface{}) {
		out = append(out, CheckResult{ID: id, Claim: claim, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}

	type mode struct {
		name   string
		queue  sim.QueueKind
		shards int
	}
	modes := []mode{
		{"serial/ladder", sim.QueueLadder, 0},
		{"serial/heap", sim.QueueHeap, 0},
		{"sharded/2", sim.QueueSharded, 2},
		{"sharded/4", sim.QueueSharded, 4},
	}

	for _, ref := range []ReferenceMachine{RefStock, RefShielded} {
		// Resume equivalence, per engine mode — and since every mode must
		// realise the identical dispatch order, the T2 hashes must also
		// agree across modes.
		hashes := make([]string, 0, len(modes))
		var firstErr error
		for _, m := range modes {
			h, err := resumeEquivalent(ref, seed, m.queue, m.shards)
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", m.name, err)
			}
			hashes = append(hashes, h)
		}
		same := firstErr == nil
		for _, h := range hashes[1:] {
			if h != hashes[0] {
				same = false
			}
		}
		detail := fmt.Sprintf("T2 hash %s across %d engine modes", hashes[0], len(modes))
		if firstErr != nil {
			detail = firstErr.Error()
		}
		add("snap-resume-"+string(ref),
			fmt.Sprintf("snapshot/restore resumes the %s reference machine byte-identically in every engine mode", ref),
			same, "%s", detail)

		// Golden post-boot image hash: identical for every engine mode
		// (the image is canonical — queue internals never serialise).
		imgs := make([]string, 0, len(modes))
		var imgErr error
		var sharedImg []byte
		for _, m := range modes {
			img, err := BootImage(ref, seed, m.queue, m.shards)
			if err != nil && imgErr == nil {
				imgErr = fmt.Errorf("%s: %w", m.name, err)
			}
			if sharedImg == nil {
				sharedImg = img
			}
			imgs = append(imgs, ImageHash(img))
		}
		stable := imgErr == nil
		for _, h := range imgs[1:] {
			if h != imgs[0] {
				stable = false
			}
		}
		detail = fmt.Sprintf("post-boot image %s across %d engine modes", imgs[0], len(modes))
		if imgErr != nil {
			detail = imgErr.Error()
		}
		add("snap-golden-"+string(ref),
			fmt.Sprintf("the %s reference machine's post-boot snapshot hash is engine-mode invariant", ref),
			stable, "%s", detail)

		// Warm start: restoring the shared image is reproducible — the
		// same (image, salt) pair continues to identical bytes, salt 0
		// continues exactly like the uninterrupted run, and every salted
		// continuation is a valid machine (invariants hold). Distinct
		// salts are allowed — meant — to realise different same-instant
		// dispatch orders; that schedule diversity without re-booting is
		// what warm-started placement sweeps buy.
		if firstErr == nil && imgErr == nil {
			const salt = 0x9e3779b97f4a7c15
			h0, err0 := warmContinuationHash(ref, seed, sharedImg, 0)
			h1a, err1 := warmContinuationHash(ref, seed, sharedImg, salt)
			h1b, err2 := warmContinuationHash(ref, seed, sharedImg, salt)
			pass := err0 == nil && err1 == nil && err2 == nil &&
				h0 == hashes[0] && h1a == h1b
			detail := fmt.Sprintf("salt 0 -> %s (= uninterrupted), salt %#x -> %s twice", h0, uint64(salt), h1a)
			for _, err := range []error{err0, err1, err2} {
				if err != nil {
					detail = err.Error()
					break
				}
			}
			add("snap-warm-"+string(ref),
				fmt.Sprintf("warm-starting the %s post-boot image is reproducible per salt and exact at salt 0", ref),
				pass, "%s", detail)
		}
	}
	return out
}
