package core

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/trace/attrib"
)

// RCIMConfig parameterises the §6.3 interrupt response test: the RCIM
// card's periodic timer interrupts a shielded CPU; the test blocks in an
// ioctl (no BKL, multithreaded driver) and timestamps its wakeup by
// reading the card's memory-mapped count register. The load is the
// stress-kernel suite plus x11perf on the console and ttcp over a
// 10BaseT Ethernet.
type RCIMConfig struct {
	Kernel kernel.Config
	// Period is the RCIM periodic cycle.
	Period sim.Duration
	// Samples to measure (paper: 60,000,000 over ~8 hours).
	Samples int
	// Shield runs the measurement on a fully shielded CPU (the paper's
	// configuration). Disable for ablations.
	Shield    bool
	ShieldCPU int
	Seed      uint64
	// Replications, when > 1, shards Samples across independent
	// replications merged in index order; see
	// RealfeelConfig.Replications for the determinism contract.
	Replications int
	// Workers caps the replication worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// ForceBKL makes the RCIM driver claim it needs the BKL, the §6.3
	// ablation showing why the per-driver flag matters.
	ForceBKL bool
	// Attribute arms the typed tracepoint buffer and decomposes every
	// response sample's latency into causes; see
	// RealfeelConfig.Attribute for the determinism guarantee.
	Attribute bool
}

// DefaultRCIM fills the paper's parameters.
func DefaultRCIM(cfg kernel.Config) RCIMConfig {
	return RCIMConfig{
		Kernel:    cfg,
		Period:    sim.Millisecond,
		Samples:   400_000,
		Shield:    true,
		ShieldCPU: cfg.NumCPUs() - 1,
		Seed:      1,
	}
}

// RunRCIM executes the RCIM interrupt response test. Latency is the
// count-register reading at the moment the woken test task is back in
// user space — time since the interrupt fired, measured by the device
// itself, exactly as the paper does.
//
// With cfg.Replications > 1 the sample budget is sharded across
// independent replications executed on the runner worker pool and the
// results merged deterministically.
func RunRCIM(cfg RCIMConfig) ResponseResult {
	if cfg.Period <= 0 {
		cfg.Period = sim.Millisecond
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 400_000
	}
	if n := replicationCount(cfg.Replications, cfg.Samples); n > 1 {
		parts := runner.MapSeededPooled(cfg.Workers, cfg.Seed, n, func(i int, seed uint64, pool *sim.EventPool) ResponseResult {
			sub := cfg
			sub.Replications = 1
			sub.Samples = shardSize(cfg.Samples, n, i)
			sub.Seed = seed
			sub.Kernel.EventPool = pool
			return RunRCIM(sub)
		})
		return mergeResponses(parts)
	}
	s := NewSystem(cfg.Kernel, cfg.Seed, SystemOptions{
		RCIMPeriod: cfg.Period,
		WithGPU:    true,
		Loads:      []string{LoadStressKernel, LoadX11Perf, LoadTTCPNet},
	})
	k := s.K
	if cfg.Attribute {
		k.Trace = trace.NewBuffer(attribTraceCapacity)
	}

	affinity := kernel.CPUMask(0)
	if cfg.Shield {
		affinity = kernel.MaskOf(cfg.ShieldCPU)
	}

	// 1 µs bins out to 10 ms: Figure 7 is a thin-bar histogram in
	// microseconds.
	hist := metrics.NewHistogram(sim.Microsecond, 10000)
	samples := 0
	var sum metrics.ResponseSummary
	var mt *kernel.Task
	var attr *attrib.Attributor

	behavior := kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		if samples >= cfg.Samples {
			k.Eng.Stop()
			return kernel.Exit()
		}
		call := s.RCIM.WaitCall()
		if cfg.ForceBKL {
			call.DriverNoBKL = false
		}
		act := kernel.Syscall(call)
		act.OnComplete = func(now sim.Time) {
			// Immediately read the mapped count register.
			lat := s.RCIM.CountElapsed(now)
			hist.Add(lat)
			sum.Add(lat)
			samples++
			if attr != nil {
				// The count register dates the interrupt itself, so the
				// sample window opens at the device's raise instant.
				attr.Sample(now.Add(-lat), now, mt.CPU())
			}
		}
		return act
	})
	mt = k.NewTask("rcim-response", kernel.SchedFIFO, 90, affinity, behavior)
	mt.MemLocked = true
	if cfg.Attribute {
		attr = attrib.New(k.Trace, mt.PID)
	}

	s.Start()
	if cfg.Shield {
		if err := s.ShieldCPU(cfg.ShieldCPU); err != nil {
			panic(err)
		}
		if err := k.SetIRQAffinity(s.RCIM.IRQ(), kernel.MaskOf(cfg.ShieldCPU)); err != nil {
			panic(err)
		}
	}
	horizon := sim.Time(cfg.Samples+cfg.Samples/4+1000) * sim.Time(cfg.Period)
	k.Eng.Run(horizon)

	name := fmt.Sprintf("%s RCIM response", cfg.Kernel.Name)
	if cfg.Shield {
		name += " (shielded CPU)"
	}
	if cfg.ForceBKL {
		name += " [BKL forced]"
	}
	res := ResponseResult{
		Name:            name,
		Hist:            hist,
		ResponseSummary: sum,
	}
	if attr != nil {
		res.Attribution = attr.Summary()
	}
	return res
}

// PaperThresholdsFig7 are the cumulative rows under Figure 7.
func PaperThresholdsFig7() []sim.Duration {
	return []sim.Duration{10 * sim.Microsecond, 20 * sim.Microsecond, 30 * sim.Microsecond, 50 * sim.Microsecond, 100 * sim.Microsecond}
}
