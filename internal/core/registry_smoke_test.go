package core

import (
	"strings"
	"testing"
)

// TestEveryExperimentRuns executes each registry entry at tiny scale and
// sanity-checks its rendered output, so a broken Run closure can't hide
// until someone invokes rtsim.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	markers := map[string][]string{
		"fig1":                    {"ideal:", "jitter:"},
		"fig2":                    {"ideal:", "jitter:", "shielded"},
		"fig3":                    {"ideal:", "jitter:"},
		"fig4":                    {"ideal:", "jitter:"},
		"fig5":                    {"max latency", "samples <"},
		"fig6":                    {"max latency", "shielded"},
		"fig7":                    {"max latency", "RCIM"},
		"attrib-causes":           {"worst-case breakdown", "irq-off", "sched", "trace records lost"},
		"ablate-spinlock-bh":      {"fix ON", "fix OFF", "worst fs-lock hold"},
		"future-rtc-api":          {"multithreaded driver", "max"},
		"ablate-bkl-ioctl":        {"BKL", "max latency"},
		"ablate-shield-modes":     {"no shielding", "procs+irqs+ltmr"},
		"ablate-patches-noshield": {"max latency"},
		"ablate-posix-timers":     {"achieved", "Hz"},
		"ablate-hyperthreading":   {"with HT", "without HT"},
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out := e.Run(0.05, 3, 0)
			if len(out) < 20 {
				t.Fatalf("output suspiciously short:\n%s", out)
			}
			for _, m := range markers[e.ID] {
				if !strings.Contains(out, m) {
					t.Errorf("output missing %q:\n%s", m, out)
				}
			}
			if _, ok := markers[e.ID]; !ok {
				t.Errorf("experiment %s has no smoke markers — add them", e.ID)
			}
		})
	}
}
