package core

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestShieldTraceInvariants proves the shield semantics from the trace
// itself: once the shield transition records appear (plus a settling
// grace for migrations already in flight), the shielded CPU's record
// stream contains no user-task switches — only the measurement task and
// the CPU's own ksoftirqd — and no interrupt whose affinity excludes
// the CPU fires there (in the fig7 setup, only the RCIM line may).
func TestShieldTraceInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := DefaultRCIM(kernel.RedHawk14(2, 2.0))
	cfg.Samples = 2000
	cfg.Seed = 99
	shieldCPU := cfg.ShieldCPU

	s := NewSystem(cfg.Kernel, cfg.Seed, SystemOptions{
		RCIMPeriod: cfg.Period,
		WithGPU:    true,
		Loads:      []string{LoadStressKernel, LoadX11Perf, LoadTTCPNet},
	})
	k := s.K
	buf := trace.NewBuffer(1 << 16)
	k.Trace = buf

	samples := 0
	behavior := kernel.BehaviorFunc(func(*kernel.Task) kernel.Action {
		if samples >= cfg.Samples {
			k.Eng.Stop()
			return kernel.Exit()
		}
		act := kernel.Syscall(s.RCIM.WaitCall())
		act.OnComplete = func(sim.Time) { samples++ }
		return act
	})
	mt := k.NewTask("rcim-response", kernel.SchedFIFO, 90, kernel.MaskOf(shieldCPU), behavior)
	mt.MemLocked = true

	s.Start()
	if err := s.ShieldCPU(shieldCPU); err != nil {
		t.Fatal(err)
	}
	if err := k.SetIRQAffinity(s.RCIM.IRQ(), kernel.MaskOf(shieldCPU)); err != nil {
		t.Fatal(err)
	}
	horizon := sim.Time(cfg.Samples+cfg.Samples/4+1000) * sim.Time(cfg.Period)
	k.Eng.Run(horizon)

	recs := buf.Records()
	if len(recs) == 0 {
		t.Fatal("no trace records captured")
	}
	// The shield transition is itself traced; the invariant holds from
	// the last transition plus a grace period for in-flight activity
	// (tasks already dispatched there must migrate off first).
	var shieldedAt sim.Time = -1
	for _, r := range recs {
		if r.Kind == trace.KindShield && r.At > shieldedAt {
			shieldedAt = r.At
		}
	}
	if shieldedAt < 0 {
		t.Fatal("no shield transition records in the trace")
	}
	settleAfter := shieldedAt.Add(5 * sim.Millisecond)

	allowedTasks := map[string]bool{
		"rcim-response":                        true,
		fmt.Sprintf("ksoftirqd/%d", shieldCPU): true,
	}
	switches, irqs := 0, 0
	for _, r := range recs {
		if int(r.CPU) != shieldCPU || r.At < settleAfter {
			continue
		}
		switch r.Kind {
		case trace.KindSwitch:
			switches++
			if name := buf.Name(trace.NameID(r.B)); !allowedTasks[name] {
				t.Fatalf("user task %q switched in on shielded cpu%d at %v", name, shieldCPU, r.At)
			}
		case trace.KindIRQEnter:
			irqs++
			if name := buf.Name(trace.NameID(r.B)); name != "rcim" {
				t.Fatalf("interrupt %q fired on shielded cpu%d at %v (affinity excludes it)", name, shieldCPU, r.At)
			}
		}
	}
	if switches == 0 || irqs == 0 {
		t.Fatalf("invariant scan saw %d switches and %d irq entries on the shielded CPU; trace not capturing", switches, irqs)
	}
}
