package core

import (
	"testing"

	"repro/internal/sim"
)

// The headline property of the whole perturbation design: every figure
// is invariant under permuted same-instant tie-breaks, because each
// schedule site whose simultaneity order matters is pinned
// (sim.Engine.SchedulePinned) and everything else genuinely commutes.
// A failure here means someone added an order-sensitive collision
// without declaring its arbitration.
func TestRunPerturbFiguresInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	for _, fp := range RunPerturbFigures(0.02, 7, 0, 2) {
		if !fp.Report.OK() {
			t.Errorf("%s: %s", fp.ID, fp.Report)
		}
		if len(fp.Report.Runs) != 2 {
			t.Errorf("%s: %d perturbed runs, want 2", fp.ID, len(fp.Report.Runs))
		}
	}
}

// FigureCSVSalted at salt 0 must be FigureCSV, bit for bit — the
// baseline of every perturbation report is the published series.
func TestFigureCSVSaltedZeroIsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	plain, err := FigureCSV("fig7", 0.02, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	salted, err := FigureCSVSalted("fig7", 0.02, 7, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain != salted {
		t.Fatal("FigureCSVSalted(salt=0) differs from FigureCSV")
	}
}

func TestFigureCSVSaltedUnknownID(t *testing.T) {
	if _, err := FigureCSVSalted("fig99", 1, 1, 1, 3); err == nil {
		t.Fatal("unknown figure id did not error")
	}
}

// RunChecksOpts with the invariant sampler armed must reach the same
// verdicts: the sampler is read-only and draws no randomness.
func TestRunChecksWithInvariantSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	opts := CheckOptions{InvariantPeriod: sim.Millisecond}
	results := RunChecksOpts(0.05, 1, 0, opts)
	if len(results) < 9 {
		t.Fatalf("only %d checks", len(results))
	}
}
