package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/kernel"
	"repro/internal/latency"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace/attrib"
)

// CheckResult is one verified claim from the paper.
type CheckResult struct {
	ID     string
	Claim  string
	Detail string
	Pass   bool
}

// CheckOptions selects the verification instrumentation RunChecksOpts
// arms on the machines it builds. The zero value runs plain checks.
type CheckOptions struct {
	// InvariantPeriod, when non-zero, arms the periodic machine-state
	// invariant sampler (kernel.Config.InvariantPeriod) on every
	// machine: a corrupt machine state panics at the first sampling
	// instant after it appears instead of surfacing as a wrong verdict.
	InvariantPeriod sim.Duration

	// Bounds, when non-nil, is a static worst-case bounds report from
	// `simlint -bounds` and enables the latbound-envelope claims: the
	// dynamic attributor's worst observed episode per cause must fit
	// under the static envelope composed for the same machine. The
	// caller loads the report; this package never reads files.
	Bounds *latency.Report
}

// RunChecks executes a conformance pass over the paper's quantitative
// claims at the given scale and seed. Each check runs scaled-down
// experiments and asserts the claim's *shape* (orderings and bounds), the
// same assertions the integration tests make, packaged for the CLI.
//
// The underlying experiment runs are independent replications, so they
// fan out across up to workers goroutines (<= 0 means GOMAXPROCS); the
// assertions are then evaluated in a fixed order, so the report is
// identical for any worker count.
func RunChecks(scale float64, seed uint64, workers int) []CheckResult {
	return RunChecksOpts(scale, seed, workers, CheckOptions{})
}

// RunChecksOpts is RunChecks with verification instrumentation.
func RunChecksOpts(scale float64, seed uint64, workers int, opts CheckOptions) []CheckResult {
	// --- phase 1: run every experiment the claims need, in parallel ---
	var jobs []func()
	det := func(cfg kernel.Config, shield bool) func() float64 {
		cfg.InvariantPeriod = opts.InvariantPeriod
		var out float64
		run := func() {
			d := DefaultDeterminism(cfg)
			d.Runs = scaleRuns(18, scale)
			d.LoopWork = sim.DurationOf(0.3)
			d.Shield = shield
			d.Seed = sim.DeriveSeed(seed, streamChecksDet)
			// The placement pool is the inner parallelism; the checks
			// already fan out here, one worker per experiment.
			d.Workers = 1
			out = RunDeterminism(d).Report.JitterPercent()
		}
		jobs = append(jobs, run)
		return func() float64 { return out }
	}
	rf := func(cfg kernel.Config, shield bool, mutate func(*RealfeelConfig)) func() ResponseResult {
		cfg.InvariantPeriod = opts.InvariantPeriod
		var out ResponseResult
		jobs = append(jobs, func() {
			r := DefaultRealfeel(cfg)
			r.Samples = scaleSamples(60_000, scale)
			r.Shield = shield
			r.Seed = sim.DeriveSeed(seed, streamChecksResp)
			if mutate != nil {
				mutate(&r)
			}
			out = RunRealfeel(r)
		})
		return func() ResponseResult { return out }
	}
	rc := func(forceBKL bool) func() ResponseResult {
		var out ResponseResult
		jobs = append(jobs, func() {
			kc := kernel.RedHawk14(2, 2.0)
			kc.InvariantPeriod = opts.InvariantPeriod
			c := DefaultRCIM(kc)
			c.Samples = scaleSamples(60_000, scale)
			c.Seed = sim.DeriveSeed(seed, streamChecksResp)
			c.ForceBKL = forceBKL
			out = RunRCIM(c)
		})
		return func() ResponseResult { return out }
	}

	att := func(kc kernel.Config, shield bool) func() attrib.Summary {
		kc.InvariantPeriod = opts.InvariantPeriod
		var out ResponseResult
		jobs = append(jobs, func() {
			c := DefaultRCIM(kc)
			c.Samples = scaleSamples(30_000, scale)
			c.Seed = sim.DeriveSeed(seed, streamChecksResp)
			c.Shield = shield
			c.Attribute = true
			out = RunRCIM(c)
		})
		return func() attrib.Summary { return out.Attribution }
	}

	j1 := det(kernel.StandardLinux24(2, 1.4, true), false)
	j2 := det(kernel.RedHawk14(2, 1.4), true)
	j3 := det(kernel.RedHawk14(2, 1.4), false)
	j4 := det(kernel.StandardLinux24(2, 1.4, false), false)
	fig5 := rf(kernel.StandardLinux24(2, 0.933, false), false, nil)
	fig6 := rf(kernel.RedHawk14(2, 0.933), true, nil)
	patched := rf(kernel.PatchedLinux24(2, 0.933), false, nil)
	future := rf(kernel.RedHawk14(2, 0.933), true, func(r *RealfeelConfig) { r.FixedAPI = true })
	fig7 := rc(false)
	bkl := rc(true)
	stockCfg := kernel.StandardLinux24(2, 2.0, false)
	shieldCfg := kernel.RedHawk14(2, 2.0)
	attStock := att(stockCfg, false)
	attShield := att(shieldCfg, true)

	runner.Do(workers, jobs...)

	// --- phase 2: evaluate the claims in paper order ---
	var out []CheckResult
	add := func(id, claim string, pass bool, detail string, args ...interface{}) {
		out = append(out, CheckResult{
			ID: id, Claim: claim, Pass: pass, Detail: fmt.Sprintf(detail, args...),
		})
	}

	// --- determinism ordering (§5, Figures 1-4) ---
	add("det-shield", "a shielded CPU has by far the least execution jitter (Fig 2)",
		j2() < j1() && j2() < j3() && j2() < j4() && j2() < 5,
		"shielded %.2f%% vs HT %.2f%% / redhawk %.2f%% / stock %.2f%%", j2(), j1(), j3(), j4())
	add("det-ht", "hyperthreading adds execution jitter (Fig 1 vs Fig 4)",
		j1() > j4(), "HT %.2f%% vs no-HT %.2f%%", j1(), j4())
	add("det-load", "interrupt load costs ≳10 percent on an unshielded CPU (Fig 3-4)",
		j3() > 5 && j4() > 5, "redhawk %.2f%%, stock %.2f%%", j3(), j4())

	// --- interrupt response (§6, Figures 5-7) ---
	add("resp-stock", "stock 2.4 worst-case response is tens of milliseconds (Fig 5)",
		fig5().Max > 5*sim.Millisecond, "max %v", fig5().Max)
	add("resp-shield", "a shielded RedHawk CPU guarantees sub-millisecond response (Fig 6, the title claim)",
		fig6().Max < sim.Millisecond, "max %v", fig6().Max)
	add("resp-patches", "patches without shielding land near a millisecond (Clark Williams [5])",
		patched().Max < 10*sim.Millisecond && patched().Max > fig6().Max,
		"patched max %v vs shielded %v", patched().Max, fig6().Max)
	add("resp-rcim", "RCIM on a shielded CPU stays under 30µs worst case (Fig 7)",
		fig7().Max < 30*sim.Microsecond, "min %v avg %v max %v", fig7().Min, fig7().Mean(), fig7().Max)
	add("resp-bkl", "routing the same ioctl through the BKL wrecks the guarantee (§6.3)",
		bkl().Max > 3*fig7().Max, "BKL max %v vs flag max %v", bkl().Max, fig7().Max)

	// --- mechanism checks ---
	add("resp-future", "a multithreaded RTC driver API removes the residual fs-lock tail (§7)",
		future().Max < fig6().Max && future().Max < 50*sim.Microsecond,
		"fixed API max %v vs read(2) max %v", future().Max, fig6().Max)

	// --- trace-derived latency attribution ---
	sumCauses := func(b [attrib.NumCauses]sim.Duration) sim.Duration {
		var s sim.Duration
		for _, d := range b {
			s += d
		}
		return s
	}
	removable := func(s attrib.Summary) sim.Duration {
		return s.Total[attrib.CauseSched] + s.Total[attrib.CauseSoftirq] + s.Total[attrib.CauseLock]
	}
	as, bs := attStock(), attShield()
	add("attrib-partition", "latency attribution partitions every sample exactly (no unexplained time)",
		sumCauses(as.Total) == as.TotalLatency && sumCauses(bs.Total) == bs.TotalLatency &&
			sumCauses(as.WorstBreakdown) == as.MaxLatency && sumCauses(bs.WorstBreakdown) == bs.MaxLatency &&
			as.LostRecords == 0 && bs.LostRecords == 0,
		"stock %v over %d samples, shielded %v over %d samples, lost %d/%d",
		as.TotalLatency, as.Samples, bs.TotalLatency, bs.Samples, as.LostRecords, bs.LostRecords)
	add("attrib-shield", "shielding removes the competing causes (sched, softirq, locks), not the handler itself",
		removable(bs) < removable(as)/10 &&
			bs.WorstBreakdown[attrib.CauseSched]+bs.WorstBreakdown[attrib.CauseSoftirq]+bs.WorstBreakdown[attrib.CauseLock] < bs.MaxLatency/2,
		"removable delay: stock %v vs shielded %v; shielded worst %v", removable(as), removable(bs), bs.MaxLatency)

	// --- static latency envelope vs dynamic attribution (latbound) ---
	// Cross-check simlint's abstract-interpretation bounds against the
	// dynamic attributor: per covered cause, the worst single episode any
	// sample observed must fit under the static bound composed for the
	// same machine. An unbounded static term (stock holds the BKL across
	// an uncapped filesystem call, by audited exception) passes trivially
	// — the static layer makes no claim there, and says so.
	if opts.Bounds != nil {
		boundStr := func(v float64) string {
			if math.IsInf(v, 1) {
				return "unbounded"
			}
			return sim.Duration(v).String()
		}
		causes := []attrib.Cause{attrib.CauseIRQOff, attrib.CauseSoftirq, attrib.CauseLock}
		envelope := func(id, claim string, cfg kernel.Config, s attrib.Summary) latency.Envelope {
			env, missing := latency.Compose(opts.Bounds, latency.FromConfig(&cfg))
			if len(missing) > 0 {
				add(id, claim, false, "bounds report lacks a finite bound for required regions: %s", strings.Join(missing, ", "))
				return env
			}
			pass := true
			parts := make([]string, 0, len(causes))
			for _, c := range causes {
				bound, _ := env.CauseBound(c.String())
				if float64(s.WorstEpisode[c]) > bound {
					pass = false
				}
				parts = append(parts, fmt.Sprintf("%s %v<=%s", c, s.WorstEpisode[c], boundStr(bound)))
			}
			add(id, claim, pass, "%s", strings.Join(parts, ", "))
			return env
		}
		envelope("latbound-stock", "stock worst episodes fit the static per-cause bounds (latbound envelope)",
			stockCfg, as)
		env := envelope("latbound-shield", "shielded worst episodes fit the static per-cause bounds (latbound envelope)",
			shieldCfg, bs)
		add("latbound-resp", "the shielded worst response fits the static shielded-path bound (the checked <30µs analogue)",
			float64(bs.MaxLatency) <= env.ShieldedResponseNS,
			"observed %v <= static %s", bs.MaxLatency, boundStr(env.ShieldedResponseNS))
	}

	// --- checkpoint/restore (snapshot) claims ---
	// Resume equivalence per engine mode, engine-mode-invariant golden
	// image hashes, warm-start reproducibility. Cheap (tens of
	// milliseconds of virtual time per machine), and always on: the
	// snapshot subsystem underwrites warm-started sweeps and the
	// divergence bisector, so a broken codec should fail the same pass
	// that certifies the figures. The claims pin their own engine modes,
	// so the verdicts are identical under any -queue/-engine selection.
	out = append(out, SnapshotChecks(seed)...)

	return out
}
