package core

import (
	"fmt"
	"hash/fnv"

	"repro/internal/runner"
)

// PerturbFigureIDs are the scenarios the schedule-perturbation sweep
// re-runs: every figure the golden determinism-regression tests pin.
var PerturbFigureIDs = []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "attrib-causes"}

// FigurePerturbation is the perturbation verdict for one figure.
type FigurePerturbation struct {
	ID     string
	Report runner.PerturbReport
}

// RunPerturbFigures re-runs every figure under n seeded tie-break
// perturbations (plus the FIFO baseline) and reports, per figure,
// whether any permutation of same-instant event dispatch changed the
// figure's data series. A divergence is a tie-break race somewhere in
// the model: a result that silently depends on the FIFO order of
// simultaneous events rather than on the model itself.
//
// The fingerprint is the FNV-1a hash of the figure's CSV series — the
// same series the golden hashes in internal/core/testdata pin, so "no
// divergence" means the published figures are invariant, not merely
// some summary statistic. Parallelism fans out across the perturbed
// runs (each run is single-threaded internally), so workers never
// affects the verdict, only wall-clock time.
func RunPerturbFigures(scale float64, seed uint64, workers, n int) []FigurePerturbation {
	out := make([]FigurePerturbation, len(PerturbFigureIDs))
	for i, id := range PerturbFigureIDs {
		id := id
		out[i] = FigurePerturbation{
			ID: id,
			Report: runner.Perturb(workers, seed, n, func(salt uint64) string {
				csv, err := FigureCSVSalted(id, scale, seed, 1, salt)
				if err != nil {
					// The id list is static and valid; an error here is a
					// programming bug, not an input problem.
					panic(fmt.Sprintf("core: perturb %s: %v", id, err))
				}
				h := fnv.New64a()
				h.Write([]byte(csv))
				return fmt.Sprintf("%016x", h.Sum64())
			}),
		}
	}
	return out
}
