// Package core builds the paper's test systems and runs its experiments:
// the execution determinism test (§5.1, Figures 1–4), the realfeel
// interrupt response test (§6.1, Figures 5–6) and the RCIM interrupt
// response test (§6.3, Figure 7), plus the ablations DESIGN.md lists.
package core

import (
	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// System is one assembled machine: a kernel plus the devices the
// experiments and workloads need.
type System struct {
	K    *kernel.Kernel
	NIC  *dev.NIC
	Disk *dev.Disk
	GPU  *dev.GPU
	RTC  *dev.RTC
	RCIM *dev.RCIM

	workloads []workload.Workload
}

// SystemOptions selects the devices and background load.
type SystemOptions struct {
	// RTCHz creates the RTC at this rate when > 0.
	RTCHz int
	// RCIMPeriod creates the RCIM timer when > 0.
	RCIMPeriod sim.Duration
	// WithGPU adds the graphics controller.
	WithGPU bool
	// Loads are installed before the kernel starts.
	Loads []string
	// BroadcastTraffic delivers the light background broadcast frames
	// the paper notes the system kept receiving during §6.1 runs.
	BroadcastTraffic bool
	// StressResidencyCap, when non-zero, overrides the stress-kernel's
	// heaviest-residency knob (the residency-cap sensitivity sweep sets
	// it). A config field rather than a global so that systems built
	// concurrently by the replication runner cannot observe each other's
	// overrides.
	StressResidencyCap sim.Duration
}

// Load names accepted by SystemOptions.Loads.
const (
	LoadScpFlood     = "scp-flood"
	LoadDiskNoise    = "disknoise"
	LoadStressKernel = "stress-kernel"
	LoadX11Perf      = "x11perf"
	LoadTTCPNet      = "ttcp-net"
	// LoadScpBurst is the scp flood with heavy interrupt mitigation:
	// one receive interrupt delivers a whole rx ring of frames, so each
	// bottom-half run is large — the §6.2 pre-fix pathology trigger.
	LoadScpBurst = "scp-burst"
)

// NewSystem assembles a machine. The kernel is not started; callers add
// their measurement tasks first, then call Start.
func NewSystem(cfg kernel.Config, seed uint64, opts SystemOptions) *System {
	k := kernel.New(cfg, seed)
	s := &System{K: k}
	s.NIC = dev.NewNIC(k, "eth0")
	s.Disk = dev.NewDisk(k, "sda")
	if opts.WithGPU {
		s.GPU = dev.NewGPU(k, "nv0")
	}
	if opts.RTCHz > 0 {
		s.RTC = dev.NewRTC(k, opts.RTCHz)
	}
	if opts.RCIMPeriod > 0 {
		s.RCIM = dev.NewRCIM(k, opts.RCIMPeriod)
	}
	for _, name := range opts.Loads {
		switch name {
		case LoadScpFlood:
			s.workloads = append(s.workloads, workload.NewScpFlood(s.NIC, s.Disk))
		case LoadScpBurst:
			scp := workload.NewScpFlood(s.NIC, s.Disk)
			scp.BatchBytes = 64 << 10
			s.workloads = append(s.workloads, scp)
		case LoadDiskNoise:
			s.workloads = append(s.workloads, workload.NewDiskNoise(s.Disk))
		case LoadStressKernel:
			sk := workload.NewStressKernel(s.Disk)
			if opts.StressResidencyCap > 0 {
				sk.ResidencyCap = opts.StressResidencyCap
			}
			s.workloads = append(s.workloads, sk)
		case LoadX11Perf:
			if s.GPU == nil {
				s.GPU = dev.NewGPU(k, "nv0")
			}
			s.workloads = append(s.workloads, workload.NewX11Perf(s.GPU))
		case LoadTTCPNet:
			s.workloads = append(s.workloads, workload.NewTTCPNet(s.NIC))
		default:
			panic("core: unknown load " + name)
		}
	}
	if opts.BroadcastTraffic {
		newBroadcastDrip(s)
	}
	return s
}

// Start installs the workloads, starts the devices and the kernel.
func (s *System) Start() {
	for _, w := range s.workloads {
		w.Start(s.K)
	}
	if s.RTC != nil {
		s.RTC.Start()
	}
	if s.RCIM != nil {
		s.RCIM.Start()
	}
	s.K.Start()
}

// ShieldCPU applies the paper's full shielding recipe to one CPU:
// processes, interrupts and local timer (§3), via the /proc interface so
// the same code path a system administrator uses is exercised.
func (s *System) ShieldCPU(cpu int) error {
	mask := kernel.MaskOf(cpu)
	return s.K.FS.Write("/proc/shield/all", mask.String())
}
