package core

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace/attrib"
)

// attribTraceCapacity sizes the per-CPU trace rings behind an attributed
// run. Between two response samples (one RCIM period) the stress loads
// emit at most a few hundred records per CPU, so 32k slots keeps
// LostRecords at zero while bounding memory per replication shard.
const attribTraceCapacity = 1 << 15

// AttributionResult pairs the stock and shielded runs of the
// "causes of delay" figure: the same RCIM response measurement, once on
// an unshielded kernel.org 2.4 machine and once on a shielded RedHawk
// CPU, each with the trace-derived latency decomposition attached.
type AttributionResult struct {
	Stock    ResponseResult
	Shielded ResponseResult
}

// figAttribConfigs returns the canonical configurations behind the
// attribution figure. One source of truth for the experiment registry,
// the CSV exporter and the golden determinism-regression tests, like
// figRCIMConfig for fig7.
func figAttribConfigs(scale float64, seed uint64, workers int) (stock, shielded RCIMConfig) {
	base := sim.DeriveSeed(seed, streamAttrib)

	stock = DefaultRCIM(kernel.StandardLinux24(2, 2.0, false))
	stock.Shield = false
	stock.Samples = scaleSamples(100_000, scale)
	stock.Seed = sim.DeriveSeed(base, 1)
	stock.Replications = figureReplications
	stock.Workers = workers
	stock.Attribute = true

	shielded = DefaultRCIM(kernel.RedHawk14(2, 2.0))
	shielded.Samples = scaleSamples(100_000, scale)
	shielded.Seed = sim.DeriveSeed(base, 2)
	shielded.Replications = figureReplications
	shielded.Workers = workers
	shielded.Attribute = true
	return stock, shielded
}

// RunAttribution executes the attribution figure: the RCIM response test
// on a stock unshielded machine and on a shielded RedHawk CPU, with
// every sample's latency charged to a cause from the trace.
func RunAttribution(scale float64, seed uint64, workers int) AttributionResult {
	return runAttributionSalted(scale, seed, workers, 0)
}

func runAttributionSalted(scale float64, seed uint64, workers int, salt uint64) AttributionResult {
	stockCfg, shieldCfg := figAttribConfigs(scale, seed, workers)
	stockCfg.Kernel.TiebreakSalt = salt
	shieldCfg.Kernel.TiebreakSalt = salt
	var res AttributionResult
	runner.Do(workers,
		func() { res.Stock = RunRCIM(stockCfg) },
		func() { res.Shielded = RunRCIM(shieldCfg) },
	)
	return res
}

// Render prints the paper's "causes of delay" story as a table: the
// worst-case response on each machine, decomposed into what the CPU was
// actually doing while the sample waited. Shielding does not make the
// handler faster — it removes the competing causes (softirq, scheduling,
// lock spin) until only delivery and the task's own run time remain.
func (r AttributionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "causes of delay: worst-case RCIM response, decomposed from the trace\n\n")
	fmt.Fprintf(&b, "  A: %s\n  B: %s\n\n", r.Stock.Name, r.Shielded.Name)

	row := func(label, a, bcol string) {
		fmt.Fprintf(&b, "  %-22s %-20s %s\n", label, a, bcol)
	}
	row("", "A (stock)", "B (shielded)")
	as, bs := r.Stock.Attribution, r.Shielded.Attribution
	row("samples", fmt.Sprint(as.Samples), fmt.Sprint(bs.Samples))
	row("worst response", as.MaxLatency.String(), bs.MaxLatency.String())
	row("mean response", meanLatency(as), meanLatency(bs))
	b.WriteString("\n  worst-case breakdown (sums to the worst response exactly):\n")
	for c := attrib.Cause(0); c < attrib.NumCauses; c++ {
		row("  "+c.String(),
			causeCell(as.WorstBreakdown[c], as.MaxLatency),
			causeCell(bs.WorstBreakdown[c], bs.MaxLatency))
	}
	b.WriteString("\n  total time by cause across all samples:\n")
	for c := attrib.Cause(0); c < attrib.NumCauses; c++ {
		row("  "+c.String(),
			causeCell(as.Total[c], as.TotalLatency),
			causeCell(bs.Total[c], bs.TotalLatency))
	}
	row("migrations", fmt.Sprint(as.Migrations), fmt.Sprint(bs.Migrations))
	row("trace records lost", fmt.Sprint(as.LostRecords), fmt.Sprint(bs.LostRecords))
	return b.String()
}

// meanLatency renders TotalLatency/Samples; exact-integer inputs keep
// the string deterministic.
func meanLatency(s attrib.Summary) string {
	if s.Samples == 0 {
		return "-"
	}
	return (s.TotalLatency / sim.Duration(s.Samples)).String()
}

// causeCell renders one cause's share as "duration (pct%)".
func causeCell(d, total sim.Duration) string {
	if total <= 0 {
		return d.String()
	}
	return fmt.Sprintf("%-10s (%5.1f%%)", d.String(), 100*float64(d)/float64(total))
}

// attribCSV exports the figure's data series with exact integer
// nanosecond fields only, so the FNV-1a golden hash pins the full
// decomposition bit-for-bit.
func attribCSV(r AttributionResult) string {
	variants := []struct {
		name string
		s    attrib.Summary
	}{
		{"stock", r.Stock.Attribution},
		{"shielded", r.Shielded.Attribution},
	}
	var b strings.Builder
	b.WriteString("variant,samples,migrations,lost_records,total_latency_ns,max_latency_ns\n")
	for _, v := range variants {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d\n",
			v.name, v.s.Samples, v.s.Migrations, v.s.LostRecords,
			int64(v.s.TotalLatency), int64(v.s.MaxLatency))
	}
	b.WriteString("variant,cause,total_ns,worst_ns,worst_sample_ns\n")
	for _, v := range variants {
		for c := attrib.Cause(0); c < attrib.NumCauses; c++ {
			fmt.Fprintf(&b, "%s,%s,%d,%d,%d\n",
				v.name, c, int64(v.s.Total[c]), int64(v.s.Worst[c]),
				int64(v.s.WorstBreakdown[c]))
		}
	}
	return b.String()
}
