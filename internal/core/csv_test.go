package core

import (
	"strconv"
	"strings"
	"testing"
)

func TestFigureCSVAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	for _, id := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"} {
		out, err := FigureCSV(id, 0.05, 3, 0)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: no data rows:\n%s", id, out)
		}
		if !strings.HasPrefix(lines[0], "bin_upper_") {
			t.Fatalf("%s: bad header %q", id, lines[0])
		}
		var total uint64
		for _, line := range lines[1:] {
			parts := strings.Split(line, ",")
			if len(parts) != 2 {
				t.Fatalf("%s: bad row %q", id, line)
			}
			if _, err := strconv.ParseFloat(parts[0], 64); err != nil {
				t.Fatalf("%s: bad bin %q", id, parts[0])
			}
			n, err := strconv.ParseUint(parts[1], 10, 64)
			if err != nil {
				t.Fatalf("%s: bad count %q", id, parts[1])
			}
			total += n
		}
		if total == 0 {
			t.Fatalf("%s: all-zero series", id)
		}
	}
}

func TestFigureCSVUnknownID(t *testing.T) {
	if _, err := FigureCSV("fig99", 1, 1, 0); err == nil {
		t.Fatal("unknown figure id should error")
	}
	if _, err := FigureCSV("ablate-bkl-ioctl", 1, 1, 0); err == nil {
		t.Fatal("non-figure experiments have no CSV series")
	}
}
