package core

import "testing"

func TestRunChecksAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	results := RunChecks(0.3, 1, 0)
	if len(results) < 9 {
		t.Fatalf("only %d checks", len(results))
	}
	for _, r := range results {
		if r.ID == "" || r.Claim == "" || r.Detail == "" {
			t.Errorf("incomplete check %+v", r)
		}
		if !r.Pass {
			t.Errorf("claim %s failed: %s", r.ID, r.Detail)
		}
	}
}
