package core

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/trace/attrib"
)

// RealfeelConfig parameterises the §6.1 interrupt response test: the
// realfeel benchmark reads /dev/rtc at 2048 Hz while the stress-kernel
// suite loads the machine.
type RealfeelConfig struct {
	Kernel kernel.Config
	// Hz is the RTC periodic rate.
	Hz int
	// Samples is how many interrupt responses to measure. The paper ran
	// 60,000,000 (~8 hours); the default here is scaled down and the
	// cmd/rtsim flag can restore the full run.
	Samples int
	// Shield runs the measurement on a fully shielded CPU with the RTC
	// interrupt affined to it (Figure 6).
	Shield    bool
	ShieldCPU int
	Seed      uint64
	// Replications, when > 1, splits Samples across that many
	// independent replications — each a fresh system with a seed derived
	// via splitmix64 from (Seed, replication index) — whose results are
	// merged in replication-index order. The merged figure is therefore
	// bit-identical for any worker count. This is what makes paper-scale
	// runs practical: replications execute in parallel.
	Replications int
	// Workers caps the replication worker pool; <= 0 means GOMAXPROCS.
	// Workers never affects results, only wall-clock time.
	Workers int
	// ExtraLoads adds workloads on top of the stress-kernel suite
	// (e.g. LoadScpFlood for heavy wire-interrupt traffic in the §6.2
	// ablation).
	ExtraLoads []string
	// FixedAPI uses the multithreaded RTC wait path (ReadCallFixed)
	// instead of read(2) through the generic fs layers — the paper's
	// conclusion says fixing those "remaining multithreading issues" is
	// what it takes for other standard APIs to reach RCIM-class
	// response.
	FixedAPI bool
	// ResidencyCap, when non-zero, overrides the stress-kernel's
	// heaviest-residency knob (the residency-cap sweep's parameter).
	ResidencyCap sim.Duration
	// Attribute arms the typed tracepoint buffer and charges every
	// response sample's latency to a cause (irq-off, softirq, spinlock,
	// sched, migration, run); the decomposition lands in
	// ResponseResult.Attribution. Tracing never perturbs the simulation —
	// emitting draws no randomness and schedules no events — so the
	// histogram is byte-identical with or without it.
	Attribute bool
}

// DefaultRealfeel fills the paper's parameters.
func DefaultRealfeel(cfg kernel.Config) RealfeelConfig {
	return RealfeelConfig{
		Kernel:    cfg,
		Hz:        2048,
		Samples:   400_000,
		ShieldCPU: cfg.NumCPUs() - 1,
		Seed:      1,
	}
}

// ResponseResult is an interrupt-response figure: the latency histogram
// and, via the embedded summary, its extremes and exact mean.
type ResponseResult struct {
	Name string
	Hist *metrics.Histogram
	metrics.ResponseSummary
	// WorstFSHold is the longest observed hold of any contended fs
	// spinlock during the run — the quantity the §6.2 fix bounds
	// (bottom halves preempting lock holders stretch it to
	// milliseconds on unfixed kernels).
	WorstFSHold sim.Duration
	// Attribution is the trace-derived per-cause latency decomposition,
	// populated when the config's Attribute flag is set; zero otherwise.
	Attribution attrib.Summary
}

// Legend renders the cumulative table the paper prints under Figures 5–6.
func (r ResponseResult) Legend(thresholds []sim.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d measured interrupts\n", r.Samples)
	fmt.Fprintf(&b, "min latency: %v\nmax latency: %v\navg latency: %v\n", r.Min, r.Max, r.Mean())
	b.WriteString(r.Hist.Legend(thresholds))
	return b.String()
}

// Chart renders the latency histogram with log-count bars, the shape of
// the paper's Figures 5–7, plus the cumulative legend.
func (r ResponseResult) Chart(thresholds []sim.Duration, unit sim.Duration, unitName string) string {
	var b strings.Builder
	b.WriteString(report.Chart{
		Title:    r.Name,
		Width:    40,
		LogScale: true,
		Unit:     unit,
		UnitName: unitName,
		MaxRows:  25,
	}.Render(r.Hist))
	b.WriteString(r.Legend(thresholds))
	return b.String()
}

// merge folds other into r in replication-index order: histogram bins,
// the response summary, and the worst lock hold. Both sides must come
// from the same experiment configuration (identical histogram shape).
func (r *ResponseResult) merge(other ResponseResult) {
	if err := r.Hist.Merge(other.Hist); err != nil {
		panic(err) // replications share one config; shapes cannot differ
	}
	r.ResponseSummary.Merge(other.ResponseSummary)
	r.Attribution.Merge(other.Attribution)
	if other.WorstFSHold > r.WorstFSHold {
		r.WorstFSHold = other.WorstFSHold
	}
}

// mergeResponses folds a replication-ordered slice of results into one.
func mergeResponses(parts []ResponseResult) ResponseResult {
	merged := parts[0]
	for _, p := range parts[1:] {
		merged.merge(p)
	}
	return merged
}

// PaperThresholdsFig5 are the cumulative rows under Figure 5.
func PaperThresholdsFig5() []sim.Duration {
	out := []sim.Duration{100 * sim.Microsecond, 200 * sim.Microsecond}
	for _, ms := range []int{1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		out = append(out, sim.Duration(ms)*sim.Millisecond)
	}
	return out
}

// PaperThresholdsFig6 are the cumulative rows under Figure 6.
func PaperThresholdsFig6() []sim.Duration {
	var out []sim.Duration
	for i := 1; i <= 6; i++ {
		out = append(out, sim.Duration(i)*100*sim.Microsecond)
	}
	return out
}

// RunRealfeel executes the realfeel test and returns the latency
// histogram. Latency is measured the way realfeel measures it: the gap
// between consecutive returns from read(/dev/rtc) minus the expected
// period; anything beyond the period is response latency.
//
// With cfg.Replications > 1 the sample budget is sharded across
// independent replications executed on the runner worker pool and the
// results merged deterministically; see RealfeelConfig.Replications.
func RunRealfeel(cfg RealfeelConfig) ResponseResult {
	if cfg.Samples <= 0 {
		cfg.Samples = 400_000
	}
	if n := replicationCount(cfg.Replications, cfg.Samples); n > 1 {
		parts := runner.MapSeededPooled(cfg.Workers, cfg.Seed, n, func(i int, seed uint64, pool *sim.EventPool) ResponseResult {
			sub := cfg
			sub.Replications = 1
			sub.Samples = shardSize(cfg.Samples, n, i)
			sub.Seed = seed
			sub.Kernel.EventPool = pool
			return RunRealfeel(sub)
		})
		return mergeResponses(parts)
	}
	return RunRealfeelModes(cfg, cfg.Shield, cfg.Shield, cfg.Shield, cfg.Shield)
}

// replicationCount clamps a requested replication count to the sample
// budget so no replication runs empty.
func replicationCount(reps, samples int) int {
	if reps > samples {
		reps = samples
	}
	return reps
}

// shardSize splits total across n shards in index order; the first
// total%n shards carry the remainder.
func shardSize(total, n, i int) int {
	size := total / n
	if i < total%n {
		size++
	}
	return size
}

// RunRealfeelModes is RunRealfeel with each shielding dimension
// controlled independently (the §3 shield-mode ablation): shield the CPU
// from processes, from interrupts, from the local timer, and whether the
// RTC interrupt is affined to the measurement CPU. It always executes a
// single replication.
func RunRealfeelModes(cfg RealfeelConfig, shieldProcs, shieldIRQs, shieldLTimer, affineRTC bool) ResponseResult {
	if cfg.Hz <= 0 {
		cfg.Hz = 2048
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 400_000
	}
	pinned := shieldProcs || shieldIRQs || shieldLTimer || affineRTC
	s := NewSystem(cfg.Kernel, cfg.Seed, SystemOptions{
		RTCHz:              cfg.Hz,
		Loads:              append([]string{LoadStressKernel}, cfg.ExtraLoads...),
		BroadcastTraffic:   true,
		StressResidencyCap: cfg.ResidencyCap,
	})
	k := s.K
	if cfg.Attribute {
		k.Trace = trace.NewBuffer(attribTraceCapacity)
	}

	affinity := kernel.CPUMask(0)
	if pinned {
		affinity = kernel.MaskOf(cfg.ShieldCPU)
	}

	// 0.1 ms bins out to 100 ms, the Figure 5 axis.
	hist := metrics.NewHistogram(100*sim.Microsecond, 1000)
	period := s.RTC.Period()
	prev := sim.NoTime
	samples := 0
	var sum metrics.ResponseSummary
	var mt *kernel.Task
	var attr *attrib.Attributor

	behavior := kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		if samples >= cfg.Samples {
			k.Eng.Stop()
			return kernel.Exit()
		}
		call := s.RTC.ReadCall()
		if cfg.FixedAPI {
			call = s.RTC.ReadCallFixed()
		}
		act := kernel.Syscall(call)
		act.OnComplete = func(now sim.Time) {
			if prev >= 0 {
				lat := now.Sub(prev) - period
				if lat < 0 {
					lat = 0
				}
				hist.Add(lat)
				sum.Add(lat)
				samples++
				if attr != nil {
					attr.Sample(now.Add(-lat), now, mt.CPU())
				}
			}
			prev = now
		}
		return act
	})
	mt = k.NewTask("realfeel", kernel.SchedFIFO, 90, affinity, behavior)
	mt.MemLocked = true
	if cfg.Attribute {
		attr = attrib.New(k.Trace, mt.PID)
	}

	s.Start()
	mask := kernel.MaskOf(cfg.ShieldCPU)
	if shieldProcs {
		mustDo(k.SetShieldProcs(mask))
	}
	if shieldIRQs {
		mustDo(k.SetShieldIRQs(mask))
	}
	if shieldLTimer {
		mustDo(k.SetShieldLTimer(mask))
	}
	if affineRTC {
		// The RTC interrupt must follow the measurement task onto the
		// shielded CPU (the paper affines both).
		mustDo(k.SetIRQAffinity(s.RTC.IRQ(), mask))
	}
	// Horizon: samples at Hz, generously padded for tail latencies.
	horizon := sim.Time(cfg.Samples+cfg.Samples/4+2048) * sim.Time(period)
	k.Eng.Run(horizon)

	name := fmt.Sprintf("%s realfeel @%dHz", cfg.Kernel.Name, cfg.Hz)
	if shieldProcs && shieldIRQs && shieldLTimer {
		name += " (shielded CPU)"
	} else if pinned {
		name += " (partial shield)"
	}
	var worstHold sim.Duration
	for _, lockName := range []string{"dcache", "inode", "pagecache"} {
		if h := k.NamedLock(lockName).MaxHold; h > worstHold {
			worstHold = h
		}
	}
	res := ResponseResult{
		Name:            name,
		Hist:            hist,
		ResponseSummary: sum,
		WorstFSHold:     worstHold,
	}
	if attr != nil {
		res.Attribution = attr.Summary()
	}
	return res
}

func mustDo(err error) {
	if err != nil {
		panic(err)
	}
}
