package core

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// Regenerate with: go test ./internal/core -run TestFigureGoldenHashes -update
var updateGoldens = flag.Bool("update", false, "rewrite testdata golden figure hashes from this run")

// goldenScale/goldenSeed pin the scaled-down runs the golden hashes are
// computed from. Changing either (or anything that feeds the simulation)
// legitimately invalidates the goldens; rerun with -update and review the
// diff like any other behavior change.
const (
	goldenScale = 0.05
	goldenSeed  = 7
)

var goldenFigures = []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "attrib-causes"}

func fnv1a(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestFigureResultsReproducible runs every figure's canonical
// configuration twice with the same seed and requires the full result
// structs — histograms, summaries, reports — to come out identical. This
// is the determinism contract at the struct level; the golden-hash test
// below extends it across sessions and machines.
func TestFigureResultsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	for _, id := range goldenFigures {
		id := id
		t.Run(id, func(t *testing.T) {
			a, b := figureResult(t, id), figureResult(t, id)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: same seed, different result structs", id)
			}
		})
	}
}

// figureResult runs one figure's canonical config and returns the raw
// result struct (whose concrete type depends on the figure family).
func figureResult(t *testing.T, id string) interface{} {
	t.Helper()
	if cfg, ok := figDeterminismConfig(id, goldenScale, goldenSeed, 0); ok {
		return RunDeterminism(cfg)
	}
	if cfg, ok := figRealfeelConfig(id, goldenScale, goldenSeed, 0); ok {
		return RunRealfeel(cfg)
	}
	if id == "fig7" {
		return RunRCIM(figRCIMConfig(goldenScale, goldenSeed, 0))
	}
	if id == "attrib-causes" {
		return RunAttribution(goldenScale, goldenSeed, 0)
	}
	t.Fatalf("unknown figure %q", id)
	return nil
}

// TestFigureGoldenHashes regenerates every figure's CSV export at the
// pinned scale and seed and compares its FNV-1a hash against the
// committed goldens — a regression tripwire for *any* unintended change
// to simulation behavior, seed derivation or merge order.
func TestFigureGoldenHashes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	path := filepath.Join("testdata", "figure_hashes.txt")
	got := map[string]string{}
	for _, id := range goldenFigures {
		csv, err := FigureCSV(id, goldenScale, goldenSeed, 0)
		if err != nil {
			t.Fatalf("FigureCSV(%s): %v", id, err)
		}
		got[id] = fnv1a(csv)
	}

	if *updateGoldens {
		var b strings.Builder
		b.WriteString("# FNV-1a hashes of FigureCSV(id, scale=0.05, seed=7).\n")
		b.WriteString("# Regenerate: go test ./internal/core -run TestFigureGoldenHashes -update\n")
		ids := make([]string, 0, len(got))
		for id := range got {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "%s %s\n", id, got[id])
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (%v); run with -update to create them", err)
	}
	want := map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[parts[0]] = parts[1]
	}
	for _, id := range goldenFigures {
		if want[id] == "" {
			t.Errorf("%s: no committed golden; run with -update", id)
			continue
		}
		if got[id] != want[id] {
			t.Errorf("%s: CSV hash %s, golden %s — simulation output changed; if intended, rerun with -update",
				id, got[id], want[id])
		}
	}
}
