package core

import (
	"testing"

	"repro/internal/trace/attrib"
)

// attribTestScale keeps the attribution runs small; the golden-hash test
// covers the canonical goldenScale.
const attribTestScale = 0.02

// TestAttributionPartition: end to end — through the kernel's emit
// sites, the ring buffers, the per-sample sweep and the replication
// merge — the per-cause totals must still sum to the total latency
// exactly, and no trace records may be lost at the canonical ring size.
func TestAttributionPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r := RunAttribution(attribTestScale, 7, 0)
	for _, v := range []struct {
		name string
		s    attrib.Summary
	}{
		{"stock", r.Stock.Attribution},
		{"shielded", r.Shielded.Attribution},
	} {
		if v.s.Samples == 0 {
			t.Fatalf("%s: no attributed samples", v.name)
		}
		var sum int64
		for c := attrib.Cause(0); c < attrib.NumCauses; c++ {
			sum += int64(v.s.Total[c])
		}
		if sum != int64(v.s.TotalLatency) {
			t.Errorf("%s: causes sum to %d, total latency %d", v.name, sum, int64(v.s.TotalLatency))
		}
		var worst int64
		for c := attrib.Cause(0); c < attrib.NumCauses; c++ {
			worst += int64(v.s.WorstBreakdown[c])
		}
		if worst != int64(v.s.MaxLatency) {
			t.Errorf("%s: worst breakdown sums to %d, max latency %d", v.name, worst, int64(v.s.MaxLatency))
		}
		if v.s.LostRecords != 0 {
			t.Errorf("%s: %d trace records lost (ring too small for the figure)", v.name, v.s.LostRecords)
		}
	}
	// The figure's point: shielding removes the competing causes. The
	// stock worst case carries scheduling/softirq/lock delay; the
	// shielded one must not.
	bs := r.Shielded.Attribution
	if got := bs.WorstBreakdown[attrib.CauseSched] + bs.WorstBreakdown[attrib.CauseSoftirq] + bs.WorstBreakdown[attrib.CauseLock]; got >= bs.MaxLatency/2 {
		t.Errorf("shielded worst case dominated by removable causes (%v of %v)", got, bs.MaxLatency)
	}
	as := r.Stock.Attribution
	if as.Total[attrib.CauseSched] <= bs.Total[attrib.CauseSched] {
		t.Errorf("stock sched delay %v not above shielded %v", as.Total[attrib.CauseSched], bs.Total[attrib.CauseSched])
	}
}

// TestAttributionStability holds the new figure to the same contract as
// fig1–fig7: its CSV series must be bit-identical under tie-break
// perturbation salts and for any worker count.
func TestAttributionStability(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	base, err := FigureCSVSalted("attrib-causes", attribTestScale, 7, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, salt := range []uint64{1, 12345} {
		got, err := FigureCSVSalted("attrib-causes", attribTestScale, 7, 1, salt)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("tie-break salt %d changed the attribution series:\n%s\nvs baseline\n%s", salt, got, base)
		}
	}
	got, err := FigureCSVSalted("attrib-causes", attribTestScale, 7, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Fatal("worker count changed the attribution series")
	}
}
