package core

import (
	"strings"
	"testing"

	"repro/internal/kernel"
)

func TestSweepRegistry(t *testing.T) {
	sweeps := Sweeps()
	if len(sweeps) < 5 {
		t.Fatalf("only %d sweeps", len(sweeps))
	}
	ids := map[string]bool{}
	for _, s := range sweeps {
		if s.ID == "" || s.Title == "" || len(s.Points) < 3 || s.Run == nil {
			t.Errorf("incomplete sweep %q", s.ID)
		}
		if ids[s.ID] {
			t.Errorf("duplicate sweep %q", s.ID)
		}
		ids[s.ID] = true
	}
	if _, ok := SweepByID("crit-section-cap"); !ok {
		t.Error("lookup failed")
	}
	if _, ok := SweepByID("nope"); ok {
		t.Error("bogus lookup succeeded")
	}
}

func TestCritSectionCapSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// The §6 mechanism in one curve: the shielded worst case tracks the
	// critical-section cap.
	s, _ := SweepByID("crit-section-cap")
	var prev float64 = -1
	for _, p := range []float64{0.1, 0.4, 1.6} {
		m, unit := s.Run(p, 0.3, 1)
		if unit != "max_ms" {
			t.Fatalf("unit = %q", unit)
		}
		if m <= prev {
			t.Fatalf("max response did not grow with the cap: %v then %v", prev, m)
		}
		// The residual tail is roughly the cap itself.
		if m < p*0.5 || m > p*3+0.2 {
			t.Fatalf("cap %.1fms gave max %.3fms — not tracking", p, m)
		}
		prev = m
	}
}

func TestHTSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	s, _ := SweepByID("ht-slowdown")
	noHT, _ := s.Run(1.0, 0.3, 1)
	heavy, _ := s.Run(0.5, 0.3, 1)
	if heavy <= noHT+5 {
		t.Fatalf("HT factor 0.5 jitter %.1f%% vs none %.1f%% — no sensitivity", heavy, noHT)
	}
}

func TestResidencyCapSweepScopedToConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// The residency override lives in the config, not in package state:
	// running the sweep must not change what an unrelated run sees.
	baseline := func() ResponseResult {
		cfg := DefaultRealfeel(kernel.StandardLinux24(2, 0.933, false))
		cfg.Samples = scaleSamples(40_000, 0.2)
		cfg.Seed = 1
		return RunRealfeel(cfg)
	}
	before := baseline()
	s, _ := SweepByID("residency-cap")
	small, _ := s.Run(10, 0.2, 1)
	big, _ := s.Run(150, 0.2, 1)
	if big <= small {
		t.Fatalf("residency cap sweep flat: %.2f vs %.2f", small, big)
	}
	after := baseline()
	if before.Max != after.Max || before.ResponseSummary != after.ResponseSummary {
		t.Fatal("sweep leaked the residency override into later runs")
	}
}

func TestRunSweepRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	s, _ := SweepByID("bus-contention")
	s.Points = []float64{0, 0.1} // trim for test speed
	out := RunSweep(s, 0.2, 1, 0)
	if !strings.Contains(out, "jitter_pct") || strings.Count(out, "->") != 2 {
		t.Fatalf("sweep output:\n%s", out)
	}
}
