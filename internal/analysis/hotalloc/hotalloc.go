// Package hotalloc turns the engine benchmarks' 0 allocs/op claim into
// a vet-time guarantee. Functions marked with a `//simlint:hotpath`
// line in their doc comment are hot-path roots (the dispatch loop,
// queue push/pop, event pool operations, typed trace emit); every
// function transitively reachable from a root over the module call
// graph must be provably allocation-free.
//
// The analyzer flags, with the call chain that makes the site hot:
//
//   - make, new, and &T{...} composite literals (always allocate)
//   - slice and map literals (always allocate)
//   - value composite literals assigned to a variable whose storage
//     escapes to the heap (address taken or captured by a closure)
//   - interface boxing: a concrete non-pointer-shaped value passed,
//     assigned, returned, or converted into an interface (including
//     variadic ...any parameters)
//   - function literals that capture variables (the closure and its
//     captures are heap-allocated; captureless literals are free)
//   - append whose target slice escapes the frame (a field, package
//     variable, escaping local, or any slice expression too complex to
//     prove local)
//   - string conversions and non-constant string concatenation
//
// Allocation sites inside the arguments of a call to panic are exempt:
// a panicking hot path is already dead, and the engine's invariant
// panics format their messages at the point of no return.
//
// Audited exceptions use `//simlint:allow hotalloc <reason>` on or
// above the site (slow-path pool refills, amortized free-list growth);
// the reason is mandatory, so every deliberate allocation on the hot
// path stays visible in review.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// marker is the doc-comment line that roots hot-path reachability.
const marker = "simlint:hotpath"

// Analyzer is the hot-path allocation-freedom rule.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc: "require every function reachable from a //simlint:hotpath root to be allocation-free\n\n" +
		"Interprocedural: roots are functions whose doc comment carries a //simlint:hotpath\n" +
		"line (engine dispatch, queue push/pop, EventPool operations, typed trace emit);\n" +
		"everything they transitively call must not allocate — no make/new/&T{} or slice/map\n" +
		"literals, no interface boxing, no capturing closures, no append to escaping slices,\n" +
		"no string conversions or concatenation. Sites inside panic arguments are exempt.\n" +
		"Diagnostics carry the call chain from the hot-path root.",
	RunModule: run,
}

func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(filepath.Base(fset.Position(pos).Filename), "_test.go")
}

// collectRoots finds every declared function whose doc comment carries
// the hotpath marker, in non-test files.
func collectRoots(pass *framework.ModulePass) []*framework.CGNode {
	var roots []*framework.CGNode
	for _, pkg := range pass.Pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			if framework.IsTestFileName(pass.Fset, f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				marked := false
				for _, c := range fd.Doc.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if text == marker || strings.HasPrefix(text, marker+" ") {
						marked = true
					}
				}
				if !marked {
					continue
				}
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					if n := pass.Graph.Funcs[fn]; n != nil {
						roots = append(roots, n)
					}
				}
			}
		}
	}
	return roots
}

func run(pass *framework.ModulePass) error {
	roots := collectRoots(pass)
	if len(roots) == 0 {
		return nil
	}
	df := framework.NewDataFlow(pass.Graph)
	seen := pass.Graph.Reach(roots)

	nodes := make([]*framework.CGNode, 0, len(seen))
	for n := range seen {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos() < nodes[j].Pos() })

	for _, node := range nodes {
		if isTestFile(pass.Fset, node.Pos()) {
			continue
		}
		checkNode(pass, df, seen, node)
	}
	return nil
}

// posRange is a half-open source range, used for the panic exemption.
type posRange struct{ lo, hi token.Pos }

func checkNode(pass *framework.ModulePass, df *framework.DataFlow, seen map[*framework.CGNode]framework.ReachEdge, node *framework.CGNode) {
	info := node.Pkg.TypesInfo
	body := node.Body()
	if body == nil {
		return
	}
	chain := strings.Join(framework.Chain(seen, node), " -> ")
	sum := df.Summary(node)

	// Panic exemption: allocation inside a panic argument is on a death
	// path; the engine's invariant panics format their message there.
	var exemptRanges []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				for _, arg := range call.Args {
					exemptRanges = append(exemptRanges, posRange{arg.Pos(), arg.End()})
				}
			}
		}
		return true
	})
	exempt := func(p token.Pos) bool {
		for _, r := range exemptRanges {
			if p >= r.lo && p < r.hi {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...any) {
		if !exempt(pos) {
			pass.Reportf(pos, format, args...)
		}
	}

	// &T{...} composites are reported once, at the & site.
	handled := make(map[*ast.CompositeLit]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// The literal's own body is its own reachable node; here we
			// only account for creating the closure value.
			if ls := df.Summary(pass.Graph.Lits[x]); ls != nil && len(ls.Free) > 0 {
				names := make([]string, 0, len(ls.Free))
				for _, v := range ls.Free {
					names = append(names, v.Name())
				}
				report(x.Pos(), "closure capturing %s allocates in hot path (%s): hot-path code must be allocation-free",
					strings.Join(names, ", "), chain)
			}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					handled[cl] = true
					report(x.Pos(), "&%s{...} heap-allocates in hot path (%s): hot-path code must be allocation-free",
						typeName(info.TypeOf(cl)), chain)
				}
			}
		case *ast.CompositeLit:
			if handled[x] {
				return true
			}
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				report(x.Pos(), "slice literal allocates in hot path (%s): hot-path code must be allocation-free", chain)
			case *types.Map:
				report(x.Pos(), "map literal allocates in hot path (%s): hot-path code must be allocation-free", chain)
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Rhs {
					// Boxing through assignment into an interface location.
					if framework.Boxes(info.TypeOf(x.Lhs[i]), info.TypeOf(x.Rhs[i])) && !isConst(info, x.Rhs[i]) {
						report(x.Rhs[i].Pos(), "interface boxing of %s allocates in hot path (%s): hot-path code must be allocation-free",
							typeName(info.TypeOf(x.Rhs[i])), chain)
					}
					// A value composite parked in a variable whose storage
					// escapes is a heap allocation in disguise.
					if cl, ok := ast.Unparen(x.Rhs[i]).(*ast.CompositeLit); ok && sum != nil {
						if v, through, _ := framework.RootOf(info, x.Lhs[i]); v != nil && !through {
							if r := sum.Escapes[v]; r == framework.EscAddrTaken || r == framework.EscCaptured {
								handled[cl] = true
								report(cl.Pos(), "composite literal assigned to %s-escaping %s allocates in hot path (%s): hot-path code must be allocation-free",
									r, v.Name(), chain)
							}
						}
					}
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				to := info.TypeOf(x.Type)
				for _, val := range x.Values {
					if framework.Boxes(to, info.TypeOf(val)) && !isConst(info, val) {
						report(val.Pos(), "interface boxing of %s allocates in hot path (%s): hot-path code must be allocation-free",
							typeName(info.TypeOf(val)), chain)
					}
				}
			}
		case *ast.ReturnStmt:
			sig := node.Signature()
			if sig == nil {
				break
			}
			if len(x.Results) == sig.Results().Len() {
				for i, res := range x.Results {
					if framework.Boxes(sig.Results().At(i).Type(), info.TypeOf(res)) && !isConst(info, res) {
						report(res.Pos(), "interface boxing of %s at return allocates in hot path (%s): hot-path code must be allocation-free",
							typeName(info.TypeOf(res)), chain)
					}
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(info.TypeOf(x)) && !isConst(info, x) {
				report(x.Pos(), "string concatenation allocates in hot path (%s): hot-path code must be allocation-free", chain)
			}
		case *ast.CallExpr:
			checkCall(info, sum, chain, report, x)
		}
		return true
	})
}

func checkCall(info *types.Info, sum *framework.FuncSummary, chain string, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	// Conversions: string materializations allocate; interface
	// conversions are boxing (handled by ForEachBoxedArg below).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := info.TypeOf(call.Args[0])
		if isString(to) && !isString(from) && !isConst(info, call.Args[0]) {
			report(call.Pos(), "conversion to string allocates in hot path (%s): hot-path code must be allocation-free", chain)
		}
		if sl, ok := to.(*types.Slice); ok && isString(from) {
			if b, ok := sl.Elem().Underlying().(*types.Basic); ok && (b.Kind() == types.Byte || b.Kind() == types.Rune) {
				report(call.Pos(), "string-to-%s conversion allocates in hot path (%s): hot-path code must be allocation-free",
					typeName(tv.Type), chain)
			}
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates in hot path (%s): hot-path code must be allocation-free", chain)
			case "new":
				report(call.Pos(), "new allocates in hot path (%s): hot-path code must be allocation-free", chain)
			case "append":
				if len(call.Args) > 0 && appendTargetEscapes(info, sum, call.Args[0]) {
					report(call.Pos(), "append to escaping slice %s may allocate in hot path (%s): hot-path code must be allocation-free",
						framework.ExprString(call.Args[0]), chain)
				}
			}
			return
		}
	}
	framework.ForEachBoxedArg(info, call, func(arg ast.Expr, _ types.Type) {
		if !isConst(info, arg) {
			report(arg.Pos(), "interface boxing of %s argument allocates in hot path (%s): hot-path code must be allocation-free",
				typeName(info.TypeOf(arg)), chain)
		}
	})
}

// appendTargetEscapes reports whether the slice being appended to may
// live beyond the frame: a field, package variable, captured variable,
// escaping local, or an expression too complex to prove local. Only a
// plain non-escaping local slice is exempt — growth there is the
// caller's own stack-bound scratch.
func appendTargetEscapes(info *types.Info, sum *framework.FuncSummary, target ast.Expr) bool {
	v, through, _ := framework.RootOf(info, target)
	if v == nil || through {
		return true
	}
	if framework.IsPkgLevel(v) {
		return true
	}
	if sum == nil {
		return true
	}
	if sum.Node != nil && framework.ClassifyVar(sum.Node, v) != framework.VarLocal {
		return true
	}
	return sum.Escapes[v] != framework.EscNone
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConst reports whether the expression is a compile-time constant;
// constants boxed into interfaces point at static storage, and constant
// string concatenation folds at compile time.
func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func typeName(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
