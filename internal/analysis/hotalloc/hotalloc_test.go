package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotalloc"
)

func TestAnalyzer(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(t),
		[]*framework.Analyzer{hotalloc.Analyzer}, "repro/hotfix")
}
