// Package hotfix is the hotalloc fixture: a miniature engine hot path
// with seeded allocation sites the analyzer must catch, clean patterns
// it must not flag (value composites returned by value, pointer-shaped
// interface arguments, captureless literals, panic-path formatting),
// and one audited //simlint:allow escape.
package hotfix

import "fmt"

type item struct {
	id   int
	next *item
}

type queue struct {
	items []item
	free  []*item
	name  string
}

// push inserts one element; the backing slice is a struct field, so
// growth escapes the frame.
//
//simlint:hotpath
func (q *queue) push(it item) {
	q.items = append(q.items, it) // want `append to escaping slice`
}

// pop removes the head: re-slicing and returning by value are clean.
//
//simlint:hotpath
func (q *queue) pop() item {
	it := q.items[0]
	q.items = q.items[1:]
	return it
}

// mk builds an element and returns it by value — no allocation.
//
//simlint:hotpath
func mk(id int) item {
	return item{id: id}
}

// dispatch reaches its allocations only through helper; the findings
// must carry the dispatch -> helper chain.
//
//simlint:hotpath
func dispatch(q *queue) {
	helper(q)
}

func helper(q *queue) {
	n := new(item) // want `new allocates`
	_ = n
	m := make(map[int]int) // want `make allocates`
	_ = m
	q.free = append(q.free, nil) // want `append to escaping slice`
}

// refill reaches the &composite through a second hop.
//
//simlint:hotpath
func refill(q *queue) {
	q.free = append(q.free, alloc()) // want `append to escaping slice`
}

func alloc() *item {
	return &item{} // want `heap-allocates`
}

// escaping parks a value composite in a variable whose address is
// taken — a heap allocation in disguise.
//
//simlint:hotpath
func escaping() *item {
	it := item{id: 1} // want `composite literal assigned to address-taken-escaping it`
	return &it
}

// lits: slice and map literals always allocate.
//
//simlint:hotpath
func lits() {
	xs := []int{1, 2} // want `slice literal allocates`
	_ = xs
	m := map[int]int{} // want `map literal allocates`
	_ = m
}

// box: a string argument boxes into any; a pointer and a constant are
// pointer-shaped/static and stay clean.
//
//simlint:hotpath
func box(q *queue, sink func(any)) {
	sink(q.name) // want `interface boxing of string argument`
	sink(q)
	sink(42)
}

// spec and ret: boxing through var declarations and returns.
//
//simlint:hotpath
func spec(a string) {
	var x any = a // want `interface boxing of string`
	_ = x
}

//simlint:hotpath
func ret(a string) any {
	return a // want `interface boxing of string at return`
}

// closures: a capturing literal allocates; a captureless one is free.
//
//simlint:hotpath
func closures() {
	n := 0
	f := func() { n++ } // want `closure capturing n allocates`
	f()
	g := func() {}
	g()
}

// strs: string materializations allocate.
//
//simlint:hotpath
func strs(bs []byte, a, b string) string {
	s := string(bs) // want `conversion to string allocates`
	_ = s
	t := a + b // want `string concatenation allocates`
	return t
}

// guard: formatting inside a panic argument is a death path and is
// exempt.
//
//simlint:hotpath
func guard(q *queue, gen uint64) {
	if gen == 0 {
		panic(fmt.Sprintf("queue %s: zero generation", q.name))
	}
}

// grow is the audited exception: free-list growth is amortized and
// deliberate, so it carries a reasoned allow.
//
//simlint:hotpath
func grow(q *queue) {
	q.free = append(q.free, new(item)) //simlint:allow hotalloc amortized free-list growth, audited slow path
}

// reasonless is the escape-hatch audit: an allow directive without a
// justification never suppresses and is itself a finding.
//
//simlint:hotpath
func reasonless(q *queue) {
	//simlint:allow hotalloc // want `simlint:allow hotalloc needs a reason stating why the rule is safe to break here`
	q.free = append(q.free, new(item)) // want `may allocate in hot path` `new allocates in hot path`
}
