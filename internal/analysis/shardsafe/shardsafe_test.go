package shardsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/shardsafe"
	"repro/internal/sim"
)

func TestAnalyzer(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(t),
		[]*framework.Analyzer{shardsafe.Analyzer}, "repro/shardfix")
}

// TestHorizonCheckMissesLaundering proves the hole shardsafe closes is
// real: the exact captured-pointer sharing the fixture flags — one
// variable mutated by callbacks scheduled across every lane — runs to
// completion on a live ShardSet without tripping any dynamic check.
// The committed-horizon causality check (and Send's lookahead panic)
// audit *timing*; events mutating shared memory at perfectly legal
// times sail through, and only the serial executor keeps the outcome
// deterministic. shardsafe rejects the pattern statically.
func TestHorizonCheckMissesLaundering(t *testing.T) {
	set := sim.NewShardSet(2, 10, 42, sim.EngineOptions{})
	shared := 0
	for i := 0; i < set.Shards(); i++ {
		set.Lane(i).Eng.Schedule(sim.Time(1+i), func() { shared++ })
	}
	set.Run(100) // no panic: nothing dynamic sees the sharing
	if shared != set.Shards() {
		t.Fatalf("shared = %d, want %d", shared, set.Shards())
	}
}
