// Package shardfix seeds lane-isolation violations for the shardsafe
// analyzer: cross-lane writes through captured peer pointers, shared
// captured variables, package-level state touched from lane callbacks —
// each of which the simsan committed-horizon check misses whenever the
// racing events land at legal times — next to the clean shapes the
// analyzer must accept (own-lane mutation, single-lane captures, and
// Lane.Send as the blessed cross-lane hatch).
package shardfix

import "repro/internal/sim"

// hits is package-level mutable state; any lane may be writing it.
var hits uint64

// cpu carries a *sim.Lane field, making it lane-affine: each value
// belongs to exactly one lane, and peer is a captured pointer into
// another lane's state.
type cpu struct {
	lane   *sim.Lane
	peer   *cpu
	id     uint64
	ticks  uint64
	tickFn func()
	ipiFn  func()
}

// NewCPU prebinds the callbacks; construction is not lane-executed, so
// these field writes do not make tickFn/ipiFn lane-mutable.
func NewCPU(l *sim.Lane, id uint64) *cpu {
	c := &cpu{lane: l, id: id}
	c.tickFn = c.tick
	c.ipiFn = c.ipi
	return c
}

// tick is lane-executed (rooted through the tickFn binding in Arm).
func (c *cpu) tick() {
	c.ticks++                   // own-lane state: clean
	hits++                      // want `write to package-level hits reachable from lane callback \(tick\)`
	c.peer.ticks++              // want `write to foreign-lane state c\.peer\.ticks reachable from lane callback \(tick\)`
	if c.peer.ticks > c.ticks { // want `read of lane-mutable field ticks through foreign-lane c\.peer \(tick\)`
		c.peer.poke() // want `call to poke on foreign-lane c\.peer reachable from lane callback \(tick\)`
	}
	drain(c.peer) // want `foreign-lane c\.peer passed to drain, which writes through it \(tick\)`
	// Send is the blessed hatch: naming the destination through the
	// peer's immutable fields and handing over its prebound callback is
	// exactly how cross-lane work is supposed to move.
	c.lane.Send(c.peer.lane.ID(), 1, c.id, c.peer.ipiFn)
	c.lane.Eng.Schedule(1, c.tickFn) // self re-arm on the own lane: clean
}

// ipi runs on this cpu's own lane, delivered through Send: clean.
func (c *cpu) ipi() { c.ticks++ }

// poke mutates own state when called on the right lane; the violation
// is calling it on a peer, not its body.
func (c *cpu) poke() { c.ticks++ }

// drain writes through its parameter; passing a peer into it launders
// a cross-lane mutation behind a call.
func drain(d *cpu) { d.ticks = 0 }

// Arm schedules the lane workloads. Arm itself is setup, not
// lane-executed, so its own writes are unconstrained.
func Arm(set *sim.ShardSet, cpus []*cpu) {
	shared := 0
	for i := 0; i < set.Shards(); i++ {
		set.Lane(i).Eng.Schedule(1, func() { shared++ }) // want `captured variable shared is written by a lane callback but its callback is scheduled on a varying lane`
	}
	solo := 0
	l := set.Lane(0)
	l.Eng.Schedule(1, func() { solo++ }) // single-lane capture: clean
	l.Eng.Schedule(2, func() { _ = solo })
	l.Eng.After(3, func() { _ = hits }) // want `read of mutated package-level hits reachable from lane callback \(func literal\)`
	for _, c := range cpus {
		c.lane.Eng.Schedule(1, c.tickFn)
	}
}
