// Package shardsafe proves lane isolation for the conservative-parallel
// engine (sim.ShardSet) at vet time: every function reachable from a
// lane-executed callback must not read or write state owned by another
// lane. The dynamic committed-horizon check (shardedQueue under -tags
// simsan) catches cross-lane *timing* violations, and only when a run
// happens to produce one; a captured pointer mutated from two lanes at
// perfectly legal times sails through it. This analyzer catches the
// sharing itself, statically.
//
// Roots are the callbacks bound to a lane in non-test code:
//
//   - the callback argument of (*sim.Lane).Send — which also marks the
//     one blessed way to move work across lanes — and
//   - the callback argument of Engine.Schedule/After/SchedulePinned/
//     AfterPinned when the receiver is written `<lane>.Eng`, i.e. the
//     engine is reached through a *sim.Lane.
//
// Everything reachable from a root (module call graph + dataflow
// summaries) must then satisfy four rules:
//
//  1. No writes to package-level variables, and no reads of package-
//     level variables mutated anywhere in the module — lanes sharing a
//     global race under the parallel executor.
//  2. No captured variable may be written by a callback scheduled
//     across lanes (distinct lane expressions, or a lane-varying site
//     like set.Lane(i) inside a loop). This is the captured-pointer
//     laundering case the horizon check misses.
//  3. No access through a foreign-lane struct: for lane-affine types
//     (structs carrying a *sim.Lane field), stepping from own state to
//     a *different* value of a lane-affine type (c.dest, peers[i]) is
//     peer access. Writes through a peer, calls to methods on a peer,
//     and reads of peer fields some lane callback mutates are all
//     flagged.
//  4. No passing a peer pointer to a function that writes through that
//     parameter (transitively, via the dataflow layer's composed
//     parameter-write facts) — mutation laundered through a helper.
//
// Cross-lane interaction must instead flow through Lane.Send, whose
// lookahead and deterministic mailbox merge make it safe; Send call
// sites are never flagged. Reads of peer fields nothing lane-reachable
// mutates (a peer's lane ID, a prebound callback field) are allowed —
// that is how a sender names its destination.
package shardsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// lanePkg is the import path of the package defining Lane and ShardSet.
const lanePkg = "repro/internal/sim"

// sendMethod is the blessed cross-lane escape hatch; its final argument
// is a root callback executed on the destination lane.
const sendMethod = "(*repro/internal/sim.Lane).Send"

// laneRegistrars are the engine methods whose final argument becomes a
// lane-executed callback when the engine is reached as `<lane>.Eng`.
var laneRegistrars = map[string]bool{
	"(*repro/internal/sim.Engine).Schedule":       true,
	"(*repro/internal/sim.Engine).SchedulePinned": true,
	"(*repro/internal/sim.Engine).After":          true,
	"(*repro/internal/sim.Engine).AfterPinned":    true,
}

// Analyzer is the module-level lane-isolation rule.
var Analyzer = &framework.Analyzer{
	Name: "shardsafe",
	Doc: "require every function reachable from a lane-executed callback to stay lane-confined\n\n" +
		"Callbacks scheduled on a sim.ShardSet lane (via Lane.Send or a <lane>.Eng registrar)\n" +
		"and everything they transitively call must not touch another lane's state: no writes\n" +
		"to package-level variables or reads of mutated ones, no captured variables written by\n" +
		"callbacks scheduled across lanes, no writes/calls/mutable reads through a foreign-lane\n" +
		"struct, no peer pointers passed to parameter-writing helpers. Lane.Send is the single\n" +
		"blessed cross-lane hatch. Catches statically the captured-pointer sharing the simsan\n" +
		"committed-horizon check only detects probabilistically.",
	RunModule: run,
}

// rootSite is one lane-bound callback: the resolved node, a token
// identifying which lane the site binds to (two sites with the same
// token are the same lane), and whether the site can bind different
// lanes across executions (a loop over set.Lane(i), or any Send with a
// non-constant destination).
type rootSite struct {
	node  *framework.CGNode
	token string
	multi bool
}

func run(pass *framework.ModulePass) error {
	roots := collectRoots(pass)
	if len(roots) == 0 {
		return nil
	}
	df := framework.NewDataFlow(pass.Graph)
	affine := collectAffineTypes(pass)
	mutatedPkg := framework.CollectMutatedPkgVars(pass.Fset, pass.Pkgs)

	nodes := make([]*framework.CGNode, 0, len(roots))
	haveNode := make(map[*framework.CGNode]bool)
	for _, r := range roots {
		if !haveNode[r.node] {
			haveNode[r.node] = true
			nodes = append(nodes, r.node)
		}
	}
	seen := pass.Graph.Reach(nodes)

	reachable := make([]*framework.CGNode, 0, len(seen))
	for n := range seen {
		reachable = append(reachable, n)
	}
	sort.Slice(reachable, func(i, j int) bool { return reachable[i].Pos() < reachable[j].Pos() })

	// Fields some lane-reachable function writes: reading one of these
	// through a peer pointer observes another lane's in-flight state.
	laneMutable := make(map[*types.Var]bool)
	for _, n := range reachable {
		if s := df.Summary(n); s != nil {
			for f := range s.FieldWrites {
				laneMutable[f] = true
			}
		}
	}

	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}

	checkSharedCaptures(pass, df, roots, report)

	for _, node := range reachable {
		chain := strings.Join(framework.Chain(seen, node), " -> ")
		checkPackageState(df, node, mutatedPkg, chain, report)
		checkPeerAccess(pass, df, node, affine, laneMutable, chain, report)
	}
	return nil
}

// collectRoots finds every lane-bound callback registration in non-test
// files and resolves the callback to call-graph nodes (through
// function-typed variables and fields, so `c.tickFn = c.tick; ...
// Schedule(d, c.tickFn)` roots the method).
func collectRoots(pass *framework.ModulePass) []rootSite {
	var roots []rootSite
	type key struct {
		node  *framework.CGNode
		token string
		multi bool
	}
	have := make(map[key]bool)
	add := func(info *types.Info, cb ast.Expr, token string, multi bool) {
		for _, node := range pass.Graph.NodesForValue(info, cb) {
			k := key{node, token, multi}
			if !have[k] {
				have[k] = true
				roots = append(roots, rootSite{node: node, token: token, multi: multi})
			}
		}
	}
	for _, pkg := range pass.Pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			if framework.IsTestFileName(pass.Fset, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok {
					return true
				}
				cb := call.Args[len(call.Args)-1]
				switch {
				case fn.FullName() == sendMethod:
					// The callback runs on the destination lane — a
					// different lane from any `.Eng` site's, so each Send
					// site is its own token; a non-constant destination
					// may be a different lane each execution.
					add(info, cb, "send@"+pass.Fset.Position(call.Pos()).String(),
						!isConstExpr(info, call.Args[0]))
				case laneRegistrars[fn.FullName()]:
					recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
					if !ok || recv.Sel.Name != "Eng" || !isLaneExpr(info, recv.X) {
						return true
					}
					lane := ast.Unparen(recv.X)
					add(info, cb, types.ExprString(lane), isLaneVarying(info, lane))
				}
				return true
			})
		}
	}
	return roots
}

// isLaneExpr reports whether e has type sim.Lane or *sim.Lane.
func isLaneExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Lane" && obj.Pkg() != nil && obj.Pkg().Path() == lanePkg
}

// isLaneVarying reports whether a lane expression can denote different
// lanes across executions of its site: it contains a call or index with
// a non-constant operand (set.Lane(i) in a loop; lanes[i]). Plain
// ident/selector chains (l, c.lane) and constant lookups (set.Lane(0))
// are stable.
func isLaneVarying(info *types.Info, e ast.Expr) bool {
	varying := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			for _, a := range x.Args {
				if !isConstExpr(info, a) {
					varying = true
				}
			}
		case *ast.IndexExpr:
			if !isConstExpr(info, x.Index) {
				varying = true
			}
		}
		return !varying
	})
	return varying
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// collectAffineTypes returns the named struct types that carry a direct
// (*)sim.Lane field — the types whose values belong to one lane.
func collectAffineTypes(pass *framework.ModulePass) map[*types.TypeName]bool {
	affine := make(map[*types.TypeName]bool)
	for _, pkg := range pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				ft := st.Field(i).Type()
				if p, ok := ft.(*types.Pointer); ok {
					ft = p.Elem()
				}
				if named, ok := ft.(*types.Named); ok {
					obj := named.Obj()
					if obj.Name() == "Lane" && obj.Pkg() != nil && obj.Pkg().Path() == lanePkg {
						affine[tn] = true
						break
					}
				}
			}
		}
	}
	return affine
}

func isAffine(affine map[*types.TypeName]bool, t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return affine[named.Obj()]
}

// isPeerBase reports whether e denotes a lane-affine value reached
// through a field or element step — i.e. not the function's own
// receiver/parameter/local, but a *different* lane's struct (c.dest,
// peers[i]).
func isPeerBase(info *types.Info, affine map[*types.TypeName]bool, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return isAffine(affine, info.TypeOf(e))
	}
	return false
}

// peerBaseIn unwraps an lvalue-ish expression and returns the first
// foreign-lane base crossed on the way to its root, or nil.
func peerBaseIn(info *types.Info, affine map[*types.TypeName]bool, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if isPeerBase(info, affine, x.X) {
				return x.X
			}
			e = x.X
		case *ast.IndexExpr:
			if isPeerBase(info, affine, x.X) {
				return x.X
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkSharedCaptures enforces rule 2: a captured variable written by a
// lane callback whose site binds more than one lane — or that is
// visible to callbacks bound to distinct lanes — is shared mutable
// state the horizon check cannot see. Each root's reachable closure
// nodes inherit the root's lane token, so writes laundered through a
// helper closure are attributed to the scheduling site.
func checkSharedCaptures(pass *framework.ModulePass, df *framework.DataFlow,
	roots []rootSite, report func(token.Pos, string, ...any)) {
	type capRec struct {
		tokens map[string]bool
		multi  bool
		writes []token.Pos
	}
	recs := make(map[*types.Var]*capRec)
	order := []*types.Var{}
	get := func(v *types.Var) *capRec {
		r := recs[v]
		if r == nil {
			r = &capRec{tokens: make(map[string]bool)}
			recs[v] = r
			order = append(order, v)
		}
		return r
	}
	for _, root := range roots {
		reach := pass.Graph.Reach([]*framework.CGNode{root.node})
		lits := make([]*framework.CGNode, 0, len(reach))
		for n := range reach {
			if n.Lit != nil { // named functions have no captured variables
				lits = append(lits, n)
			}
		}
		sort.Slice(lits, func(i, j int) bool { return lits[i].Pos() < lits[j].Pos() })
		for _, n := range lits {
			s := df.Summary(n)
			if s == nil {
				continue
			}
			for _, v := range s.Free {
				r := get(v)
				r.tokens[root.token] = true
				if root.multi {
					r.multi = true
				}
			}
			written := make([]*types.Var, 0, len(s.FreeWrites))
			for v := range s.FreeWrites {
				written = append(written, v)
			}
			sort.Slice(written, func(i, j int) bool { return written[i].Pos() < written[j].Pos() })
			for _, v := range written {
				get(v).writes = append(get(v).writes, s.FreeWrites[v])
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Pos() < order[j].Pos() })
	for _, v := range order {
		r := recs[v]
		if len(r.writes) == 0 || (!r.multi && len(r.tokens) <= 1) {
			continue
		}
		sort.Slice(r.writes, func(i, j int) bool { return r.writes[i] < r.writes[j] })
		why := "callbacks on distinct lanes share it"
		if r.multi {
			why = "its callback is scheduled on a varying lane"
		}
		for _, pos := range r.writes {
			report(pos, "captured variable %s is written by a lane callback but %s: cross-lane state must flow through Lane.Send",
				v.Name(), why)
		}
	}
}

// checkPackageState enforces rule 1 from the node's dataflow summary:
// no package-level writes, no reads of module-mutated package state.
func checkPackageState(df *framework.DataFlow, node *framework.CGNode,
	mutatedPkg map[*types.Var]bool, chain string, report func(token.Pos, string, ...any)) {
	s := df.Summary(node)
	if s == nil {
		return
	}
	type hit struct {
		pos token.Pos
		v   *types.Var
	}
	sorted := func(m map[*types.Var]token.Pos, filter func(*types.Var) bool) []hit {
		var hs []hit
		for v, pos := range m {
			if filter == nil || filter(v) {
				hs = append(hs, hit{pos, v})
			}
		}
		sort.Slice(hs, func(i, j int) bool { return hs[i].pos < hs[j].pos })
		return hs
	}
	for _, h := range sorted(s.PkgWrites, nil) {
		report(h.pos, "write to package-level %s reachable from lane callback (%s): lanes must not share mutable package state",
			h.v.Name(), chain)
	}
	for _, h := range sorted(s.PkgReads, func(v *types.Var) bool { return mutatedPkg[v] }) {
		report(h.pos, "read of mutated package-level %s reachable from lane callback (%s): another lane may be writing it",
			h.v.Name(), chain)
	}
}

// checkPeerAccess enforces rules 3 and 4 by walking the node body:
// writes through a foreign-lane base, method calls on one, reads of
// lane-mutable fields through one, and peer pointers passed to
// parameter-writing callees.
func checkPeerAccess(pass *framework.ModulePass, df *framework.DataFlow,
	node *framework.CGNode, affine map[*types.TypeName]bool,
	laneMutable map[*types.Var]bool, chain string, report func(token.Pos, string, ...any)) {
	body := node.Body()
	if body == nil {
		return
	}
	info := node.Pkg.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if pass.Graph.Lits[x] != nil {
				return false // its own node; checked if reachable
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if peerBaseIn(info, affine, lhs) != nil {
					report(x.Pos(), "write to foreign-lane state %s reachable from lane callback (%s): cross-lane mutation must go through Lane.Send",
						types.ExprString(lhs), chain)
				}
			}
		case *ast.IncDecStmt:
			if peerBaseIn(info, affine, x.X) != nil {
				report(x.Pos(), "write to foreign-lane state %s reachable from lane callback (%s): cross-lane mutation must go through Lane.Send",
					types.ExprString(x.X), chain)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && peerBaseIn(info, affine, x.X) != nil {
				report(x.Pos(), "address of foreign-lane state %s escapes a lane callback (%s): cross-lane mutation must go through Lane.Send",
					types.ExprString(x.X), chain)
			}
		case *ast.CallExpr:
			base := 0
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if s2, ok := info.Selections[sel]; ok && s2.Kind() == types.MethodVal {
					base = 1
					if isPeerBase(info, affine, sel.X) {
						report(x.Pos(), "call to %s on foreign-lane %s reachable from lane callback (%s): cross-lane interaction must go through Lane.Send",
							sel.Sel.Name, types.ExprString(sel.X), chain)
					}
				}
			}
			callees := pass.Graph.NodesForValue(info, x.Fun)
			for i, arg := range x.Args {
				if !isPeerBase(info, affine, arg) {
					continue
				}
				for _, callee := range callees {
					if df.ParamWritten(callee, base+i) {
						report(arg.Pos(), "foreign-lane %s passed to %s, which writes through it (%s): cross-lane mutation must go through Lane.Send",
							types.ExprString(arg), callee.Name(), chain)
						break
					}
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if f, ok := sel.Obj().(*types.Var); ok && laneMutable[f] && isPeerBase(info, affine, x.X) {
					report(x.Pos(), "read of lane-mutable field %s through foreign-lane %s (%s): another lane may be writing it",
						f.Name(), types.ExprString(x.X), chain)
				}
			}
		}
		return true
	})
}
