// Package analysistest runs framework analyzers over fixture packages
// under testdata/src and checks their diagnostics against `// want`
// expectations, in the style of golang.org/x/tools/go/analysis/
// analysistest.
//
// A fixture line that should be flagged carries a comment of the form
//
//	m[k] = v // want `map order`
//
// where each backquoted string is a regular expression that must match
// the message of exactly one diagnostic reported on that line. Lines
// without a want comment must produce no diagnostics. Because fixtures
// run through the same pipeline as the real driver (framework.
// RunPackage), `//simlint:allow` suppression directives are honored,
// so a fixture can assert both that a rule fires and that its escape
// hatch works.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"repro/internal/analysis/framework"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")
var wantArgRe = regexp.MustCompile("`([^`]*)`")

// TestData returns the absolute path of the calling package's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Run loads each fixture package testdata/src/<path>, analyzes it with
// the given analyzers, and reports mismatches between diagnostics and
// `// want` expectations as test errors.
func Run(t *testing.T, testdata string, analyzers []*framework.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		path := path
		t.Run(path, func(t *testing.T) {
			t.Helper()
			dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
			loader, err := framework.NewLoader(dir)
			if err != nil {
				t.Fatal(err)
			}
			loader.IncludeTests = true
			pkg, err := loader.LoadDirAs(dir, path)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := framework.RunPackage(pkg, analyzers)
			if err != nil {
				t.Fatal(err)
			}
			check(t, pkg, diags)
		})
	}
}

// RunModule loads every fixture package testdata/src/<path> into one
// shared Loader (so cross-fixture imports resolve to the same
// type-checker universe), analyzes the whole set with the given
// analyzers — including module (RunModule) analyzers, which see the
// full call graph across the fixtures — and checks `// want`
// expectations across all of them at once. Fixtures may import each
// other by their fictional paths: every path is registered as a loader
// overlay before any package is loaded. Fixtures may also import real
// module packages (e.g. repro/internal/sim), which load from the
// actual tree.
func RunModule(t *testing.T, testdata string, analyzers []*framework.Analyzer, paths ...string) {
	t.Helper()
	if len(paths) == 0 {
		t.Fatal("analysistest.RunModule: no fixture paths given")
	}
	dirFor := func(path string) string {
		return filepath.Join(testdata, "src", filepath.FromSlash(path))
	}
	loader, err := framework.NewLoader(dirFor(paths[0]))
	if err != nil {
		t.Fatal(err)
	}
	loader.IncludeTests = true
	loader.Overlay = make(map[string]string, len(paths))
	for _, path := range paths {
		loader.Overlay[path] = dirFor(path)
	}
	var pkgs []*framework.Package
	for _, path := range paths {
		pkg, err := loader.LoadDirAs(dirFor(path), path)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := framework.AnalyzePackages(loader.Fset, pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	checkAll(t, loader.Fset, pkgs, diags)
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func check(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	checkAll(t, pkg.Fset, []*framework.Package{pkg}, diags)
}

// checkAll verifies diagnostics against the `// want` expectations of
// every given package at once. Diagnostics landing in files outside the
// given packages (e.g. a real module package a fixture imports) are
// reported as unexpected, like any unmatched diagnostic.
func checkAll(t *testing.T, fset *token.FileSet, pkgs []*framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	// Collect want expectations keyed by file:line.
	wants := make(map[string][]*expectation)
	key := func(pos token.Position) string {
		return pos.Filename + ":" + strconv.Itoa(pos.Line)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					args := wantArgRe.FindAllStringSubmatch(m[1], -1)
					if len(args) == 0 {
						t.Errorf("%s: malformed want comment (expectations must be `backquoted` regexps): %s",
							fset.Position(c.Pos()), c.Text)
						continue
					}
					k := key(fset.Position(c.Pos()))
					for _, a := range args {
						re, err := regexp.Compile(a[1])
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), a[1], err)
							continue
						}
						wants[k] = append(wants[k], &expectation{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key(pos)
		found := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s: no diagnostic matching %q", k, exp.re)
			}
		}
	}
}
