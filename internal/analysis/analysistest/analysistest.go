// Package analysistest runs framework analyzers over fixture packages
// under testdata/src and checks their diagnostics against `// want`
// expectations, in the style of golang.org/x/tools/go/analysis/
// analysistest.
//
// A fixture line that should be flagged carries a comment of the form
//
//	m[k] = v // want `map order`
//
// where each backquoted string is a regular expression that must match
// the message of exactly one diagnostic reported on that line. Lines
// without a want comment must produce no diagnostics. Because fixtures
// run through the same pipeline as the real driver (framework.
// RunPackage), `//simlint:allow` suppression directives are honored,
// so a fixture can assert both that a rule fires and that its escape
// hatch works.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"repro/internal/analysis/framework"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")
var wantArgRe = regexp.MustCompile("`([^`]*)`")

// TestData returns the absolute path of the calling package's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Run loads each fixture package testdata/src/<path>, analyzes it with
// the given analyzers, and reports mismatches between diagnostics and
// `// want` expectations as test errors.
func Run(t *testing.T, testdata string, analyzers []*framework.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		path := path
		t.Run(path, func(t *testing.T) {
			t.Helper()
			dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
			loader, err := framework.NewLoader(dir)
			if err != nil {
				t.Fatal(err)
			}
			loader.IncludeTests = true
			pkg, err := loader.LoadDirAs(dir, path)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := framework.RunPackage(pkg, analyzers)
			if err != nil {
				t.Fatal(err)
			}
			check(t, pkg, diags)
		})
	}
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func check(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	// Collect want expectations keyed by file:line.
	wants := make(map[string][]*expectation)
	key := func(pos token.Position) string {
		return pos.Filename + ":" + strconv.Itoa(pos.Line)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				args := wantArgRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Errorf("%s: malformed want comment (expectations must be `backquoted` regexps): %s",
						pkg.Fset.Position(c.Pos()), c.Text)
					continue
				}
				k := key(pkg.Fset.Position(c.Pos()))
				for _, a := range args {
					re, err := regexp.Compile(a[1])
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), a[1], err)
						continue
					}
					wants[k] = append(wants[k], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key(pos)
		found := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s: no diagnostic matching %q", k, exp.re)
			}
		}
	}
}
