// Package framework is a self-contained analysis driver modelled on
// golang.org/x/tools/go/analysis, built only from the standard library
// so the repository stays dependency-free (the container this project
// grows in has no module proxy). It provides the Analyzer/Pass/
// Diagnostic vocabulary, a module-aware package loader, the
// `//simlint:allow` suppression directive, a standalone multichecker
// driver, and the `go vet -vettool` compilation-unit protocol.
//
// The API shapes match x/tools closely enough that the analyzers in
// sibling packages could be ported to the real framework by changing
// imports, should a vendored copy of x/tools ever become available.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one analysis rule and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//simlint:allow <name> <reason>` suppression directives.
	// It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph documentation shown by `simlint -list`.
	Doc string

	// Run applies the analyzer to one package and reports diagnostics
	// via pass.Report / pass.Reportf. Exactly one of Run and RunModule
	// must be set.
	Run func(*Pass) error

	// RunModule applies the analyzer to the whole set of loaded
	// packages at once, with a module-wide call graph. Module analyzers
	// run only under the standalone driver (and analysistest): the
	// `go vet -vettool` protocol hands tools one compilation unit at a
	// time with export data instead of dependency syntax, so there is
	// nothing cross-package to traverse there.
	RunModule func(*ModulePass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // syntax trees, comments included
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a diagnostic. The driver installs it; analyzers
	// must not replace it.
	Report func(Diagnostic)
}

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A ModulePass provides one module analyzer run with every loaded
// package and the call graph over them.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkgs are the analyzed packages, sorted by import path.
	Pkgs []*Package
	// Graph is the call graph over Pkgs.
	Graph *CallGraph

	// Report records a diagnostic. The driver installs it; analyzers
	// must not replace it.
	Report func(Diagnostic)
}

// Reportf records a diagnostic at pos with a formatted message.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, tied to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver

	// Fixes are machine-applicable rewrites that resolve the finding,
	// surfaced in SARIF as the result's fixes property. Optional; a fix
	// must be value-preserving (applying it may not change program
	// behavior, only make the intent explicit) or the analyzer should
	// not offer one.
	Fixes []SuggestedFix
}

// A SuggestedFix is one machine-applicable rewrite for a diagnostic.
type SuggestedFix struct {
	// Message describes the rewrite ("wrap in sim.Nanosecond", "iterate
	// keys in sorted order").
	Message string
	// Edits are the text replacements, non-overlapping, in source order.
	Edits []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText.
// Pos == End inserts before Pos; NewText == "" deletes the range.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Normalize returns the analyzers sorted by name with duplicates (by
// name) removed, keeping the first registration. Every driver entry
// point (standalone Run, VetMain, the SARIF exporter) normalizes its
// analyzer list, so registering an analyzer twice — easy to do when a
// list is assembled from several packages — cannot double-report
// findings or flip output order between entry points.
func Normalize(analyzers []*Analyzer) []*Analyzer {
	seen := make(map[string]bool, len(analyzers))
	out := make([]*Analyzer, 0, len(analyzers))
	for _, a := range analyzers {
		if a == nil || seen[a.Name] {
			continue
		}
		seen[a.Name] = true
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sortDiagnostics orders diagnostics by position for stable output —
// the driver's own output has to be deterministic too.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) func(i, j int) bool {
	return func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	}
}
