package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the framework's lightweight intraprocedural dataflow
// layer: per-function def/use chains, escape-of-reference tracking, and
// composable summaries over the module call graph. It is deliberately
// flow-insensitive (sets, not paths) — precise enough to prove the
// engine hot path allocation-free and lane callbacks confined, cheap
// enough to run on every lint. Module analyzers (hotalloc, shardsafe)
// build on it; the per-function summaries are computed once per
// DataFlow and shared.

// EscapeReason classifies why a local variable's storage or value may
// outlive (or leave) its frame. Reasons are ordered by severity for
// the allocation question: AddrTaken and Captured force the variable
// itself onto the heap; Boxed heap-allocates a copy of its value;
// Stored copies the value into memory the frame does not own.
type EscapeReason uint8

const (
	// EscNone: the variable provably stays in its frame.
	EscNone EscapeReason = iota
	// EscStored: the value is copied into non-local memory (a field,
	// an element, or a package-level variable).
	EscStored
	// EscBoxed: the value is converted to an interface somewhere, which
	// heap-allocates a copy for non-pointer-shaped types.
	EscBoxed
	// EscCaptured: an enclosed function literal references the
	// variable, so it is allocated on the heap with the closure.
	EscCaptured
	// EscAddrTaken: the variable's address is taken; its storage must
	// assume the pointer outlives the frame.
	EscAddrTaken
)

func (r EscapeReason) String() string {
	switch r {
	case EscNone:
		return "none"
	case EscStored:
		return "stored"
	case EscBoxed:
		return "boxed"
	case EscCaptured:
		return "captured"
	case EscAddrTaken:
		return "address-taken"
	}
	return "?"
}

// A FuncSummary is the intraprocedural dataflow summary of one
// call-graph node: def/use chains for its variables, which locals
// escape and why, which struct fields / package variables / captured
// variables it writes, and which parameters it writes *through*
// (mutating memory the caller handed it). Nested function literals are
// not part of their encloser's summary — they have their own nodes —
// except that capturing an encloser local marks that local EscCaptured.
type FuncSummary struct {
	Node *CGNode

	// Defs and Uses are the def/use chains: for every variable the
	// function touches, the positions where it is (re)defined and where
	// its value is read, in source order.
	Defs map[*types.Var][]token.Pos
	Uses map[*types.Var][]token.Pos

	// Escapes records, for locals (including parameters), the strongest
	// reason their storage or value may leave the frame.
	Escapes map[*types.Var]EscapeReason

	// Free lists captured variables — referenced here, declared in an
	// enclosing function — in first-use order.
	Free []*types.Var
	// FreeWrites are captured variables this function writes, directly
	// or through (first write site). Transitive: passing a captured
	// variable to a callee that writes through that parameter counts.
	FreeWrites map[*types.Var]token.Pos

	// FieldWrites are struct fields assigned anywhere in the function
	// (v.f = x, v.f++, x.y.f = ...), keyed by the field object.
	FieldWrites map[*types.Var]token.Pos

	// PkgWrites and PkgReads are package-level variables written
	// (directly or through) and read.
	PkgWrites map[*types.Var]token.Pos
	PkgReads  map[*types.Var]token.Pos

	// paramWrites are receiver/parameters written through (p.f = x,
	// *p = x, p[i] = x — not plain reassignment of the parameter).
	// Query via DataFlow.ParamWritten, which composes transitively.
	paramWrites map[*types.Var]token.Pos

	// calls records resolvable call sites whose arguments are rooted at
	// this function's parameters or captures, for transitive
	// composition (DataFlow.compose).
	calls []summaryCall
}

// summaryCall is one resolvable call site: the candidate callees and,
// for each callee parameter index, the caller variable the argument is
// rooted at (parameters and captures only).
type summaryCall struct {
	callees  []*CGNode
	argRoots map[int]*types.Var
	pos      token.Pos
}

// Params returns the function's receiver (if any) followed by its
// parameters — the index space used by ParamWritten.
func (s *FuncSummary) Params() []*types.Var {
	return paramsOf(s.Node)
}

func paramsOf(n *CGNode) []*types.Var {
	sig := signatureOf(n)
	if sig == nil {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// Signature returns the node's function signature (nil only when type
// information is incomplete).
func (n *CGNode) Signature() *types.Signature { return signatureOf(n) }

func signatureOf(n *CGNode) *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	if t := n.Pkg.TypesInfo.TypeOf(n.Lit); t != nil {
		sig, _ := t.(*types.Signature)
		return sig
	}
	return nil
}

// A DataFlow holds the per-function summaries for one call graph and
// the transitive facts composed over it. Build once per module pass.
type DataFlow struct {
	Graph *CallGraph
	Sums  map[*CGNode]*FuncSummary
}

// NewDataFlow summarizes every node in the graph and composes the
// transitive parameter-write and capture-write facts to a fixpoint.
func NewDataFlow(g *CallGraph) *DataFlow {
	df := &DataFlow{Graph: g, Sums: make(map[*CGNode]*FuncSummary)}
	for _, n := range g.Funcs {
		df.Sums[n] = summarize(g, n)
	}
	for _, n := range g.Lits {
		df.Sums[n] = summarize(g, n)
	}
	df.compose()
	return df
}

// Summary returns the summary for a node (nil for unknown nodes).
func (d *DataFlow) Summary(n *CGNode) *FuncSummary { return d.Sums[n] }

// ParamWritten reports whether the function writes through its i-th
// parameter (receiver first), directly or via any callee it forwards
// the parameter to.
func (d *DataFlow) ParamWritten(n *CGNode, i int) bool {
	s := d.Sums[n]
	if s == nil {
		return false
	}
	ps := paramsOf(n)
	if i < 0 || i >= len(ps) {
		return false
	}
	_, ok := s.paramWrites[ps[i]]
	return ok
}

// compose propagates writes-through facts across calls to a fixpoint:
// if f passes parameter p (or capture c) as callee argument k and the
// callee writes through its k-th parameter, then f writes through p
// (or writes c).
func (d *DataFlow) compose() {
	for changed := true; changed; {
		changed = false
		for _, s := range d.Sums {
			params := make(map[*types.Var]bool)
			for _, p := range paramsOf(s.Node) {
				params[p] = true
			}
			for _, c := range s.calls {
				for _, callee := range c.callees {
					cs := d.Sums[callee]
					if cs == nil {
						continue
					}
					cps := paramsOf(callee)
					for k, root := range c.argRoots {
						if k >= len(cps) {
							k = len(cps) - 1 // variadic tail
						}
						if k < 0 {
							continue
						}
						if _, ok := cs.paramWrites[cps[k]]; !ok {
							continue
						}
						switch {
						case params[root]:
							if _, ok := s.paramWrites[root]; !ok {
								s.paramWrites[root] = c.pos
								changed = true
							}
						default:
							if _, ok := s.FreeWrites[root]; !ok && containsVar(s.Free, root) {
								s.FreeWrites[root] = c.pos
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

func containsVar(vs []*types.Var, v *types.Var) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// VarKind classifies a variable relative to a node.
type VarKind int

const (
	VarLocal VarKind = iota // declared in this function (incl. params)
	VarFree                 // declared in an enclosing function
	VarPkg                  // package-level
)

func ClassifyVar(n *CGNode, v *types.Var) VarKind {
	if IsPkgLevel(v) {
		return VarPkg
	}
	var lo, hi token.Pos
	if n.Lit != nil {
		lo, hi = n.Lit.Pos(), n.Lit.End()
	} else {
		lo, hi = n.Dcl.Pos(), n.Dcl.End()
	}
	if v.Pos() >= lo && v.Pos() < hi {
		return VarLocal
	}
	return VarFree
}

// rootOf unwraps an lvalue-ish expression to its root variable and
// reports whether any selector/index/deref was crossed on the way
// (i.e. the write goes *through* the root rather than reassigning it).
// The last field crossed, if any, is returned too.
func RootOf(info *types.Info, e ast.Expr) (root *types.Var, through bool, field *types.Var) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v, through, field
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v, through, field
			}
			return nil, false, nil
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok {
				if f, ok := sel.Obj().(*types.Var); ok && f.IsField() {
					if field == nil {
						field = f
					}
					through = true
					e = x.X
					continue
				}
			}
			// Package-qualified name (pkg.Var): the root is the var.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					if v, ok := info.Uses[x.Sel].(*types.Var); ok {
						return v, through, field
					}
				}
			}
			return nil, false, nil
		case *ast.IndexExpr:
			through = true
			e = x.X
		case *ast.StarExpr:
			through = true
			e = x.X
		default:
			return nil, false, nil
		}
	}
}

// summarize computes the intraprocedural summary of one node. Nested
// literal bodies are excluded (they have their own nodes) except for a
// capture scan that marks encloser locals EscCaptured.
func summarize(g *CallGraph, n *CGNode) *FuncSummary {
	info := n.Pkg.TypesInfo
	s := &FuncSummary{
		Node:        n,
		Defs:        make(map[*types.Var][]token.Pos),
		Uses:        make(map[*types.Var][]token.Pos),
		Escapes:     make(map[*types.Var]EscapeReason),
		FreeWrites:  make(map[*types.Var]token.Pos),
		FieldWrites: make(map[*types.Var]token.Pos),
		PkgWrites:   make(map[*types.Var]token.Pos),
		PkgReads:    make(map[*types.Var]token.Pos),
		paramWrites: make(map[*types.Var]token.Pos),
	}
	body := n.Body()
	if body == nil {
		return s
	}

	escalate := func(v *types.Var, r EscapeReason) {
		if r > s.Escapes[v] {
			s.Escapes[v] = r
		}
	}
	seenFree := make(map[*types.Var]bool)
	noteFree := func(v *types.Var) {
		if !seenFree[v] {
			seenFree[v] = true
			s.Free = append(s.Free, v)
		}
	}
	write := func(lhs ast.Expr, pos token.Pos) {
		root, through, field := RootOf(info, lhs)
		if field != nil {
			if _, ok := s.FieldWrites[field]; !ok {
				s.FieldWrites[field] = pos
			}
		}
		if root == nil {
			return
		}
		switch ClassifyVar(n, root) {
		case VarPkg:
			if _, ok := s.PkgWrites[root]; !ok {
				s.PkgWrites[root] = pos
			}
		case VarFree:
			noteFree(root)
			if _, ok := s.FreeWrites[root]; !ok {
				s.FreeWrites[root] = pos
			}
		case VarLocal:
			if through {
				if _, ok := s.paramWrites[root]; !ok && containsVar(paramsOf(n), root) {
					s.paramWrites[root] = pos
				}
			} else {
				s.Defs[root] = append(s.Defs[root], pos)
			}
		}
	}

	// Plain-identifier assignment targets are definitions, not reads:
	// collect them first so the Ident case below does not count `v` in
	// `v = 1` (or a package var in `g = 1`) as a use.
	lhsRoots := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(node ast.Node) bool {
		if node == nil {
			return false
		}
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if as, ok := node.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					lhsRoots[id] = true
				}
			}
		}
		return true
	})

	// Pass 1: defs, writes, escapes, calls — skipping nested literals.
	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false // its own node; capture scan below
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				write(lhs, x.Pos())
			}
			// Boxing through assignment: concrete RHS into interface LHS.
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Rhs {
					if lt := info.TypeOf(x.Lhs[i]); Boxes(lt, info.TypeOf(x.Rhs[i])) {
						if v, _, _ := RootOf(info, x.Rhs[i]); v != nil && ClassifyVar(n, v) == VarLocal {
							escalate(v, EscBoxed)
						}
					}
				}
			}
			// Storing a local's value beyond the frame.
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				root, through, _ := RootOf(info, lhs)
				nonLocal := root == nil || ClassifyVar(n, root) != VarLocal || through
				if !nonLocal {
					continue
				}
				if v, vThrough, _ := RootOf(info, x.Rhs[i]); v != nil && !vThrough && ClassifyVar(n, v) == VarLocal {
					escalate(v, EscStored)
				}
			}
		case *ast.IncDecStmt:
			write(x.X, x.Pos())
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if v, through, _ := RootOf(info, x.X); v != nil && !through {
					switch ClassifyVar(n, v) {
					case VarLocal:
						escalate(v, EscAddrTaken)
					case VarFree:
						noteFree(v)
						if _, ok := s.FreeWrites[v]; !ok {
							s.FreeWrites[v] = x.Pos()
						}
					case VarPkg:
						if _, ok := s.PkgWrites[v]; !ok {
							s.PkgWrites[v] = x.Pos()
						}
					}
				}
			}
		case *ast.CallExpr:
			s.recordCall(g, info, n, x)
			// Boxing through a call: concrete argument, interface param.
			ForEachBoxedArg(info, x, func(arg ast.Expr, _ types.Type) {
				if v, _, _ := RootOf(info, arg); v != nil && ClassifyVar(n, v) == VarLocal {
					escalate(v, EscBoxed)
				}
			})
		case *ast.Ident:
			if lhsRoots[x] {
				return true
			}
			if v, ok := info.Uses[x].(*types.Var); ok {
				switch ClassifyVar(n, v) {
				case VarPkg:
					if _, ok := s.PkgReads[v]; !ok {
						s.PkgReads[v] = x.Pos()
					}
				case VarFree:
					noteFree(v)
				}
				s.Uses[v] = append(s.Uses[v], x.Pos())
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				s.Defs[v] = append(s.Defs[v], x.Pos())
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	// Pass 2: capture scan — locals referenced by nested literals are
	// heap-allocated with the closure.
	ast.Inspect(body, func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			id, ok := inner.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := info.Uses[id].(*types.Var); ok {
				if v.Pos() < lit.Pos() && ClassifyVar(n, v) == VarLocal {
					escalate(v, EscCaptured)
				}
			}
			return true
		})
		return false // literal's own nested literals scanned by its node
	})

	for v := range s.Defs {
		sortPosList(s.Defs[v])
	}
	for v := range s.Uses {
		sortPosList(s.Uses[v])
	}
	return s
}

func sortPosList(ps []token.Pos) {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
}

// recordCall notes a resolvable call whose arguments are rooted at
// parameters or captures, for transitive composition.
func (s *FuncSummary) recordCall(g *CallGraph, info *types.Info, n *CGNode, call *ast.CallExpr) {
	callees := g.NodesForValue(info, call.Fun)
	if len(callees) == 0 {
		return
	}
	params := make(map[*types.Var]bool)
	for _, p := range paramsOf(n) {
		params[p] = true
	}
	interesting := func(v *types.Var) bool {
		if v == nil {
			return false
		}
		return params[v] || ClassifyVar(n, v) == VarFree
	}
	roots := make(map[int]*types.Var)
	base := 0
	// A method call forwards its receiver as parameter 0.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s2, ok := info.Selections[sel]; ok && s2.Kind() == types.MethodVal {
			base = 1
			if v, _, _ := RootOf(info, sel.X); interesting(v) {
				roots[0] = v
			}
		}
	}
	for i, arg := range call.Args {
		if v, _, _ := RootOf(info, arg); interesting(v) {
			roots[base+i] = v
		}
	}
	if len(roots) == 0 {
		return
	}
	idxs := make([]int, 0, len(roots))
	for k := range roots {
		idxs = append(idxs, k)
	}
	sort.Ints(idxs)
	for _, k := range idxs {
		if v := roots[k]; v != nil && !params[v] {
			// Ensure captures passed onward appear in Free.
			if !containsVar(s.Free, v) {
				s.Free = append(s.Free, v)
			}
		}
	}
	s.calls = append(s.calls, summaryCall{callees: callees, argRoots: roots, pos: call.Pos()})
}

// boxes reports whether assigning a value of type `from` to a location
// of type `to` heap-allocates a copy: `to` is an interface, `from` is a
// concrete type that is not pointer-shaped (pointers, channels, maps,
// funcs and unsafe pointers fit in the interface word directly).
func Boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if !types.IsInterface(to) || types.IsInterface(from) {
		return false
	}
	if b, ok := from.(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		if b.Kind() == types.UntypedNil {
			return false
		}
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if from.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// ForEachBoxedArg calls f for every argument of call whose value is
// boxed into an interface parameter, including variadic ...interface{}
// tails. Conversions (type-as-function calls) count when the target
// type is an interface.
func ForEachBoxedArg(info *types.Info, call *ast.CallExpr, f func(arg ast.Expr, param types.Type)) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x): boxing iff T is an interface.
		for _, arg := range call.Args {
			if Boxes(tv.Type, info.TypeOf(arg)) {
				f(arg, tv.Type)
			}
		}
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if i < sig.Params().Len()-1 || !sig.Variadic() {
			if i >= sig.Params().Len() {
				break
			}
			pt = sig.Params().At(i).Type()
		} else {
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			} else {
				pt = last
			}
			if call.Ellipsis.IsValid() {
				pt = last // s... passes the slice itself; no boxing
			}
		}
		if Boxes(pt, info.TypeOf(arg)) {
			f(arg, pt)
		}
	}
}

// CollectMutatedPkgVars returns every package-level variable some
// non-test file in the analyzed set assigns, increments, or takes the
// address of. Package-level initializers are declarations, not
// mutations, and do not count. Shared by the purity and shardsafe
// analyzers' mutated-read rules.
func CollectMutatedPkgVars(fset *token.FileSet, pkgs []*Package) map[*types.Var]bool {
	mutated := make(map[*types.Var]bool)
	for _, pkg := range pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			if IsTestFileName(fset, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if _, v := RootPkgVar(info, lhs); v != nil {
							mutated[v] = true
						}
					}
				case *ast.IncDecStmt:
					if _, v := RootPkgVar(info, n.X); v != nil {
						mutated[v] = true
					}
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						if _, v := RootPkgVar(info, n.X); v != nil {
							mutated[v] = true
						}
					}
				}
				return true
			})
		}
	}
	return mutated
}
