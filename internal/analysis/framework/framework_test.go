package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestPathHasSegments(t *testing.T) {
	cases := []struct {
		path, pattern string
		want          bool
	}{
		{"repro/internal/sim", "internal/sim", true},
		{"repro/internal/sim/sub", "internal/sim", true},
		{"internal/sim", "internal/sim", true},
		{"repro/internal/simulator", "internal/sim", false},
		{"repro/internal", "internal/sim", false},
		{"scratch/internal/kernel", "internal/kernel", true},
		{"repro/internal/runner", "internal/runner", true},
		{"repro", "internal/sim", false},
	}
	for _, c := range cases {
		if got := PathHasSegments(c.path, c.pattern); got != c.want {
			t.Errorf("PathHasSegments(%q, %q) = %v, want %v", c.path, c.pattern, got, c.want)
		}
	}
}

func TestExprString(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x", "x"},
		{"a.b.c", "a.b.c"},
		{"m[k]", "m[k]"},
		{"(x)", "x"},
		{"*p", "*p"},
		{"f()", ""},
	}
	for _, c := range cases {
		e, err := parser.ParseExpr(c.src)
		if err != nil {
			t.Fatal(err)
		}
		if got := ExprString(e); got != c.want {
			t.Errorf("ExprString(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestDirectives(t *testing.T) {
	src := `package p

func a() {
	//simlint:allow maporder order is irrelevant here
	_ = 1
}

func b() {
	//simlint:allow maporder
	_ = 2
}

func c() {
	//simlint:allow
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs, bad := parseDirectives(fset, []*ast.File{f})
	if len(bad) != 2 {
		t.Fatalf("got %d malformed-directive diagnostics, want 2: %v", len(bad), bad)
	}
	if len(dirs["fixture.go"]) != 1 {
		t.Fatalf("got %d valid directives, want 1", len(dirs["fixture.go"]))
	}
	d := dirs["fixture.go"][0]
	if d.analyzer != "maporder" || d.reason != "order is irrelevant here" {
		t.Errorf("directive = %+v", d)
	}

	// The valid directive covers its own line and the line below.
	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	if !suppressed(dirs, fset, "maporder", pos(d.line)) {
		t.Error("directive does not suppress its own line")
	}
	if !suppressed(dirs, fset, "maporder", pos(d.line+1)) {
		t.Error("directive does not suppress the next line")
	}
	if suppressed(dirs, fset, "maporder", pos(d.line+2)) {
		t.Error("directive suppresses two lines below")
	}
	if suppressed(dirs, fset, "seedderive", pos(d.line+1)) {
		t.Error("directive for maporder suppresses seedderive")
	}
}

func TestFileScopeDirective(t *testing.T) {
	src := `package p //simlint:allow hotalloc generated twin, audited 2026-08

func a() {
	_ = 1
}

func b() {
	_ = 2
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "scoped.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs, bad := parseDirectives(fset, []*ast.File{f})
	if len(bad) != 0 {
		t.Fatalf("malformed diagnostics: %v", bad)
	}
	if len(dirs["scoped.go"]) != 1 || !dirs["scoped.go"][0].fileScope {
		t.Fatalf("directive on the package clause line not marked file-scope: %+v", dirs["scoped.go"])
	}
	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	// File scope: every line of the file is covered, for that analyzer only.
	for _, line := range []int{1, 4, 8} {
		if !suppressed(dirs, fset, "hotalloc", pos(line)) {
			t.Errorf("file-scope directive does not suppress hotalloc at line %d", line)
		}
	}
	if suppressed(dirs, fset, "maporder", pos(4)) {
		t.Error("file-scope hotalloc directive suppresses a different analyzer")
	}

	// A directive below the package clause stays line-scoped.
	src2 := "package p\n\n//simlint:allow hotalloc local reason\nvar x = 1\n\nvar y = 2\n"
	f2, err := parser.ParseFile(fset, "line.go", src2, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs2, _ := parseDirectives(fset, []*ast.File{f2})
	if dirs2["line.go"][0].fileScope {
		t.Error("ordinary directive wrongly marked file-scope")
	}
	pos2 := func(line int) token.Pos {
		return fset.File(f2.Pos()).LineStart(line)
	}
	if suppressed(dirs2, fset, "hotalloc", pos2(6)) {
		t.Error("line-scoped directive suppresses a distant line")
	}
}

func TestModulePathAndLoader(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModPath != "repro" {
		t.Fatalf("module path = %q, want repro", loader.ModPath)
	}
	pkg, err := loader.LoadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "repro/internal/analysis/framework" {
		t.Errorf("import path = %q", pkg.Path)
	}
	if pkg.Types == nil || len(pkg.Files) == 0 {
		t.Error("package not type-checked")
	}
}

func TestExpandSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand(loader.ModRoot, []string{"./internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand included testdata dir %s", d)
		}
	}
	if len(dirs) < 5 {
		t.Errorf("Expand found only %d analysis packages: %v", len(dirs), dirs)
	}
}
