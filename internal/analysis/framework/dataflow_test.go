package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"testing"
)

const dfSrc = `package df

var G int
var H int

func ReadsG() int { return G }

func WritesG() { G = 1 }

func DefUse() int {
	x := 1
	x = 2
	y := x + x
	return y
}

func AddrTaken() *int {
	v := 0
	return &v
}

func Captured() func() int {
	n := 0
	return func() int { n++; return n }
}

type T struct{ a, b int }

func FieldWrite(t *T) {
	t.a = 1
	t.b++
}

func (t *T) Set() { t.a = 1 }

func ViaHelper(t *T) { FieldWrite(t) }

func CallsMethod(t *T) { t.Set() }

func ReadsParam(t *T) int { return t.a }

func Stored() {
	v := 3
	G = v
}

func take(any) {}

func Boxed() {
	v := 5
	take(v)
}

func bump(p *int) { *p++ }

func Outer() func() {
	p := new(int)
	return func() { bump(p) }
}

func Variadic(args ...any) {}

func CallsVariadic(t *T) {
	v := 1
	Variadic(v, t)
}
`

func buildDataFlow(t *testing.T) (*DataFlow, *CallGraph) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs := loadMemPkgs(t, fset, []memPkg{{"df", dfSrc}})
	g := BuildCallGraph(pkgs)
	return NewDataFlow(g), g
}

func sumOf(t *testing.T, df *DataFlow, g *CallGraph, name string) *FuncSummary {
	t.Helper()
	s := df.Summary(nodeByName(t, g, "df", name))
	if s == nil {
		t.Fatalf("no summary for %s", name)
	}
	return s
}

func varNamed(t *testing.T, m map[*types.Var][]token.Pos, name string) *types.Var {
	t.Helper()
	for v := range m {
		if v.Name() == name {
			return v
		}
	}
	t.Fatalf("no variable %q in map", name)
	return nil
}

func TestDataFlowDefUseChains(t *testing.T) {
	df, g := buildDataFlow(t)
	s := sumOf(t, df, g, "DefUse")
	x := varNamed(t, s.Defs, "x")
	if got := len(s.Defs[x]); got != 2 {
		t.Errorf("defs(x) = %d, want 2 (declaration + reassignment)", got)
	}
	if got := len(s.Uses[x]); got != 2 {
		t.Errorf("uses(x) = %d, want 2 (x + x)", got)
	}
	y := varNamed(t, s.Defs, "y")
	if len(s.Defs[y]) != 1 || len(s.Uses[y]) != 1 {
		t.Errorf("defs(y)=%d uses(y)=%d, want 1 and 1", len(s.Defs[y]), len(s.Uses[y]))
	}
	// Positions are sorted: the definition precedes every use.
	if s.Defs[x][0] >= s.Uses[x][0] {
		t.Error("first def of x does not precede its first use")
	}
}

func escapeOf(s *FuncSummary, name string) EscapeReason {
	for v, r := range s.Escapes {
		if v.Name() == name {
			return r
		}
	}
	return EscNone
}

func TestDataFlowEscapes(t *testing.T) {
	df, g := buildDataFlow(t)
	if got := escapeOf(sumOf(t, df, g, "AddrTaken"), "v"); got != EscAddrTaken {
		t.Errorf("AddrTaken v: escape = %v, want address-taken", got)
	}
	if got := escapeOf(sumOf(t, df, g, "Captured"), "n"); got != EscCaptured {
		t.Errorf("Captured n: escape = %v, want captured", got)
	}
	if got := escapeOf(sumOf(t, df, g, "Boxed"), "v"); got != EscBoxed {
		t.Errorf("Boxed v: escape = %v, want boxed", got)
	}
	if got := escapeOf(sumOf(t, df, g, "Stored"), "v"); got != EscStored {
		t.Errorf("Stored v: escape = %v, want stored", got)
	}
	if got := escapeOf(sumOf(t, df, g, "DefUse"), "x"); got != EscNone {
		t.Errorf("DefUse x: escape = %v, want none", got)
	}
}

func TestDataFlowFieldAndPackageWrites(t *testing.T) {
	df, g := buildDataFlow(t)
	fw := sumOf(t, df, g, "FieldWrite")
	var fields []string
	for f := range fw.FieldWrites {
		fields = append(fields, f.Name())
	}
	if len(fields) != 2 {
		t.Errorf("FieldWrite fields written = %v, want a and b", fields)
	}
	wg := sumOf(t, df, g, "WritesG")
	if len(wg.PkgWrites) != 1 || len(wg.PkgReads) != 0 {
		t.Errorf("WritesG: pkg writes=%d reads=%d, want 1 and 0 (LHS is not a read)", len(wg.PkgWrites), len(wg.PkgReads))
	}
	rg := sumOf(t, df, g, "ReadsG")
	if len(rg.PkgReads) != 1 || len(rg.PkgWrites) != 0 {
		t.Errorf("ReadsG: pkg reads=%d writes=%d, want 1 and 0", len(rg.PkgReads), len(rg.PkgWrites))
	}
}

func TestDataFlowParamWritten(t *testing.T) {
	df, g := buildDataFlow(t)
	cases := []struct {
		fn   string
		idx  int
		want bool
	}{
		{"FieldWrite", 0, true},  // direct field write through param
		{"Set", 0, true},         // receiver is index 0
		{"ViaHelper", 0, true},   // transitive through FieldWrite
		{"CallsMethod", 0, true}, // receiver forwarded to a mutating method
		{"bump", 0, true},        // write through dereference
		{"ReadsParam", 0, false}, // reads only
	}
	for _, c := range cases {
		n := nodeByName(t, g, "df", c.fn)
		if got := df.ParamWritten(n, c.idx); got != c.want {
			t.Errorf("ParamWritten(%s, %d) = %v, want %v", c.fn, c.idx, got, c.want)
		}
	}
}

func TestDataFlowFreeWritesTransitive(t *testing.T) {
	df, g := buildDataFlow(t)
	outer := nodeByName(t, g, "df", "Outer")
	var lit *CGNode
	for _, e := range outer.Out {
		if e.Kind == EdgeEncloses {
			lit = e.To
		}
	}
	if lit == nil {
		t.Fatal("Outer has no enclosed literal")
	}
	s := df.Summary(lit)
	if s == nil {
		t.Fatal("no summary for Outer's literal")
	}
	found := false
	for v := range s.FreeWrites {
		if v.Name() == "p" {
			found = true
		}
	}
	if !found {
		t.Error("literal passing captured p to bump (which writes *p) has no FreeWrite for p")
	}
	free := false
	for _, v := range s.Free {
		if v.Name() == "p" {
			free = true
		}
	}
	if !free {
		t.Error("p not recorded as a free variable of the literal")
	}
}

func TestForEachBoxedArg(t *testing.T) {
	df, g := buildDataFlow(t)
	n := nodeByName(t, g, "df", "CallsVariadic")
	info := n.Pkg.TypesInfo
	var boxed []string
	ast.Inspect(n.Body(), func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			ForEachBoxedArg(info, call, func(arg ast.Expr, _ types.Type) {
				boxed = append(boxed, ExprString(arg))
			})
		}
		return true
	})
	// v (an int) boxes into ...any; t (a pointer) is pointer-shaped and
	// does not allocate.
	if len(boxed) != 1 || boxed[0] != "v" {
		t.Errorf("boxed args in CallsVariadic = %v, want [v]", boxed)
	}
	_ = df
}

func TestCollectMutatedPkgVars(t *testing.T) {
	fset := token.NewFileSet()
	pkgs := loadMemPkgs(t, fset, []memPkg{{"df", dfSrc}})
	mutated := CollectMutatedPkgVars(fset, pkgs)
	names := map[string]bool{}
	for v := range mutated {
		names[v.Name()] = true
	}
	if !names["G"] || names["H"] {
		t.Errorf("mutated pkg vars = %v, want G only (H is never written)", names)
	}
}
