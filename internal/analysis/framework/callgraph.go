package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EdgeKind classifies a call-graph edge.
type EdgeKind int

const (
	// EdgeCall is a static call: f() or x.M() where the callee resolves
	// to a declared function or method.
	EdgeCall EdgeKind = iota
	// EdgeRef is a conservative edge: the function's value is
	// referenced outside call position (stored, passed, returned), so
	// it may be called later by whoever receives it.
	EdgeRef
	// EdgeEncloses links a function to a function literal defined in
	// its body. The literal usually escapes through whatever the
	// encloser does with it (schedules it, returns it), so reachability
	// treats definition as a potential call — conservative, like
	// EdgeRef.
	EdgeEncloses
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeRef:
		return "ref"
	case EdgeEncloses:
		return "encloses"
	}
	return "?"
}

// A CGNode is one function in the module call graph: a declared
// function or method (Fn != nil) or a function literal (Lit != nil).
// Only functions with bodies in the analyzed packages get nodes;
// calls out of the analyzed set (standard library, unanalyzed
// packages) are visible as edges with To == nil via scanning, but are
// not traversed.
type CGNode struct {
	Pkg *Package
	Fn  *types.Func   // declared function/method; nil for literals
	Lit *ast.FuncLit  // function literal; nil for declared functions
	Dcl *ast.FuncDecl // declaration syntax; nil for literals
	Out []CGEdge      // outgoing edges in source order
}

// Body returns the function's body block (nil only for bodyless
// declarations, which never get nodes).
func (n *CGNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Dcl.Body
}

// Pos returns the function's declaration position.
func (n *CGNode) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Dcl.Pos()
}

// Name returns a human-readable name: the declared name, or
// "func literal" for anonymous functions.
func (n *CGNode) Name() string {
	if n.Fn != nil {
		return n.Fn.Name()
	}
	return "func literal"
}

// A CGEdge is one outgoing call-graph edge.
type CGEdge struct {
	To   *CGNode
	Pos  token.Pos // the call or reference site
	Kind EdgeKind
}

// A CallGraph is the module-wide call graph over a set of loaded
// packages: static call edges, conservative referenced-function-value
// edges, and encloser→literal edges. It is the substrate for
// summary-based interprocedural analyses (RunModule analyzers).
type CallGraph struct {
	// Funcs maps declared functions and methods to their nodes.
	// Object identity works across packages because all packages in
	// one load share a single type-checker universe (one Loader).
	Funcs map[*types.Func]*CGNode
	// Lits maps function literals to their nodes.
	Lits map[*ast.FuncLit]*CGNode
	// FuncAssigns maps function-typed variables (and fields) to every
	// function node whose value is assigned to them anywhere in the
	// analyzed set — a flow-insensitive points-to set for function
	// values. Calls through such a variable get edges to every
	// candidate; so does resolving a variable passed as a callback.
	FuncAssigns map[*types.Var][]*CGNode
	// IfaceImpls maps each abstract interface method that is called
	// somewhere in the analyzed set to the concrete method nodes of
	// every named type in the set that implements the interface — the
	// class-hierarchy resolution behind interface call edges.
	IfaceImpls map[*types.Func][]*CGNode

	// pendingIface holds interface-method call sites until every node
	// exists (build-time state only).
	pendingIface []pendingIfaceCall
}

// pendingVarCall is a call through a function-typed variable recorded
// during body walking, resolved against FuncAssigns once every
// assignment has been seen.
type pendingVarCall struct {
	from *CGNode
	v    *types.Var
	pos  token.Pos
}

// pendingIfaceCall is a call through an interface method recorded
// during body walking: x.M() where x's static type is an interface.
// It is resolved after all nodes exist, against every named type in
// the analyzed set that implements the interface — a class-hierarchy
// points-to set, conservative in the "may call" direction like
// FuncAssigns.
type pendingIfaceCall struct {
	from *CGNode
	m    *types.Func // the abstract interface method
	pos  token.Pos
}

// NodeFor returns the node for a callee expression — an identifier or
// selector resolving to a declared function, or a function literal —
// or nil when the expression's target has no body in the analyzed set.
func (g *CallGraph) NodeFor(info *types.Info, e ast.Expr) *CGNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.Lits[e]
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return g.Funcs[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return g.Funcs[fn]
		}
	}
	return nil
}

// varFor resolves an expression to the variable object it names (an
// identifier or a field selector), or nil.
func varFor(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// NodesForValue resolves a function-valued expression to candidate
// function nodes: a literal or named function directly, or — for a
// variable or field — every function value assigned to that variable
// anywhere in the analyzed set (FuncAssigns). An empty result means
// the value's origin is outside the analyzed packages.
func (g *CallGraph) NodesForValue(info *types.Info, e ast.Expr) []*CGNode {
	if n := g.NodeFor(info, e); n != nil {
		return []*CGNode{n}
	}
	if v := varFor(info, e); v != nil {
		return g.FuncAssigns[v]
	}
	return nil
}

// BuildCallGraph constructs the call graph over the given packages.
// Test files are included when the loader loaded them; analyzers that
// exempt tests filter at the root-selection level instead.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Funcs:       make(map[*types.Func]*CGNode),
		Lits:        make(map[*ast.FuncLit]*CGNode),
		FuncAssigns: make(map[*types.Var][]*CGNode),
		IfaceImpls:  make(map[*types.Func][]*CGNode),
	}
	// Pass 1: a node per declared function with a body, so cross-package
	// edges resolve no matter the package visit order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					g.Funcs[fn] = &CGNode{Pkg: pkg, Fn: fn, Dcl: fd}
				}
			}
		}
	}
	// Pass 2: walk each body, creating literal nodes and direct edges;
	// calls through function-typed variables are held back until the
	// assignment map is complete.
	var pending []pendingVarCall
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				pending = g.walkBody(pkg, g.Funcs[fn], fd.Body, pending)
			}
		}
	}
	// Pass 3: collect function-value assignments (var f = tick,
	// f = func(){...}, f := helper, struct fields) module-wide. Literal
	// nodes all exist now, so every resolvable RHS finds its node.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			g.collectFuncAssigns(pkg, f)
		}
	}
	// Pass 4: resolve calls through variables against the assignment
	// map — every candidate gets a call edge (flow-insensitive, so
	// conservative in the "may call" direction).
	for _, pc := range pending {
		for _, to := range g.FuncAssigns[pc.v] {
			pc.from.Out = append(pc.from.Out, CGEdge{To: to, Pos: pc.pos, Kind: EdgeCall})
		}
	}
	// Pass 5: resolve interface-method calls against every named type
	// in the analyzed set that implements the interface.
	g.resolveIfaceCalls(pkgs)
	return g
}

// resolveIfaceCalls gives every recorded interface-method call site an
// edge to the corresponding concrete method of each implementing type
// declared in the analyzed packages. Types whose methods live outside
// the analyzed set contribute nothing (no body, no node) — same policy
// as direct calls out of the set.
func (g *CallGraph) resolveIfaceCalls(pkgs []*Package) {
	if len(g.pendingIface) == 0 {
		return
	}
	// All named non-interface types declared in the analyzed packages,
	// in deterministic order (pkgs sorted by the caller's load; scope
	// names are sorted by go/types).
	var named []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok && !types.IsInterface(n) {
				named = append(named, n)
			}
		}
	}
	for _, pc := range g.pendingIface {
		impls, ok := g.IfaceImpls[pc.m]
		if !ok {
			impls = g.implementers(pc.m, named)
			g.IfaceImpls[pc.m] = impls
		}
		for _, to := range impls {
			pc.from.Out = append(pc.from.Out, CGEdge{To: to, Pos: pc.pos, Kind: EdgeCall})
		}
	}
	g.pendingIface = nil
}

// implementers returns the concrete method nodes satisfying abstract
// interface method m, drawn from the given named types.
func (g *CallGraph) implementers(m *types.Func, named []*types.Named) []*CGNode {
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*CGNode
	seen := make(map[*CGNode]bool)
	for _, n := range named {
		ptr := types.NewPointer(n)
		if !types.Implements(n, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := g.Funcs[fn]; node != nil && !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// ifaceMethod reports the abstract interface method a callee
// expression resolves to, or nil when the call is not through an
// interface.
func ifaceMethod(info *types.Info, e ast.Expr) *types.Func {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !types.IsInterface(recv.Type()) {
		return nil
	}
	return fn
}

// collectFuncAssigns records function values assigned to variables or
// fields anywhere in the file, including package-level var specs and
// composite literal fields.
func (g *CallGraph) collectFuncAssigns(pkg *Package, f *ast.File) {
	info := pkg.TypesInfo
	record := func(lhs ast.Expr, rhs ast.Expr) {
		v := varFor(info, lhs)
		if v == nil {
			return
		}
		if to := g.NodeFor(info, rhs); to != nil {
			g.FuncAssigns[v] = append(g.FuncAssigns[v], to)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						if v, ok := info.Uses[key].(*types.Var); ok {
							if to := g.NodeFor(info, kv.Value); to != nil {
								g.FuncAssigns[v] = append(g.FuncAssigns[v], to)
							}
						}
					}
				}
			}
		}
		return true
	})
}

// walkBody adds edges from node for every call, function-value
// reference, and nested literal in body, and returns pending grown by
// any calls through function-typed variables (resolved in pass 4).
// Nested literal bodies are walked under their own node, not the
// encloser's.
func (g *CallGraph) walkBody(pkg *Package, node *CGNode, body *ast.BlockStmt, pending []pendingVarCall) []pendingVarCall {
	info := pkg.TypesInfo
	// Direct callee expressions, so the same identifier is not also
	// counted as a function-value reference.
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := &CGNode{Pkg: pkg, Lit: n}
			g.Lits[n] = lit
			node.Out = append(node.Out, CGEdge{To: lit, Pos: n.Pos(), Kind: EdgeEncloses})
			pending = g.walkBody(pkg, lit, n.Body, pending)
			return false // literal body walked under its own node
		case *ast.CallExpr:
			if to := g.NodeFor(info, n.Fun); to != nil {
				node.Out = append(node.Out, CGEdge{To: to, Pos: n.Pos(), Kind: EdgeCall})
			} else if m := ifaceMethod(info, n.Fun); m != nil {
				// Interface method call (sched.Pick(c)): resolve to every
				// implementing type once all nodes exist.
				g.pendingIface = append(g.pendingIface, pendingIfaceCall{from: node, m: m, pos: n.Pos()})
			} else if v := varFor(info, n.Fun); v != nil {
				// Call through a function-typed variable (tick := func…;
				// tick()): resolve once every assignment is known.
				pending = append(pending, pendingVarCall{from: node, v: v, pos: n.Pos()})
			}
			// Arguments may reference functions; recurse normally (the
			// Fun expression is in callFuns, so it is not double-counted
			// as a reference below).
		case *ast.Ident:
			if callFuns[n] {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				if to := g.Funcs[fn]; to != nil {
					node.Out = append(node.Out, CGEdge{To: to, Pos: n.Pos(), Kind: EdgeRef})
				}
			}
		case *ast.SelectorExpr:
			if callFuns[n] {
				// Still visit n.X (e.g. a method value's receiver).
				ast.Inspect(n.X, walk)
				return false
			}
			if fn, ok := info.Uses[n.Sel].(*types.Func); ok {
				if to := g.Funcs[fn]; to != nil {
					node.Out = append(node.Out, CGEdge{To: to, Pos: n.Pos(), Kind: EdgeRef})
				}
				ast.Inspect(n.X, walk)
				return false
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return pending
}

// A ReachEdge records how a node was first discovered during Reach:
// the predecessor it was reached from and the site of the edge. Roots
// have From == nil.
type ReachEdge struct {
	From *CGNode
	Pos  token.Pos
	Kind EdgeKind
}

// Reach performs a breadth-first traversal from the given roots and
// returns, for every reachable node, the predecessor edge it was first
// discovered through — i.e. a shortest call chain back to some root.
// Traversal order is deterministic: roots in the given order,
// out-edges in source order.
func (g *CallGraph) Reach(roots []*CGNode) map[*CGNode]ReachEdge {
	seen := make(map[*CGNode]ReachEdge)
	queue := make([]*CGNode, 0, len(roots))
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := seen[r]; !ok {
			seen[r] = ReachEdge{}
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if e.To == nil {
				continue
			}
			if _, ok := seen[e.To]; !ok {
				seen[e.To] = ReachEdge{From: n, Pos: e.Pos, Kind: e.Kind}
				queue = append(queue, e.To)
			}
		}
	}
	return seen
}

// Chain reconstructs the discovery path from a root to n as a list of
// node names, using the predecessor map Reach returned. The root comes
// first.
func Chain(seen map[*CGNode]ReachEdge, n *CGNode) []string {
	var rev []string
	for cur := n; cur != nil; {
		rev = append(rev, cur.Name())
		cur = seen[cur].From
	}
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}
