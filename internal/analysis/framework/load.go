package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked compilation unit (non-test
// files only; test files may legitimately use wall clocks, goroutines
// and ad-hoc seeds, so the determinism contract does not cover them).
type Package struct {
	Dir       string
	Path      string // import path, e.g. "repro/internal/sim"
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Loader loads and type-checks packages of the enclosing module.
// Standard-library imports are type-checked from GOROOT source (the
// "source" compiler importer), so loading works without a module proxy,
// build cache, or network. Loaded packages are cached per Loader.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // directory containing go.mod
	ModPath string // module path declared in go.mod

	// IncludeTests also loads in-package _test.go files. The standalone
	// driver leaves this off (the determinism contract covers shipped
	// code); the analysistest kit turns it on so fixtures can assert
	// that analyzers exempt test files.
	IncludeTests bool

	// Overlay maps import paths to directories, consulted before the
	// module's on-disk layout. The analysistest kit registers every
	// fixture package here, so a fixture under testdata/src can import
	// a sibling fixture by its fictional path — which is what makes
	// cross-package (laundering) fixtures for module analyzers possible.
	Overlay map[string]string

	std  types.Importer
	pkgs map[string]*Package // by import path; nil entry = load in progress
}

// NewLoader locates the module enclosing dir (walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Expand resolves command-line patterns ("./...", "./internal/sim",
// "internal/...") into package directories relative to base, skipping
// testdata, vendor, and hidden directories. Results are sorted.
func (l *Loader) Expand(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		if !recursive {
			add(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir under its natural module import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, dir)
}

// LoadDirAs loads the package in dir under an explicit import path.
// The analysistest kit uses this so fixtures under testdata/src/<path>
// are analyzed as if they were package <path> — package-scoped rules
// (protected-tree lists) then apply to fixtures exactly as they do to
// the real tree.
func (l *Loader) LoadDirAs(dir, importPath string) (*Package, error) {
	return l.load(importPath, dir)
}

func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", abs, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) dirForImport(path string) (string, error) {
	if dir, ok := l.Overlay[path]; ok {
		return dir, nil
	}
	if path == l.ModPath {
		return l.ModRoot, nil
	}
	rest, ok := strings.CutPrefix(path, l.ModPath+"/")
	if !ok {
		return "", fmt.Errorf("import %q is not in module %s", path, l.ModPath)
	}
	return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), nil
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle marker

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", dir, err)
	}
	names := bp.GoFiles
	if l.IncludeTests {
		names = append(append([]string{}, names...), bp.TestGoFiles...)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if ipath == l.ModPath || strings.HasPrefix(ipath, l.ModPath+"/") {
			depDir, err := l.dirForImport(ipath)
			if err != nil {
				return nil, err
			}
			dep, err := l.load(ipath, depDir)
			if err != nil {
				return nil, err
			}
			return dep.Types, nil
		}
		return l.std.Import(ipath)
	})}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &Package{
		Dir:       dir,
		Path:      path,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
