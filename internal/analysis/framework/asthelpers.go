package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// PkgFunc resolves a call of the form pkgname.Func where pkgname is an
// imported package (possibly renamed). It returns the imported
// package's path and the function name, or ("", "") if the expression
// is not a package-level selector.
func PkgFunc(info *types.Info, fun ast.Expr) (pkgPath, name string) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// IsTestFile reports whether the file's name ends in _test.go. The
// determinism contract covers shipped simulation code, not its tests
// (which may time things, spawn goroutines, or pick ad-hoc seeds).
func IsTestFile(pass *Pass, f *ast.File) bool {
	return IsTestFileName(pass.Fset, f)
}

// IsTestFileName is IsTestFile for callers holding only a FileSet
// (module analyzers walking loader packages directly).
func IsTestFileName(fset *token.FileSet, f *ast.File) bool {
	name := fset.Position(f.Pos()).Filename
	return strings.HasSuffix(filepath.Base(name), "_test.go")
}

// RootPkgVar resolves an lvalue-ish expression to the package-level
// variable at its root, unwrapping indexing, dereferences and field
// selections: g, g.f, g[i], (*g).f, pkg.G. It returns the identifier
// naming the variable and the variable itself, or nils when the root
// is a local, a package name alone, or not a variable at all. Both the
// purity and globalstate analyzers use this to decide whether a write
// ultimately lands in package state.
func RootPkgVar(info *types.Info, e ast.Expr) (*ast.Ident, *types.Var) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && IsPkgLevel(v) {
				return x, v
			}
			return nil, nil
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					if v, ok := info.Uses[x.Sel].(*types.Var); ok && IsPkgLevel(v) {
						return x.Sel, v
					}
					return nil, nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, nil
		}
	}
}

// IsPkgLevel reports whether v is declared at package scope.
func IsPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// PathHasSegments reports whether pkgPath contains pattern as a run of
// complete, consecutive path segments — e.g. "internal/sim" matches
// "repro/internal/sim" and "repro/internal/sim/sub" but not
// "repro/internal/simulator".
func PathHasSegments(pkgPath, pattern string) bool {
	segs := strings.Split(pkgPath, "/")
	want := strings.Split(pattern, "/")
	if len(want) == 0 || len(want) > len(segs) {
		return false
	}
outer:
	for i := 0; i+len(want) <= len(segs); i++ {
		for j := range want {
			if segs[i+j] != want[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// IsFloat reports whether t's underlying type is a floating-point
// basic type.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// IsInteger reports whether t's underlying type is an integer basic
// type (including named integer types such as sim.Duration).
func IsInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// IsMap reports whether t's underlying type is a map.
func IsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// ExprString renders a (small) expression back to source, used to
// compare "the slice appended to" against "the slice later sorted".
// It intentionally covers only the identifier/selector/index shapes
// such targets take; anything else yields "" (never equal).
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		x := ExprString(e.X)
		if x == "" {
			return ""
		}
		return x + "." + e.Sel.Name
	case *ast.IndexExpr:
		x := ExprString(e.X)
		i := ExprString(e.Index)
		if x == "" || i == "" {
			return ""
		}
		return x + "[" + i + "]"
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.StarExpr:
		x := ExprString(e.X)
		if x == "" {
			return ""
		}
		return "*" + x
	}
	return ""
}
