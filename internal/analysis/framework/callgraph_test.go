package framework

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

type memPkg struct {
	path, src string
}

// loadMemPkgs type-checks in-memory sources in order; later packages
// may import earlier ones by path. All share one FileSet, like a real
// Loader run.
func loadMemPkgs(t *testing.T, fset *token.FileSet, in []memPkg) []*Package {
	t.Helper()
	done := map[string]*Package{}
	var pkgs []*Package
	for _, mp := range in {
		f, err := parser.ParseFile(fset, mp.path+"/x.go", mp.src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
			if d, ok := done[p]; ok {
				return d.Types, nil
			}
			return nil, fmt.Errorf("unknown import %q", p)
		})}
		tpkg, err := conf.Check(mp.path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-checking %s: %v", mp.path, err)
		}
		pkg := &Package{Path: mp.path, Fset: fset, Files: []*ast.File{f}, Types: tpkg, TypesInfo: info}
		done[mp.path] = pkg
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

func nodeByName(t *testing.T, g *CallGraph, pkgPath, name string) *CGNode {
	t.Helper()
	for fn, n := range g.Funcs {
		if fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node for %s.%s", pkgPath, name)
	return nil
}

func edgesTo(from *CGNode, kind EdgeKind) []string {
	var out []string
	for _, e := range from.Out {
		if e.Kind == kind && e.To != nil {
			out = append(out, e.To.Name())
		}
	}
	return out
}

func hasEdgeTo(from *CGNode, kind EdgeKind, name string) bool {
	for _, got := range edgesTo(from, kind) {
		if got == name {
			return true
		}
	}
	return false
}

const cgSrcA = `package a

func Leaf() {}

func Direct() { Leaf() }

func Literal() {
	f := func() { Leaf() }
	f()
}

var Global func()

func SetGlobal() {
	Global = func() { Leaf() }
}

func CallGlobal() { Global() }

func PassValue(run func(func())) { run(Leaf) }

type S struct{ F func() }

func Field() {
	s := S{F: Leaf}
	s.F()
}
`

const cgSrcB = `package b

import "a"

func Cross() { a.Direct() }

func Ref() {
	g := a.Leaf
	g()
}

func MethodValueLike() {
	use(a.Leaf)
}

func use(func()) {}
`

func buildTestGraph(t *testing.T) (*CallGraph, []*Package) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs := loadMemPkgs(t, fset, []memPkg{{"a", cgSrcA}, {"b", cgSrcB}})
	return BuildCallGraph(pkgs), pkgs
}

func TestCallGraphDirectCall(t *testing.T) {
	g, _ := buildTestGraph(t)
	if !hasEdgeTo(nodeByName(t, g, "a", "Direct"), EdgeCall, "Leaf") {
		t.Error("Direct has no call edge to Leaf")
	}
}

func TestCallGraphLiteralEnclosureAndVarCall(t *testing.T) {
	g, _ := buildTestGraph(t)
	lit := nodeByName(t, g, "a", "Literal")
	// Defining the literal yields an encloses edge...
	if got := edgesTo(lit, EdgeEncloses); len(got) != 1 || got[0] != "func literal" {
		t.Errorf("Literal encloses edges = %v", got)
	}
	// ...and calling it through f yields a call edge to the same literal.
	if !hasEdgeTo(lit, EdgeCall, "func literal") {
		t.Error("Literal has no call edge to its literal through the f variable")
	}
	// The literal's own body calls Leaf.
	for _, e := range lit.Out {
		if e.Kind == EdgeEncloses {
			if !hasEdgeTo(e.To, EdgeCall, "Leaf") {
				t.Error("literal body has no call edge to Leaf")
			}
		}
	}
}

func TestCallGraphFuncVarResolvesThroughAssignment(t *testing.T) {
	// The machine.go globalTick pattern: a package-level func-typed var
	// assigned a literal elsewhere, called somewhere else entirely.
	g, _ := buildTestGraph(t)
	cg := nodeByName(t, g, "a", "CallGlobal")
	if !hasEdgeTo(cg, EdgeCall, "func literal") {
		t.Errorf("CallGlobal edges = %+v; want call edge to SetGlobal's literal", edgesTo(cg, EdgeCall))
	}
	// And reachability flows through it to Leaf.
	seen := g.Reach([]*CGNode{cg})
	leaf := nodeByName(t, g, "a", "Leaf")
	if _, ok := seen[leaf]; !ok {
		t.Error("Leaf not reachable from CallGlobal through the func var")
	}
}

func TestCallGraphRefEdges(t *testing.T) {
	g, _ := buildTestGraph(t)
	if !hasEdgeTo(nodeByName(t, g, "a", "PassValue"), EdgeRef, "Leaf") {
		t.Error("PassValue has no ref edge to Leaf for the passed value")
	}
	if !hasEdgeTo(nodeByName(t, g, "b", "MethodValueLike"), EdgeRef, "Leaf") {
		t.Error("cross-package function value has no ref edge")
	}
}

func TestCallGraphCrossPackageCall(t *testing.T) {
	g, _ := buildTestGraph(t)
	if !hasEdgeTo(nodeByName(t, g, "b", "Cross"), EdgeCall, "Direct") {
		t.Error("Cross has no call edge to a.Direct")
	}
	ref := nodeByName(t, g, "b", "Ref")
	if !hasEdgeTo(ref, EdgeCall, "Leaf") {
		t.Error("call through g := a.Leaf did not resolve to Leaf")
	}
}

func TestCallGraphStructFieldAssignment(t *testing.T) {
	g, _ := buildTestGraph(t)
	fieldFn := nodeByName(t, g, "a", "Field")
	if !hasEdgeTo(fieldFn, EdgeCall, "Leaf") {
		t.Errorf("s.F() did not resolve through the composite literal; edges = %v", edgesTo(fieldFn, EdgeCall))
	}
}

func TestCallGraphChain(t *testing.T) {
	g, _ := buildTestGraph(t)
	cross := nodeByName(t, g, "b", "Cross")
	leaf := nodeByName(t, g, "a", "Leaf")
	seen := g.Reach([]*CGNode{cross})
	chain := Chain(seen, leaf)
	if want := "Cross -> Direct -> Leaf"; strings.Join(chain, " -> ") != want {
		t.Errorf("chain = %v, want %s", chain, want)
	}
}

func TestNodesForValue(t *testing.T) {
	g, pkgs := buildTestGraph(t)
	// Find the expression `Global` inside CallGlobal's call and resolve it.
	a := pkgs[0]
	var got []*CGNode
	for _, f := range a.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "Global" {
				got = g.NodesForValue(a.TypesInfo, call.Fun)
			}
			return true
		})
	}
	if len(got) != 1 || got[0].Lit == nil {
		t.Fatalf("NodesForValue(Global) = %v, want the one assigned literal", got)
	}
}
