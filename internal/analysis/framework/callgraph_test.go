package framework

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

type memPkg struct {
	path, src string
}

// loadMemPkgs type-checks in-memory sources in order; later packages
// may import earlier ones by path. All share one FileSet, like a real
// Loader run.
func loadMemPkgs(t *testing.T, fset *token.FileSet, in []memPkg) []*Package {
	t.Helper()
	done := map[string]*Package{}
	var pkgs []*Package
	for _, mp := range in {
		f, err := parser.ParseFile(fset, mp.path+"/x.go", mp.src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
			if d, ok := done[p]; ok {
				return d.Types, nil
			}
			return nil, fmt.Errorf("unknown import %q", p)
		})}
		tpkg, err := conf.Check(mp.path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-checking %s: %v", mp.path, err)
		}
		pkg := &Package{Path: mp.path, Fset: fset, Files: []*ast.File{f}, Types: tpkg, TypesInfo: info}
		done[mp.path] = pkg
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

func nodeByName(t *testing.T, g *CallGraph, pkgPath, name string) *CGNode {
	t.Helper()
	for fn, n := range g.Funcs {
		if fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node for %s.%s", pkgPath, name)
	return nil
}

func edgesTo(from *CGNode, kind EdgeKind) []string {
	var out []string
	for _, e := range from.Out {
		if e.Kind == kind && e.To != nil {
			out = append(out, e.To.Name())
		}
	}
	return out
}

func hasEdgeTo(from *CGNode, kind EdgeKind, name string) bool {
	for _, got := range edgesTo(from, kind) {
		if got == name {
			return true
		}
	}
	return false
}

const cgSrcA = `package a

func Leaf() {}

func Direct() { Leaf() }

func Literal() {
	f := func() { Leaf() }
	f()
}

var Global func()

func SetGlobal() {
	Global = func() { Leaf() }
}

func CallGlobal() { Global() }

func PassValue(run func(func())) { run(Leaf) }

type S struct{ F func() }

func Field() {
	s := S{F: Leaf}
	s.F()
}
`

const cgSrcB = `package b

import "a"

func Cross() { a.Direct() }

func Ref() {
	g := a.Leaf
	g()
}

func MethodValueLike() {
	use(a.Leaf)
}

func use(func()) {}
`

// cgSrcC exercises the edges the dataflow layer leans on: method-value
// bindings, deferred calls (direct, literal, and method-value), and
// function-typed struct fields assigned by statement rather than
// composite literal.
const cgSrcC = `package c

type R struct{ n int }

func (r *R) Hit() { r.n++ }

func helper() {}

func MethodValue() {
	r := &R{}
	h := r.Hit
	h()
}

func MethodValueRef(r *R) {
	use(r.Hit)
}

func use(func()) {}

func Deferred() {
	defer helper()
	defer func() { helper() }()
}

func DeferMethodCall(r *R) {
	defer r.Hit()
}

type W struct{ Cb func() }

func FieldAssign() {
	var w W
	w.Cb = helper
	w.Cb()
}
`

func buildEdgeCaseGraph(t *testing.T) *CallGraph {
	t.Helper()
	fset := token.NewFileSet()
	pkgs := loadMemPkgs(t, fset, []memPkg{{"c", cgSrcC}})
	return BuildCallGraph(pkgs)
}

func TestCallGraphMethodValueBinding(t *testing.T) {
	g := buildEdgeCaseGraph(t)
	// h := r.Hit; h() — the binding lands in FuncAssigns, the call
	// through h resolves to the method.
	mv := nodeByName(t, g, "c", "MethodValue")
	if !hasEdgeTo(mv, EdgeCall, "Hit") {
		t.Errorf("call through bound method value did not resolve; call edges = %v", edgesTo(mv, EdgeCall))
	}
	// A method value passed as an argument is a conservative ref edge.
	if !hasEdgeTo(nodeByName(t, g, "c", "MethodValueRef"), EdgeRef, "Hit") {
		t.Error("method value passed to use() has no ref edge to Hit")
	}
	// Reachability flows through the binding.
	seen := g.Reach([]*CGNode{mv})
	if _, ok := seen[nodeByName(t, g, "c", "Hit")]; !ok {
		t.Error("Hit not reachable from MethodValue")
	}
}

func TestCallGraphDeferredCalls(t *testing.T) {
	g := buildEdgeCaseGraph(t)
	d := nodeByName(t, g, "c", "Deferred")
	// defer helper() is a call edge like any other.
	if !hasEdgeTo(d, EdgeCall, "helper") {
		t.Errorf("deferred direct call missing; call edges = %v", edgesTo(d, EdgeCall))
	}
	// defer func(){...}() encloses a literal whose body calls helper.
	var lit *CGNode
	for _, e := range d.Out {
		if e.Kind == EdgeEncloses {
			lit = e.To
		}
	}
	if lit == nil {
		t.Fatal("deferred literal has no encloses edge")
	}
	if !hasEdgeTo(lit, EdgeCall, "helper") {
		t.Error("deferred literal body has no call edge to helper")
	}
	// defer r.Hit() resolves the method.
	if !hasEdgeTo(nodeByName(t, g, "c", "DeferMethodCall"), EdgeCall, "Hit") {
		t.Error("deferred method call has no call edge to Hit")
	}
}

func TestCallGraphFuncFieldAssignStmt(t *testing.T) {
	g := buildEdgeCaseGraph(t)
	// w.Cb = helper; w.Cb() — assignment statements (not just composite
	// literals) feed the field's points-to set.
	fa := nodeByName(t, g, "c", "FieldAssign")
	if !hasEdgeTo(fa, EdgeCall, "helper") {
		t.Errorf("call through assigned func field did not resolve; call edges = %v", edgesTo(fa, EdgeCall))
	}
	seen := g.Reach([]*CGNode{fa})
	if _, ok := seen[nodeByName(t, g, "c", "helper")]; !ok {
		t.Error("helper not reachable from FieldAssign through the func field")
	}
}

// cgSrcD exercises interface-method call resolution: a call through an
// interface must get edges to the concrete method of every statically
// known implementer — value receivers, pointer receivers, and
// cross-package implementers alike — and to nothing else.
const cgSrcD = `package d

type Picker interface{ Pick() int }

type O1 struct{}

func (O1) Pick() int { return 1 }

type Legacy struct{ n int }

func (l *Legacy) Pick() int { l.n++; return l.n }

type Unrelated struct{}

func (Unrelated) Peek() int { return 0 }

func Dispatch(p Picker) int { return p.Pick() }
`

const cgSrcE = `package e

import "d"

type Remote struct{}

func (Remote) Pick() int { return 3 }

func Use(p d.Picker) int { return p.Pick() }
`

func TestCallGraphInterfaceCallResolution(t *testing.T) {
	fset := token.NewFileSet()
	pkgs := loadMemPkgs(t, fset, []memPkg{{"d", cgSrcD}, {"e", cgSrcE}})
	g := BuildCallGraph(pkgs)

	dispatch := nodeByName(t, g, "d", "Dispatch")
	got := edgesTo(dispatch, EdgeCall)
	// All three implementers, including the pointer receiver and the
	// cross-package one — and not Unrelated.Peek.
	if len(got) != 3 {
		t.Errorf("Dispatch call edges = %v, want the 3 Pick implementations", got)
	}
	for _, name := range []string{"Pick"} {
		if !hasEdgeTo(dispatch, EdgeCall, name) {
			t.Errorf("Dispatch has no call edge to %s; edges = %v", name, got)
		}
	}
	// Reachability flows into every implementation body.
	seen := g.Reach([]*CGNode{dispatch})
	for _, impl := range []struct{ pkg, name string }{{"d", "Pick"}, {"e", "Pick"}} {
		found := false
		for fn, n := range g.Funcs {
			if fn.Pkg() != nil && fn.Pkg().Path() == impl.pkg && fn.Name() == impl.name {
				if _, ok := seen[n]; ok {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("no reachable %s.%s implementation from Dispatch", impl.pkg, impl.name)
		}
	}
	if hasEdgeTo(dispatch, EdgeCall, "Peek") {
		t.Error("Dispatch got an edge to Unrelated.Peek, which does not implement Picker")
	}

	// The resolution map is exposed for analyzers.
	resolved := false
	for m, impls := range g.IfaceImpls {
		if m.Name() == "Pick" && len(impls) == 3 {
			resolved = true
		}
	}
	if !resolved {
		t.Errorf("IfaceImpls missing the 3-way Pick resolution: %v", g.IfaceImpls)
	}

	// The cross-package caller resolves identically.
	if got := edgesTo(nodeByName(t, g, "e", "Use"), EdgeCall); len(got) != 3 {
		t.Errorf("e.Use call edges = %v, want 3 Pick implementations", got)
	}
}

func buildTestGraph(t *testing.T) (*CallGraph, []*Package) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs := loadMemPkgs(t, fset, []memPkg{{"a", cgSrcA}, {"b", cgSrcB}})
	return BuildCallGraph(pkgs), pkgs
}

func TestCallGraphDirectCall(t *testing.T) {
	g, _ := buildTestGraph(t)
	if !hasEdgeTo(nodeByName(t, g, "a", "Direct"), EdgeCall, "Leaf") {
		t.Error("Direct has no call edge to Leaf")
	}
}

func TestCallGraphLiteralEnclosureAndVarCall(t *testing.T) {
	g, _ := buildTestGraph(t)
	lit := nodeByName(t, g, "a", "Literal")
	// Defining the literal yields an encloses edge...
	if got := edgesTo(lit, EdgeEncloses); len(got) != 1 || got[0] != "func literal" {
		t.Errorf("Literal encloses edges = %v", got)
	}
	// ...and calling it through f yields a call edge to the same literal.
	if !hasEdgeTo(lit, EdgeCall, "func literal") {
		t.Error("Literal has no call edge to its literal through the f variable")
	}
	// The literal's own body calls Leaf.
	for _, e := range lit.Out {
		if e.Kind == EdgeEncloses {
			if !hasEdgeTo(e.To, EdgeCall, "Leaf") {
				t.Error("literal body has no call edge to Leaf")
			}
		}
	}
}

func TestCallGraphFuncVarResolvesThroughAssignment(t *testing.T) {
	// The machine.go globalTick pattern: a package-level func-typed var
	// assigned a literal elsewhere, called somewhere else entirely.
	g, _ := buildTestGraph(t)
	cg := nodeByName(t, g, "a", "CallGlobal")
	if !hasEdgeTo(cg, EdgeCall, "func literal") {
		t.Errorf("CallGlobal edges = %+v; want call edge to SetGlobal's literal", edgesTo(cg, EdgeCall))
	}
	// And reachability flows through it to Leaf.
	seen := g.Reach([]*CGNode{cg})
	leaf := nodeByName(t, g, "a", "Leaf")
	if _, ok := seen[leaf]; !ok {
		t.Error("Leaf not reachable from CallGlobal through the func var")
	}
}

func TestCallGraphRefEdges(t *testing.T) {
	g, _ := buildTestGraph(t)
	if !hasEdgeTo(nodeByName(t, g, "a", "PassValue"), EdgeRef, "Leaf") {
		t.Error("PassValue has no ref edge to Leaf for the passed value")
	}
	if !hasEdgeTo(nodeByName(t, g, "b", "MethodValueLike"), EdgeRef, "Leaf") {
		t.Error("cross-package function value has no ref edge")
	}
}

func TestCallGraphCrossPackageCall(t *testing.T) {
	g, _ := buildTestGraph(t)
	if !hasEdgeTo(nodeByName(t, g, "b", "Cross"), EdgeCall, "Direct") {
		t.Error("Cross has no call edge to a.Direct")
	}
	ref := nodeByName(t, g, "b", "Ref")
	if !hasEdgeTo(ref, EdgeCall, "Leaf") {
		t.Error("call through g := a.Leaf did not resolve to Leaf")
	}
}

func TestCallGraphStructFieldAssignment(t *testing.T) {
	g, _ := buildTestGraph(t)
	fieldFn := nodeByName(t, g, "a", "Field")
	if !hasEdgeTo(fieldFn, EdgeCall, "Leaf") {
		t.Errorf("s.F() did not resolve through the composite literal; edges = %v", edgesTo(fieldFn, EdgeCall))
	}
}

func TestCallGraphChain(t *testing.T) {
	g, _ := buildTestGraph(t)
	cross := nodeByName(t, g, "b", "Cross")
	leaf := nodeByName(t, g, "a", "Leaf")
	seen := g.Reach([]*CGNode{cross})
	chain := Chain(seen, leaf)
	if want := "Cross -> Direct -> Leaf"; strings.Join(chain, " -> ") != want {
		t.Errorf("chain = %v, want %s", chain, want)
	}
}

func TestNodesForValue(t *testing.T) {
	g, pkgs := buildTestGraph(t)
	// Find the expression `Global` inside CallGlobal's call and resolve it.
	a := pkgs[0]
	var got []*CGNode
	for _, f := range a.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "Global" {
				got = g.NodesForValue(a.TypesInfo, call.Fun)
			}
			return true
		})
	}
	if len(got) != 1 || got[0].Lit == nil {
		t.Fatalf("NodesForValue(Global) = %v, want the one assigned literal", got)
	}
}
