package framework

import (
	"go/ast"
	"go/token"
	"math"
	"strings"
	"testing"
)

const ivSrc = `package iv

type Duration int64

const Nano Duration = 1
const Micro Duration = 1000 * Nano

func scale(d Duration) Duration { return d }

func jitter(d Duration, f float64) Duration { return d }

func Step() Duration { return 3 * Micro }

func ConstSum() Duration { return Step() + 500*Nano }

func Loop() Duration {
	var d Duration
	for i := 0; i < 8; i++ {
		d += 2 * Micro
	}
	return d
}

func DataLoop(n int) Duration {
	var d Duration
	for i := 0; i < n; i++ {
		d += Micro
	}
	return d
}

func Rec(n int) Duration {
	if n == 0 {
		return Micro
	}
	return Rec(n-1) + Micro
}

type Timing struct{ Tick Duration }

func Default() Timing { return Timing{Tick: 4 * Micro} }

func ReadTick(t *Timing) Duration { return t.Tick }

type Picker interface{ Cost() Duration }

type A struct{}

func (A) Cost() Duration { return Micro }

type B struct{}

func (B) Cost() Duration { return 2 * Micro }

func Dispatch(p Picker) Duration { return p.Cost() }

func Branch(b bool) Duration {
	d := Micro
	if b {
		d = 5 * Micro
	}
	return d
}

func Mixed() Duration { return scale(Micro) + 500*Nano }

func Jittered() Duration { return jitter(2*Micro, 0.25) }

func Halved() Duration { return Micro / 4 }

func Named() (d Duration) {
	d = 7 * Micro
	return
}
`

func ivFixture(t *testing.T) (*Evaluator, *CallGraph, []*Package) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs := loadMemPkgs(t, fset, []memPkg{{"iv", ivSrc}})
	g := BuildCallGraph(pkgs)
	ev := NewEvaluator(fset, pkgs, g)
	// Unit intrinsics in the style latbound installs for the real sim
	// package: scale moves a value into the frequency-scaled bucket,
	// jitter widens by the constant fraction.
	ev.Intrinsic = func(ev *Evaluator, site ExprSite, call *ast.CallExpr, env Env) (Interval, bool) {
		fn := CalleeFunc(site.Pkg.TypesInfo, call)
		if fn == nil {
			return Interval{}, false
		}
		switch MethodKey(fn) {
		case "iv.scale":
			return ev.Eval(ExprSite{site.Pkg, call.Args[0]}, env).ToScaled(), true
		case "iv.jitter":
			d := ev.Eval(ExprSite{site.Pkg, call.Args[0]}, env)
			f, ok := ev.ConstFloat(site, call.Args[1])
			if !ok {
				return Unbounded(call.Pos(), "jitter fraction is not constant"), true
			}
			return d.MulScalar(Range{1 - f, 1 + f}), true
		}
		return Interval{}, false
	}
	return ev, g, pkgs
}

func evalFn(t *testing.T, ev *Evaluator, g *CallGraph, name string, args ...Interval) Interval {
	t.Helper()
	for fn, n := range g.Funcs {
		if fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == "iv" {
			return ev.EvalFuncNode(n, args, token.NoPos)
		}
	}
	t.Fatalf("no function %s", name)
	return Interval{}
}

func TestIntervalConstantFolding(t *testing.T) {
	ev, g, _ := ivFixture(t)
	iv := evalFn(t, ev, g, "ConstSum")
	if iv.Fixed.Hi != 3500 || !iv.Bounded() {
		t.Errorf("ConstSum = %+v, want fixed hi 3500", iv)
	}
}

func TestIntervalLoopBoundInference(t *testing.T) {
	ev, g, _ := ivFixture(t)
	iv := evalFn(t, ev, g, "Loop")
	if !iv.Bounded() || iv.Fixed.Hi != 16000 {
		t.Errorf("Loop = %+v, want fixed hi 16000 (8 trips x 2us)", iv)
	}
}

func TestIntervalDataDependentLoop(t *testing.T) {
	ev, g, _ := ivFixture(t)
	// Unknown trip count: unbounded, blaming the loop.
	iv := evalFn(t, ev, g, "DataLoop")
	if iv.Bounded() {
		t.Fatalf("DataLoop with unknown n = %+v, want unbounded", iv)
	}
	if s := iv.BlameString(ev.Fset); !strings.Contains(s, "loop") {
		t.Errorf("blame %q does not mention the loop", s)
	}
	// A bound argument makes the same loop finite: 100 x 1us.
	iv = evalFn(t, ev, g, "DataLoop", Exact(100))
	if !iv.Bounded() || iv.Fixed.Hi != 100000 {
		t.Errorf("DataLoop(100) = %+v, want fixed hi 100000", iv)
	}
}

func TestIntervalRecursionUnbounded(t *testing.T) {
	ev, g, _ := ivFixture(t)
	iv := evalFn(t, ev, g, "Rec", Exact(3))
	if iv.Bounded() {
		t.Fatalf("Rec = %+v, want unbounded", iv)
	}
	if s := iv.BlameString(ev.Fset); !strings.Contains(s, "recursive") {
		t.Errorf("blame %q does not mention recursion", s)
	}
}

func TestIntervalFieldWriteJoin(t *testing.T) {
	ev, g, _ := ivFixture(t)
	// ReadTick's parameter is unbound, so t.Tick resolves through the
	// module-wide field assignment join (the Default composite literal).
	iv := evalFn(t, ev, g, "ReadTick")
	if !iv.Bounded() || iv.Fixed.Hi != 4000 {
		t.Errorf("ReadTick = %+v, want fixed hi 4000 from the composite literal", iv)
	}
}

func TestIntervalInterfaceJoin(t *testing.T) {
	ev, g, _ := ivFixture(t)
	iv := evalFn(t, ev, g, "Dispatch")
	if !iv.Bounded() || iv.Fixed.Hi != 2000 || iv.Fixed.Lo != 1000 {
		t.Errorf("Dispatch = %+v, want join [1000, 2000] over both implementers", iv)
	}
}

func TestIntervalBranchJoin(t *testing.T) {
	ev, g, _ := ivFixture(t)
	iv := evalFn(t, ev, g, "Branch")
	if !iv.Bounded() || iv.Fixed.Hi != 5000 || iv.Fixed.Lo != 1000 {
		t.Errorf("Branch = %+v, want join [1000, 5000]", iv)
	}
}

func TestIntervalUnitBuckets(t *testing.T) {
	ev, g, _ := ivFixture(t)
	// scale(Micro) + 500*Nano: 1000ns in the scaled bucket, 500ns fixed.
	iv := evalFn(t, ev, g, "Mixed")
	if iv.Scaled.Hi != 1000 || iv.Fixed.Hi != 500 {
		t.Errorf("Mixed = %+v, want scaled hi 1000 / fixed hi 500", iv)
	}
	// jitter(2us, 0.25) widens to [1500, 2500].
	iv = evalFn(t, ev, g, "Jittered")
	if iv.Fixed.Lo != 1500 || iv.Fixed.Hi != 2500 {
		t.Errorf("Jittered = %+v, want fixed [1500, 2500]", iv)
	}
}

func TestIntervalDivisionAndNamedResults(t *testing.T) {
	ev, g, _ := ivFixture(t)
	if iv := evalFn(t, ev, g, "Halved"); iv.Fixed.Hi != 250 {
		t.Errorf("Halved = %+v, want fixed hi 250", iv)
	}
	if iv := evalFn(t, ev, g, "Named"); iv.Fixed.Hi != 7000 {
		t.Errorf("Named = %+v, want fixed hi 7000 via named result", iv)
	}
}

func TestIntervalAlgebra(t *testing.T) {
	a := Exact(100)
	b := Exact(50)
	if got := a.Add(b); got.Fixed != (Range{150, 150}) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Sub(b); got.Fixed != (Range{50, 50}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Join(b); got.Fixed != (Range{50, 100}) {
		t.Errorf("Join = %+v", got)
	}
	if got := a.MulScalar(Range{0.5, 2}); got.Fixed != (Range{50, 200}) {
		t.Errorf("MulScalar = %+v", got)
	}
	u := Unbounded(token.NoPos, "because")
	if u.Bounded() {
		t.Error("Unbounded reports Bounded")
	}
	sum := a.Add(u)
	if sum.Bounded() || len(sum.Blame) == 0 {
		t.Errorf("Exact+Unbounded = %+v, want unbounded with blame", sum)
	}
	if got := u.Join(a); got.Bounded() {
		t.Error("Join with unbounded must stay unbounded")
	}
	if got := a.ToScaled(); got.Scaled != (Range{100, 100}) || got.Fixed != (Range{0, 0}) {
		t.Errorf("ToScaled = %+v", got)
	}
	if math.IsNaN(u.Sub(u).Fixed.Hi) {
		t.Error("inf-inf leaked NaN")
	}
}
