package framework

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// RunPackage applies the (package-level) analyzers to one loaded
// package, filters the results through `//simlint:allow` directives,
// and returns the surviving diagnostics in position order. Both the
// standalone driver and the analysistest kit go through this single
// pipeline, so the suppression semantics the tests exercise are exactly
// the semantics CI enforces. Module analyzers (RunModule) are skipped
// here; they need every package at once and run via Analyze.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs, bad := parseDirectives(pkg.Fset, pkg.Files)
	diags, err := runPackageAnalyzers(pkg, analyzers, dirs)
	if err != nil {
		return nil, err
	}
	diags = append(diags, bad...)
	sort.Slice(diags, sortDiagnostics(pkg.Fset, diags))
	return diags, nil
}

// runPackageAnalyzers runs the package-level analyzers against pkg,
// suppressing through the given directives. Bad-directive diagnostics
// are the caller's concern (so a module run does not double-report
// them).
func runPackageAnalyzers(pkg *Package, analyzers []*Analyzer, dirs map[string][]directive) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		var found []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				found = append(found, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range found {
			if !suppressed(dirs, pkg.Fset, a.Name, d.Pos) {
				diags = append(diags, d)
			}
		}
	}
	return diags, nil
}

// RunModuleAnalyzers applies the module analyzers to the full package
// set, building the call graph once, and filters results through the
// merged `//simlint:allow` directives of every package. The pkgs slice
// is sorted by import path; dirs must be the union of all packages'
// directives keyed by filename (filenames are globally unique within
// one FileSet).
func RunModuleAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, dirs map[string][]directive) ([]Diagnostic, error) {
	var mods []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			mods = append(mods, a)
		}
	}
	if len(mods) == 0 {
		return nil, nil
	}
	graph := BuildCallGraph(pkgs)
	var diags []Diagnostic
	for _, a := range mods {
		var found []Diagnostic
		pass := &ModulePass{
			Analyzer: a,
			Fset:     fset,
			Pkgs:     pkgs,
			Graph:    graph,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				found = append(found, d)
			},
		}
		if err := a.RunModule(pass); err != nil {
			return nil, fmt.Errorf("module analyzer %s: %v", a.Name, err)
		}
		for _, d := range found {
			if !suppressed(dirs, fset, a.Name, d.Pos) {
				diags = append(diags, d)
			}
		}
	}
	return diags, nil
}

// An Analysis is the structured result of one driver run: every
// surviving diagnostic across every analyzed package, globally sorted
// by position, plus what a renderer needs to resolve positions. The
// plain-text printer and the SARIF exporter are both views of this.
type Analysis struct {
	Fset  *token.FileSet
	Dir   string // base directory for relative paths in output
	Diags []Diagnostic
	// Pkgs is the loaded package set the diagnostics came from, for
	// drivers that run extra collection passes over the same load (the
	// bounds report).
	Pkgs []*Package
}

// AnalyzePackages runs package-level analyzers per package and
// module-level analyzers over the whole pre-loaded set, applying
// `//simlint:allow` suppression throughout, and returns every surviving
// diagnostic globally sorted by position. All packages must share fset
// (one Loader). The analyzer list is normalized (sorted, deduplicated)
// first. Both the standalone driver and the analysistest kit's module
// mode go through this pipeline.
func AnalyzePackages(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	analyzers = Normalize(analyzers)
	pkgs = append([]*Package{}, pkgs...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })

	var diags []Diagnostic
	allDirs := make(map[string][]directive)
	for _, pkg := range pkgs {
		dirs, bad := parseDirectives(pkg.Fset, pkg.Files)
		files := make([]string, 0, len(dirs))
		for file := range dirs {
			files = append(files, file)
		}
		sort.Strings(files)
		for _, file := range files {
			allDirs[file] = append(allDirs[file], dirs[file]...)
		}
		diags = append(diags, bad...)
		got, err := runPackageAnalyzers(pkg, analyzers, dirs)
		if err != nil {
			return nil, err
		}
		diags = append(diags, got...)
	}
	got, err := RunModuleAnalyzers(fset, pkgs, analyzers, allDirs)
	if err != nil {
		return nil, err
	}
	diags = append(diags, got...)
	sort.Slice(diags, sortDiagnostics(fset, diags))
	return diags, nil
}

// Analyze is the standalone pipeline: expand patterns relative to dir,
// load and type-check every matched package, then AnalyzePackages.
func Analyze(dir string, patterns []string, analyzers []*Analyzer) (*Analysis, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgDirs, err := loader.Expand(dir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, pd := range pkgDirs {
		pkg, err := loader.LoadDir(pd)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := AnalyzePackages(loader.Fset, pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return &Analysis{Fset: loader.Fset, Dir: dir, Diags: diags, Pkgs: pkgs}, nil
}

// Run is the standalone driver: Analyze, then print diagnostics to w
// as "path:line:col: message (analyzer)", returning their count. Load
// or type-check failures return an error (the tree must compile for
// the lint to mean anything).
func Run(w io.Writer, dir string, patterns []string, analyzers []*Analyzer) (int, error) {
	a, err := Analyze(dir, patterns, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range a.Diags {
		pos := a.Fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(dir, name); err == nil && !filepath.IsAbs(rel) {
			name = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	return len(a.Diags), nil
}
