package framework

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// RunPackage applies the analyzers to one loaded package, filters the
// results through `//simlint:allow` directives, and returns the
// surviving diagnostics in position order. Both the standalone driver
// and the analysistest kit go through this single pipeline, so the
// suppression semantics the tests exercise are exactly the semantics
// CI enforces.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs, bad := parseDirectives(pkg.Fset, pkg.Files)
	diags := bad
	for _, a := range analyzers {
		var found []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				found = append(found, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range found {
			if !suppressed(dirs, pkg.Fset, a.Name, d.Pos) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, sortDiagnostics(pkg.Fset, diags))
	return diags, nil
}

// Run is the standalone driver: it expands patterns relative to dir,
// loads and analyzes every matched package, prints diagnostics to w as
// "path:line:col: message (analyzer)", and returns the number of
// diagnostics. Load or type-check failures return an error (the tree
// must compile for the lint to mean anything).
func Run(w io.Writer, dir string, patterns []string, analyzers []*Analyzer) (int, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return 0, err
	}
	pkgDirs, err := loader.Expand(dir, patterns)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pd := range pkgDirs {
		pkg, err := loader.LoadDir(pd)
		if err != nil {
			return total, err
		}
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			return total, err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(dir, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
			fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
		}
		total += len(diags)
	}
	return total, nil
}
