package framework

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
)

// This file is the abstract-interpretation layer behind the latbound
// analyzer: an interval lattice over duration-valued expressions, a
// forward abstract evaluator for function bodies with loop-bound
// inference, and module-wide join maps for struct-field and variable
// assignments. The design follows WCET-style static timing analysis —
// every expression gets a conservative [lo, hi] bound, +Inf means
// "statically unbounded", and the chain of reasons that led to +Inf is
// carried along so the analyzer can explain a finding.

// A Range is a closed interval [Lo, Hi] of float64 nanoseconds (or a
// unitless scalar, for trip counts and multipliers). Hi may be +Inf.
type Range struct {
	Lo, Hi float64
}

// inf is the unbounded upper endpoint.
var inf = math.Inf(1)

func (r Range) add(o Range) Range { return Range{r.Lo + o.Lo, r.Hi + o.Hi} }
func (r Range) sub(o Range) Range { return Range{r.Lo - o.Hi, r.Hi - o.Lo} }
func (r Range) join(o Range) Range {
	return Range{math.Min(r.Lo, o.Lo), math.Max(r.Hi, o.Hi)}
}

// mul multiplies two ranges, taking the min/max over endpoint products
// so negative endpoints stay sound. Inf*0 is treated as 0 (an absent
// bucket times anything is absent).
func (r Range) mul(o Range) Range {
	p := func(a, b float64) float64 {
		if a == 0 || b == 0 {
			return 0
		}
		return a * b
	}
	vals := [4]float64{p(r.Lo, o.Lo), p(r.Lo, o.Hi), p(r.Hi, o.Lo), p(r.Hi, o.Hi)}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return Range{lo, hi}
}

// A Blame is one reason an interval became unbounded, anchored at the
// source construct responsible.
type Blame struct {
	Pos    token.Pos
	Reason string
}

// An Interval is the abstract value of a duration-typed expression,
// split into two unit buckets: Scaled holds 1 GHz-reference
// nanoseconds that pass through a frequency-scaling helper (divided by
// the configured clock rate at run time), Fixed holds nanoseconds that
// do not scale with CPU frequency (PCI transactions, raw literals).
// The concrete value at clock g GHz is Scaled/g + Fixed. An interval
// with Hi == +Inf in either bucket is unbounded; Blame records why.
type Interval struct {
	Scaled Range
	Fixed  Range
	Blame  []Blame
}

// Exact returns the interval for a known fixed-nanosecond value.
func Exact(ns float64) Interval { return Interval{Fixed: Range{ns, ns}} }

// Unbounded returns the unbounded interval blaming the given construct.
func Unbounded(pos token.Pos, format string, args ...any) Interval {
	return Interval{
		Scaled: Range{0, 0},
		Fixed:  Range{0, inf},
		Blame:  []Blame{{Pos: pos, Reason: fmt.Sprintf(format, args...)}},
	}
}

// Bounded reports whether both buckets have finite upper endpoints.
func (iv Interval) Bounded() bool {
	return !math.IsInf(iv.Scaled.Hi, 1) && !math.IsInf(iv.Fixed.Hi, 1)
}

// maxBlame caps the blame chain carried through combinators; the first
// reasons are the root causes and the most useful ones.
const maxBlame = 4

func mergeBlame(a, b []Blame) []Blame {
	if len(a) == 0 {
		return b
	}
	out := a
	for _, bl := range b {
		if len(out) >= maxBlame {
			break
		}
		out = append(out, bl)
	}
	return out
}

// Add returns the sum of two intervals, bucket-wise.
func (iv Interval) Add(o Interval) Interval {
	return Interval{
		Scaled: iv.Scaled.add(o.Scaled),
		Fixed:  iv.Fixed.add(o.Fixed),
		Blame:  mergeBlame(iv.Blame, o.Blame),
	}
}

// Sub returns the difference of two intervals, bucket-wise.
func (iv Interval) Sub(o Interval) Interval {
	out := Interval{
		Scaled: iv.Scaled.sub(o.Scaled),
		Fixed:  iv.Fixed.sub(o.Fixed),
		Blame:  mergeBlame(iv.Blame, o.Blame),
	}
	// NaN from inf - inf: widen to unbounded rather than poison.
	if math.IsNaN(out.Fixed.Hi) || math.IsNaN(out.Scaled.Hi) {
		out.Scaled = Range{0, 0}
		out.Fixed = Range{0, inf}
	}
	return out
}

// MulScalar scales both buckets by a unitless range.
func (iv Interval) MulScalar(k Range) Interval {
	return Interval{
		Scaled: iv.Scaled.mul(k),
		Fixed:  iv.Fixed.mul(k),
		Blame:  iv.Blame,
	}
}

// Join returns the lattice join (union hull) of two intervals.
func (iv Interval) Join(o Interval) Interval {
	return Interval{
		Scaled: iv.Scaled.join(o.Scaled),
		Fixed:  iv.Fixed.join(o.Fixed),
		Blame:  mergeBlame(iv.Blame, o.Blame),
	}
}

// ToScaled moves the whole interval into the Scaled bucket — the
// effect of passing a value through a frequency-scaling helper.
// Nesting (scaling an already-scaled value) folds the buckets
// together, which stays an upper bound for clock rates >= 1 GHz; no
// path in this tree double-scales.
func (iv Interval) ToScaled() Interval {
	return Interval{
		Scaled: iv.Scaled.add(iv.Fixed),
		Fixed:  Range{0, 0},
		Blame:  iv.Blame,
	}
}

// BlameString renders the blame chain as "reason (at pos); ...".
func (iv Interval) BlameString(fset *token.FileSet) string {
	if len(iv.Blame) == 0 {
		return ""
	}
	s := ""
	for i, b := range iv.Blame {
		if i > 0 {
			s += "; "
		}
		s += b.Reason
		if b.Pos.IsValid() {
			p := fset.Position(b.Pos)
			s += fmt.Sprintf(" (%s:%d)", p.Filename, p.Line)
		}
	}
	return s
}

// An Env binds function parameters and locals to abstract values
// during forward body evaluation.
type Env map[*types.Var]Interval

func (e Env) clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// ExprSite pairs an expression with the package whose TypesInfo
// resolves it — expressions from assignment maps live in arbitrary
// packages.
type ExprSite struct {
	Pkg  *Package
	Expr ast.Expr
}

// An Evaluator computes interval bounds for duration-typed expressions
// over a loaded module: constant folding first, then structural
// recursion, with calls inlined bottom-up over the call graph,
// struct-field reads resolved to the module-wide join of everything
// ever assigned to the field, and loops bounded by inferred trip
// counts. Analyzers configure the unit semantics via the Intrinsic
// hook (which RNG or scaling helpers mean what) and the CallUnknown
// hook (a last chance to bound calls the graph cannot resolve, e.g.
// function-typed fields laundered through registration helpers).
type Evaluator struct {
	Fset  *token.FileSet
	Graph *CallGraph

	// Intrinsic, when set, is consulted for every call expression
	// before resolution. Returning ok=true short-circuits with the
	// given interval.
	Intrinsic func(ev *Evaluator, site ExprSite, call *ast.CallExpr, env Env) (Interval, bool)

	// CallUnknown, when set, is consulted for calls that resolve to no
	// function body in the analyzed set, before giving up as
	// unbounded.
	CallUnknown func(ev *Evaluator, site ExprSite, call *ast.CallExpr) (Interval, bool)

	pkgs        []*Package
	fieldWrites map[*types.Var][]ExprSite
	varWrites   map[*types.Var][]ExprSite
	// poisonedVars are variables with compound or aliased assignments
	// the flow-insensitive write map cannot represent.
	poisonedVars map[*types.Var]token.Pos

	visitingFn  map[*CGNode]bool
	visitingVar map[*types.Var]bool
}

// NewEvaluator builds an evaluator over the loaded packages, indexing
// every struct-field and variable assignment module-wide.
func NewEvaluator(fset *token.FileSet, pkgs []*Package, graph *CallGraph) *Evaluator {
	ev := &Evaluator{
		Fset:         fset,
		Graph:        graph,
		pkgs:         pkgs,
		fieldWrites:  make(map[*types.Var][]ExprSite),
		varWrites:    make(map[*types.Var][]ExprSite),
		poisonedVars: make(map[*types.Var]token.Pos),
		visitingFn:   make(map[*CGNode]bool),
		visitingVar:  make(map[*types.Var]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ev.collectWrites(pkg, f)
		}
	}
	return ev
}

// collectWrites records, per field and per variable, every expression
// assigned to it anywhere in the file. Compound assignments poison the
// target: a flow-insensitive join cannot bound x += e.
func (ev *Evaluator) collectWrites(pkg *Package, f *ast.File) {
	info := pkg.TypesInfo
	record := func(lhs, rhs ast.Expr) {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if v, ok := info.Defs[l].(*types.Var); ok {
				ev.varWrites[v] = append(ev.varWrites[v], ExprSite{pkg, rhs})
			} else if v, ok := info.Uses[l].(*types.Var); ok {
				ev.varWrites[v] = append(ev.varWrites[v], ExprSite{pkg, rhs})
			}
		case *ast.SelectorExpr:
			if sel := info.Selections[l]; sel != nil && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					ev.fieldWrites[v] = append(ev.fieldWrites[v], ExprSite{pkg, rhs})
				}
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				} else {
					for _, l := range n.Lhs {
						ev.poison(info, l, n.Pos())
					}
				}
			} else {
				// x += e and friends: flow-insensitively unbounded.
				for _, l := range n.Lhs {
					ev.poison(info, l, n.Pos())
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						if v, ok := info.Uses[key].(*types.Var); ok && v.IsField() {
							ev.fieldWrites[v] = append(ev.fieldWrites[v], ExprSite{pkg, kv.Value})
						}
					}
				}
			}
		case *ast.IncDecStmt:
			ev.poison(info, n.X, n.Pos())
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Address taken: writes through the pointer are invisible.
				ev.poison(info, n.X, n.Pos())
			}
		}
		return true
	})
}

func (ev *Evaluator) poison(info *types.Info, lhs ast.Expr, pos token.Pos) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[l].(*types.Var); ok {
			if _, done := ev.poisonedVars[v]; !done {
				ev.poisonedVars[v] = pos
			}
		} else if v, ok := info.Defs[l].(*types.Var); ok {
			if _, done := ev.poisonedVars[v]; !done {
				ev.poisonedVars[v] = pos
			}
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[l]; sel != nil && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				if _, done := ev.poisonedVars[v]; !done {
					ev.poisonedVars[v] = pos
				}
			}
		}
	}
}

// WritesOf returns every expression assigned to v anywhere in the
// analyzed set (the raw write map, before joining) — useful for
// analyzers that need to match assignment syntax, not just bounds.
func (ev *Evaluator) WritesOf(v *types.Var) []ExprSite { return ev.varWrites[v] }

// ConstFloat folds an expression to a constant float64 if the type
// checker proved it constant.
func (ev *Evaluator) ConstFloat(site ExprSite, e ast.Expr) (float64, bool) {
	tv, ok := site.Pkg.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	return v, ok
}

// Eval computes the interval for an expression in the given
// environment (nil for "no locals in scope").
func (ev *Evaluator) Eval(site ExprSite, env Env) Interval {
	e := ast.Unparen(site.Expr)
	info := site.Pkg.TypesInfo

	// Constant folding covers literals, named constants, and whole
	// constant expressions (2 * time units, shifts, conversions).
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if v, ok := constant.Float64Val(constant.ToFloat(tv.Value)); ok {
			return Exact(v)
		}
	}

	switch e := e.(type) {
	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD:
			return ev.Eval(ExprSite{site.Pkg, e.X}, env)
		case token.SUB:
			return Exact(0).Sub(ev.Eval(ExprSite{site.Pkg, e.X}, env))
		}
		return Unbounded(e.Pos(), "unary %s is not interval-representable", e.Op)

	case *ast.BinaryExpr:
		x := ExprSite{site.Pkg, e.X}
		y := ExprSite{site.Pkg, e.Y}
		switch e.Op {
		case token.ADD:
			return ev.Eval(x, env).Add(ev.Eval(y, env))
		case token.SUB:
			return ev.Eval(x, env).Sub(ev.Eval(y, env))
		case token.MUL:
			if k, ok := ev.ConstFloat(site, e.Y); ok {
				return ev.Eval(x, env).MulScalar(Range{k, k})
			}
			if k, ok := ev.ConstFloat(site, e.X); ok {
				return ev.Eval(y, env).MulScalar(Range{k, k})
			}
			// Non-constant multiplier: bound it as a unitless scalar if
			// one side evaluates to a finite fixed-only range.
			xi, yi := ev.Eval(x, env), ev.Eval(y, env)
			if s, v, ok := scalarOperand(xi, yi); ok {
				return v.MulScalar(s)
			}
			return Unbounded(e.Pos(), "product of two non-constant quantities")
		case token.QUO:
			if k, ok := ev.ConstFloat(site, e.Y); ok && k != 0 {
				return ev.Eval(x, env).MulScalar(Range{1 / k, 1 / k})
			}
			return Unbounded(e.Pos(), "division by a non-constant")
		}
		return Unbounded(e.Pos(), "operator %s is not interval-representable", e.Op)

	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return ev.evalVar(site, v, e.Pos(), env)
		}
		return Unbounded(e.Pos(), "%s has no statically known value", e.Name)

	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return ev.evalField(v, e.Pos())
			}
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return ev.evalVar(site, v, e.Pos(), env)
		}
		return Unbounded(e.Pos(), "%s has no statically known value", e.Sel.Name)

	case *ast.CallExpr:
		return ev.evalCall(site, e, env)
	}
	return Unbounded(e.Pos(), "expression form %T is not interval-representable", e)
}

// scalarOperand picks which of two finite intervals acts as the
// unitless multiplier: the one confined to the Fixed bucket.
func scalarOperand(a, b Interval) (scalar Range, value Interval, ok bool) {
	if a.Bounded() && a.Scaled.Hi == 0 && a.Scaled.Lo == 0 {
		return a.Fixed, b, true
	}
	if b.Bounded() && b.Scaled.Hi == 0 && b.Scaled.Lo == 0 {
		return b.Fixed, a, true
	}
	return Range{}, Interval{}, false
}

// evalVar resolves a variable: environment first (params, locals under
// forward evaluation), then the module-wide assignment join.
func (ev *Evaluator) evalVar(site ExprSite, v *types.Var, pos token.Pos, env Env) Interval {
	if iv, ok := env[v]; ok {
		return iv
	}
	if p, bad := ev.poisonedVars[v]; bad {
		return Unbounded(p, "%s is reassigned in a way the join cannot bound", v.Name())
	}
	writes := ev.varWrites[v]
	if len(writes) == 0 {
		return Unbounded(pos, "%s is never assigned in the analyzed packages", v.Name())
	}
	if ev.visitingVar[v] {
		return Unbounded(pos, "%s is defined in terms of itself", v.Name())
	}
	ev.visitingVar[v] = true
	defer delete(ev.visitingVar, v)
	out := ev.Eval(writes[0], nil)
	for _, w := range writes[1:] {
		out = out.Join(ev.Eval(w, nil))
	}
	return out
}

// evalField joins everything ever assigned to the struct field
// anywhere in the analyzed set.
func (ev *Evaluator) evalField(v *types.Var, pos token.Pos) Interval {
	if p, bad := ev.poisonedVars[v]; bad {
		return Unbounded(p, "field %s is updated in place, which the join cannot bound", v.Name())
	}
	writes := ev.fieldWrites[v]
	if len(writes) == 0 {
		return Unbounded(pos, "field %s is never assigned in the analyzed packages", v.Name())
	}
	if ev.visitingVar[v] {
		return Unbounded(pos, "field %s is defined in terms of itself", v.Name())
	}
	ev.visitingVar[v] = true
	defer delete(ev.visitingVar, v)
	out := ev.Eval(writes[0], nil)
	for _, w := range writes[1:] {
		out = out.Join(ev.Eval(w, nil))
	}
	return out
}

// evalCall handles conversions, intrinsics, then resolution through
// the call graph with arguments bound to parameters.
func (ev *Evaluator) evalCall(site ExprSite, call *ast.CallExpr, env Env) Interval {
	info := site.Pkg.TypesInfo

	// Type conversion — sim.Duration(x), float64(x) — passes through.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return ev.Eval(ExprSite{site.Pkg, call.Args[0]}, env)
	}

	if ev.Intrinsic != nil {
		if iv, ok := ev.Intrinsic(ev, site, call, env); ok {
			return iv
		}
	}

	// Resolve the callee: direct functions, function-typed variables,
	// interface methods.
	nodes := ev.Graph.NodesForValue(info, call.Fun)
	if len(nodes) == 0 {
		if m := ifaceMethod(info, call.Fun); m != nil {
			nodes = ev.Graph.IfaceImpls[m]
		}
	}
	if len(nodes) == 0 {
		if ev.CallUnknown != nil {
			if iv, ok := ev.CallUnknown(ev, site, call); ok {
				return iv
			}
		}
		return Unbounded(call.Pos(), "call to %s resolves to no function body in the analyzed packages", ExprString(call.Fun))
	}

	// Evaluate arguments once in the caller's environment.
	args := make([]Interval, len(call.Args))
	for i, a := range call.Args {
		args[i] = ev.Eval(ExprSite{site.Pkg, a}, env)
	}
	out := Interval{}
	first := true
	for _, n := range nodes {
		iv := ev.EvalFuncNode(n, args, call.Pos())
		if first {
			out, first = iv, false
		} else {
			out = out.Join(iv)
		}
	}
	return out
}

// EvalFuncNode bounds the result of calling a function node with the
// given argument intervals: forward abstract execution of the body,
// joining every return. Recursion is unbounded by construction.
func (ev *Evaluator) EvalFuncNode(n *CGNode, args []Interval, callPos token.Pos) Interval {
	if n == nil || n.Body() == nil {
		return Unbounded(callPos, "callee has no body in the analyzed packages")
	}
	if ev.visitingFn[n] {
		return Unbounded(callPos, "%s is recursive", n.Name())
	}
	ev.visitingFn[n] = true
	defer delete(ev.visitingFn, n)

	env := make(Env)
	params := funcParams(n)
	for i, p := range params {
		if i < len(args) {
			env[p] = args[i]
		}
	}
	// Named results start at zero.
	for _, r := range funcResults(n) {
		env[r] = Interval{}
	}
	returns := ev.execBlock(n.Pkg, n.Body(), env)
	if len(returns) == 0 {
		// Falls off the end or bare-returns named results.
		if rs := funcResults(n); len(rs) > 0 {
			out := env[rs[0]]
			for _, r := range rs[1:] {
				out = out.Join(env[r])
			}
			return out
		}
		return Unbounded(n.Pos(), "%s never returns a value", n.Name())
	}
	out := returns[0]
	for _, r := range returns[1:] {
		out = out.Join(r)
	}
	return out
}

// funcParams returns the parameter objects of a node's function type.
func funcParams(n *CGNode) []*types.Var {
	var ft *ast.FuncType
	if n.Lit != nil {
		ft = n.Lit.Type
	} else {
		ft = n.Dcl.Type
	}
	var out []*types.Var
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := n.Pkg.TypesInfo.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// funcResults returns the named result objects, if any.
func funcResults(n *CGNode) []*types.Var {
	var ft *ast.FuncType
	if n.Lit != nil {
		ft = n.Lit.Type
	} else {
		ft = n.Dcl.Type
	}
	var out []*types.Var
	if ft.Results == nil {
		return nil
	}
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if v, ok := n.Pkg.TypesInfo.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// execBlock abstractly executes statements in order, updating env and
// collecting the intervals of every reachable return expression. The
// first result expression of multi-value returns is the one bounded
// (duration-returning functions in this model are single-result).
func (ev *Evaluator) execBlock(pkg *Package, block *ast.BlockStmt, env Env) []Interval {
	var returns []Interval
	for _, stmt := range block.List {
		returns = append(returns, ev.execStmt(pkg, stmt, env)...)
	}
	return returns
}

func (ev *Evaluator) execStmt(pkg *Package, stmt ast.Stmt, env Env) []Interval {
	info := pkg.TypesInfo
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		ev.execAssign(pkg, s, env)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if i < len(vs.Values) {
						env[v] = ev.Eval(ExprSite{pkg, vs.Values[i]}, env)
					} else {
						env[v] = Interval{} // zero value
					}
				}
			}
		}
	case *ast.ReturnStmt:
		if len(s.Results) > 0 {
			return []Interval{ev.Eval(ExprSite{pkg, s.Results[0]}, env)}
		}
		return nil // bare return of named results, handled by caller env
	case *ast.IfStmt:
		if s.Init != nil {
			ev.execStmt(pkg, s.Init, env)
		}
		thenEnv := env.clone()
		rets := ev.execBlock(pkg, s.Body, thenEnv)
		elseEnv := env.clone()
		if s.Else != nil {
			rets = append(rets, ev.execStmt(pkg, s.Else, elseEnv)...)
		}
		joinInto(env, thenEnv, elseEnv)
		return rets
	case *ast.BlockStmt:
		return ev.execBlock(pkg, s, env)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ev.execStmt(pkg, s.Init, env)
		}
		var rets []Interval
		branches := []Env{}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			be := env.clone()
			for _, st := range cc.Body {
				rets = append(rets, ev.execStmt(pkg, st, be)...)
			}
			branches = append(branches, be)
		}
		joinInto(env, branches...)
		return rets
	case *ast.ForStmt:
		return ev.execFor(pkg, s, env)
	case *ast.RangeStmt:
		return ev.execRange(pkg, s, env)
	case *ast.IncDecStmt:
		if v := varFor(info, s.X); v != nil {
			cur, ok := env[v]
			if !ok {
				cur = ev.evalVar(ExprSite{pkg, s.X}, v, s.Pos(), env)
			}
			env[v] = cur.Add(Exact(1))
		}
	}
	return nil
}

// execAssign updates the environment for one assignment statement,
// including compound duration accumulation (d += e).
func (ev *Evaluator) execAssign(pkg *Package, s *ast.AssignStmt, env Env) {
	info := pkg.TypesInfo
	if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
		if len(s.Lhs) != len(s.Rhs) {
			for _, l := range s.Lhs {
				if v := varFor(info, l); v != nil {
					env[v] = Unbounded(s.Pos(), "multi-value assignment")
				}
			}
			return
		}
		for i := range s.Lhs {
			if v := varFor(info, s.Lhs[i]); v != nil {
				env[v] = ev.Eval(ExprSite{pkg, s.Rhs[i]}, env)
			}
		}
		return
	}
	// Compound: x op= e.
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	v := varFor(info, s.Lhs[0])
	if v == nil {
		return
	}
	cur, ok := env[v]
	if !ok {
		cur = ev.evalVar(ExprSite{pkg, s.Lhs[0]}, v, s.Pos(), env)
	}
	rhs := ev.Eval(ExprSite{pkg, s.Rhs[0]}, env)
	switch s.Tok {
	case token.ADD_ASSIGN:
		env[v] = cur.Add(rhs)
	case token.SUB_ASSIGN:
		env[v] = cur.Sub(rhs)
	case token.MUL_ASSIGN:
		if k, val, ok := scalarOperand(cur, rhs); ok {
			env[v] = val.MulScalar(k)
		} else {
			env[v] = Unbounded(s.Pos(), "compound multiplication of non-constants")
		}
	default:
		env[v] = Unbounded(s.Pos(), "compound %s assignment", s.Tok)
	}
}

// execFor bounds a for loop: when the trip count is statically
// inferable (constant or config-derived), accumulated variables get
// trips x per-iteration delta; otherwise everything the body assigns
// becomes unbounded, blaming the data-dependent loop.
func (ev *Evaluator) execFor(pkg *Package, s *ast.ForStmt, env Env) []Interval {
	if s.Init != nil {
		ev.execStmt(pkg, s.Init, env)
	}
	trips, tripsOK := ev.loopTrips(pkg, s, env)

	// Evaluate one abstract iteration against a snapshot to find the
	// per-iteration deltas of accumulated variables.
	pre := env.clone()
	iter := env.clone()
	rets := ev.execBlock(pkg, s.Body, iter)
	if s.Post != nil {
		ev.execStmt(pkg, s.Post, iter)
	}

	for _, v := range sortedVars(iter) {
		after := iter[v]
		before, had := pre[v]
		if had && intervalsEqual(before, after) {
			continue
		}
		if !tripsOK {
			env[v] = Unbounded(s.Pos(), "data-dependent loop: trip count is not statically bounded")
			continue
		}
		// Accumulation pattern: after = before + delta per iteration.
		delta := after.Sub(before)
		if !had {
			// Loop-local definition; visible only inside. Skip.
			if _, outer := env[v]; !outer {
				continue
			}
		}
		if delta.Bounded() && after.Bounded() {
			total := delta.MulScalar(Range{0, math.Max(trips.Hi, 0)})
			env[v] = before.Add(Interval{
				Scaled: Range{0, math.Max(total.Scaled.Hi, 0)},
				Fixed:  Range{0, math.Max(total.Fixed.Hi, 0)},
			})
		} else {
			env[v] = after // already unbounded, keep blame
		}
	}
	return rets
}

// sortedVars orders an environment's keys by position for deterministic
// write-back.
func sortedVars(e Env) []*types.Var {
	out := make([]*types.Var, 0, len(e))
	for v := range e {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func intervalsEqual(a, b Interval) bool {
	return a.Scaled == b.Scaled && a.Fixed == b.Fixed && len(a.Blame) == len(b.Blame)
}

// loopTrips infers the trip count of `for i := lo; i < n; i++`-shaped
// loops (also <=, and i += k steps with constant k > 0).
func (ev *Evaluator) loopTrips(pkg *Package, s *ast.ForStmt, env Env) (Range, bool) {
	info := pkg.TypesInfo
	init, ok := s.Init.(*ast.AssignStmt)
	if !ok || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return Range{}, false
	}
	iv := varFor(info, init.Lhs[0])
	if iv == nil {
		return Range{}, false
	}
	lo := ev.Eval(ExprSite{pkg, init.Rhs[0]}, env)
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return Range{}, false
	}
	if cv := varFor(info, cond.X); cv != iv {
		return Range{}, false
	}
	hi := ev.Eval(ExprSite{pkg, cond.Y}, env)
	step := 1.0
	switch post := s.Post.(type) {
	case *ast.IncDecStmt:
		if post.Tok != token.INC || varFor(info, post.X) != iv {
			return Range{}, false
		}
	case *ast.AssignStmt:
		if post.Tok != token.ADD_ASSIGN || len(post.Lhs) != 1 || varFor(info, post.Lhs[0]) != iv {
			return Range{}, false
		}
		k, ok := ev.ConstFloat(ExprSite{pkg, post.Rhs[0]}, post.Rhs[0])
		if !ok || k <= 0 {
			return Range{}, false
		}
		step = k
	default:
		return Range{}, false
	}
	if !lo.Bounded() || !hi.Bounded() || lo.Scaled.Hi != 0 || hi.Scaled.Hi != 0 {
		return Range{}, false
	}
	n := (hi.Fixed.Hi - lo.Fixed.Lo) / step
	if cond.Op == token.LEQ {
		n++
	}
	if n < 0 {
		n = 0
	}
	return Range{0, math.Ceil(n)}, true
}

// execRange: ranging over an array of known length is bounded;
// anything else is data-dependent.
func (ev *Evaluator) execRange(pkg *Package, s *ast.RangeStmt, env Env) []Interval {
	info := pkg.TypesInfo
	trips, tripsOK := Range{}, false
	if tv, ok := info.Types[s.X]; ok {
		t := tv.Type
		if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if arr, isArr := t.Underlying().(*types.Array); isArr {
			trips, tripsOK = Range{0, float64(arr.Len())}, true
		}
	}
	pre := env.clone()
	iter := env.clone()
	// Range variables are unknown individually.
	for _, x := range []ast.Expr{s.Key, s.Value} {
		if x == nil {
			continue
		}
		if v := varFor(info, x); v != nil {
			iter[v] = Unbounded(s.Pos(), "range variable")
		}
	}
	rets := ev.execBlock(pkg, s.Body, iter)
	for _, v := range sortedVars(iter) {
		after := iter[v]
		before, had := pre[v]
		if had && intervalsEqual(before, after) {
			continue
		}
		if !had {
			if _, outer := env[v]; !outer {
				continue
			}
		}
		if !tripsOK {
			env[v] = Unbounded(s.Pos(), "data-dependent loop: ranges over a value of unknown length")
			continue
		}
		delta := after.Sub(before)
		if delta.Bounded() && after.Bounded() {
			total := delta.MulScalar(Range{0, trips.Hi})
			env[v] = before.Add(Interval{
				Scaled: Range{0, math.Max(total.Scaled.Hi, 0)},
				Fixed:  Range{0, math.Max(total.Fixed.Hi, 0)},
			})
		} else {
			env[v] = after
		}
	}
	return rets
}

// joinInto replaces env's bindings with the join over the given branch
// environments (branches start as clones of env, so every key of env
// is present in each).
func joinInto(env Env, branches ...Env) {
	if len(branches) == 0 {
		return
	}
	keys := make(map[*types.Var]bool)
	for _, b := range branches {
		for v := range b {
			keys[v] = true
		}
	}
	// Deterministic iteration is unnecessary here (join is commutative
	// and associative over exact float ops on the same operand set),
	// but sort for reproducible blame ordering.
	ordered := make([]*types.Var, 0, len(keys))
	for v := range keys {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })
	for _, v := range ordered {
		var out Interval
		first := true
		for _, b := range branches {
			iv, ok := b[v]
			if !ok {
				iv, ok = env[v]
				if !ok {
					continue
				}
			}
			if first {
				out, first = iv, false
			} else {
				out = out.Join(iv)
			}
		}
		if !first {
			env[v] = out
		}
	}
}

// MethodKey renders a called function as "pkgpath.Type.Method" (or
// "pkgpath.Func" for plain functions), the key format the Intrinsic
// hook matches against. Pointer receivers are stripped.
func MethodKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return fn.Name()
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + obj.Name() + "." + fn.Name()
			}
			return obj.Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// CalleeFunc resolves a call's callee to the *types.Func it names
// (method or function), if any — the object Intrinsic hooks key on.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
