package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one parsed `//simlint:allow <analyzer> <reason>`
// comment. Suppressions are deliberately loud in the source — they are
// greppable, they name the rule they disable, and they are invalid
// without a stated reason — so every escape from the determinism
// contract stays visible in review.
type directive struct {
	line     int
	analyzer string // analyzer name, or "all"
	reason   string
	pos      token.Pos
	// fileScope is set when the directive sits on the file's package
	// clause line (`package foo //simlint:allow <analyzer> <reason>`):
	// it then suppresses the analyzer for the entire file instead of a
	// single line. Used for files that are wholesale exceptions (e.g. a
	// build-tagged twin), keeping the audit trail at the top of the
	// file rather than repeated per line.
	fileScope bool
}

const directivePrefix = "simlint:allow"

// parseDirectives extracts suppression directives from the files'
// comments. Malformed directives (no analyzer, or no reason) are
// reported as diagnostics of the pseudo-analyzer "simlint" and never
// suppress anything — a reasonless escape hatch is itself a finding.
func parseDirectives(fset *token.FileSet, files []*ast.File) (map[string][]directive, []Diagnostic) {
	byFile := make(map[string][]directive)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, directivePrefix)
				if !ok {
					continue
				}
				// The reason runs to the end of the comment, except that
				// an embedded "//" ends it (so tooling comments like the
				// analysistest kit's "// want" can follow a directive).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "simlint:allow needs an analyzer name and a reason: //simlint:allow <analyzer> <reason>",
						Analyzer: "simlint",
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "simlint:allow " + fields[0] + " needs a reason stating why the rule is safe to break here",
						Analyzer: "simlint",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				byFile[pos.Filename] = append(byFile[pos.Filename], directive{
					line:      pos.Line,
					analyzer:  fields[0],
					reason:    strings.Join(fields[1:], " "),
					pos:       c.Pos(),
					fileScope: pos.Line == fset.Position(f.Package).Line,
				})
			}
		}
	}
	return byFile, bad
}

// suppressed reports whether a diagnostic from the named analyzer at
// the given position is covered by a directive on the same line, on
// the line directly above it, or — for file-scope directives on the
// package clause line — anywhere in the same file.
func suppressed(dirs map[string][]directive, fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, d := range dirs[p.Filename] {
		if d.analyzer != analyzer && d.analyzer != "all" {
			continue
		}
		if d.fileScope || d.line == p.Line || d.line == p.Line-1 {
			return true
		}
	}
	return false
}
