package framework

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
)

// unitConfig mirrors the JSON compilation-unit description that
// `go vet` writes for its -vettool (the x/tools unitchecker Config;
// the field set is the protocol, see $GOROOT/src/cmd/vendor/.../
// unitchecker/unitchecker.go). Fields the framework does not need are
// still declared so unknown-field additions on the go side stay
// non-breaking.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain implements the command-line protocol `go vet -vettool`
// requires of an analysis tool:
//
//	-V=full    print an identity/buildID line for the build cache
//	-flags     describe tool flags as JSON (we expose none)
//	unit.cfg   analyze the single compilation unit described by cfg
//
// It returns false if args match none of the above, in which case the
// caller should proceed with its own (standalone) argument handling.
// On a cfg argument it runs the analyzers and exits: 0 for clean,
// 1 for diagnostics (printed to stderr, one per line, like cmd/vet).
// Module analyzers (RunModule) are skipped under this protocol: a unit
// carries only its own syntax plus export data for dependencies, so
// there is no cross-package syntax to build a call graph from. They run
// under the standalone driver, which CI invokes separately.
func VetMain(args []string, analyzers []*Analyzer) bool {
	analyzers = Normalize(analyzers)
	if len(args) == 0 {
		return false
	}
	switch args[0] {
	case "-V=full", "-V":
		fmt.Printf("simlint version %s\n", executableID())
		os.Exit(0)
	case "-flags":
		fmt.Println("[]")
		os.Exit(0)
	}
	if len(args) == 1 && len(args[0]) > 4 && args[0][len(args[0])-4:] == ".cfg" {
		n, err := runUnit(os.Stderr, args[0], analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(1)
		}
		if n > 0 {
			os.Exit(1)
		}
		os.Exit(0)
	}
	return false
}

// executableID hashes the running binary so `go vet`'s result cache is
// invalidated whenever the tool itself changes.
func executableID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("sha256-%x", h.Sum(nil)[:12])
}

func runUnit(w io.Writer, cfgFile string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("cannot decode config %s: %v", cfgFile, err)
	}

	// go vet expects the vetx (analysis facts) output file to exist so
	// it can cache it; the framework keeps no cross-package facts, so
	// an empty file is the correct, stable content.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only invocation: facts were the sole purpose.
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil // the compiler will report it
			}
			return 0, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	pkg := &Package{
		Dir:       cfg.Dir,
		Path:      cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		return 0, err
	}
	sort.Slice(diags, sortDiagnostics(fset, diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	return len(diags), nil
}
