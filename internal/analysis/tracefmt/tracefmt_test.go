package tracefmt_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/tracefmt"
)

// TestAnalyzer loads the fixtures as module packages so the kernel
// fixture's trace import resolves to the real repro/internal/trace and
// the receiver-type check runs against the production Buffer type.
func TestAnalyzer(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(t),
		[]*framework.Analyzer{tracefmt.Analyzer},
		"repro/internal/kernel",
		"repro/internal/tools",
	)
}
