// Fixture: an unprotected tree. The legacy string API is allowed in
// cold tooling code (CLIs, diagnostics); no diagnostics expected.
package tools

import (
	"fmt"

	"repro/internal/trace"
)

func Dump(b *trace.Buffer, reason string) {
	b.Emitf(0, -1, trace.KindUser, "dump: %s", reason)
	b.Emit(0, -1, trace.KindUser, fmt.Sprintf("because %s", reason))
}
