// Fixture: tracepoint call sites in a protected hot-path tree. The
// trace import resolves to the real repro/internal/trace package, so
// the receiver type check matches production code exactly.
package kernel

import (
	"fmt"

	"repro/internal/trace"
)

type CPU struct {
	ID    int
	Trace *trace.Buffer
}

func (c *CPU) dispatch(pid int, name string, prio int) {
	c.Trace.Switch(0, c.ID, pid, name, prio) // ok: typed, renders lazily

	c.Trace.Emitf(0, c.ID, trace.KindSwitch, "to %s/%d", name, pid) // want `Emitf in a hot path formats eagerly`
	c.Trace.Emit(0, c.ID, trace.KindSwitch, "switch")               // want `Emit takes a pre-rendered string`

	c.Trace.Switch(0, c.ID, pid, fmt.Sprintf("%s!", name), prio) // want `fmt.Sprintf runs before the tracepoint's enabled check`

	//simlint:allow tracefmt cold shutdown path, runs once per simulation
	c.Trace.Emitf(0, c.ID, trace.KindUser, "halt %s", name)
}

// value receivers and local variables must match too, not just fields.
func emitVia(b trace.Buffer, line int, dev string) {
	b.IRQEnter(0, 0, line, dev)                      // ok
	b.IRQEnter(0, 0, line, fmt.Sprint("irq-", dev))  // want `fmt.Sprint runs before the tracepoint's enabled check`
	b.Emitf(0, 0, trace.KindIRQEnter, "irq %s", dev) // want `Emitf in a hot path formats eagerly`
	_ = fmt.Sprintf("unrelated %d", line)            // ok: not a tracepoint argument
}
