// Package tracefmt forbids eager string formatting at tracepoint call
// sites in the simulation hot paths.
//
// The typed tracepoint layer (internal/trace) is designed so that a
// disabled tracepoint costs one nil/filter check and nothing else — no
// allocation, no formatting. Two idioms defeat that design from the
// call site: the legacy Emitf/Emit string API (whose variadic
// ...interface{} arguments box on the heap before the enabled check can
// run), and passing a fmt.Sprintf result into a typed emitter (the
// rendering happens whether or not the record is kept). Both belong in
// the trace layer's lazy Format path, not in kernel code that runs
// millions of times per simulated second.
package tracefmt

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Protected lists the package trees (as path segments) the rule covers:
// the simulation hot paths where tracepoints sit on dispatch, interrupt
// and lock code.
var Protected = []string{
	"internal/kernel",
	"internal/dev",
	"internal/workload",
}

// Analyzer is the tracefmt rule.
var Analyzer = &framework.Analyzer{
	Name: "tracefmt",
	Doc: "forbid eager formatting at tracepoints in simulation hot paths\n\n" +
		"Disabled tracepoints must cost a nil check and nothing else. The legacy\n" +
		"Emitf/Emit string API boxes its arguments before the enabled check can run, and\n" +
		"fmt.Sprint* arguments to typed emitters render whether or not the record is kept.\n" +
		"Emit typed records (trace.Buffer.Switch, .IRQEnter, ...) with raw integer/string\n" +
		"arguments; rendering happens lazily in trace.Buffer.Format.",
	Run: run,
}

func run(pass *framework.Pass) error {
	covered := false
	for _, p := range Protected {
		if framework.PathHasSegments(pass.Pkg.Path(), p) {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}
	for _, f := range pass.Files {
		if framework.IsTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isTraceBuffer(pass.TypesInfo.TypeOf(sel.X)) {
				return true
			}
			switch sel.Sel.Name {
			case "Emitf":
				pass.Reportf(call.Pos(), "Emitf in a hot path formats eagerly: its variadic arguments box on the heap even when tracing is disabled; emit a typed record (trace.Buffer.Switch, .IRQEnter, ...) instead")
			case "Emit":
				pass.Reportf(call.Pos(), "Emit takes a pre-rendered string in a hot path; emit a typed record so rendering stays lazy (trace.Buffer.Format)")
			default:
				for _, arg := range call.Args {
					inner, ok := arg.(*ast.CallExpr)
					if !ok {
						continue
					}
					if pkg, name := framework.PkgFunc(pass.TypesInfo, inner.Fun); pkg == "fmt" &&
						(name == "Sprintf" || name == "Sprint" || name == "Sprintln") {
						pass.Reportf(inner.Pos(), "fmt.%s runs before the tracepoint's enabled check; pass the raw arguments and let trace.Buffer.Format render lazily", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isTraceBuffer reports whether t is repro/internal/trace.Buffer or a
// pointer to it.
func isTraceBuffer(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "repro/internal/trace" && obj.Name() == "Buffer"
}
