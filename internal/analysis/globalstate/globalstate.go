// Package globalstate flags mutable package-level state inside the
// simulation packages. A package-level variable that any shipped file
// mutates is shared state across every Engine and every replication in
// the process: two simulations in one test binary would interleave
// writes, and the parallel replication runner would make results
// depend on goroutine scheduling. Simulation state must hang off the
// Engine (or structures rooted in it) so each run stays a pure
// function of (config, seed).
//
// Read-only package variables — error sentinels, lookup tables —
// are fine and are not reported; only variables the package itself
// assigns, increments, or takes the address of outside their
// declaration are findings. The report lands on the declaration, with
// the first mutation site named, so `//simlint:allow globalstate` at
// the declaration waives a vetted exception.
package globalstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/nondeterminism"
)

// Analyzer is the mutable-package-state rule.
var Analyzer = &framework.Analyzer{
	Name: "globalstate",
	Doc: "forbid mutated package-level variables in simulation packages\n\n" +
		"A package-level variable written by shipped code is state shared across every Engine\n" +
		"in the process, breaking replication isolation and (config, seed) purity. Covers the\n" +
		"same protected trees as nondeterminism (internal/runner exempt). Read-only sentinels\n" +
		"and lookup tables are not reported.",
	Run: run,
}

func run(pass *framework.Pass) error {
	path := pass.Pkg.Path()
	for _, allow := range nondeterminism.Allowed {
		if framework.PathHasSegments(path, allow) {
			return nil
		}
	}
	covered := false
	for _, p := range nondeterminism.Protected {
		if framework.PathHasSegments(path, p) {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}

	// First mutation site per package-level variable, shipped files only.
	mutated := make(map[*types.Var]token.Pos)
	mark := func(v *types.Var, pos token.Pos) {
		if v == nil || v.Pkg() != pass.Pkg {
			return // another package's state is that package's finding
		}
		if old, ok := mutated[v]; !ok || pos < old {
			mutated[v] = pos
		}
	}
	for _, f := range pass.Files {
		if framework.IsTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if _, v := framework.RootPkgVar(pass.TypesInfo, lhs); v != nil {
						mark(v, n.Pos())
					}
				}
			case *ast.IncDecStmt:
				if _, v := framework.RootPkgVar(pass.TypesInfo, n.X); v != nil {
					mark(v, n.Pos())
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, v := framework.RootPkgVar(pass.TypesInfo, n.X); v != nil {
						mark(v, n.Pos())
					}
				}
			}
			return true
		})
	}

	vars := make([]*types.Var, 0, len(mutated))
	for v := range mutated {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		site := pass.Fset.Position(mutated[v])
		pass.Reportf(v.Pos(), "package-level var %s is mutated in a simulation package (first write at %s:%d): state shared across engines breaks replication isolation; hang it off the Engine or Kernel instead",
			v.Name(), filepath.Base(site.Filename), site.Line)
	}
	return nil
}
