package globalstate_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/globalstate"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t),
		[]*framework.Analyzer{globalstate.Analyzer},
		"repro/internal/sim",    // protected: mutated globals fire, suppression honored
		"repro/internal/runner", // allowlisted: runner owns shared machinery
		"repro/tools",           // unprotected: out of scope
	)
}
