package simfix

// Mutating package state from a test file is outside the determinism
// contract; the analyzer must not count this write.
func resetForTest() { testOnly = 7 }

var _ = resetForTest
