// Package simfix exercises the globalstate rule inside a protected
// tree: only package-level variables that shipped code mutates are
// findings.
package simfix

var seq int // want `package-level var seq is mutated in a simulation package \(first write at simfix\.go:\d+\)`

// Next hands out identifiers from process-global state — exactly the
// cross-engine sharing the rule exists to stop.
func Next() int {
	seq++
	return seq
}

// Sentinel is read-only: not a finding.
var Sentinel = "ok"

func Read() string { return Sentinel }

var table = map[string]int{"a": 1} // want `package-level var table is mutated`

// Put writes through an index expression; the root variable is still
// package state.
func Put(k string, v int) { table[k] = v }

// shadow is only ever shadowed by a local; the package variable itself
// is never written.
var shadow int

func Shadow() int {
	shadow := 3
	return shadow
}

// testOnly is mutated solely from the package's test file; the
// contract covers shipped code, so no finding.
var testOnly int

func TestOnlyValue() int { return testOnly }

//simlint:allow globalstate vetted: documented fixture exception
var waived int

func Bump() { waived++ }

var addr int // want `package-level var addr is mutated`

// Addr leaks a pointer to package state; address-taking counts as
// mutation conservatively.
func Addr() *int { return &addr }
