// Package runnerfix sits in the allowlisted runner tree: the runner
// owns cross-replication machinery, so the rule stays silent even for
// mutated package state.
package runnerfix

var pool int

func Grow() { pool++ }
