// Package tools is outside the protected trees; mutable globals here
// are someone else's problem.
package tools

var count int

func Inc() { count++ }
