package maporder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/maporder"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t),
		[]*framework.Analyzer{maporder.Analyzer},
		"repro/internal/report",
	)
}
