// Package maporder flags iteration over maps whose loop body is
// order-sensitive: Go randomizes map iteration order per run, so a
// range-over-map that appends to a slice, writes output (CSV rows,
// trace records, printed report lines), feeds a hash, or accumulates
// floating-point values produces byte-different artifacts run to run —
// exactly how cross-worker bit-identity dies in a merge path.
//
// Order-insensitive bodies are allowed: lookups, counting, integer
// sums, min/max scans, and deletes are commutative and exact. The one
// sanctioned emission idiom is collect-then-sort — append the keys (or
// derived names) to a slice inside the loop and pass that slice to
// sort.* / slices.Sort* later in the same function before using it.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the maporder rule.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map whose body is iteration-order-sensitive\n\n" +
		"Map iteration order is randomized per run. Bodies that append to a slice, print or\n" +
		"write records, feed a hash/accumulator, send on a channel, or accumulate floats are\n" +
		"order-sensitive and make output bytes depend on the iteration order. Collect keys\n" +
		"into a slice and sort it (sort.* or slices.Sort*) before emitting. Integer sums,\n" +
		"counts, min/max scans and lookups are commutative-exact and stay allowed.",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if framework.IsTestFile(pass, f) {
			continue
		}
		// Visit function by function so the collect-then-sort check can
		// look for a later sort call in the same function.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc examines every range-over-map statement directly inside
// fn's body (nested function literals are visited separately by run).
func checkFunc(pass *framework.Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // handled by its own checkFunc visit
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !framework.IsMap(pass.TypesInfo.TypeOf(rng.X)) {
			return true
		}
		checkRange(pass, fnBody, rng)
		return true
	})
}

func checkRange(pass *framework.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	mapName := framework.ExprString(rng.X)
	if mapName == "" {
		mapName = "map"
	}
	var appendTargets []string // slices appended to inside the body
	reported := false
	report := func(what string) {
		if !reported {
			pass.Report(framework.Diagnostic{
				Pos: rng.Pos(),
				Message: "iteration over " + mapName + " is randomly ordered but its body " + what +
					"; collect the keys, sort them, then iterate the sorted slice",
				Fixes: sortedRangeFix(pass, rng, mapName),
			})
			reported = true
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Float accumulation: s += x, s -= x, s *= x, s /= x.
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 && framework.IsFloat(pass.TypesInfo.TypeOf(n.Lhs[0])) {
					report("accumulates a float (addition is not associative, so the total depends on order)")
				}
			case token.ASSIGN, token.DEFINE:
				for _, rhs := range n.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok && isAppend(call) {
						if t := appendTarget(n, call); t != "" {
							appendTargets = append(appendTargets, t)
						} else {
							report("appends to a slice (element order follows map order)")
						}
					}
					// s = s + x on floats.
					if bin, ok := rhs.(*ast.BinaryExpr); ok {
						if (bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL || bin.Op == token.QUO) &&
							framework.IsFloat(pass.TypesInfo.TypeOf(bin)) && len(n.Lhs) == 1 &&
							framework.ExprString(n.Lhs[0]) != "" &&
							containsExpr(bin, framework.ExprString(n.Lhs[0])) {
							report("accumulates a float (addition is not associative, so the total depends on order)")
						}
					}
				}
			}
		case *ast.CallExpr:
			if why := sinkCall(pass, n); why != "" {
				report(why)
			}
		case *ast.SendStmt:
			report("sends on a channel (receive order follows map order)")
		}
		return true
	})

	if reported {
		return
	}
	// Collect-then-sort check: every appended-to slice must be sorted
	// later in the enclosing function.
	for _, target := range appendTargets {
		if !sortedLater(pass, fnBody, rng, target) {
			pass.Reportf(rng.Pos(), "keys of %s are collected into %s but never sorted; call sort.* (or slices.Sort*) on %s before using it", mapName, target, target)
		}
	}
}

// isAppend reports whether call is the builtin append.
func isAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// appendTarget returns the rendered expression of the slice being
// grown when the assignment is the canonical x = append(x, ...) form,
// or "" otherwise.
func appendTarget(assign *ast.AssignStmt, call *ast.CallExpr) string {
	if len(assign.Lhs) != 1 || len(call.Args) < 1 {
		return ""
	}
	lhs := framework.ExprString(assign.Lhs[0])
	arg0 := framework.ExprString(call.Args[0])
	if lhs == "" || lhs != arg0 {
		return ""
	}
	return lhs
}

// sinkCall classifies calls that emit ordered output: fmt printing,
// Write*-style methods (io.Writer, csv.Writer, hash.Hash, trace
// buffers), and accumulator methods (Add/Record/Observe/Emit/Merge).
func sinkCall(pass *framework.Pass, call *ast.CallExpr) string {
	if pkg, name := framework.PkgFunc(pass.TypesInfo, call.Fun); pkg != "" {
		if pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
			return "prints (line order follows map order)"
		}
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	switch {
	case strings.HasPrefix(name, "Write"):
		return "writes records (record order follows map order)"
	case strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print"):
		return "prints (line order follows map order)"
	case strings.HasPrefix(name, "Emit"):
		return "emits trace records (record order follows map order)"
	case name == "Add" || name == "Record" || name == "Observe" || name == "Merge":
		return "feeds an accumulator (merge order follows map order)"
	}
	return ""
}

// sortedLater reports whether target is passed to a sort call
// somewhere in the enclosing function after the range statement.
func sortedLater(pass *framework.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		pkg, name := framework.PkgFunc(pass.TypesInfo, call.Fun)
		isSort := (pkg == "sort" && (name == "Strings" || name == "Ints" || name == "Float64s" ||
			name == "Slice" || name == "SliceStable" || name == "Sort" || name == "Stable")) ||
			(pkg == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort || len(call.Args) == 0 {
			return true
		}
		if framework.ExprString(call.Args[0]) == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// containsExpr reports whether the rendered form of any identifier/
// selector inside e equals s — a cheap "LHS appears on the RHS" test.
func containsExpr(e ast.Expr, s string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ex, ok := n.(ast.Expr); ok && framework.ExprString(ex) == s {
			found = true
			return false
		}
		return true
	})
	return found
}

// sortedRangeFix builds the machine-applicable collect-then-sort
// rewrite for an order-sensitive range-over-map, when one can be
// offered safely: the range must define a named, basic-ordered key, the
// map expression must render, and the file must already import "sort"
// (the fix cannot edit the import block). The rewrite materializes the
// keys, sorts them, and re-targets the loop at the sorted slice — the
// deterministic order the rule demands — leaving the body untouched
// except for rebinding the value variable.
func sortedRangeFix(pass *framework.Pass, rng *ast.RangeStmt, mapName string) []framework.SuggestedFix {
	if rng.Tok != token.DEFINE || mapName == "" || mapName == "map" {
		return nil
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil
	}
	keyType := pass.TypesInfo.TypeOf(rng.Key)
	if keyType == nil {
		return nil
	}
	basic, ok := keyType.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsOrdered == 0 {
		return nil
	}
	if !importsSort(pass, rng.Pos()) {
		return nil
	}
	keys := "sorted" + strings.ToUpper(key.Name[:1]) + key.Name[1:]
	typeName := types.TypeString(keyType, types.RelativeTo(pass.Pkg))

	prelude := keys + " := make([]" + typeName + ", 0, len(" + mapName + ")); " +
		"for " + key.Name + " := range " + mapName + " { " + keys + " = append(" + keys + ", " + key.Name + ") }; " +
		"sort.Slice(" + keys + ", func(i, j int) bool { return " + keys + "[i] < " + keys + "[j] }); "
	edits := []framework.TextEdit{
		{Pos: rng.Pos(), End: rng.Pos(), NewText: prelude},
		{Pos: rng.Key.Pos(), End: rng.X.End(), NewText: "_, " + key.Name + " := range " + keys},
	}
	if val, ok := rng.Value.(*ast.Ident); ok && val.Name != "_" {
		edits = append(edits, framework.TextEdit{
			Pos:     rng.Body.Lbrace + 1,
			End:     rng.Body.Lbrace + 1,
			NewText: " " + val.Name + " := " + mapName + "[" + key.Name + "];",
		})
	}
	return []framework.SuggestedFix{{
		Message: "collect the keys into " + keys + ", sort, and iterate the sorted slice",
		Edits:   edits,
	}}
}

// importsSort reports whether the file containing pos imports "sort".
func importsSort(pass *framework.Pass, pos token.Pos) bool {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			for _, imp := range f.Imports {
				if imp.Path.Value == `"sort"` && (imp.Name == nil || imp.Name.Name != "_") {
					return true
				}
			}
			return false
		}
	}
	return false
}
