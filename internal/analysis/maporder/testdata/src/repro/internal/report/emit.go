// Fixture: order-sensitive and order-insensitive map iteration bodies.
package report

import (
	"fmt"
	"sort"
	"strings"
)

func printUnsorted(m map[string]int) {
	for k, v := range m { // want `prints`
		fmt.Println(k, v)
	}
}

func writeUnsorted(m map[string]int, b *strings.Builder) {
	for k := range m { // want `writes records`
		b.WriteString(k)
	}
}

func collectNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `never sorted`
		keys = append(keys, k)
	}
	return keys
}

// collectThenSort is the sanctioned emission idiom: keys out, sort,
// then iterate the slice.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// derivedNamesThenSort mirrors procfs.List: the appended value is
// derived from the key, which is still fine once the slice is sorted.
func derivedNamesThenSort(m map[string]int) []string {
	var names []string
	for k, v := range m {
		name := k
		if v > 0 {
			name += "/"
		}
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

func floatAccumulate(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `accumulates a float`
		total += v
	}
	return total
}

// Integer sums, counts, min/max scans and lookups commute exactly, so
// iteration order cannot show in the result.
func integerSum(m map[string]int) (n, total int) {
	for _, v := range m {
		n++
		total += v
	}
	return n, total
}

func maxScan(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func suppressedDump(m map[string]int) {
	//simlint:allow maporder debug dump, byte order never reaches a golden artifact
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func reasonlessDirective(m map[string]int) {
	//simlint:allow maporder // want `needs a reason`
	for k, v := range m { // want `prints`
		fmt.Println(k, v)
	}
}
