package purity_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/nondeterminism"
	"repro/internal/analysis/purity"
)

var fixtures = []string{
	"repro/helperlib",
	"repro/internal/kernel/purityfix",
}

func TestAnalyzer(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(t),
		[]*framework.Analyzer{purity.Analyzer}, fixtures...)
}

// TestNondeterminismMissesLaundering proves the hole purity closes is
// real: the intra-package rule, run over the very same fixtures that
// purity flags, reports nothing — helperlib is outside the protected
// trees, and purityfix's own files contain no direct violations.
func TestNondeterminismMissesLaundering(t *testing.T) {
	testdata := analysistest.TestData(t)
	dirFor := func(path string) string {
		return filepath.Join(testdata, "src", filepath.FromSlash(path))
	}
	loader, err := framework.NewLoader(dirFor(fixtures[0]))
	if err != nil {
		t.Fatal(err)
	}
	loader.IncludeTests = true
	loader.Overlay = make(map[string]string, len(fixtures))
	for _, path := range fixtures {
		loader.Overlay[path] = dirFor(path)
	}
	for _, path := range fixtures {
		pkg, err := loader.LoadDirAs(dirFor(path), path)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := framework.RunPackage(pkg, []*framework.Analyzer{nondeterminism.Analyzer})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("nondeterminism unexpectedly caught %s: %s (it should need purity to see this)",
				path, d.Message)
		}
	}
}
