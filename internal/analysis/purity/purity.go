// Package purity closes the helper-function laundering hole left by
// the nondeterminism analyzer: that rule checks only the simulation
// packages' own files, so a protected package can "launder" a wall
// clock by calling a helper in an unprotected package (or a chain of
// them) and nondeterminism never sees it.
//
// Purity is interprocedural. It roots the analysis at every function
// value registered as a sim.Engine callback — Schedule, After, and
// their Pinned variants — walks the module call graph, and requires
// every transitively reachable function, in any package, to stay pure:
// no wall clocks or environment lookups (the nondeterminism call
// tables, applied transitively), no calls into math/rand, no writes to
// package-level variables, and no reads of package-level variables
// that some function in the module mutates. Each finding includes the
// call chain that makes the impure site reachable, so the report is
// actionable even when the violation is three helpers deep.
package purity

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/nondeterminism"
)

// registrars are the sim.Engine methods whose final argument is an
// event callback; those arguments are the analysis roots.
var registrars = map[string]bool{
	"(*repro/internal/sim.Engine).Schedule":       true,
	"(*repro/internal/sim.Engine).SchedulePinned": true,
	"(*repro/internal/sim.Engine).After":          true,
	"(*repro/internal/sim.Engine).AfterPinned":    true,
}

// randPkgs are packages any call into which is impure, matching the
// nondeterminism import ban transitively.
var randPkgs = []string{"math/rand", "math/rand/v2"}

// Analyzer is the interprocedural purity rule.
var Analyzer = &framework.Analyzer{
	Name: "purity",
	Doc: "require every function reachable from a sim.Engine callback to be deterministic\n\n" +
		"Interprocedural companion to nondeterminism: event callbacks (Engine.Schedule/After/\n" +
		"SchedulePinned/AfterPinned arguments) and everything they transitively call — in any\n" +
		"package, not just the protected trees — must avoid wall clocks, env lookups, math/rand,\n" +
		"writes to package-level variables, and reads of package-level variables mutated\n" +
		"anywhere in the module. Diagnostics carry the call chain from the callback.",
	RunModule: run,
}

func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(filepath.Base(fset.Position(f.Pos()).Filename), "_test.go")
}

// collectMutated returns every package-level variable some non-test
// file in the module assigns, increments, or takes the address of.
// Package-level initializers are declarations, not mutations, and do
// not count.
func collectMutated(pass *framework.ModulePass) map[*types.Var]bool {
	mutated := make(map[*types.Var]bool)
	for _, pkg := range pass.Pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			if isTestFile(pass.Fset, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if _, v := framework.RootPkgVar(info, lhs); v != nil {
							mutated[v] = true
						}
					}
				case *ast.IncDecStmt:
					if _, v := framework.RootPkgVar(info, n.X); v != nil {
						mutated[v] = true
					}
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						if _, v := framework.RootPkgVar(info, n.X); v != nil {
							mutated[v] = true
						}
					}
				}
				return true
			})
		}
	}
	return mutated
}

// collectRoots finds every callback registered at a sim.Engine
// registrar call site in a non-test file and resolves it to call-graph
// nodes (through function-typed variables when needed, which is what
// catches the `var tick func(); tick = func(){...}; AfterPinned(d,
// tick)` self-rearming pattern).
func collectRoots(pass *framework.ModulePass) []*framework.CGNode {
	var roots []*framework.CGNode
	have := make(map[*framework.CGNode]bool)
	for _, pkg := range pass.Pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			if isTestFile(pass.Fset, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || !registrars[fn.FullName()] {
					return true
				}
				cb := call.Args[len(call.Args)-1]
				for _, node := range pass.Graph.NodesForValue(info, cb) {
					if !have[node] {
						have[node] = true
						roots = append(roots, node)
					}
				}
				return true
			})
		}
	}
	return roots
}

func run(pass *framework.ModulePass) error {
	mutated := collectMutated(pass)
	roots := collectRoots(pass)
	if len(roots) == 0 {
		return nil
	}
	seen := pass.Graph.Reach(roots)

	nodes := make([]*framework.CGNode, 0, len(seen))
	for n := range seen {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos() < nodes[j].Pos() })

	forbidden := nondeterminism.ForbiddenCalls()
	randWhy := nondeterminism.ForbiddenImports()
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}

	for _, node := range nodes {
		chain := strings.Join(framework.Chain(seen, node), " -> ")
		info := node.Pkg.TypesInfo
		// Write targets already reported as writes; their identifiers
		// must not re-trigger the mutated-read check.
		writeTargets := make(map[*ast.Ident]bool)
		ast.Inspect(node.Body(), func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if g := pass.Graph; g.Lits[n] != nil {
					return false // its own node; scanned separately if reachable
				}
			case *ast.CallExpr:
				if pkgPath, name := framework.PkgFunc(info, n.Fun); pkgPath != "" {
					if why, ok := forbidden[pkgPath][name]; ok {
						report(n.Pos(), "%s.%s reachable from sim.Engine callback (%s): %s",
							pkgPath, name, chain, why)
						return true
					}
					for _, rp := range randPkgs {
						if pkgPath == rp {
							report(n.Pos(), "call into %s reachable from sim.Engine callback (%s): %s",
								pkgPath, chain, randWhy[rp])
							return true
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, v := framework.RootPkgVar(info, lhs); v != nil {
						writeTargets[id] = true
						report(n.Pos(), "write to package-level %s reachable from sim.Engine callback (%s): scheduled callbacks must not mutate global state",
							v.Name(), chain)
					}
				}
			case *ast.IncDecStmt:
				if id, v := framework.RootPkgVar(info, n.X); v != nil {
					writeTargets[id] = true
					report(n.Pos(), "write to package-level %s reachable from sim.Engine callback (%s): scheduled callbacks must not mutate global state",
						v.Name(), chain)
				}
			case *ast.Ident:
				if writeTargets[n] {
					return true
				}
				if v, ok := info.Uses[n].(*types.Var); ok && framework.IsPkgLevel(v) && mutated[v] {
					report(n.Pos(), "read of mutated package-level %s reachable from sim.Engine callback (%s): its value depends on event mutation order",
						v.Name(), chain)
				}
			}
			return true
		})
	}
	return nil
}
