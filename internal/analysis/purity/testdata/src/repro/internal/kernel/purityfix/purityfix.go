// Package purityfix is clean under the intra-package nondeterminism
// rule — no wall clocks, no math/rand, no env lookups in its own files
// — yet its scheduled callbacks are impure: they launder violations
// through the unprotected repro/helperlib package and through local
// package state. Only the interprocedural purity analyzer sees it.
package purityfix

import (
	"repro/helperlib"
	"repro/internal/sim"
)

var counter int

// Arm registers the callbacks the analysis roots at.
func Arm(e *sim.Engine) {
	e.Schedule(0, tick)
	e.After(5, bump)
	e.SchedulePinned(7, readBack)
	armLoop(e)
	e.Schedule(9, waived)
}

// tick launders a wall clock through an unprotected helper package —
// the exact hole the intra-package rule cannot see.
func tick() {
	_ = helperlib.Stamp()
}

// bump mutates package state from a callback.
func bump() {
	counter++ // want `write to package-level counter reachable from sim\.Engine callback \(bump\)`
}

// readBack reads state some other function mutates.
func readBack() {
	_ = counter // want `read of mutated package-level counter reachable from sim\.Engine callback \(readBack\)`
}

// armLoop registers a self-re-arming callback through a function-typed
// variable — the pattern the kernel's global tick uses — so resolving
// the callback requires the call graph's assignment map, not just a
// syntactic literal.
func armLoop(e *sim.Engine) {
	var loop func()
	loop = func() {
		_ = helperlib.Rand()
		e.AfterPinned(1, loop)
	}
	e.AfterPinned(1, loop)
}

// waived reaches an impure helper whose site carries an allow
// directive; no diagnostic may survive.
func waived() {
	_ = helperlib.Waived()
}
