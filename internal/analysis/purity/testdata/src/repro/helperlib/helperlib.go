// Package helperlib is an innocent-looking utility package outside the
// protected trees: the intra-package nondeterminism rule never scans
// it, which is exactly the laundering hole the purity analyzer closes.
package helperlib

import (
	"math/rand"
	"time"
)

// Stamp launders a wall clock behind a helper call.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reachable from sim\.Engine callback \(tick -> Stamp\)`
}

// Rand launders the global math/rand stream.
func Rand() int {
	return rand.Int() // want `call into math/rand reachable from sim\.Engine callback \(func literal -> Rand\)`
}

// Waived is impure but explicitly waived at the site, proving the
// escape hatch works for module analyzers too.
func Waived() int64 {
	//simlint:allow purity fixture demonstrates the escape hatch
	return time.Now().UnixNano()
}

// Unreached is impure but never reachable from a callback; purity must
// stay silent here — reachability, not guilt by association.
func Unreached() int64 {
	return time.Now().UnixNano()
}
