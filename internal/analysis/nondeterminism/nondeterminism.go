// Package nondeterminism forbids sources of run-to-run variation
// inside the simulation packages: wall clocks, the global math/rand
// stream, environment lookups, and in-package concurrency.
//
// The simulator's reproducibility contract (DESIGN.md, "Determinism
// rules") is that a run is a pure function of (config, seed). Wall
// clocks and math/rand break that directly; os.Getenv makes behaviour
// depend on the invoking shell; goroutines, channels and sync
// primitives make it depend on the Go scheduler. Concurrency lives in
// exactly one place — internal/runner, which shards whole replications
// and merges them in index order — so every simulation package can stay
// single-threaded and bit-stable.
package nondeterminism

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis/framework"
)

// Protected lists the package trees (as path segments) the rule covers.
var Protected = []string{
	"internal/sim",
	"internal/kernel",
	"internal/core",
	"internal/metrics",
	"internal/workload",
	"internal/dev",
}

// Allowed lists trees exempt even if nested under a protected match;
// internal/runner is where cross-replication concurrency belongs.
var Allowed = []string{
	"internal/runner",
}

// forbiddenCalls maps package path -> function names whose call sites
// are reported. Types from these packages (time.Duration and friends)
// remain fine; only the nondeterministic entry points are banned.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":       "wall-clock time varies run to run; use the engine's virtual clock (sim.Time)",
		"Since":     "wall-clock time varies run to run; use the engine's virtual clock (sim.Time)",
		"Until":     "wall-clock time varies run to run; use the engine's virtual clock (sim.Time)",
		"Sleep":     "real sleeping has no place in a discrete-event simulation; schedule an event instead",
		"After":     "wall-clock timers vary run to run; schedule a simulation event instead",
		"AfterFunc": "wall-clock timers vary run to run; schedule a simulation event instead",
		"Tick":      "wall-clock tickers vary run to run; schedule simulation events instead",
		"NewTimer":  "wall-clock timers vary run to run; schedule a simulation event instead",
		"NewTicker": "wall-clock tickers vary run to run; schedule simulation events instead",
	},
	"os": {
		"Getenv":    "environment-dependent behaviour breaks (config, seed) reproducibility; thread configuration explicitly",
		"LookupEnv": "environment-dependent behaviour breaks (config, seed) reproducibility; thread configuration explicitly",
		"Environ":   "environment-dependent behaviour breaks (config, seed) reproducibility; thread configuration explicitly",
		"ExpandEnv": "environment-dependent behaviour breaks (config, seed) reproducibility; thread configuration explicitly",
	},
}

// forbiddenImports are packages whose mere import into a simulation
// package is a finding.
var forbiddenImports = map[string]string{
	"math/rand":    "math/rand's stream is unseeded-by-default and not stable across Go releases; use sim.RNG (splitmix64)",
	"math/rand/v2": "math/rand/v2 is seeded per-process; use sim.RNG (splitmix64) so streams are part of the contract",
	"sync":         "sync primitives imply shared-state concurrency; simulation packages are single-threaded, concurrency belongs in internal/runner",
	"sync/atomic":  "atomics imply shared-state concurrency; simulation packages are single-threaded, concurrency belongs in internal/runner",
}

// ForbiddenCalls exposes the banned (package, function) table, with
// reasons, so the interprocedural purity analyzer can apply the same
// rules transitively through helper functions in any package.
func ForbiddenCalls() map[string]map[string]string { return forbiddenCalls }

// ForbiddenImports exposes the banned import table, with reasons, for
// the same transitive reuse.
func ForbiddenImports() map[string]string { return forbiddenImports }

// Analyzer is the nondeterminism rule.
var Analyzer = &framework.Analyzer{
	Name: "nondeterminism",
	Doc: "forbid wall clocks, math/rand, env lookups, and concurrency in simulation packages\n\n" +
		"A simulation run must be a pure function of (config, seed): no time.Now/Sleep/timers,\n" +
		"no math/rand, no os.Getenv, and no goroutines, channels, selects or sync primitives\n" +
		"inside internal/{sim,kernel,core,metrics,workload,dev}. internal/runner is exempt:\n" +
		"it is the one place that may fan replications out across goroutines.",
	Run: run,
}

func run(pass *framework.Pass) error {
	path := pass.Pkg.Path()
	for _, allow := range Allowed {
		if framework.PathHasSegments(path, allow) {
			return nil
		}
	}
	covered := false
	for _, p := range Protected {
		if framework.PathHasSegments(path, p) {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}

	for _, f := range pass.Files {
		if framework.IsTestFile(pass, f) {
			continue
		}
		for _, imp := range f.Imports {
			ipath := imp.Path.Value
			ipath = ipath[1 : len(ipath)-1] // unquote
			if why, ok := forbiddenImports[ipath]; ok {
				pass.Reportf(imp.Pos(), "import of %s in simulation package: %s", ipath, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pkg, name := framework.PkgFunc(pass.TypesInfo, n.Fun); pkg != "" {
					if why, ok := forbiddenCalls[pkg][name]; ok {
						pass.Reportf(n.Pos(), "%s.%s in simulation package: %s", pkg, name, why)
					}
				}
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned in simulation package: execution order would depend on the Go scheduler; fan out whole replications via internal/runner instead")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select in simulation package: channel readiness depends on the Go scheduler; simulation packages must stay single-threaded")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in simulation package: cross-goroutine communication belongs in internal/runner")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in simulation package: cross-goroutine communication belongs in internal/runner")
				}
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type in simulation package: cross-goroutine communication belongs in internal/runner")
			}
			return true
		})
	}
	return nil
}
