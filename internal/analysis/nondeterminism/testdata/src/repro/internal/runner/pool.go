// Fixture: internal/runner is the sanctioned home for concurrency —
// the allowlist exempts it from every nondeterminism rule.
package runner

import "sync"

func fanOut(n int, fn func(int)) {
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
