// Fixture: _test.go files are exempt from the determinism contract —
// tests may time things and spawn goroutines freely.
package sim

import "time"

func timeThings() time.Duration {
	start := time.Now()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	return time.Since(start)
}
