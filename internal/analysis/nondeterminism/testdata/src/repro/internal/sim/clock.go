// Fixture: a protected simulation package exercising every
// nondeterminism rule, plus the suppression directive.
package sim

import (
	"math/rand" // want `import of math/rand in simulation package`
	"os"
	"time"
)

// Duration-typed declarations are fine: only the nondeterministic
// entry points of package time are banned, not its types.
var tick time.Duration = time.Millisecond

func wallclock() time.Duration {
	start := time.Now()      // want `time\.Now in simulation package`
	time.Sleep(tick)         // want `time\.Sleep in simulation package`
	return time.Since(start) // want `time\.Since in simulation package`
}

func environment() string {
	if v, ok := os.LookupEnv("SIM_MODE"); ok { // want `os\.LookupEnv in simulation package`
		return v
	}
	return os.Getenv("SIM_SEED") // want `os\.Getenv in simulation package`
}

func globalRand() int {
	return rand.Intn(6)
}

func spawn() int {
	results := make(chan int) // want `channel type in simulation package`
	go func() {               // want `goroutine spawned in simulation package`
		results <- rand.Intn(6) // want `channel send in simulation package`
	}()
	return <-results // want `channel receive in simulation package`
}

func selecting(a, b chan int) int { // want `channel type in simulation package`
	select { // want `select in simulation package`
	case v := <-a: // want `channel receive in simulation package`
		return v
	case v := <-b: // want `channel receive in simulation package`
		return v
	}
}

func suppressedClock() time.Duration {
	//simlint:allow nondeterminism progress logging only, value never reaches simulation state
	return time.Duration(time.Now().UnixNano())
}
