// Fixture: internal/report is outside the protected trees, so the
// nondeterminism rules do not apply (it renders human-facing output
// after the simulation has produced its deterministic results).
package report

import "time"

func stamp() string {
	return time.Now().Format(time.RFC3339)
}
