package nondeterminism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/nondeterminism"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t),
		[]*framework.Analyzer{nondeterminism.Analyzer},
		"repro/internal/sim",    // protected: every rule fires, suppression honored
		"repro/internal/runner", // allowlisted: concurrency is the point
		"repro/internal/report", // unprotected: wall clocks allowed
	)
}
