// Package latbound proves static worst-case latency bounds for the
// kernel model's critical regions. It roots a region at:
//
//   - every hardware-interrupt handler registered through
//     Kernel.RegisterIRQ (the handler body plus dispatch overhead),
//   - every interrupts-disabled run of syscall segments
//     (consecutive Segment literals with IRQsOff: true),
//   - every spinlock-held segment (Segment with a non-nil Lock),
//   - every Big Kernel Lock hold (runs of segments between blocking
//     points in a SyscallCall with TakesBKL, whether set in the
//     literal or assigned afterwards),
//   - every //simlint:region <cause> <name> directive (manual roots
//     for costs composed in code rather than literals: ISR dispatch,
//     softirq budget, scheduler pick, context switch, ...),
//
// and evaluates each region's duration expression over the framework's
// interval lattice: constants fold, calls inline bottom-up over the
// module call graph, RNG draws map to their distribution supports
// (Jitter/Uniform/capped Pareto are bounded; Exp/LogNormal are not),
// frequency-scaled costs stay in a separate bucket from fixed device
// costs, and loops are bounded by inferred trip counts. A region whose
// bound is not finite — a data-dependent loop, recursion, a draw from
// a heavy-tailed distribution, a call the graph cannot resolve — is a
// diagnostic carrying the blame chain, unless audited with
// //simlint:allow latbound <reason>.
//
// The collected regions form the machine-readable bounds report
// (simlint -bounds); internal/latency composes them into per-cause
// worst-episode envelopes that reprocheck cross-checks against the
// dynamic attribution's observed episodes.
package latbound

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
	"repro/internal/latency"
)

const (
	simPath    = "repro/internal/sim"
	kernelPath = "repro/internal/kernel"

	regionPrefix = "simlint:region"
	allowPrefix  = "simlint:allow"
)

// Analyzer is the static latency-bound rule.
var Analyzer = &framework.Analyzer{
	Name: "latbound",
	Doc: "prove a finite static worst-case duration for every irq-off/lock-held region\n\n" +
		"Interprocedural: roots are registered interrupt handlers, interrupts-disabled and\n" +
		"lock-held syscall segments, BKL holds, and //simlint:region directives; each root's\n" +
		"duration expression is bounded over an interval lattice (constant folding, call\n" +
		"inlining over the module graph, RNG distribution supports, loop trip inference).\n" +
		"Data-dependent loops, recursion, heavy-tailed draws, and unresolvable calls make a\n" +
		"region unbounded — a diagnostic with the blame chain, unless audited with\n" +
		"//simlint:allow latbound <reason>. simlint -bounds exports the full region report.",
	RunModule: run,
}

func run(pass *framework.ModulePass) error {
	_, findings := Collect(pass.Fset, pass.Pkgs, pass.Graph, "")
	for _, f := range findings {
		pass.Reportf(f.Pos, "%s", f.Message)
	}
	return nil
}

// A Finding is one latbound diagnostic (position + message), exposed so
// the -bounds driver can reuse a single collection pass.
type Finding struct {
	Pos     token.Pos
	Message string
}

// region is a collected root before conversion to the report model.
type region struct {
	name    string
	cause   string
	pos     token.Pos
	iv      framework.Interval
	segs    []framework.Interval // per-segment bounds for seg:/bkl:/irqoff: runs
	allowed bool
}

type collector struct {
	fset    *token.FileSet
	pkgs    []*framework.Package
	graph   *framework.CallGraph
	ev      *framework.Evaluator
	dir     string
	regions []region
	bad     []Finding

	// handlerJoin is the join of every registered handler's bound; it
	// resolves IRQLine.HandlerWork calls, which launder the handler
	// through a function-typed field RegisterIRQ assigns.
	handlerJoin   framework.Interval
	handlerJoinOK bool

	// bklVars are variables whose SyscallCall later gets TakesBKL set
	// by assignment (call.TakesBKL = true) rather than in the literal.
	bklVars map[*types.Var]bool

	// allows maps file -> lines carrying //simlint:allow latbound (or
	// all) with a reason; line 0 marks a file-scope allow.
	allows map[string]map[int]bool
}

// Collect roots every region over the loaded package set and returns
// the bounds report plus the diagnostics for unbounded, unaudited
// regions. dir, when non-empty, relativizes positions in the report.
func Collect(fset *token.FileSet, pkgs []*framework.Package, graph *framework.CallGraph, dir string) (*latency.Report, []Finding) {
	c := &collector{
		fset:    fset,
		pkgs:    pkgs,
		graph:   graph,
		dir:     dir,
		bklVars: make(map[*types.Var]bool),
		allows:  make(map[string]map[int]bool),
	}
	c.ev = framework.NewEvaluator(fset, pkgs, graph)
	c.ev.Intrinsic = c.intrinsic

	c.scanAllows()
	c.scanBKLVars()
	c.collectHandlers()
	c.collectSegments()
	c.collectDirectives()

	report := &latency.Report{Tool: "simlint/latbound"}
	var findings []Finding
	for _, r := range c.regions {
		reg := latency.Region{
			Name:    r.name,
			Cause:   r.cause,
			Pos:     c.position(r.pos),
			Allowed: r.allowed,
		}
		if r.iv.Bounded() {
			reg.Bound = latency.Bound{ScaledNS: r.iv.Scaled.Hi, FixedNS: r.iv.Fixed.Hi}
		} else {
			reg.Unbounded = true
			reg.Blame = c.blame(r.iv)
			if !r.allowed {
				findings = append(findings, Finding{
					Pos: r.pos,
					Message: fmt.Sprintf("%s region %s has no finite static latency bound: %s",
						r.cause, r.name, c.blame(r.iv)),
				})
			}
		}
		for _, seg := range r.segs {
			sb := latency.SegBound{}
			if seg.Bounded() {
				sb.Bound = latency.Bound{ScaledNS: seg.Scaled.Hi, FixedNS: seg.Fixed.Hi}
			} else {
				sb.Unbounded = true
			}
			reg.Segs = append(reg.Segs, sb)
		}
		report.Regions = append(report.Regions, reg)
	}
	report.Sort()
	findings = append(findings, c.bad...)
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return report, findings
}

func (c *collector) position(pos token.Pos) string {
	p := c.fset.Position(pos)
	name := p.Filename
	if c.dir != "" {
		if rel, err := filepath.Rel(c.dir, name); err == nil && !filepath.IsAbs(rel) {
			name = filepath.ToSlash(rel)
		}
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// blame renders an interval's blame chain with dir-relative positions.
func (c *collector) blame(iv framework.Interval) string {
	var b strings.Builder
	for i, bl := range iv.Blame {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(bl.Reason)
		if bl.Pos.IsValid() {
			fmt.Fprintf(&b, " (%s)", c.position(bl.Pos))
		}
	}
	return b.String()
}

// scanAllows indexes //simlint:allow latbound directives per file line,
// mirroring the framework's suppression rule (same line, line above, or
// file scope on the package clause line) so the report's Allowed flag
// agrees with which diagnostics the driver suppresses.
func (c *collector) scanAllows() {
	for _, pkg := range c.pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
					rest, ok := strings.CutPrefix(text, allowPrefix)
					if !ok {
						continue
					}
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = rest[:i]
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 || (fields[0] != "latbound" && fields[0] != "all") {
						continue
					}
					p := c.fset.Position(cm.Pos())
					m := c.allows[p.Filename]
					if m == nil {
						m = make(map[int]bool)
						c.allows[p.Filename] = m
					}
					if p.Line == c.fset.Position(f.Package).Line {
						m[0] = true
					}
					m[p.Line] = true
				}
			}
		}
	}
}

func (c *collector) allowed(pos token.Pos) bool {
	p := c.fset.Position(pos)
	m := c.allows[p.Filename]
	return m[0] || m[p.Line] || m[p.Line-1]
}

func (c *collector) add(r region) {
	r.allowed = c.allowed(r.pos)
	c.regions = append(c.regions, r)
}

// --- phase 1: TakesBKL assignments and registered handlers ---

// scanBKLVars records variables that receive `v.TakesBKL = true` so the
// segment walk treats their literals as BKL holds even when the literal
// itself omits the field.
func (c *collector) scanBKLVars() {
	for _, pkg := range c.pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 {
					return true
				}
				sel, ok := as.Lhs[0].(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "TakesBKL" {
					return true
				}
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						c.bklVars[v] = true
					}
				}
				return true
			})
		}
	}
}

// collectHandlers roots a region at every ISR body the kernel can
// dispatch: the handler argument of every Kernel.RegisterIRQ call, plus
// every direct assignment to the IRQLine.HandlerWork field (the per-CPU
// local timer takes that path). Their join bounds any HandlerWork call.
func (c *collector) collectHandlers() {
	type site struct {
		pkg     *framework.Package
		name    string
		handler ast.Expr
		pos     token.Pos
	}
	var sites []site
	for _, pkg := range c.pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			walkFuncs(f, func(fname string, body ast.Node) {
				ast.Inspect(body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						fn := framework.CalleeFunc(info, n)
						if fn == nil || framework.MethodKey(fn) != kernelPath+".Kernel.RegisterIRQ" || len(n.Args) < 3 {
							return true
						}
						name := "irq:" + fname
						if tv, ok := info.Types[n.Args[0]]; ok && tv.Value != nil {
							name = "irq:" + strings.Trim(tv.Value.String(), `"`)
						}
						sites = append(sites, site{pkg, name, n.Args[2], n.Pos()})
					case *ast.AssignStmt:
						if n.Tok != token.ASSIGN || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
							return true
						}
						if v := handlerWorkField(info, n.Lhs[0]); v != nil {
							sites = append(sites, site{pkg, "irq:" + fname, n.Rhs[0], n.Pos()})
						}
					}
					return true
				})
			})
		}
	}
	first := true
	for _, s := range sites {
		handler := ast.Unparen(s.handler)
		if id, ok := handler.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		var iv framework.Interval
		nodes := c.graph.NodesForValue(s.pkg.TypesInfo, handler)
		if len(nodes) == 0 {
			iv = framework.Unbounded(handler.Pos(), "interrupt handler does not resolve to a function body")
		} else {
			for i, n := range nodes {
				b := c.ev.EvalFuncNode(n, nil, handler.Pos())
				if i == 0 {
					iv = b
				} else {
					iv = iv.Join(b)
				}
			}
		}
		c.add(region{name: s.name, cause: "irq-handler", pos: s.pos, iv: iv})
		if first {
			c.handlerJoin, c.handlerJoinOK, first = iv, true, false
		} else {
			c.handlerJoin = c.handlerJoin.Join(iv)
		}
	}
}

// handlerWorkField matches an expression selecting the kernel's
// IRQLine.HandlerWork field and returns the field object.
func handlerWorkField(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "HandlerWork" {
		return nil
	}
	if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == kernelPath {
			return v
		}
	}
	return nil
}

// --- phase 2: segment literals ---

// segLit is one parsed element of a []Segment literal.
type segLit struct {
	pos     token.Pos
	block   bool
	irqsOff bool
	lock    bool
	d       ast.Expr // nil when absent
}

func (c *collector) collectSegments() {
	for _, pkg := range c.pkgs {
		info := pkg.TypesInfo
		for _, f := range pkg.Files {
			walkFuncs(f, func(fname string, body ast.Node) {
				ord := 0
				bkl := 0
				qual := pkg.Types.Name() + "." + fname
				ast.Inspect(body, func(n ast.Node) bool {
					cl, ok := n.(*ast.CompositeLit)
					if !ok {
						return true
					}
					if isNamed(info.TypeOf(cl), kernelPath, "SyscallCall") {
						if c.syscallTakesBKL(info, cl) {
							c.collectBKL(pkg, cl, qual, &bkl)
						}
						return true
					}
					if t, ok := info.TypeOf(cl).Underlying().(*types.Slice); ok && isNamed(t.Elem(), kernelPath, "Segment") {
						c.collectSegSlice(pkg, cl, qual, &ord)
						return false // elements handled; don't re-enter
					}
					return true
				})
			})
		}
	}
}

// syscallTakesBKL reports whether the SyscallCall literal takes the BKL:
// either in the literal or via a later `v.TakesBKL = true` on the
// variable the literal is assigned to.
func (c *collector) syscallTakesBKL(info *types.Info, cl *ast.CompositeLit) bool {
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "TakesBKL" {
				if id, ok := ast.Unparen(kv.Value).(*ast.Ident); ok {
					return id.Name != "false"
				}
				return true
			}
		}
	}
	// The literal omits TakesBKL: check assignment-based marking.
	for v := range c.bklVars {
		for _, w := range c.varWriteSites(v) {
			e := ast.Unparen(w)
			if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
				e = ast.Unparen(u.X)
			}
			if e == cl {
				return true
			}
		}
	}
	return false
}

// varWriteSites exposes the evaluator's write map for BKL matching.
func (c *collector) varWriteSites(v *types.Var) []ast.Expr {
	var out []ast.Expr
	for _, site := range c.ev.WritesOf(v) {
		out = append(out, site.Expr)
	}
	return out
}

// parseSegs extracts the ordered per-element structure of a []Segment
// literal. Non-literal elements come back as unbounded work segments.
func (c *collector) parseSegs(info *types.Info, cl *ast.CompositeLit) []segLit {
	segs := make([]segLit, 0, len(cl.Elts))
	for _, elt := range cl.Elts {
		el, ok := ast.Unparen(elt).(*ast.CompositeLit)
		if !ok {
			segs = append(segs, segLit{pos: elt.Pos()})
			continue
		}
		s := segLit{pos: el.Pos()}
		for _, f := range el.Elts {
			kv, ok := f.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Kind":
				s.block = exprName(kv.Value) == "SegBlock"
			case "D":
				s.d = kv.Value
			case "Lock":
				s.lock = exprName(kv.Value) != "nil"
			case "IRQsOff":
				s.irqsOff = exprName(kv.Value) != "false"
			}
		}
		segs = append(segs, s)
	}
	return segs
}

func (c *collector) segBound(pkg *framework.Package, s segLit) framework.Interval {
	if s.block {
		return framework.Exact(0)
	}
	if s.d == nil {
		return framework.Unbounded(s.pos, "segment has no static duration expression")
	}
	return c.ev.Eval(framework.ExprSite{Pkg: pkg, Expr: s.d}, nil)
}

// collectSegSlice roots lock-held segments and interrupts-disabled runs
// within one []Segment literal.
func (c *collector) collectSegSlice(pkg *framework.Package, cl *ast.CompositeLit, qual string, ord *int) {
	segs := c.parseSegs(pkg.TypesInfo, cl)
	for _, s := range segs {
		if s.lock && !s.block {
			iv := c.segBound(pkg, s)
			c.add(region{
				name:  fmt.Sprintf("seg:%s#%d", qual, *ord),
				cause: "lock",
				pos:   s.pos,
				iv:    iv,
				segs:  []framework.Interval{iv},
			})
			*ord++
		}
	}
	// Interrupts-disabled runs: consecutive irq-off work segments merge
	// into one region (no trace record splits an episode between them).
	for i := 0; i < len(segs); {
		if !segs[i].irqsOff || segs[i].block {
			i++
			continue
		}
		j := i
		sum := framework.Exact(0)
		var parts []framework.Interval
		for ; j < len(segs) && segs[j].irqsOff && !segs[j].block; j++ {
			b := c.segBound(pkg, segs[j])
			sum = sum.Add(b)
			parts = append(parts, b)
		}
		c.add(region{
			name:  fmt.Sprintf("irqoff:%s#%d", qual, *ord),
			cause: "irq-off",
			pos:   segs[i].pos,
			iv:    sum,
			segs:  parts,
		})
		*ord++
		i = j
	}
}

// collectBKL roots the BKL holds of one TakesBKL syscall: the lock is
// taken at entry, dropped across every blocking segment, and reacquired
// after, so each run of non-block segments is one hold.
func (c *collector) collectBKL(pkg *framework.Package, cl *ast.CompositeLit, qual string, bkl *int) {
	var segsLit *ast.CompositeLit
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Segments" {
				segsLit, _ = ast.Unparen(kv.Value).(*ast.CompositeLit)
			}
		}
	}
	if segsLit == nil {
		c.add(region{
			name:  fmt.Sprintf("bkl:%s#%d", qual, *bkl),
			cause: "lock",
			pos:   cl.Pos(),
			iv:    framework.Unbounded(cl.Pos(), "BKL syscall's segments are not a literal"),
		})
		*bkl++
		return
	}
	segs := c.parseSegs(pkg.TypesInfo, segsLit)
	for i := 0; i < len(segs); {
		if segs[i].block {
			i++
			continue
		}
		j := i
		sum := framework.Exact(0)
		var parts []framework.Interval
		for ; j < len(segs) && !segs[j].block; j++ {
			b := c.segBound(pkg, segs[j])
			sum = sum.Add(b)
			parts = append(parts, b)
		}
		c.add(region{
			name:  fmt.Sprintf("bkl:%s#%d", qual, *bkl),
			cause: "lock",
			pos:   segs[i].pos,
			iv:    sum,
			segs:  parts,
		})
		*bkl++
		i = j
	}
}

// --- phase 3: //simlint:region directives ---

type regionDirective struct {
	cause, name string
	pos         token.Pos
	line        int
	used        bool
}

func (c *collector) collectDirectives() {
	for _, pkg := range c.pkgs {
		for _, f := range pkg.Files {
			dirs := c.parseRegionDirectives(f)
			if len(dirs) == 0 {
				continue
			}
			byLine := make(map[int]*regionDirective, len(dirs))
			for _, d := range dirs {
				byLine[d.line] = d
			}
			c.matchDirectives(pkg, f, byLine)
			for _, d := range dirs {
				if !d.used {
					c.bad = append(c.bad, Finding{
						Pos:     d.pos,
						Message: "simlint:region directive does not attach to an assignment, value spec, or function declaration",
					})
				}
			}
		}
	}
}

func (c *collector) parseRegionDirectives(f *ast.File) []*regionDirective {
	var out []*regionDirective
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
			rest, ok := strings.CutPrefix(text, regionPrefix)
			if !ok {
				continue
			}
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				c.bad = append(c.bad, Finding{
					Pos:     cm.Pos(),
					Message: "simlint:region needs a cause and a name: //simlint:region <cause> <name>",
				})
				continue
			}
			out = append(out, &regionDirective{
				cause: fields[0],
				name:  fields[1],
				pos:   cm.Pos(),
				line:  c.fset.Position(cm.Pos()).Line,
			})
		}
	}
	return out
}

// matchDirectives attaches directives to code: an end-of-line directive
// roots the assignment or value spec starting on its line; a directive
// in (or directly above) a function's doc comment roots the function's
// whole body bound.
func (c *collector) matchDirectives(pkg *framework.Package, f *ast.File, byLine map[int]*regionDirective) {
	info := pkg.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			d := byLine[c.fset.Position(x.Pos()).Line]
			if d == nil || d.used || len(x.Rhs) == 0 {
				return true
			}
			d.used = true
			iv := c.ev.Eval(framework.ExprSite{Pkg: pkg, Expr: x.Rhs[0]}, nil)
			c.add(region{name: d.name, cause: d.cause, pos: x.Pos(), iv: iv})
		case *ast.ValueSpec:
			d := byLine[c.fset.Position(x.Pos()).Line]
			if d == nil || d.used || len(x.Values) == 0 {
				return true
			}
			d.used = true
			iv := c.ev.Eval(framework.ExprSite{Pkg: pkg, Expr: x.Values[0]}, nil)
			c.add(region{name: d.name, cause: d.cause, pos: x.Pos(), iv: iv})
		case *ast.FuncDecl:
			if x.Doc == nil {
				return true
			}
			for _, cm := range x.Doc.List {
				d := byLine[c.fset.Position(cm.Pos()).Line]
				if d == nil || d.used {
					continue
				}
				d.used = true
				fn, _ := info.Defs[x.Name].(*types.Func)
				node := c.graph.Funcs[fn]
				iv := framework.Unbounded(x.Pos(), "function has no analyzable body")
				if node != nil {
					iv = c.ev.EvalFuncNode(node, nil, x.Pos())
				}
				c.add(region{name: d.name, cause: d.cause, pos: x.Pos(), iv: iv})
			}
		}
		return true
	})
}

// --- unit semantics ---

// intrinsic gives the evaluator the model's unit and distribution
// vocabulary: Config.scale moves costs into the frequency-scaled
// bucket, Duration.Scale multiplies by a unitless factor, and RNG draws
// map to their supports. Calls through the IRQLine.HandlerWork field —
// the one function-typed field that launders every handler — are
// bounded by the join of every handler collected in phase 1, not by the
// partial points-to set of direct field assignments.
func (c *collector) intrinsic(ev *framework.Evaluator, site framework.ExprSite, call *ast.CallExpr, env framework.Env) (framework.Interval, bool) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if handlerWorkField(site.Pkg.TypesInfo, sel) != nil {
			if !c.handlerJoinOK {
				return framework.Unbounded(call.Pos(), "no interrupt handlers were collected"), true
			}
			return c.handlerJoin, true
		}
	}
	fn := framework.CalleeFunc(site.Pkg.TypesInfo, call)
	if fn == nil {
		return framework.Interval{}, false
	}
	arg := func(i int) framework.Interval {
		return ev.Eval(framework.ExprSite{Pkg: site.Pkg, Expr: call.Args[i]}, env)
	}
	switch framework.MethodKey(fn) {
	case kernelPath + ".Config.scale":
		return arg(0).ToScaled(), true
	case simPath + ".Duration.Scale":
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return framework.Interval{}, false
		}
		recv := ev.Eval(framework.ExprSite{Pkg: site.Pkg, Expr: sel.X}, env)
		k := arg(0)
		if k.Bounded() && k.Scaled.Lo == 0 && k.Scaled.Hi == 0 {
			return recv.MulScalar(k.Fixed), true
		}
		return framework.Unbounded(call.Pos(), "Scale factor is not statically bounded").Join(k), true
	case simPath + ".RNG.Jitter":
		d := arg(0)
		f, ok := ev.ConstFloat(site, call.Args[1])
		if !ok {
			return framework.Unbounded(call.Args[1].Pos(), "jitter fraction is not constant"), true
		}
		if f <= 0 {
			return d, true
		}
		return d.MulScalar(framework.Range{Lo: 1 - f, Hi: 1 + f}), true
	case simPath + ".RNG.Uniform":
		return arg(0).Join(arg(1)), true
	case simPath + ".RNG.Pareto":
		xm, max := arg(0), arg(2)
		if max.Bounded() && (max.Fixed.Lo > 0 || max.Scaled.Lo > 0) {
			return xm.Join(max), true
		}
		return framework.Unbounded(call.Pos(), "Pareto draw has no positive static cap, so its tail is unbounded"), true
	case simPath + ".RNG.Exp", simPath + ".RNG.LogNormal",
		simPath + ".RNG.LogNormalMeanP99", simPath + ".RNG.Normal":
		return framework.Unbounded(call.Pos(), "%s draws from an unbounded distribution", fn.Name()), true
	case simPath + ".RNG.Float64", simPath + ".RNG.Bool":
		return framework.Interval{Fixed: framework.Range{Lo: 0, Hi: 1}}, true
	case simPath + ".RNG.Intn":
		return arg(0).Join(framework.Exact(0)), true
	}
	return framework.Interval{}, false
}

// --- small helpers ---

// walkFuncs visits each top-level function (and method) body along with
// its receiver-qualified name; file-scope var initializers walk under
// the name "init".
func walkFuncs(f *ast.File, visit func(name string, body ast.Node)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body == nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				if r := recvName(d.Recv.List[0].Type); r != "" {
					name = r + "." + name
				}
			}
			visit(name, d.Body)
		case *ast.GenDecl:
			visit("init", d)
		}
	}
}

// recvName extracts a receiver type's base identifier ("*RCIM" -> "RCIM").
func recvName(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.StarExpr:
		return recvName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvName(t.X)
	}
	return ""
}

func isNamed(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// exprName returns the trailing identifier of an ident or selector, or
// "" for anything else — enough to recognize SegBlock / nil / false.
func exprName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}
