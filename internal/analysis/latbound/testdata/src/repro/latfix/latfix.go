// Package latfix exercises the latbound analyzer: every rooted region
// kind (registered handlers, lock-held and interrupts-disabled segment
// runs, BKL holds, manual //simlint:region directives), the bounded
// cases that must stay silent, and the statically unbounded true
// positives — several of which a dynamic harness can never catch,
// because any finite run of a heavy-tailed draw or data-dependent loop
// observes a finite value.
package latfix

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// InstallGood registers a handler whose every draw has compact support:
// jittered PCI transactions plus a capped Pareto tail. Bounded — the
// analyzer must stay silent.
func InstallGood(k *kernel.Kernel) {
	k.RegisterIRQ("good", 0, func(rng *sim.RNG) sim.Duration {
		return rng.Jitter(5*sim.Microsecond, 0.2) +
			rng.Pareto(600*sim.Nanosecond, 1.3, 10*sim.Microsecond)
	}, nil)
}

// InstallHeavyTail registers a handler drawing from an exponential —
// unbounded support, so no static worst case exists. A perturbation
// harness cannot catch this: every finite run sees a finite maximum.
func InstallHeavyTail(k *kernel.Kernel) {
	k.RegisterIRQ("tail", 0, func(rng *sim.RNG) sim.Duration { // want `irq-handler region irq:tail has no finite static latency bound: Exp draws from an unbounded distribution`
		return rng.Exp(2 * sim.Microsecond)
	}, nil)
}

// InstallLoop registers a handler whose cost is a data-dependent loop:
// n is runtime input, so the trip count has no static bound.
func InstallLoop(k *kernel.Kernel, n int) {
	k.RegisterIRQ("loop", 0, func(rng *sim.RNG) sim.Duration { // want `irq-handler region irq:loop has no finite static latency bound: data-dependent loop`
		var d sim.Duration
		for i := 0; i < n; i++ {
			d += sim.Microsecond
		}
		return d
	}, nil)
}

// InstallBoundedLoop is the same shape with an inferable trip count:
// 8 iterations x 2us = 16us. Bounded, silent.
func InstallBoundedLoop(k *kernel.Kernel) {
	k.RegisterIRQ("bloop", 0, func(rng *sim.RNG) sim.Duration {
		var d sim.Duration
		for i := 0; i < 8; i++ {
			d += 2 * sim.Microsecond
		}
		return d
	}, nil)
}

// recWork retries a device register read with no static depth cap.
func recWork(depth int) sim.Duration {
	if depth == 0 {
		return sim.Microsecond
	}
	return recWork(depth-1) + sim.Microsecond
}

// InstallRec registers a handler built on recursion: the abstract
// interpreter refuses to unroll it.
func InstallRec(k *kernel.Kernel) {
	k.RegisterIRQ("rec", 0, func(rng *sim.RNG) sim.Duration { // want `irq-handler region irq:rec has no finite static latency bound: recWork is recursive`
		return recWork(3)
	}, nil)
}

// LockedCall holds a spinlock for a uniformly drawn, compactly
// supported duration. Bounded, silent.
func LockedCall(k *kernel.Kernel, rng *sim.RNG) *kernel.SyscallCall {
	return &kernel.SyscallCall{
		Name: "ioctl(fix)",
		Segments: []kernel.Segment{
			{Kind: kernel.SegWork, D: 300 * sim.Nanosecond},
			{Kind: kernel.SegWork, D: rng.Uniform(10*sim.Microsecond, 40*sim.Microsecond), Lock: k.NamedLock("fix")},
		},
	}
}

// IRQOffCall disables interrupts across a run of segments whose middle
// leg is caller-supplied: the whole run is one irq-off region with no
// static bound.
func IRQOffCall(d sim.Duration) *kernel.SyscallCall {
	return &kernel.SyscallCall{
		Name: "flush",
		Segments: []kernel.Segment{
			{Kind: kernel.SegWork, D: 700 * sim.Nanosecond, IRQsOff: true}, // want `irq-off region irqoff:latfix.IRQOffCall#0 has no finite static latency bound`
			{Kind: kernel.SegWork, D: d, IRQsOff: true},
			{Kind: kernel.SegWork, D: 300 * sim.Nanosecond},
		},
	}
}

// TailBKL marks its call as a BKL taker after construction (the 2.4
// idiom this tree uses for probabilistic BKL paths) and holds the lock
// for a log-normal — heavy-tailed — duration. The audited allow keeps
// it out of the findings while the report still records it unbounded.
func TailBKL(rng *sim.RNG) *kernel.SyscallCall {
	call := &kernel.SyscallCall{
		Name: "write(tail)",
		Segments: []kernel.Segment{
			//simlint:allow latbound fixture audit: the heavy-tailed BKL hold is the measured pathology, bounded only by a critical-section cap
			{Kind: kernel.SegWork, D: rng.LogNormal(8.0, 1.5)},
		},
	}
	call.TakesBKL = true
	return call
}

// TailBKL2 is the same hold without the audit: a finding.
func TailBKL2(rng *sim.RNG) *kernel.SyscallCall {
	return &kernel.SyscallCall{
		Name:     "write(tail2)",
		TakesBKL: true,
		Segments: []kernel.Segment{
			{Kind: kernel.SegWork, D: rng.LogNormal(8.0, 1.5)}, // want `lock region bkl:latfix.TailBKL2#0 has no finite static latency bound: LogNormal draws from an unbounded distribution`
		},
	}
}

// The smallest fixed cost in the fixture, rooted by directive; bounded.
const fixReturn = 150 * sim.Nanosecond //simlint:region run fix-return

// Window roots an assignment whose value scales a caller-supplied
// duration: unbounded, reported at the assignment.
func Window(d sim.Duration) sim.Duration {
	w := d.Scale(2.0) //simlint:region irq-off fix-window // want `irq-off region fix-window has no finite static latency bound`
	return w
}

// PickFixed is a function-level region via a doc directive; bounded.
//
//simlint:region sched fix-pick
func PickFixed() sim.Duration {
	return 500*sim.Nanosecond + fixReturn
}

// LegacyPick is unbounded (linear in n) but audited: the allow directly
// above the declaration suppresses the finding.
//
//simlint:region sched fix-legacy
//simlint:allow latbound fixture audit: linear pick cost by design
func LegacyPick(n int) sim.Duration {
	return (100 * sim.Nanosecond).Scale(float64(n))
}

//simlint:region sched orphan // want `simlint:region directive does not attach`

//simlint:region sched // want `simlint:region needs a cause and a name`

// ReasonlessPick shows the escape-hatch audit: an allow directive with
// no justification never suppresses and is itself a finding, so the
// unbounded region below still reports.
//
//simlint:region sched fix-reasonless
//simlint:allow latbound // want `simlint:allow latbound needs a reason stating why the rule is safe to break here`
func ReasonlessPick(n int) sim.Duration { // want `sched region fix-reasonless has no finite static latency bound`
	return (100 * sim.Nanosecond).Scale(float64(n))
}
