package latbound_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/latbound"
)

// TestLatbound checks the analyzer against a fixture package covering
// every region root: registered interrupt handlers (bounded draws,
// heavy-tailed draws, data-dependent loops, bounded loops, recursion),
// lock-held and irq-off segment runs, BKL holds via both the literal
// and post-construction idioms, manual //simlint:region directives on
// assignments, value specs and function declarations, audited
// //simlint:allow escapes, and malformed or orphaned directives.
func TestLatbound(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(t),
		[]*framework.Analyzer{latbound.Analyzer}, "repro/latfix")
}
