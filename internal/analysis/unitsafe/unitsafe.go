// Package unitsafe enforces time-unit soundness for the simulator's
// clock types.
//
// sim.Duration and sim.Time are integer nanosecond counts, so Go will
// happily convert a bare integer literal into either — `After(1500,
// fn)` compiles and silently means 1.5 microseconds. Every latency
// figure this repository reproduces is a time measurement; a magic
// number that skips the unit system is exactly the kind of defect that
// survives review (the code runs, the plots look plausible) and
// corrupts a reproduced number by three orders of magnitude.
//
// The rule: an integer literal may take on a clock type only by being
// combined with something that already carries units — a named
// sim.Duration constant (`1500 * sim.Nanosecond`), a Config-derived
// value, another Duration expression. A bare literal typed as Duration
// or Time, and a direct conversion like `sim.Duration(1500)`, are
// findings. Zero is unit-free and always allowed; the sim package's own
// constant declarations are exempt, since the base units themselves
// must be defined from a raw literal.
//
// Because Duration's representation is nanoseconds, every finding has a
// value-preserving machine fix: multiply the literal by the package's
// Nanosecond constant. The fix changes no behavior — it only makes the
// unit explicit — so it is attached as a suggested fix and surfaced in
// SARIF.
package unitsafe

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

const simPath = "repro/internal/sim"

// Analyzer is the unitsafe rule.
var Analyzer = &framework.Analyzer{
	Name: "unitsafe",
	Doc: "require explicit units when integer literals become sim.Duration/sim.Time\n\n" +
		"The clock types are raw nanosecond counts, so `After(1500, fn)` compiles and\n" +
		"silently means 1.5us. A literal may take on a clock type only through something\n" +
		"that already carries units: write `1500 * sim.Nanosecond`, a named constant, or\n" +
		"a Config-derived helper. Direct conversions like sim.Duration(1500) are flagged\n" +
		"too. Zero is unit-free and allowed.",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *framework.Pass, f *ast.File) {
	simName, canFix := importName(f, pass)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.BasicLit:
			checkLiteral(pass, n, stack, simName, canFix)
		case *ast.CallExpr:
			checkConversion(pass, n, stack, simName, canFix)
		}
		return true
	})
}

// checkLiteral flags an integer literal whose recorded type is a clock
// type unless some enclosing operator combines it with an expression
// that already carries units.
func checkLiteral(pass *framework.Pass, lit *ast.BasicLit, stack []ast.Node, simName string, canFix bool) {
	if lit.Kind != token.INT {
		return
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	typ := tv.Type
	if !isClock(typ) {
		// For a negated literal (-250), go/types records the clock type
		// on the enclosing unary expression, not the literal itself.
		if len(stack) >= 2 {
			if u, isU := stack[len(stack)-2].(*ast.UnaryExpr); isU {
				if tu, ok := pass.TypesInfo.Types[u]; ok && isClock(tu.Type) {
					typ = tu.Type
				}
			}
		}
		if !isClock(typ) {
			return
		}
	}
	if isZero(tv.Value) {
		return
	}
	// Climb through operators: a sibling operand with units legitimizes
	// the literal as a scale factor. Stop at the first structural parent
	// (argument list, field value, return, ...).
	child := ast.Node(lit)
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.UnaryExpr:
			child = stack[i]
			continue
		case *ast.BinaryExpr:
			sibling := p.X
			if sibling == child {
				sibling = p.Y
			}
			if carriesUnits(pass.TypesInfo, sibling) {
				return
			}
			child = stack[i]
			continue
		case *ast.CallExpr:
			// A conversion parent owns the report (checkConversion): the
			// literal is untyped there and the conversion is the defect.
			if tfun, ok := pass.TypesInfo.Types[p.Fun]; ok && tfun.IsType() {
				return
			}
		case *ast.ValueSpec, *ast.GenDecl:
			// The sim package defines the base units from raw literals
			// (Nanosecond Duration = 1); its own constant declarations
			// are the one place a unitless literal is the point.
			if pass.Pkg.Path() == simPath {
				return
			}
		}
		break
	}
	d := framework.Diagnostic{
		Pos: lit.Pos(),
		Message: "integer literal " + lit.Value + " used as " + clockName(typ) +
			" without units: multiply by a sim unit constant (e.g. " + lit.Value + " * sim.Nanosecond) or derive it from Config",
	}
	if canFix {
		d.Fixes = []framework.SuggestedFix{{
			Message: "make the nanosecond unit explicit: " + lit.Value + " * " + simName + "Nanosecond",
			Edits: []framework.TextEdit{{
				Pos:     lit.End(),
				End:     lit.End(),
				NewText: " * " + simName + "Nanosecond",
			}},
		}}
	}
	pass.Report(d)
}

// checkConversion flags sim.Duration(expr) / sim.Time(expr) where expr
// is a unitless constant: the conversion manufactures a clock value
// from a magic number. A conversion that is itself an operand of an
// operator whose other side carries units is a dimensionless scale
// factor (`sim.Duration(chunkKB) * costPerKB`) and is sound.
func checkConversion(pass *framework.Pass, call *ast.CallExpr, stack []ast.Node, simName string, canFix bool) {
	if len(call.Args) != 1 {
		return
	}
	tfun, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tfun.IsType() || !isClock(tfun.Type) {
		return
	}
	if pass.Pkg.Path() == simPath {
		return
	}
	arg := call.Args[0]
	ta, ok := pass.TypesInfo.Types[arg]
	if !ok || ta.Value == nil || ta.Value.Kind() != constant.Int || isZero(ta.Value) {
		return
	}
	if carriesUnits(pass.TypesInfo, arg) {
		return
	}
	child := ast.Node(call)
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.UnaryExpr:
			child = stack[i]
			continue
		case *ast.BinaryExpr:
			sibling := p.X
			if sibling == child {
				sibling = p.Y
			}
			if carriesUnits(pass.TypesInfo, sibling) {
				return
			}
			child = stack[i]
			continue
		}
		break
	}
	d := framework.Diagnostic{
		Pos: call.Pos(),
		Message: "constant " + ta.Value.String() + " converted to " + clockName(tfun.Type) +
			" without units: multiply by a sim unit constant instead of converting a magic number",
	}
	if canFix {
		d.Fixes = []framework.SuggestedFix{{
			Message: "make the nanosecond unit explicit: " + ta.Value.String() + " * " + simName + "Nanosecond",
			Edits: []framework.TextEdit{{
				Pos:     call.Pos(),
				End:     call.End(),
				NewText: ta.Value.String() + " * " + simName + "Nanosecond",
			}},
		}}
	}
	pass.Report(d)
}

// carriesUnits reports whether the expression mentions anything already
// clock-typed by name — a unit constant, a Duration variable or field,
// a call returning Duration — as opposed to bare literals.
func carriesUnits(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr, *ast.IndexExpr:
			if tv, ok := info.Types[n.(ast.Expr)]; ok && isClock(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isClock reports whether t is sim.Duration or sim.Time.
func isClock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != simPath {
		return false
	}
	return obj.Name() == "Duration" || obj.Name() == "Time"
}

func clockName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return "sim." + named.Obj().Name()
	}
	return t.String()
}

func isZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	return constant.Compare(v, token.EQL, constant.MakeInt64(0))
}

// importName returns the qualifier for referring to the sim package's
// Nanosecond constant from file f ("sim." normally, the import's name
// if renamed, empty inside sim itself or under a dot import), and
// whether the constant is referable at all — when the file does not
// import the package, no fix can be offered.
func importName(f *ast.File, pass *framework.Pass) (string, bool) {
	if pass.Pkg.Path() == simPath {
		return "", true
	}
	for _, imp := range f.Imports {
		if imp.Path.Value != `"`+simPath+`"` {
			continue
		}
		if imp.Name != nil {
			switch imp.Name.Name {
			case ".":
				return "", true
			case "_":
				return "", false
			}
			return imp.Name.Name + ".", true
		}
		return "sim.", true
	}
	return "", false
}
