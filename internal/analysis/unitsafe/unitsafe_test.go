package unitsafe_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/unitsafe"
)

// TestUnitsafe checks the analyzer against a fixture covering bare
// literals in every structural position (var, const, field, argument,
// unary/paren wrapping), magic-number conversions, unit-carrying
// expressions that must stay silent, scalar-factor conversions, and
// the //simlint:allow escape.
func TestUnitsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t),
		[]*framework.Analyzer{unitsafe.Analyzer}, "repro/unitfix")
}

// TestUnitsafeFixes checks the fix payload: every finding in the
// fixture (which imports sim by its usual name) must carry exactly one
// suggested fix whose edit makes the nanosecond unit explicit. The fix
// is value-preserving — Duration's representation is nanoseconds, so
// `N` and `N * sim.Nanosecond` are the same value.
func TestUnitsafeFixes(t *testing.T) {
	dir := filepath.Join(analysistest.TestData(t), "src", "repro", "unitfix")
	loader, err := framework.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirAs(dir, "repro/unitfix")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.RunPackage(pkg, []*framework.Analyzer{unitsafe.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics on the fixture")
	}
	for _, d := range diags {
		if len(d.Fixes) != 1 {
			t.Errorf("%s: got %d fixes, want 1 (%s)", pkg.Fset.Position(d.Pos), len(d.Fixes), d.Message)
			continue
		}
		fix := d.Fixes[0]
		if len(fix.Edits) != 1 {
			t.Errorf("%s: fix has %d edits, want 1", pkg.Fset.Position(d.Pos), len(fix.Edits))
			continue
		}
		e := fix.Edits[0]
		if !strings.Contains(e.NewText, "sim.Nanosecond") {
			t.Errorf("%s: fix text %q does not name the unit", pkg.Fset.Position(d.Pos), e.NewText)
		}
		if !e.Pos.IsValid() || e.End < e.Pos {
			t.Errorf("%s: fix edit has invalid range", pkg.Fset.Position(d.Pos))
		}
	}
}
