// Package unitfix exercises the unitsafe analyzer: bare literals taking
// on clock types (the true positives — note that no dynamic harness can
// catch these, because a unit error produces consistently wrong but
// perfectly reproducible numbers), unit-carrying expressions that must
// stay silent, scalar-factor conversions, and the audited allow escape.
package unitfix

import (
	"repro/internal/sim"
)

type timer struct {
	Tick sim.Duration
	At   sim.Time
}

func take(d sim.Duration) sim.Duration { return d }

// Bare literals becoming clock values: findings.
var (
	rawVar   sim.Duration = 1500 // want `integer literal 1500 used as sim\.Duration without units`
	rawTime  sim.Time     = 99   // want `integer literal 99 used as sim\.Time without units`
	rawNeg   sim.Duration = -250 // want `integer literal 250 used as sim\.Duration without units`
	rawParen sim.Duration = (42) // want `integer literal 42 used as sim\.Duration without units`
)

const rawConst sim.Duration = 7 // want `integer literal 7 used as sim\.Duration without units`

// Conversions manufacturing clock values from magic numbers: findings.
var convVar = sim.Duration(1500) // want `constant 1500 converted to sim\.Duration without units`

const chunk = 64 * 1024

var convConst = sim.Duration(chunk / 1024) // want `constant 64 converted to sim\.Duration without units`

// Unit-carrying expressions: silent.
var (
	good      = 1500 * sim.Nanosecond
	goodConst = take(3 * sim.Microsecond)
	goodField = timer{Tick: 10 * sim.Millisecond}
	goodFrac  = sim.Second / 4
	goodZero  sim.Duration
	zeroLit   sim.Duration = 0
)

// A conversion used as a dimensionless scale factor against a value
// that already carries units is dimensionally sound: silent.
var goodScale = sim.Duration(chunk/1024) * 1500 * sim.Nanosecond

// Non-constant conversions are unit-producing helpers, not magic
// numbers: silent.
func fromCount(n int) sim.Duration { return sim.Duration(n) * sim.Microsecond }

// Structural contexts still get caught.
var fieldRaw = timer{Tick: 77} // want `integer literal 77 used as sim\.Duration without units`

var argRaw = take(42) // want `integer literal 42 used as sim\.Duration without units`

// The audited escape: a reasoned allow suppresses the finding.
var audited sim.Duration = 1234 //simlint:allow unitsafe legacy calibration constant from the 2003 paper's table 2
