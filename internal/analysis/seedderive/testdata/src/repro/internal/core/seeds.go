// Fixture: arithmetic seed salting in its common disguises, plus the
// sanctioned DeriveSeed route and the suppression directive.
package core

// deriveSeed stands in for sim.DeriveSeed: a sequence generator, not a
// salt, so calling it is the sanctioned derivation path.
func deriveSeed(base, idx uint64) uint64 {
	z := base + (idx+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

func additiveSalt(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = seed + uint64(i)*7919 // want `arithmetic on a seed`
	}
	return out
}

func xorSalt(seed, k uint64) uint64 {
	return seed ^ k // want `arithmetic on a seed`
}

func mulSalt(baseSeed uint64) uint64 {
	return baseSeed * 31 // want `arithmetic on a seed`
}

func inPlaceSalt(seed uint64) uint64 {
	seed += 104729 // want `in-place arithmetic on a seed`
	seed++         // want `increment of a seed`
	return seed
}

type runConfig struct {
	Seed uint64
	Name string
}

func fieldSalt(c runConfig, shard uint64) uint64 {
	return c.Seed + shard // want `arithmetic on a seed`
}

// derived is the correct pattern: every sub-stream seed goes through
// the sequence generator.
func derived(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = deriveSeed(seed, uint64(i))
	}
	return out
}

// seedling is not a seed count; non-integer operands never match.
func labels(seedCorpus string) string {
	return seedCorpus + "-v2"
}

// Comparisons and shifts are not salts.
func isDefault(seed uint64) bool {
	return seed == 1 || seed>>63 == 1
}

func documentedLegacy(seed uint64) uint64 {
	//simlint:allow seedderive reproduces the seed schedule of the PR0 golden files byte-for-byte
	return seed + 7919
}
