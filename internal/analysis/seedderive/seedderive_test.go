package seedderive_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/seedderive"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t),
		[]*framework.Analyzer{seedderive.Analyzer},
		"repro/internal/core",
	)
}
