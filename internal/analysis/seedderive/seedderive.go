// Package seedderive forbids deriving RNG seeds by arithmetic salting
// (seed + k, seed * k, seed ^ k, seed++). Additive and multiplicative
// offsets produce overlapping streams for nearby base seeds — for base
// s the stream seeded s+2k is exactly the stream s+k of base s+k — and
// XOR salts collide pairwise the same way. Replications, shards and
// experiments must derive sub-stream seeds with sim.DeriveSeed(base,
// idx), the splitmix64 sequence generator, which PR 1 introduced after
// cleaning up exactly this bug class.
package seedderive

import (
	"go/ast"
	"go/token"
	"regexp"

	"repro/internal/analysis/framework"
)

// Analyzer is the seedderive rule.
var Analyzer = &framework.Analyzer{
	Name: "seedderive",
	Doc: "forbid arithmetic seed salting; require sim.DeriveSeed\n\n" +
		"Any +, -, *, ^ or | expression (or op-assign, or ++/--) with an integer operand whose\n" +
		"name contains \"seed\" is flagged: offset seeds collide across nearby base seeds.\n" +
		"Derive sub-stream seeds with sim.DeriveSeed(base, idx) instead.",
	Run: run,
}

var seedName = regexp.MustCompile(`(?i)seed`)

const fix = "derive sub-stream seeds with sim.DeriveSeed(base, idx) instead: offset/XOR salts produce colliding streams for nearby base seeds"

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if framework.IsTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.MUL, token.XOR, token.OR:
					if operandIsSeed(pass, n.X) || operandIsSeed(pass, n.Y) {
						pass.Reportf(n.Pos(), "arithmetic on a seed (%s %s %s): %s",
							describe(n.X), n.Op, describe(n.Y), fix)
					}
				}
			case *ast.AssignStmt:
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.XOR_ASSIGN, token.OR_ASSIGN:
					for _, lhs := range n.Lhs {
						if operandIsSeed(pass, lhs) {
							pass.Reportf(n.Pos(), "in-place arithmetic on a seed (%s %s): %s",
								describe(lhs), n.Tok, fix)
						}
					}
				}
			case *ast.IncDecStmt:
				if operandIsSeed(pass, n.X) {
					pass.Reportf(n.Pos(), "increment of a seed (%s%s): %s", describe(n.X), n.Tok, fix)
				}
			}
			return true
		})
	}
	return nil
}

// operandIsSeed reports whether e is an integer-typed identifier or
// field selector whose name contains "seed" (case-insensitive).
func operandIsSeed(pass *framework.Pass, e ast.Expr) bool {
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.ParenExpr:
		return operandIsSeed(pass, e.X)
	default:
		return false
	}
	if !seedName.MatchString(name) {
		return false
	}
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && framework.IsInteger(t)
}

func describe(e ast.Expr) string {
	if s := framework.ExprString(e); s != "" {
		return s
	}
	return "expr"
}
