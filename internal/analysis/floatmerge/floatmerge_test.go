package floatmerge_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floatmerge"
	"repro/internal/analysis/framework"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t),
		[]*framework.Analyzer{floatmerge.Analyzer},
		"repro/internal/metrics",
	)
}
