// Package floatmerge flags order-dependent floating-point accumulation
// inside the mergeable-summary pattern. The parallel replication engine
// merges per-shard summaries in replication-index order and promises
// bit-identical totals for every worker count; that only holds if
// Merge (and the Add path that feeds it) is exactly associative.
// Float addition is not — (a+b)+c differs from a+(b+c) in the last
// ulp — so summary totals must stay integer-exact (counts, integer
// nanosecond sums) and any ratio (mean, percentage) must be computed
// from those integers at read time.
//
// A type is considered a mergeable summary when it has both a Merge
// and an Add method; the rule then applies inside Merge, Add, and any
// other Merge*-named method of that type.
package floatmerge

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the floatmerge rule.
var Analyzer = &framework.Analyzer{
	Name: "floatmerge",
	Doc: "flag order-dependent float accumulation in mergeable summaries\n\n" +
		"In types with both Add and Merge methods (the mergeable-summary pattern of\n" +
		"internal/metrics), accumulating float64 state (sum += x) makes the merged result\n" +
		"depend on shard order, breaking cross-worker bit-identity. Keep totals integer-\n" +
		"exact and compute ratios at read time.",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if framework.IsTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if !isMergePathMethod(fn.Name.Name) {
				continue
			}
			if !isMergeableSummary(pass, fn) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func isMergePathMethod(name string) bool {
	return name == "Add" || name == "Merge" || strings.HasPrefix(name, "Merge")
}

// isMergeableSummary reports whether fn's receiver type has both an
// Add and a Merge method — the pattern internal/runner merges across
// shards. The method set is taken through a pointer so value- and
// pointer-receiver methods both count.
func isMergeableSummary(pass *framework.Pass, fn *ast.FuncDecl) bool {
	if len(fn.Recv.List) != 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.(*types.Named); !ok {
		return false
	}
	mset := types.NewMethodSet(types.NewPointer(t))
	hasAdd, hasMerge := false, false
	for i := 0; i < mset.Len(); i++ {
		switch mset.At(i).Obj().Name() {
		case "Add":
			hasAdd = true
		case "Merge":
			hasMerge = true
		}
	}
	return hasAdd && hasMerge
}

func checkBody(pass *framework.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range assign.Lhs {
				if framework.IsFloat(pass.TypesInfo.TypeOf(lhs)) {
					pass.Reportf(assign.Pos(),
						"float accumulation (%s %s) in %s of a mergeable summary: float addition is not associative, so merged totals depend on shard order; keep totals integer-exact and compute ratios at read time",
						framework.ExprString(lhs), assign.Tok, fn.Name.Name)
				}
			}
		case token.ASSIGN:
			if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				return true
			}
			lhsStr := framework.ExprString(assign.Lhs[0])
			bin, ok := assign.Rhs[0].(*ast.BinaryExpr)
			if !ok || lhsStr == "" {
				return true
			}
			if (bin.Op == token.ADD || bin.Op == token.SUB) &&
				framework.IsFloat(pass.TypesInfo.TypeOf(bin)) &&
				(framework.ExprString(bin.X) == lhsStr || framework.ExprString(bin.Y) == lhsStr) {
				pass.Reportf(assign.Pos(),
					"float accumulation (%s = %s %s ...) in %s of a mergeable summary: float addition is not associative, so merged totals depend on shard order; keep totals integer-exact and compute ratios at read time",
					lhsStr, lhsStr, bin.Op, fn.Name.Name)
			}
		}
		return true
	})
}
