// Fixture: mergeable summaries (types with both Add and Merge) must
// keep their accumulated state integer-exact.
package metrics

// GoodSummary is the sanctioned shape: integer-exact totals, ratios
// computed from them at read time.
type GoodSummary struct {
	N     int
	Total int64
}

func (s *GoodSummary) Add(v int64) {
	s.N++
	s.Total += v
}

func (s *GoodSummary) Merge(o GoodSummary) {
	s.N += o.N
	s.Total += o.Total
}

// Mean is a read-time ratio: floats are fine once accumulation is done.
func (s GoodSummary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Total) / float64(s.N)
}

// BadSummary accumulates floats on both the Add and Merge paths.
type BadSummary struct {
	N   int
	Sum float64
}

func (s *BadSummary) Add(v float64) {
	s.N++
	s.Sum += v // want `float accumulation`
}

func (s *BadSummary) Merge(o BadSummary) {
	s.N += o.N
	s.Sum = s.Sum + o.Sum // want `float accumulation`
}

func (s *BadSummary) MergeScaled(o BadSummary, f float64) {
	s.Sum += o.Sum * f // want `float accumulation`
}

// Accumulator has no Merge method, so it is not a mergeable summary:
// its float state never crosses shard boundaries and stays exempt.
type Accumulator struct {
	acc float64
}

func (a *Accumulator) Add(v float64) {
	a.acc += v
}

// Calibrated shows the escape hatch for a summary whose float field is
// provably rebuilt from integers before any merge.
type Calibrated struct {
	N     int
	Scale float64
}

func (c *Calibrated) Add(v float64) {
	//simlint:allow floatmerge Scale is recomputed from N before every merge, never accumulated across shards
	c.Scale += v
}

func (c *Calibrated) Merge(o Calibrated) {
	c.N += o.N
}
