package kernel

import (
	"testing"

	"repro/internal/sim"
)

// wakeLatencyUnder measures how long a high-priority task waits from its
// wake event until it reaches user-mode completion of a tiny compute,
// while a low-priority task sits inside the given syscall on the same CPU.
func wakeLatencyUnder(t *testing.T, cfg Config, kernelResidency sim.Duration, locked bool) sim.Duration {
	t.Helper()
	cfg.Timing.BusContention = 0
	k := New(cfg, 42)

	segs := []Segment{{Kind: SegWork, D: kernelResidency}}
	if locked {
		segs[0].Lock = k.NamedLock("fs")
	}
	lowCall := &SyscallCall{Name: "longsys", Segments: segs}
	low := BehaviorFunc(func(task *Task) Action {
		return Syscall(lowCall)
	})
	k.NewTask("low", SchedOther, 0, MaskOf(0), low)

	var wakeAt, doneAt sim.Time = -1, -1
	rtAct := Compute(sim.Microsecond)
	rtAct.OnComplete = func(now sim.Time) { doneAt = now }
	sleep := Sleep(2 * sim.Millisecond) // let low settle into its syscall
	// Record the actual wake instant (jiffy rounding applies on stock
	// kernels, so the nominal 2ms cannot be assumed).
	sleep.OnComplete = func(now sim.Time) { wakeAt = now }
	rt := k.NewTask("rt", SchedFIFO, 90, MaskOf(0), &onceBehavior{actions: []Action{
		sleep,
		rtAct,
	}})
	_ = rt
	k.Start()
	k.Eng.Run(sim.Time(sim.Second))
	if doneAt < 0 {
		t.Fatalf("RT task never completed under %s", cfg.Name)
	}
	return sim.Duration(doneAt - wakeAt)
}

func TestNonPreemptibleKernelDelaysWake(t *testing.T) {
	// Stock 2.4: the RT task must wait for the whole remaining syscall
	// (tens of ms), the §6 pathology.
	cfg := StandardLinux24(1, 1.0, false)
	lat := wakeLatencyUnder(t, cfg, 50*sim.Millisecond, false)
	if lat < 10*sim.Millisecond {
		t.Fatalf("latency = %v; stock kernel should make the RT task wait for syscall exit", lat)
	}
}

func TestPreemptibleKernelPreemptsMidSyscall(t *testing.T) {
	// Preemption patch: the unlocked kernel region is preemptible, so
	// the wake latency is tiny even with 50ms of kernel residency.
	cfg := RedHawk14(1, 1.0)
	lat := wakeLatencyUnder(t, cfg, 50*sim.Millisecond, false)
	if lat > 200*sim.Microsecond {
		t.Fatalf("latency = %v; preemptible kernel should preempt mid-syscall", lat)
	}
}

func TestPreemptibleKernelWaitsForCriticalSection(t *testing.T) {
	// Preemption patch but the region holds a spinlock: latency is
	// bounded by the critical section, which RedHawk caps at
	// CritSectionCap.
	cfg := RedHawk14(1, 1.0)
	lat := wakeLatencyUnder(t, cfg, 50*sim.Millisecond, true)
	if lat > cfg.CritSectionCap+300*sim.Microsecond {
		t.Fatalf("latency = %v, want bounded by the %v critical section cap", lat, cfg.CritSectionCap)
	}
	if lat < 10*sim.Microsecond {
		t.Fatalf("latency = %v; implausibly small while a lock was held", lat)
	}
}

func TestLowLatencyPatchBoundsLatencyWithoutPreemption(t *testing.T) {
	// Low-latency patches alone (no preemption patch): scheduling
	// points cap the wait at ~LowLatencyPoint even in a locked region.
	cfg := StandardLinux24(1, 1.0, false)
	cfg.LowLatency = true
	cfg.CritSectionCap = cfg.Timing.LowLatencyPoint
	lat := wakeLatencyUnder(t, cfg, 50*sim.Millisecond, true)
	if lat > cfg.Timing.LowLatencyPoint+500*sim.Microsecond {
		t.Fatalf("latency = %v, want ≤ ~%v (scheduling points)", lat, cfg.Timing.LowLatencyPoint)
	}
}

func TestLatencyOrderingAcrossKernels(t *testing.T) {
	// The paper's overall story in one assertion chain:
	// stock ≫ low-latency ≫ RedHawk-preemptible.
	stock := wakeLatencyUnder(t, StandardLinux24(1, 1.0, false), 40*sim.Millisecond, true)
	patched := wakeLatencyUnder(t, PatchedLinux24(1, 1.0), 40*sim.Millisecond, true)
	redhawk := wakeLatencyUnder(t, RedHawk14(1, 1.0), 40*sim.Millisecond, true)
	if !(stock > patched && patched > redhawk) {
		t.Fatalf("ordering violated: stock=%v patched=%v redhawk=%v", stock, patched, redhawk)
	}
}

func TestHTSiblingContentionSlowsCompute(t *testing.T) {
	// §5: with hyperthreading, a busy sibling stretches the execution
	// of a CPU-bound loop by roughly 1/HTSlowdown.
	measure := func(siblingBusy bool) sim.Duration {
		cfg := StandardLinux24(1, 1.0, true) // 1 phys → logical 0,1 siblings
		cfg.Timing.BusContention = 0
		k := New(cfg, 42)
		var start, end sim.Time
		act := Compute(100 * sim.Millisecond)
		act.OnComplete = func(now sim.Time) { end = now }
		k.NewTask("meas", SchedFIFO, 90, MaskOf(0), &onceBehavior{actions: []Action{act}})
		if siblingBusy {
			k.NewTask("noise", SchedFIFO, 90, MaskOf(1), BehaviorFunc(func(*Task) Action {
				return Compute(sim.Second)
			}))
		}
		k.Start()
		k.Eng.Run(sim.Time(sim.Second))
		if end == 0 {
			t.Fatal("measurement task did not finish")
		}
		return sim.Duration(end - start)
	}
	alone := measure(false)
	contended := measure(true)
	ratio := float64(contended) / float64(alone)
	cfg := DefaultTiming()
	want := 1 / cfg.HTSlowdown
	if ratio < want*0.93 || ratio > want*1.07 {
		t.Fatalf("HT contention ratio = %.3f, want ≈ %.3f", ratio, want)
	}
}

func TestTimesliceRotationFairness(t *testing.T) {
	// Two OTHER hogs on one CPU must alternate: after 1s each has made
	// 40-60% of total progress.
	cfg := testConfig(1)
	k := New(cfg, 42)
	progress := map[string]int{}
	mk := func(name string) Behavior {
		return BehaviorFunc(func(*Task) Action {
			a := Compute(10 * sim.Millisecond)
			a.OnComplete = func(sim.Time) { progress[name]++ }
			return a
		})
	}
	k.NewTask("a", SchedOther, 0, 0, mk("a"))
	k.NewTask("b", SchedOther, 0, 0, mk("b"))
	k.Start()
	k.Eng.Run(sim.Time(sim.Second))
	total := progress["a"] + progress["b"]
	if total == 0 {
		t.Fatal("no progress at all")
	}
	fracA := float64(progress["a"]) / float64(total)
	if fracA < 0.35 || fracA > 0.65 {
		t.Fatalf("unfair rotation: a=%d b=%d", progress["a"], progress["b"])
	}
}

func TestLegacySchedulerCostGrowsWithRunnable(t *testing.T) {
	cfg := StandardLinux24(1, 1.0, false)
	k := New(cfg, 42)
	base := k.sched.PickCost(k.CPU(0))
	for i := 0; i < 50; i++ {
		k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
			return Compute(sim.Millisecond)
		}))
	}
	k.Start() // enqueues all 50
	loaded := k.sched.PickCost(k.CPU(0))
	if loaded <= base {
		t.Fatalf("legacy pick cost did not grow: base %v, loaded %v", base, loaded)
	}
	// O(1): constant.
	k2 := New(RedHawk14(1, 1.0), 42)
	base2 := k2.sched.PickCost(k2.CPU(0))
	for i := 0; i < 50; i++ {
		k2.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
			return Compute(sim.Millisecond)
		}))
	}
	k2.Start()
	if got := k2.sched.PickCost(k2.CPU(0)); got != base2 {
		t.Fatalf("O(1) pick cost changed under load: %v -> %v", base2, got)
	}
}

func TestO1StealsFromLoadedCPU(t *testing.T) {
	// Queue several tasks on CPU0; CPU1 must steal and run some.
	cfg := RedHawk14(2, 1.0)
	k := New(cfg, 42)
	ranOn := map[int]int{}
	for i := 0; i < 6; i++ {
		k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(tk *Task) Action {
			a := Compute(5 * sim.Millisecond)
			a.OnComplete = func(sim.Time) { ranOn[tk.CPU()]++ }
			return a
		}))
	}
	k.Start()
	k.Eng.Run(sim.Time(200 * sim.Millisecond))
	if ranOn[0] == 0 || ranOn[1] == 0 {
		t.Fatalf("work distribution = %v, want both CPUs active", ranOn)
	}
}
