package kernel

import (
	"testing"

	"repro/internal/sim"
)

// Tests for the frame engine internals: work conservation under
// interruption, rate transitions, cache penalties, page faults.

func TestWorkConservationUnderInterrupts(t *testing.T) {
	// Elapsed = own work + interrupt work + per-interrupt overhead, to
	// within the modelled cache penalties. Verify the accounting adds
	// up rather than just being monotone.
	cfg := testConfig(1)
	cfg.Timing.BusContention = 0
	cfg.Timing.ISRCachePenalty = 0
	cfg.Timing.CtxSwitchCachePenalty = 0
	cfg.LocalTimerHz = 1 // almost no ticks
	k := New(cfg, 42)
	const handlerWork = 50 * sim.Microsecond
	line := k.RegisterIRQ("dev", 0, constWork(handlerWork), nil)
	var start, end sim.Time = -1, -1
	act := Compute(20 * sim.Millisecond)
	act.OnComplete = func(now sim.Time) { end = now }
	k.NewTask("w", SchedFIFO, 90, 0, &onceBehavior{actions: []Action{act}})
	k.Start()
	k.Eng.Schedule(0, func() { start = k.Now() })
	const n = 100
	for i := 1; i <= n; i++ {
		at := sim.Time(i) * sim.Time(100*sim.Microsecond)
		k.Eng.Schedule(at, func() { k.Raise(line) })
	}
	k.Eng.Run(sim.Time(sim.Second))
	if end < 0 {
		t.Fatal("compute never finished")
	}
	perIRQ := handlerWork + cfg.scale(cfg.Timing.IRQEntry+cfg.Timing.IRQExit)
	expected := 20*sim.Millisecond + sim.Duration(n)*perIRQ
	got := sim.Duration(end - start)
	slack := 300 * sim.Microsecond // dispatch overhead + the single tick
	if got < expected || got > expected+slack {
		t.Fatalf("elapsed = %v, want %v (+≤%v)", got, expected, slack)
	}
}

func TestISRCachePenaltyCharged(t *testing.T) {
	// With a cache penalty configured, the same interrupt load must cost
	// strictly more than the handler time alone.
	measure := func(penalty sim.Duration) sim.Duration {
		cfg := testConfig(1)
		cfg.Timing.BusContention = 0
		cfg.Timing.ISRCachePenalty = penalty
		k := New(cfg, 42)
		line := k.RegisterIRQ("dev", 0, constWork(10*sim.Microsecond), nil)
		var end sim.Time
		act := Compute(10 * sim.Millisecond)
		act.OnComplete = func(now sim.Time) { end = now }
		k.NewTask("w", SchedFIFO, 90, 0, &onceBehavior{actions: []Action{act}})
		k.Start()
		for i := 1; i <= 200; i++ {
			k.Eng.Schedule(sim.Time(i)*sim.Time(50*sim.Microsecond), func() { k.Raise(line) })
		}
		k.Eng.Run(sim.Time(sim.Second))
		return sim.Duration(end)
	}
	without := measure(0)
	with := measure(10 * sim.Microsecond)
	delta := with - without
	// 200 interrupts × ~10µs (±50% jitter) of cache refill.
	if delta < sim.Millisecond || delta > 3*sim.Millisecond {
		t.Fatalf("cache penalty delta = %v, want ≈2ms", delta)
	}
}

func TestUnlockedMemoryPaysFaults(t *testing.T) {
	run := func(locked bool) sim.Duration {
		cfg := testConfig(1)
		cfg.Timing.BusContention = 0
		k := New(cfg, 42)
		var end sim.Time
		act := Compute(100 * sim.Millisecond)
		act.OnComplete = func(now sim.Time) { end = now }
		tk := k.NewTask("w", SchedFIFO, 90, 0, &onceBehavior{actions: []Action{act}})
		tk.MemLocked = locked
		k.Start()
		k.Eng.Run(sim.Time(sim.Second))
		return sim.Duration(end)
	}
	locked := run(true)
	unlocked := run(false)
	if unlocked <= locked {
		t.Fatalf("mlock made no difference: locked %v, unlocked %v", locked, unlocked)
	}
	// ~0.3% fault overhead on average.
	if unlocked > locked+5*sim.Millisecond {
		t.Fatalf("fault overhead implausibly large: %v", unlocked-locked)
	}
}

func TestBusContentionSlowdownBounded(t *testing.T) {
	// A task alone on its package while the other package is saturated
	// must slow down by at most the configured ceiling.
	cfg := RedHawk14(2, 1.0)
	k := New(cfg, 42)
	var end sim.Time
	act := Compute(100 * sim.Millisecond)
	act.OnComplete = func(now sim.Time) { end = now }
	k.NewTask("meas", SchedFIFO, 90, MaskOf(0), &onceBehavior{actions: []Action{act}})
	k.NewTask("noise", SchedFIFO, 90, MaskOf(1), BehaviorFunc(func(*Task) Action {
		return Compute(sim.Second)
	}))
	k.Start()
	k.Eng.Run(sim.Time(sim.Second))
	overhead := float64(end)/float64(100*sim.Millisecond) - 1
	maxOverhead := cfg.Timing.BusContention + 0.01
	if overhead < 0 {
		t.Fatalf("measured faster than ideal: %v", end)
	}
	if overhead > maxOverhead {
		t.Fatalf("bus slowdown %.4f exceeds ceiling %.4f", overhead, maxOverhead)
	}
}

func TestHTRateTransitionsExact(t *testing.T) {
	// Sibling busy for exactly half the run: elapsed must match the
	// piecewise-rate integral, verifying accrual at rate boundaries.
	cfg := StandardLinux24(1, 1.0, true)
	cfg.Timing.BusContention = 0
	cfg.LocalTimerHz = 1
	k := New(cfg, 42)
	var end sim.Time
	const work = 100 * sim.Millisecond
	act := Compute(work)
	act.OnComplete = func(now sim.Time) { end = now }
	k.NewTask("meas", SchedFIFO, 90, MaskOf(0), &onceBehavior{actions: []Action{act}})
	// The sibling runs exactly 50ms of work starting at t=0-ish.
	k.NewTask("noise", SchedFIFO, 90, MaskOf(1), &onceBehavior{actions: []Action{
		Compute(50 * sim.Millisecond),
	}})
	k.Start()
	k.Eng.Run(sim.Time(sim.Second))
	// While the sibling computes 50ms of work, BOTH run at HTSlowdown,
	// so the sibling occupies 50/0.7 ≈ 71.4ms of wall time, during which
	// meas completes 71.4×0.7 = 50ms of work; the remaining 50ms runs at
	// full speed. Total ≈ 121.4ms (+ small dispatch/tick noise).
	expect := sim.Duration(float64(50*sim.Millisecond)/cfg.Timing.HTSlowdown) + 50*sim.Millisecond
	got := sim.Duration(end)
	diff := got - expect
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*sim.Millisecond {
		t.Fatalf("elapsed = %v, want ≈%v (piecewise rate integral)", got, expect)
	}
}

func TestAddWorkTopWhileArmed(t *testing.T) {
	// Wakeup costs charged mid-segment must extend the segment.
	cfg := testConfig(1)
	cfg.Timing.BusContention = 0
	cfg.LocalTimerHz = 1
	k := New(cfg, 42)
	var end sim.Time
	act := Compute(10 * sim.Millisecond)
	act.OnComplete = func(now sim.Time) { end = now }
	k.NewTask("w", SchedFIFO, 90, 0, &onceBehavior{actions: []Action{act}})
	k.Start()
	k.Eng.Schedule(sim.Time(5*sim.Millisecond), func() {
		k.CPU(0).addWorkTop(sim.Millisecond)
	})
	k.Eng.Run(sim.Time(sim.Second))
	if end < sim.Time(11*sim.Millisecond) {
		t.Fatalf("end = %v, extra work was lost", end)
	}
	if end > sim.Time(11*sim.Millisecond+200*sim.Microsecond) {
		t.Fatalf("end = %v, extra work over-charged", end)
	}
}

func TestFrameKindString(t *testing.T) {
	for k, want := range map[frameKind]string{
		frameTask: "task", frameISR: "isr", frameSoftirq: "softirq",
		frameSpin: "spin", frameSwitch: "switch",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTaskAndPolicyStrings(t *testing.T) {
	if SchedFIFO.String() != "SCHED_FIFO" || SchedRR.String() != "SCHED_RR" || SchedOther.String() != "SCHED_OTHER" {
		t.Fatal("policy strings wrong")
	}
	for s, want := range map[TaskState]string{
		TaskRunnable: "runnable", TaskRunning: "running",
		TaskBlocked: "blocked", TaskExited: "exited",
	} {
		if s.String() != want {
			t.Errorf("state %d = %q, want %q", s, s.String(), want)
		}
	}
	tk := &Task{PID: 7, Name: "x"}
	if tk.String() != "x/7" {
		t.Fatalf("task string = %q", tk.String())
	}
	if (&Task{}).CPU() != -1 {
		t.Fatal("CPU() of unplaced task should be -1")
	}
}

func TestSoftirqVecString(t *testing.T) {
	if SoftirqNetRx.String() != "NET_RX" || SoftirqBlock.String() != "BLOCK" {
		t.Fatal("vector names wrong")
	}
	if SoftirqVec(99).String() == "" {
		t.Fatal("unknown vector should still render")
	}
}

func TestYieldRotatesEqualPrio(t *testing.T) {
	k := New(testConfig(1), 42)
	var order []string
	mk := func(name string) Behavior {
		n := 0
		return BehaviorFunc(func(*Task) Action {
			n++
			if n > 3 {
				return Exit()
			}
			a := Compute(sim.Millisecond)
			a.OnComplete = func(sim.Time) { order = append(order, name) }
			return a
		})
	}
	// Yielding OTHER tasks interleave even without timeslice expiry.
	yieldy := func(name string) Behavior {
		inner := mk(name)
		flip := false
		return BehaviorFunc(func(tk *Task) Action {
			flip = !flip
			if flip {
				return inner.Next(tk)
			}
			return Yield()
		})
	}
	k.NewTask("a", SchedOther, 0, 0, yieldy("a"))
	k.NewTask("b", SchedOther, 0, 0, yieldy("b"))
	k.Start()
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	if len(order) < 6 {
		t.Fatalf("only %d completions: %v", len(order), order)
	}
	// Both names must appear in the first four completions (interleaved).
	seen := map[string]bool{}
	for _, n := range order[:4] {
		seen[n] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("yield did not interleave: %v", order)
	}
}
