package kernel

import "repro/internal/sim"

// Priority slots for the O(1) runqueue arrays, mirroring Linux: slots
// 0..98 are the real-time priorities (slot = 99 - rtprio, lower slot runs
// first) and slot 99 is the single time-sharing band (this model does not
// simulate nice-level interactivity credits; SCHED_OTHER fairness is
// timeslice rotation).
const (
	numSlots  = 100
	otherSlot = numSlots - 1
)

func prioSlot(t *Task) int {
	if t.Policy == SchedFIFO || t.Policy == SchedRR {
		return MaxRTPrio - t.RTPrio
	}
	return otherSlot
}

// o1Runqueue is one per-CPU priority-array runqueue.
type o1Runqueue struct {
	queues [numSlots][]*Task
	// bitmap has bit s set when queues[s] is non-empty; find-first-set
	// gives the O(1) pick.
	bitmap [2]uint64
	nr     int
}

func (rq *o1Runqueue) add(t *Task) {
	s := prioSlot(t)
	rq.queues[s] = append(rq.queues[s], t)
	rq.bitmap[s/64] |= 1 << uint(s%64)
	rq.nr++
}

func (rq *o1Runqueue) remove(t *Task) bool {
	s := prioSlot(t)
	q := rq.queues[s]
	for i, x := range q {
		if x == t {
			rq.queues[s] = append(q[:i], q[i+1:]...)
			if len(rq.queues[s]) == 0 {
				rq.bitmap[s/64] &^= 1 << uint(s%64)
			}
			rq.nr--
			return true
		}
	}
	return false
}

// firstSlot returns the lowest non-empty slot, or -1.
func (rq *o1Runqueue) firstSlot() int {
	for w := 0; w < 2; w++ {
		if rq.bitmap[w] == 0 {
			continue
		}
		v := rq.bitmap[w]
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				return w*64 + b
			}
		}
	}
	return -1
}

// best returns the first task in the lowest non-empty slot that is
// eligible for c (removing it when take is set).
func (rq *o1Runqueue) best(c *CPU, take bool) *Task {
	for s := rq.firstSlot(); s >= 0 && s < numSlots; s++ {
		for _, t := range rq.queues[s] {
			if eligible(t, c) {
				if take {
					rq.remove(t)
				}
				return t
			}
		}
		// Slot had only ineligible tasks; try the next non-empty slot.
		next := -1
		for x := s + 1; x < numSlots; x++ {
			if len(rq.queues[x]) > 0 {
				next = x
				break
			}
		}
		if next < 0 {
			return nil
		}
		s = next - 1
	}
	return nil
}

// o1Scheduler is Ingo Molnar's O(1) scheduler: per-CPU priority arrays
// with constant-time dispatch and idle-balance stealing.
type o1Scheduler struct {
	k   *Kernel
	rqs []*o1Runqueue
}

func newO1Scheduler(k *Kernel) *o1Scheduler {
	s := &o1Scheduler{k: k, rqs: make([]*o1Runqueue, k.Cfg.NumCPUs())}
	for i := range s.rqs {
		s.rqs[i] = &o1Runqueue{}
	}
	return s
}

// Enqueue implements Scheduler.
func (s *o1Scheduler) Enqueue(t *Task, c *CPU) {
	t.cpu = c
	s.rqs[c.ID].add(t)
}

// Dequeue implements Scheduler.
func (s *o1Scheduler) Dequeue(t *Task) {
	if t.cpu != nil && s.rqs[t.cpu.ID].remove(t) {
		return
	}
	// Slow path: the task moved queues; search all.
	for _, rq := range s.rqs {
		if rq.remove(t) {
			return
		}
	}
}

// Pick implements Scheduler: own runqueue first, then steal from the
// queue with the most waiting tasks (idle balancing).
func (s *o1Scheduler) Pick(c *CPU) *Task {
	if t := s.rqs[c.ID].best(c, true); t != nil {
		return t
	}
	var victim *o1Runqueue
	victimID := -1
	for i, rq := range s.rqs {
		if i == c.ID || rq.nr == 0 {
			continue
		}
		if victim == nil || rq.nr > victim.nr {
			victim, victimID = rq, i
		}
	}
	if victim != nil {
		if t := victim.best(c, true); t != nil {
			t.Migrated++
			s.k.Trace.Migrate(s.k.Now(), c.ID, t.PID, t.Name, victimID, c.ID)
			return t
		}
	}
	return nil
}

// Peek implements Scheduler.
func (s *o1Scheduler) Peek(c *CPU) *Task {
	if t := s.rqs[c.ID].best(c, false); t != nil {
		return t
	}
	for i, rq := range s.rqs {
		if i == c.ID || rq.nr == 0 {
			continue
		}
		if t := rq.best(c, false); t != nil {
			return t
		}
	}
	return nil
}

// PickCost implements Scheduler: constant, the whole point of O(1).
//
//simlint:region sched pick-o1
func (s *o1Scheduler) PickCost(*CPU) sim.Duration {
	return s.k.Cfg.scale(s.k.Cfg.Timing.SchedPickO1)
}

// PlaceWake implements Scheduler.
func (s *o1Scheduler) PlaceWake(t *Task) *CPU { return placeWake(s.k, t) }

// NrRunnable implements Scheduler.
func (s *o1Scheduler) NrRunnable() int {
	n := 0
	for _, rq := range s.rqs {
		n += rq.nr
	}
	return n
}
