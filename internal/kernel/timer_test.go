package kernel

import (
	"testing"

	"repro/internal/sim"
)

func sleepLatency(t *testing.T, cfg Config, want sim.Duration) sim.Duration {
	t.Helper()
	k := New(cfg, 42)
	var woke sim.Time
	act := Sleep(want)
	act.OnComplete = func(now sim.Time) { woke = now }
	k.NewTask("s", SchedFIFO, 90, 0, &onceBehavior{actions: []Action{act}})
	k.Start()
	k.Eng.Run(sim.Time(sim.Second))
	if woke == 0 {
		t.Fatal("sleeper never woke")
	}
	return sim.Duration(woke)
}

func TestJiffySleepGranularityStock(t *testing.T) {
	// Stock 2.4: a 100µs sleep takes ceil(0.1/10)+1 = 2 jiffies ≈ 20ms.
	cfg := StandardLinux24(1, 1.0, false)
	got := sleepLatency(t, cfg, 100*sim.Microsecond)
	if got < 19*sim.Millisecond || got > 21*sim.Millisecond {
		t.Fatalf("stock 100µs sleep took %v, want ~20ms (jiffy rounding)", got)
	}
	// Even a 15ms sleep rounds up to 3 jiffies.
	got = sleepLatency(t, cfg, 15*sim.Millisecond)
	if got < 29*sim.Millisecond || got > 31*sim.Millisecond {
		t.Fatalf("stock 15ms sleep took %v, want ~30ms", got)
	}
}

func TestHighResSleepGranularityRedHawk(t *testing.T) {
	// The POSIX timers patch: sleeps are honoured at requested
	// precision (plus wake/dispatch overhead).
	cfg := RedHawk14(1, 1.0)
	got := sleepLatency(t, cfg, 100*sim.Microsecond)
	if got < 100*sim.Microsecond || got > 150*sim.Microsecond {
		t.Fatalf("RedHawk 100µs sleep took %v, want ~100µs", got)
	}
}

func TestPeriodicSleeperRateStockVsRedHawk(t *testing.T) {
	// A task trying to run at 1 kHz by sleeping 1ms each cycle: on stock
	// 2.4 it achieves ~50 Hz (20ms effective period); with high-res
	// timers it achieves ~1 kHz.
	rate := func(cfg Config) int {
		k := New(cfg, 42)
		cycles := 0
		k.NewTask("periodic", SchedFIFO, 90, 0, BehaviorFunc(func(*Task) Action {
			a := Sleep(sim.Millisecond)
			a.OnComplete = func(sim.Time) { cycles++ }
			return a
		}))
		k.Start()
		k.Eng.Run(sim.Time(sim.Second))
		return cycles
	}
	stock := rate(StandardLinux24(1, 1.0, false))
	redhawk := rate(RedHawk14(1, 1.0))
	if stock > 60 {
		t.Fatalf("stock 1ms-sleep loop achieved %d Hz, want ~50 (jiffy limit)", stock)
	}
	if redhawk < 900 {
		t.Fatalf("RedHawk 1ms-sleep loop achieved %d Hz, want ~1000", redhawk)
	}
}
