package kernel

import "testing"

// FuzzParseMask exercises the /proc affinity-mask parser with arbitrary
// input: it must never panic, and accepted inputs must round-trip.
func FuzzParseMask(f *testing.F) {
	for _, seed := range []string{"0", "3", "ff", "0x2\n", " 10 ", "zz", "-1", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMask(s)
		if err != nil {
			return
		}
		back, err2 := ParseMask(m.String())
		if err2 != nil || back != m {
			t.Fatalf("round-trip failed for %q: %v -> %v (%v)", s, m, back, err2)
		}
	})
}

// FuzzEffectiveAffinity checks the shielding-semantics invariants for
// arbitrary masks.
func FuzzEffectiveAffinity(f *testing.F) {
	f.Add(uint64(3), uint64(2), uint64(15))
	f.Fuzz(func(t *testing.T, aff, sh, on uint64) {
		a, s, o := CPUMask(aff), CPUMask(sh), CPUMask(on)
		eff := EffectiveAffinity(a, s, o)
		if !eff.SubsetOf(a & o) {
			t.Fatalf("eff %v escapes affinity∩online", eff)
		}
		if a&o != 0 && eff == 0 {
			t.Fatal("task with online CPUs was stranded")
		}
		if a&o != 0 && !(a & o).SubsetOf(s) && eff.Intersect(s) != 0 {
			t.Fatal("non-opted-in mask kept a shielded CPU")
		}
	})
}
