package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// frameKind classifies what a CPU is executing.
type frameKind uint8

const (
	// frameTask is a task executing user code (seg == nil) or a kernel
	// syscall region (seg != nil).
	frameTask frameKind = iota
	// frameISR is a hardware interrupt handler.
	frameISR
	// frameSoftirq is bottom-half processing.
	frameSoftirq
	// frameSpin is a CPU busy-waiting on a spinlock.
	frameSpin
	// frameSwitch is scheduler + context switch overhead.
	frameSwitch
)

func (k frameKind) String() string {
	switch k {
	case frameTask:
		return "task"
	case frameISR:
		return "isr"
	case frameSoftirq:
		return "softirq"
	case frameSpin:
		return "spin"
	default:
		return "switch"
	}
}

// frame is one level of a CPU's execution stack. Only the top frame makes
// progress; frames below are frozen where they were interrupted. Work is
// accounted in nanoseconds-at-full-speed and accrues at the CPU's current
// rate (hyperthread and bus contention slow it down).
type frame struct {
	kind frameKind
	task *Task    // frameTask: the task executing
	seg  *Segment // frameTask: current kernel region, nil in user mode

	workLeft   float64 // remaining work at rate 1.0, in ns
	lastAccrue sim.Time
	done       sim.Event // completion event while armed

	locks   []*SpinLock // spinlocks held by this frame
	irqsOff bool        // local interrupts disabled

	irq *IRQLine // frameISR: the line being serviced

	spin      *SpinLock // frameSpin: the lock being waited for
	acquired  bool      // frameSpin: lock granted, convert when on top
	spinSince sim.Time  // frameSpin: when the spin began
	suspended bool      // frameSpin: buried under interrupt frames
	// spinWhy records which syscall-engine continuation a spin frame's
	// onDone is (spinForBKL or spinForSeg), so restore can rebuild it.
	spinWhy uint8

	// began is when a softirq pass started (frameSoftirq), for the
	// completion-time statistics. Serialisable, unlike a captured local.
	began sim.Time

	// complete is the action's OnComplete for user-mode compute frames
	// (frameTask, seg == nil). Kept on the frame instead of captured in
	// onDone so snapshots can verify it is nil (ActionCompleter behaviors
	// need no closure; anything else fails the snapshot loudly).
	complete func(now sim.Time)

	// onDone runs when the frame's work completes (after it is popped).
	onDone func()
}

// Spin-frame continuation discriminators (frame.spinWhy).
const (
	spinForBKL = 1 // acquiring the BKL at syscall entry/resume
	spinForSeg = 2 // acquiring a segment's lock before pushing its frame
)

// CPU is one logical processor.
type CPU struct {
	ID   int
	Phys int // physical package; HT siblings share one
	// Sibling is the hyperthread sharing this CPU's execution unit.
	Sibling *CPU

	kern  *Kernel
	stack []*frame

	// cur is the task whose context is on this CPU (running or mid-
	// switch); nil when idle or when only interrupt frames are stacked.
	cur     *Task
	lastRan *Task

	pendingIRQ  []*IRQLine
	softirqPend [numSoftirq]float64

	needResched  bool
	sliceExpired bool
	forceResched bool

	// ksoftirqd state (SoftirqDaemon kernels): when a bottom-half pass
	// overflows its budget, remaining work is handed to the per-CPU
	// daemon task instead of being retried in interrupt context.
	ksoftirqd     *Task
	softirqWq     *WaitQueue
	daemonBacklog float64
	softirqHanded uint64

	busFactor float64

	tickEv     sim.Event
	dispatchEv sim.Event
	localTimer *IRQLine

	// Statistics.
	IRQsHandled  uint64
	SoftirqRuns  uint64
	SoftirqTime  sim.Duration
	Preemptions  uint64
	TicksHandled uint64

	// Execution time accounting (see accounting.go).
	times   CPUTimes
	sampled CPUTimes
}

func newCPU(k *Kernel, id int) *CPU {
	c := &CPU{ID: id, kern: k, busFactor: 1.0}
	c.localTimer = &IRQLine{
		Num:      -1,
		Name:     fmt.Sprintf("local-timer-%d", id),
		kern:     k,
		affinity: MaskOf(id),
		Fast:     true,
		rng:      k.rng.Fork(),
	}
	tick := k.Cfg.scale(k.Cfg.Timing.TickHandler)
	c.localTimer.HandlerWork = func(r *sim.RNG) sim.Duration { return r.Jitter(tick, 0.25) }
	c.localTimer.OnHandle = func(cpu *CPU) { cpu.timerTick() }
	return c
}

// Cur returns the task currently owning the CPU (possibly preempted by
// interrupt frames), or nil.
func (c *CPU) Cur() *Task { return c.cur }

// Idle reports whether the CPU has nothing stacked and no current task.
func (c *CPU) Idle() bool { return c.cur == nil && len(c.stack) == 0 }

func (c *CPU) top() *frame {
	if len(c.stack) == 0 {
		return nil
	}
	return c.stack[len(c.stack)-1]
}

func (c *CPU) busy() bool { return len(c.stack) > 0 }

// rate is the execution speed of the top frame: 1.0 nominal, scaled down
// by bus contention and by hyperthread sibling activity (§5 of the paper).
func (c *CPU) rate() float64 {
	r := c.busFactor
	if c.Sibling != nil && c.Sibling.busy() {
		r *= c.kern.Cfg.Timing.HTSlowdown
	}
	return r
}

// --- frame stack mechanics ---

// armTop schedules the completion event for the top frame at the current
// rate. Spin frames are never armed: they make no progress by themselves,
// but a buried spin that surfaces resumes its wall-clock accounting.
func (c *CPU) armTop() {
	f := c.top()
	if f == nil {
		return
	}
	if f.kind == frameSpin {
		if f.suspended {
			f.lastAccrue = c.kern.Now()
			f.suspended = false
		}
		return
	}
	if f.done.Valid() {
		return
	}
	if f.workLeft < 0 {
		f.workLeft = 0
	}
	d := sim.Duration(f.workLeft / c.rate())
	if float64(d)*c.rate() < f.workLeft {
		d++ // ceil so work is never under-charged
	}
	f.lastAccrue = c.kern.Now()
	f.done = c.kern.Eng.AfterTagged(d, evFrameDone.Tag(uint64(c.ID), 0, 0), c.frameDoneFn(f))
}

// frameDoneFn is the completion callback of an armed frame. The armed
// frame is always the top of its CPU's stack, which is how restore finds
// the frame a snapshotted "k.frame-done" event belongs to.
func (c *CPU) frameDoneFn(f *frame) func() {
	return func() {
		f.done = sim.Event{}
		f.workLeft = 0
		c.account(f, c.kern.Now().Sub(f.lastAccrue))
		c.finishTop(f)
	}
}

// suspendTop pauses the top frame: accrue progress, cancel its event.
// Spin frames have no work to accrue but their wall time is accounted.
func (c *CPU) suspendTop() {
	f := c.top()
	if f == nil {
		return
	}
	now := c.kern.Now()
	if f.kind == frameSpin {
		if !f.suspended {
			c.account(f, now.Sub(f.lastAccrue))
			f.suspended = true
		}
		return
	}
	if !f.done.Valid() {
		return
	}
	elapsed := float64(now.Sub(f.lastAccrue))
	f.workLeft -= elapsed * c.rate()
	if f.workLeft < 0 {
		f.workLeft = 0
	}
	c.account(f, now.Sub(f.lastAccrue))
	f.lastAccrue = now
	c.kern.Eng.Cancel(f.done)
	f.done = sim.Event{}
}

// rateChangedFrom re-accrues the top frame's progress at the rate that was
// in effect until now (oldRate) and re-arms it at the current rate. Every
// rate transition must go through this so elapsed time is never charged at
// the wrong speed.
func (c *CPU) rateChangedFrom(oldRate float64) {
	f := c.top()
	if f == nil || !f.done.Valid() {
		return
	}
	now := c.kern.Now()
	f.workLeft -= float64(now.Sub(f.lastAccrue)) * oldRate
	if f.workLeft < 0 {
		f.workLeft = 0
	}
	c.account(f, now.Sub(f.lastAccrue))
	f.lastAccrue = now
	c.kern.Eng.Cancel(f.done)
	f.done = sim.Event{}
	c.armTop()
}

// push pauses the current top and stacks a new frame.
func (c *CPU) push(f *frame) {
	var sibOld float64
	notify := !c.busy() && c.Sibling != nil
	if notify {
		sibOld = c.Sibling.rate()
	}
	c.suspendTop()
	if f.kind == frameSpin {
		f.lastAccrue = c.kern.Now()
	}
	c.stack = append(c.stack, f)
	c.armTop()
	if notify {
		c.Sibling.rateChangedFrom(sibOld)
	}
}

// pop removes the top frame (must be f).
func (c *CPU) pop(f *frame) {
	if c.top() != f {
		panic("kernel: pop of non-top frame on cpu " + fmt.Sprint(c.ID))
	}
	var sibOld float64
	notify := len(c.stack) == 1 && c.Sibling != nil
	if notify {
		sibOld = c.Sibling.rate()
	}
	if f.done.Valid() {
		c.kern.Eng.Cancel(f.done)
		f.done = sim.Event{}
	}
	if f.kind == frameSpin && !f.suspended {
		c.account(f, c.kern.Now().Sub(f.lastAccrue))
		f.suspended = true
	}
	c.stack = c.stack[:len(c.stack)-1]
	if notify {
		c.Sibling.rateChangedFrom(sibOld)
	}
}

// finishTop handles a frame's work completing.
func (c *CPU) finishTop(f *frame) {
	c.pop(f)
	if f.onDone != nil {
		f.onDone()
	}
	c.settle()
}

// addWorkTop charges extra work to the currently executing context (e.g.
// try_to_wake_up cost on the waker's CPU). No-op when idle.
func (c *CPU) addWorkTop(d sim.Duration) {
	f := c.top()
	if f == nil || d <= 0 {
		return
	}
	if f.done.Valid() {
		c.suspendTop()
		f.workLeft += float64(d)
		c.armTop()
		return
	}
	f.workLeft += float64(d)
}

// settle drives the CPU to its next stable state. It is called after any
// frame pop or state change and implements the kernel's priority order:
// pending hardware interrupts, then softirqs (irq_exit), then preemption,
// then resuming whatever was interrupted, then the scheduler.
func (c *CPU) settle() {
	for {
		if c.deliverPendingIRQ() {
			return
		}
		if c.maybeRunSoftirq() {
			return
		}
		f := c.top()
		if f != nil && f.kind == frameSpin && f.acquired {
			// A spinlock we were waiting for was granted while this
			// frame was buried (or just now): convert to execution.
			c.pop(f)
			if f.onDone != nil {
				f.onDone()
			}
			continue
		}
		if f != nil && f.kind == frameSpin && !f.acquired &&
			f.spin.retryAcquire(c, c.kern.Now(), f.spinSince) {
			// The spin was preempted by interrupt work and the lock was
			// freed meanwhile; the surfacing test-and-set wins it.
			c.kern.Trace.LockAcquire(c.kern.Now(), c.ID, f.spin.Name, c.kern.Now().Sub(f.spinSince))
			c.pop(f)
			if f.onDone != nil {
				f.onDone()
			}
			continue
		}
		if c.shouldPreempt() && c.canPreemptTop() {
			c.preemptTop()
			return
		}
		if f != nil {
			c.armTop()
			return
		}
		c.dispatch()
		return
	}
}

// MaxISRNest caps interrupt nesting depth (stack exhaustion guard, as
// real kernels effectively have via masked sources).
const MaxISRNest = 3

// isrDepth counts ISR frames on the stack.
func (c *CPU) isrDepth() int {
	n := 0
	for _, f := range c.stack {
		if f.kind == frameISR {
			n++
		}
	}
	return n
}

// lineActive reports whether an occurrence of l is being serviced on
// this CPU (the line is masked until its handler completes).
func (c *CPU) lineActive(l *IRQLine) bool {
	for _, f := range c.stack {
		if f.kind == frameISR && f.irq == l {
			return true
		}
	}
	return false
}

// irqsDisabled reports whether a hardware interrupt can be taken now.
// Fast (SA_INTERRUPT) handlers and explicit irqs-off regions disable
// interrupts; slow handlers run with interrupts enabled and can be
// nested by other lines, 2.4 semantics.
func (c *CPU) irqsDisabled() bool {
	f := c.top()
	if f == nil {
		return false
	}
	if f.kind == frameISR {
		return f.irq.Fast || c.isrDepth() >= MaxISRNest
	}
	return f.irqsOff
}

// raiseIRQ delivers (or pends) a hardware interrupt on this CPU.
func (c *CPU) raiseIRQ(l *IRQLine) {
	if c.irqsDisabled() || c.lineActive(l) {
		c.pendingIRQ = append(c.pendingIRQ, l)
		return
	}
	c.pushISR(l)
}

func (c *CPU) deliverPendingIRQ() bool {
	if len(c.pendingIRQ) == 0 || c.irqsDisabled() {
		return false
	}
	for i, l := range c.pendingIRQ {
		if c.lineActive(l) {
			continue // line still masked; try the next pended one
		}
		c.pendingIRQ = append(c.pendingIRQ[:i], c.pendingIRQ[i+1:]...)
		c.pushISR(l)
		return true
	}
	return false
}

func (c *CPU) pushISR(l *IRQLine) {
	t := &c.kern.Cfg.Timing
	overhead := c.kern.Cfg.scale(t.IRQEntry + t.IRQExit) //simlint:region irq-off isr-overhead
	work := overhead + l.HandlerWork(l.rng)              //simlint:region irq-off isr-dispatch
	c.kern.Trace.IRQEnter(c.kern.Now(), c.ID, l.Num, l.Name)
	f := &frame{kind: frameISR, irq: l, workLeft: float64(work)}
	f.onDone = c.isrOnDone(f)
	c.push(f)
}

// isrOnDone is an ISR frame's completion: handler bookkeeping, device
// side effects, and the cache penalty charged to the interrupted
// context. Rebuildable from the frame alone (restore re-attaches it).
func (c *CPU) isrOnDone(f *frame) func() {
	l := f.irq
	return func() {
		l.Handled++
		if c.ID < len(l.PerCPU) {
			l.PerCPU[c.ID]++
		}
		c.IRQsHandled++
		if l.OnHandle != nil {
			l.OnHandle(c)
		}
		// Cache pollution: the interrupted context re-fetches lines the
		// handler evicted.
		if b := c.top(); b != nil {
			penalty := l.rng.Jitter(c.kern.Cfg.scale(c.kern.Cfg.Timing.ISRCachePenalty), 0.5) //simlint:region overhead isr-cache-penalty
			b.workLeft += float64(penalty)
		}
		c.kern.Trace.IRQExit(c.kern.Now(), c.ID, l.Num, l.Name)
	}
}

// --- softirqs (bottom halves) ---

// RaiseSoftirq queues bottom-half work on this CPU; it runs at the next
// interrupt exit (or later, if deferred by the §6.2 fix).
func (c *CPU) RaiseSoftirq(vec SoftirqVec, work sim.Duration) {
	if work <= 0 {
		return
	}
	c.softirqPend[vec] += float64(work)
}

// SoftirqPending returns the total queued bottom-half work.
func (c *CPU) SoftirqPending() sim.Duration {
	var total float64
	for _, w := range c.softirqPend {
		total += w
	}
	return sim.Duration(total)
}

// holdsAnyLock reports whether any context on this CPU's stack holds a
// spinlock (including the BKL via the current syscall, and a spin frame
// that has been granted its lock but not yet surfaced — from the lock's
// point of view that CPU already owns it).
func (c *CPU) holdsAnyLock() bool {
	for _, f := range c.stack {
		if len(f.locks) > 0 {
			return true
		}
		if f.kind == frameSpin && f.acquired {
			return true
		}
	}
	if c.cur != nil && c.cur.call != nil && c.cur.call.heldBKL {
		return true
	}
	return false
}

func (c *CPU) maybeRunSoftirq() bool {
	total := c.SoftirqPending()
	if total == 0 {
		return false
	}
	// Softirqs do not nest, and never run over an ISR (they run at its
	// exit, which is a settle after the pop).
	for _, f := range c.stack {
		if f.kind == frameSoftirq {
			return false
		}
	}
	if f := c.top(); f != nil && f.kind == frameISR {
		return false
	}
	// §6.2: the RedHawk fix forbids bottom halves from preempting a
	// context that holds a spinlock; stock kernels allow it, which is
	// how several-millisecond lock holds happen.
	if c.kern.Cfg.FixSpinlockBH && c.holdsAnyLock() {
		return false
	}
	budget := float64(c.kern.Cfg.scale(c.kern.Cfg.Timing.SoftirqMax)) //simlint:region softirq softirq-budget
	take := total
	if float64(take) > budget {
		take = sim.Duration(budget)
	}
	// Drain vectors in order up to the budget.
	left := float64(take)
	for v := range c.softirqPend {
		if left <= 0 {
			break
		}
		d := c.softirqPend[v]
		if d > left {
			d = left
		}
		c.softirqPend[v] -= d
		left -= d
	}
	start := c.kern.Now()
	c.kern.Trace.SoftirqEnter(start, c.ID, take)
	f := &frame{kind: frameSoftirq, workLeft: float64(take), began: start}
	f.onDone = c.softirqOnDone(f)
	c.push(f)
	return true
}

// softirqOnDone is a softirq frame's completion: pass statistics and the
// SoftirqDaemon handoff of leftover work to ksoftirqd. The pass start
// time lives on the frame (began), so restore can rebuild this closure.
func (c *CPU) softirqOnDone(f *frame) func() {
	return func() {
		c.SoftirqRuns++
		c.SoftirqTime += c.kern.Now().Sub(f.began)
		c.kern.Trace.SoftirqExit(c.kern.Now(), c.ID, c.kern.Now().Sub(f.began))
		// Budget exhausted with work left over: stock kernels retry in
		// interrupt context (the next settle runs another pass);
		// SoftirqDaemon kernels hand the REMAINDER to ksoftirqd, which
		// competes as an ordinary task (§1's softirq changes). New
		// raises still run at interrupt exit as usual.
		if c.kern.Cfg.SoftirqDaemon && c.ksoftirqd != nil {
			var rest float64
			for v := range c.softirqPend {
				rest += c.softirqPend[v]
				c.softirqPend[v] = 0
			}
			if rest > 0 {
				c.daemonBacklog += rest
				c.softirqHanded++
				c.kern.WakeAll(c.softirqWq, nil)
			}
		}
	}
}

// ksoftirqdBehavior drains this CPU's deferred softirq backlog in task
// context in bounded, preemptible chunks, then sleeps until the next
// overflow. It is a named struct (not a closure) so its two words of
// state — whether a run chunk is in flight and when it started — survive
// snapshots, and the completion statistics go through ActionDone instead
// of a captured OnComplete.
type ksoftirqdBehavior struct {
	c        *CPU
	running  bool
	runStart sim.Time
}

// Next implements Behavior.
func (b *ksoftirqdBehavior) Next(t *Task) Action {
	c := b.c
	if c.daemonBacklog <= 0 {
		c.daemonBacklog = 0
		return Syscall(&SyscallCall{
			Name:     "ksoftirqd-wait",
			Segments: []Segment{{Kind: SegBlock, Wait: c.softirqWq}},
		})
	}
	chunk := sim.Duration(c.daemonBacklog)
	max := c.kern.Cfg.scale(500 * sim.Microsecond) //simlint:region run ksoftirqd-chunk
	if chunk > max {
		chunk = max
	}
	// Consume the work up front; the segment performs it.
	c.daemonBacklog -= float64(chunk)
	b.running = true
	b.runStart = c.kern.Now()
	return Syscall(&SyscallCall{
		Name:     "ksoftirqd-run",
		Segments: []Segment{{Kind: SegWork, D: chunk}},
	})
}

// ActionDone implements ActionCompleter: account a finished run chunk.
// The wait syscall's completion also lands here, filtered by running.
func (b *ksoftirqdBehavior) ActionDone(t *Task, kind ActionKind, now sim.Time) {
	if kind != ActSyscall || !b.running {
		return
	}
	b.running = false
	b.c.SoftirqRuns++
	b.c.SoftirqTime += now.Sub(b.runStart)
}

// BehaviorName implements SnapBehavior.
func (b *ksoftirqdBehavior) BehaviorName() string { return fmt.Sprintf("k.ksoftirqd/%d", b.c.ID) }

// BehaviorState implements SnapBehavior.
func (b *ksoftirqdBehavior) BehaviorState() []uint64 {
	running := uint64(0)
	if b.running {
		running = 1
	}
	return []uint64{running, uint64(b.runStart)}
}

// SetBehaviorState implements SnapBehavior.
func (b *ksoftirqdBehavior) SetBehaviorState(words []uint64) {
	b.running = words[0] != 0
	b.runStart = sim.Time(words[1])
}

// --- preemption and dispatch ---

// shouldPreempt decides whether the current task must yield the CPU.
func (c *CPU) shouldPreempt() bool {
	t := c.cur
	if t == nil {
		return false
	}
	if c.forceResched {
		return true
	}
	if !c.needResched {
		return false
	}
	next := c.kern.sched.Peek(c)
	if next == nil {
		c.needResched = false
		c.sliceExpired = false
		return false
	}
	if next.rtEffective() > t.rtEffective() {
		return true
	}
	if c.sliceExpired && t.Policy != SchedFIFO && next.rtEffective() >= t.rtEffective() {
		return true
	}
	return false
}

// canPreemptTop reports whether the top frame may be preempted right now.
// User mode is always preemptible; kernel mode only with the preemption
// patch and only outside critical sections (§6 of the paper).
func (c *CPU) canPreemptTop() bool {
	f := c.top()
	if f == nil || f.kind != frameTask {
		return false
	}
	if f.seg == nil {
		return true // user mode
	}
	if !c.kern.Cfg.Preemptible {
		return false
	}
	if len(f.locks) > 0 || f.seg.NonPreempt || f.irqsOff {
		return false
	}
	if f.task.call != nil && f.task.call.heldBKL {
		return false
	}
	return true
}

// preemptTop removes the running task's frame and reschedules.
func (c *CPU) preemptTop() {
	f := c.top()
	if f == nil || f.kind != frameTask {
		panic("kernel: preemptTop on non-task frame")
	}
	c.suspendTop()
	c.pop(f)
	t := f.task
	// Save the frame even at workLeft == 0 (preemption tying with
	// completion): resuming arms a zero-length remainder whose onDone
	// still runs, so the action is never silently dropped or redone.
	t.saved = f
	c.Preemptions++
	c.kern.Trace.Preempt(c.kern.Now(), c.ID, t.PID, t.Name, false)
	c.requeuePreempted(t)
	c.dispatch()
}

// preemptBetween reschedules the current task at an action or segment
// boundary (no active frame).
func (c *CPU) preemptBetween(t *Task) {
	c.Preemptions++
	c.kern.Trace.Preempt(c.kern.Now(), c.ID, t.PID, t.Name, true)
	c.requeuePreempted(t)
	c.dispatch()
}

// requeuePreempted puts a preempted task back on a runqueue, migrating it
// if this CPU is no longer in its effective affinity (shield enable).
func (c *CPU) requeuePreempted(t *Task) {
	t.state = TaskRunnable
	t.lastQueue = c.kern.Now()
	c.cur = nil
	c.lastRan = t
	c.forceResched = false
	eff := t.EffectiveAffinity()
	if eff != 0 && !eff.Has(c.ID) {
		t.Migrated++
		t.cpu = nil
		c.kern.Trace.Migrate(c.kern.Now(), c.ID, t.PID, t.Name, c.ID, -1)
		c.kern.makeRunnable(t, nil)
		return
	}
	c.kern.sched.Enqueue(t, c)
}

// requestMigration asks a CPU to shed its running task at the next legal
// preemption point (shield enable, affinity change).
func (c *CPU) requestMigration(t *Task) {
	if c.cur != t {
		return
	}
	c.forceResched = true
	if c.canPreemptTop() {
		c.suspendTop()
		c.settle()
	}
}

// kick responds to a task becoming runnable on this CPU.
func (c *CPU) kick(t *Task) {
	if c.Idle() {
		if !c.dispatchEv.Valid() {
			// Pinned: when several idle CPUs are kicked at the same
			// instant, their idle-exit dispatches race for the shared
			// runqueue; the model arbitrates that bus contention in
			// kick order (FIFO), the way a fixed-priority memory bus
			// arbiter would. See "Tie-break determinism" in DESIGN.md §8.
			//
			// The idle-exit dispatch is this model's IPI delivery: it is
			// scheduled from the *waking* CPU's context but belongs to
			// CPU c, so it carries c's shard placement hint (restored
			// afterwards — hints route storage on the sharded engine,
			// never order). Its IdleExit delay is also the floor of
			// Config.Lookahead: no cross-CPU event travels faster.
			prev := c.kern.Eng.ShardHint()
			c.kern.Eng.SetShardHint(c.ID)
			delay := c.kern.Cfg.scale(c.kern.Cfg.Timing.IdleExit) //simlint:region sched idle-exit
			c.dispatchEv = c.kern.Eng.AfterPinnedTagged(delay, evIdleDispatch.Tag(uint64(c.ID), 0, 0), c.idleDispatch)
			c.kern.Eng.SetShardHint(prev)
		}
		return
	}
	if c.cur == nil || (t != nil && t.higherPrioThan(c.cur)) {
		c.needResched = true
	}
	if c.shouldPreempt() && c.canPreemptTop() {
		c.suspendTop()
		c.settle()
	}
}

// idleDispatch is the idle-exit event body: the CPU wakes from idle and
// settles into the scheduler.
func (c *CPU) idleDispatch() {
	c.dispatchEv = sim.Event{}
	c.settle()
}

// dispatch picks the next task when the CPU has nothing stacked.
func (c *CPU) dispatch() {
	if c.busy() || c.cur != nil {
		return
	}
	next := c.kern.sched.Pick(c)
	c.needResched = false
	c.sliceExpired = false
	c.forceResched = false
	if next == nil {
		return // idle
	}
	cfg := &c.kern.Cfg
	cost := c.kern.sched.PickCost(c)
	if next != c.lastRan {
		swcost := cfg.scale(cfg.Timing.CtxSwitch) + next.rng.Uniform(0, cfg.scale(cfg.Timing.CtxSwitchCachePenalty)) //simlint:region sched ctx-switch
		cost += swcost
	} else {
		cost += cfg.scale(cfg.Timing.CtxSwitch) / 4
	}
	if next.cpu != c {
		next.Migrated++
	}
	next.cpu = c
	next.state = TaskRunning
	next.Switches++
	c.cur = next
	c.kern.Trace.Switch(c.kern.Now(), c.ID, next.PID, next.Name, next.rtEffective())
	f := &frame{kind: frameSwitch, task: next, workLeft: float64(cost)}
	f.onDone = c.switchOnDone(f)
	c.push(f)
}

// switchOnDone completes a context-switch frame: begin the task the
// switch was into (recorded on the frame, so restore can rebuild this).
func (c *CPU) switchOnDone(f *frame) func() {
	return func() { c.beginTask(f.task) }
}

// beginTask resumes or starts the current task's execution.
func (c *CPU) beginTask(t *Task) {
	c.lastRan = t
	if t.saved != nil {
		f := t.saved
		t.saved = nil
		c.push(f)
		return
	}
	if t.call != nil {
		c.execSyscall(t)
		return
	}
	c.nextAction(t)
}

// --- task actions ---

// nextAction asks the behavior for the task's next step and executes it.
func (c *CPU) nextAction(t *Task) {
	if c.shouldPreempt() {
		c.preemptBetween(t)
		return
	}
	act := t.behavior.Next(t)
	switch act.Kind {
	case ActCompute:
		work := act.D
		if !t.MemLocked && work > 0 {
			// Un-locked pages fault occasionally; each fault costs real
			// time at unpredictable points. Coarse model: ~0.3% of the
			// compute time, exponentially distributed.
			work += t.rng.Exp(work.Scale(0.003))
		}
		f := &frame{kind: frameTask, task: t, workLeft: float64(work), complete: act.OnComplete}
		f.onDone = c.computeOnDone(f)
		c.push(f)
	case ActSyscall:
		if act.Call == nil {
			panic("kernel: ActSyscall without call definition")
		}
		t.call = newSyscallState(act, &c.kern.Cfg)
		c.kern.Trace.SyscallEnter(c.kern.Now(), c.ID, t.PID, t.Name, act.Call.Name)
		c.execSyscall(t)
	case ActSleep:
		t.state = TaskBlocked
		c.cur = nil
		c.lastRan = t
		k := c.kern
		wake := k.sleepWakeFn(t, act.OnComplete)
		if k.Cfg.HighResTimers {
			// POSIX timers patch: nanosecond-precision expiry. Tagged only
			// when no OnComplete closure is captured (the snapshot layer
			// rejects untagged events, making a non-restorable sleep loud).
			if act.OnComplete == nil {
				k.Eng.AfterTagged(act.D, evSleepWake.Tag(uint64(t.PID), 0, 0), wake)
			} else {
				k.Eng.After(act.D, wake)
			}
		} else {
			// Stock 2.4: through the jiffy timer wheel.
			if act.OnComplete == nil {
				k.AddTimerTagged(act.D, evSleepWake.Tag(uint64(t.PID), 0, 0), wake)
			} else {
				k.AddTimer(act.D, wake)
			}
		}
		c.dispatch()
	case ActYield:
		t.state = TaskRunnable
		t.lastQueue = c.kern.Now()
		c.cur = nil
		c.lastRan = t
		c.kern.sched.Enqueue(t, c)
		actionDone(t, ActYield, act.OnComplete, c.kern.Now())
		c.dispatch()
	case ActExit:
		t.state = TaskExited
		c.cur = nil
		c.lastRan = t
		actionDone(t, ActExit, act.OnComplete, c.kern.Now())
		c.dispatch()
	default:
		panic(fmt.Sprintf("kernel: unknown action kind %d", act.Kind))
	}
}

// computeOnDone completes a user-mode compute frame: the action's
// completion hook, then the behavior's next step — on whatever CPU the
// task is on NOW (a preempted frame can resume elsewhere).
func (c *CPU) computeOnDone(f *frame) func() {
	t := f.task
	return func() {
		cur := t.cpu
		actionDone(t, ActCompute, f.complete, cur.kern.Now())
		cur.nextAction(t)
	}
}

// sleepWakeFn is an ActSleep expiry: action completion, then wake.
func (k *Kernel) sleepWakeFn(t *Task, onComplete func(sim.Time)) func() {
	return func() {
		actionDone(t, ActSleep, onComplete, k.Now())
		k.WakeTask(t, nil)
	}
}

// --- syscall execution engine ---

// newSyscallState prepares the in-flight state for a syscall, applying the
// kernel's critical-section splitting (low-latency patches rewrite long
// critical sections into shorter ones with scheduling points; §6).
func newSyscallState(act Action, cfg *Config) *syscallCall {
	def := act.Call
	segs := def.Segments
	if max := cfg.MaxCritSection(); max > 0 {
		segs = splitSegments(segs, max)
	}
	return &syscallCall{def: def, segs: segs, onComplete: act.OnComplete}
}

// splitSegments caps SegWork regions at max, inserting scheduling points
// at the split boundaries. Lock-held regions become several shorter
// lock-held regions (release/reacquire between chunks), exactly the shape
// the low-latency patches gave the rewritten algorithms.
func splitSegments(segs []Segment, max sim.Duration) []Segment {
	out := make([]Segment, 0, len(segs))
	for _, s := range segs {
		if s.Kind != SegWork || s.D <= max {
			out = append(out, s)
			continue
		}
		remaining := s.D
		for remaining > 0 {
			chunk := s
			if remaining > max {
				chunk.D = max
				chunk.SchedPoint = true
				chunk.OnDone = nil
				chunk.DoneTag = sim.EventTag{}
			} else {
				chunk.D = remaining
			}
			remaining -= chunk.D
			out = append(out, chunk)
		}
	}
	return out
}

// execSyscall advances the current syscall to its next segment.
func (c *CPU) execSyscall(t *Task) {
	call := t.call
	cfg := &c.kern.Cfg

	// Acquire (or reacquire after a block) the Big Kernel Lock if this
	// call's path needs it (§6.3).
	if call.needsBKL(cfg) && !call.heldBKL {
		c.acquireLock(t, c.kern.BKL, false, spinForBKL, c.bklAcquiredFn(t, call))
		return
	}

	if call.idx >= len(call.segs) {
		// Syscall exit: back to user mode.
		if call.heldBKL {
			c.kern.BKL.release(c.kern.Now(), c)
			call.heldBKL = false
		}
		onComplete := call.onComplete
		t.call = nil
		c.kern.Trace.SyscallExit(c.kern.Now(), c.ID, t.PID, t.Name, call.def.Name)
		actionDone(t, ActSyscall, onComplete, c.kern.Now())
		// Kernel exit is a preemption point on every kernel.
		c.nextAction(t)
		return
	}

	seg := &call.segs[call.idx]
	if seg.Kind == SegBlock {
		call.idx++
		if call.heldBKL {
			// 2.4 semantics: the BKL is dropped across a sleep and
			// reacquired on wakeup.
			c.kern.BKL.release(c.kern.Now(), c)
			call.heldBKL = false
		}
		t.state = TaskBlocked
		t.waitOn = seg.Wait
		seg.Wait.enqueue(t)
		c.cur = nil
		c.lastRan = t
		if seg.OnDone != nil {
			seg.OnDone()
		}
		c.dispatch()
		return
	}

	if seg.Lock != nil {
		c.acquireLock(t, seg.Lock, seg.IRQsOff, spinForSeg, c.segStartFn(t, call, seg))
		return
	}
	c.segStartFn(t, call, seg)()
}

// bklAcquiredFn is the continuation of a BKL acquire at syscall entry or
// resume: mark the lock held and advance the call.
func (c *CPU) bklAcquiredFn(t *Task, call *syscallCall) func() {
	return func() {
		call.heldBKL = true
		c.execSyscall(t)
	}
}

// segStartFn pushes the execution frame for the call's current work
// segment (after its lock, if any, was acquired).
func (c *CPU) segStartFn(t *Task, call *syscallCall, seg *Segment) func() {
	return func() {
		f := &frame{kind: frameTask, task: t, seg: seg, workLeft: float64(seg.D), irqsOff: seg.IRQsOff}
		if seg.Lock != nil {
			f.locks = append(f.locks, seg.Lock)
		}
		// Resolve the CPU at completion time: a preemptible-kernel frame
		// can be preempted and resumed on a different CPU.
		f.onDone = segDoneFn(t, call, seg, f)
		c.push(f)
	}
}

// segDoneFn is a segment frame's completion, resolved against wherever
// the task is running when the work finishes.
func segDoneFn(t *Task, call *syscallCall, seg *Segment, f *frame) func() {
	return func() { t.cpu.segDone(t, call, seg, f) }
}

// segDone completes a kernel work region: releases its locks, runs its
// side effect, and checks the legal preemption points.
func (c *CPU) segDone(t *Task, call *syscallCall, seg *Segment, f *frame) {
	now := c.kern.Now()
	for _, l := range f.locks {
		l.release(now, c)
	}
	if seg.OnDone != nil {
		seg.OnDone()
	}
	call.idx++
	// The low-latency patches' scheduling points drop and reacquire the
	// BKL around the schedule check (the rewritten long paths release it
	// periodically); execSyscall reacquires it before the next region.
	if seg.SchedPoint && call.heldBKL {
		c.kern.BKL.release(now, c)
		call.heldBKL = false
	}
	// A boundary is a legal preemption point on a preemptible kernel, or
	// where the low-latency patches inserted a scheduling point — but
	// never while the BKL is held: the real kernel only drops it inside
	// the syscall exit path (which execSyscall handles) or in schedule()
	// itself. Preempting a BKL holder here would park the lock on the
	// runqueue and livelock every spinner.
	boundaryOK := !call.heldBKL && (c.kern.Cfg.Preemptible || seg.SchedPoint)
	if boundaryOK && c.shouldPreempt() {
		c.preemptBetween(t)
		return
	}
	c.execSyscall(t)
}

// acquireLock takes l for the task's context, spinning if contended.
// then runs once the lock is held; why records which syscall-engine
// continuation then is, so a snapshotted spin frame can be rebuilt.
func (c *CPU) acquireLock(t *Task, l *SpinLock, irqsOff bool, why uint8, then func()) {
	now := c.kern.Now()
	if l.tryAcquire(c, now) {
		then()
		return
	}
	c.kern.Trace.LockContend(now, c.ID, l.Name, l.holder.ID)
	f := &frame{kind: frameSpin, task: t, spin: l, irqsOff: irqsOff, spinSince: now, spinWhy: why, onDone: then}
	l.addWaiter(c, now, c.spinActiveFn(f), c.spinGrantedFn(f))
	c.push(f)
}

// spinActiveFn reports whether the spin frame is actively spinning (on
// top of its CPU's stack) — a preempted spinner cannot take a handover.
func (c *CPU) spinActiveFn(f *frame) func() bool {
	return func() bool { return c.top() == f }
}

// spinGrantedFn runs on the waiter's CPU when a released lock is handed
// to its spin frame: convert the spin to execution if it is on top, or
// mark it acquired for settle to convert when it surfaces.
func (c *CPU) spinGrantedFn(f *frame) func() {
	return func() {
		f.acquired = true
		c.kern.Trace.LockAcquire(c.kern.Now(), c.ID, f.spin.Name, c.kern.Now().Sub(f.spinSince))
		if c.top() == f {
			c.pop(f)
			if f.onDone != nil {
				f.onDone()
			}
			c.settle()
		}
		// Otherwise the spin frame is buried under interrupt frames;
		// settle converts it when it surfaces.
	}
}

// --- local timer ---

// startLocalTimer begins the periodic tick, staggered per CPU the way
// real SMP local APIC timers are.
func (c *CPU) startLocalTimer() {
	period := c.tickPeriod()
	offset := sim.Duration(int64(period) * int64(c.ID) / int64(len(c.kern.cpus)))
	// Pinned: CPU 0's local tick is phase-locked with the global timer
	// (both fire at exact multiples of the tick period), and the model
	// resolves that simultaneity as local-APIC-before-PIT, in schedule
	// order. See "Tie-break determinism" in DESIGN.md §8.
	c.tickEv = c.kern.Eng.AfterPinnedTagged(offset, evCPUTick.Tag(uint64(c.ID), 0, 0), c.tick)
}

func (c *CPU) tickPeriod() sim.Duration {
	return sim.Duration(int64(sim.Second) / int64(c.kern.Cfg.LocalTimerHz))
}

func (c *CPU) tick() {
	c.tickEv = sim.Event{}
	if c.kern.shieldLTimer.Has(c.ID) {
		// Local timer shielding: the tick is simply not scheduled again
		// until the CPU is unshielded (§3: "the shielded processor
		// mechanism allows this interrupt to be disabled").
		return
	}
	// Pinned for the same reason as startLocalTimer: the re-armed tick
	// stays ordered before the phase-locked global timer interrupt.
	c.tickEv = c.kern.Eng.AfterPinnedTagged(c.tickPeriod(), evCPUTick.Tag(uint64(c.ID), 0, 0), c.tick)
	c.raiseIRQ(c.localTimer)
}

// timerTick is the local timer handler body: time accounting and
// timeslice management.
func (c *CPU) timerTick() {
	c.TicksHandled++
	c.sampleTick()
	c.kern.Trace.TimerTick(c.kern.Now(), c.ID)
	t := c.cur
	if t == nil || t.Policy == SchedFIFO {
		return
	}
	t.sliceLeft -= c.tickPeriod()
	if t.sliceLeft <= 0 {
		t.sliceLeft = timesliceFor(t)
		c.sliceExpired = true
		c.needResched = true
	}
}

// --- bus contention sampling ---

// startBusSampling begins the periodic resampling of this CPU's memory
// bus slowdown factor (§5: even a shielded CPU sees ~2% jitter from
// memory contention in an SMP system).
func (c *CPU) startBusSampling() {
	period := c.kern.Cfg.Timing.BusResample
	if period <= 0 || c.kern.Cfg.Timing.BusContention <= 0 {
		return
	}
	offset := sim.Duration(int64(period) * int64(c.ID) / int64(len(c.kern.cpus)))
	c.kern.Eng.AfterTagged(offset, evBusResample.Tag(uint64(c.ID), 0, 0), c.busResample)
}

// busResample is the periodic bus-sampling event body: re-arm first,
// then resample — the schedule-before-sample order fixes which sequence
// numbers (and so which RNG draws) each step consumes.
func (c *CPU) busResample() {
	period := c.kern.Cfg.Timing.BusResample
	c.kern.Eng.AfterTagged(c.kern.rng.Jitter(period, 0.2), evBusResample.Tag(uint64(c.ID), 0, 0), c.busResample)
	c.resampleBus()
}

func (c *CPU) resampleBus() {
	otherBusy := 0
	otherPhys := 0
	seen := map[int]bool{}
	for _, o := range c.kern.cpus {
		if o.Phys == c.Phys || seen[o.Phys] {
			continue
		}
		seen[o.Phys] = true
		otherPhys++
		if o.busy() || (o.Sibling != nil && o.Sibling.busy()) {
			otherBusy++
		}
	}
	factor := 1.0
	if otherPhys > 0 && otherBusy > 0 {
		load := float64(otherBusy) / float64(otherPhys)
		factor = 1.0 / (1.0 + c.kern.Cfg.Timing.BusContention*load*c.kern.rng.Float64())
	}
	if factor != c.busFactor {
		old := c.rate()
		c.busFactor = factor
		c.rateChangedFrom(old)
	}
}
