package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// SchedPolicy is the POSIX scheduling policy of a task.
type SchedPolicy uint8

// Scheduling policies. SCHED_FIFO and SCHED_RR are the real-time
// fixed-priority policies; SCHED_OTHER is the time-sharing class.
const (
	SchedOther SchedPolicy = iota
	SchedFIFO
	SchedRR
)

// String returns the POSIX name of the policy.
func (p SchedPolicy) String() string {
	switch p {
	case SchedFIFO:
		return "SCHED_FIFO"
	case SchedRR:
		return "SCHED_RR"
	default:
		return "SCHED_OTHER"
	}
}

// Real-time priority range (1 low … 99 high), as in Linux.
const (
	MinRTPrio = 1
	MaxRTPrio = 99
)

// TaskState is the lifecycle state of a task.
type TaskState uint8

// Task states.
const (
	TaskRunnable TaskState = iota // on a runqueue, not running
	TaskRunning                   // currently executing on a CPU
	TaskBlocked                   // waiting on a WaitQueue or sleeping
	TaskExited
)

// String names the state.
func (s TaskState) String() string {
	switch s {
	case TaskRunnable:
		return "runnable"
	case TaskRunning:
		return "running"
	case TaskBlocked:
		return "blocked"
	default:
		return "exited"
	}
}

// Task is a simulated process/thread.
type Task struct {
	PID    int
	Name   string
	Policy SchedPolicy
	// RTPrio is the real-time priority for SCHED_FIFO/SCHED_RR
	// (1..99, higher wins). Ignored for SCHED_OTHER.
	RTPrio int
	// Nice is the SCHED_OTHER niceness (-20..19, lower is more
	// favoured). As in 2.4's NICE_TO_TICKS, it scales the timeslice:
	// nice -20 gets ~2x the default quantum, nice 19 gets a single
	// tick.
	Nice int
	// affinity is the user-requested CPU mask (sched_setaffinity).
	affinity CPUMask
	// MemLocked corresponds to mlockall(): when false, the task
	// occasionally takes a page fault during user-mode execution.
	MemLocked bool

	kern  *Kernel
	state TaskState
	// cpu is where the task is running or last ran.
	cpu *CPU
	// behavior supplies the task's next action.
	behavior Behavior
	// rng is the task's private random stream.
	rng *sim.RNG

	// saved is the suspended execution frame when the task was preempted
	// mid-segment, to be resumed on the next dispatch.
	saved *frame
	// syscall continuation state.
	call   *syscallCall
	waitOn *WaitQueue

	// Timeslice accounting for SCHED_OTHER / SCHED_RR.
	sliceLeft sim.Duration

	// Statistics.
	Switches  uint64
	Migrated  uint64
	RunTime   sim.Duration
	lastQueue sim.Time
}

// State returns the task's current lifecycle state.
func (t *Task) State() TaskState { return t.state }

// RNG returns the task's private deterministic random stream, for
// behaviors that draw work sizes from distributions.
func (t *Task) RNG() *sim.RNG { return t.rng }

// Kernel returns the kernel this task belongs to.
func (t *Task) Kernel() *Kernel { return t.kern }

// CPU returns the CPU the task is running on (or last ran on), -1 if none.
func (t *Task) CPU() int {
	if t.cpu == nil {
		return -1
	}
	return t.cpu.ID
}

// Affinity returns the user-set affinity mask.
func (t *Task) Affinity() CPUMask { return t.affinity }

// EffectiveAffinity returns the affinity after shielding semantics.
func (t *Task) EffectiveAffinity() CPUMask {
	return EffectiveAffinity(t.affinity, t.kern.shieldProcs, t.kern.online)
}

// rtEffective returns the effective priority used for runqueue ordering:
// RT tasks sort above all SCHED_OTHER tasks.
func (t *Task) rtEffective() int {
	if t.Policy == SchedFIFO || t.Policy == SchedRR {
		return t.RTPrio
	}
	return 0
}

// higherPrioThan reports whether t strictly beats other for a CPU.
func (t *Task) higherPrioThan(other *Task) bool {
	if other == nil {
		return true
	}
	return t.rtEffective() > other.rtEffective()
}

// String identifies the task for traces and errors.
func (t *Task) String() string {
	return fmt.Sprintf("%s/%d", t.Name, t.PID)
}

// WaitQueue is a kernel wait queue: tasks block on it and ISRs or other
// tasks wake them, FIFO.
type WaitQueue struct {
	Name    string
	waiters []*Task
	// id is the queue's kernel-registered snapshot identity (1-based;
	// 0 for unregistered queues, which cannot cross a snapshot).
	id uint64
}

// NewWaitQueue returns an empty, unregistered wait queue. Production
// queues should use Kernel.NewWaitQueue so they survive snapshots.
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{Name: name} }

// ID returns the queue's kernel-registered snapshot identity (0 when
// the queue was created outside Kernel.NewWaitQueue).
func (wq *WaitQueue) ID() uint64 { return wq.id }

// Len returns the number of blocked tasks.
func (wq *WaitQueue) Len() int { return len(wq.waiters) }

// enqueue appends a task (called by the kernel when a task blocks).
func (wq *WaitQueue) enqueue(t *Task) { wq.waiters = append(wq.waiters, t) }

// dequeue removes a specific task (e.g. woken selectively).
func (wq *WaitQueue) dequeue(t *Task) bool {
	for i, w := range wq.waiters {
		if w == t {
			wq.waiters = append(wq.waiters[:i], wq.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// popFirst removes and returns the first waiter, or nil.
func (wq *WaitQueue) popFirst() *Task {
	if len(wq.waiters) == 0 {
		return nil
	}
	t := wq.waiters[0]
	wq.waiters = wq.waiters[1:]
	return t
}
