package kernel

import "repro/internal/snapshot"

// Snapshot field manifests. Every struct the kernel serialises (or
// deliberately does not) registers here; the statecheck reflection test
// in internal/snapshot fails the build the moment a new field appears
// without a "codec" entry or an explicit skip justification — so state
// cannot silently leak past the checkpoint/restore boundary.
func init() {
	snapshot.RegisterState(Kernel{}, snapshot.Manifest{
		"Cfg":          "skip: construction input — the restoring process builds an identical machine from (config, seed) before Restore runs",
		"Eng":          "codec", // the engine writes its own "sim.engine" section
		"Trace":        "codec", // optional "trace.buffer" section, presence validated both ways
		"FS":           "skip: /proc files are stateless renderers over live kernel state, re-registered at construction",
		"cpus":         "codec",
		"online":       "skip: derived from Cfg.OnlineMask at construction",
		"tasks":        "codec",
		"byPID":        "skip: index over tasks, identical by construction (PIDs assigned in creation order)",
		"next":         "codec",
		"irqs":         "codec",
		"sched":        "codec", // "kernel.sched" section, kind-validated
		"shieldProcs":  "codec",
		"shieldIRQs":   "codec",
		"shieldLTimer": "codec",
		"BKL":          "codec",
		"namedLocks":   "codec", // serialised sorted by name; restore recreates on first lookup
		"rng":          "codec",
		"started":      "skip: restore requires an already-started machine and fails loudly otherwise",
		"wheel":        "codec",
		"timerIRQ":     "skip: member of irqs (IRQ 0), serialised there",
		"load":         "codec",
		"waitqs":       "codec",
		"comps":        "codec", // one section per registered component, in registration order
	})
	snapshot.RegisterState(CPU{}, snapshot.Manifest{
		"ID":            "skip: construction identity",
		"Phys":          "skip: construction topology",
		"Sibling":       "skip: construction topology (HT pairing)",
		"kern":          "skip: construction back-pointer",
		"stack":         "codec",
		"cur":           "codec",
		"lastRan":       "codec",
		"pendingIRQ":    "codec",
		"softirqPend":   "codec",
		"needResched":   "codec",
		"sliceExpired":  "codec",
		"forceResched":  "codec",
		"ksoftirqd":     "skip: construction back-pointer; the daemon task's state is in kernel.tasks",
		"softirqWq":     "skip: registered wait queue, serialised in kernel.waitqs",
		"daemonBacklog": "codec",
		"softirqHanded": "codec",
		"busFactor":     "codec",
		"tickEv":        "codec", // rebuilt from the pending "k.cpu-tick" event and re-attached
		"dispatchEv":    "codec", // rebuilt from the pending "k.idle-dispatch" event and re-attached
		"localTimer":    "codec", // rng + counters inline in kernel.cpus (not a member of irqs)
		"IRQsHandled":   "codec",
		"SoftirqRuns":   "codec",
		"SoftirqTime":   "codec",
		"Preemptions":   "codec",
		"TicksHandled":  "codec",
		"times":         "codec",
		"sampled":       "codec",
	})
	snapshot.RegisterState(frame{}, snapshot.Manifest{
		"kind":       "codec",
		"task":       "codec", // by PID
		"seg":        "codec", // by index into the owning call's segment list
		"workLeft":   "codec",
		"lastAccrue": "codec",
		"done":       "codec", // armed flag here; the event itself is re-attached from the engine section
		"locks":      "codec", // by name
		"irqsOff":    "codec",
		"irq":        "codec", // by line index (-1 = the CPU's local timer)
		"spin":       "codec", // by name
		"acquired":   "codec",
		"spinSince":  "codec",
		"suspended":  "codec",
		"spinWhy":    "codec",
		"began":      "codec",
		"complete":   "skip: must be nil at snapshot (checked loudly) — ActionCompleter behaviors need no captured closure",
		"onDone":     "codec", // rebuilt per frame kind from the serialised coordinates (readFrame)
	})
	snapshot.RegisterState(Task{}, snapshot.Manifest{
		"PID":       "codec", // validated against the reconstructed machine
		"Name":      "codec", // validated against the reconstructed machine
		"Policy":    "skip: construction-fixed; task identity is validated by PID+Name",
		"RTPrio":    "skip: construction-fixed; task identity is validated by PID+Name",
		"Nice":      "codec",
		"affinity":  "codec",
		"MemLocked": "codec",
		"kern":      "skip: construction back-pointer",
		"state":     "codec",
		"cpu":       "codec", // by id
		"behavior":  "codec", // SnapBehavior name (validated) + opaque state words
		"rng":       "codec",
		"saved":     "codec",
		"call":      "codec",
		"waitOn":    "codec", // by registered queue id
		"sliceLeft": "codec",
		"Switches":  "codec",
		"Migrated":  "codec",
		"RunTime":   "codec",
		"lastQueue": "codec",
	})
	snapshot.RegisterState(WaitQueue{}, snapshot.Manifest{
		"Name":    "codec", // validated against the reconstructed machine
		"waiters": "codec", // by PID
		"id":      "skip: registration-order identity, identical by construction and validated by section order",
	})
	snapshot.RegisterState(SpinLock{}, snapshot.Manifest{
		"Name":         "codec",
		"holder":       "codec", // by CPU id
		"waiters":      "codec",
		"Acquisitions": "codec",
		"Contentions":  "codec",
		"TotalSpin":    "codec",
		"MaxHold":      "codec",
		"heldAt":       "codec",
		"heldOnce":     "codec",
	})
	snapshot.RegisterState(lockWaiter{}, snapshot.Manifest{
		"cpu":     "codec", // by id
		"since":   "codec",
		"active":  "codec", // rebuilt via spinActiveFn from the CPU's restored spin frame
		"granted": "codec", // rebuilt via spinGrantedFn from the CPU's restored spin frame
	})
	snapshot.RegisterState(timerWheel{}, snapshot.Manifest{
		"k":          "skip: construction back-pointer",
		"jiffies":    "codec",
		"tv1":        "codec", // positional: (level, index) per timer, so mid-cascade layout survives
		"tv":         "codec",
		"pendingRun": "skip: must be empty at snapshot (checked loudly) — runWheelTick drains it synchronously within one event",
		"Added":      "codec",
		"Fired":      "codec",
	})
	snapshot.RegisterState(KTimer{}, snapshot.Manifest{
		"expires": "codec",
		"fn":      "codec", // rebuilt from tag through the registered event-kind rebuilder
		"active":  "skip: lazily-deleted timers are dropped at snapshot — they have no observable future",
		"tag":     "codec",
	})
	snapshot.RegisterState(IRQLine{}, snapshot.Manifest{
		"Num":         "skip: construction identity (registration order)",
		"Name":        "skip: construction identity",
		"kern":        "skip: construction back-pointer",
		"affinity":    "codec",
		"Fast":        "skip: construction-fixed handler class",
		"HandlerWork": "skip: construction closure, deterministic from config",
		"OnHandle":    "skip: construction closure (device side effects), deterministic from config",
		"rng":         "codec",
		"rr":          "codec",
		"Raised":      "codec",
		"Handled":     "codec",
		"PerCPU":      "codec",
	})
	snapshot.RegisterState(syscallCall{}, snapshot.Manifest{
		"def":        "codec", // name + flag word; validated to exist
		"segs":       "codec", // the post-split list actually executing
		"idx":        "codec",
		"heldBKL":    "codec",
		"onComplete": "skip: must be nil at snapshot (checked loudly) — ActionCompleter behaviors need no captured closure",
	})
	snapshot.RegisterState(Segment{}, snapshot.Manifest{
		"Kind":       "codec",
		"D":          "codec",
		"Lock":       "codec", // by name
		"IRQsOff":    "codec",
		"NonPreempt": "codec",
		"SchedPoint": "codec",
		"Wait":       "codec", // by registered queue id
		"OnDone":     "codec", // rebuilt from DoneTag through the registered event-kind rebuilder
		"DoneTag":    "codec",
	})
	snapshot.RegisterState(SyscallCall{}, snapshot.Manifest{
		"Name":                "codec",
		"Segments":            "codec", // restored as the executing call's post-split list
		"TakesBKL":            "codec", // packed into the call's flag word
		"DriverNoBKL":         "codec",
		"ReacquireBKLOnBlock": "codec",
	})
	snapshot.RegisterState(CPUTimes{}, snapshot.Manifest{
		"User":    "codec",
		"System":  "codec",
		"IRQ":     "codec",
		"Softirq": "codec",
		"Spin":    "codec",
	})
	snapshot.RegisterState(loadavg{}, snapshot.Manifest{
		"one":     "codec",
		"five":    "codec",
		"fifteen": "codec",
	})
	snapshot.RegisterState(o1Scheduler{}, snapshot.Manifest{
		"k":   "skip: construction back-pointer",
		"rqs": "codec",
	})
	snapshot.RegisterState(o1Runqueue{}, snapshot.Manifest{
		"queues": "codec", // per-slot PID lists, re-Enqueued in order
		"bitmap": "skip: derived — recomputed by add() during re-Enqueue",
		"nr":     "skip: derived — recomputed by add() during re-Enqueue",
	})
	snapshot.RegisterState(legacyScheduler{}, snapshot.Manifest{
		"k":   "skip: construction back-pointer",
		"run": "codec", // (PID, cpu) pairs, re-Enqueued in order
	})
	snapshot.RegisterState(ksoftirqdBehavior{}, snapshot.Manifest{
		"c":        "skip: construction back-pointer",
		"running":  "codec", // BehaviorState word 0
		"runStart": "codec", // BehaviorState word 1
	})
}
