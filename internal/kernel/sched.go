package kernel

import "repro/internal/sim"

// defaultTimeslice is the SCHED_OTHER/SCHED_RR quantum at nice 0.
const defaultTimeslice = 60 * sim.Millisecond

// timesliceFor scales the quantum by niceness the way 2.4's
// NICE_TO_TICKS did: nice -20 doubles it, nice +19 leaves one tick.
func timesliceFor(t *Task) sim.Duration {
	if t.Policy == SchedFIFO {
		return defaultTimeslice // unused: FIFO never expires
	}
	n := t.Nice
	if n < -20 {
		n = -20
	}
	if n > 19 {
		n = 19
	}
	// Linear from 2x at -20 through 1x at 0 down to ~1/6 at +19.
	frac := 1.0 - float64(n)*0.042
	if n < 0 {
		frac = 1.0 - float64(n)*0.05
	}
	d := defaultTimeslice.Scale(frac)
	if d < 10*sim.Millisecond {
		d = 10 * sim.Millisecond
	}
	return d
}

// Scheduler is the runqueue policy. Two implementations exist: the O(1)
// scheduler that RedHawk adopted from the 2.5 series and the legacy 2.4
// goodness() scheduler. Both give strict priority semantics (SCHED_FIFO/RR
// above SCHED_OTHER); they differ in data structure, decision cost and
// placement details.
type Scheduler interface {
	// Enqueue makes t runnable on c's queue.
	Enqueue(t *Task, c *CPU)
	// Dequeue removes a runnable task from its queue.
	Dequeue(t *Task)
	// Pick removes and returns the best task eligible to run on c, or
	// nil if none.
	Pick(c *CPU) *Task
	// Peek returns the best eligible task without removing it.
	Peek(c *CPU) *Task
	// PickCost is the decision cost charged at dispatch.
	PickCost(c *CPU) sim.Duration
	// PlaceWake chooses the CPU for a task that just became runnable.
	PlaceWake(t *Task) *CPU
	// NrRunnable is the number of queued (not running) tasks.
	NrRunnable() int
}

// eligible reports whether t may run on CPU c under shielding semantics.
func eligible(t *Task, c *CPU) bool {
	eff := t.EffectiveAffinity()
	if eff == 0 {
		return false
	}
	return eff.Has(c.ID)
}

// placeWake is the shared wake placement policy, modelled on 2.4's
// reschedule_idle and the O(1) scheduler's try_to_wake_up: prefer the
// last CPU if idle, then any idle CPU, then the CPU running the lowest-
// priority task that t can preempt, then the last CPU.
func placeWake(k *Kernel, t *Task) *CPU {
	eff := t.EffectiveAffinity()
	if eff == 0 {
		eff = t.affinity & k.online
		if eff == 0 {
			eff = k.online
		}
	}
	if t.cpu != nil && eff.Has(t.cpu.ID) && t.cpu.Idle() {
		return t.cpu
	}
	var idle []*CPU
	var lowest *CPU
	lowestPrio := 1 << 30
	for _, id := range eff.CPUs() {
		c := k.cpus[id]
		if c.Idle() {
			idle = append(idle, c)
			continue
		}
		p := 1 << 29 // busy with interrupt work only: hard to place
		if c.cur != nil {
			p = c.cur.rtEffective()
		}
		if p < lowestPrio {
			lowestPrio = p
			lowest = c
		}
	}
	if len(idle) > 0 {
		// Any idle CPU will do; 2.4 had no topology awareness, and which
		// idle CPU picked up a waking task was effectively arbitrary —
		// including, on hyperthreaded boxes, the sibling of a CPU
		// running a real-time loop (§5's jitter source).
		return idle[k.rng.Intn(len(idle))]
	}
	if lowest != nil && t.rtEffective() > lowestPrio {
		return lowest
	}
	if t.cpu != nil && eff.Has(t.cpu.ID) {
		return t.cpu
	}
	return k.cpus[eff.First()]
}
