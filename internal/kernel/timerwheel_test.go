package kernel

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestWheelBasicExpiry(t *testing.T) {
	k := New(testConfig(1), 1)
	w := k.wheel
	fired := map[int]uint64{}
	for _, ticks := range []uint64{1, 3, 3, 255} {
		ticks := ticks
		w.AddTimer(ticks, func() { fired[int(ticks)] = w.Jiffies() })
	}
	for i := 0; i < 300; i++ {
		for _, tm := range w.Tick() {
			tm.fn()
		}
	}
	if fired[1] != 1 || fired[3] != 3 || fired[255] != 255 {
		t.Fatalf("expiry jiffies = %v", fired)
	}
	if w.Fired != 4 {
		t.Fatalf("Fired = %d, want 4", w.Fired)
	}
}

func TestWheelZeroTicksMeansOne(t *testing.T) {
	k := New(testConfig(1), 1)
	w := k.wheel
	var at uint64
	w.AddTimer(0, func() { at = w.Jiffies() })
	for i := 0; i < 5; i++ {
		for _, tm := range w.Tick() {
			tm.fn()
		}
	}
	if at != 1 {
		t.Fatalf("zero-tick timer fired at jiffy %d, want 1", at)
	}
}

func TestWheelCascade(t *testing.T) {
	// Timers beyond 256 jiffies live in higher vectors and must still
	// fire at exactly the right jiffy after cascading.
	k := New(testConfig(1), 1)
	w := k.wheel
	want := map[uint64]bool{300: false, 1000: false, 20000: false, 300000: false}
	for ticks := range want {
		ticks := ticks
		w.AddTimer(ticks, func() {
			if w.Jiffies() != ticks {
				t.Errorf("timer for %d fired at %d", ticks, w.Jiffies())
			}
			want[ticks] = true
		})
	}
	for i := 0; i < 300001; i++ {
		for _, tm := range w.Tick() {
			tm.fn()
		}
	}
	for ticks, ok := range want {
		if !ok {
			t.Errorf("timer for %d never fired", ticks)
		}
	}
}

func TestWheelDelTimer(t *testing.T) {
	k := New(testConfig(1), 1)
	w := k.wheel
	fired := false
	tm := w.AddTimer(5, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active after add")
	}
	w.DelTimer(tm)
	if tm.Active() {
		t.Fatal("timer still active after del")
	}
	for i := 0; i < 10; i++ {
		for _, x := range w.Tick() {
			x.fn()
		}
	}
	if fired {
		t.Fatal("deleted timer fired")
	}
	// Deleting nil or twice is a no-op.
	w.DelTimer(nil)
	w.DelTimer(tm)
}

// Property: for any batch of delays, every timer fires exactly at its
// jiffy, no earlier, no later, regardless of vector and cascade paths.
func TestQuickWheelExactExpiry(t *testing.T) {
	f := func(raw []uint16) bool {
		k := New(testConfig(1), 1)
		w := k.wheel
		var maxTicks uint64
		ok := true
		for _, r := range raw {
			ticks := uint64(r)%70000 + 1
			if ticks > maxTicks {
				maxTicks = ticks
			}
			want := ticks
			w.AddTimer(ticks, func() {
				if w.Jiffies() != want {
					ok = false
				}
			})
		}
		for i := uint64(0); i <= maxTicks; i++ {
			for _, tm := range w.Tick() {
				tm.fn()
			}
		}
		return ok && w.Fired == uint64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelAddTimerThroughTick(t *testing.T) {
	// Integration: a kernel timer scheduled through AddTimer fires from
	// the global timer interrupt at the right jiffy boundary.
	cfg := StandardLinux24(1, 1.0, false)
	k := New(cfg, 7)
	var firedAt sim.Time = -1
	k.AddTimer(25*sim.Millisecond, func() { firedAt = k.Now() })
	k.Start()
	k.Eng.Run(sim.Time(200 * sim.Millisecond))
	if firedAt < 0 {
		t.Fatal("kernel timer never fired")
	}
	// ceil(25/10)+1 = 4 ticks → ~40ms, at a tick boundary.
	if firedAt < sim.Time(30*sim.Millisecond) || firedAt > sim.Time(50*sim.Millisecond) {
		t.Fatalf("fired at %v, want ~40ms", firedAt)
	}
	if k.Jiffies() < 19 {
		t.Fatalf("jiffies = %d after 200ms at 100Hz", k.Jiffies())
	}
}

func TestWheelSurvivesLTimerShield(t *testing.T) {
	// Shielding a CPU's local timer must NOT stop global timekeeping:
	// IRQ0 reroutes to an unshielded CPU and jiffies keep advancing.
	cfg := RedHawk14(2, 1.0)
	k := New(cfg, 7)
	k.Start()
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	if err := k.SetShieldAll(MaskOf(1)); err != nil {
		t.Fatal(err)
	}
	before := k.Jiffies()
	k.Eng.Run(k.Now() + sim.Time(500*sim.Millisecond))
	after := k.Jiffies()
	if after < before+45 {
		t.Fatalf("jiffies stalled under shielding: %d -> %d", before, after)
	}
}
