package kernel

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestWheelBasicExpiry(t *testing.T) {
	k := New(testConfig(1), 1)
	w := k.wheel
	fired := map[int]uint64{}
	for _, ticks := range []uint64{1, 3, 3, 255} {
		ticks := ticks
		w.AddTimer(ticks, func() { fired[int(ticks)] = w.Jiffies() })
	}
	for i := 0; i < 300; i++ {
		for _, tm := range w.Tick() {
			tm.fn()
		}
	}
	if fired[1] != 1 || fired[3] != 3 || fired[255] != 255 {
		t.Fatalf("expiry jiffies = %v", fired)
	}
	if w.Fired != 4 {
		t.Fatalf("Fired = %d, want 4", w.Fired)
	}
}

func TestWheelZeroTicksMeansOne(t *testing.T) {
	k := New(testConfig(1), 1)
	w := k.wheel
	var at uint64
	w.AddTimer(0, func() { at = w.Jiffies() })
	for i := 0; i < 5; i++ {
		for _, tm := range w.Tick() {
			tm.fn()
		}
	}
	if at != 1 {
		t.Fatalf("zero-tick timer fired at jiffy %d, want 1", at)
	}
}

func TestWheelCascade(t *testing.T) {
	// Timers beyond 256 jiffies live in higher vectors and must still
	// fire at exactly the right jiffy after cascading.
	k := New(testConfig(1), 1)
	w := k.wheel
	want := map[uint64]bool{300: false, 1000: false, 20000: false, 300000: false}
	for ticks := range want {
		ticks := ticks
		w.AddTimer(ticks, func() {
			if w.Jiffies() != ticks {
				t.Errorf("timer for %d fired at %d", ticks, w.Jiffies())
			}
			want[ticks] = true
		})
	}
	for i := 0; i < 300001; i++ {
		for _, tm := range w.Tick() {
			tm.fn()
		}
	}
	for ticks, ok := range want {
		if !ok {
			t.Errorf("timer for %d never fired", ticks)
		}
	}
}

func TestWheelDelTimer(t *testing.T) {
	k := New(testConfig(1), 1)
	w := k.wheel
	fired := false
	tm := w.AddTimer(5, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active after add")
	}
	w.DelTimer(tm)
	if tm.Active() {
		t.Fatal("timer still active after del")
	}
	for i := 0; i < 10; i++ {
		for _, x := range w.Tick() {
			x.fn()
		}
	}
	if fired {
		t.Fatal("deleted timer fired")
	}
	// Deleting nil or twice is a no-op.
	w.DelTimer(nil)
	w.DelTimer(tm)
}

// Property: for any batch of delays, every timer fires exactly at its
// jiffy, no earlier, no later, regardless of vector and cascade paths.
func TestQuickWheelExactExpiry(t *testing.T) {
	f := func(raw []uint16) bool {
		k := New(testConfig(1), 1)
		w := k.wheel
		var maxTicks uint64
		ok := true
		for _, r := range raw {
			ticks := uint64(r)%70000 + 1
			if ticks > maxTicks {
				maxTicks = ticks
			}
			want := ticks
			w.AddTimer(ticks, func() {
				if w.Jiffies() != want {
					ok = false
				}
			})
		}
		for i := uint64(0); i <= maxTicks; i++ {
			for _, tm := range w.Tick() {
				tm.fn()
			}
		}
		return ok && w.Fired == uint64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelAddTimerThroughTick(t *testing.T) {
	// Integration: a kernel timer scheduled through AddTimer fires from
	// the global timer interrupt at the right jiffy boundary.
	cfg := StandardLinux24(1, 1.0, false)
	k := New(cfg, 7)
	var firedAt sim.Time = -1
	k.AddTimer(25*sim.Millisecond, func() { firedAt = k.Now() })
	k.Start()
	k.Eng.Run(sim.Time(200 * sim.Millisecond))
	if firedAt < 0 {
		t.Fatal("kernel timer never fired")
	}
	// ceil(25/10)+1 = 4 ticks → ~40ms, at a tick boundary.
	if firedAt < sim.Time(30*sim.Millisecond) || firedAt > sim.Time(50*sim.Millisecond) {
		t.Fatalf("fired at %v, want ~40ms", firedAt)
	}
	if k.Jiffies() < 19 {
		t.Fatalf("jiffies = %d after 200ms at 100Hz", k.Jiffies())
	}
}

func TestWheelCascadeAtWrapBoundaries(t *testing.T) {
	// Expiries straddling the vector boundaries — the last jiffy of tv1's
	// range, the wrap itself, the first jiffy after, and the same around
	// the tv1/tv[0] and tv[0]/tv[1] range edges — must all fire at
	// exactly their jiffy. These are the deltas where an off-by-one in
	// insert's range choice or in cascade's re-ranging shows up.
	k := New(testConfig(1), 1)
	w := k.wheel
	boundaries := []uint64{
		254, 255, 256, 257, // tv1 wrap
		511, 512, 513, // second tv1 lap + cascade at jiffy 512
		(1 << 14) - 1, 1 << 14, (1 << 14) + 1, // tv[0]/tv[1] edge
	}
	firedAt := map[uint64]uint64{}
	for _, ticks := range boundaries {
		ticks := ticks
		w.AddTimer(ticks, func() { firedAt[ticks] = w.Jiffies() })
	}
	for i := uint64(0); i <= (1<<14)+1; i++ {
		for _, tm := range w.Tick() {
			tm.fn()
		}
	}
	for _, ticks := range boundaries {
		at, ok := firedAt[ticks]
		if !ok {
			t.Errorf("boundary timer for delta %d never fired", ticks)
		} else if at != ticks {
			t.Errorf("boundary timer for delta %d fired at jiffy %d", ticks, at)
		}
	}
	if w.Fired != uint64(len(boundaries)) {
		t.Fatalf("Fired = %d, want %d", w.Fired, len(boundaries))
	}
}

func TestWheelCancelInsideCascadingBucket(t *testing.T) {
	// A timer cancelled while it sits in a higher-vector bucket must be
	// dropped by the cascade (not re-inserted), and a timer cancelled by
	// a callback after its bucket already cascaded into tv1 must still
	// not fire.
	k := New(testConfig(1), 1)
	w := k.wheel
	var fired []uint64
	rec := func(tag uint64) func() { return func() { fired = append(fired, tag) } }

	// dead sits in tv[0] (delta 400) and is cancelled before the cascade
	// at jiffy 256 migrates its bucket.
	dead := w.AddTimer(400, rec(400))
	keep := w.AddTimer(410, rec(410))
	// victim shares dead's cascade lap; canceller fires first at 290 —
	// after the jiffy-256 cascade moved both into tv1 — and cancels it.
	var victim *KTimer
	victim = w.AddTimer(300, rec(300))
	w.AddTimer(290, func() {
		rec(290)()
		w.DelTimer(victim)
	})

	for i := 0; i < 600; i++ {
		if w.Jiffies() == 99 {
			w.DelTimer(dead)
		}
		for _, tm := range w.Tick() {
			tm.fn()
		}
		if w.Jiffies() == 256 {
			// The cascade just ran: the inactive timer must have been
			// dropped, not parked anywhere in the wheel.
			if n := countInWheel(w, dead); n != 0 {
				t.Fatalf("cancelled timer still in %d wheel buckets after cascade", n)
			}
			if n := countInWheel(w, keep); n != 1 {
				t.Fatalf("active timer in %d wheel buckets after cascade, want 1", n)
			}
		}
	}
	want := []uint64{290, 410}
	if len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired tags %v, want %v", fired, want)
	}
}

// countInWheel counts how many wheel buckets hold t.
func countInWheel(w *timerWheel, target *KTimer) int {
	n := 0
	for _, b := range w.tv1 {
		for _, t := range b {
			if t == target {
				n++
			}
		}
	}
	for lvl := range w.tv {
		for _, b := range w.tv[lvl] {
			for _, t := range b {
				if t == target {
					n++
				}
			}
		}
	}
	return n
}

func TestWheelBulkCancelAcrossVectors(t *testing.T) {
	// DelTimers drops a whole batch in one pass, wherever the timers sit
	// — tv1, tv[0], tv[1] — and tolerates nils, duplicates and timers
	// that already fired.
	k := New(testConfig(1), 1)
	w := k.wheel
	deltas := []uint64{3, 40, 200, 300, 5000, 20000, 70000}
	timers := make([]*KTimer, len(deltas))
	firedAt := map[uint64]uint64{}
	for i, d := range deltas {
		d := d
		timers[i] = w.AddTimer(d, func() { firedAt[d] = w.Jiffies() })
	}
	// Let the shortest fire so the batch includes an expired timer.
	for i := 0; i < 5; i++ {
		for _, tm := range w.Tick() {
			tm.fn()
		}
	}
	// Cancel every other timer, plus a nil, a duplicate and the expired one.
	batch := []*KTimer{timers[1], timers[3], timers[5], nil, timers[1], timers[0]}
	if n := w.DelTimers(batch); n != 3 {
		t.Fatalf("DelTimers cancelled %d, want 3 (nil/dup/expired are no-ops)", n)
	}
	if n := w.DelTimers(batch); n != 0 {
		t.Fatalf("second DelTimers cancelled %d, want 0", n)
	}
	for i := uint64(5); i <= 70000; i++ {
		for _, tm := range w.Tick() {
			tm.fn()
		}
	}
	for i, d := range deltas {
		cancelled := i == 1 || i == 3 || i == 5
		at, fired := firedAt[d]
		if cancelled && fired {
			t.Errorf("bulk-cancelled timer for delta %d fired at jiffy %d", d, at)
		}
		if !cancelled && !fired {
			t.Errorf("surviving timer for delta %d never fired", d)
		}
		if !cancelled && fired && at != d {
			t.Errorf("surviving timer for delta %d fired at jiffy %d", d, at)
		}
	}
}

func TestKernelBulkCancelThroughTick(t *testing.T) {
	// Integration: timers bulk-cancelled through the kernel API never
	// fire from the timer bottom half, while the rest of the batch does.
	cfg := StandardLinux24(1, 1.0, false)
	k := New(cfg, 7)
	var fired int
	var doomed []*KTimer
	for i := 0; i < 8; i++ {
		tm := k.AddTimer(sim.Duration(20+i*10)*sim.Millisecond, func() { fired++ })
		if i%2 == 0 {
			doomed = append(doomed, tm)
		}
	}
	k.Start()
	k.Eng.Run(sim.Time(10 * sim.Millisecond))
	if n := k.DelTimers(doomed); n != 4 {
		t.Fatalf("DelTimers cancelled %d, want 4", n)
	}
	k.Eng.Run(sim.Time(500 * sim.Millisecond))
	if fired != 4 {
		t.Fatalf("%d timers fired, want the 4 survivors", fired)
	}
}

func TestWheelQueueABIdentical(t *testing.T) {
	// The wheel is driven by the engine's timer tick; swapping the
	// engine's queue implementation must not move a single expiry.
	run := func(kind sim.QueueKind) []sim.Time {
		cfg := StandardLinux24(1, 1.0, false)
		cfg.EventQueue = kind
		k := New(cfg, 7)
		var fires []sim.Time
		for i := 0; i < 12; i++ {
			d := sim.Duration(7+i*13) * sim.Millisecond
			k.AddTimer(d, func() { fires = append(fires, k.Now()) })
		}
		k.Start()
		k.Eng.Run(sim.Time(400 * sim.Millisecond))
		return fires
	}
	h, l := run(sim.QueueHeap), run(sim.QueueLadder)
	if len(h) != len(l) {
		t.Fatalf("heap fired %d, ladder fired %d", len(h), len(l))
	}
	for i := range h {
		if h[i] != l[i] {
			t.Fatalf("expiry %d: heap at %v, ladder at %v", i, h[i], l[i])
		}
	}
}

func TestWheelSurvivesLTimerShield(t *testing.T) {
	// Shielding a CPU's local timer must NOT stop global timekeeping:
	// IRQ0 reroutes to an unshielded CPU and jiffies keep advancing.
	cfg := RedHawk14(2, 1.0)
	k := New(cfg, 7)
	k.Start()
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	if err := k.SetShieldAll(MaskOf(1)); err != nil {
		t.Fatal(err)
	}
	before := k.Jiffies()
	k.Eng.Run(k.Now() + sim.Time(500*sim.Millisecond))
	after := k.Jiffies()
	if after < before+45 {
		t.Fatalf("jiffies stalled under shielding: %d -> %d", before, after)
	}
}
