package kernel

import (
	"testing"

	"repro/internal/sim"
)

// testConfig returns a small RedHawk-style machine for behavioral tests.
func testConfig(ncpu int) Config {
	cfg := RedHawk14(ncpu, 1.0)
	return cfg
}

// run builds a kernel, starts it and runs until the given time.
func run(t *testing.T, cfg Config, setup func(k *Kernel), until sim.Duration) *Kernel {
	t.Helper()
	k := New(cfg, 42)
	setup(k)
	k.Start()
	k.Eng.Run(sim.Time(until))
	return k
}

// onceBehavior runs a fixed list of actions then exits.
type onceBehavior struct {
	actions []Action
	idx     int
}

func (b *onceBehavior) Next(t *Task) Action {
	if b.idx >= len(b.actions) {
		return Exit()
	}
	a := b.actions[b.idx]
	b.idx++
	return a
}

func TestComputeTaskRunsToCompletion(t *testing.T) {
	var done sim.Time = -1
	act := Compute(10 * sim.Millisecond)
	act.OnComplete = func(now sim.Time) { done = now }
	k := run(t, testConfig(1), func(k *Kernel) {
		k.NewTask("worker", SchedOther, 0, 0, &onceBehavior{actions: []Action{act}})
	}, 100*sim.Millisecond)

	if done < 0 {
		t.Fatal("compute action never completed")
	}
	// 10ms of work plus dispatch overhead and tick interruptions; it
	// must take at least the work and not wildly more.
	if done < sim.Time(10*sim.Millisecond) {
		t.Fatalf("completed at %v, before the work could be done", done)
	}
	if done > sim.Time(12*sim.Millisecond) {
		t.Fatalf("completed at %v, too much overhead on an idle machine", done)
	}
	var task *Task
	for _, tk := range k.Tasks() {
		if tk.Name == "worker" {
			task = tk
		}
	}
	if task == nil || task.State() != TaskExited {
		t.Fatalf("worker state = %v, want exited", task.State())
	}
}

func TestTwoTasksOneCPUTimeshare(t *testing.T) {
	// Two SCHED_OTHER tasks on one CPU must both make progress
	// (timeslice rotation) and both finish.
	finished := 0
	mk := func() Behavior {
		act := Compute(200 * sim.Millisecond)
		act.OnComplete = func(sim.Time) { finished++ }
		return &onceBehavior{actions: []Action{act}}
	}
	run(t, testConfig(1), func(k *Kernel) {
		k.NewTask("a", SchedOther, 0, 0, mk())
		k.NewTask("b", SchedOther, 0, 0, mk())
	}, 600*sim.Millisecond)
	if finished != 2 {
		t.Fatalf("finished = %d, want 2", finished)
	}
}

func TestFIFOPreemptsOther(t *testing.T) {
	// A SCHED_FIFO task waking up must preempt a SCHED_OTHER cpu hog
	// almost immediately (user-mode preemption).
	var rtStart sim.Time = -1
	hog := BehaviorFunc(func(task *Task) Action {
		return Compute(sim.Second)
	})
	rtAct := Compute(sim.Millisecond)
	rtAct.OnComplete = func(now sim.Time) { rtStart = now }

	run(t, testConfig(1), func(k *Kernel) {
		k.NewTask("hog", SchedOther, 0, 0, hog)
		rt := k.NewTask("rt", SchedFIFO, 90, 0, &onceBehavior{actions: []Action{
			Sleep(10 * sim.Millisecond),
			rtAct,
		}})
		_ = rt
	}, 100*sim.Millisecond)

	if rtStart < 0 {
		t.Fatal("RT task never ran")
	}
	// Woken at ~10ms; must complete its 1ms compute well before the
	// hog's 1s compute would have finished.
	latency := rtStart - sim.Time(11*sim.Millisecond)
	if latency < 0 {
		latency = -latency
	}
	if latency > sim.Time(200*sim.Microsecond) {
		t.Fatalf("RT completion at %v, want ~11ms (preemption of user-mode hog)", rtStart)
	}
}

func TestFIFONeverRotated(t *testing.T) {
	// Two FIFO tasks at the same priority: the first must run to
	// completion before the second starts (no timeslice rotation).
	var order []int
	mk := func(id int) Behavior {
		act := Compute(300 * sim.Millisecond)
		act.OnComplete = func(sim.Time) { order = append(order, id) }
		return &onceBehavior{actions: []Action{act}}
	}
	run(t, testConfig(1), func(k *Kernel) {
		k.NewTask("f1", SchedFIFO, 50, 0, mk(1))
		k.NewTask("f2", SchedFIFO, 50, 0, mk(2))
	}, 800*sim.Millisecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("completion order = %v, want [1 2]", order)
	}
}

func TestHigherFIFOPrioWins(t *testing.T) {
	var first int
	mk := func(id int) Behavior {
		act := Compute(50 * sim.Millisecond)
		act.OnComplete = func(sim.Time) {
			if first == 0 {
				first = id
			}
		}
		return &onceBehavior{actions: []Action{act}}
	}
	run(t, testConfig(1), func(k *Kernel) {
		k.NewTask("low", SchedFIFO, 10, 0, mk(1))
		k.NewTask("high", SchedFIFO, 90, 0, mk(2))
	}, 300*sim.Millisecond)
	if first != 2 {
		t.Fatalf("first finisher = %d, want the high-priority task", first)
	}
}

func TestAffinityRespected(t *testing.T) {
	cfg := testConfig(2)
	var ranOn = -1
	act := Compute(5 * sim.Millisecond)
	run(t, cfg, func(k *Kernel) {
		b := BehaviorFunc(func(task *Task) Action {
			ranOn = task.CPU()
			return Exit()
		})
		a := act
		_ = a
		k.NewTask("pinned", SchedOther, 0, MaskOf(1), b)
	}, 50*sim.Millisecond)
	if ranOn != 1 {
		t.Fatalf("pinned task ran on cpu%d, want cpu1", ranOn)
	}
}

func TestSMPParallelism(t *testing.T) {
	// Two CPU-bound tasks on two CPUs should finish in about the time of
	// one (parallel), not two (serial).
	var last sim.Time
	mk := func() Behavior {
		act := Compute(100 * sim.Millisecond)
		act.OnComplete = func(now sim.Time) {
			if now > last {
				last = now
			}
		}
		return &onceBehavior{actions: []Action{act}}
	}
	run(t, testConfig(2), func(k *Kernel) {
		k.NewTask("a", SchedOther, 0, 0, mk())
		k.NewTask("b", SchedOther, 0, 0, mk())
	}, 400*sim.Millisecond)
	if last == 0 {
		t.Fatal("tasks did not finish")
	}
	if last > sim.Time(120*sim.Millisecond) {
		t.Fatalf("parallel finish at %v, want ~100-105ms (bus contention only)", last)
	}
}

func TestSleepWakes(t *testing.T) {
	var woke sim.Time = -1
	act := Sleep(25 * sim.Millisecond)
	act.OnComplete = func(now sim.Time) { woke = now }
	run(t, testConfig(1), func(k *Kernel) {
		k.NewTask("sleeper", SchedOther, 0, 0, &onceBehavior{actions: []Action{act}})
	}, 100*sim.Millisecond)
	if woke < sim.Time(25*sim.Millisecond) || woke > sim.Time(26*sim.Millisecond) {
		t.Fatalf("woke at %v, want ~25ms", woke)
	}
}

func TestSyscallSegmentsExecute(t *testing.T) {
	var sideEffects []string
	var completed sim.Time = -1
	call := &SyscallCall{
		Name: "test",
		Segments: []Segment{
			{Kind: SegWork, D: 100 * sim.Microsecond, OnDone: func() { sideEffects = append(sideEffects, "a") }},
			{Kind: SegWork, D: 50 * sim.Microsecond, OnDone: func() { sideEffects = append(sideEffects, "b") }},
		},
	}
	act := Syscall(call)
	act.OnComplete = func(now sim.Time) { completed = now }
	run(t, testConfig(1), func(k *Kernel) {
		k.NewTask("caller", SchedOther, 0, 0, &onceBehavior{actions: []Action{act}})
	}, 10*sim.Millisecond)
	if completed < 0 {
		t.Fatal("syscall never completed")
	}
	if len(sideEffects) != 2 || sideEffects[0] != "a" || sideEffects[1] != "b" {
		t.Fatalf("side effects = %v", sideEffects)
	}
	if completed < sim.Time(150*sim.Microsecond) {
		t.Fatalf("syscall completed at %v, faster than its work", completed)
	}
}

func TestSyscallBlockAndWake(t *testing.T) {
	wq := NewWaitQueue("dev")
	var completed sim.Time = -1
	call := &SyscallCall{
		Name: "read",
		Segments: []Segment{
			{Kind: SegWork, D: 10 * sim.Microsecond},
			{Kind: SegBlock, Wait: wq},
			{Kind: SegWork, D: 5 * sim.Microsecond},
		},
	}
	act := Syscall(call)
	act.OnComplete = func(now sim.Time) { completed = now }

	k := New(testConfig(1), 42)
	tk := k.NewTask("reader", SchedFIFO, 80, 0, &onceBehavior{actions: []Action{act}})
	k.Start()
	// Wake the reader at t=5ms from a timer event (as an ISR would).
	k.Eng.Schedule(sim.Time(5*sim.Millisecond), func() {
		k.WakeAll(wq, nil)
	})
	k.Eng.Run(sim.Time(20 * sim.Millisecond))

	if completed < 0 {
		t.Fatalf("blocked syscall never completed (task state %v)", tk.State())
	}
	if completed < sim.Time(5*sim.Millisecond) {
		t.Fatal("syscall completed before the wake")
	}
	// Wake + switch + 5µs exit work on an idle CPU: tens of µs at most.
	if completed > sim.Time(5*sim.Millisecond+100*sim.Microsecond) {
		t.Fatalf("wake-to-completion took too long: %v", completed)
	}
}

func TestTaskMigratesOffCPUOnAffinityChange(t *testing.T) {
	cfg := testConfig(2)
	k := New(cfg, 42)
	var task *Task
	task = k.NewTask("mover", SchedOther, 0, MaskOf(0), BehaviorFunc(func(tk *Task) Action {
		return Compute(10 * sim.Millisecond)
	}))
	k.Start()
	k.Eng.Schedule(sim.Time(15*sim.Millisecond), func() {
		if err := k.SetTaskAffinity(task, MaskOf(1)); err != nil {
			t.Errorf("SetTaskAffinity: %v", err)
		}
	})
	k.Eng.Run(sim.Time(50 * sim.Millisecond))
	if got := task.CPU(); got != 1 {
		t.Fatalf("task on cpu%d after affinity change, want cpu1", got)
	}
}
