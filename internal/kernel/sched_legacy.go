package kernel

import "repro/internal/sim"

// legacyScheduler is the 2.4 scheduler: one global runqueue, and every
// dispatch walks it computing goodness() for each runnable task — O(n) in
// the number of runnable tasks, which is the scheduling-overhead problem
// the O(1) scheduler fixed. Selection semantics here: highest RT priority
// first, then FIFO order with a last-CPU (cache affinity) bonus among
// time-sharing tasks, a faithful simplification of goodness().
type legacyScheduler struct {
	k   *Kernel
	run []*Task // global runqueue, FIFO within priority
}

func newLegacyScheduler(k *Kernel) *legacyScheduler {
	return &legacyScheduler{k: k}
}

// Enqueue implements Scheduler. The legacy runqueue is global; c only
// records the preferred CPU for the cache-affinity bonus.
func (s *legacyScheduler) Enqueue(t *Task, c *CPU) {
	t.cpu = c
	s.run = append(s.run, t)
}

// Dequeue implements Scheduler.
func (s *legacyScheduler) Dequeue(t *Task) {
	for i, x := range s.run {
		if x == t {
			s.run = append(s.run[:i], s.run[i+1:]...)
			return
		}
	}
}

// goodness scores t for running on c: RT priority dominates; among equal
// priorities, a task that last ran on c gets a bonus (PROC_CHANGE_PENALTY)
// and earlier-queued tasks win ties.
func (s *legacyScheduler) goodness(t *Task, c *CPU) int {
	g := t.rtEffective() * 1000
	if t.cpu == c {
		g += 100
	}
	return g
}

func (s *legacyScheduler) bestIndex(c *CPU) int {
	best, bestG := -1, -1
	for i, t := range s.run {
		if !eligible(t, c) {
			continue
		}
		if g := s.goodness(t, c); g > bestG {
			best, bestG = i, g
		}
	}
	return best
}

// Pick implements Scheduler.
func (s *legacyScheduler) Pick(c *CPU) *Task {
	i := s.bestIndex(c)
	if i < 0 {
		return nil
	}
	t := s.run[i]
	s.run = append(s.run[:i], s.run[i+1:]...)
	if t.cpu != nil && t.cpu != c {
		// Cross-CPU pull off the global runqueue: the task loses its
		// cache-affinity bonus and runs here.
		s.k.Trace.Migrate(s.k.Now(), c.ID, t.PID, t.Name, t.cpu.ID, c.ID)
	}
	return t
}

// Peek implements Scheduler.
func (s *legacyScheduler) Peek(c *CPU) *Task {
	i := s.bestIndex(c)
	if i < 0 {
		return nil
	}
	return s.run[i]
}

// PickCost implements Scheduler: the goodness loop is linear in the
// number of runnable tasks.
//
//simlint:region sched pick-legacy
//simlint:allow latbound the 2.4 goodness loop is linear in runqueue length by design; the envelope's shielded path uses the O(1) scheduler's constant pick
func (s *legacyScheduler) PickCost(*CPU) sim.Duration {
	cfg := &s.k.Cfg
	return cfg.scale(cfg.Timing.SchedPickBase) +
		cfg.scale(cfg.Timing.SchedPickPerTask).Scale(float64(len(s.run)))
}

// PlaceWake implements Scheduler.
func (s *legacyScheduler) PlaceWake(t *Task) *CPU { return placeWake(s.k, t) }

// NrRunnable implements Scheduler.
func (s *legacyScheduler) NrRunnable() int { return len(s.run) }
