package kernel

import (
	"fmt"
	"strconv"
	"strings"
)

// CPUMask is a bitmask of logical CPU numbers, the same representation the
// Linux /proc interfaces use (bit n set = CPU n included). The simulator
// supports up to 64 logical CPUs, far beyond the dual-Xeon machines in the
// paper.
type CPUMask uint64

// MaskAll returns a mask with the first n CPUs set.
func MaskAll(n int) CPUMask {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return ^CPUMask(0)
	}
	return (CPUMask(1) << uint(n)) - 1
}

// MaskOf returns a mask with exactly the given CPUs set.
func MaskOf(cpus ...int) CPUMask {
	var m CPUMask
	for _, c := range cpus {
		m |= 1 << uint(c)
	}
	return m
}

// Has reports whether CPU c is in the mask.
func (m CPUMask) Has(c int) bool {
	if c < 0 || c >= 64 {
		return false
	}
	return m&(1<<uint(c)) != 0
}

// With returns m with CPU c added.
func (m CPUMask) With(c int) CPUMask { return m | 1<<uint(c) }

// Without returns m with CPU c removed.
func (m CPUMask) Without(c int) CPUMask { return m &^ (1 << uint(c)) }

// Intersect returns the CPUs in both masks.
func (m CPUMask) Intersect(o CPUMask) CPUMask { return m & o }

// Union returns the CPUs in either mask.
func (m CPUMask) Union(o CPUMask) CPUMask { return m | o }

// Diff returns the CPUs in m but not in o.
func (m CPUMask) Diff(o CPUMask) CPUMask { return m &^ o }

// Empty reports whether no CPU is set.
func (m CPUMask) Empty() bool { return m == 0 }

// SubsetOf reports whether every CPU in m is also in o.
func (m CPUMask) SubsetOf(o CPUMask) bool { return m&^o == 0 }

// Count returns the number of CPUs set.
func (m CPUMask) Count() int {
	n := 0
	for v := uint64(m); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// First returns the lowest CPU set, or -1 when empty.
func (m CPUMask) First() int {
	if m == 0 {
		return -1
	}
	for i := 0; i < 64; i++ {
		if m.Has(i) {
			return i
		}
	}
	return -1
}

// CPUs returns the set CPUs in ascending order.
func (m CPUMask) CPUs() []int {
	out := make([]int, 0, m.Count())
	for i := 0; i < 64; i++ {
		if m.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the mask the way /proc/irq/*/smp_affinity prints it:
// lower-case hex with no leading zeros (zero prints as "0").
func (m CPUMask) String() string {
	return strconv.FormatUint(uint64(m), 16)
}

// ParseMask parses the hex representation accepted by the /proc affinity
// files, tolerating a 0x prefix, surrounding whitespace and a trailing
// newline (echo adds one).
func ParseMask(s string) (CPUMask, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(strings.ToLower(s), "0x")
	if s == "" {
		return 0, fmt.Errorf("kernel: empty CPU mask")
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("kernel: invalid CPU mask %q", s)
	}
	return CPUMask(v), nil
}

// EffectiveAffinity applies the shielded-CPU affinity semantics from §3 of
// the paper: CPUs that are shielded are removed from the affinity of a
// process or interrupt, UNLESS the affinity contains only shielded CPUs —
// the entity has opted in, so it keeps its mask. online restricts the
// result to CPUs that exist.
//
// The result can be empty only if affinity∩online is empty, which callers
// must treat as a configuration error.
func EffectiveAffinity(affinity, shielded, online CPUMask) CPUMask {
	a := affinity & online
	if a == 0 {
		return 0
	}
	if a.SubsetOf(shielded) {
		return a // opted in: runs only on shielded CPUs
	}
	if eff := a.Diff(shielded); eff != 0 {
		return eff
	}
	return a
}
