package kernel

import (
	"fmt"
	"strings"
)

// registerProcFiles mounts the kernel's control files in the /proc tree:
// the standard /proc/irq/<n>/smp_affinity files and, on kernels with
// shield support, the paper's /proc/shield directory.
func (k *Kernel) registerProcFiles() {
	k.FS.MustRegister("/proc/version", func() string {
		return fmt.Sprintf("Linux version 2.4.18 (%s) SMP\n", k.Cfg.Name)
	}, nil)

	k.FS.MustRegister("/proc/cpuinfo", func() string {
		var b strings.Builder
		for _, c := range k.cpus {
			fmt.Fprintf(&b, "processor\t: %d\nphysical id\t: %d\ncpu MHz\t\t: %.0f\n\n",
				c.ID, c.Phys, k.Cfg.CPUFreqGHz*1000)
		}
		return b.String()
	}, nil)

	k.FS.MustRegister("/proc/stat", k.ProcStat, nil)
	k.FS.MustRegister("/proc/loadavg", func() string {
		one, five, fifteen := k.LoadAvg()
		return fmt.Sprintf("%.2f %.2f %.2f %d/%d\n",
			one, five, fifteen, k.activeTasks(), len(k.tasks))
	}, nil)
	k.FS.MustRegister("/proc/tasks", k.ProcTasks, nil)

	k.FS.MustRegister("/proc/interrupts", func() string {
		var b strings.Builder
		b.WriteString("     ")
		for i := range k.cpus {
			fmt.Fprintf(&b, "%12s", fmt.Sprintf("CPU%d", i))
		}
		b.WriteString("\n")
		for _, l := range k.irqs {
			fmt.Fprintf(&b, "%3d: ", l.Num)
			for i := range k.cpus {
				var n uint64
				if i < len(l.PerCPU) {
					n = l.PerCPU[i]
				}
				fmt.Fprintf(&b, "%12d", n)
			}
			fmt.Fprintf(&b, "  %s  (affinity %s, effective %s)\n",
				l.Name, l.Affinity(), l.EffectiveAffinity())
		}
		return b.String()
	}, nil)

	if !k.Cfg.ShieldSupport {
		return
	}
	type shieldFile struct {
		name string
		get  func() CPUMask
		set  func(CPUMask) error
	}
	files := []shieldFile{
		{"procs", func() CPUMask { return k.shieldProcs }, k.SetShieldProcs},
		{"irqs", func() CPUMask { return k.shieldIRQs }, k.SetShieldIRQs},
		{"ltmr", func() CPUMask { return k.shieldLTimer }, k.SetShieldLTimer},
		{"all", func() CPUMask {
			// "all" reads back the intersection: CPUs shielded in every
			// dimension.
			return k.shieldProcs & k.shieldIRQs & k.shieldLTimer
		}, k.SetShieldAll},
	}
	for _, f := range files {
		f := f
		k.FS.MustRegister("/proc/shield/"+f.name,
			func() string { return f.get().String() + "\n" },
			func(data string) error {
				m, err := ParseMask(data)
				if err != nil {
					return err
				}
				return f.set(m)
			})
	}
}

// registerIRQProcFile mounts /proc/irq/<n>/smp_affinity for a new line.
func (k *Kernel) registerIRQProcFile(l *IRQLine) {
	path := fmt.Sprintf("/proc/irq/%d/smp_affinity", l.Num)
	k.FS.MustRegister(path,
		func() string { return l.Affinity().String() + "\n" },
		func(data string) error {
			m, err := ParseMask(data)
			if err != nil {
				return err
			}
			return k.SetIRQAffinity(l, m)
		})
}
