package kernel

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// CheckInvariants walks the whole machine state and returns an error
// describing the first violated invariant, or nil. Tests call it
// periodically during failure-injection runs; it is also handy from a
// debugger. It is not called on hot paths.
func (k *Kernel) CheckInvariants() error {
	for _, c := range k.cpus {
		if err := c.checkInvariants(); err != nil {
			return err
		}
	}
	for _, t := range k.tasks {
		if err := k.checkTaskInvariants(t); err != nil {
			return err
		}
	}
	if err := k.checkLockInvariants(k.BKL); err != nil {
		return err
	}
	for _, l := range k.namedLocks {
		if err := k.checkLockInvariants(l); err != nil {
			return err
		}
	}
	return nil
}

func (c *CPU) checkInvariants() error {
	for i, f := range c.stack {
		isTop := i == len(c.stack)-1
		if !isTop && f.done.Valid() {
			return fmt.Errorf("cpu%d: buried frame %d (%s) still armed", c.ID, i, f.kind)
		}
		if f.kind == frameSpin && f.done.Valid() {
			return fmt.Errorf("cpu%d: spin frame armed", c.ID)
		}
		if f.workLeft < 0 {
			return fmt.Errorf("cpu%d: frame %d (%s) has negative work %f", c.ID, i, f.kind, f.workLeft)
		}
		if f.kind == frameTask && f.task == nil {
			return fmt.Errorf("cpu%d: task frame without task", c.ID)
		}
	}
	if c.cur != nil {
		if c.cur.state != TaskRunning {
			return fmt.Errorf("cpu%d: cur %v in state %v", c.ID, c.cur, c.cur.state)
		}
		if c.cur.cpu != c {
			return fmt.Errorf("cpu%d: cur %v thinks it is on cpu%d", c.ID, c.cur, c.cur.CPU())
		}
	}
	if c.isrDepth() > MaxISRNest {
		return fmt.Errorf("cpu%d: ISR nest depth %d > %d", c.ID, c.isrDepth(), MaxISRNest)
	}
	return nil
}

func (k *Kernel) checkTaskInvariants(t *Task) error {
	switch t.state {
	case TaskRunning:
		if t.cpu == nil || t.cpu.cur != t {
			return fmt.Errorf("task %v claims running but cpu disagrees", t)
		}
	case TaskBlocked:
		// A blocked task must not be current anywhere.
		for _, c := range k.cpus {
			if c.cur == t {
				return fmt.Errorf("blocked task %v is current on cpu%d", t, c.ID)
			}
		}
	case TaskExited:
		if t.saved != nil || t.call != nil {
			return fmt.Errorf("exited task %v still has execution state", t)
		}
	}
	if t.waitOn != nil && t.state != TaskBlocked {
		return fmt.Errorf("task %v on a wait queue in state %v", t, t.state)
	}
	return nil
}

func (k *Kernel) checkLockInvariants(l *SpinLock) error {
	if l.holder == nil && l.heldOnce && len(l.waiters) > 0 {
		// Free lock with waiters is legal only if every waiter is
		// buried (preempted spinner); an actively spinning waiter
		// would have taken the handover.
		for _, w := range l.waiters {
			if w.active != nil && w.active() {
				return fmt.Errorf("lock %s free with an actively spinning waiter on cpu%d",
					l.Name, w.cpu.ID)
			}
		}
	}
	seen := map[*CPU]bool{}
	for _, w := range l.waiters {
		if seen[w.cpu] {
			return fmt.Errorf("lock %s has duplicate waiter cpu%d", l.Name, w.cpu.ID)
		}
		seen[w.cpu] = true
		if w.cpu == l.holder {
			return fmt.Errorf("lock %s holder cpu%d is also waiting (self-deadlock)", l.Name, w.cpu.ID)
		}
	}
	return nil
}

// SampleInvariants arms a self-rescheduling event that runs
// CheckInvariants every period and hands the first violation to fail.
// When fail is nil a violation panics. The sampler is observationally
// neutral: it reads machine state, draws no randomness, and only
// consumes event sequence numbers — which shifts later events' numbers
// uniformly and so preserves their relative FIFO order. It keeps
// re-arming forever; experiments bound it with Engine.Run(until).
func (k *Kernel) SampleInvariants(period sim.Duration, fail func(error)) {
	if period <= 0 {
		panic("kernel: SampleInvariants needs a positive period")
	}
	if fail == nil {
		// The default (panic) sampler captures nothing, so it is tagged
		// with its period and survives snapshots.
		k.Eng.AfterTagged(period, evInvSample.Tag(uint64(period), 0, 0), func() { k.invSample(period) })
		return
	}
	var sample func()
	sample = func() {
		if err := k.CheckInvariants(); err != nil {
			fail(err)
			return
		}
		k.Eng.After(period, sample)
	}
	k.Eng.After(period, sample)
}

// invSample is the default invariant sampler's event body: check, panic
// on violation, re-arm.
func (k *Kernel) invSample(period sim.Duration) {
	if err := k.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("kernel: invariant violated at %v: %v", k.Now(), err))
	}
	k.Eng.AfterTagged(period, evInvSample.Tag(uint64(period), 0, 0), func() { k.invSample(period) })
}

// ProcTasks renders a ps-style listing for /proc/tasks.
func (k *Kernel) ProcTasks() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-16s %-11s %-4s %-8s %-9s %-4s %-8s %-8s %-12s\n",
		"PID", "NAME", "POLICY", "PRIO", "STATE", "AFFINITY", "CPU", "SWITCHES", "MIGRATED", "CPUTIME")
	for _, t := range k.tasks {
		fmt.Fprintf(&b, "%-5d %-16s %-11s %-4d %-8s %-9s %-4d %-8d %-8d %-12v\n",
			t.PID, t.Name, t.Policy, t.RTPrio, t.State(), t.Affinity(), t.CPU(),
			t.Switches, t.Migrated, t.RunTime)
	}
	return b.String()
}
