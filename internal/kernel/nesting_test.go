package kernel

import (
	"testing"

	"repro/internal/sim"
)

func TestFastHandlerNestedOverSlow(t *testing.T) {
	// A fast (SA_INTERRUPT) line arriving while a slow handler runs must
	// be serviced immediately (nested), not pended until the slow
	// handler completes.
	cfg := testConfig(1)
	cfg.Timing.BusContention = 0
	k := New(cfg, 42)
	var slowStart, fastAt, slowEnd sim.Time = -1, -1, -1
	slow := k.RegisterIRQ("disk", 0, constWork(500*sim.Microsecond), func(c *CPU) {
		slowEnd = k.Now()
	})
	fast := k.RegisterIRQ("rtc", 0, constWork(2*sim.Microsecond), func(c *CPU) {
		fastAt = k.Now()
	})
	fast.Fast = true
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() {
		slowStart = k.Now()
		k.Raise(slow)
	})
	k.Eng.Schedule(sim.Time(sim.Millisecond+100*sim.Microsecond), func() { k.Raise(fast) })
	k.Eng.Run(sim.Time(10 * sim.Millisecond))

	if fastAt < 0 || slowEnd < 0 {
		t.Fatal("handlers did not run")
	}
	if fastAt > slowEnd {
		t.Fatalf("fast handler at %v waited for slow handler end %v (no nesting)", fastAt, slowEnd)
	}
	if fastAt < slowStart {
		t.Fatal("ordering broken")
	}
	// The fast handler nests promptly after its arrival at +100µs.
	if fastAt > sim.Time(sim.Millisecond+120*sim.Microsecond) {
		t.Fatalf("fast handler delayed to %v, want ~1.1ms", fastAt)
	}
}

func TestSlowHandlerPendsUnderFast(t *testing.T) {
	// The reverse: anything arriving during a fast handler pends.
	cfg := testConfig(1)
	k := New(cfg, 42)
	var slowAt, fastEnd sim.Time = -1, -1
	fast := k.RegisterIRQ("rtc", 0, constWork(300*sim.Microsecond), func(c *CPU) {
		fastEnd = k.Now()
	})
	fast.Fast = true
	slow := k.RegisterIRQ("disk", 0, constWork(5*sim.Microsecond), func(c *CPU) {
		slowAt = k.Now()
	})
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() { k.Raise(fast) })
	k.Eng.Schedule(sim.Time(sim.Millisecond+50*sim.Microsecond), func() { k.Raise(slow) })
	k.Eng.Run(sim.Time(10 * sim.Millisecond))
	if slowAt < fastEnd {
		t.Fatalf("slow handler at %v ran inside fast handler (ended %v)", slowAt, fastEnd)
	}
}

func TestSameLineNeverNests(t *testing.T) {
	// A second occurrence of the same slow line during its own handler
	// must pend (the line is masked), and still be handled afterwards.
	cfg := testConfig(1)
	k := New(cfg, 42)
	var times []sim.Time
	line := k.RegisterIRQ("dev", 0, constWork(400*sim.Microsecond), func(c *CPU) {
		times = append(times, k.Now())
	})
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() { k.Raise(line) })
	k.Eng.Schedule(sim.Time(sim.Millisecond+100*sim.Microsecond), func() { k.Raise(line) })
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	if len(times) != 2 {
		t.Fatalf("handled %d, want 2", len(times))
	}
	gap := times[1].Sub(times[0])
	if gap < 350*sim.Microsecond {
		t.Fatalf("second occurrence ran %v after the first — nested on its own line", gap)
	}
}

func TestISRNestingDepthBounded(t *testing.T) {
	// A cascade of distinct slow lines cannot nest beyond MaxISRNest.
	cfg := testConfig(1)
	k := New(cfg, 42)
	depths := []int{}
	var lines []*IRQLine
	for i := 0; i < 6; i++ {
		l := k.RegisterIRQ("slow", 0, constWork(300*sim.Microsecond), func(c *CPU) {
			depths = append(depths, c.isrDepth())
		})
		lines = append(lines, l)
	}
	k.Start()
	for i, l := range lines {
		l := l
		at := sim.Time(sim.Millisecond) + sim.Time(i)*sim.Time(30*sim.Microsecond)
		k.Eng.Schedule(at, func() { k.Raise(l) })
	}
	k.Eng.Run(sim.Time(50 * sim.Millisecond))
	if len(depths) != 6 {
		t.Fatalf("handled %d of 6", len(depths))
	}
	// depths are recorded at handler END (after pop of own frame the
	// onDone runs post-pop, so depth excludes self); the max live depth
	// is therefore depths+1 ≤ MaxISRNest.
	for _, d := range depths {
		if d+1 > MaxISRNest {
			t.Fatalf("nest depth %d exceeded cap %d", d+1, MaxISRNest)
		}
	}
}
