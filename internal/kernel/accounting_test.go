package kernel

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestAccountingBalances(t *testing.T) {
	// Run a mixed workload and verify every class is populated and the
	// busy total is close to wall time on a saturated CPU.
	cfg := testConfig(1)
	cfg.Timing.BusContention = 0
	k := New(cfg, 42)
	line := k.RegisterIRQ("dev", 0, constWork(10*sim.Microsecond), func(c *CPU) {
		c.RaiseSoftirq(SoftirqNetRx, 30*sim.Microsecond)
	})
	k.NewTask("hog", SchedOther, 0, 0, BehaviorFunc(func(tk *Task) Action {
		if tk.RNG().Bool(0.5) {
			return Compute(300 * sim.Microsecond)
		}
		return Syscall(&SyscallCall{
			Name:     "sys",
			Segments: []Segment{{Kind: SegWork, D: 200 * sim.Microsecond}},
		})
	}))
	k.Start()
	var pump func()
	pump = func() { k.Raise(line); k.Eng.After(sim.Millisecond, pump) }
	k.Eng.After(0, pump)

	const span = 500 * sim.Millisecond
	k.Eng.Run(sim.Time(span))
	tm := k.CPU(0).Times()
	if tm.User == 0 || tm.System == 0 || tm.IRQ == 0 || tm.Softirq == 0 {
		t.Fatalf("classes missing: %+v", tm)
	}
	// A single always-runnable hog: the CPU is busy nearly all the time.
	if tm.Busy() < span.Scale(0.97) || tm.Busy() > span {
		t.Fatalf("busy = %v of %v wall", tm.Busy(), span)
	}
}

func TestAccountingSpinTime(t *testing.T) {
	cfg := testConfig(2)
	cfg.CritSectionCap = 0
	cfg.Timing.BusContention = 0
	k := New(cfg, 42)
	l := k.NamedLock("dcache")
	k.NewTask("holder", SchedFIFO, 50, MaskOf(0), &onceBehavior{actions: []Action{
		Syscall(lockedCall("hold", l, 10*sim.Millisecond, nil)),
	}})
	k.NewTask("spinner", SchedFIFO, 50, MaskOf(1), &onceBehavior{actions: []Action{
		Sleep(sim.Millisecond),
		Syscall(lockedCall("want", l, 10*sim.Microsecond, nil)),
	}})
	k.Start()
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	spin := k.CPU(1).Times().Spin
	if spin < 8*sim.Millisecond || spin > 11*sim.Millisecond {
		t.Fatalf("spin time = %v, want ~9ms", spin)
	}
}

func TestSampledAccountingTracksGroundTruth(t *testing.T) {
	// With the tick running, the sampled user time converges on the
	// ground truth for a pure CPU hog.
	cfg := testConfig(1)
	cfg.Timing.BusContention = 0
	k := New(cfg, 42)
	k.NewTask("hog", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
		return Compute(10 * sim.Millisecond)
	}))
	k.Start()
	k.Eng.Run(sim.Time(2 * sim.Second))
	truth := k.CPU(0).Times().User
	sampled := k.CPU(0).SampledTimes().User
	ratio := float64(sampled) / float64(truth)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("sampled/truth = %.3f (sampled %v, truth %v)", ratio, sampled, truth)
	}
}

func TestLTimerShieldLosesSampledAccounting(t *testing.T) {
	// The paper's §3 trade-off: disable the local timer on a shielded
	// CPU and the tick-sampled accounting stops, while ground truth
	// keeps counting.
	cfg := testConfig(2)
	k := New(cfg, 42)
	k.NewTask("rt", SchedFIFO, 90, MaskOf(1), BehaviorFunc(func(*Task) Action {
		return Compute(10 * sim.Millisecond)
	}))
	k.Start()
	k.Eng.Run(sim.Time(500 * sim.Millisecond))
	preSampled := k.CPU(1).SampledTimes().User
	preTruth := k.CPU(1).Times().User
	if preSampled == 0 {
		t.Fatal("sampling not working before shielding")
	}
	if err := k.SetShieldLTimer(MaskOf(1)); err != nil {
		t.Fatal(err)
	}
	k.Eng.Run(k.Now() + sim.Time(500*sim.Millisecond))
	postSampled := k.CPU(1).SampledTimes().User
	postTruth := k.CPU(1).Times().User
	if postSampled != preSampled {
		t.Fatalf("sampled accounting still moving under ltmr shielding: %v -> %v", preSampled, postSampled)
	}
	if postTruth < preTruth+450*sim.Millisecond {
		t.Fatalf("ground truth stopped: %v -> %v", preTruth, postTruth)
	}
}

func TestProcStatFile(t *testing.T) {
	k := New(testConfig(2), 42)
	k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
		return Compute(sim.Millisecond)
	}))
	k.Start()
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	out, err := k.FS.Read("/proc/stat")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cpu0", "cpu1", "ground truth", "tick-sampled"} {
		if !strings.Contains(out, want) {
			t.Fatalf("/proc/stat missing %q:\n%s", want, out)
		}
	}
}

func TestCPUTimesAdd(t *testing.T) {
	a := CPUTimes{User: 1, System: 2, IRQ: 3, Softirq: 4, Spin: 5}
	b := CPUTimes{User: 10, System: 20, IRQ: 30, Softirq: 40, Spin: 50}
	a.Add(b)
	if a.User != 11 || a.Spin != 55 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Busy() != 11+22+33+44+55 {
		t.Fatalf("Busy = %v", a.Busy())
	}
}
