package kernel

import (
	"fmt"
	"sort"
	"sync" //simlint:allow nondeterminism guards only the process-global rebuilder registry below; nothing on a simulation path locks

	"repro/internal/sim"
	"repro/internal/snapshot"
)

// This file is the kernel layer of the checkpoint/restore stack. A
// snapshot is written as a sequence of sections after the engine's own
// "sim.engine" section: machine scalars (wheel, IRQ lines), tasks
// (including in-flight syscalls, saved frames and behavior state), CPU
// execution stacks, locks, wait queues, scheduler queues, the optional
// trace buffer, and one section per registered component.
//
// The restore protocol is reconstruct-then-overwrite: the restoring
// process builds an identical machine from (config, seed) — same
// construction order, hence the same RNG fork topology, PIDs, wait
// queue ids and component ids — calls Start, and then Restore drains
// the boot events and overwrites every piece of mutable state from the
// image. Event callbacks cannot be serialised; each pending event
// carries a registered kind tag instead, and restore rebuilds the
// callback from the tag through the kind's rebuilder.

// Kernel-owned event kinds. The names (not the numeric ids) are what a
// snapshot stores; see sim.RegisterEventKind.
var (
	evFrameDone    = sim.RegisterEventKind("k.frame-done")
	evIdleDispatch = sim.RegisterEventKind("k.idle-dispatch")
	evCPUTick      = sim.RegisterEventKind("k.cpu-tick")
	evGlobalTick   = sim.RegisterEventKind("k.global-tick")
	evBusResample  = sim.RegisterEventKind("k.bus-resample")
	evSleepWake    = sim.RegisterEventKind("k.sleep-wake")
	evInvSample    = sim.RegisterEventKind("k.inv-sample")
)

// SnapComponent is a device or workload with serialisable runtime
// state. Components register with Kernel.RegisterComponent during
// construction; because construction is deterministic, the registration
// order — and so each component's numeric id, used in event tags —
// agrees between the snapshotting and the restoring process.
type SnapComponent interface {
	// SnapName is the component's unique section name ("dev.disk/sda").
	SnapName() string
	// Snapshot writes the component's section (Begin through End). It
	// may refuse — without writing — when the component holds state
	// that cannot cross the boundary.
	Snapshot(w *snapshot.Writer) error
	// Restore reads the component's section back.
	Restore(r *snapshot.Reader, rc *RestoreContext) error
}

// RestoreContext carries cross-section state through a restore.
type RestoreContext struct {
	K *Kernel
	// armed[cpu] is the frame whose completion event ("k.frame-done")
	// is pending for that CPU — always the top of its stack.
	armed []*frame
	// spin[cpu] is the CPU's spin frame, if one is stacked, for
	// rebuilding lock waiter callbacks.
	spin []*frame
	// hasTrace records the machine-section flag: whether the image
	// carries a trace buffer section.
	hasTrace bool
}

// EventRebuild reconstructs an event callback from its tag arguments.
type EventRebuild func(rc *RestoreContext, a0, a1, a2 uint64) (func(), error)

var (
	rebuildMu sync.Mutex
	//simlint:allow globalstate process-wide rebuilder registry, mutex-guarded; populated in package inits, read-only during restore, duplicate names panic
	rebuilds = map[string]EventRebuild{}
)

// RegisterEventRebuild installs the rebuilder for a registered event
// kind. Device and workload packages call this from init; registering
// the same kind twice panics (two packages claiming one name is a bug).
func RegisterEventRebuild(kind string, f EventRebuild) {
	if kind == "" || f == nil {
		panic("kernel: RegisterEventRebuild needs a kind name and a function")
	}
	rebuildMu.Lock()
	defer rebuildMu.Unlock()
	if _, dup := rebuilds[kind]; dup {
		panic("kernel: duplicate event rebuilder for kind " + kind)
	}
	rebuilds[kind] = f
}

func lookupRebuild(kind string) EventRebuild {
	rebuildMu.Lock()
	defer rebuildMu.Unlock()
	return rebuilds[kind]
}

// --- snapshot ---

// SnapshotTo serialises the whole machine into w: engine, machine
// scalars, tasks, CPU stacks, locks, wait queues, scheduler, trace and
// components. It fails loudly when any piece of state cannot cross the
// boundary (a closure-state behavior, an untagged event or timer, an
// unregistered wait queue or lock): machine state is checked before the
// first byte is written, and a component refusal aborts the stream
// (Snapshot discards the partial buffer).
func (k *Kernel) SnapshotTo(w *snapshot.Writer) error {
	if err := k.checkSnapshottable(); err != nil {
		return err
	}
	if err := k.Eng.SnapshotTo(w); err != nil {
		return err
	}
	k.writeMachine(w)
	k.writeTasks(w)
	k.writeCPUs(w)
	k.writeLocks(w)
	k.writeWaitqs(w)
	k.writeSched(w)
	if k.Trace != nil {
		k.Trace.Snapshot(w)
	}
	seen := map[string]bool{}
	for _, comp := range k.comps {
		name := comp.SnapName()
		if seen[name] {
			return fmt.Errorf("kernel: snapshot: duplicate component section %q", name)
		}
		seen[name] = true
		if err := comp.Snapshot(w); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot serialises the machine and returns the image bytes.
func (k *Kernel) Snapshot() ([]byte, error) {
	w := snapshot.NewWriter()
	if err := k.SnapshotTo(w); err != nil {
		return nil, err
	}
	return w.Finish(), nil
}

// checkSnapshottable walks the machine and reports the first piece of
// state that cannot be serialised.
func (k *Kernel) checkSnapshottable() error {
	if !k.started {
		return fmt.Errorf("kernel: snapshot of a machine that was never started")
	}
	if len(k.wheel.pendingRun) > 0 {
		return fmt.Errorf("kernel: snapshot with %d timer-wheel callbacks mid-run", len(k.wheel.pendingRun))
	}
	for _, t := range k.tasks {
		if t.state != TaskExited {
			if _, ok := t.behavior.(SnapBehavior); !ok {
				return fmt.Errorf("kernel: snapshot: task %v behavior %T keeps state in closures and does not implement SnapBehavior", t, t.behavior)
			}
		}
		if t.waitOn != nil && t.waitOn.id == 0 {
			return fmt.Errorf("kernel: snapshot: task %v blocked on unregistered wait queue %q (use Kernel.NewWaitQueue)", t, t.waitOn.Name)
		}
		if t.call != nil {
			if t.call.onComplete != nil {
				return fmt.Errorf("kernel: snapshot: task %v syscall %q has an OnComplete closure (use ActionCompleter)", t, t.call.def.Name)
			}
			if err := k.checkSegs(t, t.call.segs); err != nil {
				return err
			}
		}
		if t.saved != nil {
			if err := k.checkFrame(nil, t.saved, false); err != nil {
				return fmt.Errorf("task %v saved frame: %w", t, err)
			}
		}
	}
	for _, c := range k.cpus {
		for i, f := range c.stack {
			if err := k.checkFrame(c, f, i == len(c.stack)-1); err != nil {
				return fmt.Errorf("cpu%d frame %d: %w", c.ID, i, err)
			}
		}
	}
	var timerErr error
	k.wheel.each(func(t *KTimer) {
		if timerErr == nil && t.active && t.tag.Kind == 0 {
			timerErr = fmt.Errorf("kernel: snapshot: untagged wheel timer expiring at jiffy %d (use AddTimerTagged)", t.expires)
		}
	})
	return timerErr
}

func (k *Kernel) checkSegs(t *Task, segs []Segment) error {
	for i := range segs {
		seg := &segs[i]
		if seg.OnDone != nil && seg.DoneTag.Kind == 0 {
			return fmt.Errorf("kernel: snapshot: task %v segment %d of %q has OnDone without a DoneTag", t, i, t.call.def.Name)
		}
		if seg.Wait != nil && seg.Wait.id == 0 {
			return fmt.Errorf("kernel: snapshot: task %v segment %d blocks on unregistered wait queue %q", t, i, seg.Wait.Name)
		}
		if seg.Lock != nil && k.lockNamed(seg.Lock.Name) != seg.Lock {
			return fmt.Errorf("kernel: snapshot: task %v segment %d uses lock %q not owned by the kernel (use Kernel.NamedLock)", t, i, seg.Lock.Name)
		}
	}
	return nil
}

// checkFrame verifies one frame is serialisable. c is the owning CPU
// for stack frames, nil for a task's saved frame.
func (k *Kernel) checkFrame(c *CPU, f *frame, isTop bool) error {
	if f.complete != nil {
		return fmt.Errorf("kernel: snapshot: compute frame for %v carries an OnComplete closure (use ActionCompleter)", f.task)
	}
	if f.done.Valid() && !isTop {
		return fmt.Errorf("kernel: snapshot: buried %s frame is armed", f.kind)
	}
	switch f.kind {
	case frameTask:
		if f.seg != nil {
			if f.task.call == nil {
				return fmt.Errorf("kernel: snapshot: segment frame for %v without an in-flight syscall", f.task)
			}
			if segIndex(f.task.call, f.seg) < 0 {
				return fmt.Errorf("kernel: snapshot: segment frame for %v points outside its syscall", f.task)
			}
		}
	case frameSwitch:
		if f.task == nil {
			return fmt.Errorf("kernel: snapshot: switch frame without a target task")
		}
	case frameSpin:
		if f.spinWhy != spinForBKL && f.spinWhy != spinForSeg {
			return fmt.Errorf("kernel: snapshot: spin frame on %q without a rebuildable continuation", f.spin.Name)
		}
		if k.lockNamed(f.spin.Name) != f.spin {
			return fmt.Errorf("kernel: snapshot: spin frame waits on lock %q not owned by the kernel", f.spin.Name)
		}
	case frameISR:
		if f.irq == nil {
			return fmt.Errorf("kernel: snapshot: ISR frame without a line")
		}
		if c == nil {
			return fmt.Errorf("kernel: snapshot: ISR frame saved off-CPU")
		}
		if f.irq != c.localTimer && k.irqIndex(f.irq) < 0 {
			return fmt.Errorf("kernel: snapshot: ISR frame for unregistered line %q", f.irq.Name)
		}
	}
	for _, l := range f.locks {
		if k.lockNamed(l.Name) != l {
			return fmt.Errorf("kernel: snapshot: frame holds lock %q not owned by the kernel", l.Name)
		}
	}
	return nil
}

// lockNamed is the non-creating lock lookup: "BKL" or a named lock.
func (k *Kernel) lockNamed(name string) *SpinLock {
	if name == "BKL" {
		return k.BKL
	}
	return k.namedLocks[name]
}

// restoreLock is the creating lookup used on restore: the fresh machine
// may not yet have created locks the snapshotted one made on first use.
func (k *Kernel) restoreLock(name string) *SpinLock {
	if name == "BKL" {
		return k.BKL
	}
	return k.NamedLock(name)
}

func (k *Kernel) irqIndex(l *IRQLine) int {
	for i, x := range k.irqs {
		if x == l {
			return i
		}
	}
	return -1
}

func segIndex(call *syscallCall, seg *Segment) int {
	for i := range call.segs {
		if &call.segs[i] == seg {
			return i
		}
	}
	return -1
}

// each visits every timer in every wheel bucket.
func (w *timerWheel) each(fn func(*KTimer)) {
	for i := range w.tv1 {
		for _, t := range w.tv1[i] {
			fn(t)
		}
	}
	for l := range w.tv {
		for i := range w.tv[l] {
			for _, t := range w.tv[l][i] {
				fn(t)
			}
		}
	}
}

// --- section writers ---

const (
	secMachine = "kernel.machine"
	secTasks   = "kernel.tasks"
	secCPUs    = "kernel.cpus"
	secLocks   = "kernel.locks"
	secWaitqs  = "kernel.waitqs"
	secSched   = "kernel.sched"
)

func (k *Kernel) writeMachine(w *snapshot.Writer) {
	w.Begin(secMachine)
	w.Bool(1, k.Trace != nil)
	w.I64(2, int64(k.next))
	w.U64(3, k.rng.State())
	w.U64(4, uint64(k.shieldProcs))
	w.U64(5, uint64(k.shieldIRQs))
	w.U64(6, uint64(k.shieldLTimer))
	w.F64(7, k.load.one)
	w.F64(8, k.load.five)
	w.F64(9, k.load.fifteen)

	// Timer wheel: explicit bucket coordinates, so a restore lands every
	// timer back in the exact bucket it occupied — including timers a
	// cascade has already migrated, mid-lap (the wrap-boundary tests
	// depend on this being positional, not recomputed from expiry).
	w.U64(10, k.wheel.jiffies)
	w.U64(11, k.wheel.Added)
	w.U64(12, k.wheel.Fired)
	type slot struct {
		level, idx int
		t          *KTimer
	}
	var timers []slot
	for i := range k.wheel.tv1 {
		for _, t := range k.wheel.tv1[i] {
			if t.active {
				timers = append(timers, slot{0, i, t})
			}
		}
	}
	for l := range k.wheel.tv {
		for i := range k.wheel.tv[l] {
			for _, t := range k.wheel.tv[l][i] {
				if t.active {
					timers = append(timers, slot{l + 1, i, t})
				}
			}
		}
	}
	w.U64(13, uint64(len(timers)))
	for _, s := range timers {
		w.U64(14, uint64(s.level))
		w.U64(15, uint64(s.idx))
		w.U64(16, s.t.expires)
		w.Str(17, s.t.tag.Kind.String())
		w.U64(18, s.t.tag.A0)
		w.U64(19, s.t.tag.A1)
		w.U64(20, s.t.tag.A2)
	}

	w.U64(21, uint64(len(k.irqs)))
	for _, l := range k.irqs {
		w.U64(22, uint64(l.affinity))
		w.U64(23, l.rng.State())
		w.I64(24, int64(l.rr))
		w.U64(25, l.Raised)
		w.U64(26, l.Handled)
		w.U64(27, uint64(len(l.PerCPU)))
		for _, n := range l.PerCPU {
			w.U64(28, n)
		}
	}
	w.End()
}

func (k *Kernel) writeTasks(w *snapshot.Writer) {
	w.Begin(secTasks)
	w.U64(1, uint64(len(k.tasks)))
	for _, t := range k.tasks {
		w.U64(2, uint64(t.PID))
		w.Str(3, t.Name)
		w.U64(4, uint64(t.state))
		w.I64(5, cpuID(t.cpu))
		w.U64(6, uint64(t.affinity))
		w.Bool(7, t.MemLocked)
		w.I64(8, int64(t.Nice))
		w.U64(9, t.rng.State())
		w.I64(10, int64(t.sliceLeft))
		w.U64(11, t.Switches)
		w.U64(12, t.Migrated)
		w.I64(13, int64(t.RunTime))
		w.I64(14, int64(t.lastQueue))
		w.U64(15, waitID(t.waitOn))
		if sb, ok := t.behavior.(SnapBehavior); ok {
			w.Str(16, sb.BehaviorName())
			words := sb.BehaviorState()
			w.U64(17, uint64(len(words)))
			for _, word := range words {
				w.U64(18, word)
			}
		} else {
			w.Str(16, "")
			w.U64(17, 0)
		}
		w.Bool(19, t.call != nil)
		if t.call != nil {
			writeCall(w, t.call)
		}
		w.Bool(20, t.saved != nil)
		if t.saved != nil {
			k.writeFrame(w, t.saved)
		}
	}
	w.End()
}

// writeCall serialises an in-flight syscall: definition metadata, the
// post-split segment list, and the execution cursor. Tags 1..10 are a
// sub-record namespace (the codec checks sequence, not uniqueness).
func writeCall(w *snapshot.Writer, call *syscallCall) {
	w.Str(1, call.def.Name)
	var flags uint64
	if call.def.TakesBKL {
		flags |= 1
	}
	if call.def.DriverNoBKL {
		flags |= 2
	}
	if call.def.ReacquireBKLOnBlock {
		flags |= 4
	}
	if call.heldBKL {
		flags |= 8
	}
	w.U64(2, flags)
	w.U64(3, uint64(call.idx))
	w.U64(4, uint64(len(call.segs)))
	for i := range call.segs {
		seg := &call.segs[i]
		var bits uint64
		bits = uint64(seg.Kind)
		if seg.IRQsOff {
			bits |= 1 << 8
		}
		if seg.NonPreempt {
			bits |= 1 << 9
		}
		if seg.SchedPoint {
			bits |= 1 << 10
		}
		w.U64(5, bits)
		w.I64(6, int64(seg.D))
		w.Str(7, lockName(seg.Lock))
		w.U64(8, waitID(seg.Wait))
		w.Str(9, seg.DoneTag.Kind.String())
		w.U64(10, seg.DoneTag.A0)
		w.U64(11, seg.DoneTag.A1)
		w.U64(12, seg.DoneTag.A2)
	}
}

func readCall(r *snapshot.Reader, rc *RestoreContext) (*syscallCall, error) {
	k := rc.K
	name := r.Str(1)
	flags := r.U64(2)
	idx := int(r.U64(3))
	n := int(r.U64(4))
	//simlint:allow latbound restore-path reconstruction: segments come from the image, and every one was statically bounded at its original definition site; restore introduces no new lock-hold region
	def := &SyscallCall{
		Name:                name,
		TakesBKL:            flags&1 != 0,
		DriverNoBKL:         flags&2 != 0,
		ReacquireBKLOnBlock: flags&4 != 0,
	}
	call := &syscallCall{def: def, heldBKL: flags&8 != 0, idx: idx, segs: make([]Segment, n)}
	for i := 0; i < n; i++ {
		bits := r.U64(5)
		seg := Segment{
			Kind:       SegmentKind(bits & 0xff),
			IRQsOff:    bits&(1<<8) != 0,
			NonPreempt: bits&(1<<9) != 0,
			SchedPoint: bits&(1<<10) != 0,
			D:          sim.Duration(r.I64(6)),
		}
		if ln := r.Str(7); ln != "" {
			seg.Lock = k.restoreLock(ln)
		}
		if wid := r.U64(8); wid != 0 {
			seg.Wait = k.WaitQueueByID(wid)
			if seg.Wait == nil {
				return nil, fmt.Errorf("kernel: restore: syscall %q segment %d references unknown wait queue %d", name, i, wid)
			}
		}
		doneKind := r.Str(9)
		a0, a1, a2 := r.U64(10), r.U64(11), r.U64(12)
		if doneKind != "" {
			seg.DoneTag = sim.RegisterEventKind(doneKind).Tag(a0, a1, a2)
			rb := lookupRebuild(doneKind)
			if rb == nil {
				return nil, fmt.Errorf("kernel: restore: no rebuilder for segment OnDone kind %q", doneKind)
			}
			fn, err := rb(rc, a0, a1, a2)
			if err != nil {
				return nil, err
			}
			seg.OnDone = fn
		}
		call.segs[i] = seg
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	// def.Segments is the pre-split list; the restored call only needs
	// the post-split segs it executes, but keep def.Segments pointing at
	// them so the definition stays self-consistent for inspection.
	def.Segments = call.segs
	return call, nil
}

// writeFrame serialises one execution frame (sub-record tags 1..16).
func (k *Kernel) writeFrame(w *snapshot.Writer, f *frame) {
	w.U64(1, uint64(f.kind))
	pid := int64(-1)
	if f.task != nil {
		pid = int64(f.task.PID)
	}
	w.I64(2, pid)
	segIdx := int64(-1)
	if f.seg != nil {
		segIdx = int64(segIndex(f.task.call, f.seg))
	}
	w.I64(3, segIdx)
	w.F64(4, f.workLeft)
	w.I64(5, int64(f.lastAccrue))
	w.Bool(6, f.done.Valid())
	w.U64(7, uint64(len(f.locks)))
	for _, l := range f.locks {
		w.Str(8, l.Name)
	}
	w.Bool(9, f.irqsOff)
	w.I64(10, int64(f.began))
	irqIdx := int64(-2)
	if f.irq != nil {
		if f.irq.Num == -1 {
			irqIdx = -1 // the owning CPU's local timer
		} else {
			irqIdx = int64(k.irqIndex(f.irq))
		}
	}
	w.I64(11, irqIdx)
	w.Str(12, lockName(f.spin))
	w.Bool(13, f.acquired)
	w.I64(14, int64(f.spinSince))
	w.Bool(15, f.suspended)
	w.U64(16, uint64(f.spinWhy))
}

// readFrame reconstructs one frame. c is the owning CPU for stack
// frames (nil for a task's saved frame, which is always a task frame).
// The onDone continuation is rebuilt from the frame's serialised
// coordinates through the same constructors live frames use.
func (k *Kernel) readFrame(r *snapshot.Reader, c *CPU) (*frame, bool, error) {
	f := &frame{kind: frameKind(r.U64(1))}
	pid := r.I64(2)
	if pid >= 0 {
		f.task = k.byPID[int(pid)]
		if f.task == nil {
			return nil, false, fmt.Errorf("kernel: restore: frame references unknown pid %d", pid)
		}
	}
	segIdx := r.I64(3)
	f.workLeft = r.F64(4)
	f.lastAccrue = sim.Time(r.I64(5))
	armed := r.Bool(6)
	nlocks := int(r.U64(7))
	for i := 0; i < nlocks; i++ {
		f.locks = append(f.locks, k.restoreLock(r.Str(8)))
	}
	f.irqsOff = r.Bool(9)
	f.began = sim.Time(r.I64(10))
	irqIdx := r.I64(11)
	spin := r.Str(12)
	f.acquired = r.Bool(13)
	f.spinSince = sim.Time(r.I64(14))
	f.suspended = r.Bool(15)
	f.spinWhy = uint8(r.U64(16))
	if err := r.Err(); err != nil {
		return nil, false, err
	}
	if segIdx >= 0 {
		if f.task == nil || f.task.call == nil || int(segIdx) >= len(f.task.call.segs) {
			return nil, false, fmt.Errorf("kernel: restore: frame segment index %d has no matching syscall", segIdx)
		}
		f.seg = &f.task.call.segs[segIdx]
	}
	switch {
	case irqIdx == -1:
		if c == nil {
			return nil, false, fmt.Errorf("kernel: restore: local-timer ISR frame without a CPU")
		}
		f.irq = c.localTimer
	case irqIdx >= 0:
		if int(irqIdx) >= len(k.irqs) {
			return nil, false, fmt.Errorf("kernel: restore: frame references unknown irq %d", irqIdx)
		}
		f.irq = k.irqs[irqIdx]
	}
	if spin != "" {
		f.spin = k.restoreLock(spin)
	}

	if c == nil && f.kind != frameTask {
		return nil, false, fmt.Errorf("kernel: restore: saved %s frame off-CPU (only task frames are saved)", f.kind)
	}
	switch f.kind {
	case frameTask:
		if f.seg == nil {
			// computeOnDone resolves the CPU at fire time from f.task, so
			// a nil receiver (saved frame) is fine.
			f.onDone = c.computeOnDone(f)
		} else {
			f.onDone = segDoneFn(f.task, f.task.call, f.seg, f)
		}
	case frameISR:
		f.onDone = c.isrOnDone(f)
	case frameSoftirq:
		f.onDone = c.softirqOnDone(f)
	case frameSwitch:
		f.onDone = c.switchOnDone(f)
	case frameSpin:
		call := f.task.call
		if call == nil {
			return nil, false, fmt.Errorf("kernel: restore: spin frame for %v without an in-flight syscall", f.task)
		}
		switch f.spinWhy {
		case spinForBKL:
			f.onDone = c.bklAcquiredFn(f.task, call)
		case spinForSeg:
			if call.idx >= len(call.segs) {
				return nil, false, fmt.Errorf("kernel: restore: spin frame for %v past its segment list", f.task)
			}
			f.onDone = c.segStartFn(f.task, call, &call.segs[call.idx])
		default:
			return nil, false, fmt.Errorf("kernel: restore: spin frame with unknown continuation %d", f.spinWhy)
		}
	}
	return f, armed, nil
}

func (k *Kernel) writeCPUs(w *snapshot.Writer) {
	w.Begin(secCPUs)
	w.U64(17, uint64(len(k.cpus)))
	for _, c := range k.cpus {
		w.I64(18, cpuTaskID(c.cur))
		w.I64(19, cpuTaskID(c.lastRan))
		w.U64(20, uint64(len(c.pendingIRQ)))
		for _, l := range c.pendingIRQ {
			if l.Num == -1 {
				w.I64(21, -1)
			} else {
				w.I64(21, int64(k.irqIndex(l)))
			}
		}
		for _, p := range c.softirqPend {
			w.F64(22, p)
		}
		w.Bool(23, c.needResched)
		w.Bool(24, c.sliceExpired)
		w.Bool(25, c.forceResched)
		w.F64(26, c.daemonBacklog)
		w.U64(27, c.softirqHanded)
		w.F64(28, c.busFactor)
		w.U64(29, c.localTimer.rng.State())
		w.U64(30, c.localTimer.Raised)
		w.U64(31, c.localTimer.Handled)
		writeTimes(w, &c.times)
		writeTimes(w, &c.sampled)
		w.U64(17, c.IRQsHandled)
		w.U64(18, c.SoftirqRuns)
		w.I64(19, int64(c.SoftirqTime))
		w.U64(20, c.Preemptions)
		w.U64(21, c.TicksHandled)
		w.U64(22, uint64(len(c.stack)))
		for _, f := range c.stack {
			k.writeFrame(w, f)
		}
	}
	w.End()
}

func writeTimes(w *snapshot.Writer, t *CPUTimes) {
	w.I64(12, int64(t.User))
	w.I64(13, int64(t.System))
	w.I64(14, int64(t.IRQ))
	w.I64(15, int64(t.Softirq))
	w.I64(16, int64(t.Spin))
}

func readTimes(r *snapshot.Reader) CPUTimes {
	return CPUTimes{
		User:    sim.Duration(r.I64(12)),
		System:  sim.Duration(r.I64(13)),
		IRQ:     sim.Duration(r.I64(14)),
		Softirq: sim.Duration(r.I64(15)),
		Spin:    sim.Duration(r.I64(16)),
	}
}

func (k *Kernel) writeLocks(w *snapshot.Writer) {
	w.Begin(secLocks)
	names := make([]string, 0, len(k.namedLocks))
	for name := range k.namedLocks {
		names = append(names, name)
	}
	sort.Strings(names)
	locks := []*SpinLock{k.BKL}
	for _, name := range names {
		locks = append(locks, k.namedLocks[name])
	}
	w.U64(1, uint64(len(locks)))
	for _, l := range locks {
		w.Str(2, l.Name)
		w.I64(3, cpuID(l.holder))
		w.I64(4, int64(l.heldAt))
		w.Bool(5, l.heldOnce)
		w.U64(6, l.Acquisitions)
		w.U64(7, l.Contentions)
		w.I64(8, int64(l.TotalSpin))
		w.I64(9, int64(l.MaxHold))
		w.U64(10, uint64(len(l.waiters)))
		for _, lw := range l.waiters {
			w.U64(11, uint64(lw.cpu.ID))
			w.I64(12, int64(lw.since))
		}
	}
	w.End()
}

func (k *Kernel) writeWaitqs(w *snapshot.Writer) {
	w.Begin(secWaitqs)
	w.U64(1, uint64(len(k.waitqs)))
	for _, wq := range k.waitqs {
		w.Str(2, wq.Name)
		w.U64(3, uint64(len(wq.waiters)))
		for _, t := range wq.waiters {
			w.U64(4, uint64(t.PID))
		}
	}
	w.End()
}

func (k *Kernel) writeSched(w *snapshot.Writer) {
	w.Begin(secSched)
	switch s := k.sched.(type) {
	case *o1Scheduler:
		w.Str(1, "o1")
		for _, rq := range s.rqs {
			var pids []uint64
			for slot := 0; slot < numSlots; slot++ {
				for _, t := range rq.queues[slot] {
					pids = append(pids, uint64(t.PID))
				}
			}
			w.U64(2, uint64(len(pids)))
			for _, pid := range pids {
				w.U64(3, pid)
			}
		}
	case *legacyScheduler:
		w.Str(1, "legacy")
		w.U64(2, uint64(len(s.run)))
		for _, t := range s.run {
			w.U64(3, uint64(t.PID))
			w.I64(4, cpuID(t.cpu))
		}
	default:
		panic(fmt.Sprintf("kernel: snapshot of unknown scheduler %T", k.sched))
	}
	w.End()
}

func cpuID(c *CPU) int64 {
	if c == nil {
		return -1
	}
	return int64(c.ID)
}

func cpuTaskID(t *Task) int64 {
	if t == nil {
		return -1
	}
	return int64(t.PID)
}

func waitID(wq *WaitQueue) uint64 {
	if wq == nil {
		return 0
	}
	return wq.id
}

func lockName(l *SpinLock) string {
	if l == nil {
		return ""
	}
	return l.Name
}

// --- restore ---

// Restore overwrites this freshly constructed, started machine with the
// snapshot image read from r. The machine must have been built from the
// same configuration and seed (construction determinism is what lets
// pointers be rebuilt from ids); Restore validates what it can and
// fails loudly on any mismatch.
func (k *Kernel) Restore(r *snapshot.Reader) error {
	return k.restoreImage(r, nil)
}

// RestoreWarm is Restore with a different tie-break salt installed in
// the legal window between draining the boot events and re-queueing the
// snapshot's pending events. Warm-started sweep replicas use this to
// explore schedule perturbations without replaying boot.
func (k *Kernel) RestoreWarm(r *snapshot.Reader, salt uint64) error {
	return k.restoreImage(r, &salt)
}

func (k *Kernel) restoreImage(r *snapshot.Reader, warmSalt *uint64) error {
	if !k.started {
		return fmt.Errorf("kernel: restore into a machine that was not started")
	}
	evs, err := k.Eng.RestoreState(r)
	if err != nil {
		return err
	}
	if warmSalt != nil {
		k.Eng.PerturbTiebreaks(*warmSalt)
	}
	k.resetForRestore()
	rc := &RestoreContext{
		K:     k,
		armed: make([]*frame, len(k.cpus)),
		spin:  make([]*frame, len(k.cpus)),
	}
	if err := k.readMachine(r, rc); err != nil {
		return err
	}
	if err := k.readTasks(r, rc); err != nil {
		return err
	}
	if err := k.readCPUs(r, rc); err != nil {
		return err
	}
	if err := k.readLocks(r, rc); err != nil {
		return err
	}
	if err := k.readWaitqs(r); err != nil {
		return err
	}
	if err := k.readSched(r); err != nil {
		return err
	}
	if rc.hasTrace {
		if k.Trace == nil {
			return fmt.Errorf("kernel: restore: image has a trace buffer but the machine has none attached")
		}
		if err := k.Trace.Restore(r); err != nil {
			return err
		}
	} else if k.Trace != nil {
		return fmt.Errorf("kernel: restore: machine has a trace buffer but the image has none")
	}
	for _, comp := range k.comps {
		if err := comp.Restore(r, rc); err != nil {
			return err
		}
	}
	for _, rev := range evs {
		fn, attach, err := k.rebuildEvent(rc, rev.Kind, rev.A0, rev.A1, rev.A2)
		if err != nil {
			return err
		}
		ev := k.Eng.RestoreEvent(rev, fn)
		if attach != nil {
			attach(ev)
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	if !r.Exhausted() {
		return fmt.Errorf("kernel: restore: image has trailing sections the machine did not consume")
	}
	if err := k.CheckInvariants(); err != nil {
		return fmt.Errorf("kernel: restore produced an inconsistent machine: %w", err)
	}
	return nil
}

// RestoreImage is a convenience wrapper: open the image bytes and
// restore, plain or warm.
func (k *Kernel) RestoreImage(img []byte) error {
	r, err := snapshot.OpenReader(img)
	if err != nil {
		return err
	}
	return k.Restore(r)
}

// RestoreImageWarm restores image bytes with a warm tie-break salt.
func (k *Kernel) RestoreImageWarm(img []byte, salt uint64) error {
	r, err := snapshot.OpenReader(img)
	if err != nil {
		return err
	}
	return k.RestoreWarm(r, salt)
}

// resetForRestore clears the freshly booted machine's mutable state so
// the image overwrite starts from a blank slate. It must not use the
// accounting paths (pop, account) — those would book phantom time.
func (k *Kernel) resetForRestore() {
	for _, c := range k.cpus {
		c.stack = nil
		c.cur = nil
		c.lastRan = nil
		c.pendingIRQ = nil
		c.softirqPend = [numSoftirq]float64{}
		c.needResched, c.sliceExpired, c.forceResched = false, false, false
		c.daemonBacklog = 0
		c.softirqHanded = 0
		c.busFactor = 1.0
		c.tickEv, c.dispatchEv = sim.Event{}, sim.Event{}
		c.IRQsHandled, c.SoftirqRuns, c.Preemptions, c.TicksHandled = 0, 0, 0, 0
		c.SoftirqTime = 0
		c.times, c.sampled = CPUTimes{}, CPUTimes{}
		c.localTimer.Raised, c.localTimer.Handled = 0, 0
	}
	for _, t := range k.tasks {
		t.saved, t.call, t.waitOn = nil, nil, nil
	}
	for _, wq := range k.waitqs {
		wq.waiters = nil
	}
	reset := func(l *SpinLock) {
		l.holder = nil
		l.waiters = nil
		l.Acquisitions, l.Contentions = 0, 0
		l.TotalSpin, l.MaxHold = 0, 0
		l.heldAt = 0
		l.heldOnce = false
	}
	reset(k.BKL)
	for _, l := range k.namedLocks {
		reset(l)
	}
	switch s := k.sched.(type) {
	case *o1Scheduler:
		for i := range s.rqs {
			s.rqs[i] = &o1Runqueue{}
		}
	case *legacyScheduler:
		s.run = nil
	}
	k.wheel.jiffies, k.wheel.Added, k.wheel.Fired = 0, 0, 0
	k.wheel.tv1 = [256][]*KTimer{}
	k.wheel.tv = [4][64][]*KTimer{}
	k.wheel.pendingRun = nil
	k.load = loadavg{}
}

func (k *Kernel) readMachine(r *snapshot.Reader, rc *RestoreContext) error {
	r.Section(secMachine)
	rc.hasTrace = r.Bool(1)
	k.next = int(r.I64(2))
	k.rng.SetState(r.U64(3))
	k.shieldProcs = CPUMask(r.U64(4))
	k.shieldIRQs = CPUMask(r.U64(5))
	k.shieldLTimer = CPUMask(r.U64(6))
	k.load.one = r.F64(7)
	k.load.five = r.F64(8)
	k.load.fifteen = r.F64(9)

	k.wheel.jiffies = r.U64(10)
	k.wheel.Added = r.U64(11)
	k.wheel.Fired = r.U64(12)
	nTimers := int(r.U64(13))
	for i := 0; i < nTimers; i++ {
		level := int(r.U64(14))
		idx := int(r.U64(15))
		expires := r.U64(16)
		kind := r.Str(17)
		a0, a1, a2 := r.U64(18), r.U64(19), r.U64(20)
		if err := r.Err(); err != nil {
			return err
		}
		fn, attach, err := k.rebuildEvent(rc, kind, a0, a1, a2)
		if err != nil {
			return err
		}
		if attach != nil {
			return fmt.Errorf("kernel: restore: wheel timer kind %q requires an event handle", kind)
		}
		t := &KTimer{expires: expires, fn: fn, active: true, tag: sim.RegisterEventKind(kind).Tag(a0, a1, a2)}
		switch {
		case level == 0 && idx < 256:
			k.wheel.tv1[idx] = append(k.wheel.tv1[idx], t)
		case level >= 1 && level <= 4 && idx < 64:
			k.wheel.tv[level-1][idx] = append(k.wheel.tv[level-1][idx], t)
		default:
			return fmt.Errorf("kernel: restore: wheel timer bucket (%d,%d) out of range", level, idx)
		}
	}

	nIRQ := int(r.U64(21))
	if nIRQ != len(k.irqs) {
		return fmt.Errorf("kernel: restore: image has %d irq lines, machine has %d", nIRQ, len(k.irqs))
	}
	for _, l := range k.irqs {
		l.affinity = CPUMask(r.U64(22))
		l.rng.SetState(r.U64(23))
		l.rr = int(r.I64(24))
		l.Raised = r.U64(25)
		l.Handled = r.U64(26)
		nPer := int(r.U64(27))
		if nPer != len(l.PerCPU) {
			return fmt.Errorf("kernel: restore: irq %q per-cpu counter length %d != %d", l.Name, nPer, len(l.PerCPU))
		}
		for i := range l.PerCPU {
			l.PerCPU[i] = r.U64(28)
		}
	}
	r.EndSection()
	return r.Err()
}

func (k *Kernel) readTasks(r *snapshot.Reader, rc *RestoreContext) error {
	r.Section(secTasks)
	n := int(r.U64(1))
	if n != len(k.tasks) {
		return fmt.Errorf("kernel: restore: image has %d tasks, machine has %d (construction mismatch)", n, len(k.tasks))
	}
	for _, t := range k.tasks {
		pid := int(r.U64(2))
		name := r.Str(3)
		if pid != t.PID || name != t.Name {
			return fmt.Errorf("kernel: restore: image task %s/%d where machine has %v (construction mismatch)", name, pid, t)
		}
		t.state = TaskState(r.U64(4))
		t.cpu = k.cpuByID(r.I64(5))
		t.affinity = CPUMask(r.U64(6))
		t.MemLocked = r.Bool(7)
		t.Nice = int(r.I64(8))
		t.rng.SetState(r.U64(9))
		t.sliceLeft = sim.Duration(r.I64(10))
		t.Switches = r.U64(11)
		t.Migrated = r.U64(12)
		t.RunTime = sim.Duration(r.I64(13))
		t.lastQueue = sim.Time(r.I64(14))
		if wid := r.U64(15); wid != 0 {
			t.waitOn = k.WaitQueueByID(wid)
			if t.waitOn == nil {
				return fmt.Errorf("kernel: restore: task %v waits on unknown queue %d", t, wid)
			}
		}
		behName := r.Str(16)
		words := make([]uint64, r.U64(17))
		for i := range words {
			words[i] = r.U64(18)
		}
		if err := r.Err(); err != nil {
			return err
		}
		if behName != "" {
			sb, ok := t.behavior.(SnapBehavior)
			if !ok {
				return fmt.Errorf("kernel: restore: image task %v has behavior %q but machine behavior %T is not restorable", t, behName, t.behavior)
			}
			if sb.BehaviorName() != behName {
				return fmt.Errorf("kernel: restore: task %v behavior %q != image %q (construction mismatch)", t, sb.BehaviorName(), behName)
			}
			sb.SetBehaviorState(words)
		}
		if r.Bool(19) {
			call, err := readCall(r, rc)
			if err != nil {
				return err
			}
			t.call = call
		}
		if r.Bool(20) {
			f, armed, err := k.readFrame(r, nil)
			if err != nil {
				return err
			}
			if armed {
				return fmt.Errorf("kernel: restore: saved frame for %v claims to be armed", t)
			}
			t.saved = f
		}
	}
	r.EndSection()
	return r.Err()
}

func (k *Kernel) readCPUs(r *snapshot.Reader, rc *RestoreContext) error {
	r.Section(secCPUs)
	n := int(r.U64(17))
	if n != len(k.cpus) {
		return fmt.Errorf("kernel: restore: image has %d cpus, machine has %d", n, len(k.cpus))
	}
	for _, c := range k.cpus {
		c.cur = k.taskByID(r.I64(18))
		c.lastRan = k.taskByID(r.I64(19))
		nPend := int(r.U64(20))
		for i := 0; i < nPend; i++ {
			idx := r.I64(21)
			if idx == -1 {
				c.pendingIRQ = append(c.pendingIRQ, c.localTimer)
			} else if idx >= 0 && int(idx) < len(k.irqs) {
				c.pendingIRQ = append(c.pendingIRQ, k.irqs[idx])
			} else {
				return fmt.Errorf("kernel: restore: cpu%d pending irq index %d out of range", c.ID, idx)
			}
		}
		for i := range c.softirqPend {
			c.softirqPend[i] = r.F64(22)
		}
		c.needResched = r.Bool(23)
		c.sliceExpired = r.Bool(24)
		c.forceResched = r.Bool(25)
		c.daemonBacklog = r.F64(26)
		c.softirqHanded = r.U64(27)
		c.busFactor = r.F64(28)
		c.localTimer.rng.SetState(r.U64(29))
		c.localTimer.Raised = r.U64(30)
		c.localTimer.Handled = r.U64(31)
		c.times = readTimes(r)
		c.sampled = readTimes(r)
		c.IRQsHandled = r.U64(17)
		c.SoftirqRuns = r.U64(18)
		c.SoftirqTime = sim.Duration(r.I64(19))
		c.Preemptions = r.U64(20)
		c.TicksHandled = r.U64(21)
		nStack := int(r.U64(22))
		for i := 0; i < nStack; i++ {
			f, armed, err := k.readFrame(r, c)
			if err != nil {
				return fmt.Errorf("cpu%d frame %d: %w", c.ID, i, err)
			}
			c.stack = append(c.stack, f)
			if armed {
				if i != nStack-1 {
					return fmt.Errorf("kernel: restore: cpu%d buried frame %d claims to be armed", c.ID, i)
				}
				rc.armed[c.ID] = f
			}
			if f.kind == frameSpin {
				if rc.spin[c.ID] != nil {
					return fmt.Errorf("kernel: restore: cpu%d has two spin frames", c.ID)
				}
				rc.spin[c.ID] = f
			}
		}
	}
	r.EndSection()
	return r.Err()
}

func (k *Kernel) readLocks(r *snapshot.Reader, rc *RestoreContext) error {
	r.Section(secLocks)
	n := int(r.U64(1))
	for i := 0; i < n; i++ {
		name := r.Str(2)
		if err := r.Err(); err != nil {
			return err
		}
		l := k.restoreLock(name)
		l.holder = k.cpuByID(r.I64(3))
		l.heldAt = sim.Time(r.I64(4))
		l.heldOnce = r.Bool(5)
		l.Acquisitions = r.U64(6)
		l.Contentions = r.U64(7)
		l.TotalSpin = sim.Duration(r.I64(8))
		l.MaxHold = sim.Duration(r.I64(9))
		nW := int(r.U64(10))
		for j := 0; j < nW; j++ {
			cpu := int(r.U64(11))
			since := sim.Time(r.I64(12))
			if cpu < 0 || cpu >= len(k.cpus) {
				return fmt.Errorf("kernel: restore: lock %q waiter cpu %d out of range", name, cpu)
			}
			c := k.cpus[cpu]
			f := rc.spin[cpu]
			if f == nil || f.spin != l {
				return fmt.Errorf("kernel: restore: lock %q waiter cpu%d has no matching spin frame", name, cpu)
			}
			l.waiters = append(l.waiters, &lockWaiter{
				cpu:     c,
				since:   since,
				active:  c.spinActiveFn(f),
				granted: c.spinGrantedFn(f),
			})
		}
	}
	r.EndSection()
	return r.Err()
}

func (k *Kernel) readWaitqs(r *snapshot.Reader) error {
	r.Section(secWaitqs)
	n := int(r.U64(1))
	if n != len(k.waitqs) {
		return fmt.Errorf("kernel: restore: image has %d wait queues, machine has %d (construction mismatch)", n, len(k.waitqs))
	}
	for _, wq := range k.waitqs {
		name := r.Str(2)
		if name != wq.Name {
			return fmt.Errorf("kernel: restore: wait queue %q where machine has %q (construction mismatch)", name, wq.Name)
		}
		nW := int(r.U64(3))
		for i := 0; i < nW; i++ {
			pid := int(r.U64(4))
			t := k.byPID[pid]
			if t == nil {
				return fmt.Errorf("kernel: restore: wait queue %q waiter pid %d unknown", name, pid)
			}
			wq.waiters = append(wq.waiters, t)
		}
	}
	r.EndSection()
	return r.Err()
}

func (k *Kernel) readSched(r *snapshot.Reader) error {
	r.Section(secSched)
	kind := r.Str(1)
	switch s := k.sched.(type) {
	case *o1Scheduler:
		if kind != "o1" {
			return fmt.Errorf("kernel: restore: image scheduler %q, machine runs o1", kind)
		}
		for _, c := range k.cpus {
			nQ := int(r.U64(2))
			for i := 0; i < nQ; i++ {
				pid := int(r.U64(3))
				t := k.byPID[pid]
				if t == nil {
					return fmt.Errorf("kernel: restore: runqueue pid %d unknown", pid)
				}
				s.Enqueue(t, c)
			}
		}
	case *legacyScheduler:
		if kind != "legacy" {
			return fmt.Errorf("kernel: restore: image scheduler %q, machine runs legacy", kind)
		}
		nQ := int(r.U64(2))
		for i := 0; i < nQ; i++ {
			pid := int(r.U64(3))
			cpu := r.I64(4)
			t := k.byPID[pid]
			if t == nil {
				return fmt.Errorf("kernel: restore: runqueue pid %d unknown", pid)
			}
			s.Enqueue(t, k.cpuByID(cpu))
		}
	default:
		return fmt.Errorf("kernel: restore of unknown scheduler %T", k.sched)
	}
	r.EndSection()
	return r.Err()
}

func (k *Kernel) cpuByID(id int64) *CPU {
	if id < 0 || int(id) >= len(k.cpus) {
		return nil
	}
	return k.cpus[id]
}

func (k *Kernel) taskByID(pid int64) *Task {
	if pid < 0 {
		return nil
	}
	return k.byPID[int(pid)]
}

// rebuildEvent reconstructs a pending event's callback from its kind
// tag: kernel kinds inline, everything else through the registry. The
// returned attach hook, when non-nil, re-binds the new event handle to
// its owner (an armed frame's done, a CPU's tick or dispatch event).
func (k *Kernel) rebuildEvent(rc *RestoreContext, kind string, a0, a1, a2 uint64) (func(), func(sim.Event), error) {
	cpuArg := func() (*CPU, error) {
		if a0 >= uint64(len(k.cpus)) {
			return nil, fmt.Errorf("kernel: restore: event %q cpu %d out of range", kind, a0)
		}
		return k.cpus[a0], nil
	}
	switch sim.RegisterEventKind(kind) {
	case evFrameDone:
		c, err := cpuArg()
		if err != nil {
			return nil, nil, err
		}
		f := rc.armed[c.ID]
		if f == nil {
			return nil, nil, fmt.Errorf("kernel: restore: frame-done event for cpu%d with no armed frame", c.ID)
		}
		return c.frameDoneFn(f), func(ev sim.Event) { f.done = ev }, nil
	case evIdleDispatch:
		c, err := cpuArg()
		if err != nil {
			return nil, nil, err
		}
		return c.idleDispatch, func(ev sim.Event) { c.dispatchEv = ev }, nil
	case evCPUTick:
		c, err := cpuArg()
		if err != nil {
			return nil, nil, err
		}
		return c.tick, func(ev sim.Event) { c.tickEv = ev }, nil
	case evGlobalTick:
		return k.globalTick, nil, nil
	case evBusResample:
		c, err := cpuArg()
		if err != nil {
			return nil, nil, err
		}
		return c.busResample, nil, nil
	case evSleepWake:
		t := k.byPID[int(a0)]
		if t == nil {
			return nil, nil, fmt.Errorf("kernel: restore: sleep-wake event for unknown pid %d", a0)
		}
		return k.sleepWakeFn(t, nil), nil, nil
	case evInvSample:
		period := sim.Duration(a0)
		return func() { k.invSample(period) }, nil, nil
	}
	rb := lookupRebuild(kind)
	if rb == nil {
		return nil, nil, fmt.Errorf("kernel: restore: no rebuilder registered for event kind %q", kind)
	}
	fn, err := rb(rc, a0, a1, a2)
	if err != nil {
		return nil, nil, err
	}
	return fn, nil, nil
}
