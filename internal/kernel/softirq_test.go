package kernel

import (
	"testing"

	"repro/internal/sim"
)

// raiseStorm queues a large softirq backlog on cpu0 via a device ISR.
func raiseStorm(k *Kernel, work sim.Duration) *IRQLine {
	return k.RegisterIRQ("storm", MaskOf(0), constWork(2*sim.Microsecond), func(c *CPU) {
		c.RaiseSoftirq(SoftirqNetRx, work)
	})
}

func TestSoftirqRunsAtIRQExit(t *testing.T) {
	k := New(StandardLinux24(1, 1.0, false), 42)
	line := raiseStorm(k, 300*sim.Microsecond)
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() { k.Raise(line) })
	k.Eng.Run(sim.Time(10 * sim.Millisecond))
	c := k.CPU(0)
	if c.SoftirqRuns == 0 {
		t.Fatal("softirq never ran")
	}
	if c.SoftirqTime < 290*sim.Microsecond {
		t.Fatalf("softirq time = %v, want ~300µs", c.SoftirqTime)
	}
	if c.SoftirqPending() != 0 {
		t.Fatalf("pending = %v after drain", c.SoftirqPending())
	}
}

func TestSoftirqBudgetSplitsPasses(t *testing.T) {
	// 10ms of backlog with a 4ms budget must take several passes on a
	// stock kernel (retried in interrupt context).
	k := New(StandardLinux24(1, 1.0, false), 42)
	line := raiseStorm(k, 10*sim.Millisecond)
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() { k.Raise(line) })
	k.Eng.Run(sim.Time(50 * sim.Millisecond))
	c := k.CPU(0)
	if c.SoftirqRuns < 3 {
		t.Fatalf("softirq passes = %d, want ≥3 for 10ms at 4ms budget", c.SoftirqRuns)
	}
	if c.SoftirqPending() != 0 {
		t.Fatal("backlog not drained")
	}
}

func TestKsoftirqdTakesOverflow(t *testing.T) {
	// On a SoftirqDaemon kernel the overflow beyond one budget pass is
	// handed to ksoftirqd.
	cfg := RedHawk14(1, 1.0)
	k := New(cfg, 42)
	line := raiseStorm(k, 10*sim.Millisecond)
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() { k.Raise(line) })
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	c := k.CPU(0)
	if c.softirqHanded == 0 {
		t.Fatal("overflow was never handed to ksoftirqd")
	}
	if c.SoftirqPending() != 0 || c.daemonBacklog != 0 {
		t.Fatalf("pending=%v backlog=%v, daemon did not drain", c.SoftirqPending(), c.daemonBacklog)
	}
	var daemon *Task
	for _, tk := range k.Tasks() {
		if tk.Name == "ksoftirqd/0" {
			daemon = tk
		}
	}
	if daemon == nil || daemon.Switches == 0 {
		t.Fatal("ksoftirqd/0 never ran")
	}
	if daemon.State() != TaskBlocked {
		t.Fatalf("ksoftirqd state = %v, want blocked after drain", daemon.State())
	}
}

func TestKsoftirqdDoesNotStallRTTask(t *testing.T) {
	// The §1 point of the daemon: once the backlog is in task context,
	// a SCHED_FIFO task is not delayed by it. Compare the completion of
	// an RT compute burst that starts right after a 10ms storm.
	measure := func(cfg Config) sim.Time {
		k := New(cfg, 42)
		line := raiseStorm(k, 10*sim.Millisecond)
		var done sim.Time
		act := Compute(5 * sim.Millisecond)
		act.OnComplete = func(now sim.Time) { done = now }
		k.NewTask("rt", SchedFIFO, 90, MaskOf(0), &onceBehavior{actions: []Action{
			Sleep(2 * sim.Millisecond),
			act,
		}})
		k.Start()
		k.Eng.Schedule(sim.Time(sim.Millisecond), func() { k.Raise(line) })
		k.Eng.Run(sim.Time(100 * sim.Millisecond))
		if done == 0 {
			t.Fatal("rt task never finished")
		}
		return done
	}
	stock := StandardLinux24(1, 1.0, false)
	daemonCfg := RedHawk14(1, 1.0)
	stockDone := measure(stock)
	daemonDone := measure(daemonCfg)
	// Stock: the RT task wakes at 2ms into a 10ms interrupt-context
	// storm and waits for most of it. Daemon: the storm drops to task
	// context after the first 4ms pass and the RT task preempts it.
	if daemonDone >= stockDone {
		t.Fatalf("daemon kernel should finish earlier: stock %v vs daemon %v", stockDone, daemonDone)
	}
	if sim.Duration(stockDone-daemonDone) < 2*sim.Millisecond {
		t.Fatalf("daemon advantage = %v, want multi-ms", stockDone-daemonDone)
	}
}

func TestSoftirqDoesNotNest(t *testing.T) {
	// A second storm arriving during softirq processing must queue, not
	// nest (run counts and total time still add up).
	k := New(StandardLinux24(1, 1.0, false), 42)
	line := raiseStorm(k, 2*sim.Millisecond)
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() { k.Raise(line) })
	k.Eng.Schedule(sim.Time(2*sim.Millisecond), func() { k.Raise(line) })
	k.Eng.Run(sim.Time(50 * sim.Millisecond))
	c := k.CPU(0)
	if c.SoftirqPending() != 0 {
		t.Fatal("backlog not drained")
	}
	if c.SoftirqTime < 3900*sim.Microsecond {
		t.Fatalf("softirq time = %v, want ~4ms total", c.SoftirqTime)
	}
}

func TestShieldedCPUNeverRunsForeignSoftirq(t *testing.T) {
	// With irqs shielded, no device interrupt reaches the shielded CPU,
	// so no foreign bottom-half work ever runs there.
	cfg := RedHawk14(2, 1.0)
	k := New(cfg, 42)
	line := k.RegisterIRQ("eth0", 0, constWork(3*sim.Microsecond), func(c *CPU) {
		c.RaiseSoftirq(SoftirqNetRx, 200*sim.Microsecond)
	})
	k.Start()
	if err := k.SetShieldIRQs(MaskOf(1)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		k.Eng.Schedule(sim.Time(i)*sim.Time(sim.Millisecond), func() { k.Raise(line) })
	}
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	if got := k.CPU(1).SoftirqTime; got != 0 {
		t.Fatalf("shielded cpu1 ran %v of softirq work", got)
	}
	if k.CPU(0).SoftirqTime == 0 {
		t.Fatal("cpu0 should have absorbed all the softirq work")
	}
}
