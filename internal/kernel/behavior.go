package kernel

import "repro/internal/sim"

// Behavior drives a task: each time the task is about to do something new,
// the kernel asks the behavior for the next Action. Behaviors are state
// machines written by the workload and experiment packages.
type Behavior interface {
	// Next returns the task's next action. It runs at dispatch time in
	// virtual time order, so it may read the kernel clock and use the
	// task's RNG deterministically.
	Next(t *Task) Action
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(t *Task) Action

// Next implements Behavior.
func (f BehaviorFunc) Next(t *Task) Action { return f(t) }

// ActionCompleter is the snapshot-safe alternative to Action.OnComplete:
// when an action finishes and its OnComplete is nil, the kernel calls
// ActionDone on the task's behavior (if implemented) with the completed
// action's kind. Because the hook lives on the behavior — whose state is
// serialised through SnapBehavior — instead of in a captured closure, an
// action can complete on the far side of a snapshot/restore boundary.
type ActionCompleter interface {
	ActionDone(t *Task, kind ActionKind, now sim.Time)
}

// SnapBehavior is implemented by behaviors that can cross a snapshot
// boundary. The kernel serialises the behavior by name plus an opaque
// word list; on restore the freshly constructed machine's behavior (same
// construction order, hence same name) gets the words back. Behaviors
// that keep state in closures cannot implement this — a snapshot of a
// machine running one fails loudly, naming the task.
type SnapBehavior interface {
	Behavior
	// BehaviorName identifies the behavior for cross-checking that the
	// restoring machine reconstructed the same task structure.
	BehaviorName() string
	// BehaviorState returns the behavior's mutable state as words.
	BehaviorState() []uint64
	// SetBehaviorState overwrites the state from a snapshot's words.
	SetBehaviorState(words []uint64)
}

// actionDone dispatches an action completion: the explicit OnComplete
// closure when one was given, else the behavior's ActionCompleter hook.
func actionDone(t *Task, kind ActionKind, onComplete func(sim.Time), now sim.Time) {
	if onComplete != nil {
		onComplete(now)
		return
	}
	if bc, ok := t.behavior.(ActionCompleter); ok {
		bc.ActionDone(t, kind, now)
	}
}

// ActionKind discriminates Action.
type ActionKind uint8

// Action kinds.
const (
	// ActCompute burns user-mode CPU for D of work.
	ActCompute ActionKind = iota
	// ActSyscall enters the kernel and executes Call.
	ActSyscall
	// ActSleep blocks for D of virtual time (nanosleep).
	ActSleep
	// ActYield returns to the scheduler (sched_yield).
	ActYield
	// ActExit terminates the task.
	ActExit
)

// Action is one step of a task's life.
type Action struct {
	Kind ActionKind
	// D is the amount of work (ActCompute) or sleep (ActSleep).
	D sim.Duration
	// Call describes the syscall for ActSyscall.
	Call *SyscallCall
	// OnComplete, if non-nil, runs when the action finishes (after the
	// task is back in user mode for syscalls). Experiments use it to
	// read the simulated TSC.
	OnComplete func(now sim.Time)
}

// Compute returns a user-mode compute action.
func Compute(d sim.Duration) Action { return Action{Kind: ActCompute, D: d} }

// Sleep returns a sleep action.
func Sleep(d sim.Duration) Action { return Action{Kind: ActSleep, D: d} }

// Exit returns the terminate action.
func Exit() Action { return Action{Kind: ActExit} }

// Yield returns a sched_yield action.
func Yield() Action { return Action{Kind: ActYield} }

// Syscall returns a syscall action.
func Syscall(call *SyscallCall) Action { return Action{Kind: ActSyscall, Call: call} }

// SegmentKind discriminates syscall segments.
type SegmentKind uint8

// Segment kinds.
const (
	// SegWork executes kernel code for D of work.
	SegWork SegmentKind = iota
	// SegBlock puts the task to sleep on Wait until woken.
	SegBlock
)

// Segment is one region of kernel execution inside a syscall. The
// sequence of segments encodes the critical-section structure that
// determines preemption latency (§6 of the paper).
type Segment struct {
	Kind SegmentKind
	// D is the work in this region (SegWork).
	D sim.Duration
	// Lock, if non-nil, is acquired at region start and released at
	// region end; a contended acquire spins.
	Lock *SpinLock
	// IRQsOff marks a spin_lock_irqsave-style region: local interrupts
	// are disabled for its duration.
	IRQsOff bool
	// NonPreempt marks an explicit preempt_disable region: even a
	// preemptible kernel cannot schedule until it ends. Regions holding
	// a lock are implicitly non-preemptible.
	NonPreempt bool
	// SchedPoint marks a low-latency-patch scheduling point at the END
	// of this region: even a non-preemptible kernel checks needResched
	// there.
	SchedPoint bool
	// Wait is the queue to block on (SegBlock).
	Wait *WaitQueue
	// OnDone, if non-nil, runs when this segment completes. Devices use
	// it to implement handler side effects.
	OnDone func()
	// DoneTag is the serialisable identity of OnDone for snapshots: a
	// registered event-kind tag whose rebuilder reconstructs the closure
	// on restore. A segment with OnDone set but a zero DoneTag cannot
	// cross a snapshot boundary (the snapshot fails loudly).
	DoneTag sim.EventTag
}

// SyscallCall describes one invocation of a system call as the list of
// kernel regions it executes. The list is produced fresh for each call by
// the workload profile so durations can be drawn from distributions.
type SyscallCall struct {
	Name string
	// Segments executes in order.
	Segments []Segment
	// TakesBKL makes the generic entry path acquire the Big Kernel Lock
	// before the first segment and release it at syscall exit, as the
	// 2.4 ioctl path does. If the kernel config has BKLIoctlFlag set
	// and DriverNoBKL is true, the BKL is skipped (§6.3).
	TakesBKL    bool
	DriverNoBKL bool
	// ReacquireBKLOnBlock models 2.4 semantics: the BKL is dropped when
	// the task blocks and reacquired when it resumes.
	// (Always true in Linux; kept as a field for tests/ablations.)
	ReacquireBKLOnBlock bool
}

// syscallCall is the in-flight execution state of a SyscallCall.
type syscallCall struct {
	def *SyscallCall
	// segs is the segment list after low-latency splitting.
	segs    []Segment
	idx     int  // next segment to execute
	heldBKL bool // whether this call currently holds the BKL
	// onComplete from the Action, run at syscall exit.
	onComplete func(now sim.Time)
}

// needsBKL reports whether this call must hold the BKL while executing,
// given the kernel configuration.
func (c *syscallCall) needsBKL(cfg *Config) bool {
	if !c.def.TakesBKL {
		return false
	}
	if cfg.BKLIoctlFlag && c.def.DriverNoBKL {
		return false
	}
	return true
}
