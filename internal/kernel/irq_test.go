package kernel

import (
	"testing"

	"repro/internal/sim"
)

func constWork(d sim.Duration) func(*sim.RNG) sim.Duration {
	return func(*sim.RNG) sim.Duration { return d }
}

func TestIRQDeliveryAndHandler(t *testing.T) {
	k := New(testConfig(1), 42)
	handled := 0
	line := k.RegisterIRQ("dev", 0, constWork(5*sim.Microsecond), func(c *CPU) { handled++ })
	k.Start()
	for i := 1; i <= 3; i++ {
		k.Eng.Schedule(sim.Time(i)*sim.Time(sim.Millisecond), func() { k.Raise(line) })
	}
	k.Eng.Run(sim.Time(10 * sim.Millisecond))
	if handled != 3 {
		t.Fatalf("handled = %d, want 3", handled)
	}
	if line.Raised != 3 || line.Handled != 3 {
		t.Fatalf("line stats: raised %d handled %d", line.Raised, line.Handled)
	}
}

func TestIRQInterruptsComputeAndDelaysIt(t *testing.T) {
	// A compute task must be delayed by exactly the interrupt activity
	// (handler time + entry/exit + cache penalty), visible as a later
	// completion than on a quiet machine.
	measure := func(withIRQs bool) sim.Time {
		cfg := testConfig(1)
		k := New(cfg, 42)
		var done sim.Time
		act := Compute(50 * sim.Millisecond)
		act.OnComplete = func(now sim.Time) { done = now }
		k.NewTask("worker", SchedFIFO, 50, 0, &onceBehavior{actions: []Action{act}})
		line := k.RegisterIRQ("dev", 0, constWork(100*sim.Microsecond), nil)
		k.Start()
		if withIRQs {
			for i := 1; i <= 40; i++ {
				k.Eng.Schedule(sim.Time(i)*sim.Time(sim.Millisecond), func() { k.Raise(line) })
			}
		}
		k.Eng.Run(sim.Time(200 * sim.Millisecond))
		return done
	}
	quiet := measure(false)
	noisy := measure(true)
	if noisy <= quiet {
		t.Fatalf("interrupt load did not delay the task: quiet %v, noisy %v", quiet, noisy)
	}
	delta := sim.Duration(noisy - quiet)
	// 40 interrupts × ~102µs each ≈ 4.1ms, plus cache penalties.
	if delta < 4*sim.Millisecond || delta > 5*sim.Millisecond {
		t.Fatalf("interrupt delay = %v, want ≈4.1-4.5ms", delta)
	}
}

func TestIRQAffinityRouting(t *testing.T) {
	k := New(testConfig(2), 42)
	var onCPU []int
	line := k.RegisterIRQ("dev", MaskOf(1), constWork(sim.Microsecond), func(c *CPU) {
		onCPU = append(onCPU, c.ID)
	})
	k.Start()
	for i := 1; i <= 5; i++ {
		k.Eng.Schedule(sim.Time(i)*sim.Time(sim.Millisecond), func() { k.Raise(line) })
	}
	k.Eng.Run(sim.Time(10 * sim.Millisecond))
	if len(onCPU) != 5 {
		t.Fatalf("handled %d, want 5", len(onCPU))
	}
	for _, c := range onCPU {
		if c != 1 {
			t.Fatalf("irq handled on cpu%d despite affinity 2", c)
		}
	}
}

func TestIRQStaticDeliveryToFirstCPU(t *testing.T) {
	k := New(testConfig(2), 42) // default: static 2.4 routing
	seen := map[int]int{}
	line := k.RegisterIRQ("dev", 0, constWork(sim.Microsecond), func(c *CPU) { seen[c.ID]++ })
	k.Start()
	for i := 1; i <= 10; i++ {
		k.Eng.Schedule(sim.Time(i)*sim.Time(sim.Millisecond), func() { k.Raise(line) })
	}
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	if seen[0] != 10 || seen[1] != 0 {
		t.Fatalf("static routing distribution = %v, want all on cpu0", seen)
	}
}

func TestIRQRoundRobinAcrossAffinity(t *testing.T) {
	cfg := testConfig(2)
	cfg.IRQRoundRobin = true
	k := New(cfg, 42)
	seen := map[int]int{}
	line := k.RegisterIRQ("dev", 0, constWork(sim.Microsecond), func(c *CPU) { seen[c.ID]++ })
	k.Start()
	for i := 1; i <= 10; i++ {
		k.Eng.Schedule(sim.Time(i)*sim.Time(sim.Millisecond), func() { k.Raise(line) })
	}
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	if seen[0] != 5 || seen[1] != 5 {
		t.Fatalf("distribution = %v, want even round-robin", seen)
	}
}

func TestIRQPendsWhileIRQsDisabled(t *testing.T) {
	// An interrupt arriving during an irqs-off kernel region must be
	// deferred until the region ends, not lost and not delivered early.
	k := New(testConfig(1), 42)
	var handledAt sim.Time = -1
	line := k.RegisterIRQ("dev", 0, constWork(sim.Microsecond), func(c *CPU) { handledAt = k.Now() })

	call := &SyscallCall{
		Name: "cli-region",
		Segments: []Segment{
			{Kind: SegWork, D: 300 * sim.Microsecond, IRQsOff: true},
		},
	}
	var regionEnd sim.Time
	call.Segments[0].OnDone = func() { regionEnd = k.Now() }

	k.NewTask("cli", SchedFIFO, 50, 0, &onceBehavior{actions: []Action{Syscall(call)}})
	k.Start()
	// Fire mid-region. The task starts after dispatch overhead (a few
	// µs); 100µs is safely inside the 300µs region.
	k.Eng.Schedule(sim.Time(100*sim.Microsecond), func() { k.Raise(line) })
	k.Eng.Run(sim.Time(5 * sim.Millisecond))

	if handledAt < 0 {
		t.Fatal("pended interrupt was lost")
	}
	if handledAt < regionEnd {
		t.Fatalf("interrupt handled at %v, inside the irqs-off region ending %v", handledAt, regionEnd)
	}
	if sim.Duration(handledAt-regionEnd) > 20*sim.Microsecond {
		t.Fatalf("pended interrupt delivered %v after region end, want immediately", handledAt-regionEnd)
	}
}

func TestISRWakesBlockedTask(t *testing.T) {
	// The canonical interrupt-response path: task blocks in a read,
	// device interrupt wakes it; measure fire-to-user latency.
	k := New(testConfig(1), 42)
	wq := NewWaitQueue("rtc")
	line := k.RegisterIRQ("rtc", 0, constWork(2*sim.Microsecond), func(c *CPU) {
		k.WakeAll(wq, c)
	})

	var fireAt, userAt sim.Time = -1, -1
	call := &SyscallCall{
		Name: "read",
		Segments: []Segment{
			{Kind: SegWork, D: sim.Microsecond},
			{Kind: SegBlock, Wait: wq},
			{Kind: SegWork, D: 2 * sim.Microsecond},
		},
	}
	act := Syscall(call)
	act.OnComplete = func(now sim.Time) { userAt = now }
	k.NewTask("reader", SchedFIFO, 90, 0, &onceBehavior{actions: []Action{act}})
	k.Start()
	k.Eng.Schedule(sim.Time(3*sim.Millisecond), func() {
		fireAt = k.Now()
		k.Raise(line)
	})
	k.Eng.Run(sim.Time(10 * sim.Millisecond))

	if userAt < 0 {
		t.Fatal("reader never returned to user space")
	}
	lat := sim.Duration(userAt - fireAt)
	// Idle shielded-style CPU: entry+handler+exit+wake+idle-exit+
	// pick+switch+cache+2µs exit work ≈ 10-20µs.
	if lat < 5*sim.Microsecond || lat > 40*sim.Microsecond {
		t.Fatalf("interrupt response = %v, want ~10-20µs on an idle CPU", lat)
	}
}

func TestLocalTimerTickCounts(t *testing.T) {
	k := New(testConfig(2), 42)
	k.Start()
	k.Eng.Run(sim.Time(sim.Second))
	for _, c := range []*CPU{k.CPU(0), k.CPU(1)} {
		// 100 Hz for 1s: ~100 ticks (±1 for phase).
		if c.TicksHandled < 98 || c.TicksHandled > 101 {
			t.Fatalf("cpu%d ticks = %d, want ~100", c.ID, c.TicksHandled)
		}
	}
}

func TestProcIRQAffinityFile(t *testing.T) {
	k := New(testConfig(2), 42)
	line := k.RegisterIRQ("eth0", 0, constWork(sim.Microsecond), nil)
	path := "/proc/irq/1/smp_affinity"
	got, err := k.FS.Read(path)
	if err != nil || got != "3\n" {
		t.Fatalf("read %s = %q, %v", path, got, err)
	}
	if err := k.FS.Write(path, "2\n"); err != nil {
		t.Fatal(err)
	}
	if line.Affinity() != MaskOf(1) {
		t.Fatalf("affinity after write = %s", line.Affinity())
	}
	if err := k.FS.Write(path, "zz"); err == nil {
		t.Fatal("garbage mask accepted")
	}
	if err := k.FS.Write(path, "0"); err == nil {
		t.Fatal("empty mask accepted")
	}
}
