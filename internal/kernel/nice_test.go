package kernel

import (
	"testing"

	"repro/internal/sim"
)

func TestTimesliceForNice(t *testing.T) {
	mk := func(nice int, policy SchedPolicy) *Task {
		return &Task{Policy: policy, Nice: nice}
	}
	base := timesliceFor(mk(0, SchedOther))
	if base != defaultTimeslice {
		t.Fatalf("nice 0 slice = %v", base)
	}
	favoured := timesliceFor(mk(-20, SchedOther))
	if favoured != defaultTimeslice.Scale(2.0) {
		t.Fatalf("nice -20 slice = %v, want 2x", favoured)
	}
	starved := timesliceFor(mk(19, SchedOther))
	if starved >= base/2 || starved < 10*sim.Millisecond {
		t.Fatalf("nice 19 slice = %v", starved)
	}
	// Clamping out-of-range values.
	if timesliceFor(mk(-100, SchedOther)) != favoured {
		t.Fatal("nice below -20 not clamped")
	}
	if timesliceFor(mk(100, SchedOther)) != starved {
		t.Fatal("nice above 19 not clamped")
	}
}

func TestNiceBiasesCPUShare(t *testing.T) {
	// A nice -20 hog against a nice +19 hog on one CPU: the favoured
	// task gets a clearly larger share.
	cfg := testConfig(1)
	cfg.Timing.BusContention = 0
	k := New(cfg, 42)
	progress := map[string]int{}
	mk := func(name string, nice int) {
		tk := k.NewTask(name, SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
			a := Compute(5 * sim.Millisecond)
			a.OnComplete = func(sim.Time) { progress[name]++ }
			return a
		}))
		tk.Nice = nice
		tk.sliceLeft = timesliceFor(tk)
	}
	mk("favoured", -20)
	mk("starved", 19)
	k.Start()
	k.Eng.Run(sim.Time(3 * sim.Second))
	f, s := progress["favoured"], progress["starved"]
	if f == 0 || s == 0 {
		t.Fatalf("starvation: favoured=%d starved=%d", f, s)
	}
	ratio := float64(f) / float64(s)
	// 120ms vs 10ms quantum → expect roughly 12:1; accept a broad band.
	if ratio < 3 {
		t.Fatalf("nice bias too weak: favoured=%d starved=%d (ratio %.1f)", f, s, ratio)
	}
}
