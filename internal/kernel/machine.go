package kernel

import (
	"fmt"

	"repro/internal/procfs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Kernel is one simulated machine running one kernel configuration. It
// owns the CPUs, tasks, interrupt lines, locks, scheduler and the /proc
// tree. All methods must be called from simulation context (inside events
// or before Start); the simulator is single-threaded.
type Kernel struct {
	Cfg   Config
	Eng   *sim.Engine
	Trace *trace.Buffer
	FS    *procfs.FS

	cpus   []*CPU
	online CPUMask
	tasks  []*Task
	byPID  map[int]*Task
	next   int // next PID
	irqs   []*IRQLine
	sched  Scheduler

	// Shield state (the paper's contribution; see shield.go).
	shieldProcs  CPUMask
	shieldIRQs   CPUMask
	shieldLTimer CPUMask

	// BKL is the Big Kernel Lock.
	BKL *SpinLock
	// namedLocks are the shared kernel locks workload profiles contend
	// on (fs, io, net, ...).
	namedLocks map[string]*SpinLock

	rng     *sim.RNG
	started bool

	// wheel is the 2.4 timer subsystem, driven by the global timer
	// interrupt (IRQ0).
	wheel    *timerWheel
	timerIRQ *IRQLine
	load     loadavg

	// waitqs are the registered (snapshot-visible) wait queues, in
	// registration order; a queue's id is its index + 1 (0 = none).
	waitqs []*WaitQueue
	// comps are the registered snapshot components (devices, workloads),
	// in registration order; construction order is deterministic, so ids
	// agree between a snapshotting and a restoring process.
	comps []SnapComponent
}

// New builds a machine for the given config. seed makes the run
// reproducible. It panics on an invalid config (construction is
// programmer-controlled; there is no dynamic input to validate softly).
func New(cfg Config, seed uint64) *Kernel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// Resolve the effective queue kind so the degenerate-lookahead check
	// also covers runs whose *process default* is the sharded engine
	// (rtsim -engine=sharded, CI's ldflags matrix leg).
	queue := cfg.EventQueue
	if queue == "" {
		queue = sim.DefaultQueueKind()
	}
	if queue == sim.QueueSharded && cfg.Lookahead() <= 0 {
		// No cross-CPU latency floor means no safe lookahead window: fall
		// back to the serial ladder engine instead of a zero-width
		// horizon. Identical results either way — the sharded queue's
		// dispatch order is the serial order — so the fallback is a pure
		// execution-strategy decision.
		queue = sim.QueueLadder
	}
	eng := sim.NewEngineOpts(seed, sim.EngineOptions{
		Queue:          queue,
		Pool:           cfg.EventPool,
		Shards:         cfg.EngineShards,
		ShardLookahead: cfg.Lookahead(),
	})
	if cfg.TiebreakSalt != 0 {
		eng.PerturbTiebreaks(cfg.TiebreakSalt)
	}
	k := &Kernel{
		Cfg:        cfg,
		Eng:        eng,
		FS:         procfs.New(),
		online:     cfg.OnlineMask(),
		byPID:      map[int]*Task{},
		BKL:        NewSpinLock("BKL"),
		namedLocks: map[string]*SpinLock{},
		next:       1,
	}
	k.rng = k.Eng.RNG().Fork()
	k.wheel = newTimerWheel(k)

	n := cfg.NumCPUs()
	k.cpus = make([]*CPU, n)
	for i := 0; i < n; i++ {
		k.cpus[i] = newCPU(k, i)
	}
	// Pair hyperthread siblings. 2.4-era BIOSes enumerated physical
	// packages first: logical CPUs 0..P-1 are the first sibling of each
	// package, P..2P-1 the second, so CPU i and CPU i+P share package
	// i%P. This matters for load placement: the scheduler fills the
	// other *package* before a busy CPU's own sibling.
	if cfg.HyperThreading {
		p := cfg.PhysCPUs
		for i := 0; i < p; i++ {
			k.cpus[i].Sibling = k.cpus[i+p]
			k.cpus[i+p].Sibling = k.cpus[i]
			k.cpus[i].Phys = i
			k.cpus[i+p].Phys = i
		}
	} else {
		for i := range k.cpus {
			k.cpus[i].Phys = i
		}
	}

	if cfg.O1Scheduler {
		k.sched = newO1Scheduler(k)
	} else {
		k.sched = newLegacyScheduler(k)
	}
	// SoftirqDaemon kernels run a per-CPU ksoftirqd thread for
	// bottom-half overflow.
	if cfg.SoftirqDaemon {
		for _, c := range k.cpus {
			c.softirqWq = k.NewWaitQueue(fmt.Sprintf("ksoftirqd-wq-%d", c.ID))
			c.ksoftirqd = k.NewTask(fmt.Sprintf("ksoftirqd/%d", c.ID),
				SchedOther, 0, MaskOf(c.ID), &ksoftirqdBehavior{c: c})
		}
	}
	// IRQ0: the global timer interrupt that advances jiffies and runs
	// the timer wheel. It is an ordinary (fast) line, so shielding a CPU
	// from interrupts reroutes it like any device interrupt — global
	// timekeeping survives shielding, exactly as on real hardware.
	k.timerIRQ = k.RegisterIRQ("timer", 0,
		func(r *sim.RNG) sim.Duration { return r.Jitter(cfg.scale(2*sim.Microsecond), 0.25) },
		func(c *CPU) { c.runWheelTick() })
	k.timerIRQ.Fast = true

	k.registerProcFiles()
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() sim.Time { return k.Eng.Now() }

// CPUs returns the logical CPU count.
func (k *Kernel) CPUs() int { return len(k.cpus) }

// CPU returns logical CPU i.
func (k *Kernel) CPU(i int) *CPU { return k.cpus[i] }

// Online returns the mask of online CPUs.
func (k *Kernel) Online() CPUMask { return k.online }

// Scheduler returns the active scheduler (for tests and tools).
func (k *Kernel) Scheduler() Scheduler { return k.sched }

// NamedLock returns (creating on first use) a shared kernel lock. The
// workload profiles use a small set of these to model the contended 2.4
// locks: "fs" (dcache/inode paths), "io" (io_request_lock), "net".
func (k *Kernel) NamedLock(name string) *SpinLock {
	if l, ok := k.namedLocks[name]; ok {
		return l
	}
	l := NewSpinLock(name)
	k.namedLocks[name] = l
	return l
}

// NewWaitQueue creates a wait queue registered with the kernel, which
// gives it a stable numeric identity for snapshots. All production wait
// queues must be created through this; the package-level NewWaitQueue
// remains for tests and for machines that never snapshot.
func (k *Kernel) NewWaitQueue(name string) *WaitQueue {
	wq := &WaitQueue{Name: name}
	k.waitqs = append(k.waitqs, wq)
	wq.id = uint64(len(k.waitqs))
	return wq
}

// WaitQueueByID returns the registered wait queue with the given id
// (1-based), or nil.
func (k *Kernel) WaitQueueByID(id uint64) *WaitQueue {
	if id == 0 || id > uint64(len(k.waitqs)) {
		return nil
	}
	return k.waitqs[id-1]
}

// RegisterComponent adds a snapshot component (a device or workload with
// serialisable state) and returns its ordered id. Components register
// during construction, which both the snapshotting and the restoring
// process perform identically, so ids agree by construction order.
func (k *Kernel) RegisterComponent(c SnapComponent) uint64 {
	k.comps = append(k.comps, c)
	return uint64(len(k.comps) - 1)
}

// Component returns the registered component with the given id.
func (k *Kernel) Component(id uint64) SnapComponent {
	if id >= uint64(len(k.comps)) {
		panic(fmt.Sprintf("kernel: no snapshot component %d (have %d)", id, len(k.comps)))
	}
	return k.comps[id]
}

// Tasks returns all tasks ever created (including exited).
func (k *Kernel) Tasks() []*Task { return k.tasks }

// TaskByPID looks a task up.
func (k *Kernel) TaskByPID(pid int) *Task { return k.byPID[pid] }

// NewTask creates a task and makes it runnable. affinity 0 means "all
// CPUs". The task starts running when the scheduler places it.
func (k *Kernel) NewTask(name string, policy SchedPolicy, rtprio int, affinity CPUMask, b Behavior) *Task {
	if b == nil {
		panic("kernel: task needs a behavior")
	}
	if (policy == SchedFIFO || policy == SchedRR) && (rtprio < MinRTPrio || rtprio > MaxRTPrio) {
		panic(fmt.Sprintf("kernel: RT priority %d out of range", rtprio))
	}
	if affinity == 0 {
		affinity = k.online
	}
	t := &Task{
		PID:      k.next,
		Name:     name,
		Policy:   policy,
		RTPrio:   rtprio,
		affinity: affinity,
		kern:     k,
		state:    TaskRunnable,
		behavior: b,
		rng:      k.rng.Fork(),
	}
	t.sliceLeft = timesliceFor(t)
	k.next++
	k.tasks = append(k.tasks, t)
	k.byPID[t.PID] = t
	if k.started {
		k.makeRunnable(t, nil)
	}
	return t
}

// SetTaskAffinity changes a task's CPU affinity (sched_setaffinity). If
// the task is running on a CPU no longer in its effective mask it is
// migrated at the next opportunity.
func (k *Kernel) SetTaskAffinity(t *Task, m CPUMask) error {
	if m&k.online == 0 {
		return fmt.Errorf("kernel: affinity %s has no online CPU", m)
	}
	t.affinity = m
	k.enforceTaskPlacement(t)
	return nil
}

// Start schedules the periodic machinery (local timer ticks, bus
// contention resampling) and dispatches the initial tasks. It must be
// called exactly once, before Eng.Run.
func (k *Kernel) Start() {
	if k.started {
		panic("kernel: Start called twice")
	}
	k.started = true
	for _, c := range k.cpus {
		// Each CPU's periodic machinery is anchored on that CPU's shard:
		// the hint is sticky and inherited by everything these timers
		// schedule, so on the sharded engine each CPU's event stream
		// stays on its own sub-queue unless it explicitly crosses CPUs.
		k.Eng.SetShardHint(c.ID)
		c.startLocalTimer()
		c.startBusSampling()
	}
	// Machine-global events (IRQ0 fan-out, invariant sampling, initial
	// task placement) anchor on shard 0.
	k.Eng.SetShardHint(0)
	// The global timer (IRQ0) fires at HZ, independent of the per-CPU
	// local APIC timers — but phase-locked with CPU 0's local tick
	// (both at exact multiples of the period), so the simultaneity is
	// pinned: the local APIC tick is dispatched before the PIT's IRQ0,
	// in schedule order. See "Tie-break determinism" in DESIGN.md §8.
	k.Eng.AfterPinnedTagged(k.tickPeriod(), evGlobalTick.Tag(0, 0, 0), k.globalTick)
	if k.Cfg.InvariantPeriod > 0 {
		k.SampleInvariants(k.Cfg.InvariantPeriod, nil)
	}
	// Make the pre-created tasks runnable in creation order.
	for _, t := range k.tasks {
		if t.state == TaskRunnable {
			k.makeRunnable(t, nil)
		}
	}
}

// tickPeriod is the machine tick period (the global timer fires at the
// same HZ as the per-CPU local timers, phase-locked with CPU 0's).
func (k *Kernel) tickPeriod() sim.Duration {
	return sim.Duration(int64(sim.Second) / int64(k.Cfg.LocalTimerHz))
}

// globalTick is the PIT interrupt (IRQ0) event body: raise the timer
// line and re-arm for the next period.
func (k *Kernel) globalTick() {
	k.Raise(k.timerIRQ)
	k.Eng.AfterPinnedTagged(k.tickPeriod(), evGlobalTick.Tag(0, 0, 0), k.globalTick)
}

// makeRunnable enqueues t and kicks the chosen CPU. preferred, when
// non-nil, is used instead of asking the scheduler to place the task.
func (k *Kernel) makeRunnable(t *Task, preferred *CPU) {
	t.state = TaskRunnable
	t.lastQueue = k.Now()
	c := preferred
	if c == nil {
		c = k.sched.PlaceWake(t)
	}
	t.cpu = c
	k.sched.Enqueue(t, c)
	k.Trace.Wakeup(k.Now(), c.ID, t.PID, t.Name, c.ID)
	c.kick(t)
}

// WakeTask transitions a blocked task to runnable (try_to_wake_up). The
// caller's CPU is charged the wakeup cost when ctx is non-nil.
func (k *Kernel) WakeTask(t *Task, ctx *CPU) {
	if t.state != TaskBlocked {
		return
	}
	if t.waitOn != nil {
		t.waitOn.dequeue(t)
		t.waitOn = nil
	}
	if ctx != nil {
		cost := k.Cfg.scale(k.Cfg.Timing.WakeupCost) //simlint:region sched wakeup-cost
		ctx.addWorkTop(cost)
	}
	k.makeRunnable(t, nil)
}

// WakeAll wakes every task blocked on wq.
func (k *Kernel) WakeAll(wq *WaitQueue, ctx *CPU) {
	for {
		t := wq.popFirst()
		if t == nil {
			return
		}
		t.waitOn = nil
		if ctx != nil {
			ctx.addWorkTop(k.Cfg.scale(k.Cfg.Timing.WakeupCost))
		}
		k.makeRunnable(t, nil)
	}
}

// WakeOne wakes the first waiter on wq, if any.
func (k *Kernel) WakeOne(wq *WaitQueue, ctx *CPU) *Task {
	t := wq.popFirst()
	if t == nil {
		return nil
	}
	t.waitOn = nil
	if ctx != nil {
		ctx.addWorkTop(k.Cfg.scale(k.Cfg.Timing.WakeupCost))
	}
	k.makeRunnable(t, nil)
	return t
}

// enforceTaskPlacement migrates a task whose effective affinity no longer
// allows its current CPU. Used by affinity changes and shield transitions.
func (k *Kernel) enforceTaskPlacement(t *Task) {
	eff := t.EffectiveAffinity()
	if eff == 0 {
		// Affinity entirely offline — leave the task where it is; the
		// scheduler will refuse to run it. Mirrors Linux's refusal to
		// strand a task with an impossible mask.
		return
	}
	switch t.state {
	case TaskRunning:
		if t.cpu != nil && !eff.Has(t.cpu.ID) {
			t.cpu.requestMigration(t)
		}
	case TaskRunnable:
		if t.cpu != nil && !eff.Has(t.cpu.ID) {
			k.sched.Dequeue(t)
			t.Migrated++
			k.Trace.Migrate(k.Now(), t.cpu.ID, t.PID, t.Name, t.cpu.ID, -1)
			k.makeRunnable(t, nil)
		}
	}
}

// IRQLines returns all registered interrupt lines.
func (k *Kernel) IRQLines() []*IRQLine { return k.irqs }
