package kernel

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestLoadAvgTracksRunnable(t *testing.T) {
	// Three always-runnable hogs on one CPU: the 1-minute load should
	// converge toward 3.
	cfg := testConfig(1)
	k := New(cfg, 42)
	for i := 0; i < 3; i++ {
		k.NewTask("hog", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
			return Compute(5 * sim.Millisecond)
		}))
	}
	k.Start()
	k.Eng.Run(sim.Time(120 * sim.Second))
	one, five, _ := k.LoadAvg()
	if one < 2.2 || one > 3.3 {
		t.Fatalf("1-min load = %.2f, want ≈3", one)
	}
	// After 120s the 5-min EMA has closed ~1/3 of the gap to 3.
	if five < 0.7 || five > 3.3 {
		t.Fatalf("5-min load = %.2f, want ≈1 after 120s", five)
	}
}

func TestLoadAvgIdleDecays(t *testing.T) {
	cfg := testConfig(1)
	k := New(cfg, 42)
	tk := k.NewTask("burst", SchedOther, 0, 0, &onceBehavior{actions: []Action{
		Compute(30 * sim.Second),
	}})
	k.Start()
	k.Eng.Run(sim.Time(30 * sim.Second))
	one1, _, _ := k.LoadAvg()
	if one1 < 0.3 {
		t.Fatalf("load while busy = %.2f", one1)
	}
	_ = tk
	// Two idle minutes: load decays substantially.
	k.Eng.Run(k.Now() + sim.Time(120*sim.Second))
	one2, _, _ := k.LoadAvg()
	if one2 > one1/2 {
		t.Fatalf("load did not decay: %.2f -> %.2f", one1, one2)
	}
}

func TestProcLoadavgFile(t *testing.T) {
	k := New(testConfig(1), 42)
	k.Start()
	k.Eng.Run(sim.Time(10 * sim.Second))
	out, err := k.FS.Read("/proc/loadavg")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ".") || !strings.Contains(out, "/") {
		t.Fatalf("/proc/loadavg = %q", out)
	}
}
