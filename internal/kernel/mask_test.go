package kernel

import (
	"testing"
	"testing/quick"
)

func TestMaskBasics(t *testing.T) {
	m := MaskOf(0, 2, 5)
	if !m.Has(0) || m.Has(1) || !m.Has(2) || !m.Has(5) {
		t.Fatalf("MaskOf wrong: %s", m)
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d", m.Count())
	}
	if m.First() != 0 {
		t.Fatalf("First = %d", m.First())
	}
	if got := m.Without(0).First(); got != 2 {
		t.Fatalf("First after Without = %d", got)
	}
	if CPUMask(0).First() != -1 {
		t.Fatal("First of empty should be -1")
	}
	if got := m.With(1); !got.Has(1) {
		t.Fatal("With failed")
	}
	cpus := m.CPUs()
	if len(cpus) != 3 || cpus[0] != 0 || cpus[1] != 2 || cpus[2] != 5 {
		t.Fatalf("CPUs = %v", cpus)
	}
	if m.Has(-1) || m.Has(64) {
		t.Fatal("Has out of range should be false")
	}
}

func TestMaskAll(t *testing.T) {
	if MaskAll(0) != 0 || MaskAll(-1) != 0 {
		t.Fatal("MaskAll of non-positive should be empty")
	}
	if MaskAll(2) != 3 {
		t.Fatalf("MaskAll(2) = %s", MaskAll(2))
	}
	if MaskAll(64) != ^CPUMask(0) || MaskAll(100) != ^CPUMask(0) {
		t.Fatal("MaskAll should saturate at 64")
	}
}

func TestMaskSetAlgebra(t *testing.T) {
	a, b := MaskOf(0, 1), MaskOf(1, 2)
	if a.Intersect(b) != MaskOf(1) {
		t.Fatal("Intersect")
	}
	if a.Union(b) != MaskOf(0, 1, 2) {
		t.Fatal("Union")
	}
	if a.Diff(b) != MaskOf(0) {
		t.Fatal("Diff")
	}
	if !MaskOf(1).SubsetOf(a) || a.SubsetOf(b) {
		t.Fatal("SubsetOf")
	}
	if !CPUMask(0).Empty() || a.Empty() {
		t.Fatal("Empty")
	}
}

func TestMaskStringAndParse(t *testing.T) {
	cases := []struct {
		m CPUMask
		s string
	}{
		{MaskOf(0, 1), "3"},
		{MaskOf(1), "2"},
		{MaskOf(4, 5), "30"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.s {
			t.Errorf("String(%d) = %q, want %q", uint64(c.m), got, c.s)
		}
		back, err := ParseMask(c.s)
		if err != nil || back != c.m {
			t.Errorf("ParseMask(%q) = %s, %v", c.s, back, err)
		}
	}
	for _, s := range []string{"0x3\n", " 3 ", "0X3"} {
		if m, err := ParseMask(s); err != nil || m != 3 {
			t.Errorf("ParseMask(%q) = %v, %v", s, m, err)
		}
	}
	for _, s := range []string{"", "zz", "0x", "-1"} {
		if _, err := ParseMask(s); err == nil {
			t.Errorf("ParseMask(%q) should fail", s)
		}
	}
}

func TestQuickMaskRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		m := CPUMask(v)
		back, err := ParseMask(m.String())
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveAffinitySemantics(t *testing.T) {
	online := MaskAll(4)
	cases := []struct {
		name                       string
		affinity, shielded, expect CPUMask
	}{
		{"no shield", MaskAll(4), 0, MaskAll(4)},
		{"shielded removed", MaskAll(4), MaskOf(1), MaskOf(0, 2, 3)},
		{"opt-in keeps shielded", MaskOf(1), MaskOf(1), MaskOf(1)},
		{"opt-in multiple", MaskOf(1, 2), MaskOf(1, 2, 3), MaskOf(1, 2)},
		{"mixed loses shielded", MaskOf(0, 1), MaskOf(1), MaskOf(0)},
		{"offline pruned", MaskOf(0, 5), 0, MaskOf(0)},
		{"all offline", MaskOf(6, 7), 0, 0},
	}
	for _, c := range cases {
		if got := EffectiveAffinity(c.affinity, c.shielded, online); got != c.expect {
			t.Errorf("%s: EffectiveAffinity(%s,%s) = %s, want %s",
				c.name, c.affinity, c.shielded, got, c.expect)
		}
	}
}

// Property (the paper's core invariant): the effective affinity never
// includes a shielded CPU unless the original affinity was a subset of
// the shield set; and it is always a subset of affinity∩online.
func TestQuickEffectiveAffinityInvariant(t *testing.T) {
	online := MaskAll(8)
	f := func(aff, sh uint8) bool {
		a, s := CPUMask(aff), CPUMask(sh)
		eff := EffectiveAffinity(a, s, online)
		if !eff.SubsetOf(a & online) {
			return false
		}
		if a&online == 0 {
			return eff == 0
		}
		optIn := (a & online).SubsetOf(s)
		if !optIn && eff.Intersect(s) != 0 {
			return false
		}
		// Never strand a task that has an online CPU.
		return eff != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
