package kernel

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestShieldRequiresSupport(t *testing.T) {
	k := New(StandardLinux24(2, 1.0, false), 42)
	if err := k.SetShieldProcs(MaskOf(1)); err != ErrNoShieldSupport {
		t.Fatalf("err = %v, want ErrNoShieldSupport", err)
	}
	if k.FS.Exists("/proc/shield/procs") {
		t.Fatal("/proc/shield must not exist on a stock kernel")
	}
}

func TestShieldMaskValidation(t *testing.T) {
	k := New(testConfig(2), 42)
	if err := k.SetShieldProcs(MaskOf(5)); err == nil {
		t.Fatal("shielding an offline CPU should fail")
	}
	if err := k.SetShieldProcs(MaskOf(1)); err != nil {
		t.Fatal(err)
	}
	if k.ShieldProcs() != MaskOf(1) {
		t.Fatalf("ShieldProcs = %s", k.ShieldProcs())
	}
}

func TestShieldProcsMigratesRunningTask(t *testing.T) {
	// A task running on CPU1 when CPU1 becomes shielded must be pushed
	// off dynamically (§3: "processes currently assigned to the shielded
	// processor ... will be migrated to other CPUs").
	k := New(testConfig(2), 42)
	// The filler is created first so it grabs CPU0 and the hog lands on
	// the then-idle CPU1.
	k.NewTask("filler", SchedOther, 0, MaskOf(0), BehaviorFunc(func(*Task) Action {
		return Compute(5 * sim.Millisecond)
	}))
	hog := k.NewTask("hog", SchedOther, 0, MaskOf(0, 1), BehaviorFunc(func(*Task) Action {
		return Compute(5 * sim.Millisecond)
	}))
	k.Start()
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	if hog.CPU() != 1 {
		t.Skipf("setup: hog on cpu%d, wanted cpu1", hog.CPU())
	}
	k.Eng.Schedule(k.Now()+1, func() {
		if err := k.SetShieldProcs(MaskOf(1)); err != nil {
			t.Errorf("SetShieldProcs: %v", err)
		}
	})
	k.Eng.Run(k.Now() + sim.Time(50*sim.Millisecond))
	if hog.CPU() == 1 {
		t.Fatalf("hog still on shielded cpu1 (state %v)", hog.State())
	}
	if hog.Migrated == 0 {
		t.Fatal("hog was never migrated")
	}
}

func TestShieldOptInTaskStays(t *testing.T) {
	// A task whose affinity contains ONLY shielded CPUs keeps running
	// there — that is the opt-in mechanism for RT tasks.
	k := New(testConfig(2), 42)
	rt := k.NewTask("rt", SchedFIFO, 90, MaskOf(1), BehaviorFunc(func(*Task) Action {
		return Compute(sim.Millisecond)
	}))
	k.Start()
	k.Eng.Schedule(sim.Time(5*sim.Millisecond), func() {
		if err := k.SetShieldAll(MaskOf(1)); err != nil {
			t.Errorf("SetShieldAll: %v", err)
		}
	})
	k.Eng.Run(sim.Time(100 * sim.Millisecond))
	if rt.CPU() != 1 {
		t.Fatalf("opted-in RT task pushed off shielded CPU to cpu%d", rt.CPU())
	}
	if rt.State() == TaskExited {
		t.Fatal("rt task should still be running")
	}
}

func TestShieldIRQsReroutesNewDeliveries(t *testing.T) {
	k := New(testConfig(2), 42)
	var cpus []int
	line := k.RegisterIRQ("eth0", 0, constWork(sim.Microsecond), func(c *CPU) {
		cpus = append(cpus, c.ID)
	})
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() {
		if err := k.SetShieldIRQs(MaskOf(1)); err != nil {
			t.Errorf("SetShieldIRQs: %v", err)
		}
	})
	for i := 2; i < 12; i++ {
		k.Eng.Schedule(sim.Time(i)*sim.Time(sim.Millisecond), func() { k.Raise(line) })
	}
	k.Eng.Run(sim.Time(50 * sim.Millisecond))
	if len(cpus) != 10 {
		t.Fatalf("handled %d interrupts, want 10", len(cpus))
	}
	for _, c := range cpus {
		if c == 1 {
			t.Fatal("interrupt delivered to shielded cpu1")
		}
	}
}

func TestShieldIRQOptIn(t *testing.T) {
	// An IRQ whose affinity is exactly the shielded CPU still goes there
	// (the RT device the shielded CPU serves).
	k := New(testConfig(2), 42)
	var cpus []int
	line := k.RegisterIRQ("rcim", MaskOf(1), constWork(sim.Microsecond), func(c *CPU) {
		cpus = append(cpus, c.ID)
	})
	k.Start()
	k.Eng.Schedule(sim.Time(sim.Millisecond), func() {
		if err := k.SetShieldIRQs(MaskOf(1)); err != nil {
			t.Errorf("shield: %v", err)
		}
	})
	for i := 2; i < 6; i++ {
		k.Eng.Schedule(sim.Time(i)*sim.Time(sim.Millisecond), func() { k.Raise(line) })
	}
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	if len(cpus) != 4 {
		t.Fatalf("handled %d, want 4", len(cpus))
	}
	for _, c := range cpus {
		if c != 1 {
			t.Fatalf("opted-in irq went to cpu%d, want shielded cpu1", c)
		}
	}
}

func TestShieldLocalTimerStopsTicks(t *testing.T) {
	k := New(testConfig(2), 42)
	k.Start()
	k.Eng.Schedule(sim.Time(100*sim.Millisecond), func() {
		if err := k.SetShieldLTimer(MaskOf(1)); err != nil {
			t.Errorf("shield ltmr: %v", err)
		}
	})
	k.Eng.Run(sim.Time(sim.Second))
	c0, c1 := k.CPU(0), k.CPU(1)
	if c0.TicksHandled < 95 {
		t.Fatalf("cpu0 ticks = %d, want ~100 (unshielded)", c0.TicksHandled)
	}
	if c1.TicksHandled > 12 {
		t.Fatalf("cpu1 ticks = %d, want ~10 (tick stops at 100ms)", c1.TicksHandled)
	}
	// Unshield: ticks resume.
	before := c1.TicksHandled
	k.Eng.Schedule(k.Now()+1, func() {
		if err := k.SetShieldLTimer(0); err != nil {
			t.Errorf("unshield ltmr: %v", err)
		}
	})
	k.Eng.Run(k.Now() + sim.Time(500*sim.Millisecond))
	if c1.TicksHandled < before+45 {
		t.Fatalf("cpu1 ticks after unshield = %d (was %d), tick did not resume", c1.TicksHandled, before)
	}
}

func TestProcShieldFiles(t *testing.T) {
	k := New(testConfig(2), 42)
	k.Start()
	if got, err := k.FS.Read("/proc/shield/procs"); err != nil || got != "0\n" {
		t.Fatalf("initial procs = %q, %v", got, err)
	}
	if err := k.FS.Write("/proc/shield/all", "2\n"); err != nil {
		t.Fatal(err)
	}
	if k.ShieldProcs() != MaskOf(1) || k.ShieldIRQs() != MaskOf(1) || k.ShieldLTimer() != MaskOf(1) {
		t.Fatalf("masks after /proc/shield/all write: %s %s %s",
			k.ShieldProcs(), k.ShieldIRQs(), k.ShieldLTimer())
	}
	if got, _ := k.FS.Read("/proc/shield/all"); got != "2\n" {
		t.Fatalf("read back all = %q", got)
	}
	if !k.ShieldedFor(1) || k.ShieldedFor(0) {
		t.Fatal("ShieldedFor wrong")
	}
	// Partial shielding reads back 0 from "all".
	if err := k.FS.Write("/proc/shield/irqs", "0"); err != nil {
		t.Fatal(err)
	}
	if got, _ := k.FS.Read("/proc/shield/all"); got != "0\n" {
		t.Fatalf("all after partial unshield = %q", got)
	}
	if err := k.FS.Write("/proc/shield/procs", "xyz"); err == nil {
		t.Fatal("garbage shield mask accepted")
	}
}

func TestProcVersionAndInterrupts(t *testing.T) {
	k := New(testConfig(1), 42)
	k.RegisterIRQ("eth0", 0, constWork(sim.Microsecond), nil)
	v, err := k.FS.Read("/proc/version")
	if err != nil || !strings.Contains(v, "RedHawk-1.4") {
		t.Fatalf("version = %q, %v", v, err)
	}
	ints, err := k.FS.Read("/proc/interrupts")
	if err != nil || !strings.Contains(ints, "eth0") {
		t.Fatalf("interrupts = %q, %v", ints, err)
	}
	info, err := k.FS.Read("/proc/cpuinfo")
	if err != nil || !strings.Contains(info, "processor\t: 0") {
		t.Fatalf("cpuinfo = %q, %v", info, err)
	}
}

// Property: after any sequence of shield operations, no runnable or
// running non-opted-in task sits on a shielded CPU once the system
// settles.
func TestQuickShieldPlacementInvariant(t *testing.T) {
	f := func(shieldBits uint8, seed uint16) bool {
		cfg := testConfig(4)
		k := New(cfg, uint64(seed)+1)
		for i := 0; i < 6; i++ {
			k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
				return Compute(2 * sim.Millisecond)
			}))
		}
		k.Start()
		mask := CPUMask(shieldBits) & MaskAll(4)
		k.Eng.Schedule(sim.Time(5*sim.Millisecond), func() {
			if err := k.SetShieldProcs(mask); err != nil {
				t.Error(err)
			}
		})
		k.Eng.Run(sim.Time(40 * sim.Millisecond))
		for _, tk := range k.Tasks() {
			if tk.State() == TaskExited {
				continue
			}
			if tk.State() == TaskRunning && mask.Has(tk.CPU()) && !tk.Affinity().SubsetOf(mask) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
