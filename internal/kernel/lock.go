package kernel

import "repro/internal/sim"

// SpinLock models a kernel spinlock. In this simulator a lock is held by a
// CPU context (frame); a contended acquire spins, burning the waiter's CPU
// until the holder releases. The Big Kernel Lock is a SpinLock with
// sleep-release semantics handled by the syscall engine.
//
// Whether the lock disables interrupts while held is a property of the
// *section* (Segment.IRQsOff), not the lock, matching spin_lock vs
// spin_lock_irqsave usage in the kernel. §6.2 of the paper hinges on
// sections that do NOT disable interrupts being preempted by interrupt +
// bottom-half activity while holding the lock.
type SpinLock struct {
	Name string

	holder *CPU
	// waiters are CPUs spinning on this lock, FIFO. grant is invoked on
	// the waiter's CPU when the lock is handed over.
	waiters []*lockWaiter

	// Contention statistics.
	Acquisitions uint64
	Contentions  uint64
	// TotalSpin is the aggregate virtual time CPUs spent spinning.
	TotalSpin sim.Duration
	// MaxHold is the longest observed hold (including time the holder
	// was preempted by interrupts or bottom halves).
	MaxHold  sim.Duration
	heldAt   sim.Time
	heldOnce bool
}

type lockWaiter struct {
	cpu   *CPU
	since sim.Time
	// active reports whether the CPU is actively spinning right now
	// (its spin frame is on top). A CPU whose spin was preempted by
	// interrupt work cannot take a handover — a real spinlock would
	// simply stay free until somebody's test-and-set wins.
	active  func() bool
	granted func()
}

// NewSpinLock returns an unlocked spinlock.
func NewSpinLock(name string) *SpinLock { return &SpinLock{Name: name} }

// Held reports whether the lock is currently held.
func (l *SpinLock) Held() bool { return l.holder != nil }

// Holder returns the CPU holding the lock, or nil.
func (l *SpinLock) Holder() *CPU { return l.holder }

// Waiters returns the number of spinning CPUs.
func (l *SpinLock) Waiters() int { return len(l.waiters) }

// tryAcquire attempts an uncontended acquire by cpu. It reports success.
func (l *SpinLock) tryAcquire(cpu *CPU, now sim.Time) bool {
	if l.holder != nil {
		return false
	}
	l.holder = cpu
	l.heldAt = now
	l.heldOnce = true
	l.Acquisitions++
	return true
}

// addWaiter queues a spinning CPU; granted runs when the lock is handed
// to it (the handover performs the acquire bookkeeping).
func (l *SpinLock) addWaiter(cpu *CPU, now sim.Time, active func() bool, granted func()) {
	l.Contentions++
	l.waiters = append(l.waiters, &lockWaiter{cpu: cpu, since: now, active: active, granted: granted})
}

// retryAcquire is called when a preempted spinner surfaces again and the
// lock may have been freed meanwhile: it attempts the test-and-set and,
// on success, removes the waiter entry and performs the acquire
// bookkeeping. Reports success.
func (l *SpinLock) retryAcquire(cpu *CPU, now sim.Time, since sim.Time) bool {
	if l.holder != nil {
		return false
	}
	l.removeWaiter(cpu)
	l.holder = cpu
	l.heldAt = now
	l.heldOnce = true
	l.Acquisitions++
	l.TotalSpin += now.Sub(since)
	return true
}

// removeWaiter deletes a queued waiter for the given CPU (used when the
// spin is abandoned, e.g. task killed). Reports whether one was removed.
func (l *SpinLock) removeWaiter(cpu *CPU) bool {
	for i, w := range l.waiters {
		if w.cpu == cpu {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// release drops the lock and hands it to the first *actively spinning*
// waiter, if any. The waiter's granted callback runs immediately (same
// virtual instant): spinners observe the release without delay. Waiters
// whose spin was preempted by interrupt work are skipped — the lock stays
// free for them to retry when they surface (retryAcquire), exactly like a
// real test-and-set loop. c is the releasing CPU (always the holder's
// context in this model); it carries the trace buffer for the release
// tracepoint.
func (l *SpinLock) release(now sim.Time, c *CPU) {
	if l.holder == nil {
		panic("kernel: release of unheld lock " + l.Name)
	}
	hold := now.Sub(l.heldAt)
	if hold > l.MaxHold {
		l.MaxHold = hold
	}
	c.kern.Trace.LockRelease(now, c.ID, l.Name, hold)
	l.holder = nil
	for i, w := range l.waiters {
		if w.active != nil && !w.active() {
			continue
		}
		l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
		l.holder = w.cpu
		l.heldAt = now
		l.Acquisitions++
		l.TotalSpin += now.Sub(w.since)
		w.granted()
		return
	}
}
