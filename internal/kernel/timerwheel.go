package kernel

import "repro/internal/sim"

// timerWheel is the 2.4 kernel timer subsystem: a cascading hierarchy of
// buckets indexed by jiffies. Timers are added with a jiffy expiry; the
// base CPU's local timer tick advances the wheel, and expired timers run
// from the TIMER bottom half — so timer callbacks share the softirq
// latency characteristics everything else in this model has.
//
// Kernels with the POSIX timers patch (Config.HighResTimers) bypass the
// wheel for precise expiries; the wheel still exists for legacy users.
//
// The implementation follows the classic tvec layout: the innermost
// vector holds one bucket per jiffy for the next 256 jiffies; higher
// vectors hold exponentially coarser ranges and cascade down as the
// index wraps.
type timerWheel struct {
	k *Kernel
	// jiffies is the current tick count.
	jiffies uint64
	// tv1..tv5: 256 + 4×64 buckets, as in kernel/timer.c.
	tv1 [256][]*KTimer
	tv  [4][64][]*KTimer
	// pendingRun holds timers that expired on this tick and run from
	// the timer bottom half.
	pendingRun []*KTimer

	// Added counts add_timer calls; Fired counts expirations.
	Added uint64
	Fired uint64
}

// KTimer is one kernel timer (struct timer_list).
type KTimer struct {
	// expires is the absolute jiffy.
	expires uint64
	// fn runs in timer-bottom-half context on the base CPU.
	fn func()
	// active is cleared on expiry or deletion.
	active bool
	// tag is the serialisable identity of fn for snapshots (zero for
	// timers armed through the untagged path, which cannot cross one).
	tag sim.EventTag
}

// Active reports whether the timer is pending.
func (t *KTimer) Active() bool { return t != nil && t.active }

func newTimerWheel(k *Kernel) *timerWheel {
	return &timerWheel{k: k}
}

// AddTimer schedules fn to run `ticks` jiffies from now (minimum 1, as
// in the kernel: a timeout of 0 still waits for the next tick).
func (w *timerWheel) AddTimer(ticks uint64, fn func()) *KTimer {
	return w.addTimer(ticks, fn, sim.EventTag{})
}

func (w *timerWheel) addTimer(ticks uint64, fn func(), tag sim.EventTag) *KTimer {
	if ticks == 0 {
		ticks = 1
	}
	t := &KTimer{expires: w.jiffies + ticks, fn: fn, active: true, tag: tag}
	w.Added++
	w.insert(t)
	return t
}

// DelTimer cancels a pending timer (del_timer).
func (w *timerWheel) DelTimer(t *KTimer) {
	if t != nil {
		t.active = false
	}
}

// DelTimers cancels a batch of timers in one pass — the bulk analogue
// of DelTimer for teardown paths that drop many timers at once (a task
// exiting with queued timeouts, a device driver unwinding). Like
// DelTimer it is lazy: cancelled timers stay in their buckets and are
// skipped when their bucket expires or cascades. Already-inactive and
// nil entries are no-ops. It returns how many timers were actually
// pending.
func (w *timerWheel) DelTimers(ts []*KTimer) int {
	n := 0
	for _, t := range ts {
		if t.Active() {
			t.active = false
			n++
		}
	}
	return n
}

// insert places t in the right vector for its distance from now.
func (w *timerWheel) insert(t *KTimer) {
	delta := t.expires - w.jiffies
	switch {
	case delta < 256:
		idx := t.expires & 255
		w.tv1[idx] = append(w.tv1[idx], t)
	case delta < 1<<14:
		idx := (t.expires >> 8) & 63
		w.tv[0][idx] = append(w.tv[0][idx], t)
	case delta < 1<<20:
		idx := (t.expires >> 14) & 63
		w.tv[1][idx] = append(w.tv[1][idx], t)
	case delta < 1<<26:
		idx := (t.expires >> 20) & 63
		w.tv[2][idx] = append(w.tv[2][idx], t)
	default:
		idx := (t.expires >> 26) & 63
		w.tv[3][idx] = append(w.tv[3][idx], t)
	}
}

// Tick advances the wheel by one jiffy and returns the timers that
// expired (they must then be run from bottom-half context).
func (w *timerWheel) Tick() []*KTimer {
	w.jiffies++
	idx := w.jiffies & 255
	if idx == 0 {
		w.cascade()
	}
	expired := w.tv1[idx]
	w.tv1[idx] = nil
	var out []*KTimer
	for _, t := range expired {
		if !t.active {
			continue
		}
		if t.expires > w.jiffies {
			// Re-inserted timer from a cascade landing in a future
			// lap of tv1.
			w.insert(t)
			continue
		}
		t.active = false
		w.Fired++
		out = append(out, t)
	}
	return out
}

// cascade migrates one bucket from each higher vector down when the
// lower vector wraps, kernel/timer.c-style.
func (w *timerWheel) cascade() {
	shift := uint(8)
	for lvl := 0; lvl < 4; lvl++ {
		idx := (w.jiffies >> shift) & 63
		bucket := w.tv[lvl][idx]
		w.tv[lvl][idx] = nil
		for _, t := range bucket {
			if t.active {
				w.insert(t)
			}
		}
		if idx != 0 {
			break // only cascade further when this level also wrapped
		}
		shift += 6
	}
}

// Jiffies returns the current tick count.
func (w *timerWheel) Jiffies() uint64 { return w.jiffies }

// --- kernel integration ---

// AddTimer exposes the wheel: fn runs in timer-bottom-half context on
// the base CPU after `d` of virtual time, rounded up to jiffies. This is
// what legacy (non-HighResTimers) sleeps use.
func (k *Kernel) AddTimer(d sim.Duration, fn func()) *KTimer {
	return k.AddTimerTagged(d, sim.EventTag{}, fn)
}

// AddTimerTagged is AddTimer with a serialisable callback identity: tag
// names the registered rebuilder that reconstructs fn on restore, which
// lets the timer survive a snapshot while still queued in the wheel.
func (k *Kernel) AddTimerTagged(d sim.Duration, tag sim.EventTag, fn func()) *KTimer {
	jiffy := int64(sim.Second) / int64(k.Cfg.LocalTimerHz)
	ticks := uint64(int64(d) / jiffy)
	if int64(d)%jiffy != 0 {
		ticks++
	}
	// +1 as in the kernel: you always wait out the current partial tick.
	return k.wheel.addTimer(ticks+1, fn, tag)
}

// DelTimer cancels a wheel timer.
func (k *Kernel) DelTimer(t *KTimer) { k.wheel.DelTimer(t) }

// DelTimers bulk-cancels wheel timers; see timerWheel.DelTimers.
func (k *Kernel) DelTimers(ts []*KTimer) int { return k.wheel.DelTimers(ts) }

// Jiffies returns the kernel tick count.
func (k *Kernel) Jiffies() uint64 { return k.wheel.Jiffies() }

// loadavg holds the classic exponentially-damped load averages,
// recomputed every 5 seconds of jiffies from the runnable+running count
// (kernel/timer.c calc_load).
type loadavg struct {
	one, five, fifteen float64
}

// damping factors per 5s interval: exp(-5/60), exp(-5/300), exp(-5/900).
const (
	loadExp1  = 0.9200
	loadExp5  = 0.9835
	loadExp15 = 0.9945
)

// calcLoad updates the averages from the instantaneous active count.
func (l *loadavg) calcLoad(active int) {
	n := float64(active)
	l.one = l.one*loadExp1 + n*(1-loadExp1)
	l.five = l.five*loadExp5 + n*(1-loadExp5)
	l.fifteen = l.fifteen*loadExp15 + n*(1-loadExp15)
}

// activeTasks counts runnable plus running tasks, as calc_load does.
func (k *Kernel) activeTasks() int {
	n := k.sched.NrRunnable()
	for _, c := range k.cpus {
		if c.cur != nil && c.cur.state == TaskRunning {
			n++
		}
	}
	return n
}

// LoadAvg returns the 1/5/15-minute load averages.
func (k *Kernel) LoadAvg() (one, five, fifteen float64) {
	return k.load.one, k.load.five, k.load.fifteen
}

// runWheelTick is called by the base CPU's timer tick handler: advance
// the wheel and queue expired timers for the timer bottom half.
func (c *CPU) runWheelTick() {
	w := c.kern.wheel
	// calc_load every 5 seconds of jiffies.
	if interval := uint64(5 * c.kern.Cfg.LocalTimerHz); w.jiffies%interval == interval-1 {
		c.kern.load.calcLoad(c.kern.activeTasks())
	}
	expired := w.Tick()
	if len(expired) == 0 {
		return
	}
	c.kern.Trace.TimerExpire(c.kern.Now(), c.ID, len(expired), w.jiffies)
	w.pendingRun = append(w.pendingRun, expired...)
	// The timer bottom half costs real CPU per expired timer and then
	// runs the callbacks. Callbacks execute at softirq completion on
	// this CPU (wakeups from timer context, as in run_timer_list).
	c.RaiseSoftirq(SoftirqTimer, sim.Duration(len(expired))*c.kern.Cfg.scale(2*sim.Microsecond))
	run := w.pendingRun
	w.pendingRun = nil
	for _, t := range run {
		t.fn()
	}
}
