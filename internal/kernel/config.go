package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// Config selects the kernel variant and machine being simulated. Each
// field maps to one of the patches or hardware properties the paper
// discusses; the preset constructors below reproduce the exact systems
// used in the evaluation.
type Config struct {
	Name string

	// --- machine ---

	// PhysCPUs is the number of physical processor packages/cores.
	PhysCPUs int
	// HyperThreading splits each physical CPU into two logical CPUs that
	// share an execution unit (§5: a major jitter source on the Xeon).
	HyperThreading bool
	// CPUFreqGHz scales the base costs below (they are specified for a
	// 1 GHz processor).
	CPUFreqGHz float64

	// --- kernel patches (§4) ---

	// Preemptible enables the MontaVista preemption patch: a process may
	// be preempted inside the kernel whenever it holds no spinlock and
	// preemption is not explicitly disabled.
	Preemptible bool
	// LowLatency enables Andrew Morton's low-latency patches: the longest
	// kernel critical sections are broken up with explicit scheduling
	// points, bounding non-preemptible region length.
	LowLatency bool
	// O1Scheduler selects Ingo Molnar's O(1) scheduler instead of the
	// legacy 2.4 goodness() scheduler.
	O1Scheduler bool
	// ShieldSupport enables the /proc/shield interface (the paper's
	// contribution). Writes to /proc/shield fail without it.
	ShieldSupport bool
	// FixSpinlockBH enables the RedHawk fix from §6.2: bottom halves are
	// not allowed to preempt a critical section that holds a contended
	// spinlock (the simulator defers softirq execution on a CPU whose
	// interrupted context holds a spinlock).
	FixSpinlockBH bool
	// BKLHoldReduction enables the RedHawk "BKL hold time reduction"
	// work (§1): most file-system paths no longer take the Big Kernel
	// Lock, and those that do hold it briefly. Without it (stock 2.4) a
	// noticeable fraction of fs syscalls serialize on the BKL for their
	// whole duration.
	BKLHoldReduction bool
	// BKLIoctlFlag enables the RedHawk change from §6.3: the generic
	// ioctl path consults a per-driver flag and skips the Big Kernel
	// Lock for multithreaded drivers (like the RCIM).
	BKLIoctlFlag bool
	// HighResTimers enables the POSIX timers patch (§4): sleeps and
	// timer expirations get nanosecond granularity. Without it (stock
	// 2.4) every sleep is rounded up to the next jiffy plus one — a
	// task asking for 100µs sleeps for up to two 10ms ticks, which is
	// why high-frequency periodic tasks were impossible on stock 2.4.
	HighResTimers bool
	// SoftirqDaemon enables ksoftirqd-style overflow handling (part of
	// RedHawk's softirq changes, §1): when one bottom-half pass exhausts
	// its budget, the remainder is handed to a per-CPU kernel thread
	// that competes as an ordinary SCHED_OTHER task instead of being
	// retried in interrupt context — so a softirq storm cannot
	// monopolise a CPU against runnable tasks.
	SoftirqDaemon bool
	// LocalTimerHz is the local timer interrupt frequency (100 in 2.4).
	LocalTimerHz int
	// IRQRoundRobin distributes each interrupt line's deliveries over
	// its allowed CPUs round-robin (IO-APIC lowest-priority mode). The
	// default (false) is the static 2.4 behaviour: every delivery goes
	// to the first allowed CPU, which is why stock SMP boxes piled all
	// device interrupt load onto CPU 0.
	IRQRoundRobin bool
	// CritSectionCap, when non-zero, bounds the length of any single
	// kernel critical section: syscall work regions longer than the cap
	// are split into shorter regions with scheduling points between
	// them. This is how the low-latency patches (and RedHawk's further
	// low-latency work) are modelled — they rewrote the long algorithms
	// so preemption is disabled for shorter stretches (§6).
	CritSectionCap sim.Duration

	// TiebreakSalt, when non-zero, installs a tie-break perturbation on
	// the machine's event engine (sim.Engine.PerturbTiebreaks):
	// same-instant events without a pinned arbitration dispatch in a
	// seeded permutation of their FIFO order. It is a verification
	// knob, not a model parameter — a correct model produces
	// bit-identical figures for every salt, and cmd/reprocheck -perturb
	// fails if one does not. The default (0) is plain FIFO.
	TiebreakSalt uint64

	// EventQueue selects the event-queue implementation backing the
	// machine's engine: sim.QueueLadder (the default when empty) or
	// sim.QueueHeap, the reference binary heap kept for A/B comparison
	// (rtsim -queue heap). Every implementation realises the identical
	// dispatch total order, so this knob can never change results —
	// core's golden tests run both to prove it.
	EventQueue sim.QueueKind

	// EngineShards, when EventQueue is sim.QueueSharded (or the process
	// default was switched to it), sets the sub-queue count; 0 uses the
	// sim package default. One shard per simulated CPU is the natural
	// grain (rtsim -engine=sharded -shards=N). Like EventQueue itself
	// this can never change results: the sharded queue merges shard
	// heads under the identical dispatch total order.
	EngineShards int

	// EventPool, when non-nil, supplies the engine's event-node free
	// list instead of a fresh private pool. The replication runner sets
	// this to one pool per worker goroutine so consecutive replications
	// reuse warm nodes; pooling is invisible in results. A pool must
	// never be shared across concurrently running machines.
	EventPool *sim.EventPool

	// InvariantPeriod, when non-zero, arms a periodic machine-state
	// invariant sampler at Start: every period the whole machine is
	// walked with CheckInvariants and a violation panics with the
	// evidence. Like TiebreakSalt this is a verification knob
	// (cmd/reprocheck -checkinv), not a model parameter: the sampler is
	// read-only and draws no randomness, so it cannot change results —
	// it only moves invariant detection from "wrong figure at the end"
	// to "panic at the first corrupt state".
	InvariantPeriod sim.Duration

	// Timing holds the calibration constants.
	Timing Timing
}

// NumCPUs returns the number of logical CPUs (physical × 2 when
// hyperthreading is enabled).
func (c *Config) NumCPUs() int {
	if c.HyperThreading {
		return 2 * c.PhysCPUs
	}
	return c.PhysCPUs
}

// OnlineMask returns the mask of all logical CPUs.
func (c *Config) OnlineMask() CPUMask { return MaskAll(c.NumCPUs()) }

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.PhysCPUs < 1 {
		return fmt.Errorf("kernel: config %q: need at least one CPU", c.Name)
	}
	if c.NumCPUs() > 64 {
		return fmt.Errorf("kernel: config %q: more than 64 logical CPUs", c.Name)
	}
	if c.CPUFreqGHz <= 0 {
		return fmt.Errorf("kernel: config %q: CPUFreqGHz must be positive", c.Name)
	}
	if c.LocalTimerHz <= 0 {
		return fmt.Errorf("kernel: config %q: LocalTimerHz must be positive", c.Name)
	}
	if c.Timing.HTSlowdown <= 0 || c.Timing.HTSlowdown > 1 {
		return fmt.Errorf("kernel: config %q: HTSlowdown must be in (0,1]", c.Name)
	}
	if !c.EventQueue.Valid() {
		return fmt.Errorf("kernel: config %q: unknown event queue %q", c.Name, c.EventQueue)
	}
	if c.EngineShards < 0 {
		return fmt.Errorf("kernel: config %q: EngineShards must be >= 0, got %d", c.Name, c.EngineShards)
	}
	return nil
}

// Lookahead returns the machine's cross-CPU latency floor: the smallest
// delay after which activity on one CPU can first become visible on
// another. It is the conservative-parallel lookahead horizon for the
// sharded engine — within a window of this width, per-CPU event streams
// are causally independent.
//
// The floor is the cheapest cross-CPU interaction the model contains,
// all scaled to the configured clock:
//
//   - IdleExit: an idle CPU kicked awake by a wakeup on another CPU
//     dispatches after the idle-exit latency (CPU.kick) — the model's
//     IPI-delivery analogue, and on every shipped config the minimum;
//   - WakeupCost: try_to_wake_up charged on the waking CPU before the
//     target runqueue changes;
//   - the local timer period: the global tick (IRQ0) fans out to CPUs
//     at tick granularity.
//
// A degenerate config (zero idle-exit/wakeup latency) returns 0, and
// the engine falls back to serial execution rather than windowing on a
// zero-width horizon — New enforces that, lookahead_test.go pins it.
func (c *Config) Lookahead() sim.Duration {
	tick := sim.Duration(int64(sim.Second) / int64(c.LocalTimerHz))
	min := c.scale(c.Timing.IdleExit)
	if w := c.scale(c.Timing.WakeupCost); w < min {
		min = w
	}
	if tick < min {
		min = tick
	}
	return min
}

// Timing holds every timing magnitude in the model, specified for a 1 GHz
// CPU and scaled by Config.CPUFreqGHz. The values are calibrated from the
// paper and from published 2.4-era measurements; see DESIGN.md §5.
type Timing struct {
	// IRQEntry is the hardware interrupt entry cost (vector dispatch,
	// register save) before the handler runs.
	IRQEntry sim.Duration
	// IRQExit is the return-from-interrupt cost.
	IRQExit sim.Duration
	// CtxSwitch is the bare context switch cost.
	CtxSwitch sim.Duration
	// CtxSwitchCachePenalty is extra cache-refill work charged to a task
	// after it is switched in (worst-case uniform [0, penalty]).
	CtxSwitchCachePenalty sim.Duration
	// TickHandler is the local timer interrupt handler cost (time
	// accounting, profiling hooks).
	TickHandler sim.Duration
	// ISRCachePenalty is extra cache-refill work charged to the
	// interrupted context per interrupt, modelling the cache pollution
	// an ISR causes beyond its own execution time.
	ISRCachePenalty sim.Duration
	// WakeupCost is the cost of try_to_wake_up plus runqueue insertion.
	WakeupCost sim.Duration
	// IdleExit is the latency to get out of the idle loop.
	IdleExit sim.Duration

	// SchedPickO1 is the constant cost of an O(1) scheduler decision.
	SchedPickO1 sim.Duration
	// SchedPickBase / SchedPickPerTask give the legacy 2.4 goodness()
	// scheduler cost: base + per-runnable-task.
	SchedPickBase    sim.Duration
	SchedPickPerTask sim.Duration

	// HTSlowdown is the execution rate of a logical CPU while its
	// hyperthread sibling is busy (§5: the execution unit becomes a
	// point of contention). 1.0 disables the effect.
	HTSlowdown float64
	// BusContention is the worst-case fractional slowdown caused by
	// memory/bus traffic from other physical CPUs (§5.2: the ~1.87%
	// jitter remaining on a shielded CPU). The instantaneous factor is
	// resampled around this ceiling every BusResample.
	BusContention float64
	BusResample   sim.Duration

	// SoftirqNetPerKB is the NET_RX/NET_TX softirq work per KB of
	// network traffic processed.
	SoftirqNetPerKB sim.Duration
	// SoftirqBlockPerOp is the block-device bottom half work per
	// completed disk request.
	SoftirqBlockPerOp sim.Duration
	// SoftirqMax bounds one softirq processing pass.
	SoftirqMax sim.Duration

	// PreemptiblePoint is the maximum delay until a preemption-enabled
	// kernel reaches a point where it can actually schedule (preempt
	// disabled windows in a preemptible kernel).
	PreemptiblePoint sim.Duration
	// LowLatencyPoint is the maximum non-preemptible stretch in a
	// kernel with the low-latency patches only (scheduling points
	// inserted into long loops; Clark Williams measured ~1.2 ms
	// worst-case with both patch sets [5]).
	LowLatencyPoint sim.Duration
}

// scale returns d scaled from 1 GHz reference to the configured frequency.
func (c *Config) scale(d sim.Duration) sim.Duration {
	return d.Scale(1.0 / c.CPUFreqGHz)
}

// MaxCritSection returns the critical-section length cap in effect, or 0
// when the kernel has no low-latency work (stock 2.4).
func (c *Config) MaxCritSection() sim.Duration { return c.CritSectionCap }

// DefaultTiming returns the calibrated timing constants (1 GHz reference).
func DefaultTiming() Timing {
	return Timing{
		IRQEntry:              900 * sim.Nanosecond,
		IRQExit:               600 * sim.Nanosecond,
		CtxSwitch:             1800 * sim.Nanosecond,
		CtxSwitchCachePenalty: 2500 * sim.Nanosecond,
		TickHandler:           4 * sim.Microsecond,
		ISRCachePenalty:       1500 * sim.Nanosecond,
		WakeupCost:            900 * sim.Nanosecond,
		IdleExit:              700 * sim.Nanosecond,
		SchedPickO1:           500 * sim.Nanosecond,
		SchedPickBase:         700 * sim.Nanosecond,
		SchedPickPerTask:      150 * sim.Nanosecond,
		HTSlowdown:            0.70,
		BusContention:         0.055,
		BusResample:           10 * sim.Millisecond,
		SoftirqNetPerKB:       15 * sim.Microsecond,
		SoftirqBlockPerOp:     25 * sim.Microsecond,
		SoftirqMax:            4 * sim.Millisecond,
		PreemptiblePoint:      120 * sim.Microsecond,
		LowLatencyPoint:       900 * sim.Microsecond,
	}
}

// --- Presets: the systems in the paper's evaluation ---

// StandardLinux24 returns the stock kernel.org 2.4.18 kernel on a dual
// P4 Xeon (hyperthreading on by default, as the paper found): no
// preemption patch, no low-latency patches, legacy scheduler, no shielding.
func StandardLinux24(physCPUs int, freqGHz float64, ht bool) Config {
	return Config{
		Name:             "kernel.org-2.4.18",
		PhysCPUs:         physCPUs,
		HyperThreading:   ht,
		CPUFreqGHz:       freqGHz,
		Preemptible:      false,
		LowLatency:       false,
		O1Scheduler:      false,
		ShieldSupport:    false,
		FixSpinlockBH:    false,
		BKLHoldReduction: false,
		BKLIoctlFlag:     false,
		HighResTimers:    false,
		SoftirqDaemon:    false,
		LocalTimerHz:     100,
		CritSectionCap:   0,
		Timing:           DefaultTiming(),
	}
}

// RedHawk14 returns the RedHawk Linux 1.4 kernel from §4: 2.4.18 plus the
// preemption patch, low-latency patches, O(1) scheduler, shield support,
// the §6.2 spinlock/bottom-half fix and the §6.3 BKL ioctl flag.
// Hyperthreading is disabled by default in RedHawk.
func RedHawk14(physCPUs int, freqGHz float64) Config {
	return Config{
		Name:             "RedHawk-1.4",
		PhysCPUs:         physCPUs,
		HyperThreading:   false,
		CPUFreqGHz:       freqGHz,
		Preemptible:      true,
		LowLatency:       true,
		O1Scheduler:      true,
		ShieldSupport:    true,
		FixSpinlockBH:    true,
		BKLHoldReduction: true,
		BKLIoctlFlag:     true,
		HighResTimers:    true,
		SoftirqDaemon:    true,
		LocalTimerHz:     100,
		CritSectionCap:   400 * sim.Microsecond,
		Timing:           DefaultTiming(),
	}
}

// PatchedLinux24 returns a kernel with the open-source preemption and
// low-latency patches but none of the RedHawk work — the configuration
// Clark Williams measured at ~1.2 ms worst case [5], used as an ablation.
func PatchedLinux24(physCPUs int, freqGHz float64) Config {
	cfg := StandardLinux24(physCPUs, freqGHz, false)
	cfg.Name = "2.4.18-preempt-lowlat"
	cfg.Preemptible = true
	cfg.LowLatency = true
	cfg.CritSectionCap = cfg.Timing.LowLatencyPoint
	return cfg
}
