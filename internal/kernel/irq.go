package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// IRQLine is one external interrupt line (an IO-APIC input). Devices
// raise it; the kernel routes each occurrence to a CPU allowed by the
// line's smp_affinity mask after shielding semantics are applied.
type IRQLine struct {
	// Num is the IRQ number (-1 for the per-CPU local timer).
	Num  int
	Name string

	kern     *Kernel
	affinity CPUMask

	// Fast marks an SA_INTERRUPT-style handler: it runs with local
	// interrupts disabled (timer, RTC, RCIM). Slow handlers (NIC, disk,
	// GPU) run with interrupts enabled and can be nested by other
	// lines — only their own line stays masked until they complete,
	// 2.4 semantics.
	Fast bool

	// HandlerWork returns the handler execution time for one occurrence.
	HandlerWork func(r *sim.RNG) sim.Duration
	// OnHandle runs at handler completion on the servicing CPU: the
	// device's side effects (waking waiters, raising softirqs).
	OnHandle func(c *CPU)

	rng *sim.RNG
	rr  int // round-robin pointer for multi-CPU delivery

	// Statistics.
	Raised  uint64
	Handled uint64
	// PerCPU counts handled occurrences per servicing CPU.
	PerCPU []uint64
}

// Affinity returns the line's smp_affinity mask.
func (l *IRQLine) Affinity() CPUMask { return l.affinity }

// EffectiveAffinity applies shielding (§3): a shielded CPU receives the
// interrupt only if the line's affinity contains exclusively shielded
// CPUs.
func (l *IRQLine) EffectiveAffinity() CPUMask {
	return EffectiveAffinity(l.affinity, l.kern.shieldIRQs, l.kern.online)
}

// RegisterIRQ creates an interrupt line. affinity 0 means all CPUs.
// handlerWork must be non-nil; onHandle may be nil.
func (k *Kernel) RegisterIRQ(name string, affinity CPUMask, handlerWork func(*sim.RNG) sim.Duration, onHandle func(*CPU)) *IRQLine {
	if handlerWork == nil {
		panic("kernel: IRQ needs a handler work function")
	}
	if affinity == 0 {
		affinity = k.online
	}
	l := &IRQLine{
		Num:         len(k.irqs), // IRQ 0 is the global timer, registered first
		Name:        name,
		kern:        k,
		affinity:    affinity,
		HandlerWork: handlerWork,
		OnHandle:    onHandle,
		rng:         k.rng.Fork(),
		PerCPU:      make([]uint64, k.Cfg.NumCPUs()),
	}
	k.irqs = append(k.irqs, l)
	k.registerIRQProcFile(l)
	return l
}

// SetIRQAffinity changes a line's smp_affinity (the /proc/irq/N/
// smp_affinity write path). Occurrences already pending on a CPU are
// still handled there, matching the paper: "the shielded CPU will handle
// no NEW instances of an interrupt that should be shielded".
func (k *Kernel) SetIRQAffinity(l *IRQLine, m CPUMask) error {
	if m&k.online == 0 {
		return fmt.Errorf("kernel: irq %d affinity %s has no online CPU", l.Num, m)
	}
	l.affinity = m
	return nil
}

// Raise delivers one occurrence of the interrupt. Routing follows the
// kernel config: static first-allowed-CPU delivery (2.4 default — device
// interrupt load piles onto the lowest-numbered allowed CPU) or
// round-robin over the effective affinity (IO-APIC lowest-priority mode).
func (k *Kernel) Raise(l *IRQLine) {
	l.Raised++
	eff := l.EffectiveAffinity()
	if eff == 0 {
		// Nothing online in the mask: hardware still has to deliver it
		// somewhere; fall back to all online CPUs.
		eff = k.online
	}
	var c *CPU
	if k.Cfg.IRQRoundRobin {
		cpus := eff.CPUs()
		c = k.cpus[cpus[l.rr%len(cpus)]]
		l.rr++
	} else {
		c = k.cpus[eff.First()]
	}
	k.Trace.IRQRaise(k.Now(), c.ID, l.Num, l.Name, c.ID)
	c.raiseIRQ(l)
}

// RaiseOn delivers one occurrence directly to a specific CPU, for tests
// and for devices modelling per-CPU delivery.
func (k *Kernel) RaiseOn(l *IRQLine, cpu int) {
	l.Raised++
	k.Trace.IRQRaise(k.Now(), cpu, l.Num, l.Name, cpu)
	k.cpus[cpu].raiseIRQ(l)
}

// SoftirqVec identifies a bottom-half class, after the 2.4 softirq
// vectors.
type SoftirqVec uint8

// Softirq vectors in priority order.
const (
	SoftirqTimer SoftirqVec = iota
	SoftirqNetTx
	SoftirqNetRx
	SoftirqBlock
	SoftirqTasklet
	numSoftirq
)

// String names the vector.
func (v SoftirqVec) String() string {
	switch v {
	case SoftirqTimer:
		return "TIMER"
	case SoftirqNetTx:
		return "NET_TX"
	case SoftirqNetRx:
		return "NET_RX"
	case SoftirqBlock:
		return "BLOCK"
	case SoftirqTasklet:
		return "TASKLET"
	default:
		return fmt.Sprintf("SOFTIRQ(%d)", uint8(v))
	}
}
