package kernel

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestInvariantsHoldUnderChaos(t *testing.T) {
	// Run a deliberately messy system — storms, locks, shields flapping,
	// BKL users, sleepers — and check every invariant every few ms.
	cfg := testConfig(2)
	k := New(cfg, 99)
	l := k.NamedLock("dcache")
	line := k.RegisterIRQ("dev", 0, constWork(20*sim.Microsecond), func(c *CPU) {
		c.RaiseSoftirq(SoftirqNetRx, 100*sim.Microsecond)
	})
	for i := 0; i < 5; i++ {
		k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(tk *Task) Action {
			r := tk.RNG()
			switch r.Intn(4) {
			case 0:
				return Compute(r.Exp(400 * sim.Microsecond))
			case 1:
				return Syscall(&SyscallCall{
					Name: "locked",
					Segments: []Segment{
						{Kind: SegWork, D: r.Uniform(20*sim.Microsecond, 2*sim.Millisecond), Lock: l},
					},
				})
			case 2:
				return Syscall(&SyscallCall{
					Name:     "bkl",
					TakesBKL: true,
					Segments: []Segment{{Kind: SegWork, D: r.Uniform(10*sim.Microsecond, 300*sim.Microsecond)}},
				})
			default:
				return Sleep(r.Uniform(50*sim.Microsecond, sim.Millisecond))
			}
		}))
	}
	k.NewTask("rt", SchedFIFO, 90, 0, BehaviorFunc(func(tk *Task) Action {
		if tk.RNG().Bool(0.5) {
			return Compute(200 * sim.Microsecond)
		}
		return Sleep(tk.RNG().Uniform(100*sim.Microsecond, 2*sim.Millisecond))
	}))
	k.Start()

	var pump func()
	pump = func() {
		k.Raise(line)
		k.Eng.After(k.Eng.RNG().Exp(150*sim.Microsecond), pump)
	}
	k.Eng.After(0, pump)

	flip := false
	for step := 0; step < 100; step++ {
		k.Eng.Run(k.Now() + sim.Time(3*sim.Millisecond))
		if err := k.CheckInvariants(); err != nil {
			t.Fatalf("at %v: %v", k.Now(), err)
		}
		if step%10 == 9 {
			flip = !flip
			var m CPUMask
			if flip {
				m = MaskOf(1)
			}
			if err := k.SetShieldAll(m); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestProcTasksFile(t *testing.T) {
	k := New(testConfig(2), 42)
	k.NewTask("myworker", SchedFIFO, 42, MaskOf(1), BehaviorFunc(func(*Task) Action {
		return Compute(sim.Millisecond)
	}))
	k.Start()
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	out, err := k.FS.Read("/proc/tasks")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PID", "myworker", "SCHED_FIFO", "ksoftirqd/0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("/proc/tasks missing %q:\n%s", want, out)
		}
	}
}

// samplerKernel builds a small started machine with a couple of tasks,
// enough live state for the periodic invariant sampler to walk.
func samplerKernel(seed uint64) *Kernel {
	k := New(testConfig(2), seed)
	for i := 0; i < 2; i++ {
		k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(tk *Task) Action {
			return Compute(tk.RNG().Uniform(50*sim.Microsecond, 500*sim.Microsecond))
		}))
	}
	return k
}

// corruptFirstTask makes task 0 claim TaskRunning with no CPU — a state
// CheckInvariants must reject.
func corruptFirstTask(k *Kernel) {
	victim := k.Tasks()[0]
	victim.state = TaskRunning
	victim.cpu = nil
}

func TestSampleInvariantsCleanRun(t *testing.T) {
	cfg := testConfig(2)
	cfg.InvariantPeriod = 200 * sim.Microsecond
	k := New(cfg, 7)
	k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
		return Compute(300 * sim.Microsecond)
	}))
	k.Start() // arms the sampler via cfg.InvariantPeriod
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	// ~100 sampling instants passed without the default handler panicking.
}

func TestSampleInvariantsCatchesCorruption(t *testing.T) {
	k := samplerKernel(11)
	var caught error
	k.SampleInvariants(100*sim.Microsecond, func(err error) { caught = err })
	k.Start()
	// Run cleanly for a while, then corrupt the machine mid-flight; the
	// next sampling instant must report it.
	k.Eng.Schedule(sim.Time(5*sim.Millisecond), func() { corruptFirstTask(k) })
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	if caught == nil {
		t.Fatal("sampler never reported the injected state corruption")
	}
	if !strings.Contains(caught.Error(), "claims running but cpu disagrees") {
		t.Fatalf("sampler reported %q, want the running/cpu mismatch", caught)
	}
}

func TestSampleInvariantsDefaultFailPanics(t *testing.T) {
	k := samplerKernel(13)
	k.SampleInvariants(100*sim.Microsecond, nil)
	k.Start()
	k.Eng.Schedule(sim.Time(2*sim.Millisecond), func() { corruptFirstTask(k) })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("default fail handler did not panic on corruption")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "invariant violated") {
			t.Fatalf("panic = %v, want an invariant-violated message", r)
		}
	}()
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
}

func TestSampleInvariantsRejectsBadPeriod(t *testing.T) {
	k := New(testConfig(1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInvariants(0) did not panic")
		}
	}()
	k.SampleInvariants(0, nil)
}

func TestInvariantsCatchCorruption(t *testing.T) {
	// Sanity: the checker actually detects a violation.
	k := New(testConfig(1), 42)
	tk := k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
		return Compute(sim.Millisecond)
	}))
	k.Start()
	k.Eng.Run(sim.Time(100 * sim.Microsecond))
	// Corrupt: claim the task is blocked while it is current on cpu0.
	if tk.State() != TaskRunning {
		t.Skip("task not running at probe point")
	}
	tk.state = TaskBlocked
	if err := k.CheckInvariants(); err == nil {
		t.Fatal("checker missed a corrupted task state")
	}
	tk.state = TaskRunning
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
}
