package kernel

import (
	"testing"

	"repro/internal/sim"
)

// lockedCall builds a syscall with one lock-holding work region.
func lockedCall(name string, l *SpinLock, d sim.Duration, onDone func()) *SyscallCall {
	return &SyscallCall{
		Name:     name,
		Segments: []Segment{{Kind: SegWork, D: d, Lock: l, OnDone: onDone}},
	}
}

func TestSpinlockUncontended(t *testing.T) {
	k := New(testConfig(1), 42)
	l := k.NamedLock("fs")
	var done sim.Time
	act := Syscall(lockedCall("sys", l, 100*sim.Microsecond, nil))
	act.OnComplete = func(now sim.Time) { done = now }
	k.NewTask("t", SchedFIFO, 50, 0, &onceBehavior{actions: []Action{act}})
	k.Start()
	k.Eng.Run(sim.Time(5 * sim.Millisecond))
	if done == 0 {
		t.Fatal("syscall never completed")
	}
	if l.Acquisitions != 1 || l.Contentions != 0 {
		t.Fatalf("acquisitions=%d contentions=%d", l.Acquisitions, l.Contentions)
	}
	if l.Held() {
		t.Fatal("lock still held after syscall")
	}
}

func TestSpinlockContentionDelaysWaiter(t *testing.T) {
	// Task A on CPU0 holds the lock for 2ms; task B on CPU1 tries to
	// take it shortly after and must spin until A releases.
	// CritSectionCap would split A's long section (the low-latency
	// patches doing their job); disable it to test raw contention.
	cfg := testConfig(2)
	cfg.CritSectionCap = 0
	k := New(cfg, 42)
	l := k.NamedLock("fs")

	var aReleased, bGot sim.Time
	aCall := lockedCall("a", l, 2*sim.Millisecond, func() { aReleased = k.Now() })
	bCall := lockedCall("b", l, 10*sim.Microsecond, nil)
	bAct := Syscall(bCall)
	bAct.OnComplete = func(now sim.Time) { bGot = now }

	k.NewTask("A", SchedFIFO, 50, MaskOf(0), &onceBehavior{actions: []Action{Syscall(aCall)}})
	k.NewTask("B", SchedFIFO, 50, MaskOf(1), &onceBehavior{actions: []Action{
		Sleep(100 * sim.Microsecond), // let A win the lock
		bAct,
	}})
	k.Start()
	k.Eng.Run(sim.Time(20 * sim.Millisecond))

	if aReleased == 0 || bGot == 0 {
		t.Fatalf("aReleased=%v bGot=%v", aReleased, bGot)
	}
	if bGot < aReleased {
		t.Fatal("B finished its critical section before A released the lock")
	}
	if l.Contentions != 1 {
		t.Fatalf("contentions = %d, want 1", l.Contentions)
	}
	if l.TotalSpin < sim.Millisecond {
		t.Fatalf("TotalSpin = %v, want >1ms of spinning", l.TotalSpin)
	}
}

func TestSpinlockFIFOHandover(t *testing.T) {
	// Three contenders must acquire in arrival order.
	cfg := testConfig(4)
	cfg.Timing.BusContention = 0 // keep timing exact
	cfg.CritSectionCap = 0
	k := New(cfg, 42)
	l := k.NamedLock("fs")
	var order []string
	mk := func(name string, startDelay sim.Duration) {
		call := lockedCall(name, l, 500*sim.Microsecond, func() { order = append(order, name) })
		k.NewTask(name, SchedFIFO, 50, MaskOf(len(order)), nil)
		_ = call
	}
	_ = mk
	// Build explicitly: task i pinned to cpu i, staggered entry.
	for i, name := range []string{"a", "b", "c"} {
		i, name := i, name
		call := lockedCall(name, l, 500*sim.Microsecond, func() { order = append(order, name) })
		k.NewTask(name, SchedFIFO, 50, MaskOf(i), &onceBehavior{actions: []Action{
			Sleep(sim.Duration(i+1) * 10 * sim.Microsecond),
			Syscall(call),
		}})
	}
	k.Start()
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("acquisition order = %v, want [a b c]", order)
	}
}

func TestBKLSerializesIoctl(t *testing.T) {
	// Two ioctl-style syscalls that take the BKL must serialize even on
	// different CPUs.
	k := New(StandardLinux24(2, 1.0, false), 42)
	var aDone, bStart sim.Time
	aCall := &SyscallCall{
		Name:     "ioctl-a",
		TakesBKL: true,
		Segments: []Segment{{Kind: SegWork, D: 3 * sim.Millisecond, OnDone: func() { aDone = k.Now() }}},
	}
	bCall := &SyscallCall{
		Name:     "ioctl-b",
		TakesBKL: true,
		Segments: []Segment{{Kind: SegWork, D: 10 * sim.Microsecond, OnDone: func() { bStart = k.Now() }}},
	}
	k.NewTask("A", SchedFIFO, 50, MaskOf(0), &onceBehavior{actions: []Action{Syscall(aCall)}})
	k.NewTask("B", SchedFIFO, 50, MaskOf(1), &onceBehavior{actions: []Action{
		Sleep(200 * sim.Microsecond),
		Syscall(bCall),
	}})
	k.Start()
	// Stock-kernel jiffy rounding stretches B's 200µs sleep to ~20ms.
	k.Eng.Run(sim.Time(60 * sim.Millisecond))
	if aDone == 0 || bStart == 0 {
		t.Fatalf("aDone=%v bStart=%v", aDone, bStart)
	}
	if bStart < aDone {
		t.Fatal("B's BKL section ran while A held the BKL")
	}
}

func TestBKLIoctlFlagSkipsBKL(t *testing.T) {
	// With the RedHawk BKL flag and a multithreaded driver, the same two
	// calls overlap.
	cfg := RedHawk14(2, 1.0)
	k := New(cfg, 42)
	var aDone, bDone sim.Time
	aCall := &SyscallCall{
		Name: "ioctl-a", TakesBKL: true, DriverNoBKL: true,
		Segments: []Segment{{Kind: SegWork, D: 3 * sim.Millisecond, OnDone: func() { aDone = k.Now() }}},
	}
	bCall := &SyscallCall{
		Name: "ioctl-b", TakesBKL: true, DriverNoBKL: true,
		Segments: []Segment{{Kind: SegWork, D: 10 * sim.Microsecond, OnDone: func() { bDone = k.Now() }}},
	}
	k.NewTask("A", SchedFIFO, 50, MaskOf(0), &onceBehavior{actions: []Action{Syscall(aCall)}})
	k.NewTask("B", SchedFIFO, 50, MaskOf(1), &onceBehavior{actions: []Action{
		Sleep(200 * sim.Microsecond),
		Syscall(bCall),
	}})
	k.Start()
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	if bDone == 0 || aDone == 0 {
		t.Fatal("calls did not complete")
	}
	if bDone > aDone {
		t.Fatal("B waited for A despite DriverNoBKL — BKL was not skipped")
	}
	if k.BKL.Acquisitions != 0 {
		t.Fatalf("BKL acquired %d times, want 0", k.BKL.Acquisitions)
	}
}

func TestBKLDroppedAcrossBlock(t *testing.T) {
	// A BKL-holding syscall that blocks must release the BKL while
	// asleep (2.4 semantics) so other BKL users are not starved.
	k := New(StandardLinux24(2, 1.0, false), 42)
	wq := NewWaitQueue("dev")
	var otherRan sim.Time
	sleeper := &SyscallCall{
		Name: "ioctl-sleep", TakesBKL: true,
		Segments: []Segment{
			{Kind: SegWork, D: 10 * sim.Microsecond},
			{Kind: SegBlock, Wait: wq},
			{Kind: SegWork, D: 10 * sim.Microsecond},
		},
	}
	other := &SyscallCall{
		Name: "ioctl-other", TakesBKL: true,
		Segments: []Segment{{Kind: SegWork, D: 10 * sim.Microsecond, OnDone: func() { otherRan = k.Now() }}},
	}
	k.NewTask("sleeper", SchedFIFO, 50, MaskOf(0), &onceBehavior{actions: []Action{Syscall(sleeper)}})
	k.NewTask("other", SchedFIFO, 50, MaskOf(1), &onceBehavior{actions: []Action{
		Sleep(sim.Millisecond),
		Syscall(other),
	}})
	k.Start()
	k.Eng.Schedule(sim.Time(80*sim.Millisecond), func() { k.WakeAll(wq, nil) })
	k.Eng.Run(sim.Time(150 * sim.Millisecond))
	if otherRan == 0 {
		t.Fatal("other BKL user never ran")
	}
	// The other user's 1ms sleep stretches to ~20ms under jiffy
	// rounding; it must still get the BKL well before the sleeper's
	// wake at 80ms.
	if otherRan > sim.Time(40*sim.Millisecond) {
		t.Fatalf("other BKL user ran at %v — BKL was held across the sleep", otherRan)
	}
}

func TestMaxHoldTracksInterruptExtension(t *testing.T) {
	// §6.2: on a stock kernel, softirq work raised by an interrupt that
	// preempts a lock holder extends the observed hold time.
	cfg := StandardLinux24(1, 1.0, false)
	k := New(cfg, 42)
	l := k.NamedLock("fs")
	line := k.RegisterIRQ("net", 0, constWork(5*sim.Microsecond), func(c *CPU) {
		c.RaiseSoftirq(SoftirqNetRx, 2*sim.Millisecond)
	})
	call := lockedCall("sys", l, 500*sim.Microsecond, nil)
	k.NewTask("holder", SchedFIFO, 50, 0, &onceBehavior{actions: []Action{Syscall(call)}})
	k.Start()
	k.Eng.Schedule(sim.Time(100*sim.Microsecond), func() { k.Raise(line) })
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	// Hold = ~500µs work + ~2ms softirq that preempted the holder.
	if l.MaxHold < 2*sim.Millisecond {
		t.Fatalf("MaxHold = %v, want >2ms (softirq preempted the holder)", l.MaxHold)
	}
}

func TestFixSpinlockBHDefersSoftirq(t *testing.T) {
	// Same scenario on RedHawk: the fix defers bottom halves while a
	// lock is held, so the hold time stays near the section length.
	cfg := RedHawk14(1, 1.0)
	cfg.CritSectionCap = 0 // keep the 500µs section intact for the test
	k := New(cfg, 42)
	l := k.NamedLock("fs")
	line := k.RegisterIRQ("net", 0, constWork(5*sim.Microsecond), func(c *CPU) {
		c.RaiseSoftirq(SoftirqNetRx, 2*sim.Millisecond)
	})
	call := lockedCall("sys", l, 500*sim.Microsecond, nil)
	k.NewTask("holder", SchedFIFO, 50, 0, &onceBehavior{actions: []Action{Syscall(call)}})
	k.Start()
	k.Eng.Schedule(sim.Time(100*sim.Microsecond), func() { k.Raise(line) })
	k.Eng.Run(sim.Time(20 * sim.Millisecond))
	if l.MaxHold > sim.Millisecond {
		t.Fatalf("MaxHold = %v, want <1ms (bottom half must be deferred)", l.MaxHold)
	}
	// The softirq must still run eventually.
	if k.CPU(0).SoftirqRuns == 0 {
		t.Fatal("deferred softirq never ran")
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("release of unheld lock did not panic")
		}
	}()
	NewSpinLock("x").release(0, nil)
}
