package kernel

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// snapLooper is a snapshot-capable test workload: it cycles through
// compute, a lock-heavy BKL syscall, a sleep and a yield, drawing every
// duration from the task RNG. Its only mutable state is the step
// counter, which crosses the snapshot boundary as one word.
type snapLooper struct {
	step uint64
}

func (b *snapLooper) Next(t *Task) Action {
	step := b.step
	b.step++
	switch step % 4 {
	case 0:
		return Compute(t.rng.Jitter(400*sim.Microsecond, 0.5))
	case 1:
		return Syscall(&SyscallCall{
			Name:                "ioctl",
			TakesBKL:            true,
			ReacquireBKLOnBlock: true,
			Segments: []Segment{
				{Kind: SegWork, D: t.rng.Jitter(60*sim.Microsecond, 0.5), Lock: t.kern.NamedLock("fs")},
				{Kind: SegWork, D: t.rng.Jitter(40*sim.Microsecond, 0.5), Lock: t.kern.NamedLock("io"), IRQsOff: true},
				{Kind: SegWork, D: t.rng.Jitter(30*sim.Microsecond, 0.5), NonPreempt: true, SchedPoint: true},
			},
		})
	case 2:
		return Sleep(t.rng.Jitter(2*sim.Millisecond, 0.5))
	default:
		return Yield()
	}
}

func (b *snapLooper) BehaviorName() string            { return "test.snap-looper" }
func (b *snapLooper) BehaviorState() []uint64         { return []uint64{b.step} }
func (b *snapLooper) SetBehaviorState(words []uint64) { b.step = words[0] }

// buildSnapMachine constructs the reference machine for the resume
// tests: 2 CPUs, a trace buffer, contended SCHED_OTHER loopers plus an
// RT task, all on snapshot-capable behaviors.
func buildSnapMachine(seed uint64) *Kernel {
	k := New(testConfig(2), seed)
	k.Trace = trace.NewBuffer(256)
	for i := 0; i < 3; i++ {
		k.NewTask(fmt.Sprintf("looper-%d", i), SchedOther, 0, 0, &snapLooper{})
	}
	k.NewTask("rt-looper", SchedFIFO, 50, 0, &snapLooper{})
	return k
}

// TestSnapshotResumeEquivalence is the kernel-layer resume oracle:
// run to T1, snapshot, keep running to T2 and snapshot again; then
// restore the T1 image into a freshly built machine, run it to T2, and
// demand the two T2 images be byte-identical. Any divergence in any
// serialised field — clocks, RNG streams, run queues, lock statistics,
// trace rings — fails the byte compare.
func TestSnapshotResumeEquivalence(t *testing.T) {
	const (
		t1 = sim.Time(50 * sim.Millisecond)
		t2 = sim.Time(130 * sim.Millisecond)
	)
	a := buildSnapMachine(42)
	a.Start()
	a.Eng.Run(t1)
	snapNow := a.Now()
	img, err := a.Snapshot()
	if err != nil {
		t.Fatalf("snapshot at T1: %v", err)
	}
	img2, err := a.Snapshot()
	if err != nil {
		t.Fatalf("second snapshot at T1: %v", err)
	}
	if !bytes.Equal(img, img2) {
		t.Fatal("two snapshots of the same machine state differ")
	}
	a.Eng.Run(t2)
	wantT2, err := a.Snapshot()
	if err != nil {
		t.Fatalf("snapshot at T2: %v", err)
	}

	b := buildSnapMachine(42)
	b.Start()
	if err := b.RestoreImage(img); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if b.Now() != snapNow {
		t.Fatalf("restored clock %v, want %v", b.Now(), snapNow)
	}
	b.Eng.Run(t2)
	gotT2, err := b.Snapshot()
	if err != nil {
		t.Fatalf("re-snapshot at T2: %v", err)
	}
	if !bytes.Equal(wantT2, gotT2) {
		t.Fatalf("restored run diverged: T2 images differ (%d vs %d bytes)", len(wantT2), len(gotT2))
	}
	// And the restored machine must be internally consistent on its own.
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("invariants after resumed run: %v", err)
	}
}

// TestSnapshotRequiresSnapBehavior: a machine running a closure-state
// behavior cannot cross the boundary and must say which task is at
// fault instead of silently dropping state.
func TestSnapshotRequiresSnapBehavior(t *testing.T) {
	k := New(testConfig(1), 42)
	k.NewTask("opaque", SchedOther, 0, 0, &onceBehavior{actions: []Action{Compute(time100ms)}})
	k.Start()
	k.Eng.Run(sim.Time(5 * sim.Millisecond))
	if _, err := k.Snapshot(); err == nil || !strings.Contains(err.Error(), "opaque") {
		t.Fatalf("snapshot error = %v, want one naming task %q", err, "opaque")
	}
}

const time100ms = 100 * sim.Millisecond

// TestRestoreRejectsConstructionMismatch: restoring into a machine that
// was not built identically must fail loudly, not corrupt state.
func TestRestoreRejectsConstructionMismatch(t *testing.T) {
	a := buildSnapMachine(42)
	a.Start()
	a.Eng.Run(sim.Time(20 * sim.Millisecond))
	img, err := a.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	b := buildSnapMachine(42)
	b.NewTask("extra", SchedOther, 0, 0, &snapLooper{})
	b.Start()
	if err := b.RestoreImage(img); err == nil {
		t.Fatal("restore into a machine with an extra task succeeded")
	}

	c := buildSnapMachine(42)
	if err := c.RestoreImage(img); err == nil || !strings.Contains(err.Error(), "start") {
		t.Fatalf("restore into an unstarted machine: err = %v, want a 'not started' error", err)
	}
}

// --- timer wheel satellite: restore mid-cascade at a wrap boundary ---

// probeKind identifies the test's wheel timers; the registered
// rebuilder reconstructs the callback on the restored machine.
var probeKind = sim.RegisterEventKind("kt.wheel-probe")

type probeHit struct {
	id uint64
	at sim.Time
}

var (
	probeMu   sync.Mutex
	probeLogs = map[*Kernel][]probeHit{}
)

func recordProbe(k *Kernel, id uint64) {
	probeMu.Lock()
	probeLogs[k] = append(probeLogs[k], probeHit{id: id, at: k.Now()})
	probeMu.Unlock()
}

func probeLog(k *Kernel) []probeHit {
	probeMu.Lock()
	defer probeMu.Unlock()
	return append([]probeHit(nil), probeLogs[k]...)
}

func init() {
	RegisterEventRebuild("kt.wheel-probe", func(rc *RestoreContext, a0, a1, a2 uint64) (func(), error) {
		k := rc.K
		return func() { recordProbe(k, a0) }, nil
	})
}

// armProbe schedules a probe timer id that expires n jiffies from now
// (armed pre-Start, so at absolute jiffy n).
func armProbe(k *Kernel, id uint64, n uint64) {
	k.wheel.addTimer(n, func() { recordProbe(k, id) }, probeKind.Tag(id, 0, 0))
}

// TestTimerWheelRestoreMidCascade snapshots a machine a few jiffies
// after the tv1 wrap at jiffy 256 — when the first cascade has already
// migrated some timers down into tv1, others still sit in higher
// vectors, and one far timer will not cascade for a long time — and
// checks the restored wheel fires the remaining timers at exactly the
// times the uninterrupted machine does. The positional (level, index)
// encoding is what makes this exact; an expiry-only encoding would
// re-run the cascade and could reorder bucket contents.
func TestTimerWheelRestoreMidCascade(t *testing.T) {
	const seed = 7
	build := func() *Kernel { return New(testConfig(1), seed) }
	jiffy := sim.Duration(int64(sim.Second) / int64(testConfig(1).LocalTimerHz))
	at := func(j uint64) sim.Time { return sim.Time(sim.Duration(j) * jiffy) }

	// Expiry jiffies chosen to straddle the 256 wrap: 5/40/250 fire
	// before the snapshot; 258 fires right at the cascade; 270/300 are
	// cascaded into tv1 by it and pending at snapshot time; 600 is
	// still in tv[0]; 20000 is in tv[1] and outlives the test.
	probes := []uint64{5, 40, 250, 258, 270, 300, 600, 20000}
	arm := func(k *Kernel) {
		for _, j := range probes {
			armProbe(k, j, j)
		}
	}

	a := build()
	arm(a)
	a.Start()
	snapAt := at(262)
	a.Eng.Run(snapAt)
	if j := a.Jiffies(); j < 258 || j >= 270 {
		t.Fatalf("jiffies at snapshot = %d, want within [258, 270) (just past the 256 cascade)", j)
	}
	img, err := a.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	end := at(700)
	a.Eng.Run(end)

	// The restoring machine does NOT re-arm the probes: the wheel's
	// contents come entirely from the image, via the registered
	// rebuilder.
	b := build()
	b.Start()
	if err := b.RestoreImage(img); err != nil {
		t.Fatalf("restore: %v", err)
	}
	b.Eng.Run(end)

	var wantTail []probeHit
	for _, h := range probeLog(a) {
		if h.at > snapAt {
			wantTail = append(wantTail, h)
		}
	}
	gotTail := probeLog(b)
	if len(wantTail) != 3 {
		t.Fatalf("uninterrupted run fired %d probes after the snapshot, want 3 (270, 300, 600): %+v", len(wantTail), wantTail)
	}
	if len(gotTail) != len(wantTail) {
		t.Fatalf("restored run fired %d probes, want %d: got %+v want %+v", len(gotTail), len(wantTail), gotTail, wantTail)
	}
	for i := range wantTail {
		if gotTail[i] != wantTail[i] {
			t.Fatalf("probe %d: restored fired id=%d at %v, uninterrupted id=%d at %v",
				i, gotTail[i].id, gotTail[i].at, wantTail[i].id, wantTail[i].at)
		}
	}

	// The far timer (20000) must have round-tripped positionally: the
	// final images of both runs — including every wheel bucket — agree.
	wantImg, err := a.Snapshot()
	if err != nil {
		t.Fatalf("final snapshot of uninterrupted run: %v", err)
	}
	gotImg, err := b.Snapshot()
	if err != nil {
		t.Fatalf("final snapshot of restored run: %v", err)
	}
	if !bytes.Equal(wantImg, gotImg) {
		t.Fatal("final images differ between uninterrupted and restored runs")
	}
}
