package kernel

import (
	"testing"

	"repro/internal/sim"
)

// Failure injection and robustness tests: interrupt storms, pathological
// lock holders, shield transitions under load, and reproducibility.

func TestIRQStormDoesNotLoseInterrupts(t *testing.T) {
	// 10k interrupts in 10ms (a 1 MHz burst) must all be handled
	// eventually, even though most arrive while the CPU is in an ISR.
	k := New(testConfig(1), 42)
	handled := 0
	line := k.RegisterIRQ("storm", 0, constWork(2*sim.Microsecond), func(c *CPU) { handled++ })
	k.Start()
	for i := 0; i < 10000; i++ {
		at := sim.Time(sim.Millisecond) + sim.Time(i)*sim.Time(sim.Microsecond)
		k.Eng.Schedule(at, func() { k.Raise(line) })
	}
	k.Eng.Run(sim.Time(sim.Second))
	if handled != 10000 {
		t.Fatalf("handled %d of 10000 storm interrupts", handled)
	}
}

func TestIRQStormStarvesButDoesNotWedge(t *testing.T) {
	// A storm that outpaces the CPU delays tasks but the system keeps
	// functioning and drains afterwards.
	k := New(testConfig(1), 42)
	line := k.RegisterIRQ("storm", 0, constWork(80*sim.Microsecond), func(c *CPU) {})
	var done sim.Time
	act := Compute(10 * sim.Millisecond)
	act.OnComplete = func(now sim.Time) { done = now }
	k.NewTask("victim", SchedFIFO, 90, 0, &onceBehavior{actions: []Action{act}})
	k.Start()
	// 100µs period × 80µs handler = 80% of the CPU in interrupt context.
	for i := 0; i < 1000; i++ {
		at := sim.Time(sim.Millisecond) + sim.Time(i)*sim.Time(100*sim.Microsecond)
		k.Eng.Schedule(at, func() { k.Raise(line) })
	}
	k.Eng.Run(sim.Time(sim.Second))
	if done == 0 {
		t.Fatal("victim never finished")
	}
	// 10ms of work at ~20% of the CPU (80% stolen) finishes near 50ms.
	if done < sim.Time(40*sim.Millisecond) {
		t.Fatalf("victim finished at %v — storm did not actually steal time", done)
	}
	if done > sim.Time(150*sim.Millisecond) {
		t.Fatalf("victim finished at %v — system wedged", done)
	}
}

func TestLongLockHolderDelaysButReleases(t *testing.T) {
	// A holder camping on a lock for 50ms (stock kernel, no splitting)
	// delays contenders exactly until release.
	cfg := StandardLinux24(2, 1.0, false)
	cfg.Timing.BusContention = 0
	k := New(cfg, 42)
	l := k.NamedLock("dcache")
	var contenderDone sim.Time
	hold := lockedCall("camp", l, 50*sim.Millisecond, nil)
	short := Syscall(lockedCall("short", l, 10*sim.Microsecond, nil))
	short.OnComplete = func(now sim.Time) { contenderDone = now }
	k.NewTask("camper", SchedFIFO, 50, MaskOf(0), &onceBehavior{actions: []Action{Syscall(hold)}})
	k.NewTask("contender", SchedFIFO, 50, MaskOf(1), &onceBehavior{actions: []Action{
		Sleep(sim.Millisecond), short,
	}})
	k.Start()
	k.Eng.Run(sim.Time(200 * sim.Millisecond))
	if contenderDone == 0 {
		t.Fatal("contender starved forever")
	}
	if contenderDone < sim.Time(50*sim.Millisecond) {
		t.Fatal("contender ran inside the hold")
	}
	// The contender's nominal 1ms sleep stretches to ~20ms under jiffy
	// rounding, so it spins for the last ~30ms of the hold.
	if l.TotalSpin < 25*sim.Millisecond {
		t.Fatalf("TotalSpin = %v, want ~30ms", l.TotalSpin)
	}
}

func TestShieldFlappingUnderLoad(t *testing.T) {
	// Toggling the shield every 20ms under load must never wedge the
	// system or leave a non-opted-in task on a shielded CPU at rest.
	k := New(testConfig(2), 42)
	for i := 0; i < 4; i++ {
		k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
			return Compute(3 * sim.Millisecond)
		}))
	}
	k.Start()
	for i := 1; i <= 19; i++ { // odd count: ends in the shielded state
		i := i
		k.Eng.Schedule(sim.Time(i)*sim.Time(20*sim.Millisecond), func() {
			var m CPUMask
			if i%2 == 1 {
				m = MaskOf(1)
			}
			if err := k.SetShieldAll(m); err != nil {
				t.Errorf("shield toggle %d: %v", i, err)
			}
		})
	}
	k.Eng.Run(sim.Time(450 * sim.Millisecond)) // ends in shielded state
	// Everything must still be making progress.
	for _, tk := range k.Tasks() {
		if tk.Name == "w" && tk.Switches == 0 {
			t.Fatalf("worker never ran across shield flapping")
		}
	}
	// At rest with CPU1 shielded, no worker occupies it.
	for _, tk := range k.Tasks() {
		if tk.Name == "w" && tk.State() == TaskRunning && tk.CPU() == 1 {
			t.Fatalf("worker still running on shielded cpu1")
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Identical seeds must produce bit-identical simulations; different
	// seeds must diverge.
	run := func(seed uint64) (sim.Time, uint64, uint64) {
		k := New(testConfig(2), seed)
		line := k.RegisterIRQ("dev", 0, func(r *sim.RNG) sim.Duration {
			return r.Exp(20 * sim.Microsecond)
		}, nil)
		var periodic func()
		periodic = func() {
			k.Raise(line)
			k.Eng.After(k.Eng.RNG().Exp(300*sim.Microsecond), periodic)
		}
		k.Eng.After(0, periodic)
		var lastDone sim.Time
		for i := 0; i < 3; i++ {
			k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(tk *Task) Action {
				a := Compute(tk.RNG().Exp(2 * sim.Millisecond))
				a.OnComplete = func(now sim.Time) { lastDone = now }
				return a
			}))
		}
		k.Start()
		k.Eng.Run(sim.Time(300 * sim.Millisecond))
		return lastDone, k.Eng.Fired(), line.Handled
	}
	a1, f1, h1 := run(77)
	a2, f2, h2 := run(77)
	if a1 != a2 || f1 != f2 || h1 != h2 {
		t.Fatalf("same seed diverged: (%v,%d,%d) vs (%v,%d,%d)", a1, f1, h1, a2, f2, h2)
	}
	a3, f3, _ := run(78)
	if a1 == a3 && f1 == f3 {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestManyTasksManyCPUs(t *testing.T) {
	// Scale smoke test: 32 tasks on 8 CPUs with devices; everything
	// runs, nothing panics, CPU time is spread.
	cfg := RedHawk14(8, 1.0)
	k := New(cfg, 42)
	line := k.RegisterIRQ("dev", 0, constWork(5*sim.Microsecond), nil)
	for i := 0; i < 32; i++ {
		k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(tk *Task) Action {
			if tk.RNG().Bool(0.3) {
				return Sleep(tk.RNG().Exp(500 * sim.Microsecond))
			}
			return Compute(tk.RNG().Exp(sim.Millisecond))
		}))
	}
	k.Start()
	var pump func()
	pump = func() {
		k.Raise(line)
		k.Eng.After(100*sim.Microsecond, pump)
	}
	k.Eng.After(0, pump)
	k.Eng.Run(sim.Time(sim.Second))

	ran := map[int]bool{}
	for _, tk := range k.Tasks() {
		if tk.Name == "w" {
			if tk.Switches == 0 {
				t.Fatal("a worker never ran")
			}
			ran[tk.CPU()] = true
		}
	}
	if len(ran) < 6 {
		t.Fatalf("workers only touched %d of 8 CPUs", len(ran))
	}
	if line.Handled < 9000 {
		t.Fatalf("handled %d interrupts, want ~10000", line.Handled)
	}
}

func TestZeroWorkActionsTerminate(t *testing.T) {
	// Misbehaving behaviors returning zero-length actions must not hang
	// the engine (each pass still consumes events in finite time).
	k := New(testConfig(1), 42)
	n := 0
	k.NewTask("spinner", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
		n++
		if n > 1000 {
			return Exit()
		}
		return Compute(0)
	}))
	k.Start()
	k.Eng.Run(sim.Time(10 * sim.Millisecond))
	if n <= 1000 {
		t.Fatalf("zero-work loop stalled after %d iterations", n)
	}
}

func TestExitedTasksLeaveNoResidue(t *testing.T) {
	k := New(testConfig(2), 42)
	for i := 0; i < 10; i++ {
		k.NewTask("short", SchedOther, 0, 0, &onceBehavior{actions: []Action{
			Compute(100 * sim.Microsecond),
		}})
	}
	k.Start()
	// Stop between ticks so no ISR frame is transiently stacked.
	k.Eng.Run(sim.Time(sim.Second + 2*sim.Millisecond))
	for _, tk := range k.Tasks() {
		if tk.Name == "short" && tk.State() != TaskExited {
			t.Fatalf("task %v in state %v, want exited", tk, tk.State())
		}
	}
	if n := k.Scheduler().NrRunnable(); n != 0 {
		t.Fatalf("%d tasks still queued after everything exited", n)
	}
	for i := 0; i < 2; i++ {
		if !k.CPU(i).Idle() {
			t.Fatalf("cpu%d not idle at rest", i)
		}
	}
}

func TestSleepStorm(t *testing.T) {
	// 1000 sleepers with staggered durations must all wake exactly once,
	// and wake timestamps must be non-decreasing (the engine never runs
	// time backwards under wake pressure).
	k := New(testConfig(2), 42)
	var wakeTimes []sim.Time
	for i := 0; i < 1000; i++ {
		act := Sleep(sim.Duration(i+1) * 10 * sim.Microsecond)
		act.OnComplete = func(now sim.Time) { wakeTimes = append(wakeTimes, now) }
		k.NewTask("sleeper", SchedOther, 0, 0, &onceBehavior{actions: []Action{act}})
	}
	k.Start()
	k.Eng.Run(sim.Time(200 * sim.Millisecond))
	if len(wakeTimes) != 1000 {
		t.Fatalf("woke %d of 1000", len(wakeTimes))
	}
	for i := 1; i < len(wakeTimes); i++ {
		if wakeTimes[i] < wakeTimes[i-1] {
			t.Fatalf("wake time went backwards at %d: %v < %v", i, wakeTimes[i], wakeTimes[i-1])
		}
	}
}
