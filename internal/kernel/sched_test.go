package kernel

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPrioSlotMapping(t *testing.T) {
	rt99 := &Task{Policy: SchedFIFO, RTPrio: 99}
	rt1 := &Task{Policy: SchedRR, RTPrio: 1}
	other := &Task{Policy: SchedOther}
	if prioSlot(rt99) != 0 {
		t.Fatalf("slot(rt99) = %d, want 0", prioSlot(rt99))
	}
	if prioSlot(rt1) != 98 {
		t.Fatalf("slot(rt1) = %d, want 98", prioSlot(rt1))
	}
	if prioSlot(other) != otherSlot {
		t.Fatalf("slot(other) = %d, want %d", prioSlot(other), otherSlot)
	}
}

func TestO1RunqueueAddRemove(t *testing.T) {
	rq := &o1Runqueue{}
	k := New(testConfig(2), 1)
	mk := func(p int) *Task {
		return &Task{PID: p, Name: "t", Policy: SchedFIFO, RTPrio: p, affinity: MaskAll(2), kern: k}
	}
	a, b, c := mk(10), mk(50), mk(50)
	rq.add(a)
	rq.add(b)
	rq.add(c)
	if rq.nr != 3 {
		t.Fatalf("nr = %d", rq.nr)
	}
	// Best for any CPU is the highest priority; FIFO between b and c.
	best := rq.best(k.CPU(0), false)
	if best != b {
		t.Fatalf("best = %v, want b (prio 50, first queued)", best)
	}
	if !rq.remove(b) || rq.remove(b) {
		t.Fatal("remove bookkeeping broken")
	}
	if got := rq.best(k.CPU(0), true); got != c {
		t.Fatalf("best after removing b = %v, want c", got)
	}
	if got := rq.best(k.CPU(0), true); got != a {
		t.Fatalf("last = %v, want a", got)
	}
	if rq.nr != 0 || rq.firstSlot() != -1 {
		t.Fatalf("queue not empty at end: nr=%d slot=%d", rq.nr, rq.firstSlot())
	}
}

func TestO1BestSkipsIneligible(t *testing.T) {
	k := New(testConfig(2), 1)
	rq := &o1Runqueue{}
	pinned1 := &Task{PID: 1, Policy: SchedFIFO, RTPrio: 90, affinity: MaskOf(1), kern: k}
	anyCPU := &Task{PID: 2, Policy: SchedFIFO, RTPrio: 10, affinity: MaskAll(2), kern: k}
	rq.add(pinned1)
	rq.add(anyCPU)
	// CPU0 cannot take the higher-priority pinned task; it must get the
	// lower-priority eligible one.
	if got := rq.best(k.CPU(0), false); got != anyCPU {
		t.Fatalf("best for cpu0 = %v, want the eligible task", got)
	}
	if got := rq.best(k.CPU(1), false); got != pinned1 {
		t.Fatalf("best for cpu1 = %v, want the pinned high-prio task", got)
	}
}

// Property: for any sequence of enqueues, the O(1) runqueue always
// returns tasks in non-increasing priority order (FIFO within equal).
func TestQuickO1PriorityOrder(t *testing.T) {
	k := New(testConfig(1), 1)
	f := func(prios []uint8) bool {
		rq := &o1Runqueue{}
		for i, p := range prios {
			rt := int(p)%MaxRTPrio + 1
			rq.add(&Task{PID: i, Policy: SchedFIFO, RTPrio: rt, affinity: MaskAll(1), kern: k})
		}
		last := MaxRTPrio + 1
		for rq.nr > 0 {
			tk := rq.best(k.CPU(0), true)
			if tk == nil {
				return false
			}
			if tk.RTPrio > last {
				return false
			}
			last = tk.RTPrio
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: bitmap bits exactly mirror non-empty slots after arbitrary
// add/remove interleavings.
func TestQuickO1BitmapConsistency(t *testing.T) {
	k := New(testConfig(1), 1)
	f := func(ops []uint16) bool {
		rq := &o1Runqueue{}
		var live []*Task
		pid := 0
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				rt := int(op)%MaxRTPrio + 1
				tk := &Task{PID: pid, Policy: SchedFIFO, RTPrio: rt, affinity: MaskAll(1), kern: k}
				pid++
				rq.add(tk)
				live = append(live, tk)
			} else {
				victim := live[int(op/3)%len(live)]
				rq.remove(victim)
				for i, tk := range live {
					if tk == victim {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}
		}
		for s := 0; s < numSlots; s++ {
			bit := rq.bitmap[s/64]&(1<<uint(s%64)) != 0
			if bit != (len(rq.queues[s]) > 0) {
				return false
			}
		}
		return rq.nr == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// schedImpls runs a check against both scheduler implementations.
func schedImpls(t *testing.T, check func(t *testing.T, cfg Config)) {
	t.Helper()
	o1 := RedHawk14(2, 1.0)
	legacy := StandardLinux24(2, 1.0, false)
	t.Run("o1", func(t *testing.T) { check(t, o1) })
	t.Run("legacy", func(t *testing.T) { check(t, legacy) })
}

func TestBothSchedulersRunHighestPrioFirst(t *testing.T) {
	schedImpls(t, func(t *testing.T, cfg Config) {
		k := New(cfg, 42)
		var order []int
		for _, prio := range []int{10, 90, 50} {
			prio := prio
			act := Compute(5 * sim.Millisecond)
			act.OnComplete = func(sim.Time) { order = append(order, prio) }
			k.NewTask("t", SchedFIFO, prio, MaskOf(0), &onceBehavior{actions: []Action{act}})
		}
		k.Start()
		k.Eng.Run(sim.Time(100 * sim.Millisecond))
		if len(order) != 3 || order[0] != 90 || order[1] != 50 || order[2] != 10 {
			t.Fatalf("completion order = %v, want [90 50 10]", order)
		}
	})
}

func TestBothSchedulersRespectShielding(t *testing.T) {
	schedImpls(t, func(t *testing.T, cfg Config) {
		if !cfg.ShieldSupport {
			cfg.ShieldSupport = true // enable so both impls are exercised
		}
		k := New(cfg, 42)
		w := k.NewTask("w", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
			return Compute(2 * sim.Millisecond)
		}))
		k.Start()
		if err := k.SetShieldProcs(MaskOf(1)); err != nil {
			t.Fatal(err)
		}
		k.Eng.Run(sim.Time(200 * sim.Millisecond))
		if w.CPU() == 1 {
			t.Fatalf("%s scheduler placed a task on the shielded CPU", cfg.Name)
		}
		if w.Switches == 0 {
			t.Fatal("worker never ran")
		}
	})
}

// Property: with N runnable FIFO tasks of distinct priorities on one CPU,
// whatever the arrival order, the running task after settling is always
// the highest-priority one.
func TestQuickHighestPrioRuns(t *testing.T) {
	f := func(rawPrios []uint8, legacy bool) bool {
		if len(rawPrios) == 0 || len(rawPrios) > 12 {
			return true
		}
		var cfg Config
		if legacy {
			cfg = StandardLinux24(1, 1.0, false)
		} else {
			cfg = RedHawk14(1, 1.0)
		}
		k := New(cfg, 9)
		best := 0
		seen := map[int]bool{}
		for _, p := range rawPrios {
			prio := int(p)%MaxRTPrio + 1
			if seen[prio] {
				continue
			}
			seen[prio] = true
			if prio > best {
				best = prio
			}
			k.NewTask("t", SchedFIFO, prio, 0, BehaviorFunc(func(*Task) Action {
				return Compute(sim.Second)
			}))
		}
		k.Start()
		k.Eng.Run(sim.Time(5 * sim.Millisecond))
		cur := k.CPU(0).Cur()
		return cur != nil && cur.RTPrio == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRRTasksRotate(t *testing.T) {
	// Two SCHED_RR tasks at equal priority share the CPU via timeslices
	// (unlike FIFO, which runs to completion).
	k := New(testConfig(1), 42)
	progress := map[string]int{}
	mk := func(name string) Behavior {
		return BehaviorFunc(func(*Task) Action {
			a := Compute(10 * sim.Millisecond)
			a.OnComplete = func(sim.Time) { progress[name]++ }
			return a
		})
	}
	k.NewTask("r1", SchedRR, 50, 0, mk("r1"))
	k.NewTask("r2", SchedRR, 50, 0, mk("r2"))
	k.Start()
	k.Eng.Run(sim.Time(sim.Second))
	if progress["r1"] == 0 || progress["r2"] == 0 {
		t.Fatalf("RR starvation: %v", progress)
	}
	ratio := float64(progress["r1"]) / float64(progress["r1"]+progress["r2"])
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("RR sharing skewed: %v", progress)
	}
}

func TestLegacyGoodnessPrefersLastCPU(t *testing.T) {
	k := New(StandardLinux24(2, 1.0, false), 42)
	s := k.sched.(*legacyScheduler)
	tk := &Task{PID: 1, Policy: SchedOther, affinity: MaskAll(2), kern: k}
	tk.cpu = k.CPU(1)
	if g0, g1 := s.goodness(tk, k.CPU(0)), s.goodness(tk, k.CPU(1)); g1 <= g0 {
		t.Fatalf("goodness(last cpu) = %d should beat %d", g1, g0)
	}
}

func TestPlaceWakePrefersIdleLastCPU(t *testing.T) {
	k := New(testConfig(2), 42)
	tk := k.NewTask("t", SchedOther, 0, 0, BehaviorFunc(func(*Task) Action {
		return Sleep(sim.Millisecond)
	}))
	tk.cpu = k.CPU(1)
	if got := placeWake(k, tk); got.ID != 1 {
		t.Fatalf("placeWake = cpu%d, want idle last cpu1", got.ID)
	}
}

func TestPlaceWakePicksPreemptableCPU(t *testing.T) {
	// Both CPUs busy: a FIFO-90 wakeup must target a CPU running lower
	// priority work.
	k := New(testConfig(2), 42)
	k.NewTask("low0", SchedOther, 0, MaskOf(0), BehaviorFunc(func(*Task) Action {
		return Compute(sim.Second)
	}))
	k.NewTask("low1", SchedOther, 0, MaskOf(1), BehaviorFunc(func(*Task) Action {
		return Compute(sim.Second)
	}))
	k.Start()
	k.Eng.Run(sim.Time(5 * sim.Millisecond))
	rt := &Task{PID: 99, Policy: SchedFIFO, RTPrio: 90, affinity: MaskAll(2), kern: k}
	c := placeWake(k, rt)
	if c.Cur() == nil || c.Cur().rtEffective() >= 90 {
		t.Fatalf("placeWake chose cpu%d running %v", c.ID, c.Cur())
	}
}
