// Package kernel simulates a 2.4-era SMP Linux kernel at the level of
// detail the shielded-processor paper's experiments depend on. It is a
// deterministic discrete-event model, not an emulator: kernel code paths
// are represented by timed regions with the locking and preemption
// properties of the real paths, and every latency mechanism the paper
// discusses is reproduced structurally.
//
// # Execution model
//
// Each CPU owns a stack of frames; exactly the top frame makes progress.
// Frame kinds mirror kernel execution contexts:
//
//   - task (user mode, or a kernel syscall region)
//   - isr (hardware interrupt handler)
//   - softirq (bottom-half processing)
//   - spin (busy-waiting on a contended spinlock)
//   - switch (scheduler decision + context switch overhead)
//
// A frame carries work measured in nanoseconds-at-full-speed and accrues
// it at the CPU's current rate. The rate drops while the hyperthread
// sibling is busy (§5 of the paper) or while other packages contend for
// the memory bus. Every rate transition re-accrues at the old rate
// before re-arming at the new one, so time is never charged at the wrong
// speed; the accrue-and-rescale pattern keeps the event count
// proportional to activity rather than to simulated time.
//
// # Interrupts
//
// IRQ lines carry a /proc-settable smp_affinity; delivery is static
// first-allowed-CPU (the stock 2.4 behaviour that piles device load onto
// CPU 0) or round-robin. Fast (SA_INTERRUPT) handlers run with local
// interrupts disabled; slow handlers can be nested by other lines, while
// their own line stays masked. At interrupt exit, pending softirqs run —
// preempting whatever was interrupted, which is how bottom halves hurt
// real-time response. On SoftirqDaemon kernels a pass that overflows its
// budget hands the backlog to the per-CPU ksoftirqd task. The per-CPU
// local timer tick drives timeslice accounting and tick-sampled CPU
// statistics (the accounting that §3 notes is lost under local timer
// shielding); the global timer interrupt (IRQ 0) advances jiffies and
// the cascading timer wheel.
//
// # Syscalls, locks and preemption
//
// A syscall is a list of segments — work regions that may hold a
// spinlock, disable interrupts, or mark a low-latency scheduling point —
// plus block points on wait queues. A non-preemptible kernel schedules
// only at syscall exit; the preemption patch allows it whenever no lock
// is held and preemption is not disabled; the low-latency work is
// modelled by splitting long regions at Config.CritSectionCap. The Big
// Kernel Lock is taken by the 2.4 generic ioctl path (unless the RedHawk
// per-driver flag exempts a multithreaded driver, §6.3) and by a
// fraction of fs paths (unless BKLHoldReduction); it is dropped across
// sleeps and at scheduling points, as the real kernel drops it in
// schedule(). Contended spinlocks spin on the CPU; a spinner preempted
// by interrupt work cannot take a handover — the lock stays free until
// an actively spinning CPU's test-and-set wins, as on real hardware.
// The §6.2 fix (FixSpinlockBH) forbids bottom halves from preempting a
// context that holds a spinlock.
//
// # Scheduling
//
// Two schedulers implement the Scheduler interface: the O(1) scheduler
// (per-CPU priority arrays, constant-time pick, idle stealing) and the
// legacy global-runqueue goodness() scheduler with O(n) decision cost.
// Both give strict POSIX semantics: SCHED_FIFO/SCHED_RR above
// SCHED_OTHER, FIFO never timesliced, RR and OTHER rotated on quantum
// expiry (scaled by niceness).
//
// # Shielded processors (the paper's contribution)
//
// shield.go implements §3: bitmasks shield CPUs from processes, from
// assignable interrupts, and from the local timer, each independently,
// controlled through /proc/shield/{procs,irqs,ltmr,all}. The affinity
// semantics are inverted via EffectiveAffinity: a shielded CPU is
// removed from every mask unless the mask contains only shielded CPUs —
// the opt-in that lets a real-time task and its device interrupt own the
// CPU. Shield changes are dynamic: running tasks are migrated off at
// the next legal preemption point, queued tasks are re-placed, new
// interrupt deliveries are rerouted, and the local timer tick stops and
// restarts.
//
// # Determinism
//
// The whole machine is single-threaded on a seeded event heap; identical
// seeds give bit-identical runs, which the experiments and the
// failure-injection tests rely on. CheckInvariants walks every
// cross-cutting consistency property for use in tests.
package kernel
