package kernel

import (
	"testing"

	"repro/internal/sim"
)

// TestLookaheadDerivation pins Config.Lookahead to its contract: the
// minimum cross-CPU event latency in the config — the cheapest of the
// scaled idle-exit kick (the model's IPI delivery), the scaled wakeup
// cost, and the local timer period. Every shipped preset is covered,
// at both the paper's clock rates.
func TestLookaheadDerivation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want sim.Duration
	}{
		// DefaultTiming at 1 GHz: IdleExit 700ns < WakeupCost 900ns << 10ms tick.
		{"standard_1ghz", StandardLinux24(2, 1.0, true), 700 * sim.Nanosecond},
		{"redhawk_1ghz", RedHawk14(2, 1.0), 700 * sim.Nanosecond},
		{"patched_1ghz", PatchedLinux24(2, 1.0), 700 * sim.Nanosecond},
		// 2 GHz halves every scaled cost.
		{"standard_2ghz", StandardLinux24(2, 2.0, true), 350 * sim.Nanosecond},
		{"redhawk_2ghz", RedHawk14(4, 2.0), 350 * sim.Nanosecond},
		{"patched_2ghz", PatchedLinux24(2, 2.0), 350 * sim.Nanosecond},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.cfg.Lookahead()
			if got != tc.want {
				t.Fatalf("Lookahead() = %v, want %v", got, tc.want)
			}
			// Cross-check against the explicit minimum, so a future
			// Timing field that lowers the cross-CPU floor must be added
			// to Lookahead or this test fails.
			tick := sim.Duration(int64(sim.Second) / int64(tc.cfg.LocalTimerHz))
			for _, d := range []sim.Duration{
				tc.cfg.scale(tc.cfg.Timing.IdleExit),
				tc.cfg.scale(tc.cfg.Timing.WakeupCost),
				tick,
			} {
				if d < got {
					t.Fatalf("Lookahead() = %v but config contains cheaper cross-CPU latency %v", got, d)
				}
			}
			if got <= 0 {
				t.Fatalf("shipped config derived non-positive lookahead %v", got)
			}
		})
	}
}

// TestLookaheadWakeupFloor: when the wakeup cost undercuts idle-exit,
// it becomes the floor — the derivation really is a minimum, not a
// hard-coded field read.
func TestLookaheadWakeupFloor(t *testing.T) {
	cfg := RedHawk14(2, 1.0)
	cfg.Timing.WakeupCost = 300 * sim.Nanosecond
	if got := cfg.Lookahead(); got != 300*sim.Nanosecond {
		t.Fatalf("Lookahead() = %v, want 300ns (wakeup floor)", got)
	}
}

// TestLookaheadDegenerateFallsBackToSerial: a config with a zero
// cross-CPU latency floor cannot support a lookahead window. Asking
// that machine for the sharded engine must produce a working serial
// run — identical results, no deadlock, no livelock — not a zero-width
// barrier loop.
func TestLookaheadDegenerateFallsBackToSerial(t *testing.T) {
	deg := RedHawk14(2, 1.0)
	deg.Timing.IdleExit = 0
	if got := deg.Lookahead(); got != 0 {
		t.Fatalf("degenerate config Lookahead() = %v, want 0", got)
	}

	deg.EventQueue = sim.QueueSharded
	deg.EngineShards = 4
	k := New(deg, 42)
	if kind := k.Eng.QueueKind(); kind != sim.QueueLadder {
		t.Fatalf("degenerate sharded config built engine on %q, want serial fallback %q",
			kind, sim.QueueLadder)
	}

	// The fallback machine must actually run: a bounded busy run with
	// the usual periodic machinery completing is the no-deadlock /
	// no-livelock check.
	k.Start()
	until := sim.Time(50 * sim.Millisecond)
	if got := k.Eng.Run(until); got != until {
		t.Fatalf("degenerate fallback run stopped at %v, want %v", got, until)
	}
	if k.Eng.Fired() == 0 {
		t.Fatal("degenerate fallback dispatched no events")
	}

	// A healthy config with the same shard request keeps the sharded
	// engine.
	ok := RedHawk14(2, 1.0)
	ok.EventQueue = sim.QueueSharded
	ok.EngineShards = 4
	if kind := New(ok, 42).Eng.QueueKind(); kind != sim.QueueSharded {
		t.Fatalf("healthy sharded config built engine on %q, want %q", kind, sim.QueueSharded)
	}
}

// TestConfigValidateEngineShards: negative shard counts are a config
// error, zero means "package default".
func TestConfigValidateEngineShards(t *testing.T) {
	cfg := RedHawk14(2, 1.0)
	cfg.EngineShards = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative EngineShards validated")
	}
	cfg.EngineShards = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero EngineShards rejected: %v", err)
	}
}
