package kernel

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// CPUTimes is a per-CPU execution time breakdown.
type CPUTimes struct {
	// User is time in user-mode task code.
	User sim.Duration
	// System is time in kernel syscall regions (including context
	// switch and scheduler overhead).
	System sim.Duration
	// IRQ is hardware interrupt handler time.
	IRQ sim.Duration
	// Softirq is bottom-half time.
	Softirq sim.Duration
	// Spin is time burnt busy-waiting on contended spinlocks.
	Spin sim.Duration
}

// Busy is the total non-idle time.
func (t CPUTimes) Busy() sim.Duration {
	return t.User + t.System + t.IRQ + t.Softirq + t.Spin
}

// Add accumulates other into t.
func (t *CPUTimes) Add(other CPUTimes) {
	t.User += other.User
	t.System += other.System
	t.IRQ += other.IRQ
	t.Softirq += other.Softirq
	t.Spin += other.Spin
}

// account attributes elapsed wall time on the top frame to its class.
// Called from every accrual point so the books always balance. Task
// frames also charge the owning task's RunTime (getrusage-style).
func (c *CPU) account(f *frame, elapsed sim.Duration) {
	if elapsed <= 0 {
		return
	}
	switch f.kind {
	case frameTask:
		f.task.RunTime += elapsed
		if f.seg == nil {
			c.times.User += elapsed
		} else {
			c.times.System += elapsed
		}
	case frameISR:
		c.times.IRQ += elapsed
	case frameSoftirq:
		c.times.Softirq += elapsed
	case frameSpin:
		c.times.Spin += elapsed
	case frameSwitch:
		c.times.System += elapsed
	}
}

// Times returns the ground-truth execution time breakdown, something the
// simulator can know exactly (unlike a real 2.4 kernel).
func (c *CPU) Times() CPUTimes { return c.times }

// SampledTimes returns the 2.4-style statistical accounting: at every
// local timer tick, the whole tick is credited to whatever the CPU was
// doing at that instant. This is the accounting the paper says is LOST
// when the local timer interrupt is shielded — the sampled numbers stop
// moving while the ground truth keeps counting.
func (c *CPU) SampledTimes() CPUTimes { return c.sampled }

// sampleTick implements the tick-based accounting: credit one tick
// period to the class of the interrupted context. It runs from the timer
// handler's completion hook, after the ISR frame has been popped, so the
// interrupted context is the top of the stack.
func (c *CPU) sampleTick() {
	period := c.tickPeriod()
	f := c.top()
	if f == nil {
		return // tick interrupted the idle loop: idle time, not tracked
	}
	switch f.kind {
	case frameTask:
		if f.seg == nil {
			c.sampled.User += period
		} else {
			c.sampled.System += period
		}
	case frameISR:
		c.sampled.IRQ += period
	case frameSoftirq:
		c.sampled.Softirq += period
	case frameSpin:
		c.sampled.Spin += period
	case frameSwitch:
		c.sampled.System += period
	}
}

// ProcStat renders a /proc/stat-style summary of both accountings.
func (k *Kernel) ProcStat() string {
	var b strings.Builder
	b.WriteString("cpu   user      system    irq       softirq   spin      (ground truth)\n")
	for _, c := range k.cpus {
		t := c.Times()
		fmt.Fprintf(&b, "cpu%-2d %-9v %-9v %-9v %-9v %-9v\n",
			c.ID, t.User, t.System, t.IRQ, t.Softirq, t.Spin)
	}
	b.WriteString("cpu   user      system    irq       softirq   spin      (tick-sampled, lost under ltmr shielding)\n")
	for _, c := range k.cpus {
		t := c.SampledTimes()
		fmt.Fprintf(&b, "cpu%-2d %-9v %-9v %-9v %-9v %-9v\n",
			c.ID, t.User, t.System, t.IRQ, t.Softirq, t.Spin)
	}
	return b.String()
}
