package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// This file implements the paper's contribution (§3): shielded
// processors. A CPU can be shielded from processes, from device
// interrupts that can be assigned an affinity, and from the local timer
// interrupt — each independently, via a bitmask.
//
// The affinity semantics are the inverted ones the paper defines: a
// shielded CPU is removed from every process's and interrupt's effective
// affinity UNLESS the affinity contains only shielded CPUs, in which case
// the entity has explicitly opted into the shielded set. See
// EffectiveAffinity in mask.go.
//
// Shield changes take effect dynamically: running and queued tasks are
// migrated off newly shielded CPUs, new interrupt deliveries are rerouted
// (instances already pending on a CPU still complete there), and the
// local timer tick is stopped/restarted.

// ErrNoShieldSupport is returned when the kernel was built without the
// shield patch (stock kernel.org configurations).
var ErrNoShieldSupport = fmt.Errorf("kernel: no /proc/shield support in this kernel")

// ShieldProcs returns the process shield mask.
func (k *Kernel) ShieldProcs() CPUMask { return k.shieldProcs }

// ShieldIRQs returns the interrupt shield mask.
func (k *Kernel) ShieldIRQs() CPUMask { return k.shieldIRQs }

// ShieldLTimer returns the local timer shield mask.
func (k *Kernel) ShieldLTimer() CPUMask { return k.shieldLTimer }

func (k *Kernel) checkShieldMask(m CPUMask) error {
	if !k.Cfg.ShieldSupport {
		return ErrNoShieldSupport
	}
	if !m.SubsetOf(k.online) {
		return fmt.Errorf("kernel: shield mask %s names offline CPUs (online %s)", m, k.online)
	}
	return nil
}

// SetShieldProcs shields the CPUs in m from processes.
func (k *Kernel) SetShieldProcs(m CPUMask) error {
	if err := k.checkShieldMask(m); err != nil {
		return err
	}
	old := k.shieldProcs
	k.shieldProcs = m
	k.Trace.Shield(k.Now(), "procs", uint64(old), uint64(m))
	// Dynamic enable: examine every task and push it off CPUs it may no
	// longer use (and allow it back onto ones it now may).
	for _, t := range k.tasks {
		if t.state == TaskExited {
			continue
		}
		k.enforceTaskPlacement(t)
	}
	// CPUs that lost their shield may now run queued work.
	for _, c := range k.cpus {
		if old.Has(c.ID) && !m.Has(c.ID) && c.Idle() {
			c.kick(nil)
		}
	}
	return nil
}

// SetShieldIRQs shields the CPUs in m from assignable device interrupts.
// Already-pending instances still complete on their CPU (§3).
func (k *Kernel) SetShieldIRQs(m CPUMask) error {
	if err := k.checkShieldMask(m); err != nil {
		return err
	}
	k.Trace.Shield(k.Now(), "irqs", uint64(k.shieldIRQs), uint64(m))
	k.shieldIRQs = m
	return nil
}

// SetShieldLTimer shields the CPUs in m from the local timer interrupt.
// Functionality that depends on the tick (CPU time accounting, profiling)
// is lost on those CPUs, as the paper describes.
func (k *Kernel) SetShieldLTimer(m CPUMask) error {
	if err := k.checkShieldMask(m); err != nil {
		return err
	}
	old := k.shieldLTimer
	k.shieldLTimer = m
	k.Trace.Shield(k.Now(), "ltmr", uint64(old), uint64(m))
	for _, c := range k.cpus {
		switch {
		case m.Has(c.ID) && c.tickEv.Valid():
			k.Eng.Cancel(c.tickEv)
			c.tickEv = sim.Event{}
		case !m.Has(c.ID) && old.Has(c.ID) && !c.tickEv.Valid() && k.started:
			c.tickEv = k.Eng.AfterTagged(c.tickPeriod(), evCPUTick.Tag(uint64(c.ID), 0, 0), c.tick)
		}
	}
	return nil
}

// SetShieldAll shields the CPUs in m from processes, interrupts and the
// local timer at once (/proc/shield/all).
func (k *Kernel) SetShieldAll(m CPUMask) error {
	if err := k.SetShieldProcs(m); err != nil {
		return err
	}
	if err := k.SetShieldIRQs(m); err != nil {
		return err
	}
	return k.SetShieldLTimer(m)
}

// ShieldedFor reports whether cpu is shielded in all three dimensions.
func (k *Kernel) ShieldedFor(cpu int) bool {
	return k.shieldProcs.Has(cpu) && k.shieldIRQs.Has(cpu) && k.shieldLTimer.Has(cpu)
}
