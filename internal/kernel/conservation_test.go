package kernel

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Property: user compute work is conserved exactly across preemption,
// timeslice rotation, interrupts and migration — each finished task's
// accounted RunTime equals the work it asked for (with contention models
// disabled and pages locked, there is nothing else to charge).
func TestQuickComputeWorkConserved(t *testing.T) {
	f := func(raw []uint16, seed uint16) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		cfg := RedHawk14(2, 1.0)
		cfg.Timing.BusContention = 0
		// The ISR cache penalty deliberately charges the interrupted
		// task extra time; zero it so conservation is exact.
		cfg.Timing.ISRCachePenalty = 0
		k := New(cfg, uint64(seed)+1)
		line := k.RegisterIRQ("noise", 0, constWork(10*sim.Microsecond), nil)

		works := make([]sim.Duration, len(raw))
		tasks := make([]*Task, len(raw))
		var total sim.Duration
		for i, r := range raw {
			works[i] = sim.Duration(r%2000+1) * 100 * sim.Microsecond
			total += works[i]
			tk := k.NewTask("w", SchedOther, 0, 0, &onceBehavior{actions: []Action{
				Compute(works[i]),
			}})
			tk.MemLocked = true
			tasks[i] = tk
		}
		k.Start()
		var pump func()
		pump = func() { k.Raise(line); k.Eng.After(500*sim.Microsecond, pump) }
		k.Eng.After(0, pump)
		// Horizon: serial worst case plus interrupt overhead.
		k.Eng.Run(sim.Time(total) + sim.Time(total/2) + sim.Time(sim.Second))

		for i, tk := range tasks {
			if tk.State() != TaskExited {
				return false
			}
			// RunTime includes a little kernel time (none here: compute
			// only) — it must equal the requested work exactly, ±1ns
			// per accrual rounding step.
			diff := tk.RunTime - works[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > 100 { // ≤100ns accumulated ceil-rounding
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
