package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(sim.Millisecond, 10)
	h.Add(0)
	h.Add(500 * sim.Microsecond)
	h.Add(1500 * sim.Microsecond)
	h.Add(9500 * sim.Microsecond)
	h.Add(50 * sim.Millisecond) // overflow

	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Bin(0) != 2 || h.Bin(1) != 1 || h.Bin(9) != 1 {
		t.Fatalf("bins = %d %d %d", h.Bin(0), h.Bin(1), h.Bin(9))
	}
	if h.Overflow() != 1 {
		t.Fatalf("Overflow = %d", h.Overflow())
	}
	if h.Min() != 0 {
		t.Fatalf("Min = %v", h.Min())
	}
	if h.Max() != 50*sim.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(sim.Microsecond, 4)
	h.Add(-5)
	if h.Bin(0) != 1 || h.Min() != 0 {
		t.Fatal("negative sample not clamped into first bin")
	}
}

func TestCumulativeBelow(t *testing.T) {
	h := NewHistogram(100*sim.Microsecond, 1000) // 0.1ms bins to 100ms
	h.Add(50 * sim.Microsecond)
	h.Add(150 * sim.Microsecond)
	h.Add(5 * sim.Millisecond)
	h.Add(92300 * sim.Microsecond)

	if got := h.CumulativeBelow(100 * sim.Microsecond); got != 1 {
		t.Fatalf("below 0.1ms = %d, want 1", got)
	}
	if got := h.CumulativeBelow(200 * sim.Microsecond); got != 2 {
		t.Fatalf("below 0.2ms = %d, want 2", got)
	}
	if got := h.CumulativeBelow(10 * sim.Millisecond); got != 3 {
		t.Fatalf("below 10ms = %d, want 3", got)
	}
	if got := h.CumulativeBelow(100 * sim.Millisecond); got != 4 {
		t.Fatalf("below 100ms = %d, want 4", got)
	}
}

func TestCumulativeBelowWithOverflow(t *testing.T) {
	h := NewHistogram(sim.Millisecond, 10)
	h.Add(5 * sim.Millisecond)
	h.Add(20 * sim.Millisecond) // overflow; max = 20ms
	if got := h.CumulativeBelow(15 * sim.Millisecond); got != 1 {
		t.Fatalf("below 15ms = %d, want 1 (overflow sample is >= 15ms)", got)
	}
	if got := h.CumulativeBelow(25 * sim.Millisecond); got != 2 {
		t.Fatalf("below 25ms = %d, want 2 (max < 25ms)", got)
	}
}

func TestFractionBelow(t *testing.T) {
	h := NewHistogram(sim.Millisecond, 100)
	for i := 0; i < 99; i++ {
		h.Add(sim.Duration(i%2) * 500 * sim.Microsecond)
	}
	h.Add(50 * sim.Millisecond)
	if got := h.FractionBelow(sim.Millisecond); got != 0.99 {
		t.Fatalf("FractionBelow(1ms) = %v, want 0.99", got)
	}
	empty := NewHistogram(sim.Millisecond, 4)
	if empty.FractionBelow(sim.Millisecond) != 0 {
		t.Fatal("FractionBelow on empty should be 0")
	}
}

func TestPercentile(t *testing.T) {
	h := NewHistogram(sim.Microsecond, 100)
	for i := 1; i <= 100; i++ {
		h.Add(sim.Duration(i)*sim.Microsecond - 1) // one sample per bin
	}
	if got := h.Percentile(50); got != 50*sim.Microsecond {
		t.Fatalf("p50 = %v, want 50µs", got)
	}
	if got := h.Percentile(99); got != 99*sim.Microsecond {
		t.Fatalf("p99 = %v, want 99µs", got)
	}
	if got := h.Percentile(100); got != 100*sim.Microsecond {
		t.Fatalf("p100 = %v, want 100µs", got)
	}
}

func TestMean(t *testing.T) {
	h := NewHistogram(sim.Microsecond, 10)
	h.Add(10)
	h.Add(20)
	h.Add(30)
	if got := h.Mean(); got != 20 {
		t.Fatalf("Mean = %v, want 20", got)
	}
	if NewHistogram(sim.Microsecond, 1).Mean() != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestLegendFormat(t *testing.T) {
	h := NewHistogram(100*sim.Microsecond, 1000)
	for i := 0; i < 991; i++ {
		h.Add(50 * sim.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Add(5 * sim.Millisecond)
	}
	legend := h.Legend([]sim.Duration{100 * sim.Microsecond, 10 * sim.Millisecond})
	if !strings.Contains(legend, "991 samples") {
		t.Fatalf("legend missing cumulative count:\n%s", legend)
	}
	if !strings.Contains(legend, "99.100%") {
		t.Fatalf("legend missing percentage:\n%s", legend)
	}
	if !strings.Contains(legend, "1000 samples") {
		t.Fatalf("legend missing total row:\n%s", legend)
	}
}

func TestRows(t *testing.T) {
	h := NewHistogram(sim.Millisecond, 4)
	h.Add(500 * sim.Microsecond)
	h.Add(3500 * sim.Microsecond)
	h.Add(10 * sim.Millisecond)
	rows := h.Rows()
	if len(rows) != 3 {
		t.Fatalf("Rows len = %d, want 3", len(rows))
	}
	if rows[0].Upper != sim.Millisecond || rows[0].Count != 1 {
		t.Fatalf("row0 = %+v", rows[0])
	}
	if !rows[2].IsOverflow {
		t.Fatal("last row should be overflow")
	}
}

func TestMerge(t *testing.T) {
	a := NewHistogram(sim.Millisecond, 10)
	b := NewHistogram(sim.Millisecond, 10)
	a.Add(1 * sim.Millisecond)
	b.Add(2 * sim.Millisecond)
	b.Add(99 * sim.Millisecond)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 || a.Max() != 99*sim.Millisecond || a.Overflow() != 1 {
		t.Fatalf("merged: count=%d max=%v overflow=%d", a.Count(), a.Max(), a.Overflow())
	}
	c := NewHistogram(sim.Microsecond, 10)
	if err := a.Merge(c); err == nil {
		t.Fatal("merge of incompatible histograms should error")
	}
}

// Property: total samples are conserved across bins + overflow, and
// cumulative counts are monotone in the threshold.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewHistogram(100*sim.Microsecond, 64)
		for _, v := range raw {
			h.Add(sim.Duration(v))
		}
		var inBins uint64
		for i := 0; i < h.NumBins(); i++ {
			inBins += h.Bin(i)
		}
		if inBins+h.Overflow() != h.Count() || h.Count() != uint64(len(raw)) {
			return false
		}
		prev := uint64(0)
		for th := sim.Duration(0); th <= 7*sim.Millisecond; th += 300 * sim.Microsecond {
			cur := h.CumulativeBelow(th)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReservoir(t *testing.T) {
	r := NewReservoir()
	for _, v := range []sim.Duration{30, 10, 20, 40, 50} {
		r.Add(v)
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Min() != 10 || r.Max() != 50 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	if r.Mean() != 30 {
		t.Fatalf("Mean = %v", r.Mean())
	}
	if got := r.Quantile(0.5); got != 20 && got != 30 {
		t.Fatalf("median = %v", got)
	}
	// Adding after a sorted read must still work.
	r.Add(5)
	if r.Min() != 5 {
		t.Fatalf("Min after re-add = %v", r.Min())
	}
	empty := NewReservoir()
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty reservoir should report zeros")
	}
}

// Property: Merge is equivalent to adding all samples into one histogram.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(a, b []uint32) bool {
		h1 := NewHistogram(100*sim.Microsecond, 32)
		h2 := NewHistogram(100*sim.Microsecond, 32)
		all := NewHistogram(100*sim.Microsecond, 32)
		for _, v := range a {
			h1.Add(sim.Duration(v))
			all.Add(sim.Duration(v))
		}
		for _, v := range b {
			h2.Add(sim.Duration(v))
			all.Add(sim.Duration(v))
		}
		if err := h1.Merge(h2); err != nil {
			return false
		}
		if h1.Count() != all.Count() || h1.Overflow() != all.Overflow() ||
			h1.Min() != all.Min() || h1.Max() != all.Max() || h1.Mean() != all.Mean() {
			return false
		}
		for i := 0; i < 32; i++ {
			if h1.Bin(i) != all.Bin(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
