// Package metrics provides the statistics containers the experiments
// report: latency histograms with the same cumulative-bucket legends the
// paper prints under each figure, and jitter summaries for the determinism
// test.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Histogram accumulates durations into fixed-width bins and tracks exact
// min/max/mean. Bin width and count are chosen at construction; samples
// beyond the last bin land in an overflow bin (their exact values still
// contribute to min/max/mean).
type Histogram struct {
	binWidth sim.Duration
	bins     []uint64
	overflow uint64
	count    uint64
	sum      sim.Duration // exact integer-nanosecond sum, so Merge stays order-independent
	min, max sim.Duration
}

// NewHistogram returns a histogram with nbins bins of the given width.
func NewHistogram(binWidth sim.Duration, nbins int) *Histogram {
	if binWidth <= 0 || nbins <= 0 {
		panic("metrics: histogram needs positive bin width and count")
	}
	return &Histogram{
		binWidth: binWidth,
		bins:     make([]uint64, nbins),
		min:      math.MaxInt64,
	}
}

// Add records one sample. Negative samples are clamped to zero: they can
// only arise from measurement-boundary rounding and belong in the first bin.
func (h *Histogram) Add(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	idx := int(d / h.binWidth)
	if idx >= len(h.bins) {
		h.overflow++
		return
	}
	h.bins[idx]++
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 { return h.count }

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() sim.Duration { return h.max }

// Mean returns the arithmetic mean of all samples.
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return sim.Duration(float64(h.sum) / float64(h.count))
}

// Bin returns the count in bin i (0-based).
func (h *Histogram) Bin(i int) uint64 {
	if i < 0 || i >= len(h.bins) {
		return 0
	}
	return h.bins[i]
}

// NumBins returns the number of regular bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() sim.Duration { return h.binWidth }

// Overflow returns the number of samples beyond the last bin.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// CumulativeBelow returns how many samples were strictly below d.
// d is rounded down to a bin boundary; the overflow bin counts as below
// only when d exceeds the histogram range and max < d.
func (h *Histogram) CumulativeBelow(d sim.Duration) uint64 {
	full := int(d / h.binWidth)
	var n uint64
	for i := 0; i < full && i < len(h.bins); i++ {
		n += h.bins[i]
	}
	if full >= len(h.bins) && h.max < d {
		n += h.overflow
	}
	return n
}

// FractionBelow returns the fraction of samples strictly below d.
func (h *Histogram) FractionBelow(d sim.Duration) float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.CumulativeBelow(d)) / float64(h.count)
}

// Percentile returns an upper bound for the p-th percentile (0 < p <= 100):
// the right edge of the bin that contains it.
func (h *Histogram) Percentile(p float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.bins {
		cum += c
		if cum >= target {
			return sim.Duration(i+1) * h.binWidth
		}
	}
	return h.max
}

// Legend renders the cumulative table the paper prints under its interrupt
// response figures, one row per threshold:
//
//	59484375 samples < 0.1ms (99.140%)
func (h *Histogram) Legend(thresholds []sim.Duration) string {
	var b strings.Builder
	for _, th := range thresholds {
		n := h.CumulativeBelow(th)
		fmt.Fprintf(&b, "%12d samples < %-8s (%7.3f%%)\n",
			n, th.String(), 100*float64(n)/float64(maxU64(h.count, 1)))
	}
	return b.String()
}

// Rows returns (right-edge, count) pairs for every non-empty bin plus the
// overflow bin, for plotting or table output.
func (h *Histogram) Rows() []BinRow {
	var rows []BinRow
	for i, c := range h.bins {
		if c > 0 {
			rows = append(rows, BinRow{Upper: sim.Duration(i+1) * h.binWidth, Count: c})
		}
	}
	if h.overflow > 0 {
		rows = append(rows, BinRow{Upper: h.max, Count: h.overflow, IsOverflow: true})
	}
	return rows
}

// BinRow is one row of histogram output.
type BinRow struct {
	Upper      sim.Duration // right edge of the bin (or max, for overflow)
	Count      uint64
	IsOverflow bool
}

// Merge adds all samples of other into h. Both histograms must have the
// same bin width and bin count.
func (h *Histogram) Merge(other *Histogram) error {
	if h.binWidth != other.binWidth || len(h.bins) != len(other.bins) {
		return fmt.Errorf("metrics: merge of incompatible histograms (%v/%d vs %v/%d)",
			h.binWidth, len(h.bins), other.binWidth, len(other.bins))
	}
	for i, c := range other.bins {
		h.bins[i] += c
	}
	h.overflow += other.overflow
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	return nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Reservoir keeps an exact, bounded sample of observations for cases where
// exact percentiles of modest streams are wanted (e.g. per-iteration loop
// times in the determinism test, where the stream is small).
type Reservoir struct {
	samples []sim.Duration
	sorted  bool
}

// NewReservoir returns an empty exact-sample container.
func NewReservoir() *Reservoir { return &Reservoir{} }

// Add records one observation.
func (r *Reservoir) Add(d sim.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Len returns the number of observations.
func (r *Reservoir) Len() int { return len(r.samples) }

// Quantile returns the exact q-quantile (0 <= q <= 1) by nearest-rank.
func (r *Reservoir) Quantile(q float64) sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	idx := int(q*float64(len(r.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.samples) {
		idx = len(r.samples) - 1
	}
	return r.samples[idx]
}

// Min returns the smallest observation.
func (r *Reservoir) Min() sim.Duration { return r.Quantile(0) }

// Max returns the largest observation.
func (r *Reservoir) Max() sim.Duration { return r.Quantile(1) }

// Mean returns the arithmetic mean.
func (r *Reservoir) Mean() sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.samples {
		sum += float64(s)
	}
	return sim.Duration(sum / float64(len(r.samples)))
}

// Samples returns the raw observations (not a copy; callers must not
// mutate).
func (r *Reservoir) Samples() []sim.Duration { return r.samples }
