package metrics

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// JitterReport summarises the determinism test exactly the way the paper's
// figure legends do: the ideal (best-case) time for the code path, the
// worst observed time, and the jitter — their difference — in absolute
// terms and as a percentage of the ideal.
type JitterReport struct {
	Ideal sim.Duration // best-case execution time of the code path
	Max   sim.Duration // worst observed execution time
	Runs  int          // number of loop executions measured
	// Variances holds, for each run, the excess over Ideal (>= 0).
	Variances []sim.Duration
}

// NewJitterReport builds a report from raw per-run execution times.
// The ideal is taken as the minimum observed, matching the paper's method
// of calibrating the ideal on an unloaded system and treating any slower
// run as impacted by indeterminism.
func NewJitterReport(runs []sim.Duration) JitterReport {
	if len(runs) == 0 {
		return JitterReport{}
	}
	ideal := runs[0]
	for _, d := range runs {
		if d < ideal {
			ideal = d
		}
	}
	return NewJitterReportWithIdeal(ideal, runs)
}

// NewJitterReportWithIdeal builds a report against an explicitly
// calibrated ideal (the paper measures the ideal on an unloaded system,
// then compares loaded runs against it). Runs faster than the ideal —
// possible only through calibration noise — lower the ideal to keep
// variances non-negative.
func NewJitterReportWithIdeal(ideal sim.Duration, runs []sim.Duration) JitterReport {
	r := JitterReport{Runs: len(runs), Ideal: ideal}
	if len(runs) == 0 {
		return r
	}
	for _, d := range runs {
		if d < r.Ideal {
			r.Ideal = d
		}
		if d > r.Max {
			r.Max = d
		}
	}
	r.Variances = make([]sim.Duration, len(runs))
	for i, d := range runs {
		r.Variances[i] = d - r.Ideal
	}
	return r
}

// Jitter returns Max - Ideal.
func (r JitterReport) Jitter() sim.Duration { return r.Max - r.Ideal }

// JitterPercent returns the jitter as a percentage of the ideal time,
// the headline number of the paper's Figures 1–4.
func (r JitterReport) JitterPercent() float64 {
	if r.Ideal <= 0 {
		return 0
	}
	return 100 * float64(r.Jitter()) / float64(r.Ideal)
}

// Legend renders the three-line summary printed under Figures 1–4:
//
//	ideal:  1.150770 sec
//	max:    1.451925 sec
//	jitter: 0.301155 sec (26.17%)
func (r JitterReport) Legend() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ideal:  %.6f sec\n", r.Ideal.Seconds())
	fmt.Fprintf(&b, "max:    %.6f sec\n", r.Max.Seconds())
	fmt.Fprintf(&b, "jitter: %.6f sec (%.2f%%)\n", r.Jitter().Seconds(), r.JitterPercent())
	return b.String()
}

// VarianceHistogram bins the per-run variance from ideal with the given
// bin width, reproducing the x-axis of Figures 1–4 ("time difference in
// milliseconds").
func (r JitterReport) VarianceHistogram(binWidth sim.Duration, nbins int) *Histogram {
	h := NewHistogram(binWidth, nbins)
	for _, v := range r.Variances {
		h.Add(v)
	}
	return h
}
