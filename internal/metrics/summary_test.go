package metrics

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// The merge laws the parallel replication engine relies on: merging
// per-shard summaries must give exactly the result of one unsharded
// accumulation, regardless of how samples are split or in which order
// shards are folded. Summaries are built from generated sample slices
// (never from free-form field values), so every tested value is
// reachable by Add.

func jitterOf(samples []uint32) JitterSummary {
	var s JitterSummary
	for _, v := range samples {
		s.Add(sim.Duration(v))
	}
	return s
}

func responseOf(samples []uint32) ResponseSummary {
	var s ResponseSummary
	for _, v := range samples {
		s.Add(sim.Duration(v))
	}
	return s
}

func TestJitterSummaryMergeCommutative(t *testing.T) {
	f := func(a, b []uint32) bool {
		ab := jitterOf(a)
		ab.Merge(jitterOf(b))
		ba := jitterOf(b)
		ba.Merge(jitterOf(a))
		return ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJitterSummaryMergeAssociative(t *testing.T) {
	f := func(a, b, c []uint32) bool {
		left := jitterOf(a)
		left.Merge(jitterOf(b))
		left.Merge(jitterOf(c))

		bc := jitterOf(b)
		bc.Merge(jitterOf(c))
		right := jitterOf(a)
		right.Merge(bc)
		return left == right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJitterSummaryMergeEqualsUnsharded(t *testing.T) {
	f := func(a, b []uint32) bool {
		merged := jitterOf(a)
		merged.Merge(jitterOf(b))
		return merged == jitterOf(append(append([]uint32{}, a...), b...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResponseSummaryMergeCommutative(t *testing.T) {
	f := func(a, b []uint32) bool {
		ab := responseOf(a)
		ab.Merge(responseOf(b))
		ba := responseOf(b)
		ba.Merge(responseOf(a))
		return ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResponseSummaryMergeAssociative(t *testing.T) {
	f := func(a, b, c []uint32) bool {
		left := responseOf(a)
		left.Merge(responseOf(b))
		left.Merge(responseOf(c))

		bc := responseOf(b)
		bc.Merge(responseOf(c))
		right := responseOf(a)
		right.Merge(bc)
		return left == right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResponseSummaryMergeEqualsUnsharded(t *testing.T) {
	f := func(a, b []uint32) bool {
		merged := responseOf(a)
		merged.Merge(responseOf(b))
		return merged == responseOf(append(append([]uint32{}, a...), b...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryMergeEmptyIdentity(t *testing.T) {
	f := func(a []uint32) bool {
		j := jitterOf(a)
		j.Merge(JitterSummary{})
		left := JitterSummary{}
		left.Merge(jitterOf(a))

		r := responseOf(a)
		r.Merge(ResponseSummary{})
		rleft := ResponseSummary{}
		rleft.Merge(responseOf(a))
		return j == jitterOf(a) && left == jitterOf(a) &&
			r == responseOf(a) && rleft == responseOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryStats(t *testing.T) {
	var s JitterSummary
	for _, v := range []sim.Duration{100, 150, 130} {
		s.Add(v)
	}
	if s.Ideal != 100 || s.Max != 150 || s.Jitter() != 50 || s.Mean() != 126 {
		t.Fatalf("summary %+v", s)
	}
	if p := s.JitterPercent(); p != 50 {
		t.Fatalf("jitter%% = %v", p)
	}
	var r ResponseSummary
	if r.Mean() != 0 || (JitterSummary{}).Mean() != 0 {
		t.Fatal("empty summaries must have zero mean")
	}
}

// TestHistogramPercentileInvariantUnderSharding: splitting a stream into
// shards, histogramming each shard, and merging must leave every
// percentile (and the cumulative counts they derive from) exactly equal
// to the unsharded histogram's.
func TestHistogramPercentileInvariantUnderSharding(t *testing.T) {
	f := func(samples []uint16, cut uint8) bool {
		if len(samples) == 0 {
			return true
		}
		const binW, nbins = 16, 64
		whole := NewHistogram(binW, nbins)
		for _, v := range samples {
			whole.Add(sim.Duration(v))
		}

		// Shard at an arbitrary generated cut point (plus an empty shard,
		// which must be a no-op).
		k := int(cut) % (len(samples) + 1)
		shards := [][]uint16{samples[:k], samples[k:], nil}
		merged := NewHistogram(binW, nbins)
		for _, sh := range shards {
			part := NewHistogram(binW, nbins)
			for _, v := range sh {
				part.Add(sim.Duration(v))
			}
			if err := merged.Merge(part); err != nil {
				return false
			}
		}

		for _, p := range []float64{1, 25, 50, 90, 99, 99.9, 100} {
			if merged.Percentile(p) != whole.Percentile(p) {
				return false
			}
		}
		for _, th := range []sim.Duration{0, 1, binW, 3 * binW, binW * nbins, 1 << 20} {
			if merged.CumulativeBelow(th) != whole.CumulativeBelow(th) {
				return false
			}
		}
		return merged.Count() == whole.Count() &&
			merged.Min() == whole.Min() && merged.Max() == whole.Max() &&
			reflect.DeepEqual(merged.Rows(), whole.Rows())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestHistogramMergeIncompatible pins the error path the replication
// merge relies on never hitting.
func TestHistogramMergeIncompatible(t *testing.T) {
	a := NewHistogram(10, 10)
	if err := a.Merge(NewHistogram(20, 10)); err == nil {
		t.Error("bin-width mismatch must error")
	}
	if err := a.Merge(NewHistogram(10, 20)); err == nil {
		t.Error("bin-count mismatch must error")
	}
}
