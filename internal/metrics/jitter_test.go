package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestJitterReport(t *testing.T) {
	runs := []sim.Duration{
		sim.DurationOf(1.150770),
		sim.DurationOf(1.2),
		sim.DurationOf(1.451925),
		sim.DurationOf(1.16),
	}
	r := NewJitterReport(runs)
	if r.Ideal != sim.DurationOf(1.150770) {
		t.Fatalf("Ideal = %v", r.Ideal)
	}
	if r.Max != sim.DurationOf(1.451925) {
		t.Fatalf("Max = %v", r.Max)
	}
	wantJitter := sim.DurationOf(1.451925) - sim.DurationOf(1.150770)
	if r.Jitter() != wantJitter {
		t.Fatalf("Jitter = %v, want %v", r.Jitter(), wantJitter)
	}
	pct := r.JitterPercent()
	if pct < 26.0 || pct > 26.3 {
		t.Fatalf("JitterPercent = %v, want ~26.17", pct)
	}
}

func TestJitterLegend(t *testing.T) {
	r := NewJitterReport([]sim.Duration{sim.Second, sim.DurationOf(1.1)})
	legend := r.Legend()
	for _, want := range []string{"ideal:  1.000000 sec", "max:    1.100000 sec", "jitter: 0.100000 sec (10.00%)"} {
		if !strings.Contains(legend, want) {
			t.Fatalf("legend missing %q:\n%s", want, legend)
		}
	}
}

func TestJitterEmpty(t *testing.T) {
	r := NewJitterReport(nil)
	if r.Jitter() != 0 || r.JitterPercent() != 0 {
		t.Fatal("empty report should be all zeros")
	}
}

func TestVarianceHistogram(t *testing.T) {
	r := NewJitterReport([]sim.Duration{sim.Second, sim.Second + 5*sim.Millisecond, sim.Second + 60*sim.Millisecond})
	h := r.VarianceHistogram(10*sim.Millisecond, 10)
	if h.Bin(0) != 2 { // 0 and 5ms variance
		t.Fatalf("bin0 = %d, want 2", h.Bin(0))
	}
	if h.Bin(6) != 1 { // 60ms variance
		t.Fatalf("bin6 = %d, want 1", h.Bin(6))
	}
}

// Property: all variances are non-negative and max variance equals Jitter().
func TestQuickJitterInvariants(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		runs := make([]sim.Duration, len(raw))
		for i, v := range raw {
			runs[i] = sim.Duration(v) + sim.Second
		}
		r := NewJitterReport(runs)
		var maxVar sim.Duration
		for _, v := range r.Variances {
			if v < 0 {
				return false
			}
			if v > maxVar {
				maxVar = v
			}
		}
		return maxVar == r.Jitter() && r.Ideal <= r.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
