package metrics

import "repro/internal/sim"

// The summaries below are the mergeable counterparts of the ad-hoc
// min/max/sum accumulators the experiment runners used to keep inline.
// They exist so the parallel replication engine (internal/runner) can
// fold per-replication results into one figure: every field is either a
// min, a max, or an exact integer sum, which makes Merge commutative and
// associative *bit-for-bit* — no floating-point accumulation order to
// worry about. Property tests in this package verify both laws.

// JitterSummary aggregates per-run execution times of the determinism
// test (§5.1): the count, the fastest run (the in-sample ideal), the
// slowest, and the exact total for the mean.
type JitterSummary struct {
	Runs  int
	Ideal sim.Duration // fastest observed run
	Max   sim.Duration // slowest observed run
	Total sim.Duration // exact sum of all runs
}

// Add records one timed run.
func (s *JitterSummary) Add(d sim.Duration) {
	if s.Runs == 0 || d < s.Ideal {
		s.Ideal = d
	}
	if s.Runs == 0 || d > s.Max {
		s.Max = d
	}
	s.Runs++
	s.Total += d
}

// Merge folds another summary into s. The empty summary is the identity
// element; the operation is exactly commutative and associative.
func (s *JitterSummary) Merge(o JitterSummary) {
	if o.Runs == 0 {
		return
	}
	if s.Runs == 0 {
		*s = o
		return
	}
	if o.Ideal < s.Ideal {
		s.Ideal = o.Ideal
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Runs += o.Runs
	s.Total += o.Total
}

// Jitter returns Max - Ideal, the figure-legend headline.
func (s JitterSummary) Jitter() sim.Duration { return s.Max - s.Ideal }

// JitterPercent returns the jitter as a percentage of the ideal.
func (s JitterSummary) JitterPercent() float64 {
	if s.Ideal <= 0 {
		return 0
	}
	return 100 * float64(s.Jitter()) / float64(s.Ideal)
}

// Mean returns the mean run time.
func (s JitterSummary) Mean() sim.Duration {
	if s.Runs == 0 {
		return 0
	}
	return s.Total / sim.Duration(s.Runs)
}

// ResponseSummary aggregates interrupt-response latencies (§6): sample
// count, extremes, and the exact total for the mean. It is embedded in
// core.ResponseResult, so a figure's Samples/Min/Max are these fields.
type ResponseSummary struct {
	Samples uint64
	Min     sim.Duration
	Max     sim.Duration
	Total   sim.Duration // exact sum of all samples
}

// Add records one latency sample.
func (s *ResponseSummary) Add(d sim.Duration) {
	if s.Samples == 0 || d < s.Min {
		s.Min = d
	}
	if s.Samples == 0 || d > s.Max {
		s.Max = d
	}
	s.Samples++
	s.Total += d
}

// Merge folds another summary into s. The empty summary is the identity
// element; the operation is exactly commutative and associative.
func (s *ResponseSummary) Merge(o ResponseSummary) {
	if o.Samples == 0 {
		return
	}
	if s.Samples == 0 {
		*s = o
		return
	}
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Samples += o.Samples
	s.Total += o.Total
}

// Mean returns the mean latency.
func (s ResponseSummary) Mean() sim.Duration {
	if s.Samples == 0 {
		return 0
	}
	return s.Total / sim.Duration(s.Samples)
}
