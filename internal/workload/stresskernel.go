package workload

import (
	"fmt"

	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// StressKernel reproduces the Red Hat stress-kernel RPM load used for the
// interrupt response tests (§6.1), the same workload as Clark Williams'
// scheduler latency study [5]. Six programs run concurrently:
//
//	NFS-COMPILE — repeated kernel compilation over loopback NFS
//	TTCP        — bulk data over the loopback device
//	FIFOS_MMAP  — FIFO ping-pong alternating with mmap'd file ops
//	P3_FPU      — floating-point matrix operations (pure CPU)
//	FS          — pathological file-system operations (holes, truncates)
//	CRASHME     — random byte streams executed as code (faults galore)
//
// What matters for latency is the kernel activity each induces: long
// syscall residencies (FS, CRASHME), fs-spinlock traffic (all the file
// work), loopback softirq storms (NFS, TTCP), page faults (CRASHME,
// FIFOS_MMAP) and raw CPU pressure (P3_FPU, compiles).
type StressKernel struct {
	disk *dev.Disk

	// ResidencyCap bounds the heaviest single kernel entry. The 2.4
	// stock kernel's worst observed sections under this load were tens
	// of milliseconds (Figure 5 tops out at ~92 ms).
	ResidencyCap sim.Duration
	// Compilers is the number of parallel compile tasks.
	Compilers int
}

// NewStressKernel returns the suite with paper-era defaults.
func NewStressKernel(disk *dev.Disk) *StressKernel {
	return &StressKernel{
		disk:         disk,
		ResidencyCap: 90 * sim.Millisecond,
		Compilers:    2,
	}
}

// Name implements Workload.
func (s *StressKernel) Name() string { return "stress-kernel" }

// Start implements Workload.
func (s *StressKernel) Start(k *kernel.Kernel) {
	s.startNFSCompile(k)
	s.startTTCPLoop(k)
	s.startFIFOSMmap(k)
	s.startP3FPU(k)
	s.startFS(k)
	s.startCrashme(k)
}

// phaseBehavior carries the one counter every stress program keeps; the
// concrete behaviors embed it so the counter crosses snapshots as one
// word.
type phaseBehavior struct {
	phase uint64
}

func (b *phaseBehavior) BehaviorState() []uint64         { return []uint64{b.phase} }
func (b *phaseBehavior) SetBehaviorState(words []uint64) { b.phase = words[0] }

// nfsCompile: cc1 burns CPU in bursts; every file involves NFS RPCs
// over loopback (local softirq work) and fs operations.
type nfsCompile struct {
	phaseBehavior
	s *StressKernel
}

func (b *nfsCompile) Next(t *kernel.Task) kernel.Action {
	s := b.s
	k := t.Kernel()
	rng := t.RNG()
	b.phase++
	switch b.phase % 4 {
	case 0: // compile a unit
		return kernel.Compute(rng.Exp(25 * sim.Millisecond))
	case 1: // read sources via NFS: RPC + protocol work locally
		netSoftirqHere(t, kernel.SoftirqNetRx, rng.Uniform(20*sim.Microsecond, 120*sim.Microsecond))
		return kernel.Syscall(fsSyscall(k, rng, "nfs-read",
			residencyTail(rng, 25*sim.Microsecond, 1.5, s.ResidencyCap/3)))
	case 2: // write the object file back over NFS
		netSoftirqHere(t, kernel.SoftirqNetTx, rng.Uniform(15*sim.Microsecond, 80*sim.Microsecond))
		if s.disk != nil && rng.Bool(0.3) {
			s.disk.Submit(64<<10, nil)
		}
		return kernel.Syscall(fsSyscall(k, rng, "nfs-write",
			residencyTail(rng, 22*sim.Microsecond, 1.5, s.ResidencyCap/3)))
	default: // link/stat bookkeeping
		return kernel.Syscall(fsSyscall(k, rng, "stat", rng.Uniform(5*sim.Microsecond, 60*sim.Microsecond)))
	}
}

func (b *nfsCompile) BehaviorName() string { return "wl.stress-nfs-compile" }

func (s *StressKernel) startNFSCompile(k *kernel.Kernel) {
	for i := 0; i < s.Compilers; i++ {
		name := fmt.Sprintf("cc1-%d", i)
		k.NewTask(name, kernel.SchedOther, 0, 0, &nfsCompile{s: s})
	}
}

// ttcpTx / ttcpRx: bulk transfer over loopback — sender and receiver
// tasks exchanging via a wait queue, with protocol softirq work per
// chunk. The post-syscall protocol work runs from the ActionDone hook,
// so it survives a snapshot taken while the send is in flight.
const ttcpChunk = 64 << 10

type ttcpTx struct {
	phaseBehavior
	dataReady *kernel.WaitQueue
}

func (b *ttcpTx) Next(t *kernel.Task) kernel.Action {
	rng := t.RNG()
	b.phase++
	if b.phase%2 == 0 {
		// User-mode buffer fill between sends.
		return kernel.Compute(rng.Uniform(80*sim.Microsecond, 400*sim.Microsecond))
	}
	return kernel.Syscall(&kernel.SyscallCall{
		Name: "send(lo)",
		Segments: []kernel.Segment{
			{Kind: kernel.SegWork, D: rng.Uniform(20*sim.Microsecond, 90*sim.Microsecond),
				Lock: t.Kernel().NamedLock("net")},
		},
	})
}

func (b *ttcpTx) ActionDone(t *kernel.Task, kind kernel.ActionKind, now sim.Time) {
	if kind != kernel.ActSyscall {
		return
	}
	// Loopback skips the wire-driver costs: ~1.5µs/KB.
	netSoftirqHere(t, kernel.SoftirqNetTx, sim.Duration(ttcpChunk/1024)*1500*sim.Nanosecond)
	t.Kernel().WakeAll(b.dataReady, nil)
}

func (b *ttcpTx) BehaviorName() string { return "wl.stress-ttcp-tx" }

type ttcpRx struct {
	phaseBehavior
	dataReady *kernel.WaitQueue
}

func (b *ttcpRx) Next(t *kernel.Task) kernel.Action {
	rng := t.RNG()
	b.phase++
	if b.phase%2 == 0 {
		return kernel.Compute(rng.Uniform(60*sim.Microsecond, 300*sim.Microsecond))
	}
	return kernel.Syscall(&kernel.SyscallCall{
		Name: "recv(lo)",
		Segments: []kernel.Segment{
			{Kind: kernel.SegBlock, Wait: b.dataReady},
			{Kind: kernel.SegWork, D: rng.Uniform(15*sim.Microsecond, 70*sim.Microsecond)},
		},
	})
}

func (b *ttcpRx) ActionDone(t *kernel.Task, kind kernel.ActionKind, now sim.Time) {
	if kind != kernel.ActSyscall {
		return
	}
	netSoftirqHere(t, kernel.SoftirqNetRx, sim.Duration(ttcpChunk/1024)*2*sim.Microsecond)
}

func (b *ttcpRx) BehaviorName() string { return "wl.stress-ttcp-rx" }

func (s *StressKernel) startTTCPLoop(k *kernel.Kernel) {
	dataReady := k.NewWaitQueue("ttcp-lo")
	k.NewTask("ttcp-tx", kernel.SchedOther, 0, 0, &ttcpTx{dataReady: dataReady})
	k.NewTask("ttcp-rx", kernel.SchedOther, 0, 0, &ttcpRx{dataReady: dataReady})
}

// fifosA / fifosB: a writer pushes data through a FIFO to a reader, both
// alternating with operations on an mmap'd file (page faults: the tasks
// do not mlock). The writer never blocks on the FIFO, so the pair cannot
// deadlock on a lost wakeup; data flow is writer-paced.
type fifosA struct {
	phaseBehavior
	fifo *kernel.WaitQueue
}

func (b *fifosA) Next(t *kernel.Task) kernel.Action {
	rng := t.RNG()
	b.phase++
	switch b.phase % 3 {
	case 0: // write into the FIFO, waking the reader (from ActionDone)
		return kernel.Syscall(&kernel.SyscallCall{
			Name: "fifo-write",
			Segments: []kernel.Segment{
				{Kind: kernel.SegWork, D: rng.Uniform(5*sim.Microsecond, 40*sim.Microsecond),
					Lock: t.Kernel().NamedLock("inode")},
			},
		})
	case 1: // mmap'd file pass: user-mode touching with page faults
		return kernel.Compute(rng.Uniform(50*sim.Microsecond, 400*sim.Microsecond))
	default: // pace the stream
		return kernel.Sleep(rng.Uniform(50*sim.Microsecond, 300*sim.Microsecond))
	}
}

func (b *fifosA) ActionDone(t *kernel.Task, kind kernel.ActionKind, now sim.Time) {
	if kind == kernel.ActSyscall && b.phase%3 == 0 {
		t.Kernel().WakeAll(b.fifo, nil)
	}
}

func (b *fifosA) BehaviorName() string { return "wl.stress-fifos-a" }

type fifosB struct {
	phaseBehavior
	fifo *kernel.WaitQueue
}

func (b *fifosB) Next(t *kernel.Task) kernel.Action {
	rng := t.RNG()
	b.phase++
	if b.phase%2 == 1 {
		return kernel.Syscall(&kernel.SyscallCall{
			Name: "fifo-read",
			Segments: []kernel.Segment{
				{Kind: kernel.SegBlock, Wait: b.fifo},
				{Kind: kernel.SegWork, D: rng.Uniform(5*sim.Microsecond, 30*sim.Microsecond),
					Lock: t.Kernel().NamedLock("inode")},
			},
		})
	}
	return kernel.Compute(rng.Uniform(50*sim.Microsecond, 400*sim.Microsecond))
}

func (b *fifosB) BehaviorName() string { return "wl.stress-fifos-b" }

func (s *StressKernel) startFIFOSMmap(k *kernel.Kernel) {
	fifo := k.NewWaitQueue("fifo")
	k.NewTask("fifos-a", kernel.SchedOther, 0, 0, &fifosA{fifo: fifo})
	k.NewTask("fifos-b", kernel.SchedOther, 0, 0, &fifosB{fifo: fifo})
}

// p3fpu: the pure floating-point hog.
type p3fpu struct{}

func (p3fpu) Next(t *kernel.Task) kernel.Action {
	return kernel.Compute(t.RNG().Exp(15 * sim.Millisecond))
}

func (p3fpu) BehaviorName() string            { return "wl.stress-p3-fpu" }
func (p3fpu) BehaviorState() []uint64         { return nil }
func (p3fpu) SetBehaviorState(words []uint64) {}

func (s *StressKernel) startP3FPU(k *kernel.Kernel) {
	k.NewTask("p3_fpu", kernel.SchedOther, 0, 0, p3fpu{})
}

// fsStress: "all sorts of unnatural acts on a set of files" — the
// heavy-tailed kernel residencies that dominate Figure 5's worst case.
type fsStress struct {
	phaseBehavior
	s *StressKernel
}

func (b *fsStress) Next(t *kernel.Task) kernel.Action {
	s := b.s
	k := t.Kernel()
	rng := t.RNG()
	b.phase++
	switch {
	case b.phase%10 == 0:
		// Truncate/extend a huge holey file: the long one — the
		// residency class behind the stock kernel's ~90ms tail.
		if s.disk != nil {
			s.disk.Submit(256<<10, nil)
		}
		return kernel.Syscall(fsSyscall(k, rng, "truncate",
			residencyTail(rng, 150*sim.Microsecond, 0.95, s.ResidencyCap)))
	case b.phase%2 == 0:
		// Buffer preparation between file operations (user mode).
		return kernel.Compute(rng.Uniform(100*sim.Microsecond, 800*sim.Microsecond))
	default:
		return kernel.Syscall(fsSyscall(k, rng, "fs-op",
			residencyTail(rng, 18*sim.Microsecond, 1.5, s.ResidencyCap/6)))
	}
}

func (b *fsStress) BehaviorName() string { return "wl.stress-fs" }

func (s *StressKernel) startFS(k *kernel.Kernel) {
	k.NewTask("fs-stress", kernel.SchedOther, 0, 0, &fsStress{s: s})
}

// crashme: random instruction streams — short user bursts ending in
// faults the kernel must clean up, occasionally wedging into long
// exception/teardown paths.
type crashme struct {
	s *StressKernel
}

func (b *crashme) Next(t *kernel.Task) kernel.Action {
	rng := t.RNG()
	if rng.Bool(0.7) {
		return kernel.Compute(rng.Uniform(20*sim.Microsecond, 300*sim.Microsecond))
	}
	// Fault handling: mostly quick fixups, occasionally a heavy
	// teardown (core dump-ish) with real residency.
	res := residencyTail(rng, 20*sim.Microsecond, 1.25, b.s.ResidencyCap/2)
	return kernel.Syscall(&kernel.SyscallCall{
		Name: "fault",
		Segments: []kernel.Segment{
			{Kind: kernel.SegWork, D: res.Scale(0.6)},
			{Kind: kernel.SegWork, D: res.Scale(0.4), NonPreempt: true},
		},
	})
}

func (b *crashme) BehaviorName() string            { return "wl.stress-crashme" }
func (b *crashme) BehaviorState() []uint64         { return nil }
func (b *crashme) SetBehaviorState(words []uint64) {}

func (s *StressKernel) startCrashme(k *kernel.Kernel) {
	k.NewTask("crashme", kernel.SchedOther, 0, 0, &crashme{s: s})
}
