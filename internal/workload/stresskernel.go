package workload

import (
	"fmt"

	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// StressKernel reproduces the Red Hat stress-kernel RPM load used for the
// interrupt response tests (§6.1), the same workload as Clark Williams'
// scheduler latency study [5]. Six programs run concurrently:
//
//	NFS-COMPILE — repeated kernel compilation over loopback NFS
//	TTCP        — bulk data over the loopback device
//	FIFOS_MMAP  — FIFO ping-pong alternating with mmap'd file ops
//	P3_FPU      — floating-point matrix operations (pure CPU)
//	FS          — pathological file-system operations (holes, truncates)
//	CRASHME     — random byte streams executed as code (faults galore)
//
// What matters for latency is the kernel activity each induces: long
// syscall residencies (FS, CRASHME), fs-spinlock traffic (all the file
// work), loopback softirq storms (NFS, TTCP), page faults (CRASHME,
// FIFOS_MMAP) and raw CPU pressure (P3_FPU, compiles).
type StressKernel struct {
	disk *dev.Disk

	// ResidencyCap bounds the heaviest single kernel entry. The 2.4
	// stock kernel's worst observed sections under this load were tens
	// of milliseconds (Figure 5 tops out at ~92 ms).
	ResidencyCap sim.Duration
	// Compilers is the number of parallel compile tasks.
	Compilers int
}

// NewStressKernel returns the suite with paper-era defaults.
func NewStressKernel(disk *dev.Disk) *StressKernel {
	return &StressKernel{
		disk:         disk,
		ResidencyCap: 90 * sim.Millisecond,
		Compilers:    2,
	}
}

// Name implements Workload.
func (s *StressKernel) Name() string { return "stress-kernel" }

// Start implements Workload.
func (s *StressKernel) Start(k *kernel.Kernel) {
	s.startNFSCompile(k)
	s.startTTCPLoop(k)
	s.startFIFOSMmap(k)
	s.startP3FPU(k)
	s.startFS(k)
	s.startCrashme(k)
}

// startNFSCompile: cc1 burns CPU in bursts; every file involves NFS RPCs
// over loopback (local softirq work) and fs operations.
func (s *StressKernel) startNFSCompile(k *kernel.Kernel) {
	for i := 0; i < s.Compilers; i++ {
		name := fmt.Sprintf("cc1-%d", i)
		phase := 0
		k.NewTask(name, kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
			rng := t.RNG()
			phase++
			switch phase % 4 {
			case 0: // compile a unit
				return kernel.Compute(rng.Exp(25 * sim.Millisecond))
			case 1: // read sources via NFS: RPC + protocol work locally
				netSoftirqHere(t, kernel.SoftirqNetRx, rng.Uniform(20*sim.Microsecond, 120*sim.Microsecond))
				return kernel.Syscall(fsSyscall(k, rng, "nfs-read",
					residencyTail(rng, 25*sim.Microsecond, 1.5, s.ResidencyCap/3)))
			case 2: // write the object file back over NFS
				netSoftirqHere(t, kernel.SoftirqNetTx, rng.Uniform(15*sim.Microsecond, 80*sim.Microsecond))
				if s.disk != nil && rng.Bool(0.3) {
					s.disk.Submit(64<<10, nil)
				}
				return kernel.Syscall(fsSyscall(k, rng, "nfs-write",
					residencyTail(rng, 22*sim.Microsecond, 1.5, s.ResidencyCap/3)))
			default: // link/stat bookkeeping
				return kernel.Syscall(fsSyscall(k, rng, "stat", rng.Uniform(5*sim.Microsecond, 60*sim.Microsecond)))
			}
		}))
	}
}

// startTTCPLoop: bulk transfer over loopback — sender and receiver tasks
// exchanging via a wait queue, with protocol softirq work per chunk.
func (s *StressKernel) startTTCPLoop(k *kernel.Kernel) {
	dataReady := kernel.NewWaitQueue("ttcp-lo")
	const chunk = 64 << 10

	txPhase := 0
	k.NewTask("ttcp-tx", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		rng := t.RNG()
		txPhase++
		if txPhase%2 == 0 {
			// User-mode buffer fill between sends.
			return kernel.Compute(rng.Uniform(80*sim.Microsecond, 400*sim.Microsecond))
		}
		call := &kernel.SyscallCall{
			Name: "send(lo)",
			Segments: []kernel.Segment{
				{Kind: kernel.SegWork, D: rng.Uniform(20*sim.Microsecond, 90*sim.Microsecond),
					Lock: k.NamedLock("net")},
			},
		}
		act := kernel.Syscall(call)
		act.OnComplete = func(sim.Time) {
			// Loopback skips the wire-driver costs: ~1.5µs/KB.
			netSoftirqHere(t, kernel.SoftirqNetTx, sim.Duration(chunk/1024)*1500*sim.Nanosecond)
			k.WakeAll(dataReady, nil)
		}
		return act
	}))

	rxPhase := 0
	k.NewTask("ttcp-rx", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		rng := t.RNG()
		rxPhase++
		if rxPhase%2 == 0 {
			return kernel.Compute(rng.Uniform(60*sim.Microsecond, 300*sim.Microsecond))
		}
		call := &kernel.SyscallCall{
			Name: "recv(lo)",
			Segments: []kernel.Segment{
				{Kind: kernel.SegBlock, Wait: dataReady},
				{Kind: kernel.SegWork, D: rng.Uniform(15*sim.Microsecond, 70*sim.Microsecond)},
			},
		}
		act := kernel.Syscall(call)
		act.OnComplete = func(sim.Time) {
			netSoftirqHere(t, kernel.SoftirqNetRx, sim.Duration(chunk/1024)*2*sim.Microsecond)
		}
		return act
	}))
}

// startFIFOSMmap: a writer pushes data through a FIFO to a reader, both
// alternating with operations on an mmap'd file (page faults: the tasks
// do not mlock). The writer never blocks on the FIFO, so the pair cannot
// deadlock on a lost wakeup; data flow is writer-paced.
func (s *StressKernel) startFIFOSMmap(k *kernel.Kernel) {
	fifo := kernel.NewWaitQueue("fifo")
	phaseA := 0
	k.NewTask("fifos-a", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		rng := t.RNG()
		phaseA++
		switch phaseA % 3 {
		case 0: // write into the FIFO, waking the reader
			call := &kernel.SyscallCall{
				Name: "fifo-write",
				Segments: []kernel.Segment{
					{Kind: kernel.SegWork, D: rng.Uniform(5*sim.Microsecond, 40*sim.Microsecond),
						Lock: k.NamedLock("inode")},
				},
			}
			act := kernel.Syscall(call)
			act.OnComplete = func(sim.Time) { k.WakeAll(fifo, nil) }
			return act
		case 1: // mmap'd file pass: user-mode touching with page faults
			return kernel.Compute(rng.Uniform(50*sim.Microsecond, 400*sim.Microsecond))
		default: // pace the stream
			return kernel.Sleep(rng.Uniform(50*sim.Microsecond, 300*sim.Microsecond))
		}
	}))
	phaseB := 0
	k.NewTask("fifos-b", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		rng := t.RNG()
		phaseB++
		if phaseB%2 == 1 {
			return kernel.Syscall(&kernel.SyscallCall{
				Name: "fifo-read",
				Segments: []kernel.Segment{
					{Kind: kernel.SegBlock, Wait: fifo},
					{Kind: kernel.SegWork, D: rng.Uniform(5*sim.Microsecond, 30*sim.Microsecond),
						Lock: k.NamedLock("inode")},
				},
			})
		}
		return kernel.Compute(rng.Uniform(50*sim.Microsecond, 400*sim.Microsecond))
	}))
}

// startP3FPU: the pure floating-point hog.
func (s *StressKernel) startP3FPU(k *kernel.Kernel) {
	k.NewTask("p3_fpu", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		return kernel.Compute(t.RNG().Exp(15 * sim.Millisecond))
	}))
}

// startFS: "all sorts of unnatural acts on a set of files" — the
// heavy-tailed kernel residencies that dominate Figure 5's worst case.
func (s *StressKernel) startFS(k *kernel.Kernel) {
	phase := 0
	k.NewTask("fs-stress", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		rng := t.RNG()
		phase++
		switch {
		case phase%10 == 0:
			// Truncate/extend a huge holey file: the long one — the
			// residency class behind the stock kernel's ~90ms tail.
			if s.disk != nil {
				s.disk.Submit(256<<10, nil)
			}
			return kernel.Syscall(fsSyscall(k, rng, "truncate",
				residencyTail(rng, 150*sim.Microsecond, 0.95, s.ResidencyCap)))
		case phase%2 == 0:
			// Buffer preparation between file operations (user mode).
			return kernel.Compute(rng.Uniform(100*sim.Microsecond, 800*sim.Microsecond))
		default:
			return kernel.Syscall(fsSyscall(k, rng, "fs-op",
				residencyTail(rng, 18*sim.Microsecond, 1.5, s.ResidencyCap/6)))
		}
	}))
}

// startCrashme: random instruction streams — short user bursts ending in
// faults the kernel must clean up, occasionally wedging into long
// exception/teardown paths.
func (s *StressKernel) startCrashme(k *kernel.Kernel) {
	k.NewTask("crashme", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		rng := t.RNG()
		if rng.Bool(0.7) {
			return kernel.Compute(rng.Uniform(20*sim.Microsecond, 300*sim.Microsecond))
		}
		// Fault handling: mostly quick fixups, occasionally a heavy
		// teardown (core dump-ish) with real residency.
		res := residencyTail(rng, 20*sim.Microsecond, 1.25, s.ResidencyCap/2)
		return kernel.Syscall(&kernel.SyscallCall{
			Name: "fault",
			Segments: []kernel.Segment{
				{Kind: kernel.SegWork, D: res.Scale(0.6)},
				{Kind: kernel.SegWork, D: res.Scale(0.4), NonPreempt: true},
			},
		})
	}))
}
