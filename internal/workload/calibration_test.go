package workload

import (
	"testing"

	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Calibration guard tests: the figure reproductions depend on the duty
// cycles and kernel-activity rates these workloads induce. These tests
// pin the calibrated ranges so an innocent-looking change to a workload
// doesn't silently move the figures.

// dutyOf runs the workload alone on a 2-CPU stock machine and returns
// each named task's CPU duty cycle over the window.
func dutyOf(t *testing.T, mk func(k *kernel.Kernel) Workload, span sim.Duration) map[string]float64 {
	t.Helper()
	k := kernel.New(kernel.StandardLinux24(2, 1.0, false), 7)
	w := mk(k)
	w.Start(k)
	k.Start()
	k.Eng.Run(sim.Time(span))
	out := map[string]float64{}
	for _, task := range k.Tasks() {
		out[task.Name] = float64(task.RunTime) / float64(span)
	}
	return out
}

func TestScpSshdDutyCycle(t *testing.T) {
	// sshd decrypt at ~40ns/byte over ~4-5MB/s effective: the fig1 HT
	// contention calibration expects sshd around 20-60% of one CPU.
	duty := dutyOf(t, func(k *kernel.Kernel) Workload {
		return NewScpFlood(dev.NewNIC(k, "eth0"), dev.NewDisk(k, "sda"))
	}, 3*sim.Second)
	if d := duty["sshd"]; d < 0.15 || d > 0.65 {
		t.Fatalf("sshd duty = %.2f, outside the calibrated band", d)
	}
}

func TestDiskNoiseThrottledDuty(t *testing.T) {
	// disknoise must be writeback-throttled: well below 100% duty (the
	// fig1 sibling-contention calibration depends on it).
	duty := dutyOf(t, func(k *kernel.Kernel) Workload {
		return NewDiskNoise(dev.NewDisk(k, "sda"))
	}, 3*sim.Second)
	if d := duty["disknoise"]; d < 0.05 || d > 0.75 {
		t.Fatalf("disknoise duty = %.2f, outside the calibrated band", d)
	}
}

func TestScpSoftirqLoadRate(t *testing.T) {
	// The fig3/fig4 jitter comes from the NET softirq + ISR load on the
	// interrupt CPU: with static routing everything lands on cpu0, and
	// the combined rate must sit in the calibrated band (~8-20% of the
	// CPU during the run).
	k := kernel.New(kernel.StandardLinux24(2, 1.0, false), 7)
	nic := dev.NewNIC(k, "eth0")
	NewScpFlood(nic, dev.NewDisk(k, "sda")).Start(k)
	k.Start()
	span := 3 * sim.Second
	k.Eng.Run(sim.Time(span))
	c0 := k.CPU(0)
	tm := c0.Times()
	frac := float64(tm.IRQ+tm.Softirq) / float64(span)
	if frac < 0.05 || frac > 0.25 {
		t.Fatalf("cpu0 irq+softirq fraction = %.3f, outside the calibrated band", frac)
	}
	// And essentially none of it on cpu1 (static routing).
	tm1 := k.CPU(1).Times()
	frac1 := float64(tm1.IRQ+tm1.Softirq) / float64(span)
	if frac1 > frac/3 {
		t.Fatalf("cpu1 irq+softirq fraction = %.3f — static routing broken", frac1)
	}
}

func TestStressKernelKernelResidencyDuty(t *testing.T) {
	// Fig 5's tail needs the stress suite to keep the CPUs in-kernel a
	// bounded fraction of the time: too little and realfeel never
	// waits; too much and the baseline histogram is wrong.
	k := kernel.New(kernel.StandardLinux24(2, 0.933, false), 7)
	NewStressKernel(dev.NewDisk(k, "sda")).Start(k)
	k.Start()
	span := 5 * sim.Second
	k.Eng.Run(sim.Time(span))
	var sys float64
	for i := 0; i < 2; i++ {
		sys += float64(k.CPU(i).Times().System)
	}
	frac := sys / float64(2*span)
	if frac < 0.03 || frac > 0.5 {
		t.Fatalf("stress-kernel in-kernel fraction = %.3f, outside the calibrated band", frac)
	}
}

func TestStressKernelSaturatesCPUs(t *testing.T) {
	// The interrupt-response experiments assume the machine is busy:
	// under stress-kernel both CPUs should be non-idle most of the time.
	k := kernel.New(kernel.StandardLinux24(2, 0.933, false), 7)
	NewStressKernel(dev.NewDisk(k, "sda")).Start(k)
	k.Start()
	span := 5 * sim.Second
	k.Eng.Run(sim.Time(span))
	var busy float64
	for i := 0; i < 2; i++ {
		busy += float64(k.CPU(i).Times().Busy())
	}
	frac := busy / float64(2*span)
	if frac < 0.6 {
		t.Fatalf("stress-kernel busy fraction = %.3f, machine not loaded", frac)
	}
}
