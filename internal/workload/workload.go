// Package workload implements the background loads from the paper's
// evaluation: the scp-flood and disknoise scripts used for the execution
// determinism tests (§5.1), the Red Hat stress-kernel suite used for the
// interrupt response tests (§6.1), and the X11perf and ttcp loads added in
// the final experiment (§6.3).
//
// Each generator creates SCHED_OTHER tasks and/or device traffic on a
// kernel.Kernel. The point of a workload here is the *kernel activity* it
// induces — syscall residency, spinlock traffic, interrupt and softirq
// load — not its computational output.
package workload

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Workload is anything that can be installed on a machine.
type Workload interface {
	// Start creates the workload's tasks and begins its device traffic.
	// It must be called before kernel.Start.
	Start(k *kernel.Kernel)
	// Name identifies the workload in reports.
	Name() string
}

// fsLocks are the contended 2.4 file-system locks. Splitting them the way
// the real kernel does matters for the shielded-CPU tail (Figure 6): the
// RT read path only collides with holders of the *same* lock.
var fsLocks = []string{"dcache", "inode", "pagecache"}

// fsSyscall builds a file-system syscall with the given total kernel
// residency. A fraction of the residency holds one of the contended fs
// locks; the rest is preemptible kernel work. Long residencies are
// exactly the §6 pathology on stock kernels; on kernels with low-latency
// work the engine splits them automatically.
func fsSyscall(k *kernel.Kernel, rng *sim.RNG, name string, residency sim.Duration) *kernel.SyscallCall {
	lockFrac := 0.15 + 0.25*rng.Float64()
	locked := residency.Scale(lockFrac)
	rest := residency - locked
	lock := k.NamedLock(fsLocks[rng.Intn(len(fsLocks))])
	call := &kernel.SyscallCall{
		Name: name,
		Segments: []kernel.Segment{
			//simlint:allow latbound the residency is the caller's heavy-tailed draw — the §6 pathology stock kernels cannot bound; capped kernels bound the hold via splitSegments
			{Kind: kernel.SegWork, D: rest / 2},
			{Kind: kernel.SegWork, D: locked, Lock: lock}, //simlint:allow latbound the fs-lock hold is a fraction of the heavy-tailed residency; finite only under the critical-section cap
			{Kind: kernel.SegWork, D: rest - rest/2},
		},
	}
	// 2.4 file-system paths still serialize on the Big Kernel Lock
	// surprisingly often; RedHawk's BKL hold time reduction (§1) pushed
	// the lock out of most of them.
	bklProb := 0.12
	if k.Cfg.BKLHoldReduction {
		bklProb = 0.015
	}
	if rng.Bool(bklProb) {
		call.TakesBKL = true
	}
	return call
}

// residencyTail draws a heavy-tailed kernel residency: most calls are
// quick, the tail reaches `cap` — the distribution behind the 92 ms
// worst case of Figure 5.
func residencyTail(rng *sim.RNG, typical sim.Duration, alpha float64, cap sim.Duration) sim.Duration {
	return rng.Pareto(typical, alpha, cap)
}

// netSoftirqHere raises network softirq work on the CPU the task is
// currently on — loopback traffic (NFS over lo, ttcp over lo) is
// processed locally, without a hardware interrupt.
func netSoftirqHere(t *kernel.Task, vec kernel.SoftirqVec, work sim.Duration) {
	cpu := t.CPU()
	if cpu < 0 {
		cpu = 0
	}
	t.Kernel().CPU(cpu).RaiseSoftirq(vec, work)
}
