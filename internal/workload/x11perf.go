package workload

import (
	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// X11Perf reproduces the graphics load of the final experiment (§6.3):
// the X server runs the x11perf benchmark on the console, continuously
// stuffing the GPU command FIFO. Each batch costs X server CPU, a short
// driver ioctl (which on a stock kernel takes the BKL — part of why
// graphics activity was poison for latency), and a FIFO-drain interrupt
// with tasklet work.
type X11Perf struct {
	gpu *dev.GPU

	Batches uint64
}

// NewX11Perf returns the load.
func NewX11Perf(gpu *dev.GPU) *X11Perf {
	return &X11Perf{gpu: gpu}
}

// Name implements Workload.
func (x *X11Perf) Name() string { return "x11perf" }

// Start implements Workload.
func (x *X11Perf) Start(k *kernel.Kernel) {
	phase := 0
	k.NewTask("Xserver", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		rng := t.RNG()
		phase++
		switch phase % 3 {
		case 0: // build the rendering batch
			return kernel.Compute(rng.Uniform(500*sim.Microsecond, 3*sim.Millisecond))
		case 1: // submit via the DRM-ish ioctl; legacy driver wants the BKL
			call := &kernel.SyscallCall{
				Name:     "ioctl(gfx)",
				TakesBKL: true,
				Segments: []kernel.Segment{
					{Kind: kernel.SegWork, D: rng.Uniform(10*sim.Microsecond, 80*sim.Microsecond)},
				},
			}
			act := kernel.Syscall(call)
			act.OnComplete = func(sim.Time) {
				x.Batches++
				x.gpu.SubmitBatch(rng.Uniform(sim.Millisecond, 4*sim.Millisecond))
			}
			return act
		default: // handle client requests
			return kernel.Syscall(fsSyscall(k, rng, "x11-sock",
				rng.Uniform(10*sim.Microsecond, 100*sim.Microsecond)))
		}
	}))
}

// TTCPNet reproduces the network load of the final experiment: the ttcp
// benchmark reading and writing data across a 10BaseT Ethernet connection
// — a steady bidirectional stream of NIC interrupts and protocol work,
// plus a driver task.
type TTCPNet struct {
	nic *dev.NIC
	// RateBytesPerSec is the wire rate (10BaseT ≈ 1.1 MB/s).
	RateBytesPerSec float64
	BatchBytes      int
}

// NewTTCPNet returns the load at 10BaseT defaults.
func NewTTCPNet(nic *dev.NIC) *TTCPNet {
	return &TTCPNet{nic: nic, RateBytesPerSec: 1.1e6, BatchBytes: 1500}
}

// Name implements Workload.
func (t *TTCPNet) Name() string { return "ttcp-net" }

// Start implements Workload.
func (t *TTCPNet) Start(k *kernel.Kernel) {
	rng := k.Eng.RNG().Fork()
	interval := sim.Duration(float64(t.BatchBytes) / t.RateBytesPerSec * 1e9)

	// The wire: alternating rx/tx batches.
	dir := 0
	var pump func()
	pump = func() {
		dir++
		if dir%2 == 0 {
			t.nic.Receive(t.BatchBytes)
		} else {
			t.nic.Transmit(t.BatchBytes)
		}
		k.Eng.After(rng.Jitter(interval, 0.3), pump)
	}
	k.Eng.After(rng.Uniform(0, interval), pump)

	// The ttcp process: copies between socket and user buffers.
	k.NewTask("ttcp", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(task *kernel.Task) kernel.Action {
		r := task.RNG()
		if r.Bool(0.5) {
			return kernel.Syscall(&kernel.SyscallCall{
				Name: "rw(sock)",
				Segments: []kernel.Segment{
					{Kind: kernel.SegWork, D: r.Uniform(10*sim.Microsecond, 60*sim.Microsecond),
						Lock: k.NamedLock("net")},
				},
			})
		}
		return kernel.Sleep(r.Uniform(200*sim.Microsecond, 2*sim.Millisecond))
	}))
}
