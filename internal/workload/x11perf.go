package workload

import (
	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// X11Perf reproduces the graphics load of the final experiment (§6.3):
// the X server runs the x11perf benchmark on the console, continuously
// stuffing the GPU command FIFO. Each batch costs X server CPU, a short
// driver ioctl (which on a stock kernel takes the BKL — part of why
// graphics activity was poison for latency), and a FIFO-drain interrupt
// with tasklet work.
type X11Perf struct {
	gpu *dev.GPU

	Batches uint64
}

// NewX11Perf returns the load.
func NewX11Perf(gpu *dev.GPU) *X11Perf {
	return &X11Perf{gpu: gpu}
}

// Name implements Workload.
func (x *X11Perf) Name() string { return "x11perf" }

// xserver drives the batch loop; the submit happens in ActionDone so a
// snapshot mid-ioctl still submits exactly once on the restored side.
type xserver struct {
	phaseBehavior
	x *X11Perf
}

func (b *xserver) Next(t *kernel.Task) kernel.Action {
	rng := t.RNG()
	b.phase++
	switch b.phase % 3 {
	case 0: // build the rendering batch
		return kernel.Compute(rng.Uniform(500*sim.Microsecond, 3*sim.Millisecond))
	case 1: // submit via the DRM-ish ioctl; legacy driver wants the BKL
		return kernel.Syscall(&kernel.SyscallCall{
			Name:     "ioctl(gfx)",
			TakesBKL: true,
			Segments: []kernel.Segment{
				{Kind: kernel.SegWork, D: rng.Uniform(10*sim.Microsecond, 80*sim.Microsecond)},
			},
		})
	default: // handle client requests
		return kernel.Syscall(fsSyscall(t.Kernel(), rng, "x11-sock",
			rng.Uniform(10*sim.Microsecond, 100*sim.Microsecond)))
	}
}

func (b *xserver) ActionDone(t *kernel.Task, kind kernel.ActionKind, now sim.Time) {
	if kind == kernel.ActSyscall && b.phase%3 == 1 {
		b.x.Batches++
		b.x.gpu.SubmitBatch(t.RNG().Uniform(sim.Millisecond, 4*sim.Millisecond))
	}
}

func (b *xserver) BehaviorName() string { return "wl.x11perf-xserver" }

// The batch count lives on the X11Perf load but is driven only by this
// task, so it rides in the behavior's state words.
func (b *xserver) BehaviorState() []uint64 { return []uint64{b.phase, b.x.Batches} }
func (b *xserver) SetBehaviorState(words []uint64) {
	b.phase = words[0]
	b.x.Batches = words[1]
}

// Start implements Workload.
func (x *X11Perf) Start(k *kernel.Kernel) {
	k.NewTask("Xserver", kernel.SchedOther, 0, 0, &xserver{x: x})
}

// TTCPNet reproduces the network load of the final experiment: the ttcp
// benchmark reading and writing data across a 10BaseT Ethernet connection
// — a steady bidirectional stream of NIC interrupts and protocol work,
// plus a driver task.
type TTCPNet struct {
	nic *dev.NIC
	// RateBytesPerSec is the wire rate (10BaseT ≈ 1.1 MB/s).
	RateBytesPerSec float64
	BatchBytes      int

	k   *kernel.Kernel
	rng *sim.RNG
	id  uint64
	// dir alternates the wire between rx and tx batches.
	dir uint64
}

// NewTTCPNet returns the load at 10BaseT defaults.
func NewTTCPNet(nic *dev.NIC) *TTCPNet {
	return &TTCPNet{nic: nic, RateBytesPerSec: 1.1e6, BatchBytes: 1500}
}

// Name implements Workload.
func (t *TTCPNet) Name() string { return "ttcp-net" }

// ttcpNetProc is the ttcp process: copies between socket and user
// buffers.
type ttcpNetProc struct{}

func (ttcpNetProc) Next(task *kernel.Task) kernel.Action {
	r := task.RNG()
	if r.Bool(0.5) {
		return kernel.Syscall(&kernel.SyscallCall{
			Name: "rw(sock)",
			Segments: []kernel.Segment{
				{Kind: kernel.SegWork, D: r.Uniform(10*sim.Microsecond, 60*sim.Microsecond),
					Lock: task.Kernel().NamedLock("net")},
			},
		})
	}
	return kernel.Sleep(r.Uniform(200*sim.Microsecond, 2*sim.Millisecond))
}

func (ttcpNetProc) BehaviorName() string            { return "wl.ttcp-net-proc" }
func (ttcpNetProc) BehaviorState() []uint64         { return nil }
func (ttcpNetProc) SetBehaviorState(words []uint64) {}

// Start implements Workload.
func (t *TTCPNet) Start(k *kernel.Kernel) {
	t.k = k
	t.rng = k.Eng.RNG().Fork()
	t.id = k.RegisterComponent(t)
	interval := t.interval()
	k.Eng.AfterTagged(t.rng.Uniform(0, interval), evTTCPPump.Tag(t.id, 0, 0), t.pump)
	k.NewTask("ttcp", kernel.SchedOther, 0, 0, ttcpNetProc{})
}

func (t *TTCPNet) interval() sim.Duration {
	return sim.Duration(float64(t.BatchBytes) / t.RateBytesPerSec * 1e9)
}

// pump is the wire event: alternating rx/tx batches.
func (t *TTCPNet) pump() {
	t.dir++
	if t.dir%2 == 0 {
		t.nic.Receive(t.BatchBytes)
	} else {
		t.nic.Transmit(t.BatchBytes)
	}
	t.k.Eng.AfterTagged(t.rng.Jitter(t.interval(), 0.3), evTTCPPump.Tag(t.id, 0, 0), t.pump)
}

// SnapName implements kernel.SnapComponent.
func (t *TTCPNet) SnapName() string { return "wl.ttcp-net" }

// Snapshot implements kernel.SnapComponent.
func (t *TTCPNet) Snapshot(w *snapshot.Writer) error {
	w.Begin(t.SnapName())
	w.U64(1, t.rng.State())
	w.U64(2, t.dir)
	w.End()
	return nil
}

// Restore implements kernel.SnapComponent.
func (t *TTCPNet) Restore(r *snapshot.Reader, rc *kernel.RestoreContext) error {
	r.Section(t.SnapName())
	t.rng.SetState(r.U64(1))
	t.dir = r.U64(2)
	r.EndSection()
	return r.Err()
}
