package workload

import (
	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// ScpFlood reproduces the first determinism-test load script (§5.1): a
// foreign system runs `while true; do scp bzImage wahoo:/tmp; done`,
// flooding the Ethernet with a compressed kernel image over and over.
//
// Locally that means: a stream of receive interrupts and NET_RX bottom-
// half work while a transfer is in flight, an sshd task that burns CPU
// decrypting and issues file-system writes, and writeback disk traffic.
type ScpFlood struct {
	// ImageBytes is the size of the copied kernel image.
	ImageBytes int
	// RateBytesPerSec is the wire throughput during a transfer.
	RateBytesPerSec float64
	// GapMs is the pause between copies (ssh setup of the next scp).
	Gap sim.Duration
	// BatchBytes is how many bytes the NIC coalesces per interrupt.
	BatchBytes int

	nic  *dev.NIC
	disk *dev.Disk

	Transfers uint64
}

// NewScpFlood returns the load with the paper-era defaults: a ~1.2 MB
// bzImage at 100BaseT speeds with per-few-frames interrupt coalescing.
func NewScpFlood(nic *dev.NIC, disk *dev.Disk) *ScpFlood {
	return &ScpFlood{
		ImageBytes:      1_200_000,
		RateBytesPerSec: 11e6,
		Gap:             150 * sim.Millisecond,
		// The 3c905C driver in 2.4 takes an interrupt per frame at
		// these rates; no effective coalescing.
		BatchBytes: 1500,
		nic:        nic,
		disk:       disk,
	}
}

// Name implements Workload.
func (s *ScpFlood) Name() string { return "scp-flood" }

// Start implements Workload.
func (s *ScpFlood) Start(k *kernel.Kernel) {
	rng := k.Eng.RNG().Fork()
	sshWake := kernel.NewWaitQueue("sshd-data")

	// sshd: woken as data arrives; decrypts (CPU) and writes the file
	// out through the fs layers, with writeback disk traffic.
	var pendingBytes int
	k.NewTask("sshd", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		if pendingBytes <= 0 {
			return kernel.Syscall(&kernel.SyscallCall{
				Name:     "read(ssh-sock)",
				Segments: []kernel.Segment{{Kind: kernel.SegBlock, Wait: sshWake}},
			})
		}
		chunk := pendingBytes
		if chunk > 128<<10 {
			chunk = 128 << 10
		}
		pendingBytes -= chunk
		// Blowfish-era ssh decryption: ~40 ns/byte at 1 GHz (scp was
		// nearly CPU-bound on 2002 hardware).
		decrypt := sim.Duration(chunk) * 40 * sim.Nanosecond
		act := kernel.Compute(rng.Jitter(decrypt, 0.2))
		act.OnComplete = func(sim.Time) {}
		return act
	}))

	// The write-out side: sshd calls write(2) after each decrypted
	// chunk. Interleave by scheduling the fs call from the burst driver
	// below (keeps the behavior state machine simple): writeback goes
	// to the disk asynchronously.
	writeOut := func(bytes int) {
		if s.disk != nil && bytes > 0 {
			s.disk.Submit(bytes, nil)
		}
	}

	// The wire: one transfer = ImageBytes delivered in BatchBytes
	// interrupts at RateBytesPerSec, then a gap, forever.
	var startTransfer func()
	batchInterval := sim.Duration(float64(s.BatchBytes) / s.RateBytesPerSec * 1e9)
	startTransfer = func() {
		s.Transfers++
		remaining := s.ImageBytes
		var deliver func()
		deliver = func() {
			if remaining <= 0 {
				writeOut(s.ImageBytes)
				k.Eng.After(rng.Jitter(s.Gap, 0.4), startTransfer)
				return
			}
			n := s.BatchBytes
			if n > remaining {
				n = remaining
			}
			remaining -= n
			s.nic.Receive(n)
			pendingBytes += n
			k.WakeAll(sshWake, nil)
			k.Eng.After(rng.Jitter(batchInterval, 0.3), deliver)
		}
		deliver()
	}
	k.Eng.After(rng.Uniform(0, 20*sim.Millisecond), startTransfer)
}
