package workload

import (
	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// ScpFlood reproduces the first determinism-test load script (§5.1): a
// foreign system runs `while true; do scp bzImage wahoo:/tmp; done`,
// flooding the Ethernet with a compressed kernel image over and over.
//
// Locally that means: a stream of receive interrupts and NET_RX bottom-
// half work while a transfer is in flight, an sshd task that burns CPU
// decrypting and issues file-system writes, and writeback disk traffic.
type ScpFlood struct {
	// ImageBytes is the size of the copied kernel image.
	ImageBytes int
	// RateBytesPerSec is the wire throughput during a transfer.
	RateBytesPerSec float64
	// GapMs is the pause between copies (ssh setup of the next scp).
	Gap sim.Duration
	// BatchBytes is how many bytes the NIC coalesces per interrupt.
	BatchBytes int

	nic  *dev.NIC
	disk *dev.Disk

	k       *kernel.Kernel
	rng     *sim.RNG
	sshWake *kernel.WaitQueue
	id      uint64

	// pendingBytes is delivered-but-not-yet-decrypted data waiting for
	// sshd; remaining is what is left of the in-flight transfer.
	pendingBytes int
	remaining    int

	Transfers uint64
}

// NewScpFlood returns the load with the paper-era defaults: a ~1.2 MB
// bzImage at 100BaseT speeds with per-few-frames interrupt coalescing.
func NewScpFlood(nic *dev.NIC, disk *dev.Disk) *ScpFlood {
	return &ScpFlood{
		ImageBytes:      1_200_000,
		RateBytesPerSec: 11e6,
		Gap:             150 * sim.Millisecond,
		// The 3c905C driver in 2.4 takes an interrupt per frame at
		// these rates; no effective coalescing.
		BatchBytes: 1500,
		nic:        nic,
		disk:       disk,
	}
}

// Name implements Workload.
func (s *ScpFlood) Name() string { return "scp-flood" }

// scpSshd is the sshd task's behavior: woken as data arrives, it
// decrypts (CPU) and the transfer driver writes the file out through
// writeback disk traffic. All mutable state lives on the ScpFlood
// component, so the behavior itself serialises as zero words.
type scpSshd struct {
	s *ScpFlood
}

func (b *scpSshd) Next(t *kernel.Task) kernel.Action {
	s := b.s
	if s.pendingBytes <= 0 {
		return kernel.Syscall(&kernel.SyscallCall{
			Name:     "read(ssh-sock)",
			Segments: []kernel.Segment{{Kind: kernel.SegBlock, Wait: s.sshWake}},
		})
	}
	chunk := s.pendingBytes
	if chunk > 128<<10 {
		chunk = 128 << 10
	}
	s.pendingBytes -= chunk
	// Blowfish-era ssh decryption: ~40 ns/byte at 1 GHz (scp was
	// nearly CPU-bound on 2002 hardware).
	decrypt := sim.Duration(chunk) * 40 * sim.Nanosecond
	return kernel.Compute(s.rng.Jitter(decrypt, 0.2))
}

func (b *scpSshd) BehaviorName() string            { return "wl.scp-sshd" }
func (b *scpSshd) BehaviorState() []uint64         { return nil }
func (b *scpSshd) SetBehaviorState(words []uint64) {}

// Start implements Workload.
func (s *ScpFlood) Start(k *kernel.Kernel) {
	s.k = k
	s.rng = k.Eng.RNG().Fork()
	s.sshWake = k.NewWaitQueue("sshd-data")
	s.id = k.RegisterComponent(s)

	k.NewTask("sshd", kernel.SchedOther, 0, 0, &scpSshd{s: s})

	// The wire: one transfer = ImageBytes delivered in BatchBytes
	// interrupts at RateBytesPerSec, then a gap, forever.
	k.Eng.AfterTagged(s.rng.Uniform(0, 20*sim.Millisecond),
		evScpStart.Tag(s.id, 0, 0), s.startTransfer)
}

// startTransfer begins one scp copy.
func (s *ScpFlood) startTransfer() {
	s.Transfers++
	s.remaining = s.ImageBytes
	s.deliver()
}

// batchInterval is the wire time for one coalesced interrupt's bytes.
func (s *ScpFlood) batchInterval() sim.Duration {
	return sim.Duration(float64(s.BatchBytes) / s.RateBytesPerSec * 1e9)
}

// deliver is one receive-interrupt batch of the in-flight transfer;
// the copy ends with the file written out and a gap before the next.
func (s *ScpFlood) deliver() {
	if s.remaining <= 0 {
		// sshd's write(2) path drains to disk as writeback.
		if s.disk != nil && s.ImageBytes > 0 {
			s.disk.Submit(s.ImageBytes, nil)
		}
		s.k.Eng.AfterTagged(s.rng.Jitter(s.Gap, 0.4),
			evScpStart.Tag(s.id, 0, 0), s.startTransfer)
		return
	}
	n := s.BatchBytes
	if n > s.remaining {
		n = s.remaining
	}
	s.remaining -= n
	s.nic.Receive(n)
	s.pendingBytes += n
	s.k.WakeAll(s.sshWake, nil)
	s.k.Eng.AfterTagged(s.rng.Jitter(s.batchInterval(), 0.3),
		evScpDeliver.Tag(s.id, 0, 0), s.deliver)
}
