package workload

import (
	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// DiskNoise reproduces the second determinism-test script (§5.1): a shell
// loop that recursively concatenates files in /tmp, growing them until a
// reset. It is page-cache-heavy: every iteration reads and writes through
// the fs layers (taking fs locks), and the dirtied pages drain to disk as
// asynchronous writeback that completes via disk interrupts and BLOCK
// bottom halves.
type DiskNoise struct {
	disk *dev.Disk

	Iterations uint64
}

// NewDiskNoise returns the script model.
func NewDiskNoise(disk *dev.Disk) *DiskNoise {
	return &DiskNoise{disk: disk}
}

// Name implements Workload.
func (d *DiskNoise) Name() string { return "disknoise" }

// dirtyThreshold is the write-throttling point: once this many dirty
// bytes accumulate, the writer blocks until the disk catches up, exactly
// the way 2.4's bdflush throttled heavy page-cache writers. This is what
// keeps the script's CPU duty cycle disk-bound rather than 100%.
const dirtyThreshold = 512 << 10

// Start implements Workload.
func (d *DiskNoise) Start(k *kernel.Kernel) {
	// One shell loop; the file set grows then resets, so syscall sizes
	// cycle from tiny to substantial.
	size := 1024
	step := 0
	dirty := 0
	ioDone := kernel.NewWaitQueue("disknoise-io")
	k.NewTask("disknoise", kernel.SchedOther, 0, 0, kernel.BehaviorFunc(func(t *kernel.Task) kernel.Action {
		rng := t.RNG()
		if dirty > dirtyThreshold && d.disk != nil {
			// Writeback throttling: submit the dirty set synchronously
			// and wait for the completion interrupt.
			flush := dirty
			dirty = 0
			return kernel.Syscall(&kernel.SyscallCall{
				Name: "writeback-wait",
				Segments: []kernel.Segment{
					{Kind: kernel.SegWork, D: rng.Uniform(30*sim.Microsecond, 150*sim.Microsecond),
						Lock:   k.NamedLock("io"),
						OnDone: func() { d.disk.Submit(flush, ioDone) }},
					{Kind: kernel.SegBlock, Wait: ioDone},
					{Kind: kernel.SegWork, D: rng.Uniform(5*sim.Microsecond, 30*sim.Microsecond)},
				},
			})
		}
		step++
		switch step % 3 {
		case 0:
			// The `cat * > $f` iteration: read+write through the page
			// cache. Kernel residency grows with the file set.
			d.Iterations++
			residency := sim.Duration(size/2)*sim.Nanosecond + rng.Exp(40*sim.Microsecond)
			if residency > 3*sim.Millisecond {
				residency = 3 * sim.Millisecond
			}
			size *= 2
			if size > 4<<20 {
				// `rm *; echo boo >9`: reset, with a metadata burst.
				size = 1024
				return kernel.Syscall(fsSyscall(k, rng, "unlink*", rng.Uniform(100*sim.Microsecond, 600*sim.Microsecond)))
			}
			dirty += size / 2
			return kernel.Syscall(fsSyscall(k, rng, "cat", residency))
		case 1:
			// Shell forking/glob expansion: a bit of user CPU.
			return kernel.Compute(rng.Uniform(100*sim.Microsecond, 500*sim.Microsecond))
		default:
			// expr, test, echo: short syscalls.
			return kernel.Syscall(fsSyscall(k, rng, "sh-builtin", rng.Uniform(10*sim.Microsecond, 80*sim.Microsecond)))
		}
	}))
}
