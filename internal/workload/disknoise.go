package workload

import (
	"repro/internal/dev"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// DiskNoise reproduces the second determinism-test script (§5.1): a shell
// loop that recursively concatenates files in /tmp, growing them until a
// reset. It is page-cache-heavy: every iteration reads and writes through
// the fs layers (taking fs locks), and the dirtied pages drain to disk as
// asynchronous writeback that completes via disk interrupts and BLOCK
// bottom halves.
type DiskNoise struct {
	disk *dev.Disk

	k      *kernel.Kernel
	ioDone *kernel.WaitQueue
	id     uint64

	// The shell loop's state: the growing file set, the phase within
	// one iteration, and the accumulated dirty bytes.
	size  int
	step  int
	dirty int

	Iterations uint64
}

// NewDiskNoise returns the script model.
func NewDiskNoise(disk *dev.Disk) *DiskNoise {
	return &DiskNoise{disk: disk}
}

// Name implements Workload.
func (d *DiskNoise) Name() string { return "disknoise" }

// dirtyThreshold is the write-throttling point: once this many dirty
// bytes accumulate, the writer blocks until the disk catches up, exactly
// the way 2.4's bdflush throttled heavy page-cache writers. This is what
// keeps the script's CPU duty cycle disk-bound rather than 100%.
const dirtyThreshold = 512 << 10

// flush submits the dirty set to the disk with the throttled writer's
// wakeup attached. It is the writeback segment's OnDone, reconstructed
// from its tag (component id, flush bytes) across a snapshot.
func (d *DiskNoise) flush(bytes int) {
	d.disk.Submit(bytes, d.ioDone)
}

// diskNoiseBehavior drives the shell loop; all state lives on the
// DiskNoise component.
type diskNoiseBehavior struct {
	d *DiskNoise
}

func (b *diskNoiseBehavior) Next(t *kernel.Task) kernel.Action {
	d := b.d
	k := d.k
	rng := t.RNG()
	if d.dirty > dirtyThreshold && d.disk != nil {
		// Writeback throttling: submit the dirty set synchronously
		// and wait for the completion interrupt.
		flush := d.dirty
		d.dirty = 0
		return kernel.Syscall(&kernel.SyscallCall{
			Name: "writeback-wait",
			Segments: []kernel.Segment{
				{Kind: kernel.SegWork, D: rng.Uniform(30*sim.Microsecond, 150*sim.Microsecond),
					Lock:    k.NamedLock("io"),
					OnDone:  func() { d.flush(flush) },
					DoneTag: evDiskNoiseFlush.Tag(d.id, uint64(flush), 0)},
				{Kind: kernel.SegBlock, Wait: d.ioDone},
				{Kind: kernel.SegWork, D: rng.Uniform(5*sim.Microsecond, 30*sim.Microsecond)},
			},
		})
	}
	d.step++
	switch d.step % 3 {
	case 0:
		// The `cat * > $f` iteration: read+write through the page
		// cache. Kernel residency grows with the file set.
		d.Iterations++
		residency := sim.Duration(d.size/2)*sim.Nanosecond + rng.Exp(40*sim.Microsecond)
		if residency > 3*sim.Millisecond {
			residency = 3 * sim.Millisecond
		}
		d.size *= 2
		if d.size > 4<<20 {
			// `rm *; echo boo >9`: reset, with a metadata burst.
			d.size = 1024
			return kernel.Syscall(fsSyscall(k, rng, "unlink*", rng.Uniform(100*sim.Microsecond, 600*sim.Microsecond)))
		}
		d.dirty += d.size / 2
		return kernel.Syscall(fsSyscall(k, rng, "cat", residency))
	case 1:
		// Shell forking/glob expansion: a bit of user CPU.
		return kernel.Compute(rng.Uniform(100*sim.Microsecond, 500*sim.Microsecond))
	default:
		// expr, test, echo: short syscalls.
		return kernel.Syscall(fsSyscall(k, rng, "sh-builtin", rng.Uniform(10*sim.Microsecond, 80*sim.Microsecond)))
	}
}

func (b *diskNoiseBehavior) BehaviorName() string            { return "wl.disknoise" }
func (b *diskNoiseBehavior) BehaviorState() []uint64         { return nil }
func (b *diskNoiseBehavior) SetBehaviorState(words []uint64) {}

// Start implements Workload.
func (d *DiskNoise) Start(k *kernel.Kernel) {
	d.k = k
	d.size = 1024
	d.ioDone = k.NewWaitQueue("disknoise-io")
	d.id = k.RegisterComponent(d)
	k.NewTask("disknoise", kernel.SchedOther, 0, 0, &diskNoiseBehavior{d: d})
}
